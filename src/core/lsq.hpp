// Load/store queue with store-to-load forwarding and conservative
// disambiguation (Table 1: "loads may execute when prior store addresses
// are known").
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

namespace cfir::core {

struct LsqEntry {
  uint64_t seq = 0;
  bool is_store = false;
  bool addr_known = false;
  bool value_known = false;  ///< stores: data operand computed
  uint64_t addr = 0;
  int size = 0;
  uint64_t value = 0;
  uint32_t rob_slot = 0;
};

class LoadStoreQueue {
 public:
  explicit LoadStoreQueue(uint32_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool full() const { return entries_.size() >= capacity_; }
  [[nodiscard]] size_t size() const { return entries_.size(); }

  /// Appends in program order; returns false when full.
  bool push(const LsqEntry& e);
  /// Removes the oldest entry (commit).
  void pop_front();
  /// Removes entries younger than `seq` (squash).
  void squash_younger(uint64_t seq);

  [[nodiscard]] LsqEntry* find(uint64_t seq);

  /// True when every store older than `seq` has a known address — the
  /// precondition for a load to access memory.
  [[nodiscard]] bool older_store_addrs_known(uint64_t seq) const;

  enum class ForwardResult { kNone, kForwarded, kConflict };
  /// Checks the youngest older store overlapping [addr, addr+size).
  /// kForwarded: full containment, `value_out` holds the bytes.
  /// kConflict: partial overlap or unknown data — the load must wait.
  [[nodiscard]] ForwardResult try_forward(uint64_t seq, uint64_t addr, int size,
                                          uint64_t& value_out) const;

  [[nodiscard]] const std::deque<LsqEntry>& entries() const { return entries_; }

 private:
  uint32_t capacity_;
  std::deque<LsqEntry> entries_;
};

}  // namespace cfir::core
