// Processor configuration. Defaults reproduce Table 1 of the paper:
// 8-wide fetch/issue/commit, 256-entry window, gshare 64K, 64-entry LSQ,
// and the three-level cache hierarchy. Mechanism-specific knobs (replica
// count, stridedPC width, speculative data memory) live here too so that a
// single struct describes a full experiment point.
#pragma once

#include <cstdint>
#include <string>

#include "mem/hierarchy.hpp"

namespace cfir::core {

/// Which speculation mechanism runs on top of the baseline core.
enum class Policy : uint8_t {
  kNone,        ///< plain superscalar (scalXp)
  kCi,          ///< the paper's control-independence scheme (ciXp)
  kCiWindow,    ///< squash reuse: CI only inside the window (ci-iw)
  kVect,        ///< full-blown dynamic vectorization of ref. [12] (vect)
};

struct CoreConfig {
  // --- front end -----------------------------------------------------------
  uint32_t fetch_width = 8;        ///< up to 1 taken branch per cycle
  uint32_t decode_width = 8;
  uint32_t recovery_penalty = 5;   ///< cycles from resolve to first refetch

  // --- window / issue --------------------------------------------------------
  uint32_t rob_size = 256;         ///< instruction window (Table 1)
  uint32_t issue_width = 8;
  uint32_t commit_width = 8;
  uint32_t lsq_size = 64;

  // --- physical registers ----------------------------------------------------
  // Paper sweeps 128/256/512/768/"infinite". The window automatically grows
  // with the register file above 256 (section 3.2); presets handle this.
  uint32_t num_phys_regs = 256;

  // --- functional units (latency in cycles, Table 1) -------------------------
  uint32_t simple_int_units = 6;
  uint32_t int_alu_latency = 1;
  uint32_t muldiv_units = 3;
  uint32_t mul_latency = 2;
  uint32_t div_latency = 12;
  uint32_t branch_latency = 1;

  // --- memory ---------------------------------------------------------------
  uint32_t cache_ports = 1;        ///< L1D ports (paper sweeps 1 and 2)
  bool wide_bus = false;           ///< line-wide port, <=4 loads per access
  uint32_t wide_bus_loads_per_access = 4;
  uint32_t agu_latency = 1;
  mem::HierarchyConfig memory;

  // --- branch prediction ------------------------------------------------------
  uint32_t gshare_entries = 64 * 1024;
  uint32_t gshare_history_bits = 16;

  // --- mechanism (sections 2.3-2.4) -------------------------------------------
  Policy policy = Policy::kNone;
  uint32_t replicas = 4;             ///< speculative instances per instruction
  uint32_t stridedpc_per_entry = 2;  ///< propagated PCs per rename entry (Fig 4)
  uint32_t srsmt_sets = 64;          ///< 4-way (Table 1)
  uint32_t srsmt_ways = 4;
  uint32_t stride_sets = 256;        ///< 4-way (Table 1)
  uint32_t stride_ways = 4;
  uint32_t mbs_sets = 64;
  uint32_t mbs_ways = 4;
  uint32_t nrbq_entries = 16;
  uint32_t daec_threshold = 2;
  uint32_t ci_select_window = 32;    ///< instructions inspected past the
                                     ///< re-convergent point (see DESIGN.md)
  uint32_t replica_reg_reserve = 16; ///< free registers kept for rename
  // Squash-reuse buffer (ci-iw baseline).
  uint32_t squash_reuse_entries = 256;

  // --- speculative data memory (section 2.4.6) --------------------------------
  bool use_spec_memory = false;
  uint32_t spec_memory_slots = 768;
  uint32_t spec_memory_latency = 2;  ///< twice the register file
  uint32_t spec_memory_read_ports = 2;
  uint32_t spec_memory_write_ports = 2;

  // --- liveness guard ---------------------------------------------------------
  uint64_t watchdog_cycles = 2000;   ///< rename-starvation reclaim threshold
  uint64_t deadlock_cycles = 200000; ///< hard failure (indicates a bug)

  /// Short label such as "ci2p/256r" used in tables.
  [[nodiscard]] std::string label() const;

  /// Applies the paper's rule that the window scales with registers >256.
  void scale_window_to_regs();

  /// Deterministic FNV-1a digest over every configuration field, in
  /// declaration order (util::Digest — stable across hosts). Two configs
  /// digest equal iff they describe the same experiment point; the sharded
  /// sampling layers fold this into the manifest config hash so results
  /// from mismatched configs are rejected at merge time instead of being
  /// silently averaged (trace/manifest.hpp).
  [[nodiscard]] uint64_t digest() const;
};

}  // namespace cfir::core
