#include "mem/main_memory.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace cfir::mem {

const MainMemory::Page* MainMemory::find_page(uint64_t addr) const {
  const auto it = pages_.find(addr >> kPageBits);
  return it == pages_.end() ? nullptr : it->second.get();
}

MainMemory::Page& MainMemory::touch_page(uint64_t addr) {
  auto& slot = pages_[addr >> kPageBits];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  return *slot;
}

uint8_t MainMemory::read8(uint64_t addr) const {
  const Page* p = find_page(addr);
  return p ? (*p)[addr & (kPageSize - 1)] : 0;
}

uint64_t MainMemory::read(uint64_t addr, int bytes) const {
  assert(bytes >= 1 && bytes <= 8);
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(read8(addr + static_cast<uint64_t>(i)))
         << (8 * i);
  }
  return v;
}

void MainMemory::write8(uint64_t addr, uint8_t value) {
  touch_page(addr)[addr & (kPageSize - 1)] = value;
}

void MainMemory::write(uint64_t addr, uint64_t value, int bytes) {
  assert(bytes >= 1 && bytes <= 8);
  for (int i = 0; i < bytes; ++i) {
    write8(addr + static_cast<uint64_t>(i),
           static_cast<uint8_t>(value >> (8 * i)));
  }
}

const uint8_t* MainMemory::page_data(uint64_t addr) const {
  const Page* p = find_page(addr);
  return p ? p->data() : nullptr;
}

uint8_t* MainMemory::mutable_page_data(uint64_t addr) {
  return touch_page(addr).data();
}

void MainMemory::write_block(uint64_t addr, const uint8_t* data, size_t n) {
  for (size_t i = 0; i < n; ++i) write8(addr + i, data[i]);
}

uint64_t MainMemory::digest() const {
  // FNV-1a over (address, byte) pairs of non-zero bytes only, XOR-combined
  // across pages so the result is independent of page iteration order and
  // of whether a zero byte is resident or absent.
  uint64_t acc = 0;
  for (const auto& [page_no, page] : pages_) {
    for (uint64_t off = 0; off < kPageSize; ++off) {
      const uint8_t b = (*page)[off];
      if (b == 0) continue;
      uint64_t h = 1469598103934665603ULL;
      const uint64_t addr = (page_no << kPageBits) | off;
      for (int i = 0; i < 8; ++i) {
        h ^= (addr >> (8 * i)) & 0xff;
        h *= 1099511628211ULL;
      }
      h ^= b;
      h *= 1099511628211ULL;
      acc ^= h;
    }
  }
  return acc;
}

void MainMemory::for_each_page(
    const std::function<void(uint64_t base_addr, const uint8_t* data)>& fn)
    const {
  std::vector<uint64_t> page_nos;
  page_nos.reserve(pages_.size());
  for (const auto& [page_no, page] : pages_) page_nos.push_back(page_no);
  std::sort(page_nos.begin(), page_nos.end());
  for (const uint64_t page_no : page_nos) {
    fn(page_no << kPageBits, pages_.at(page_no)->data());
  }
}

MainMemory MainMemory::clone() const {
  MainMemory copy;
  for (const auto& [page_no, page] : pages_) {
    auto p = std::make_unique<Page>(*page);
    copy.pages_.emplace(page_no, std::move(p));
  }
  return copy;
}

}  // namespace cfir::mem
