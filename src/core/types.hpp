// Dynamic-instruction record and the mechanism hook interface through which
// the paper's control-independence machinery (src/ci) plugs into the core.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "branch/ras.hpp"
#include "isa/isa.hpp"

namespace cfir::core {

inline constexpr int kNoReg = -1;
inline constexpr uint32_t kInvalidSlot = std::numeric_limits<uint32_t>::max();

/// Per-instruction bookkeeping owned by the attached mechanism. The fields
/// mirror the rename-map extension of the paper (Figure 7) so that squash
/// recovery can restore the extension exactly like the rename map proper.
struct MechInfo {
  // Previous rename-extension state of the destination logical register
  // (restored youngest-first on squash).
  std::array<uint64_t, 4> prev_strided_pcs{};
  uint8_t prev_strided_count = 0;
  bool prev_vs = false;            ///< previous V/S flag (Figure 7)
  uint64_t prev_seq_pc = 0;        ///< previous producer PC ("sequence")
  uint32_t prev_entry_uid = 0;     ///< previous SRSMT entry uid
  uint32_t prev_entry_slot = kInvalidSlot;
  bool ext_saved = false;          ///< above fields are meaningful

  // Reuse state.
  bool reused = false;             ///< validated against SRSMT; skips execute
  bool via_copy = false;           ///< spec-memory mode: behaves as copy µop
  int reuse_phys = kNoReg;         ///< replica register handed to rename
  uint32_t srsmt_slot = kInvalidSlot;
  uint32_t entry_uid = 0;
  uint64_t replica_index = 0;      ///< absolute replica counter consumed
  bool pd_from_replica = false;    ///< dest phys reg owned by the SRSMT entry

  // Creation state.
  bool created_entry = false;      ///< this instance allocated the SRSMT entry
  uint32_t created_slot = kInvalidSlot;
  uint32_t created_uid = 0;

  // Index bookkeeping: every decoded instance of a vectorized PC consumes a
  // replica index so the ring stays aligned with the dynamic instance
  // stream even when individual validations fail softly.
  bool index_consumed = false;

  // ci-iw (squash reuse) state: the instruction's result was found in the
  // squash-reuse buffer; the core completes it at dispatch with this value.
  bool squash_reused = false;
  uint64_t squash_value = 0;
};

/// One in-flight instruction (ROB entry).
struct DynInst {
  // --- identity -------------------------------------------------------------
  uint64_t seq = 0;      ///< global fetch order, never reused within a run
  uint64_t pc = 0;
  isa::Instruction inst;

  // --- rename ---------------------------------------------------------------
  int pd = kNoReg;       ///< destination physical register
  int prev_pd = kNoReg;  ///< mapping replaced at rename (squash restore)
  int old_pd = kNoReg;   ///< same as prev_pd; freed at commit
  int ps1 = kNoReg;
  int ps2 = kNoReg;
  bool has_dest = false;

  // --- execution ------------------------------------------------------------
  bool dispatched = false;
  bool issued = false;
  bool completed = false;
  uint64_t v1 = 0, v2 = 0;   ///< operand values captured at issue
  uint64_t result = 0;
  uint32_t pending_ops = 0;  ///< unready source operands

  // --- memory ---------------------------------------------------------------
  bool is_load = false, is_store = false;
  uint64_t mem_addr = 0;
  int mem_size = 0;
  bool addr_known = false;
  uint64_t store_value = 0;
  uint32_t lsq_index = kInvalidSlot;
  bool forwarded = false;

  // --- control --------------------------------------------------------------
  bool is_branch = false, is_cond_branch = false;
  bool predicted_taken = false;
  uint64_t predicted_target = 0;
  bool actual_taken = false;
  uint64_t actual_target = 0;
  bool resolved = false;
  bool mispredicted = false;
  uint64_t gshare_snapshot = 0;
  branch::ReturnAddressStack::Snapshot ras_snapshot;
  bool has_ras_snapshot = false;

  // --- mechanism ------------------------------------------------------------
  MechInfo mech;

  [[nodiscard]] bool ready_to_issue() const {
    return dispatched && !issued && !completed && pending_ops == 0 &&
           !mech.reused;
  }
};

class Core;

/// Per-cycle leftover resources the mechanism may consume for replicas and
/// copy micro-ops (paper section 2.4.1: speculative instructions have lower
/// priority than the main thread).
struct CycleResources {
  uint32_t issue_slots = 0;
  uint32_t simple_int = 0;
  uint32_t muldiv = 0;
  uint32_t mem_ports = 0;
};

/// Hook interface implemented by the control-independence mechanism (and by
/// the vect / ci-iw baselines). The default implementation is a no-op,
/// giving the plain superscalar.
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Called once the core is constructed.
  virtual void attach(Core& /*core*/) {}

  /// Decode/rename time, before the destination is renamed. The hook may
  /// mark `di.mech.reused` (and related fields) to turn the instruction
  /// into a validation that skips execution, and is where vectorization of
  /// strided loads / dependents is triggered.
  virtual void on_decode(DynInst& /*di*/) {}

  /// After the destination has been renamed (`pd` assigned).
  virtual void on_renamed(DynInst& /*di*/) {}

  /// Called on a misprediction *before* the core squashes younger
  /// instructions — this is when the CRP captures the OR of the NRBQ masks
  /// from the mispredicted branch to the tail (paper section 2.3.2), which
  /// must include the wrong-path branches about to be squashed.
  virtual void on_mispredict_pre(DynInst& /*di*/) {}

  /// Branch resolution in the backend. `mispredicted` implies the core has
  /// already squashed younger instructions.
  virtual void on_branch_resolved(DynInst& /*di*/, bool /*mispredicted*/) {}

  /// The commit-time architectural recheck caught a wrong reused value; the
  /// mechanism must deallocate the offending SRSMT entry (the instruction
  /// and everything younger is about to be squashed and refetched).
  virtual void on_misvalidation(DynInst& /*di*/) {}

  /// Spec-memory mode: is the ring value for this copy µop available now?
  virtual bool copy_source_ready(const DynInst& /*di*/) { return true; }
  /// Spec-memory mode: the value is not ready — notify `wake_copy` later.
  virtual void register_copy_waiter(uint32_t /*rob_slot*/,
                                    const DynInst& /*di*/) {}
  /// Spec-memory mode: try to issue the copy µop (read-port arbitration).
  /// On success fills the data latency and the value read from the ring.
  virtual bool try_issue_copy(DynInst& /*di*/, uint64_t /*cycle*/,
                              uint32_t& /*latency*/, uint64_t& /*value*/) {
    return false;
  }

  /// Called for every squashed instruction, youngest first.
  virtual void on_squash(DynInst& /*di*/) {}

  /// In-order commit. For stores this runs *before* the memory write.
  virtual void on_commit(DynInst& /*di*/) {}

  /// Store at commit: return true when the store address conflicts with a
  /// vectorized load range (section 2.4.3); the core then squashes younger
  /// instructions and the mechanism must already have deallocated the entry.
  virtual bool on_store_commit(DynInst& /*di*/) { return false; }

  /// End-of-cycle: leftover resources for replica execution.
  virtual void issue_cycle(uint64_t /*cycle*/, CycleResources& /*res*/) {}

  /// Liveness guard: rename starved for cfg.watchdog_cycles; release
  /// speculatively-held registers.
  virtual void on_watchdog_reclaim() {}

  /// Extra commit latency for stores (the paper charges one extra cycle
  /// per store commit when the CI scheme is active, max 2 stores/cycle).
  [[nodiscard]] virtual uint32_t store_commit_extra_cycles() const { return 0; }
  [[nodiscard]] virtual uint32_t max_store_commits_per_cycle() const { return 8; }

  /// Called once after the run ends (fold deferred statistics).
  virtual void finalize() {}
};

}  // namespace cfir::core
