#include "mem/cache.hpp"

#include <algorithm>
#include <cassert>

namespace cfir::mem {

Cache::Cache(const CacheConfig& config) : config_(config) {
  assert(config_.line_bytes > 0 && config_.assoc > 0);
  num_sets_ = config_.size_bytes / (config_.line_bytes * config_.assoc);
  assert(num_sets_ > 0 && (num_sets_ & (num_sets_ - 1)) == 0 &&
         "set count must be a power of two");
  lines_.assign(static_cast<size_t>(num_sets_) * config_.assoc, Line{});
}

void Cache::reset() {
  for (Line& l : lines_) l = Line{};
  inflight_fills_.clear();
  stats_ = CacheStats{};
  use_stamp_ = 0;
}

bool Cache::probe(uint64_t addr) const {
  const uint64_t line_addr = addr / config_.line_bytes;
  const uint32_t set = static_cast<uint32_t>(line_addr) & (num_sets_ - 1);
  const uint64_t tag = line_addr >> 0;
  const size_t base = static_cast<size_t>(set) * config_.assoc;
  for (uint32_t w = 0; w < config_.assoc; ++w) {
    const Line& l = lines_[base + w];
    if (l.valid && l.tag == tag) return true;
  }
  return false;
}

Cache::Result Cache::access(uint64_t addr, bool is_write, uint64_t now,
                            uint32_t miss_fill_latency) {
  ++stats_.accesses;
  const uint64_t line_addr = addr / config_.line_bytes;
  const uint32_t set = static_cast<uint32_t>(line_addr) & (num_sets_ - 1);
  const uint64_t tag = line_addr;  // full line address as tag (simple, exact)
  const size_t base = static_cast<size_t>(set) * config_.assoc;

  ++use_stamp_;
  for (uint32_t w = 0; w < config_.assoc; ++w) {
    Line& l = lines_[base + w];
    if (l.valid && l.tag == tag) {
      ++stats_.hits;
      l.lru = use_stamp_;
      if (is_write) l.dirty = true;
      // Hit under an outstanding fill: data arrives when the fill does.
      uint32_t latency = config_.hit_latency;
      if (const auto it = inflight_fills_.find(line_addr);
          it != inflight_fills_.end() && it->second > now) {
        latency = static_cast<uint32_t>(it->second - now);
      }
      return {true, latency};
    }
  }

  // Miss. Merge with an in-flight fill of the same line if present.
  ++stats_.misses;
  uint32_t latency = config_.hit_latency + miss_fill_latency;
  if (const auto it = inflight_fills_.find(line_addr);
      it != inflight_fills_.end()) {
    if (it->second > now) {
      ++stats_.mshr_merges;
      latency = static_cast<uint32_t>(it->second - now);
    }
  } else {
    inflight_fills_[line_addr] = now + latency;
    // Opportunistic cleanup to bound the map.
    if (inflight_fills_.size() > 4096) {
      for (auto it2 = inflight_fills_.begin(); it2 != inflight_fills_.end();) {
        if (it2->second <= now) {
          it2 = inflight_fills_.erase(it2);
        } else {
          ++it2;
        }
      }
    }
  }

  // Victim selection: invalid first, then LRU.
  size_t victim = base;
  for (uint32_t w = 0; w < config_.assoc; ++w) {
    Line& l = lines_[base + w];
    if (!l.valid) { victim = base + w; break; }
    if (l.lru < lines_[victim].lru) victim = base + w;
  }
  Line& v = lines_[victim];
  if (v.valid && v.dirty) ++stats_.writebacks;
  v.valid = true;
  v.tag = tag;
  v.dirty = is_write;
  v.lru = use_stamp_;
  return {false, latency};
}

void Cache::warm_access(uint64_t addr, bool is_write) {
  const uint64_t line_addr = addr / config_.line_bytes;
  const uint32_t set = static_cast<uint32_t>(line_addr) & (num_sets_ - 1);
  const uint64_t tag = line_addr;
  const size_t base = static_cast<size_t>(set) * config_.assoc;

  ++use_stamp_;
  for (uint32_t w = 0; w < config_.assoc; ++w) {
    Line& l = lines_[base + w];
    if (l.valid && l.tag == tag) {
      l.lru = use_stamp_;
      if (is_write) l.dirty = true;
      return;
    }
  }
  // Miss: same victim selection as access(), fill without timing.
  size_t victim = base;
  for (uint32_t w = 0; w < config_.assoc; ++w) {
    Line& l = lines_[base + w];
    if (!l.valid) { victim = base + w; break; }
    if (l.lru < lines_[victim].lru) victim = base + w;
  }
  Line& v = lines_[victim];
  v.valid = true;
  v.tag = tag;
  v.dirty = is_write;
  v.lru = use_stamp_;
}

uint64_t Cache::debug_digest() const {
  util::Digest d;
  d.u32(num_sets_).u32(config_.assoc);
  std::vector<std::pair<uint64_t, bool>> resident;
  for (uint32_t set = 0; set < num_sets_; ++set) {
    const size_t base = static_cast<size_t>(set) * config_.assoc;
    resident.clear();
    for (uint32_t w = 0; w < config_.assoc; ++w) {
      const Line& l = lines_[base + w];
      if (l.valid) resident.emplace_back(l.tag, l.dirty);
    }
    std::sort(resident.begin(), resident.end());
    d.u32(static_cast<uint32_t>(resident.size()));
    for (const auto& [tag, dirty] : resident) d.u64(tag).boolean(dirty);
  }
  return d.value();
}

void Cache::serialize(util::ByteWriter& out) const {
  // Full-fidelity state (LRU included) so a restored warmer continues
  // exactly where the serializing one stopped; in-flight fills and stats
  // are timing/measurement state and never part of warm state.
  out.u32(num_sets_);
  out.u32(config_.assoc);
  out.u64(use_stamp_);
  for (const Line& l : lines_) {
    out.u64(l.tag);
    out.boolean(l.valid);
    out.boolean(l.dirty);
    out.u64(l.lru);
  }
}

void Cache::deserialize(util::ByteReader& in) {
  if (in.u32() != num_sets_ || in.u32() != config_.assoc) {
    throw std::runtime_error("Cache: warm-state geometry mismatch (" +
                             config_.name + ")");
  }
  use_stamp_ = in.u64();
  for (Line& l : lines_) {
    l.tag = in.u64();
    l.valid = in.boolean();
    l.dirty = in.boolean();
    l.lru = in.u64();
  }
  inflight_fills_.clear();
}

}  // namespace cfir::mem
