// Shard manifest — the serialized form of an interval plan, and the "plan"
// layer of the plan / execute / merge decomposition of sampled simulation
// (docs/sharding.md):
//
//   plan    — plan_intervals / plan_cluster_intervals build an
//             IntervalPlan; bind_configs binds the config grid;
//             write_manifest freezes everything to disk as one CFIRMAN2
//             manifest, one architectural CFIRCKP checkpoint blob per
//             interval (shared by every config), and one warm-state
//             sidecar per (interval, config) when the warm mode has a
//             functional prefix.
//   execute — any machine loads the manifest, rebuilds the plan
//             (plan_from_manifest) and the bindings
//             (bindings_from_manifest), and runs a subset of its
//             intervals under every config (trace/shard.hpp), emitting
//             one CFIRSHD2 result blob.
//   merge   — the result blobs fold back into one single-process answer
//             per config (trace::merge_shard_grid / stats::merge_shards).
//
// The experiment point is decomposed into a **config-independent plan**
// (interval boundaries, lengths, weights, architectural checkpoints —
// identical for every core configuration of the same workload) and
// **per-config bindings** (the core to simulate and its functional warm
// state, whose predictor/cache geometry differs per config). One plan
// therefore drives a whole bench grid: the manifest records a
// **plan hash** (plan_structure_hash — workload identity + plan
// structure) stamped into every shard result, plus one **config hash**
// (core::CoreConfig::digest()) per grid point, so results produced under
// a different plan or config are rejected at merge time
// (ConfigMismatchError) instead of being silently averaged.
//
// File format, version 2 (little-endian, shared CRC-32 footer required —
// trace/blob.hpp):
//   magic "CFIRMAN2" | u32 version | u32 reserved
//   | u64 plan_hash
//   | u8 mode | u8 warm_mode | u64 warmup | u64 total_insts
//   | u64 interval_len | u8 ran_to_halt
//   | u32 scale | u32 workload_len | workload bytes
//   | u32 n_configs
//   | n_configs x (u32 name_len | name bytes | u64 config_hash
//                  | u32 cfg_len | CoreConfig bytes (core/config.hpp
//                    X-macro codec))
//   | u32 n_intervals
//   | n x (u64 start | u64 length | u64 weight_bits(double)
//          | u32 file_len | checkpoint file name bytes
//          | n_configs x (u32 file_len | warm sidecar file name bytes,
//            empty when the config has no warm state for this interval))
//   | "CRC1" | u32 crc32
// All file names are relative to the manifest's directory, so a manifest,
// its checkpoints and its warm sidecars move between machines as one
// directory. Version-1 files ("CFIRMAN1", one combined config hash, warm
// state embedded in CFIRCKP2 checkpoints) still load, as a 1-config
// manifest whose config point is not embedded (the executor must supply
// the config and verify it via verify_manifest_config, as before).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "trace/sampling.hpp"
#include "trace/shard.hpp"

namespace cfir::trace {

inline constexpr char kManifestMagic[8] = {'C', 'F', 'I', 'R',
                                           'M', 'A', 'N', '1'};
inline constexpr char kManifestMagicV2[8] = {'C', 'F', 'I', 'R',
                                             'M', 'A', 'N', '2'};
inline constexpr uint32_t kManifestVersion = 2;

/// `path` minus its final extension (".cfirman" usually) — the stem the
/// manifest's sibling artifacts are named from: write_manifest puts
/// checkpoints at `<stem>.ck<i>.cfirckpt`, warm sidecars at
/// `<stem>.ck<i>.cfg<c>.cfirwarm`, and trace_tool defaults shard results
/// to `<stem>.shard<i>of<N>.cfirshd`. One definition so the file layout
/// cannot drift between the planner and the tools.
[[nodiscard]] std::string path_stem(const std::string& path);

struct ShardManifest {
  /// 2 for manifests this build writes; 1 when loaded from (or to be
  /// written as) a legacy CFIRMAN1 file. serialize() honours it, so
  /// loaded v1 manifests round-trip byte-identically.
  uint32_t version = kManifestVersion;
  std::string workload;  ///< cfir::workloads name — rebuilds the program
  uint32_t scale = 1;
  /// v2: plan_structure_hash (config-independent). v1: the legacy
  /// combined plan_config_hash.
  uint64_t plan_hash = 0;
  SampleMode mode = SampleMode::kUniform;
  WarmMode warm_mode = WarmMode::kDetailed;
  uint64_t warmup = 0;
  uint64_t total_insts = 0;
  uint64_t interval_len = 0;  ///< cluster mode: source-window length
  bool ran_to_halt = false;

  /// One config point of the grid this manifest farms.
  struct ConfigPoint {
    std::string name;          ///< column label (CoreConfig::label())
    uint64_t config_hash = 0;  ///< v2: CoreConfig::digest(); v1: plan_hash
    core::CoreConfig config;   ///< meaningful only when `embedded`
    bool embedded = false;     ///< v2: config bytes travel in the manifest
  };
  std::vector<ConfigPoint> configs;

  struct IntervalRef {
    uint64_t start = 0;   ///< first measured instruction index
    uint64_t length = 0;  ///< measured instructions
    double weight = 1.0;  ///< population this interval stands in for
    std::string checkpoint_file;  ///< relative to the manifest's directory
    /// v2: one warm-sidecar file name per config point (in `configs`
    /// order; empty string = no warm state). Empty vector on v1 manifests
    /// (warm state rides inside the CFIRCKP2 checkpoint there).
    std::vector<std::string> warm_files;
  };
  std::vector<IntervalRef> intervals;

  /// Payload bytes (no CRC footer). Deterministic: serialize ∘ deserialize
  /// is the identity on the bytes for either version (fuzz-locked in
  /// tests/test_shard.cpp).
  [[nodiscard]] std::vector<uint8_t> serialize() const;
  [[nodiscard]] static ShardManifest deserialize(
      const std::vector<uint8_t>& payload);

  void save(const std::string& path) const;
  [[nodiscard]] static ShardManifest load(const std::string& path);
};

/// The legacy v1 combined hash: CoreConfig::digest() + workload identity +
/// the plan's structure (mode, warm mode, boundaries, lengths, weights).
/// Everything that had to agree for two v1 shard results to be mergeable.
/// Unchanged byte-for-byte from PR 4, so v1 manifests written by older
/// builds still verify.
[[nodiscard]] uint64_t plan_config_hash(const core::CoreConfig& config,
                                        const std::string& workload,
                                        uint32_t scale,
                                        const IntervalPlan& plan);

/// The config-independent half of the v1 hash: workload identity + plan
/// structure only. Two manifests share this iff their checkpoints and
/// interval schedules are interchangeable — which is exactly what lets one
/// checkpoint set serve every config of a grid.
[[nodiscard]] uint64_t plan_structure_hash(const std::string& workload,
                                           uint32_t scale,
                                           const IntervalPlan& plan);

/// Plan layer driver, single config (legacy v1 format): writes `plan` as a
/// CFIRMAN1 manifest plus one checkpoint blob per interval next to it
/// (named `<stem>.ck<i>.cfirckpt`, warm state embedded as CFIRCKP2 when
/// attached), and returns the manifest.
ShardManifest write_manifest(const IntervalPlan& plan,
                             const core::CoreConfig& config,
                             const std::string& workload, uint32_t scale,
                             const std::string& manifest_path);

/// Plan layer driver, config grid (CFIRMAN2): writes `plan` as one
/// manifest, one **cold** architectural checkpoint per interval (shared by
/// every config), and one warm sidecar per (interval, config) carrying
/// that binding's functional warm state. Every binding's config travels in
/// the manifest, so the execute layer needs no out-of-band preset.
ShardManifest write_manifest(const IntervalPlan& plan,
                             const std::vector<ConfigBinding>& bindings,
                             const std::string& workload, uint32_t scale,
                             const std::string& manifest_path);

/// Rebuilds a runnable IntervalPlan from a manifest (either version),
/// loading every referenced checkpoint relative to the manifest's
/// directory. Cluster diagnostics (cluster_of, bic_by_k) are not stored
/// and come back empty.
[[nodiscard]] IntervalPlan plan_from_manifest(const ShardManifest& manifest,
                                              const std::string&
                                                  manifest_path);

/// Rebuilds the config bindings of a v2 manifest, loading each
/// (interval, config) warm sidecar relative to the manifest's directory.
/// `shard` (default: the whole plan) limits the sidecar reads to the
/// intervals that shard executes — a worker of an N-shard farm reads 1/N
/// of the warm blobs, and the skipped intervals' slots stay empty (which
/// run_shard never touches for uncovered intervals). Throws VersionError
/// on v1 manifests (their single config is not embedded — the executor
/// supplies it and calls verify_manifest_config).
[[nodiscard]] std::vector<ConfigBinding> bindings_from_manifest(
    const ShardManifest& manifest, const std::string& manifest_path,
    ShardSelection shard = {});

/// v1 manifests: recomputes the combined hash for (`config`, the
/// manifest's workload, the reloaded `plan`) and throws
/// ConfigMismatchError when it differs from the manifest's — i.e. the
/// caller is about to execute or merge under a different experiment point
/// than the plan was made for.
void verify_manifest_config(const ShardManifest& manifest,
                            const core::CoreConfig& config,
                            const IntervalPlan& plan);

/// v2 manifests: recomputes plan_structure_hash for `plan` (throws
/// ConfigMismatchError on mismatch — a plan from some other planning run)
/// and validates that every checkpoint sits at the instruction position
/// the schedule demands (throws CorruptFileError otherwise — a wrong or
/// swapped .cfirckpt in the manifest directory). The position check is
/// the half with teeth for a plan freshly reloaded from this manifest:
/// the hash covers only manifest fields, but the checkpoints come from
/// sibling files that can be tampered with independently.
void verify_manifest_plan(const ShardManifest& manifest,
                          const IntervalPlan& plan);

}  // namespace cfir::trace
