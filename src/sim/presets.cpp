#include "sim/presets.hpp"

namespace cfir::sim::presets {

std::vector<uint32_t> register_sweep() {
  return {128, 256, 512, 768, kInfRegs};
}

std::string reg_label(uint32_t regs) {
  return regs >= kInfRegs ? "inf" : std::to_string(regs);
}

core::CoreConfig table1() {
  core::CoreConfig cfg;  // struct defaults are Table 1
  return cfg;
}

namespace {
core::CoreConfig base(uint32_t ports, uint32_t regs) {
  core::CoreConfig cfg = table1();
  cfg.cache_ports = ports;
  cfg.num_phys_regs = regs;
  cfg.scale_window_to_regs();
  return cfg;
}
}  // namespace

core::CoreConfig scal(uint32_t ports, uint32_t regs) {
  core::CoreConfig cfg = base(ports, regs);
  cfg.policy = core::Policy::kNone;
  cfg.wide_bus = false;
  return cfg;
}

core::CoreConfig wb(uint32_t ports, uint32_t regs) {
  core::CoreConfig cfg = base(ports, regs);
  cfg.policy = core::Policy::kNone;
  cfg.wide_bus = true;
  return cfg;
}

core::CoreConfig ci(uint32_t ports, uint32_t regs, uint32_t replicas) {
  core::CoreConfig cfg = base(ports, regs);
  cfg.policy = core::Policy::kCi;
  cfg.wide_bus = true;
  cfg.replicas = replicas;
  return cfg;
}

core::CoreConfig ci_specmem(uint32_t ports, uint32_t regs, uint32_t slots,
                            uint32_t replicas) {
  core::CoreConfig cfg = ci(ports, regs, replicas);
  cfg.use_spec_memory = true;
  cfg.spec_memory_slots = slots;
  return cfg;
}

core::CoreConfig ci_window(uint32_t ports, uint32_t regs) {
  core::CoreConfig cfg = base(ports, regs);
  cfg.policy = core::Policy::kCiWindow;
  cfg.wide_bus = true;
  return cfg;
}

core::CoreConfig vect(uint32_t ports, uint32_t regs, uint32_t replicas) {
  core::CoreConfig cfg = base(ports, regs);
  cfg.policy = core::Policy::kVect;
  cfg.wide_bus = true;
  cfg.replicas = replicas;
  return cfg;
}

}  // namespace cfir::sim::presets
