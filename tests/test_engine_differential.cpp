// Differential fuzz harness for the superblock-caching functional engine
// (docs/functional-engine.md): the reference Interpreter is the oracle, and
// FastEngine must match it bit for bit — final architectural state (pc,
// executed, halted, registers, memory digest) AND the ordered retired-event
// stream (branch outcomes/targets, load/store addresses/sizes) — over
// hundreds of adversarial random programs plus hand-built block-boundary
// edge cases. Warming digests, trace bytes and sampled stats are all
// derived from this stream, so stream equality here is what makes
// CFIR_ENGINE=cached safe everywhere else.
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "isa/assembler.hpp"
#include "isa/engine.hpp"
#include "isa/interpreter.hpp"
#include "mem/main_memory.hpp"

namespace cfir {
namespace {

using isa::EngineKind;
using isa::EventKind;
using isa::StepEvent;

struct RunTrace {
  uint64_t executed = 0;
  bool halted = false;
  uint64_t pc = 0;
  std::array<uint64_t, isa::kNumLogicalRegs> regs{};
  uint64_t mem_digest = 0;
  std::vector<StepEvent> events;
};

/// Runs `program` on the reference Interpreter, assembling the event stream
/// from the three per-instruction observers exactly as the trace recorder
/// does.
RunTrace run_interpreter(const isa::Program& program,
                         uint64_t max_insts = UINT64_MAX) {
  RunTrace out;
  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  isa::Interpreter interp(program, memory);
  StepEvent pending;
  interp.on_branch = [&](uint64_t, bool taken, uint64_t target) {
    pending.kind = EventKind::kBranch;
    pending.taken = taken;
    pending.next_pc = target;
  };
  interp.on_mem = [&](uint64_t, uint64_t addr, int bytes, bool is_store) {
    pending.kind = is_store ? EventKind::kStore : EventKind::kLoad;
    pending.addr = addr;
    pending.size = static_cast<uint8_t>(bytes);
  };
  interp.on_step = [&](uint64_t pc, uint64_t) {
    pending.pc = pc;
    out.events.push_back(pending);
    pending = StepEvent{};
  };
  interp.run(max_insts);
  out.executed = interp.executed();
  out.halted = interp.halted();
  out.pc = interp.pc();
  out.regs = interp.regs();
  out.mem_digest = memory.digest();
  return out;
}

/// Runs `program` on FastEngine, collecting the per-block event spans.
RunTrace run_fast(const isa::Program& program,
                  uint64_t max_insts = UINT64_MAX) {
  RunTrace out;
  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  isa::FastEngine engine(program, memory);
  engine.on_block = [&](uint64_t, const StepEvent* ev, size_t n) {
    out.events.insert(out.events.end(), ev, ev + n);
  };
  engine.run(max_insts);
  out.executed = engine.executed();
  out.halted = engine.halted();
  out.pc = engine.pc();
  out.regs = engine.regs();
  out.mem_digest = memory.digest();
  return out;
}

void expect_identical(const RunTrace& ref, const RunTrace& fast,
                      const std::string& what) {
  EXPECT_EQ(ref.executed, fast.executed) << what;
  EXPECT_EQ(ref.halted, fast.halted) << what;
  EXPECT_EQ(ref.pc, fast.pc) << what;
  EXPECT_EQ(ref.mem_digest, fast.mem_digest) << what;
  for (int r = 0; r < isa::kNumLogicalRegs; ++r) {
    ASSERT_EQ(ref.regs[static_cast<size_t>(r)],
              fast.regs[static_cast<size_t>(r)])
        << what << ": register r" << r;
  }
  ASSERT_EQ(ref.events.size(), fast.events.size()) << what;
  for (size_t i = 0; i < ref.events.size(); ++i) {
    const StepEvent& a = ref.events[i];
    const StepEvent& b = fast.events[i];
    ASSERT_TRUE(a == b) << what << ": event " << i << " differs (ref pc=0x"
                        << std::hex << a.pc << " kind="
                        << static_cast<int>(a.kind) << ", fast pc=0x" << b.pc
                        << " kind=" << static_cast<int>(b.kind) << std::dec
                        << ")";
  }
}

void expect_program_identical(const isa::Program& program,
                              const std::string& what,
                              uint64_t max_insts = UINT64_MAX) {
  expect_identical(run_interpreter(program, max_insts),
                   run_fast(program, max_insts), what);
}

/// Call/ret-heavy generator complementing testing::random_program: a set of
/// leaf/branchy subroutines invoked from a main sequence (and one level of
/// nesting), exercising the link register, RET's indirect targets, and
/// call/ret block chaining. Always terminates.
isa::Program random_call_program(uint64_t seed) {
  isa::Assembler as;
  std::mt19937_64 gen(seed);
  auto pick = [&](int lo, int hi) {
    return static_cast<int>(lo + gen() % static_cast<uint64_t>(hi - lo + 1));
  };
  const uint64_t scratch = as.reserve("scratch", 4096);
  for (int i = 0; i < 16; ++i) {
    as.init_word(scratch + 8 * static_cast<uint64_t>(i), gen());
  }
  for (int r = 1; r <= 10; ++r) {
    as.movi(r, static_cast<int64_t>(gen() % 1000));
  }
  as.movi(13, static_cast<int64_t>(scratch));

  const int n_subs = pick(2, 4);
  // Main: a short counted loop of calls, then fall into the halt. The
  // subroutine bodies live after the halt so they only run when called.
  const int calls = pick(3, 8);
  for (int c = 0; c < calls; ++c) {
    as.call("sub" + std::to_string(pick(0, n_subs - 1)));
    const int rd = pick(1, 10);
    as.addi(rd, rd, pick(-8, 8));
  }
  as.halt();

  // r12 saves the link register across the nested call in sub0.
  for (int s = 0; s < n_subs; ++s) {
    as.label("sub" + std::to_string(s));
    const int body = pick(1, 4);
    for (int i = 0; i < body; ++i) {
      const int rd = pick(1, 10), ra = pick(1, 10), rb = pick(1, 10);
      switch (pick(0, 3)) {
        case 0: as.add(rd, ra, rb); break;
        case 1: as.mul(rd, ra, rb); break;
        case 2:
          as.andi(15, ra, 4088);
          as.add(15, 15, 13);
          as.ld(rd, 15, 0, 8);
          break;
        default: {
          const std::string skip =
              "s" + std::to_string(s) + "_" + std::to_string(i);
          as.beq(ra, rb, skip);
          as.sub(rd, ra, rb);
          as.label(skip);
          break;
        }
      }
    }
    if (s == 0 && n_subs > 1) {
      // One level of nesting: save/restore the link register around it.
      as.mov(12, isa::kLinkReg);
      as.call("sub" + std::to_string(n_subs - 1));
      as.mov(isa::kLinkReg, 12);
    }
    as.ret();
  }
  return as.assemble();
}

// --- differential fuzz over random programs -------------------------------

TEST(EngineDifferential, RandomProgramsFullRun) {
  for (uint64_t seed = 0; seed < 140; ++seed) {
    expect_program_identical(testing::random_program(seed),
                             "random_program seed " + std::to_string(seed));
  }
}

TEST(EngineDifferential, RandomCallProgramsFullRun) {
  for (uint64_t seed = 0; seed < 60; ++seed) {
    expect_program_identical(
        random_call_program(seed),
        "random_call_program seed " + std::to_string(seed));
  }
}

TEST(EngineDifferential, Figure1AcrossBranchDifficulty) {
  for (const int p : {0, 25, 50, 75, 100}) {
    expect_program_identical(testing::figure1_program(256, p, 7),
                             "figure1 p_zero=" + std::to_string(p));
  }
}

// max_insts expiring at arbitrary points — including inside a block — must
// leave identical state and an identical event prefix.
TEST(EngineDifferential, BudgetExpiresInsideBlocks) {
  const isa::Program program = testing::random_program(99);
  const uint64_t full = run_interpreter(program).executed;
  ASSERT_GT(full, 16u);
  for (const uint64_t cap :
       {uint64_t{1}, uint64_t{2}, uint64_t{3}, uint64_t{7}, uint64_t{13},
        full / 2, full - 1, full, full + 100}) {
    expect_program_identical(program, "cap " + std::to_string(cap), cap);
  }
}

TEST(EngineDifferential, ResumeAfterBudgetMatchesStraightRun) {
  const isa::Program program = testing::random_program(3);
  const RunTrace straight = run_fast(program);
  // Same program run in many small installments on one engine.
  RunTrace chunked;
  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  isa::FastEngine engine(program, memory);
  engine.on_block = [&](uint64_t, const StepEvent* ev, size_t n) {
    chunked.events.insert(chunked.events.end(), ev, ev + n);
  };
  while (engine.run(17) > 0) {
  }
  chunked.executed = engine.executed();
  chunked.halted = engine.halted();
  chunked.pc = engine.pc();
  chunked.regs = engine.regs();
  chunked.mem_digest = memory.digest();
  expect_identical(straight, chunked, "17-instruction installments");
}

// --- hand-built block-boundary edge cases ---------------------------------

// A one-instruction block whose branch targets itself.
TEST(EngineDifferential, SelfLoop) {
  isa::Assembler as;
  as.movi(1, 5);
  as.movi(2, 0);
  as.label("spin");
  as.addi(1, 1, -1);
  as.bne(1, 2, "spin");
  as.halt();
  expect_program_identical(as.assemble(), "self-loop");
}

// Branching into the middle of an already-decoded block must create a
// second block keyed at that entry PC with identical semantics.
TEST(EngineDifferential, BranchIntoBlockMiddle) {
  // First pass enters at "entry" (mid-region); the loop back through
  // "head" then decodes the full region from its true start, overlapping
  // the earlier block. The r2 flip makes the second beq fall through.
  isa::Assembler as;
  as.movi(1, 0);
  as.movi(2, 1);
  as.movi(3, 1);
  as.jmp("entry");
  as.label("head");
  as.addi(1, 1, 10);
  as.movi(2, 0);       // second pass: beq falls through to halt
  as.label("entry");   // first entry lands mid-region
  as.addi(1, 1, 1);
  as.addi(1, 1, 2);
  as.beq(2, 3, "head");
  as.halt();
  expect_program_identical(as.assemble(), "branch into block middle");
}

// HALT in the middle of a straight-line region: the fall-through of the
// preceding block runs into a block that halts immediately; the halt must
// not retire or emit an event.
TEST(EngineDifferential, HaltMidStraightLine) {
  isa::Assembler as;
  as.movi(1, 1);
  as.addi(1, 1, 1);
  as.halt();
  as.addi(1, 1, 100);  // dead code after the halt
  as.halt();
  expect_program_identical(as.assemble(), "halt mid straight line");
}

// Conditional branch whose taken target is the halt: taken/not-taken edges
// chain to different blocks.
TEST(EngineDifferential, BothBranchArms) {
  for (const int64_t a : {int64_t{0}, int64_t{1}}) {
    isa::Assembler as;
    as.movi(1, a);
    as.movi(2, 0);
    as.beq(1, 2, "done");
    as.addi(3, 3, 7);
    as.label("done");
    as.halt();
    expect_program_identical(as.assemble(),
                             "branch arm a=" + std::to_string(a));
  }
}

// Running off the end of the code image (no halt) must halt both engines at
// the same pc with the same count.
TEST(EngineDifferential, RunsOffImageEdge) {
  isa::Assembler as;
  as.movi(1, 42);
  as.addi(1, 1, 1);  // no halt: execution falls off the image
  expect_program_identical(as.assemble(), "image edge");
}

// RET to a garbage address: the indirect target leaves the image.
TEST(EngineDifferential, RetToInvalidPc) {
  isa::Assembler as;
  as.movi(isa::kLinkReg, 0x12345);  // unaligned garbage
  as.ret();
  as.halt();
  expect_program_identical(as.assemble(), "ret to invalid pc");
}

// --- FastEngine-specific behaviour ----------------------------------------

TEST(FastEngine, SetPcRedirectsAndClearsHalt) {
  isa::Assembler as;
  as.label("a");
  as.movi(1, 1);
  as.halt();
  as.label("b");
  as.movi(1, 2);
  as.halt();
  const isa::Program program = as.assemble();

  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  isa::FastEngine engine(program, memory);
  engine.run();
  EXPECT_TRUE(engine.halted());
  EXPECT_EQ(engine.reg(1), 1u);
  engine.set_pc(program.base() + 2 * isa::kInstBytes);  // label b
  EXPECT_FALSE(engine.halted());
  engine.run();
  EXPECT_TRUE(engine.halted());
  EXPECT_EQ(engine.reg(1), 2u);
}

TEST(FastEngine, InvalidateCodeBumpsEpochAndRedecodes) {
  const isa::Program program = testing::figure1_program(64);
  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  isa::FastEngine engine(program, memory);
  engine.run(100);
  EXPECT_EQ(engine.epoch(), 0u);
  const uint64_t decoded_before = engine.blocks_decoded();
  EXPECT_GT(decoded_before, 0u);
  engine.invalidate_code();
  EXPECT_EQ(engine.epoch(), 1u);
  // Same image, so execution continues identically — but blocks re-decode.
  engine.run();
  EXPECT_TRUE(engine.halted());
  EXPECT_GT(engine.blocks_decoded(), decoded_before);
  expect_identical(run_interpreter(program), run_fast(program),
                   "invalidate mid-run leaves semantics unchanged");
}

TEST(FastEngine, BlockCacheHitsDominateOnLoops) {
  const isa::Program program = testing::figure1_program(512);
  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  isa::FastEngine engine(program, memory);
  engine.run();
  EXPECT_TRUE(engine.halted());
  // The figure-1 loop re-enters the same few blocks hundreds of times.
  EXPECT_LT(engine.blocks_decoded() * 10, engine.blocks_entered());
}

TEST(FastEngine, NullSinkCollectsNothingButExecutes) {
  const isa::Program program = testing::random_program(11);
  const RunTrace ref = run_interpreter(program);
  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  isa::FastEngine engine(program, memory);
  engine.run();  // no on_block
  EXPECT_EQ(engine.executed(), ref.executed);
  EXPECT_EQ(engine.regs(), ref.regs);
  EXPECT_EQ(memory.digest(), ref.mem_digest);
}

// --- FunctionalEngine facade ----------------------------------------------

TEST(FunctionalEngine, BothKindsDeliverIdenticalStreams) {
  const isa::Program program = testing::random_program(21);
  RunTrace traces[2];
  const EngineKind kinds[2] = {EngineKind::kSwitch, EngineKind::kCached};
  for (int k = 0; k < 2; ++k) {
    mem::MainMemory memory;
    isa::load_data_image(program, memory);
    isa::FunctionalEngine engine(program, memory, kinds[k]);
    EXPECT_EQ(engine.kind(), kinds[k]);
    engine.set_sink([&](uint64_t, const StepEvent* ev, size_t n) {
      traces[k].events.insert(traces[k].events.end(), ev, ev + n);
    });
    engine.run();
    traces[k].executed = engine.executed();
    traces[k].halted = engine.halted();
    traces[k].pc = engine.pc();
    traces[k].regs = engine.regs();
    traces[k].mem_digest = memory.digest();
  }
  expect_identical(traces[0], traces[1], "facade switch vs cached");
}

TEST(FunctionalEngine, RunToIsMonotonic) {
  const isa::Program program = testing::figure1_program(256);
  for (const EngineKind kind : {EngineKind::kSwitch, EngineKind::kCached}) {
    mem::MainMemory memory;
    isa::load_data_image(program, memory);
    isa::FunctionalEngine engine(program, memory, kind);
    engine.run_to(50);
    EXPECT_EQ(engine.executed(), 50u);
    engine.run_to(30);  // no-op: positions are monotonic
    EXPECT_EQ(engine.executed(), 50u);
    engine.run_to(80);
    EXPECT_EQ(engine.executed(), 80u);
  }
}

TEST(FunctionalEngine, EnvKnobParses) {
  const char* saved = std::getenv("CFIR_ENGINE");
  const std::string saved_value = saved != nullptr ? saved : "";

  unsetenv("CFIR_ENGINE");
  EXPECT_EQ(isa::engine_kind_from_env(), EngineKind::kCached);
  setenv("CFIR_ENGINE", "", 1);
  EXPECT_EQ(isa::engine_kind_from_env(), EngineKind::kCached);
  setenv("CFIR_ENGINE", "cached", 1);
  EXPECT_EQ(isa::engine_kind_from_env(), EngineKind::kCached);
  setenv("CFIR_ENGINE", "switch", 1);
  EXPECT_EQ(isa::engine_kind_from_env(), EngineKind::kSwitch);
  setenv("CFIR_ENGINE", "turbo", 1);
  EXPECT_THROW((void)isa::engine_kind_from_env(), std::runtime_error);

  if (saved != nullptr) {
    setenv("CFIR_ENGINE", saved_value.c_str(), 1);
  } else {
    unsetenv("CFIR_ENGINE");
  }
  EXPECT_STREQ(isa::engine_kind_name(EngineKind::kCached), "cached");
  EXPECT_STREQ(isa::engine_kind_name(EngineKind::kSwitch), "switch");
}

}  // namespace
}  // namespace cfir
