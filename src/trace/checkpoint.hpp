// Architectural checkpoints: a snapshot of the register file, memory image
// and PC at an instruction boundary, with file serialization and a
// fast-forward API. A checkpoint captured after N interpreted instructions
// lets any later simulation (reference or detailed core) resume from
// instruction N with bit-identical architectural behaviour — the building
// block for interval sampling (sampling.hpp) and for sharing run state
// between machines.
//
// File format, version 1 (little-endian):
//   magic "CFIRCKP1" | u32 version | u32 reserved
//   | u64 pc | u64 executed | 64 x u64 registers
//   | u64 page_count | page_count x (u64 base_addr | 4096 page bytes)
// All-zero pages are dropped (reads of absent pages return zero).
//
// Version 2 ("CFIRCKP2") appends an opaque functional-warm-state blob
// (trace/warming.hpp) after the pages:
//   ... | u64 warm_size | warm_size bytes
// so a warmed interval ships as one self-contained artifact: architectural
// state to resume from plus the predictor/cache state trained over the
// prefix. save() emits v1 when no warm state is attached; load() accepts
// both versions.
//
// Either version ends with the shared CRC-32 footer (trace/blob.hpp), so a
// truncated or bit-flipped checkpoint is rejected at load. Footer-less
// files written before the footer existed still load.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hpp"
#include "mem/main_memory.hpp"

namespace cfir::trace {

inline constexpr char kCheckpointMagic[8] = {'C', 'F', 'I', 'R',
                                             'C', 'K', 'P', '1'};
inline constexpr char kCheckpointMagicV2[8] = {'C', 'F', 'I', 'R',
                                               'C', 'K', 'P', '2'};
inline constexpr uint32_t kCheckpointVersion = 1;
inline constexpr uint32_t kCheckpointVersionWarm = 2;

struct Checkpoint {
  uint64_t pc = 0;
  uint64_t executed = 0;  ///< instructions retired before this point
  std::array<uint64_t, isa::kNumLogicalRegs> regs{};
  mem::MainMemory memory;
  /// Optional functional-warm-state blob (FunctionalWarmer::serialize_state
  /// for the config the interval will run under); empty = cold checkpoint.
  std::vector<uint8_t> warm;

  [[nodiscard]] bool has_warm() const { return !warm.empty(); }

  /// Writes v2 when warm state is attached and `include_warm`, v1
  /// otherwise. `include_warm = false` strips the warm blob from the file
  /// without copying the (large) memory image — multi-config manifests
  /// share one cold architectural checkpoint per interval and carry warm
  /// state in per-config sidecars instead (trace/manifest.hpp).
  void save(const std::string& path, bool include_warm = true) const;
  [[nodiscard]] static Checkpoint load(const std::string& path);
};

/// Runs the functional engine `n_insts` instructions from program start
/// (fresh memory, data image applied) and snapshots the result. Stops early
/// at HALT; check `executed` when exactness matters.
[[nodiscard]] Checkpoint fast_forward(const isa::Program& program,
                                      uint64_t n_insts);

/// One engine pass capturing a checkpoint at every boundary (sorted,
/// strictly increasing instruction counts; 0 snapshots the initial state).
/// Returns one checkpoint per boundary; boundaries past HALT repeat the
/// final state.
[[nodiscard]] std::vector<Checkpoint> interval_checkpoints(
    const isa::Program& program, const std::vector<uint64_t>& boundaries);

}  // namespace cfir::trace
