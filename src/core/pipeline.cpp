#include "core/pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace cfir::core {

using isa::Opcode;

const char* sched_mode_name(SchedMode mode) {
  switch (mode) {
    case SchedMode::kRef: return "ref";
    case SchedMode::kFast: return "fast";
  }
  return "?";
}

SchedMode sched_mode_from_env() {
  const char* v = std::getenv("CFIR_CORE_SCHED");
  if (v == nullptr || *v == '\0' || std::string_view(v) == "fast") {
    return SchedMode::kFast;
  }
  if (std::string_view(v) == "ref") return SchedMode::kRef;
  throw std::runtime_error("CFIR_CORE_SCHED must be 'fast' or 'ref', got '" +
                           std::string(v) + "'");
}

Core::Core(const CoreConfig& config, const isa::Program& program,
           mem::MainMemory& memory, Mechanism* mechanism, SchedMode sched)
    : cfg_(config),
      program_(program),
      mem_(memory),
      mech_(mechanism),
      sched_(sched),
      hierarchy_(config.memory),
      gshare_(config.gshare_entries, config.gshare_history_bits),
      mbs_(config.mbs_sets, config.mbs_ways),
      regfile_(config.num_phys_regs),
      lsq_(config.lsq_size),
      fu_(cfg_) {
  if (cfg_.num_phys_regs < isa::kNumLogicalRegs + 8) {
    throw std::runtime_error("num_phys_regs too small for the logical file");
  }
  rob_.resize(cfg_.rob_size);
  reg_waiters_.resize(cfg_.num_phys_regs);
  if (sched_ == SchedMode::kFast) {
    cal_.resize(kCalBuckets);
    smem_next_.assign(cfg_.rob_size, kUnlinked);
    smem_prev_.assign(cfg_.rob_size, kUnlinked);
    smem_gate_epoch_.assign(cfg_.rob_size, 0);
    smem_gate_port_.assign(cfg_.rob_size, 0);
    reg_wait_head_.assign(cfg_.num_phys_regs, -1);
    reg_wait_tail_.assign(cfg_.num_phys_regs, -1);
    // Live line-buffer entries are at most (window + 1 cycles of history)
    // x (<= cache_ports inserts/cycle); size the ring 2x that so a live
    // line can never be overwritten (bit-identity with the ref map).
    uint32_t ring = 64;
    const uint32_t need =
        static_cast<uint32_t>(kLineBufferWindow + 2) *
        std::max<uint32_t>(1, cfg_.cache_ports) * 2;
    while (ring < need) ring <<= 1;
    line_ring_.assign(ring, LineSlot{});
    line_ring_mask_ = ring - 1;
  }
  obs::Registry& reg = obs::Registry::instance();
  obs_cycles_ = &reg.counter("core.cycles");
  obs_flushes_ = &reg.counter("core.flushes");
  obs_rob_occupancy_ = &reg.histogram("core.rob_occupancy");
  // Initial architectural mapping: one physical register per logical, value 0.
  for (int l = 0; l < isa::kNumLogicalRegs; ++l) {
    const int p = regfile_.alloc();
    regfile_.write(p, 0);
    rename_.remap(l, p);
  }
  fetch_pc_ = program_.base();
  if (mech_ != nullptr) mech_->attach(*this);
}

void Core::set_arch_state(
    const std::array<uint64_t, isa::kNumLogicalRegs>& regs, uint64_t pc) {
  if (cycle_ != 0 || rob_count_ != 0) {
    throw std::runtime_error("set_arch_state: core already running");
  }
  for (int l = 0; l < isa::kNumLogicalRegs; ++l) {
    arch_regs_[static_cast<size_t>(l)] = regs[static_cast<size_t>(l)];
    regfile_.write(rename_.lookup(l), regs[static_cast<size_t>(l)]);
  }
  fetch_pc_ = pc;
}

bool Core::slot_live(uint32_t slot, uint64_t seq) const {
  if (rob_count_ == 0) return false;
  const uint32_t size = static_cast<uint32_t>(rob_.size());
  const uint32_t idx = (slot + size - rob_head_) % size;
  return idx < rob_count_ && rob_[slot].seq == seq;
}

uint32_t Core::rob_tail_slot() const {
  return (rob_head_ + rob_count_) % static_cast<uint32_t>(rob_.size());
}

void Core::schedule_completion(uint32_t slot, uint64_t seq, uint64_t when) {
  if (sched_ == SchedMode::kFast) {
    // Almost every event lands within the ring horizon; the rare deeper
    // latency parks in the overflow vector and migrates during drain.
    if (when - cycle_ < kCalBuckets) {
      cal_[when & (kCalBuckets - 1)].push_back({when, seq, slot});
      // A zero-latency completion scheduled after this cycle's drain (the
      // copy-issue path) must re-open its time slot.
      if (when < cal_next_drain_) cal_next_drain_ = when;
    } else {
      cal_overflow_.push_back({when, seq, slot});
    }
    return;
  }
  events_.push({when, seq, slot});
}

void Core::add_waiter(int phys, uint32_t slot, uint64_t seq) {
  if (sched_ == SchedMode::kFast) {
    int32_t n;
    if (waiter_free_ >= 0) {
      n = waiter_free_;
      waiter_free_ = waiter_pool_[static_cast<size_t>(n)].next;
    } else {
      n = static_cast<int32_t>(waiter_pool_.size());
      waiter_pool_.push_back({});
    }
    WaiterNode& node = waiter_pool_[static_cast<size_t>(n)];
    node.seq = seq;
    node.slot = slot;
    node.next = -1;
    const size_t p = static_cast<size_t>(phys);
    if (reg_wait_tail_[p] >= 0) {
      waiter_pool_[static_cast<size_t>(reg_wait_tail_[p])].next = n;
    } else {
      reg_wait_head_[p] = n;
    }
    reg_wait_tail_[p] = n;
    return;
  }
  reg_waiters_[static_cast<size_t>(phys)].push_back({slot, seq});
}

void Core::ready_push(uint64_t seq, uint32_t slot) {
  if (sched_ == SchedMode::kFast) {
    ready_list_push(seq, slot);
    return;
  }
  ready_q_.push({seq, slot});
}

void Core::ready_list_push(uint64_t seq, uint32_t slot) {
  int32_t n;
  if (ready_free_ >= 0) {
    n = ready_free_;
    ready_free_ = ready_pool_[static_cast<size_t>(n)].next;
  } else {
    n = static_cast<int32_t>(ready_pool_.size());
    ready_pool_.push_back({});
  }
  ReadyNode& node = ready_pool_[static_cast<size_t>(n)];
  node.seq = seq;
  node.slot = slot;
  // Insert keeping ascending seq. Dispatch pushes the globally newest seq
  // (O(1) tail append). Wake-ups scan from whichever end is nearer by seq
  // distance — seqs are dense (one per dispatch), so this stays O(1)-ish
  // even right after a squash leaves a run of stale high-seq nodes at the
  // tail while survivors wake near the head.
  int32_t after;
  if (ready_tail_ < 0 ||
      seq >= ready_pool_[static_cast<size_t>(ready_tail_)].seq) {
    after = ready_tail_;
  } else if (seq <= ready_pool_[static_cast<size_t>(ready_head_)].seq) {
    after = -1;
  } else if (seq - ready_pool_[static_cast<size_t>(ready_head_)].seq <
             ready_pool_[static_cast<size_t>(ready_tail_)].seq - seq) {
    int32_t before = ready_head_;
    while (ready_pool_[static_cast<size_t>(before)].seq <= seq) {
      before = ready_pool_[static_cast<size_t>(before)].next;
    }
    after = ready_pool_[static_cast<size_t>(before)].prev;
  } else {
    after = ready_tail_;
    while (after >= 0 && ready_pool_[static_cast<size_t>(after)].seq > seq) {
      after = ready_pool_[static_cast<size_t>(after)].prev;
    }
  }
  node.prev = after;
  if (after >= 0) {
    node.next = ready_pool_[static_cast<size_t>(after)].next;
    ready_pool_[static_cast<size_t>(after)].next = n;
  } else {
    node.next = ready_head_;
    ready_head_ = n;
  }
  if (node.next >= 0) {
    ready_pool_[static_cast<size_t>(node.next)].prev = n;
  } else {
    ready_tail_ = n;
  }
}

void Core::ready_list_unlink(int32_t n) {
  ReadyNode& node = ready_pool_[static_cast<size_t>(n)];
  if (node.prev >= 0) {
    ready_pool_[static_cast<size_t>(node.prev)].next = node.next;
  } else {
    ready_head_ = node.next;
  }
  if (node.next >= 0) {
    ready_pool_[static_cast<size_t>(node.next)].prev = node.prev;
  } else {
    ready_tail_ = node.prev;
  }
  node.next = ready_free_;
  node.prev = -1;
  ready_free_ = n;
}

void Core::smem_insert(uint32_t slot, uint64_t seq) {
  const int32_t s = static_cast<int32_t>(slot);
  assert(smem_next_[slot] == kUnlinked && "slot already stalled");
  // Sorted by seq ascending; listed entries are always live (squash unlinks
  // eagerly), so rob_[p].seq IS the entry's sort key.
  int32_t after = smem_tail_;
  while (after >= 0 && rob_[static_cast<uint32_t>(after)].seq > seq) {
    after = smem_prev_[static_cast<size_t>(after)];
  }
  smem_prev_[slot] = after;
  if (after >= 0) {
    smem_next_[slot] = smem_next_[static_cast<size_t>(after)];
    smem_next_[static_cast<size_t>(after)] = s;
  } else {
    smem_next_[slot] = smem_head_;
    smem_head_ = s;
  }
  if (smem_next_[slot] >= 0) {
    smem_prev_[static_cast<size_t>(smem_next_[slot])] = s;
  } else {
    smem_tail_ = s;
  }
}

void Core::smem_unlink(uint32_t slot) {
  if (smem_next_[slot] == kUnlinked) return;
  const int32_t nxt = smem_next_[slot];
  const int32_t prv = smem_prev_[slot];
  if (prv >= 0) {
    smem_next_[static_cast<size_t>(prv)] = nxt;
  } else {
    smem_head_ = nxt;
  }
  if (nxt >= 0) {
    smem_prev_[static_cast<size_t>(nxt)] = prv;
  } else {
    smem_tail_ = prv;
  }
  smem_next_[slot] = kUnlinked;
  smem_prev_[slot] = kUnlinked;
}

void Core::wake_reg(int phys) {
  if (sched_ == SchedMode::kFast) {
    // Detach the chain first (the ref path's move-then-clear): waiters
    // added during the walk start a fresh chain woken next time.
    int32_t n = reg_wait_head_[static_cast<size_t>(phys)];
    if (n < 0) return;
    reg_wait_head_[static_cast<size_t>(phys)] = -1;
    reg_wait_tail_[static_cast<size_t>(phys)] = -1;
    while (n >= 0) {
      const WaiterNode w = waiter_pool_[static_cast<size_t>(n)];
      waiter_pool_[static_cast<size_t>(n)].next = waiter_free_;
      waiter_free_ = n;
      n = w.next;
      if (!slot_live_fast(w.slot, w.seq)) continue;
      DynInst& di = at(w.slot);
      if (di.completed || di.issued) continue;
      if (di.mech.reused && !di.mech.via_copy) {
        schedule_completion(w.slot, w.seq, cycle_ + 1);
      } else if (di.pending_ops > 0) {
        if (--di.pending_ops == 0) ready_push(w.seq, w.slot);
      }
    }
    return;
  }
  auto& ws = reg_waiters_[static_cast<size_t>(phys)];
  if (ws.empty()) return;
  std::vector<Waiter> pending = std::move(ws);
  ws.clear();
  for (const Waiter& w : pending) {
    if (!slot_live(w.slot, w.seq)) continue;
    DynInst& di = at(w.slot);
    if (di.completed || di.issued) continue;
    if (di.mech.reused && !di.mech.via_copy) {
      // Validation instruction waiting for its replica: completes without
      // touching the issue machinery (paper section 2.3.4).
      schedule_completion(w.slot, w.seq, cycle_ + 1);
    } else if (di.pending_ops > 0) {
      if (--di.pending_ops == 0) ready_push(w.seq, w.slot);
    }
  }
}

void Core::replica_written(int phys) { wake_reg(phys); }

void Core::wake_copy(uint32_t rob_slot, uint64_t seq) {
  const bool live = sched_ == SchedMode::kFast ? slot_live_fast(rob_slot, seq)
                                               : slot_live(rob_slot, seq);
  if (!live) return;
  DynInst& di = at(rob_slot);
  if (di.pending_ops > 0 && --di.pending_ops == 0) {
    ready_push(seq, rob_slot);
  }
}

bool Core::line_buffer_lookup(uint64_t line, uint32_t& latency_out) {
  if (sched_ == SchedMode::kFast) {
    // Newest-first: the most recent insert for a line is the map's
    // overwrite. Entries are inserted in cycle order, so the first expired
    // entry ends the search (everything older is expired too, and expired
    // entries always miss).
    const uint32_t size = static_cast<uint32_t>(line_ring_.size());
    const uint32_t valid = static_cast<uint32_t>(
        std::min<uint64_t>(line_ring_fill_, size));
    for (uint32_t k = 0; k < valid; ++k) {
      LineSlot& ls = line_ring_[(line_ring_pos_ - 1 - k) & line_ring_mask_];
      if (cycle_ > ls.expire_cycle) break;
      if (ls.line != line) continue;
      if (ls.uses >= cfg_.wide_bus_loads_per_access) return false;
      ++ls.uses;
      ++stats_.loads_piggybacked;
      latency_out = ls.ready_cycle > cycle_
                        ? static_cast<uint32_t>(ls.ready_cycle - cycle_)
                        : 1;
      return true;
    }
    return false;
  }
  const auto it = line_buffer_.find(line);
  if (it == line_buffer_.end()) return false;
  LineAccess& la = it->second;
  if (cycle_ > la.expire_cycle || la.uses >= cfg_.wide_bus_loads_per_access) {
    return false;
  }
  ++la.uses;
  ++stats_.loads_piggybacked;
  latency_out = la.ready_cycle > cycle_
                    ? static_cast<uint32_t>(la.ready_cycle - cycle_)
                    : 1;
  return true;
}

void Core::line_buffer_insert(uint64_t line, uint32_t latency) {
  if (sched_ == SchedMode::kFast) {
    LineSlot& ls = line_ring_[line_ring_pos_ & line_ring_mask_];
    ++line_ring_pos_;
    if (line_ring_fill_ < line_ring_.size()) ++line_ring_fill_;
    ls.line = line;
    ls.ready_cycle = cycle_ + latency;
    ls.expire_cycle = cycle_ + kLineBufferWindow;
    ls.uses = 1;
    return;
  }
  if (line_buffer_.size() > 32) {
    for (auto it = line_buffer_.begin(); it != line_buffer_.end();) {
      it = it->second.expire_cycle < cycle_ ? line_buffer_.erase(it)
                                            : std::next(it);
    }
  }
  line_buffer_[line] =
      LineAccess{cycle_ + latency, 1, cycle_ + kLineBufferWindow};
}

bool Core::try_replica_load_access(uint64_t addr, uint32_t& latency_out) {
  const uint64_t line = addr / cfg_.memory.l1d.line_bytes;
  if (cfg_.wide_bus && line_buffer_lookup(line, latency_out)) return true;
  if (!fu_.try_reserve_mem_port()) return false;
  const uint32_t lat = hierarchy_.access_data(addr, false, cycle_);
  if (cfg_.wide_bus) {
    ++stats_.wide_accesses;
    line_buffer_insert(line, lat);
  }
  latency_out = lat;
  return true;
}

// ---------------------------------------------------------------------------
// Fetch / decode / rename / dispatch (fused front end; the branch
// misprediction penalty models the refill depth).
// ---------------------------------------------------------------------------
void Core::fetch_stage() {
  if (halted_ || fetch_stalled_ || cycle_ < fetch_resume_cycle_) return;
  uint32_t fetched = 0;
  while (fetched < cfg_.fetch_width) {
    if (rob_count_ >= rob_.size()) break;
    const isa::Instruction* ip = program_.try_at(fetch_pc_);
    if (ip == nullptr) {
      // Wrong-path fetch ran off the image (or the program ended): stall
      // until a recovery redirects us, or drain to completion.
      fetch_stalled_ = true;
      break;
    }
    // Instruction cache: one access per new line.
    const uint64_t line = fetch_pc_ / cfg_.memory.l1i.line_bytes;
    if (line != last_fetch_line_) {
      const uint32_t lat = hierarchy_.access_inst(fetch_pc_, cycle_);
      last_fetch_line_ = line;
      if (lat > cfg_.memory.l1i.hit_latency) {
        fetch_resume_cycle_ = cycle_ + lat;
        break;
      }
    }
    const isa::Instruction inst = *ip;
    if (isa::is_mem(inst.op) && lsq_.full()) break;
    if (isa::has_dest(inst.op) && regfile_.free_count() == 0) {
      // Rename starvation; the watchdog eventually reclaims speculative
      // registers so that replica hoarding can never wedge the machine.
      ++stats_.rename_stall_cycles;
      if (rename_starved_since_ == 0) rename_starved_since_ = cycle_;
      if (cycle_ - rename_starved_since_ >= cfg_.watchdog_cycles &&
          mech_ != nullptr) {
        mech_->on_watchdog_reclaim();
        ++stats_.watchdog_reclaims;
        rename_starved_since_ = cycle_;
      }
      break;
    }
    rename_starved_since_ = 0;

    DynInst di;
    di.pc = fetch_pc_;
    di.inst = inst;
    uint64_t next_fetch = fetch_pc_ + isa::kInstBytes;
    bool taken = false;
    if (isa::is_cond_branch(inst.op)) {
      di.predicted_taken = gshare_.predict(fetch_pc_);
      di.gshare_snapshot = gshare_.speculate(di.predicted_taken);
      di.predicted_target = di.predicted_taken
                                ? static_cast<uint64_t>(inst.imm)
                                : fetch_pc_ + isa::kInstBytes;
      di.ras_snapshot = ras_.snapshot();
      di.has_ras_snapshot = true;
      taken = di.predicted_taken;
      if (taken) next_fetch = di.predicted_target;
    } else if (inst.op == Opcode::kJmp || inst.op == Opcode::kCall) {
      di.predicted_taken = true;
      di.predicted_target = static_cast<uint64_t>(inst.imm);
      if (inst.op == Opcode::kCall) ras_.push(fetch_pc_ + isa::kInstBytes);
      taken = true;
      next_fetch = di.predicted_target;
    } else if (inst.op == Opcode::kRet) {
      di.gshare_snapshot = gshare_.history();
      di.ras_snapshot = ras_.snapshot();
      di.has_ras_snapshot = true;
      di.predicted_taken = true;
      di.predicted_target = ras_.pop();
      taken = true;
      next_fetch = di.predicted_target;
    } else if (inst.op == Opcode::kHalt) {
      fetch_stalled_ = true;  // nothing sensible follows a halt
    }

    dispatch(std::move(di));
    ++fetched;
    fetch_pc_ = next_fetch;
    if (taken) break;  // up to 1 taken branch per cycle (Table 1)
  }
}

void Core::dispatch(DynInst di) {
  di.seq = next_seq_++;
  ++stats_.fetched;
  const Opcode op = di.inst.op;
  di.is_load = isa::is_load(op);
  di.is_store = isa::is_store(op);
  di.is_branch = isa::is_branch(op);
  di.is_cond_branch = isa::is_cond_branch(op);
  di.has_dest = isa::has_dest(op);
  di.mem_size = isa::mem_bytes(op);
  if (isa::reads_rs1(op)) di.ps1 = rename_.lookup(di.inst.rs1);
  if (isa::reads_rs2(op)) di.ps2 = rename_.lookup(di.inst.rs2);

  if (mech_ != nullptr) mech_->on_decode(di);

  if (di.has_dest) {
    if (di.mech.reused && !di.mech.via_copy) {
      di.pd = di.mech.reuse_phys;
      di.mech.pd_from_replica = true;
    } else {
      di.pd = regfile_.alloc();
      assert(di.pd >= 0 && "fetch checked the free list");
    }
    di.prev_pd = di.old_pd = rename_.remap(di.inst.rd, di.pd);
  }

  const uint32_t slot = rob_tail_slot();
  const uint64_t seq = di.seq;

  if ((di.is_load || di.is_store) && !di.mech.reused) {
    LsqEntry e;
    e.seq = seq;
    e.is_store = di.is_store;
    e.size = di.mem_size;
    e.rob_slot = slot;
    const bool ok = lsq_.push(e);
    assert(ok && "fetch checked LSQ space");
    (void)ok;
  }

  // Readiness.
  if (di.mech.reused && !di.mech.via_copy) {
    if (regfile_.ready(di.pd)) {
      schedule_completion(slot, seq, cycle_ + 1);
    } else {
      add_waiter(di.pd, slot, seq);
    }
  } else if (di.mech.reused && di.mech.via_copy) {
    if (mech_->copy_source_ready(di)) {
      ready_push(seq, slot);
    } else {
      di.pending_ops = 1;
      mech_->register_copy_waiter(slot, di);
    }
  } else if (di.mech.squash_reused) {
    // ci-iw baseline: the squash-reuse buffer supplied the value; the
    // instruction bypasses issue entirely (it was executed before the
    // squash and is control independent).
    di.result = di.mech.squash_value;
    if (di.has_dest) regfile_.write(di.pd, di.result);
    di.completed = true;
  } else if (op == Opcode::kNop || op == Opcode::kHalt || op == Opcode::kJmp) {
    di.completed = true;
  } else if (op == Opcode::kCall) {
    // Link value is known at rename; model it as zero-latency.
    di.result = di.pc + isa::kInstBytes;
    regfile_.write(di.pd, di.result);
    di.completed = true;
  } else {
    uint32_t pending = 0;
    if (di.ps1 >= 0 && !regfile_.ready(di.ps1)) {
      ++pending;
      add_waiter(di.ps1, slot, seq);
    }
    if (di.ps2 >= 0 && di.ps2 != di.ps1 && !regfile_.ready(di.ps2)) {
      ++pending;
      add_waiter(di.ps2, slot, seq);
    }
    di.pending_ops = pending;
    if (pending == 0) ready_push(seq, slot);
  }

  di.dispatched = true;
  rob_[slot] = std::move(di);
  ++rob_count_;
  if (mech_ != nullptr) mech_->on_renamed(rob_[slot]);
}

// ---------------------------------------------------------------------------
// Issue / execute.
// ---------------------------------------------------------------------------
void Core::issue_stage() {
  if (sched_ == SchedMode::kFast) {
    issue_stage_fast();
  } else {
    issue_stage_ref();
  }
}

void Core::issue_stage_ref() {
  uint32_t slots = cfg_.issue_width;

  // Memory operations that stalled on disambiguation retry first (they are
  // the oldest by construction).
  if (!stalled_mem_.empty()) {
    std::sort(stalled_mem_.begin(), stalled_mem_.end());
    std::vector<std::pair<uint64_t, uint32_t>> still;
    size_t i = 0;
    for (; i < stalled_mem_.size(); ++i) {
      const auto [seq, slot] = stalled_mem_[i];
      if (slots == 0) break;
      if (!slot_live(slot, seq)) continue;
      DynInst& di = at(slot);
      if (di.issued || di.completed || di.pending_ops > 0) continue;
      if (try_issue(slot)) {
        --slots;
      } else {
        still.emplace_back(seq, slot);
      }
    }
    for (; i < stalled_mem_.size(); ++i) still.push_back(stalled_mem_[i]);
    stalled_mem_ = std::move(still);
  }

  // Main select loop: oldest-ready-first with lazy invalidation.
  std::vector<std::pair<uint64_t, uint32_t>> retry;
  uint32_t inspected = 0;
  const uint32_t inspect_limit = cfg_.issue_width * 4;
  while (slots > 0 && !ready_q_.empty() && inspected < inspect_limit) {
    const auto [seq, slot] = ready_q_.top();
    ready_q_.pop();
    ++inspected;
    if (!slot_live(slot, seq)) continue;
    DynInst& di = at(slot);
    if (di.issued || di.completed || di.pending_ops > 0) continue;
    if (di.mech.reused && di.mech.via_copy) {
      uint32_t lat = 0;
      uint64_t value = 0;
      if (mech_->try_issue_copy(di, cycle_, lat, value)) {
        di.issued = true;
        di.result = value;
        schedule_completion(slot, seq, cycle_ + lat);
        --slots;
      } else {
        retry.emplace_back(seq, slot);
      }
      continue;
    }
    if (try_issue(slot)) {
      --slots;
    } else if (di.is_load || di.is_store) {
      stalled_mem_.emplace_back(seq, slot);
    } else {
      retry.emplace_back(seq, slot);
    }
  }
  for (const auto& p : retry) ready_q_.push(p);

  // Leftover bandwidth goes to the replica engine (section 2.4.1: lower
  // priority than the main thread).
  if (mech_ != nullptr) {
    CycleResources res{slots, fu_.simple_int_left(), fu_.muldiv_left(),
                       fu_.mem_ports_left()};
    mech_->issue_cycle(cycle_, res);
  }
}

void Core::issue_stage_fast() {
  uint32_t slots = cfg_.issue_width;

  // Stalled memory retries: the intrusive list is already seq-sorted and
  // all-live, so this walk visits exactly the entries the ref path's
  // sort-filter-rebuild visits, in the same order, and stopping at
  // slots == 0 retains the tail in place.
  int32_t s = smem_head_;
  while (s >= 0) {
    if (slots == 0) break;
    const int32_t next = smem_next_[static_cast<size_t>(s)];
    const uint32_t slot = static_cast<uint32_t>(s);
    DynInst& di = at(slot);
    if (di.issued || di.completed || di.pending_ops > 0) {
      smem_unlink(slot);
    } else if (smem_gate_epoch_[slot] == lsq_store_epoch_ &&
               (!smem_gate_port_[slot] ||
                (!cfg_.wide_bus && fu_.mem_ports_left() == 0))) {
      // Provably refused again (see the gate's invariant in the header):
      // skipping replays neither the address recomputation nor the LSQ
      // scans, and a refused ref attempt consumed no issue slots either.
    } else if (try_issue(slot)) {
      smem_unlink(slot);
      --slots;
    } else {
      smem_gate_epoch_[slot] = lsq_store_epoch_;
      smem_gate_port_[slot] = mem_fail_port_;
    }
    s = next;
  }

  // Main select loop: the seq-sorted ready list yields the heap's pop
  // order; stale nodes (squashed slots) are dropped on inspection and
  // consume select bandwidth exactly like the heap's stale pops; retried
  // entries keep their position instead of the pop/re-push round trip.
  uint32_t inspected = 0;
  const uint32_t inspect_limit = cfg_.issue_width * 4;
  int32_t n = ready_head_;
  while (slots > 0 && n >= 0 && inspected < inspect_limit) {
    const int32_t next = ready_pool_[static_cast<size_t>(n)].next;
    const uint64_t seq = ready_pool_[static_cast<size_t>(n)].seq;
    const uint32_t slot = ready_pool_[static_cast<size_t>(n)].slot;
    ++inspected;
    if (!slot_live_fast(slot, seq)) {
      ready_list_unlink(n);
      n = next;
      continue;
    }
    DynInst& di = at(slot);
    if (di.issued || di.completed || di.pending_ops > 0) {
      ready_list_unlink(n);
      n = next;
      continue;
    }
    if (di.mech.reused && di.mech.via_copy) {
      uint32_t lat = 0;
      uint64_t value = 0;
      if (mech_->try_issue_copy(di, cycle_, lat, value)) {
        di.issued = true;
        di.result = value;
        schedule_completion(slot, seq, cycle_ + lat);
        ready_list_unlink(n);
        --slots;
      }
      n = next;
      continue;
    }
    if (try_issue(slot)) {
      ready_list_unlink(n);
      --slots;
    } else if (di.is_load || di.is_store) {
      ready_list_unlink(n);
      smem_insert(slot, seq);
      smem_gate_epoch_[slot] = lsq_store_epoch_;
      smem_gate_port_[slot] = mem_fail_port_;
    }
    n = next;
  }

  // Leftover bandwidth goes to the replica engine (section 2.4.1: lower
  // priority than the main thread).
  if (mech_ != nullptr) {
    CycleResources res{slots, fu_.simple_int_left(), fu_.muldiv_left(),
                       fu_.mem_ports_left()};
    mech_->issue_cycle(cycle_, res);
  }
}

bool Core::try_issue(uint32_t slot) {
  DynInst& di = at(slot);
  const Opcode op = di.inst.op;
  if (di.is_load || di.is_store) return issue_mem(di);
  if (!fu_.try_reserve(op)) return false;
  di.v1 = di.ps1 >= 0 ? regfile_.value(di.ps1) : 0;
  di.v2 = di.ps2 >= 0 ? regfile_.value(di.ps2) : 0;
  if (di.is_cond_branch) {
    di.actual_taken = isa::eval_branch(op, di.v1, di.v2);
    di.actual_target = di.actual_taken ? static_cast<uint64_t>(di.inst.imm)
                                       : di.pc + isa::kInstBytes;
  } else if (op == Opcode::kRet) {
    di.actual_taken = true;
    di.actual_target = di.v1;
  } else if (di.has_dest) {
    di.result = isa::eval_alu(op, di.v1, di.v2, di.inst.imm);
  }
  di.issued = true;
  execute(di, slot, fu_.latency(op));
  return true;
}

bool Core::issue_mem(DynInst& di) {
  mem_fail_port_ = false;
  const uint64_t seq = di.seq;
  const uint32_t slot = static_cast<uint32_t>(&di - rob_.data());
  // Address generation.
  di.v1 = di.ps1 >= 0 ? regfile_.value(di.ps1) : 0;
  di.mem_addr = di.v1 + static_cast<uint64_t>(di.inst.imm);
  LsqEntry* entry = lsq_.find(seq);
  assert(entry != nullptr);
  if (di.is_store) {
    di.v2 = regfile_.value(di.ps2);
    di.store_value = di.v2;
    if (di.mem_size < 8) {
      di.store_value &= (uint64_t{1} << (8 * di.mem_size)) - 1;
    }
    entry->addr = di.mem_addr;
    entry->addr_known = true;
    entry->value = di.store_value;
    entry->value_known = true;
    di.addr_known = true;
    di.issued = true;
    ++lsq_store_epoch_;  // addr+value now known: stalled loads may unblock
    execute(di, slot, cfg_.agu_latency);
    // A store becoming address-known may unblock stalled loads next cycle.
    return true;
  }

  // Load: conservative disambiguation (Table 1).
  entry->addr = di.mem_addr;
  entry->addr_known = true;
  di.addr_known = true;
  if (!lsq_.older_store_addrs_known(seq)) return false;
  uint64_t fwd = 0;
  switch (lsq_.try_forward(seq, di.mem_addr, di.mem_size, fwd)) {
    case LoadStoreQueue::ForwardResult::kConflict:
      return false;
    case LoadStoreQueue::ForwardResult::kForwarded:
      di.result = fwd;
      di.forwarded = true;
      di.issued = true;
      ++stats_.lsq_forwards;
      execute(di, slot, cfg_.agu_latency + 1);
      return true;
    case LoadStoreQueue::ForwardResult::kNone:
      break;
  }
  // Cache access with optional wide-bus line-buffer piggybacking.
  const uint64_t line = di.mem_addr / cfg_.memory.l1d.line_bytes;
  uint32_t lat = 0;
  if (cfg_.wide_bus && line_buffer_lookup(line, lat)) {
    // Served from a recent wide access: no port, no new cache access.
  } else if (fu_.try_reserve_mem_port()) {
    lat = hierarchy_.access_data(di.mem_addr, false, cycle_);
    if (cfg_.wide_bus) {
      ++stats_.wide_accesses;
      line_buffer_insert(line, lat);
    }
  } else {
    mem_fail_port_ = true;
    return false;
  }
  di.result = mem_.read(di.mem_addr, di.mem_size);
  di.issued = true;
  execute(di, slot, cfg_.agu_latency + lat);
  return true;
}

void Core::execute(DynInst& di, uint32_t slot, uint32_t latency) {
  schedule_completion(slot, di.seq, cycle_ + std::max<uint32_t>(1, latency));
}

// ---------------------------------------------------------------------------
// Writeback: completion events, branch resolution, recovery.
// ---------------------------------------------------------------------------
void Core::writeback_stage() {
  if (sched_ == SchedMode::kFast) {
    writeback_stage_fast();
  } else {
    writeback_stage_ref();
  }
}

void Core::writeback_stage_ref() {
  while (!events_.empty() && events_.top().when <= cycle_) {
    const Event ev = events_.top();
    events_.pop();
    if (!slot_live(ev.slot, ev.seq)) continue;
    complete(ev.slot);
  }
}

void Core::writeback_stage_fast() {
  // Migrate overflow events whose due time entered the ring horizon.
  if (!cal_overflow_.empty()) {
    size_t keep = 0;
    for (size_t i = 0; i < cal_overflow_.size(); ++i) {
      const Event& ev = cal_overflow_[i];
      if (ev.when - cycle_ < kCalBuckets) {
        cal_[ev.when & (kCalBuckets - 1)].push_back(ev);
      } else {
        cal_overflow_[keep++] = cal_overflow_[i];
      }
    }
    cal_overflow_.resize(keep);
  }
  // Drain every not-yet-drained time slot <= cycle_ in (when, seq) order —
  // exactly the heap's pop order. Normally this is the single bucket for
  // cycle_; a zero-latency event pushed after its slot drained reopens it
  // (cal_next_drain_ rollback in schedule_completion).
  for (uint64_t t = cal_next_drain_; t <= cycle_; ++t) {
    std::vector<Event>& bucket = cal_[t & (kCalBuckets - 1)];
    if (bucket.empty()) continue;
    cal_scratch_.clear();
    size_t keep = 0;
    for (size_t i = 0; i < bucket.size(); ++i) {
      if (bucket[i].when == t) {
        cal_scratch_.push_back(bucket[i]);
      } else {
        bucket[keep++] = bucket[i];
      }
    }
    bucket.resize(keep);
    std::sort(cal_scratch_.begin(), cal_scratch_.end(),
              [](const Event& a, const Event& b) { return a.seq < b.seq; });
    for (const Event& ev : cal_scratch_) {
      if (!slot_live_fast(ev.slot, ev.seq)) continue;
      complete(ev.slot);
    }
  }
  cal_next_drain_ = cycle_ + 1;
}

void Core::complete(uint32_t slot) {
  DynInst& di = at(slot);
  if (di.completed) return;
  di.completed = true;
  if (di.mech.reused && !di.mech.via_copy) {
    di.result = regfile_.value(di.pd);  // replica already wrote the register
  } else if (di.has_dest) {
    regfile_.write(di.pd, di.result);
    wake_reg(di.pd);
  }
  if (di.is_branch && !di.resolved &&
      (di.is_cond_branch || di.inst.op == Opcode::kRet)) {
    resolve_branch(slot);
  }
}

void Core::resolve_branch(uint32_t slot) {
  DynInst& di = at(slot);
  di.resolved = true;
  const bool misp =
      di.actual_taken != di.predicted_taken ||
      (di.actual_taken && di.actual_target != di.predicted_target);
  di.mispredicted = misp;
  if (misp) {
    if (mech_ != nullptr) mech_->on_mispredict_pre(di);
    recover_to(di.seq,
               di.actual_taken ? di.actual_target : di.pc + isa::kInstBytes,
               cfg_.recovery_penalty);
    if (di.is_cond_branch) {
      gshare_.recover(di.gshare_snapshot, di.actual_taken);
    } else {
      gshare_.set_history(di.gshare_snapshot);
    }
    if (di.has_ras_snapshot) {
      ras_.restore(di.ras_snapshot);
      if (di.inst.op == Opcode::kRet) ras_.pop();
    }
  }
  if (mech_ != nullptr) mech_->on_branch_resolved(di, misp);
}

void Core::recover_to(uint64_t seq, uint64_t new_fetch_pc,
                      uint64_t resume_delay) {
  ++flushes_;
  squash_younger(seq);
  fetch_pc_ = new_fetch_pc;
  fetch_resume_cycle_ = cycle_ + resume_delay;
  fetch_stalled_ = false;
  last_fetch_line_ = ~uint64_t{0};
}

void Core::squash_younger(uint64_t seq_keep) {
  const uint32_t size = static_cast<uint32_t>(rob_.size());
  while (rob_count_ > 0) {
    const uint32_t slot = (rob_head_ + rob_count_ - 1) % size;
    DynInst& di = rob_[slot];
    if (di.seq <= seq_keep) break;
    if (mech_ != nullptr) mech_->on_squash(di);
    if (di.has_dest) {
      rename_.restore(di.inst.rd, di.prev_pd);
      if (di.pd >= 0 && !di.mech.pd_from_replica) regfile_.free_reg(di.pd);
    }
    ++stats_.squashed;
    if (sched_ == SchedMode::kFast) smem_unlink(slot);
    di.seq = 0;  // kill pending events/waiters pointing at this slot
    --rob_count_;
  }
  lsq_.squash_younger(seq_keep);
  ++lsq_store_epoch_;  // conservative: squash may have removed stores
}

// ---------------------------------------------------------------------------
// Commit.
// ---------------------------------------------------------------------------
bool Core::commit_check(DynInst& di) {
  const isa::Instruction& inst = di.inst;
  const Opcode op = inst.op;
  const uint64_t a1 = arch_regs_[inst.rs1];
  const uint64_t a2 = arch_regs_[inst.rs2];
  bool ok = true;
  if (op == Opcode::kNop || op == Opcode::kHalt || op == Opcode::kJmp) {
    ok = true;
  } else if (op == Opcode::kCall) {
    ok = di.result == di.pc + isa::kInstBytes;
  } else if (op == Opcode::kRet) {
    ok = di.actual_target == a1;
  } else if (di.is_cond_branch) {
    ok = di.actual_taken == isa::eval_branch(op, a1, a2);
  } else if (di.is_load) {
    const uint64_t addr = a1 + static_cast<uint64_t>(inst.imm);
    ok = di.mem_addr == addr && di.result == mem_.read(addr, di.mem_size);
  } else if (di.is_store) {
    const uint64_t addr = a1 + static_cast<uint64_t>(inst.imm);
    uint64_t v = a2;
    if (di.mem_size < 8) v &= (uint64_t{1} << (8 * di.mem_size)) - 1;
    ok = di.mem_addr == addr && di.store_value == v;
  } else {
    ok = di.result == isa::eval_alu(op, a1, a2, inst.imm);
  }
  if (ok) return true;

  // Architectural safety net (DESIGN.md section 2): a wrong value reached
  // the head of the window. With a correct mechanism this only happens for
  // reused instructions whose replica went stale in ways validation cannot
  // see; recover exactly like a misvalidation.
  ++stats_.safety_net_recoveries;
  if (di.mech.reused) {
    ++stats_.misvalidation_squashes;
    if (mech_ != nullptr) mech_->on_misvalidation(di);
  }
  const uint64_t refetch_pc = di.pc;
  recover_to(di.seq - 1, refetch_pc, cfg_.recovery_penalty);
  return false;
}

void Core::record_commit(const DynInst& di) {
  CommitRecord& r = commit_buf_[commit_buf_n_++];
  r.pc = di.pc;
  r.mem_addr = di.mem_addr;
  r.actual_target = di.actual_target;
  r.op = di.inst.op;
  r.mem_size = static_cast<uint8_t>(di.mem_size);
  r.is_cond_branch = di.is_cond_branch;
  r.is_load = di.is_load;
  r.is_store = di.is_store;
  r.actual_taken = di.actual_taken;
  if (commit_buf_n_ == kCommitSpan) flush_commit_span();
}

void Core::flush_commit_span() {
  if (commit_buf_n_ == 0) return;
  if (on_commit_span) on_commit_span(commit_buf_.data(), commit_buf_n_);
  commit_buf_n_ = 0;
}

void Core::apply_commit(DynInst& di) {
  const Opcode op = di.inst.op;
  if (di.has_dest) arch_regs_[di.inst.rd] = di.result;

  if (di.is_load) {
    ++stats_.committed_loads;
    if (!di.mech.reused) lsq_.pop_front();
  } else if (di.is_store) {
    ++stats_.committed_stores;
    const bool conflict = mech_ != nullptr && mech_->on_store_commit(di);
    hierarchy_.access_data(di.mem_addr, /*is_write=*/true, cycle_);
    mem_.write(di.mem_addr, di.store_value, di.mem_size);
    lsq_.pop_front();
    ++lsq_store_epoch_;  // a store left the LSQ
    ++stores_committed_this_cycle_;
    if (conflict) {
      // Section 2.4.3: squash everything after the store and refetch.
      recover_to(di.seq, di.pc + isa::kInstBytes, cfg_.recovery_penalty);
    }
  }

  if (di.is_cond_branch) {
    ++stats_.cond_branches;
    if (di.mispredicted) ++stats_.mispredicts;
    gshare_.train(di.pc, di.gshare_snapshot, di.actual_taken);
    mbs_.update(di.pc, di.actual_taken);
  }
  if (di.is_branch) ++stats_.committed_branches;
  if (di.mech.reused) ++stats_.reused_committed;
  if (mech_ != nullptr) mech_->on_commit(di);
  if (di.has_dest && di.old_pd >= 0) regfile_.free_reg(di.old_pd);
  if (on_commit_span) record_commit(di);
  last_commit_cycle_ = cycle_;
  if (op == Opcode::kHalt) {
    // HALT retires the machine but is not an architectural instruction;
    // keeping it out of `committed` makes commit counts comparable with the
    // reference interpreter.
    halted_ = true;
  } else {
    ++stats_.committed;
  }
}

void Core::commit_stage() {
  fu_.new_cycle();  // commit gets port priority over issue for stores
  stores_committed_this_cycle_ = 0;
  uint32_t slots = cfg_.commit_width;
  const uint32_t max_stores =
      mech_ != nullptr ? mech_->max_store_commits_per_cycle()
                       : cfg_.commit_width;
  while (slots > 0 && rob_count_ > 0 && !halted_) {
    const uint32_t slot = rob_head_;
    DynInst& di = rob_[slot];
    if (!di.completed) break;
    if (di.is_store) {
      if (stores_committed_this_cycle_ >= max_stores) break;
      if (!fu_.try_reserve_mem_port()) break;
    }
    const uint32_t cost =
        1 + (di.is_store && mech_ != nullptr
                 ? mech_->store_commit_extra_cycles()
                 : 0);
    if (cost > slots) break;
    if (!commit_check(di)) break;
    apply_commit(di);
    di.seq = 0;
    rob_head_ = (rob_head_ + 1) % static_cast<uint32_t>(rob_.size());
    --rob_count_;
    slots -= cost;
    if (stats_.committed >= committed_target_) break;
  }
}

// ---------------------------------------------------------------------------
// Top level.
// ---------------------------------------------------------------------------
void Core::step_cycle() {
  commit_stage();
  if (!halted_) {
    writeback_stage();
    issue_stage();
    fetch_stage();
  }
  // The machine is finished when the program ran off its image and
  // everything in flight has drained.
  if (!halted_ && fetch_stalled_ && rob_count_ == 0) halted_ = true;
  if ((cycle_ & 63) == 0) {
    stats_.regs_in_use_accum += regfile_.in_use();
    ++stats_.reg_samples;
    stats_.regs_in_use_max =
        std::max<uint64_t>(stats_.regs_in_use_max, regfile_.in_use());
    obs_rob_occupancy_->observe(rob_count_);
  }
  ++cycle_;
  stats_.cycles = cycle_;
}

void Core::run(uint64_t max_commits) {
  committed_target_ = max_commits;
  last_commit_cycle_ = cycle_;
  while (!halted_ && stats_.committed < max_commits) {
    step_cycle();
    if (cycle_ - last_commit_cycle_ > cfg_.deadlock_cycles) {
      std::string head = "rob empty";
      if (rob_count_ > 0) {
        const DynInst& di = rob_[rob_head_];
        head = isa::disassemble(di.inst, di.pc) +
               " seq=" + std::to_string(di.seq) +
               " pending=" + std::to_string(di.pending_ops) +
               " issued=" + std::to_string(di.issued) +
               " completed=" + std::to_string(di.completed) +
               " reused=" + std::to_string(di.mech.reused) +
               " via_copy=" + std::to_string(di.mech.via_copy) +
               " idx=" + std::to_string(di.mech.replica_index) +
               " slot=" + std::to_string(di.mech.srsmt_slot) +
               " pd=" + std::to_string(di.pd) +
               (di.pd >= 0 ? " pd_ready=" + std::to_string(regfile_.ready(di.pd))
                           : "");
      }
      throw std::runtime_error(
          "core deadlock: no commit in " +
          std::to_string(cfg_.deadlock_cycles) + " cycles at cycle " +
          std::to_string(cycle_) + "; head: " + head);
    }
  }
  flush_commit_span();
  // Export host telemetry to the obs registry (never part of SimStats, so
  // observer attachment cannot perturb simulated results). Deltas keep
  // re-entrant run() calls from double counting.
  obs_cycles_->add(cycle_ - obs_cycles_exported_);
  obs_cycles_exported_ = cycle_;
  obs_flushes_->add(flushes_ - obs_flushes_exported_);
  obs_flushes_exported_ = flushes_;
  // Mirror cache counters into the flat stats block.
  stats_.l1i_accesses = hierarchy_.l1i().stats().accesses;
  stats_.l1i_misses = hierarchy_.l1i().stats().misses;
  stats_.l1d_accesses = hierarchy_.l1d().stats().accesses;
  stats_.l1d_misses = hierarchy_.l1d().stats().misses;
  stats_.l2_accesses = hierarchy_.l2().stats().accesses;
  stats_.l2_misses = hierarchy_.l2().stats().misses;
  stats_.l3_accesses = hierarchy_.l3().stats().accesses;
  stats_.l3_misses = hierarchy_.l3().stats().misses;
  stats_.halted = halted_;
}

}  // namespace cfir::core
