// Observer independence: attaching commit observers (a TraceWriter via
// Simulator::attach_trace, or a raw on_commit_span callback) must not
// perturb the simulation — same serialized SimStats, same cycle count,
// same committed stream, with and without observers, under both
// schedulers. The fast scheduler batches commit records into a span
// buffer instead of invoking a per-commit std::function, so this pins
// down the contract that batching is pure plumbing: observers see every
// committed instruction exactly once, in order, and the simulated result
// never depends on whether anyone is watching.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"

#include "helpers.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"
#include "trace/trace.hpp"
#include "util/warmable.hpp"
#include "workloads/workloads.hpp"

namespace cfir {
namespace {

class ScopedSched {
 public:
  explicit ScopedSched(const char* mode) { setenv("CFIR_CORE_SCHED", mode, 1); }
  ~ScopedSched() { unsetenv("CFIR_CORE_SCHED"); }
};

class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(::testing::TempDir() + "cfir_obsind_" + tag + ".cfir") {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

[[nodiscard]] std::vector<uint8_t> stats_bytes(const stats::SimStats& s) {
  util::ByteWriter w;
  stats::serialize(s, w);
  return w.take();
}

struct Observed {
  std::vector<uint8_t> stats;
  uint64_t cycles = 0;
  uint64_t committed = 0;
  std::vector<uint64_t> pcs;  ///< committed PCs seen by the observer
};

/// One run; `observe` selects bare (no observer), a raw span callback, or
/// a full TraceWriter attachment.
enum class Observe { kNone, kSpan, kTrace };

[[nodiscard]] Observed run(const core::CoreConfig& config,
                           const isa::Program& program, const char* sched,
                           Observe observe, uint64_t max_insts,
                           const std::string& tag) {
  ScopedSched scoped(sched);
  sim::Simulator sim(config, program);
  Observed out;
  TempFile file(tag);
  std::unique_ptr<trace::TraceWriter> writer;
  if (observe == Observe::kSpan) {
    sim.core().on_commit_span = [&out](const core::CommitRecord* records,
                                       size_t n) {
      for (size_t i = 0; i < n; ++i) {
        // kHalt retires through the span but is not an architectural
        // instruction (it is excluded from stats_.committed too).
        if (records[i].op != isa::Opcode::kHalt) out.pcs.push_back(records[i].pc);
      }
    };
  } else if (observe == Observe::kTrace) {
    trace::TraceMeta meta;
    meta.workload = tag;
    meta.base_pc = program.base();
    writer = std::make_unique<trace::TraceWriter>(file.path(), meta);
    sim.attach_trace(*writer);
  }
  const stats::SimStats st = sim.run(max_insts);
  out.stats = stats_bytes(st);
  out.cycles = st.cycles;
  out.committed = st.committed;
  return out;
}

TEST(ObserverIndependence, StatsIdenticalWithAndWithoutObservers) {
  const std::vector<std::pair<const char*, core::CoreConfig>> configs = {
      {"scal1p", sim::presets::scal(1, 256)},
      {"ci2p", sim::presets::ci(2, 256)},
  };
  for (const char* sched : {"ref", "fast"}) {
    for (const std::string& name : {"bzip2", "twolf"}) {
      const isa::Program program = workloads::build(name, 4);
      for (const auto& [cfg_name, config] : configs) {
        const std::string tag = name + "_" + cfg_name + "_" + sched;
        const Observed bare =
            run(config, program, sched, Observe::kNone, 40000, tag + "_b");
        const Observed span =
            run(config, program, sched, Observe::kSpan, 40000, tag + "_s");
        const Observed traced =
            run(config, program, sched, Observe::kTrace, 40000, tag + "_t");
        EXPECT_EQ(bare.stats, span.stats) << tag;
        EXPECT_EQ(bare.stats, traced.stats) << tag;
        EXPECT_EQ(bare.cycles, span.cycles) << tag;
        EXPECT_EQ(bare.cycles, traced.cycles) << tag;
        // The span observer saw the whole committed stream, exactly once.
        EXPECT_EQ(span.pcs.size(), span.committed) << tag;
      }
    }
  }
}

/// Random programs under both schedulers: the batched commit buffer
/// drains on squashes, watchdog flushes, and halt paths that curated
/// kernels rarely hit.
TEST(ObserverIndependence, RandomProgramsIdentical) {
  for (uint64_t seed = 10; seed < 14; ++seed) {
    const isa::Program program = testing::random_program(seed);
    const core::CoreConfig config = sim::presets::scal(1, 256);
    for (const char* sched : {"ref", "fast"}) {
      const std::string tag = "rand" + std::to_string(seed) + "_" + sched;
      const Observed bare =
          run(config, program, sched, Observe::kNone, 30000, tag + "_b");
      const Observed span =
          run(config, program, sched, Observe::kSpan, 30000, tag + "_s");
      EXPECT_EQ(bare.stats, span.stats) << tag;
      EXPECT_EQ(bare.cycles, span.cycles) << tag;
      EXPECT_EQ(span.pcs.size(), span.committed) << tag;
    }
  }
}

}  // namespace
}  // namespace cfir
