// Top-level wiring: program + memory image + core + mechanism, selected by
// CoreConfig::policy. This is the public entry point downstream users call:
//
//   auto program = cfir::workloads::build("bzip2", /*scale=*/1);
//   cfir::sim::Simulator sim(cfir::sim::presets::ci(2, 512), program);
//   auto stats = sim.run(100'000);
#pragma once

#include <memory>

#include "ci/mechanism.hpp"
#include "ci/squash_reuse.hpp"
#include "core/pipeline.hpp"
#include "isa/interpreter.hpp"
#include "isa/program.hpp"

namespace cfir::trace {
struct Checkpoint;
class TraceWriter;
}  // namespace cfir::trace

namespace cfir::sim {

class Simulator {
 public:
  /// Copies the program; applies its data image to a fresh memory.
  Simulator(const core::CoreConfig& config, isa::Program program);

  /// Resumes from an architectural checkpoint: the memory image, register
  /// file and PC come from `start` instead of the program's initial state.
  /// Used by interval sampling (trace::sampled_run) and `trace_tool`.
  Simulator(const core::CoreConfig& config, isa::Program program,
            const trace::Checkpoint& start);

  /// Runs until `max_insts` commits (or HALT); returns the final stats.
  stats::SimStats run(uint64_t max_insts);

  /// Streams every committed instruction into `writer` (trace capture from
  /// the detailed core; HALT is not recorded, matching the interpreter's
  /// retirement count). Call before run(); `writer` must outlive the run.
  void attach_trace(trace::TraceWriter& writer);

  [[nodiscard]] core::Core& core() { return *core_; }
  [[nodiscard]] const isa::Program& program() const { return program_; }
  [[nodiscard]] mem::MainMemory& memory() { return memory_; }
  /// Non-null when policy is kCi or kVect.
  [[nodiscard]] ci::CiMechanism* ci_mechanism() { return ci_; }
  /// Non-null when policy is kCiWindow.
  [[nodiscard]] ci::SquashReuseMechanism* squash_reuse_mechanism() {
    return sr_;
  }
  [[nodiscard]] uint64_t memory_digest() const { return memory_.digest(); }
  [[nodiscard]] uint64_t arch_reg(int r) const { return core_->arch_reg(r); }

 private:
  isa::Program program_;
  mem::MainMemory memory_;
  std::unique_ptr<core::Mechanism> mech_;
  std::unique_ptr<core::Core> core_;
  ci::CiMechanism* ci_ = nullptr;
  ci::SquashReuseMechanism* sr_ = nullptr;
};

/// Differential check: runs the program both on the reference interpreter
/// and on the configured core; returns true when final register file and
/// memory digest agree after `max_insts` committed instructions.
struct DiffResult {
  bool match = false;
  uint64_t executed = 0;
  std::string mismatch;  ///< empty when match
};
[[nodiscard]] DiffResult differential_run(const core::CoreConfig& config,
                                          const isa::Program& program,
                                          uint64_t max_insts);

}  // namespace cfir::sim
