// Synthetic SpecInt2000 stand-ins (DESIGN.md section 2): twelve kernels,
// one per benchmark the paper evaluates, each engineered to exhibit the
// branch/memory character that drives the paper's results:
//
//   bzip2    RLE/histogram over random bytes — the paper's Figure 1 hammock
//            (hard data-dependent branch + strided loads + CI accumulation)
//   crafty   bitboard scans: shifts/masks, semi-random bit-test branches
//   eon      regular numeric loops, highly predictable branches (CI idle)
//   gap      modular-arithmetic hammocks over strided arrays
//   gcc      multi-way if/else chains over an opcode stream, mixed bias
//   gzip     LZ window matching: data-dependent inner-loop exits
//   mcf      pointer chasing — CI instructions found but no strided base,
//            so selection succeeds while vectorization cannot (Fig 5 gray)
//   parser   call/ret token processing (return-address stack pressure)
//   perlbmk  byte-hash loops with character-class hammocks
//   twolf    simulated-annealing accept/reject on strided cost arrays
//   vortex   object copy/update, store-heavy, mostly predictable
//   vpr      grid cost comparison with min/max CI accumulation
//
// Every kernel is deterministic (fixed RNG seed), self-checking (it leaves
// digest values in registers), and ends with HALT.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hpp"

namespace cfir::workloads {

/// The twelve SpecInt2000 names, in the paper's order.
[[nodiscard]] const std::vector<std::string>& names();

/// Builds a workload; `scale` multiplies the iteration counts (scale 1 is
/// roughly 20k-80k dynamic instructions depending on the kernel).
[[nodiscard]] isa::Program build(const std::string& name, uint32_t scale = 1);

/// One-line description of what the kernel models (used by examples).
[[nodiscard]] std::string describe(const std::string& name);

// Individual builders (exposed for focused tests).
isa::Program build_bzip2(uint32_t scale);
isa::Program build_crafty(uint32_t scale);
isa::Program build_eon(uint32_t scale);
isa::Program build_gap(uint32_t scale);
isa::Program build_gcc(uint32_t scale);
isa::Program build_gzip(uint32_t scale);
isa::Program build_mcf(uint32_t scale);
isa::Program build_parser(uint32_t scale);
isa::Program build_perlbmk(uint32_t scale);
isa::Program build_twolf(uint32_t scale);
isa::Program build_vortex(uint32_t scale);
isa::Program build_vpr(uint32_t scale);

}  // namespace cfir::workloads
