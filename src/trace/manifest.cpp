#include "trace/manifest.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "trace/blob.hpp"
#include "trace/errors.hpp"
#include "util/warmable.hpp"

namespace cfir::trace {

namespace {

/// Directory part of `path` ("" when it has none), used to resolve the
/// relative checkpoint / warm-sidecar file names.
std::string dir_of(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string resolve(const std::string& manifest_path,
                    const std::string& name) {
  const std::string dir = dir_of(manifest_path);
  return dir.empty() ? name : dir + "/" + name;
}

std::string basename_of(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// The warm-sidecar name write_manifest emits for interval `i`, config
/// point `c` — one definition so the planner and any recovery tooling
/// agree on the layout.
std::string warm_sidecar_name(const std::string& stem, size_t i, size_t c) {
  return stem + ".ck" + std::to_string(i) + ".cfg" + std::to_string(c) +
         ".cfirwarm";
}

std::string hex16(uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  std::string s(16, '0');
  for (int k = 15; k >= 0; --k) {
    s[static_cast<size_t>(k)] = kHex[v & 0xf];
    v >>= 4;
  }
  return s;
}

/// Content-keyed sidecar name: config points whose warm-relevant geometry
/// coincides (core::CoreConfig::warm_digest) train byte-identical blobs,
/// and keying the file by blob content lets them all reference ONE sidecar
/// (iv.warm_files stores the name per config; readers never parse it).
std::string warm_sidecar_content_name(const std::string& stem, size_t i,
                                      uint64_t content_digest) {
  return stem + ".ck" + std::to_string(i) + ".w" + hex16(content_digest) +
         ".cfirwarm";
}

uint64_t blob_content_digest(const std::vector<uint8_t>& blob) {
  util::Digest d;
  d.bytes(blob.data(), blob.size());
  return d.value();
}

void check_plan_shape(const IntervalPlan& plan, const char* who) {
  const size_t k = plan.boundaries.size();
  if (plan.lengths.size() != k || plan.weights.size() != k ||
      plan.checkpoints.size() != k) {
    throw std::runtime_error(std::string(who) + ": malformed plan");
  }
}

/// The shared header + interval skeleton of both write_manifest overloads.
ShardManifest manifest_skeleton(const IntervalPlan& plan,
                                const std::string& workload,
                                uint32_t scale) {
  ShardManifest m;
  m.workload = workload;
  m.scale = scale;
  m.mode = plan.mode;
  m.warm_mode = plan.warm_mode;
  m.warmup = plan.warmup;
  m.total_insts = plan.total_insts;
  m.interval_len = plan.interval_len;
  m.ran_to_halt = plan.ran_to_halt;
  m.intervals.resize(plan.boundaries.size());
  for (size_t i = 0; i < plan.boundaries.size(); ++i) {
    m.intervals[i].start = plan.boundaries[i];
    m.intervals[i].length = plan.lengths[i];
    m.intervals[i].weight = plan.weights[i];
  }
  return m;
}

}  // namespace

std::string path_stem(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const size_t dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path;
  }
  return path.substr(0, dot);
}

std::vector<uint8_t> ShardManifest::serialize() const {
  if (version != 1 && version != kManifestVersion) {
    throw std::runtime_error("ShardManifest: cannot serialize version " +
                             std::to_string(version));
  }
  util::ByteWriter out;
  if (version == 1) {
    // Legacy layout, byte-for-byte: one combined config hash, no embedded
    // configs, no warm sidecars.
    if (configs.size() != 1) {
      throw std::runtime_error(
          "ShardManifest: a v1 manifest carries exactly one config point");
    }
    for (const char c : kManifestMagic) out.u8(static_cast<uint8_t>(c));
    out.u32(1);
    out.u32(0);  // reserved
    out.u64(plan_hash);
    out.u8(static_cast<uint8_t>(mode));
    out.u8(static_cast<uint8_t>(warm_mode));
    out.u64(warmup);
    out.u64(total_insts);
    out.u64(interval_len);
    out.boolean(ran_to_halt);
    out.u32(scale);
    put_string(out, workload);
    out.u32(static_cast<uint32_t>(intervals.size()));
    for (const IntervalRef& iv : intervals) {
      out.u64(iv.start);
      out.u64(iv.length);
      out.u64(std::bit_cast<uint64_t>(iv.weight));
      put_string(out, iv.checkpoint_file);
    }
    return out.take();
  }

  for (const char c : kManifestMagicV2) out.u8(static_cast<uint8_t>(c));
  out.u32(kManifestVersion);
  out.u32(0);  // reserved
  out.u64(plan_hash);
  out.u8(static_cast<uint8_t>(mode));
  out.u8(static_cast<uint8_t>(warm_mode));
  out.u64(warmup);
  out.u64(total_insts);
  out.u64(interval_len);
  out.boolean(ran_to_halt);
  out.u32(scale);
  put_string(out, workload);
  out.u32(static_cast<uint32_t>(configs.size()));
  for (const ConfigPoint& cp : configs) {
    put_string(out, cp.name);
    out.u64(cp.config_hash);
    util::ByteWriter cfg;
    cp.config.serialize(cfg);
    out.u32(static_cast<uint32_t>(cfg.data().size()));
    out.bytes(cfg.data().data(), cfg.data().size());
  }
  out.u32(static_cast<uint32_t>(intervals.size()));
  for (const IntervalRef& iv : intervals) {
    out.u64(iv.start);
    out.u64(iv.length);
    out.u64(std::bit_cast<uint64_t>(iv.weight));
    put_string(out, iv.checkpoint_file);
    for (size_t c = 0; c < configs.size(); ++c) {
      put_string(out,
                 c < iv.warm_files.size() ? iv.warm_files[c] : std::string());
    }
  }
  return out.take();
}

ShardManifest ShardManifest::deserialize(
    const std::vector<uint8_t>& payload) {
  const bool v1 =
      payload.size() >= sizeof(kManifestMagic) &&
      std::memcmp(payload.data(), kManifestMagic, sizeof(kManifestMagic)) ==
          0;
  const bool v2 = payload.size() >= sizeof(kManifestMagicV2) &&
                  std::memcmp(payload.data(), kManifestMagicV2,
                              sizeof(kManifestMagicV2)) == 0;
  if (!v1 && !v2) {
    throw BadMagicError("ShardManifest: bad magic (not a CFIRMAN file)");
  }
  try {
    util::ByteReader in(payload.data() + sizeof(kManifestMagic),
                        payload.size() - sizeof(kManifestMagic));
    const uint32_t version = in.u32();
    if (version != (v1 ? 1u : kManifestVersion)) {
      throw VersionError("ShardManifest: unsupported version " +
                         std::to_string(version));
    }
    (void)in.u32();  // reserved

    ShardManifest m;
    m.version = version;
    m.plan_hash = in.u64();
    m.mode = static_cast<SampleMode>(in.u8());
    m.warm_mode = static_cast<WarmMode>(in.u8());
    m.warmup = in.u64();
    m.total_insts = in.u64();
    m.interval_len = in.u64();
    m.ran_to_halt = in.boolean();
    m.scale = in.u32();
    m.workload = get_string(in, "ShardManifest workload name");
    if (v1) {
      // A v1 manifest is a 1-config manifest whose combined hash doubles
      // as the (only) config point's hash; the config itself is not
      // embedded and must come from the executor (verify_manifest_config).
      ConfigPoint cp;
      cp.config_hash = m.plan_hash;
      m.configs.push_back(std::move(cp));
    } else {
      const uint32_t nc = in.u32();
      if (nc == 0 || nc > 4096) {
        throw CorruptFileError(
            "ShardManifest: corrupt config point count " +
            std::to_string(nc));
      }
      m.configs.resize(nc);
      for (ConfigPoint& cp : m.configs) {
        cp.name = get_string(in, "ShardManifest config name");
        cp.config_hash = in.u64();
        const uint32_t cfg_len = in.u32();
        if (cfg_len > 4096 || cfg_len > in.remaining()) {
          throw CorruptFileError(
              "ShardManifest: corrupt embedded config length " +
              std::to_string(cfg_len));
        }
        std::vector<uint8_t> cfg_bytes(cfg_len);
        in.bytes(cfg_bytes.data(), cfg_len);
        util::ByteReader cfg(cfg_bytes);
        cp.config = core::CoreConfig::deserialize(cfg);
        if (!cfg.done()) {
          throw CorruptFileError(
              "ShardManifest: trailing bytes after embedded config");
        }
        cp.embedded = true;
      }
    }
    const uint32_t n = in.u32();
    m.intervals.resize(n);
    for (IntervalRef& iv : m.intervals) {
      iv.start = in.u64();
      iv.length = in.u64();
      iv.weight = std::bit_cast<double>(in.u64());
      iv.checkpoint_file = get_string(in, "ShardManifest checkpoint file name");
      if (!v1) {
        iv.warm_files.resize(m.configs.size());
        for (std::string& wf : iv.warm_files) {
          wf = get_string(in, "ShardManifest warm sidecar file name");
        }
      }
    }
    if (!in.done()) {
      throw CorruptFileError("ShardManifest: trailing bytes after intervals");
    }
    return m;
  } catch (const VersionError&) {
    throw;
  } catch (const CorruptFileError&) {
    throw;
  } catch (const std::exception&) {
    throw CorruptFileError("ShardManifest: truncated payload");
  }
}

void ShardManifest::save(const std::string& path) const {
  write_blob_file(path, serialize());
}

ShardManifest ShardManifest::load(const std::string& path) {
  return deserialize(
      read_blob_file(path, "ShardManifest", /*require_footer=*/true));
}

namespace {

/// The plan-structure fields, mixed in the exact order the v1 combined
/// hash used, so plan_config_hash stays byte-compatible with PR 4.
void mix_plan_structure(util::Digest& d, const std::string& workload,
                        uint32_t scale, const IntervalPlan& plan) {
  d.u32(static_cast<uint32_t>(workload.size()));
  d.bytes(reinterpret_cast<const uint8_t*>(workload.data()),
          workload.size());
  d.u32(scale);
  d.u8(static_cast<uint8_t>(plan.mode));
  d.u8(static_cast<uint8_t>(plan.warm_mode));
  d.u64(plan.warmup);
  d.u64(plan.total_insts);
  d.boolean(plan.ran_to_halt);
  d.u64(plan.interval_len);
  d.u32(static_cast<uint32_t>(plan.boundaries.size()));
  for (size_t i = 0; i < plan.boundaries.size(); ++i) {
    d.u64(plan.boundaries[i]);
    d.u64(plan.lengths[i]);
    d.u64(std::bit_cast<uint64_t>(plan.weights[i]));
  }
}

}  // namespace

uint64_t plan_config_hash(const core::CoreConfig& config,
                          const std::string& workload, uint32_t scale,
                          const IntervalPlan& plan) {
  util::Digest d;
  d.u64(config.digest());
  mix_plan_structure(d, workload, scale, plan);
  return d.value();
}

uint64_t plan_structure_hash(const std::string& workload, uint32_t scale,
                             const IntervalPlan& plan) {
  util::Digest d;
  // A fixed tag in the config slot keeps structure hashes from colliding
  // with v1 combined hashes over the same plan.
  d.u64(0x43464952'504C414Eull);  // "CFIR" "PLAN"
  mix_plan_structure(d, workload, scale, plan);
  return d.value();
}

ShardManifest write_manifest(const IntervalPlan& plan,
                             const core::CoreConfig& config,
                             const std::string& workload, uint32_t scale,
                             const std::string& manifest_path) {
  check_plan_shape(plan, "write_manifest");
  ShardManifest m = manifest_skeleton(plan, workload, scale);
  m.version = 1;
  m.plan_hash = plan_config_hash(config, workload, scale, plan);
  ShardManifest::ConfigPoint cp;
  cp.name = config.label();
  cp.config_hash = m.plan_hash;
  m.configs.push_back(std::move(cp));

  const std::string stem = path_stem(manifest_path);
  for (size_t i = 0; i < plan.checkpoints.size(); ++i) {
    const std::string ck_path =
        stem + ".ck" + std::to_string(i) + ".cfirckpt";
    plan.checkpoints[i].save(ck_path);
    m.intervals[i].checkpoint_file = basename_of(ck_path);
  }
  m.save(manifest_path);
  return m;
}

ShardManifest write_manifest(const IntervalPlan& plan,
                             const std::vector<ConfigBinding>& bindings,
                             const std::string& workload, uint32_t scale,
                             const std::string& manifest_path) {
  check_plan_shape(plan, "write_manifest");
  if (bindings.empty()) {
    throw std::runtime_error("write_manifest: no config bindings");
  }
  for (const ConfigBinding& b : bindings) {
    if (!b.warm.empty() && b.warm.size() != plan.checkpoints.size()) {
      throw std::runtime_error(
          "write_manifest: binding '" + b.name +
          "' carries warm state for a different interval count");
    }
  }
  ShardManifest m = manifest_skeleton(plan, workload, scale);
  m.plan_hash = plan_structure_hash(workload, scale, plan);
  m.configs.reserve(bindings.size());
  for (const ConfigBinding& b : bindings) {
    ShardManifest::ConfigPoint cp;
    cp.name = b.name.empty() ? b.config.label() : b.name;
    cp.config_hash = b.config_hash != 0 ? b.config_hash : b.config.digest();
    cp.config = b.config;
    cp.embedded = true;
    m.configs.push_back(std::move(cp));
  }

  const std::string stem = path_stem(manifest_path);
  for (size_t i = 0; i < plan.checkpoints.size(); ++i) {
    const std::string ck_path =
        stem + ".ck" + std::to_string(i) + ".cfirckpt";
    // The architectural checkpoint is config-independent and shared by the
    // whole grid; warm state travels in the per-config sidecars instead,
    // so strip any blob a single-config flow may have attached.
    plan.checkpoints[i].save(ck_path, /*include_warm=*/false);
    ShardManifest::IntervalRef& iv = m.intervals[i];
    iv.checkpoint_file = basename_of(ck_path);
    iv.warm_files.resize(bindings.size());
    // Dedup by blob content: a register/port sweep's configs share warm
    // geometry (bind_configs trains each distinct warm_digest once and
    // copies the blobs), so N grid columns typically collapse to a handful
    // of sidecar files. The digest only nominates a sharing candidate —
    // bytes are compared before reuse, so a hash collision degrades to a
    // per-config file instead of serving the wrong warm state.
    std::unordered_map<uint64_t, std::pair<const std::vector<uint8_t>*,
                                           std::string>> written;
    for (size_t c = 0; c < bindings.size(); ++c) {
      if (bindings[c].warm.empty() || bindings[c].warm[i].empty()) continue;
      const std::vector<uint8_t>& blob = bindings[c].warm[i];
      const uint64_t bd = blob_content_digest(blob);
      const auto it = written.find(bd);
      if (it != written.end() && *it->second.first == blob) {
        iv.warm_files[c] = it->second.second;
        continue;
      }
      const std::string warm_path =
          it == written.end() ? warm_sidecar_content_name(stem, i, bd)
                              : warm_sidecar_name(stem, i, c);
      write_blob_file(warm_path, blob);
      iv.warm_files[c] = basename_of(warm_path);
      if (it == written.end()) written.emplace(bd, std::make_pair(&blob, iv.warm_files[c]));
    }
  }
  m.save(manifest_path);
  return m;
}

IntervalPlan plan_from_manifest(const ShardManifest& manifest,
                                const std::string& manifest_path) {
  IntervalPlan plan;
  plan.mode = manifest.mode;
  plan.warm_mode = manifest.warm_mode;
  plan.warmup = manifest.warmup;
  plan.total_insts = manifest.total_insts;
  plan.interval_len = manifest.interval_len;
  plan.ran_to_halt = manifest.ran_to_halt;
  plan.boundaries.reserve(manifest.intervals.size());
  plan.lengths.reserve(manifest.intervals.size());
  plan.weights.reserve(manifest.intervals.size());
  plan.checkpoints.reserve(manifest.intervals.size());
  for (const ShardManifest::IntervalRef& iv : manifest.intervals) {
    plan.boundaries.push_back(iv.start);
    plan.lengths.push_back(iv.length);
    plan.weights.push_back(iv.weight);
    plan.checkpoints.push_back(
        Checkpoint::load(resolve(manifest_path, iv.checkpoint_file)));
  }
  return plan;
}

std::vector<ConfigBinding> bindings_from_manifest(
    const ShardManifest& manifest, const std::string& manifest_path,
    ShardSelection shard) {
  if (manifest.version < 2) {
    throw VersionError(
        "ShardManifest: a v1 manifest does not embed its config — supply "
        "it to the executor and verify with verify_manifest_config");
  }
  std::vector<ConfigBinding> bindings;
  bindings.reserve(manifest.configs.size());
  for (size_t c = 0; c < manifest.configs.size(); ++c) {
    const ShardManifest::ConfigPoint& cp = manifest.configs[c];
    ConfigBinding b;
    b.name = cp.name;
    b.config = cp.config;
    b.config_hash = cp.config_hash;
    // Load warm sidecars for this shard's intervals only; the slots of
    // intervals other shards execute stay empty (run_shard never reads
    // them), so each worker of an N-shard farm does 1/N of the blob I/O.
    bool any_warm = false;
    for (size_t i = 0; i < manifest.intervals.size(); ++i) {
      const ShardManifest::IntervalRef& iv = manifest.intervals[i];
      any_warm = any_warm || (shard.covers(i) && c < iv.warm_files.size() &&
                              !iv.warm_files[c].empty());
    }
    if (any_warm) {
      b.warm.resize(manifest.intervals.size());
      for (size_t i = 0; i < manifest.intervals.size(); ++i) {
        if (!shard.covers(i)) continue;
        const ShardManifest::IntervalRef& iv = manifest.intervals[i];
        if (c >= iv.warm_files.size() || iv.warm_files[c].empty()) {
          throw CorruptFileError(
              "ShardManifest: config point '" + cp.name +
              "' has warm state for only some intervals");
        }
        b.warm[i] = read_blob_file(resolve(manifest_path, iv.warm_files[c]),
                                   "WarmState", /*require_footer=*/true);
      }
    }
    bindings.push_back(std::move(b));
  }
  return bindings;
}

void verify_manifest_config(const ShardManifest& manifest,
                            const core::CoreConfig& config,
                            const IntervalPlan& plan) {
  const uint64_t expected =
      plan_config_hash(config, manifest.workload, manifest.scale, plan);
  if (expected != manifest.plan_hash) {
    throw ConfigMismatchError(
        "ShardManifest: config hash mismatch — the manifest was planned "
        "for a different core config or plan (manifest has " +
        hex64(manifest.plan_hash) + ", this run computes " +
        hex64(expected) +
        "); re-plan with the current config or run with the one the "
        "manifest was made for");
  }
}

void verify_manifest_plan(const ShardManifest& manifest,
                          const IntervalPlan& plan) {
  const uint64_t expected =
      plan_structure_hash(manifest.workload, manifest.scale, plan);
  if (expected != manifest.plan_hash) {
    throw ConfigMismatchError(
        "ShardManifest: plan hash mismatch — this plan's interval "
        "schedule is not the one the manifest was written for (manifest "
        "has " + hex64(manifest.plan_hash) + ", this plan hashes to " +
        hex64(expected) + "); re-plan or use the matching manifest");
  }
  // The structure hash covers only manifest fields, so for a plan
  // reloaded from this very manifest it cannot fail; the checkpoint
  // POSITIONS are what bind the plan to its sibling files. Every planner
  // captures interval i at max(start - W, 0) (W = requested warm-up for
  // modes with a detailed slice, 0 otherwise — trace/sampling.cpp), so a
  // checkpoint whose `executed` sits elsewhere is a wrong or swapped
  // .cfirckpt in the manifest directory.
  const uint64_t w =
      warm_mode_has_detailed_slice(manifest.warm_mode) ? manifest.warmup : 0;
  const size_t k =
      std::min(plan.boundaries.size(), plan.checkpoints.size());
  for (size_t i = 0; i < k; ++i) {
    const uint64_t at =
        plan.boundaries[i] >= w ? plan.boundaries[i] - w : 0;
    if (plan.checkpoints[i].executed != at) {
      throw CorruptFileError(
          "ShardManifest: the checkpoint file for interval " +
          std::to_string(i) + " was captured at instruction " +
          std::to_string(plan.checkpoints[i].executed) +
          " but the schedule expects " + std::to_string(at) +
          " — wrong or swapped .cfirckpt in the manifest directory; "
          "re-plan it");
    }
  }
}

}  // namespace cfir::trace
