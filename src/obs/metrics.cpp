#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <locale>
#include <sstream>
#include <stdexcept>

namespace cfir::obs {

namespace {

/// Bucket index for Histogram::observe: 0 for v == 0, else 1 + floor(log2).
size_t bucket_index(uint64_t v) {
  if (v == 0) return 0;
  const size_t log2 = 63u - static_cast<size_t>(__builtin_clzll(v));
  return std::min<size_t>(log2 + 1, Histogram::kBuckets - 1);
}

void atomic_min(std::atomic<uint64_t>& slot, uint64_t v) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<uint64_t>& slot, uint64_t v) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Formats a double the way the stats JSON does: plain, shortest-ish,
/// locale-independent.
std::string json_double(double v) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << v;
  return os.str();
}

}  // namespace

void Histogram::observe(uint64_t v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

uint64_t Histogram::min() const {
  const uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

uint64_t Histogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry* registry = new Registry();  // leaked: outlive atexit hooks
  return *registry;
}

Registry::Entry& Registry::entry(const std::string& name, Kind kind) {
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
  } else if (it->second.kind != kind) {
    throw std::logic_error("obs::Registry: instrument '" + name +
                           "' requested with two different kinds");
  }
  return it->second;
}

Counter& Registry::counter(const std::string& name) {
  return entry(name, Kind::kCounter).counter;
}

Gauge& Registry::gauge(const std::string& name) {
  return entry(name, Kind::kGauge).gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  return entry(name, Kind::kHistogram).histogram;
}

std::vector<MetricSample> Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {  // std::map: already sorted
    MetricSample s;
    s.name = name;
    switch (e.kind) {
      case Kind::kCounter:
        s.kind = MetricSample::Kind::kCounter;
        s.count = e.counter.value();
        break;
      case Kind::kGauge:
        s.kind = MetricSample::Kind::kGauge;
        s.value = e.gauge.value();
        break;
      case Kind::kHistogram:
        s.kind = MetricSample::Kind::kHistogram;
        s.count = e.histogram.count();
        s.sum = e.histogram.sum();
        s.min = e.histogram.min();
        s.max = e.histogram.max();
        s.value = e.histogram.mean();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string Registry::to_json() const {
  const std::vector<MetricSample> samples = snapshot();
  std::string out = "{";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) out += ",";
    first = false;
    out += "\"" + s.name + "\":";
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out += "{\"count\":" + std::to_string(s.count) + "}";
        break;
      case MetricSample::Kind::kGauge:
        out += "{\"value\":" + json_double(s.value) + "}";
        break;
      case MetricSample::Kind::kHistogram:
        out += "{\"count\":" + std::to_string(s.count) +
               ",\"sum\":" + std::to_string(s.sum) +
               ",\"min\":" + std::to_string(s.min) +
               ",\"max\":" + std::to_string(s.max) +
               ",\"mean\":" + json_double(s.value) + "}";
        break;
    }
  }
  out += "}";
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, e] : entries_) {
    (void)name;
    e.counter.reset();
    e.gauge.reset();
    e.histogram.reset();
  }
}

namespace {
int64_t mono_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Stopwatch::Stopwatch() : start_us_(mono_us()) {}

uint64_t Stopwatch::elapsed_us() const {
  const int64_t d = mono_us() - start_us_;
  return d < 0 ? 0 : static_cast<uint64_t>(d);
}

}  // namespace cfir::obs
