// The out-of-order core: an 8-wide, RUU-style superscalar with wrong-path
// fetch and execution, walk-based rename recovery, an LSQ, a wide-bus
// memory stage and in-order commit with an architectural recheck.
//
// This is the SimpleScalar-sim-outorder-equivalent substrate the paper
// extends; the control-independence machinery attaches through the
// Mechanism hook interface (core/types.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "branch/gshare.hpp"
#include "branch/mbs.hpp"
#include "branch/ras.hpp"
#include "core/config.hpp"
#include "core/func_units.hpp"
#include "core/lsq.hpp"
#include "core/regfile.hpp"
#include "core/rename.hpp"
#include "core/types.hpp"
#include "isa/program.hpp"
#include "mem/hierarchy.hpp"
#include "mem/main_memory.hpp"
#include "stats/stats.hpp"

namespace cfir::core {

class Core {
 public:
  /// `mechanism` may be null (plain superscalar). `memory` must already hold
  /// the program's data image.
  Core(const CoreConfig& config, const isa::Program& program,
       mem::MainMemory& memory, Mechanism* mechanism);

  /// Runs until `max_commits` instructions commit, HALT commits, or the
  /// program runs off its image. Throws std::runtime_error on deadlock
  /// (which indicates a simulator bug, not a program property).
  void run(uint64_t max_commits);

  /// Executes a single cycle (tests drive this directly).
  void step_cycle();

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] uint64_t cycle() const { return cycle_; }
  [[nodiscard]] const stats::SimStats& stats() const { return stats_; }
  [[nodiscard]] stats::SimStats& stats() { return stats_; }

  // --- architectural state (commit order) ---------------------------------
  [[nodiscard]] uint64_t arch_reg(int logical) const {
    return arch_regs_[static_cast<size_t>(logical)];
  }

  /// Seeds the architectural state before the first cycle: logical register
  /// values (mirrored into the current physical mapping) and the fetch PC.
  /// Used to resume simulation from a checkpoint (src/trace/); `memory` must
  /// already hold the checkpointed image.
  void set_arch_state(const std::array<uint64_t, isa::kNumLogicalRegs>& regs,
                      uint64_t pc);

  /// Observer fired for every architecturally committed instruction (HALT
  /// included), in commit order. Used by the trace recorder; leave empty for
  /// zero overhead beyond one branch per commit.
  std::function<void(const DynInst&)> on_commit;

  // --- services used by the attached mechanism -----------------------------
  [[nodiscard]] const CoreConfig& config() const { return cfg_; }
  [[nodiscard]] const isa::Program& program() const { return program_; }
  [[nodiscard]] mem::MainMemory& memory() { return mem_; }
  [[nodiscard]] mem::CacheHierarchy& hierarchy() { return hierarchy_; }
  [[nodiscard]] PhysRegFile& regfile() { return regfile_; }
  [[nodiscard]] branch::MbsTable& mbs() { return mbs_; }
  // Branch-prediction state, exposed so the functional-warming path
  // (trace/warming.hpp) can install pre-trained predictor state before the
  // first cycle and so differential tests can digest it after a run.
  [[nodiscard]] branch::Gshare& gshare() { return gshare_; }
  [[nodiscard]] branch::ReturnAddressStack& ras() { return ras_; }
  [[nodiscard]] int rename_lookup(int logical) const {
    return rename_.lookup(logical);
  }

  /// Mechanism wrote `phys` (replica result): wake anything waiting on it.
  void replica_written(int phys);

  /// Mechanism signals the copy source of a waiting reused instruction is
  /// now available.
  void wake_copy(uint32_t rob_slot, uint64_t seq);

  /// Timed load issued by the replica engine. Honours wide-bus batching and
  /// port limits for the current cycle; returns false when no port (or
  /// batching slot) is available. On success `latency_out` is the cycles
  /// until data availability.
  bool try_replica_load_access(uint64_t addr, uint32_t& latency_out);

  /// Remaining L1D ports this cycle (after scalar issue).
  [[nodiscard]] uint32_t mem_ports_left() const {
    return fu_.mem_ports_left();
  }

 private:
  struct Event {
    uint64_t when;
    uint64_t seq;
    uint32_t slot;
    bool operator>(const Event& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };
  struct Waiter {
    uint32_t slot;
    uint64_t seq;
  };

  // Stages (executed in this order each cycle).
  void commit_stage();
  void writeback_stage();
  void issue_stage();
  void fetch_stage();

  // Helpers.
  [[nodiscard]] DynInst& at(uint32_t slot) { return rob_[slot]; }
  [[nodiscard]] bool slot_live(uint32_t slot, uint64_t seq) const;
  [[nodiscard]] uint32_t rob_tail_slot() const;
  void dispatch(DynInst di);
  bool try_issue(uint32_t slot);
  bool issue_mem(DynInst& di);
  void execute(DynInst& di, uint32_t slot, uint32_t latency);
  void complete(uint32_t slot);
  void resolve_branch(uint32_t slot);
  void schedule_completion(uint32_t slot, uint64_t seq, uint64_t when);
  void add_waiter(int phys, uint32_t slot, uint64_t seq);
  void wake_reg(int phys);
  /// Squashes everything strictly younger than `seq` and redirects fetch.
  void recover_to(uint64_t seq, uint64_t new_fetch_pc, uint64_t resume_delay);
  void squash_younger(uint64_t seq);
  /// Architectural recheck of the head instruction; returns false and
  /// triggers recovery when the executed result is not architectural.
  bool commit_check(DynInst& di);
  void apply_commit(DynInst& di);

  // --- configuration and attached subsystems --------------------------------
  CoreConfig cfg_;
  const isa::Program& program_;
  mem::MainMemory& mem_;
  Mechanism* mech_;
  mem::CacheHierarchy hierarchy_;
  branch::Gshare gshare_;
  branch::ReturnAddressStack ras_;
  branch::MbsTable mbs_;
  PhysRegFile regfile_;
  RenameMap rename_;
  LoadStoreQueue lsq_;
  FuPool fu_;
  stats::SimStats stats_;

  // --- ROB ring --------------------------------------------------------------
  std::vector<DynInst> rob_;
  uint32_t rob_head_ = 0;
  uint32_t rob_count_ = 0;

  // --- wakeup/select ----------------------------------------------------------
  std::vector<std::vector<Waiter>> reg_waiters_;  ///< per physical register
  using ReadyQueue =
      std::priority_queue<std::pair<uint64_t, uint32_t>,
                          std::vector<std::pair<uint64_t, uint32_t>>,
                          std::greater<>>;
  ReadyQueue ready_q_;                    ///< (seq, slot), lazy-validated
  std::vector<std::pair<uint64_t, uint32_t>> stalled_mem_;  ///< LSQ retries
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;

  // --- wide-bus line buffers -----------------------------------------------
  // A wide access reads the whole line into a short-lived buffer; up to
  // cfg.wide_bus_loads_per_access loads can be served from it (section
  // 2.4.5) within a small window, without extra cache accesses or ports.
  struct LineAccess {
    uint64_t ready_cycle;
    uint32_t uses;
    uint64_t expire_cycle;
  };
  std::unordered_map<uint64_t, LineAccess> line_buffer_;
  static constexpr uint64_t kLineBufferWindow = 8;
  bool line_buffer_lookup(uint64_t line, uint32_t& latency_out);
  void line_buffer_insert(uint64_t line, uint32_t latency);

  // --- fetch -------------------------------------------------------------------
  uint64_t fetch_pc_ = 0;
  uint64_t fetch_resume_cycle_ = 0;
  bool fetch_stalled_ = false;  ///< ran off the image / hit HALT; waits redirect
  uint64_t last_fetch_line_ = ~uint64_t{0};
  uint64_t next_seq_ = 1;

  // --- architectural ------------------------------------------------------------
  std::array<uint64_t, isa::kNumLogicalRegs> arch_regs_{};
  uint64_t cycle_ = 0;
  bool halted_ = false;
  uint64_t committed_target_ = UINT64_MAX;
  uint64_t last_commit_cycle_ = 0;
  uint64_t rename_starved_since_ = 0;
  uint32_t stores_committed_this_cycle_ = 0;
  uint32_t commit_slots_used_ = 0;
};

}  // namespace cfir::core
