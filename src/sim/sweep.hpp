// Thread-pooled experiment runner: the figure benches enqueue one job per
// (workload, configuration) grid point and collect SimStats. Simulations
// are embarrassingly parallel, so this scales to the host's cores
// (CFIR_THREADS overrides).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "isa/engine.hpp"
#include "isa/program.hpp"
#include "stats/stats.hpp"
#include "trace/sampling.hpp"
#include "trace/shard.hpp"

namespace cfir::sim {

struct RunSpec {
  std::string workload;     ///< name registered in cfir::workloads
  std::string config_name;  ///< column label in the output table
  core::CoreConfig config;
  uint64_t max_insts = 0;   ///< 0 = run to completion
  uint32_t scale = 1;       ///< workload size multiplier
  uint32_t intervals = 1;   ///< >1: checkpointed interval sampling (trace::).
                            ///< uniform mode: number of detailed intervals;
                            ///< cluster mode: number of BBV windows the run
                            ///< is chopped into before phase clustering.
  trace::SampleMode sample_mode = trace::SampleMode::kUniform;
  uint64_t warmup = 0;      ///< detailed warm-up instructions per interval
  trace::WarmMode warm_mode = trace::WarmMode::kDetailed;
  uint64_t detail_len = 0;  ///< measured-slice cap per interval (SMARTS
                            ///< estimator; 0 = whole interval)
  // Sharded sampling (trace/shard.hpp): run only the intervals of shard
  // `shard_index` of `shard_count`. With count > 1 the reported stats
  // cover that shard's intervals only — one slice of the work, meant to be
  // merged with the other shards' outputs (CFIR_SHARD farms a bench grid
  // across machines this way).
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
};

/// One measured interval (= one phase representative in cluster mode) of a
/// sampled run, surfaced so benches can report per-phase columns next to
/// the weighted aggregate.
struct PhaseOutcome {
  uint64_t start_inst = 0;
  uint64_t length = 0;
  double weight = 1.0;
  stats::SimStats stats;
  /// Host wall-clock spent detail-simulating this interval under this
  /// config (telemetry only — never part of the simulated result; 0 when
  /// unknown, e.g. merged from pre-telemetry shard blobs).
  double wall_ms = 0.0;
};

struct RunOutcome {
  RunSpec spec;
  stats::SimStats stats;
  /// Per-interval stats when the spec sampled (`intervals > 1`); empty for
  /// monolithic runs.
  std::vector<PhaseOutcome> phases;
  /// Host wall-clock spent in detailed simulation for this grid point
  /// (mono: the whole run; sampled: sum of this column's interval walls).
  double wall_ms = 0.0;
  /// Instructions the detailed core actually committed — with wall_ms this
  /// yields the insts/sec throughput the bench JSON reports.
  uint64_t detailed_insts = 0;
};

/// What sharing one plan (and one warming stream) across the config
/// columns of a bench grid saved, versus planning/warming each grid point
/// independently — surfaced in bench CFIR_JSON output so a figure's cost
/// is inspectable (docs/sharding.md "Sweep a config grid").
struct SweepSavings {
  uint64_t sampled_points = 0;  ///< grid points that ran sampled
  uint64_t plans = 0;           ///< unique plans actually built
  uint64_t checkpoints = 0;     ///< checkpoints captured (shared)
  uint64_t checkpoints_per_column = 0;  ///< what per-point planning captures
  uint64_t warmed_insts = 0;            ///< instructions streamed (shared)
  uint64_t warmed_insts_per_column = 0; ///< what per-point warming streams
};

/// Runs every spec (order preserved in the result). `threads` <= 0 picks
/// CFIR_THREADS or the hardware concurrency. Specs with `intervals > 1`
/// run through the checkpointed interval sampler: specs sharing one plan
/// (same workload/scale/cap/plan knobs) execute as ONE multi-config
/// trace::run_shard — the plan and its checkpoints are config-independent
/// and each functional-warming gap streams once for the whole column
/// group — and report the merged aggregate stats per column, bit-identical
/// to running each column alone. `savings`, when non-null, receives the
/// shared-plan accounting.
[[nodiscard]] std::vector<RunOutcome> run_all(const std::vector<RunSpec>& specs,
                                              int threads = 0,
                                              SweepSavings* savings = nullptr);

/// The fan-out primitive behind run_all and trace::SampledRun: invokes
/// `fn(0..n)` across `threads` workers (`threads` <= 0 picks
/// CFIR_THREADS or the hardware concurrency) and rethrows the first
/// exception after the batch drains. Executes on the memoized
/// sim::ThreadPool::shared() (sim/pool.hpp) — `threads - 1` pool workers
/// plus the calling thread — so per-wave callers (trace decode, the
/// warming pipeline) pay no thread spawn per call.
void parallel_for(size_t n, const std::function<void(size_t)>& fn,
                  int threads = 0);

/// Environment knobs shared by the bench binaries.
[[nodiscard]] uint32_t env_scale();      ///< CFIR_SCALE, default 1
[[nodiscard]] int env_threads();         ///< CFIR_THREADS, default 0 (auto)
[[nodiscard]] uint64_t env_max_insts();  ///< CFIR_MAX_INSTS, default 0
[[nodiscard]] uint32_t env_intervals();  ///< CFIR_INTERVALS, default 1
/// CFIR_SAMPLE_MODE ("uniform" | "cluster"), default uniform; anything
/// else throws so typos fail loudly instead of silently running uniform.
[[nodiscard]] trace::SampleMode env_sample_mode();
[[nodiscard]] uint64_t env_warmup();     ///< CFIR_WARMUP, default 0
/// CFIR_WARM_MODE ("none" | "detailed" | "functional" | "hybrid"), default
/// detailed; typos throw (see trace::parse_warm_mode).
[[nodiscard]] trace::WarmMode env_warm_mode();
[[nodiscard]] uint64_t env_detail_len();  ///< CFIR_DETAIL_LEN, default 0
/// CFIR_WARM_JOBS, default 0: parallelism cap for the pipelined warming
/// path (trace/warming.hpp). 0 = auto (CFIR_THREADS / hardware
/// concurrency), 1 = the sequential reference path, N = at most N
/// threads across decode prefetch and per-config fan-out. Results are
/// bit-identical at every setting; the knob trades threads for wall.
[[nodiscard]] int env_warm_jobs();
/// CFIR_ENGINE ("switch" | "cached"), default cached: which functional
/// engine the planning/warming/capture passes run on. The trace layer
/// reads the knob itself at engine construction; this accessor exists so
/// run plumbing and bench telemetry can report it next to the other
/// knobs. Throws on any other value.
[[nodiscard]] isa::EngineKind env_engine_kind();
/// CFIR_SHARD ("i/N", e.g. "0/4"), default 0/1 (everything); malformed
/// specs throw (see trace::parse_shard).
[[nodiscard]] trace::ShardSelection env_shard();

}  // namespace cfir::sim
