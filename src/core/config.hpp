// Processor configuration. Defaults reproduce Table 1 of the paper:
// 8-wide fetch/issue/commit, 256-entry window, gshare 64K, 64-entry LSQ,
// and the three-level cache hierarchy. Mechanism-specific knobs (replica
// count, stridedPC width, speculative data memory) live here too so that a
// single struct describes a full experiment point.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/hierarchy.hpp"
#include "util/warmable.hpp"

namespace cfir::core {

/// Which speculation mechanism runs on top of the baseline core.
enum class Policy : uint8_t {
  kNone,        ///< plain superscalar (scalXp)
  kCi,          ///< the paper's control-independence scheme (ciXp)
  kCiWindow,    ///< squash reuse: CI only inside the window (ci-iw)
  kVect,        ///< full-blown dynamic vectorization of ref. [12] (vect)
};

struct CoreConfig {
  // --- front end -----------------------------------------------------------
  uint32_t fetch_width = 8;        ///< up to 1 taken branch per cycle
  uint32_t decode_width = 8;
  uint32_t recovery_penalty = 5;   ///< cycles from resolve to first refetch

  // --- window / issue --------------------------------------------------------
  uint32_t rob_size = 256;         ///< instruction window (Table 1)
  uint32_t issue_width = 8;
  uint32_t commit_width = 8;
  uint32_t lsq_size = 64;

  // --- physical registers ----------------------------------------------------
  // Paper sweeps 128/256/512/768/"infinite". The window automatically grows
  // with the register file above 256 (section 3.2); presets handle this.
  uint32_t num_phys_regs = 256;

  // --- functional units (latency in cycles, Table 1) -------------------------
  uint32_t simple_int_units = 6;
  uint32_t int_alu_latency = 1;
  uint32_t muldiv_units = 3;
  uint32_t mul_latency = 2;
  uint32_t div_latency = 12;
  uint32_t branch_latency = 1;

  // --- memory ---------------------------------------------------------------
  uint32_t cache_ports = 1;        ///< L1D ports (paper sweeps 1 and 2)
  bool wide_bus = false;           ///< line-wide port, <=4 loads per access
  uint32_t wide_bus_loads_per_access = 4;
  uint32_t agu_latency = 1;
  mem::HierarchyConfig memory;

  // --- branch prediction ------------------------------------------------------
  uint32_t gshare_entries = 64 * 1024;
  uint32_t gshare_history_bits = 16;

  // --- mechanism (sections 2.3-2.4) -------------------------------------------
  Policy policy = Policy::kNone;
  uint32_t replicas = 4;             ///< speculative instances per instruction
  uint32_t stridedpc_per_entry = 2;  ///< propagated PCs per rename entry (Fig 4)
  uint32_t srsmt_sets = 64;          ///< 4-way (Table 1)
  uint32_t srsmt_ways = 4;
  uint32_t stride_sets = 256;        ///< 4-way (Table 1)
  uint32_t stride_ways = 4;
  uint32_t mbs_sets = 64;
  uint32_t mbs_ways = 4;
  uint32_t nrbq_entries = 16;
  uint32_t daec_threshold = 2;
  uint32_t ci_select_window = 32;    ///< instructions inspected past the
                                     ///< re-convergent point (see DESIGN.md)
  uint32_t replica_reg_reserve = 16; ///< free registers kept for rename
  // Squash-reuse buffer (ci-iw baseline).
  uint32_t squash_reuse_entries = 256;

  // --- speculative data memory (section 2.4.6) --------------------------------
  bool use_spec_memory = false;
  uint32_t spec_memory_slots = 768;
  uint32_t spec_memory_latency = 2;  ///< twice the register file
  uint32_t spec_memory_read_ports = 2;
  uint32_t spec_memory_write_ports = 2;

  // --- liveness guard ---------------------------------------------------------
  uint64_t watchdog_cycles = 2000;   ///< rename-starvation reclaim threshold
  uint64_t deadlock_cycles = 200000; ///< hard failure (indicates a bug)

  /// Short label such as "ci2p/256r" used in tables.
  [[nodiscard]] std::string label() const;

  /// Applies the paper's rule that the window scales with registers >256.
  void scale_window_to_regs();

  /// Deterministic FNV-1a digest over every configuration field, in
  /// declaration order (util::Digest — stable across hosts; generated from
  /// CFIR_CORECONFIG_FIELDS so a field added to the struct without hash
  /// coverage fails to compile, not to collide). Two configs digest equal
  /// iff they describe the same experiment point; the sharded sampling
  /// layers stamp this per-config hash into manifests and shard results so
  /// results from mismatched configs are rejected at merge time instead of
  /// being silently averaged (trace/manifest.hpp).
  [[nodiscard]] uint64_t digest() const;

  /// Digest over only the fields functional-warm state depends on (policy,
  /// predictor geometry, cache geometry — not latencies, widths or
  /// register counts). Config points with equal warm_digest() train
  /// byte-identical warm blobs from the same committed prefix, so sweeps
  /// that vary ports/regs/widths share one `.cfirwarm` sidecar per
  /// interval instead of one per config (trace/sampling.cpp
  /// bind_configs, trace/manifest.cpp write_manifest). Deliberately NOT
  /// part of CFIR_CORECONFIG_FIELDS: it is derived, not configuration.
  [[nodiscard]] uint64_t warm_digest() const;

  /// Byte codec over the same field list and order as digest(): a config
  /// embedded in a CFIRMAN2 manifest rebuilds on any machine without that
  /// machine knowing the preset it came from. deserialize() throws
  /// std::runtime_error on truncation or trailing bytes (a config from a
  /// build with a different field set).
  void serialize(util::ByteWriter& out) const;
  [[nodiscard]] static CoreConfig deserialize(util::ByteReader& in);

  /// One configuration field flattened to (name, value) — the same list and
  /// order as digest()/serialize(), for display (`trace_tool info`) and for
  /// tests that must cover every field.
  struct NamedValue {
    const char* name;
    uint64_t value;
  };
  [[nodiscard]] std::vector<NamedValue> fields() const;
};

}  // namespace cfir::core

// Every configuration field of CoreConfig as X(kind, field), in declaration
// order. `kind` selects the encoding (u32 | u64 | boolean | policy) and
// `field` is the member expression (nested cache geometry spelled out; the
// CacheConfig `name` is a display label, not configuration, and is
// deliberately absent). digest(), serialize(), deserialize() and fields()
// are all generated from this one list, and the digest-sensitivity test
// (tests/test_config.cpp) flips every entry — so a field added to the
// struct but not listed here is caught, and one listed here but removed
// from the struct fails to compile.
//
// The expansion order and encodings reproduce the pre-X-macro digest()
// byte-for-byte, so config hashes (and the v1 manifests that embed them)
// are unchanged.
#define CFIR_CORECONFIG_FIELDS(X)       \
  X(u32, fetch_width)                   \
  X(u32, decode_width)                  \
  X(u32, recovery_penalty)              \
  X(u32, rob_size)                      \
  X(u32, issue_width)                   \
  X(u32, commit_width)                  \
  X(u32, lsq_size)                      \
  X(u32, num_phys_regs)                 \
  X(u32, simple_int_units)              \
  X(u32, int_alu_latency)               \
  X(u32, muldiv_units)                  \
  X(u32, mul_latency)                   \
  X(u32, div_latency)                   \
  X(u32, branch_latency)                \
  X(u32, cache_ports)                   \
  X(boolean, wide_bus)                  \
  X(u32, wide_bus_loads_per_access)     \
  X(u32, agu_latency)                   \
  X(u32, memory.l1i.size_bytes)         \
  X(u32, memory.l1i.assoc)              \
  X(u32, memory.l1i.line_bytes)         \
  X(u32, memory.l1i.hit_latency)        \
  X(u32, memory.l1d.size_bytes)         \
  X(u32, memory.l1d.assoc)              \
  X(u32, memory.l1d.line_bytes)         \
  X(u32, memory.l1d.hit_latency)        \
  X(u32, memory.l2.size_bytes)          \
  X(u32, memory.l2.assoc)               \
  X(u32, memory.l2.line_bytes)          \
  X(u32, memory.l2.hit_latency)         \
  X(u32, memory.l3.size_bytes)          \
  X(u32, memory.l3.assoc)               \
  X(u32, memory.l3.line_bytes)          \
  X(u32, memory.l3.hit_latency)         \
  X(u32, memory.memory_latency)         \
  X(u32, gshare_entries)                \
  X(u32, gshare_history_bits)           \
  X(policy, policy)                     \
  X(u32, replicas)                      \
  X(u32, stridedpc_per_entry)           \
  X(u32, srsmt_sets)                    \
  X(u32, srsmt_ways)                    \
  X(u32, stride_sets)                   \
  X(u32, stride_ways)                   \
  X(u32, mbs_sets)                      \
  X(u32, mbs_ways)                      \
  X(u32, nrbq_entries)                  \
  X(u32, daec_threshold)                \
  X(u32, ci_select_window)              \
  X(u32, replica_reg_reserve)           \
  X(u32, squash_reuse_entries)          \
  X(boolean, use_spec_memory)           \
  X(u32, spec_memory_slots)             \
  X(u32, spec_memory_latency)           \
  X(u32, spec_memory_read_ports)        \
  X(u32, spec_memory_write_ports)       \
  X(u64, watchdog_cycles)               \
  X(u64, deadlock_cycles)
