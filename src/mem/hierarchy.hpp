// Three-level hierarchy exactly as Table 1 of the paper: 64KB L1I / 64KB
// L1D, 256KB L2, 2MB L3, 100-cycle main memory. Instruction and data sides
// share L2/L3.
#pragma once

#include <cstdint>

#include "mem/cache.hpp"

namespace cfir::mem {

struct HierarchyConfig {
  CacheConfig l1i{"L1I", 64 * 1024, 2, 64, 1};
  CacheConfig l1d{"L1D", 64 * 1024, 2, 32, 1};
  CacheConfig l2{"L2", 256 * 1024, 4, 32, 6};
  CacheConfig l3{"L3", 2 * 1024 * 1024, 4, 64, 18};
  uint32_t memory_latency = 100;
};

class CacheHierarchy : public util::Warmable {
 public:
  explicit CacheHierarchy(const HierarchyConfig& config = {});

  /// Timed instruction fetch of the line containing `addr`.
  /// Returns cycles until the instruction bytes are available.
  uint32_t access_inst(uint64_t addr, uint64_t now);

  /// Timed data access. Counts one L1D access (a wide-bus access that
  /// serves several loads calls this once; see the core's memory stage).
  uint32_t access_data(uint64_t addr, bool is_write, uint64_t now);

  /// Functional warming: the same level-walk as the timed accessors
  /// (L1 miss warms L2, L2 miss warms L3) with Cache::warm_access at each
  /// level — tag/LRU/dirty state only, no stats, no timing.
  void warm_inst(uint64_t addr);
  void warm_data(uint64_t addr, bool is_write);

  /// Content digest over all four caches (see Cache::debug_digest).
  [[nodiscard]] uint64_t debug_digest() const override;
  void serialize(util::ByteWriter& out) const override;
  void deserialize(util::ByteReader& in) override;

  [[nodiscard]] Cache& l1i() { return l1i_; }
  [[nodiscard]] Cache& l1d() { return l1d_; }
  [[nodiscard]] Cache& l2() { return l2_; }
  [[nodiscard]] Cache& l3() { return l3_; }
  [[nodiscard]] const Cache& l1i() const { return l1i_; }
  [[nodiscard]] const Cache& l1d() const { return l1d_; }
  [[nodiscard]] const Cache& l2() const { return l2_; }
  [[nodiscard]] const Cache& l3() const { return l3_; }
  [[nodiscard]] const HierarchyConfig& config() const { return config_; }

  void reset();

 private:
  uint32_t lower_fill_latency(uint64_t addr, bool is_write, uint64_t now);

  HierarchyConfig config_;
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  Cache l3_;
};

}  // namespace cfir::mem
