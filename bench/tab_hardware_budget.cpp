// Section 3.1 hardware budget and the sections 2.4.2/2.4.3 companion
// numbers: structure sizes (must reproduce the paper's byte counts
// exactly), register pressure with/without DAEC under unbounded registers,
// and the fraction of stores hitting a vectorized-load range.
#include "common.hpp"

#include "branch/mbs.hpp"
#include "ci/reconvergence.hpp"
#include "ci/srsmt.hpp"
#include "ci/stride_predictor.hpp"

int main() {
  using namespace cfir;
  using namespace cfir::bench;

  // --- structure sizes (section 3.1) ---------------------------------------
  ci::Srsmt srsmt(64, 4, 4);
  ci::StridePredictor sp(256, 4);
  branch::MbsTable mbs(64, 4);
  ci::Nrbq nrbq(16);
  const uint64_t rename_ext = 64 * 16;
  stats::Table sizes({"structure", "bytes", "paper"});
  sizes.add_row({"SRSMT", std::to_string(srsmt.storage_bytes()), "11520"});
  sizes.add_row({"stride predictor", std::to_string(sp.storage_bytes()),
                 "24576"});
  sizes.add_row({"MBS", std::to_string(mbs.storage_bytes()), "2048"});
  sizes.add_row({"NRBQ", std::to_string(nrbq.storage_bytes()), "128"});
  sizes.add_row({"CRP", std::to_string(ci::Crp::storage_bytes()), "16"});
  sizes.add_row({"rename extension", std::to_string(rename_ext), "1024"});
  const uint64_t total = srsmt.storage_bytes() + sp.storage_bytes() +
                         mbs.storage_bytes() + nrbq.storage_bytes() +
                         ci::Crp::storage_bytes() + rename_ext;
  sizes.add_row({"TOTAL", std::to_string(total), "39312 (~39KB)"});
  std::printf("Section 3.1: extra hardware budget\n\n%s\n",
              sizes.to_text().c_str());

  // --- register pressure with/without DAEC (section 2.4.2) -----------------
  obs::init_from_env();  // CFIR_TRACE=<file> flight-records the sweep
  const uint64_t max_insts = default_max_insts();
  const uint32_t scale = sim::env_scale();
  std::vector<sim::RunSpec> specs;
  for (const bool daec : {false, true}) {
    for (const std::string& wl : workloads::names()) {
      sim::RunSpec s;
      s.workload = wl;
      s.config_name = daec ? "daec" : "nodaec";
      s.config = sim::presets::ci(2, sim::presets::kInfRegs);
      if (!daec) s.config.daec_threshold = UINT32_MAX;
      s.max_insts = max_insts;
      s.scale = scale;
      s.intervals = sim::env_intervals();
      s.sample_mode = sim::env_sample_mode();
      s.warmup = sim::env_warmup();
      s.warm_mode = sim::env_warm_mode();
      s.detail_len = sim::env_detail_len();
      specs.push_back(std::move(s));
    }
  }
  const auto out = sim::run_all(specs, sim::env_threads());
  double avg[2] = {0, 0};
  uint64_t maxu[2] = {0, 0};
  size_t n2 = workloads::names().size();
  for (size_t i = 0; i < out.size(); ++i) {
    const int m = out[i].spec.config_name == "daec" ? 1 : 0;
    avg[m] += out[i].stats.avg_regs_in_use() / static_cast<double>(n2);
    maxu[m] = std::max(maxu[m], out[i].stats.regs_in_use_max);
  }
  std::printf("Section 2.4.2: registers in use, unbounded register file\n");
  std::printf("  without DAEC: avg %.0f (max %llu)   [paper: 812]\n",
              avg[0], static_cast<unsigned long long>(maxu[0]));
  std::printf("  with DAEC:    avg %.0f (max %llu)   [paper: 304]\n\n",
              avg[1], static_cast<unsigned long long>(maxu[1]));

  // --- store conflicts (section 2.4.3) --------------------------------------
  uint64_t checks = 0, conflicts = 0, stores = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i].spec.config_name != "daec") continue;
    checks += out[i].stats.store_range_checks;
    conflicts += out[i].stats.store_range_conflicts;
    stores += out[i].stats.committed_stores;
  }
  std::printf("Section 2.4.3: stores hitting a vectorized-load range: "
              "%.2f%% of %llu committed stores (paper: <3%%)\n",
              stores ? 100.0 * static_cast<double>(conflicts) /
                           static_cast<double>(stores)
                     : 0.0,
              static_cast<unsigned long long>(stores));
  (void)checks;
  dump_json(out);
  dump_telemetry_json(out);
  return 0;
}
