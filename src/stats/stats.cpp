#include "stats/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace cfir::stats {

std::string SimStats::to_string() const {
  std::ostringstream os;
  os << "cycles=" << cycles << " committed=" << committed
     << " IPC=" << ipc() << '\n'
     << "fetched=" << fetched << " squashed(specBP)=" << squashed
     << " replicas(specCI)=" << replicas_executed << '\n'
     << "cond_branches=" << cond_branches << " mispredicts=" << mispredicts
     << " rate=" << mispredict_rate() << '\n'
     << "CI episodes=" << ep_total << " selected=" << ep_ci_selected
     << " reused=" << ep_ci_reused << '\n'
     << "reused_committed=" << reused_committed
     << " (" << 100.0 * reuse_fraction() << "% of committed)\n"
     << "L1D accesses=" << l1d_accesses << " misses=" << l1d_misses
     << " wide=" << wide_accesses << " piggybacked=" << loads_piggybacked
     << '\n'
     << "store range checks=" << store_range_checks
     << " conflicts=" << store_range_conflicts << '\n'
     << "avg regs in use=" << avg_regs_in_use()
     << " max=" << regs_in_use_max
     << " rename stalls=" << rename_stall_cycles << '\n'
     << "validations failed=" << validations_failed
     << " misvalidation squashes=" << misvalidation_squashes
     << " safety net=" << safety_net_recoveries << '\n';
  return os.str();
}

SimStats& SimStats::merge(const SimStats& other) {
#define X(field) field += other.field;
  CFIR_SIMSTATS_COUNTERS(X)
#undef X
  halted = halted || other.halted;
  regs_in_use_max = std::max(regs_in_use_max, other.regs_in_use_max);
  return *this;
}

SimStats& SimStats::subtract(const SimStats& other) {
  // Every legitimate caller subtracts a snapshot taken earlier on the same
  // cumulative stats block (a warm-up slice from its full interval), so
  // the subtrahend can never exceed the minuend; an underflow means the
  // caller mixed up unrelated stats and is a bug. Debug builds assert;
  // release builds saturate at zero rather than wrapping to 2^64-ish
  // garbage that would silently corrupt merged aggregates.
#define X(field)                                                           \
  assert(field >= other.field && "SimStats::subtract underflow: " #field); \
  field = field >= other.field ? field - other.field : 0;
  CFIR_SIMSTATS_COUNTERS(X)
#undef X
  // halted / regs_in_use_max keep the minuend's value (see header).
  return *this;
}

SimStats& SimStats::merge_scaled(const SimStats& other, double weight) {
#define X(field)                                                           \
  field += static_cast<uint64_t>(                                          \
      std::llround(static_cast<double>(other.field) * weight));
  CFIR_SIMSTATS_COUNTERS(X)
#undef X
  halted = halted || other.halted;
  regs_in_use_max = std::max(regs_in_use_max, other.regs_in_use_max);
  return *this;
}

void serialize(const SimStats& s, util::ByteWriter& out) {
#define X(field) out.u64(s.field);
  CFIR_SIMSTATS_COUNTERS(X)
#undef X
  out.boolean(s.halted);
  out.u64(s.regs_in_use_max);
}

SimStats deserialize_stats(util::ByteReader& in) {
  SimStats s;
#define X(field) s.field = in.u64();
  CFIR_SIMSTATS_COUNTERS(X)
#undef X
  s.halted = in.boolean();
  s.regs_in_use_max = in.u64();
  return s;
}

SimStats merge_shards(const std::vector<WeightedStats>& parts) {
  SimStats aggregate;
  for (const WeightedStats& part : parts) {
    // weight 1 folds exactly (merge_scaled would round-trip the counters
    // through double, which loses bits above 2^53).
    if (part.weight == 1.0) {
      aggregate.merge(part.stats);
    } else {
      aggregate.merge_scaled(part.stats, part.weight);
    }
  }
  return aggregate;
}

std::string to_json(const SimStats& s) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  const auto num = [&](const char* key, auto value) {
    if (!first) os << ',';
    first = false;
    os << '"' << key << "\":" << value;
  };
#define X(field) num(#field, s.field);
  CFIR_SIMSTATS_COUNTERS(X)
#undef X
  num("halted", s.halted ? "true" : "false");
  num("regs_in_use_max", s.regs_in_use_max);
  num("ipc", s.ipc());
  num("mispredict_rate", s.mispredict_rate());
  num("avg_regs_in_use", s.avg_regs_in_use());
  num("avg_stridedpc_width", s.avg_stridedpc_width());
  num("reuse_fraction", s.reuse_fraction());
  os << '}';
  return os.str();
}

double harmonic_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double denom = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    denom += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / denom;
}

}  // namespace cfir::stats
