// Property-based differential testing of every speculation policy: random
// structured programs must commit the interpreter's exact architectural
// state under ci / vect / ci-iw / spec-memory configurations.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace cfir::sim {
namespace {

class RandomProgramPolicies : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramPolicies, CiMatchesInterpreter) {
  const isa::Program p = cfir::testing::random_program(GetParam());
  const DiffResult r = differential_run(presets::ci(2, 512), p, 300000);
  EXPECT_TRUE(r.match) << "seed " << GetParam() << ": " << r.mismatch;
}

TEST_P(RandomProgramPolicies, CiSmallRegfileMatchesInterpreter) {
  const isa::Program p = cfir::testing::random_program(GetParam());
  const DiffResult r = differential_run(presets::ci(1, 128), p, 300000);
  EXPECT_TRUE(r.match) << "seed " << GetParam() << ": " << r.mismatch;
}

TEST_P(RandomProgramPolicies, VectMatchesInterpreter) {
  const isa::Program p = cfir::testing::random_program(GetParam());
  const DiffResult r = differential_run(presets::vect(2, 512), p, 300000);
  EXPECT_TRUE(r.match) << "seed " << GetParam() << ": " << r.mismatch;
}

TEST_P(RandomProgramPolicies, CiWindowMatchesInterpreter) {
  const isa::Program p = cfir::testing::random_program(GetParam());
  const DiffResult r = differential_run(presets::ci_window(1, 256), p, 300000);
  EXPECT_TRUE(r.match) << "seed " << GetParam() << ": " << r.mismatch;
}

TEST_P(RandomProgramPolicies, CiSpecMemoryMatchesInterpreter) {
  const isa::Program p = cfir::testing::random_program(GetParam());
  const DiffResult r =
      differential_run(presets::ci_specmem(2, 256, 256), p, 300000);
  EXPECT_TRUE(r.match) << "seed " << GetParam() << ": " << r.mismatch;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramPolicies,
                         ::testing::Range<uint64_t>(100, 120));

// The workloads themselves, under every policy (heavier, fewer cases).
class WorkloadPolicies : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadPolicies, CiMatchesInterpreter) {
  const isa::Program p = workloads::build(GetParam(), 1);
  const DiffResult r = differential_run(presets::ci(2, 512), p, 50000);
  EXPECT_TRUE(r.match) << GetParam() << ": " << r.mismatch;
}

TEST_P(WorkloadPolicies, VectMatchesInterpreter) {
  const isa::Program p = workloads::build(GetParam(), 1);
  const DiffResult r = differential_run(presets::vect(2, 512), p, 50000);
  EXPECT_TRUE(r.match) << GetParam() << ": " << r.mismatch;
}

TEST_P(WorkloadPolicies, CiWindowMatchesInterpreter) {
  const isa::Program p = workloads::build(GetParam(), 1);
  const DiffResult r = differential_run(presets::ci_window(1, 256), p, 50000);
  EXPECT_TRUE(r.match) << GetParam() << ": " << r.mismatch;
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadPolicies,
                         ::testing::Values("bzip2", "crafty", "eon", "gap",
                                           "gcc", "gzip", "mcf", "parser",
                                           "perlbmk", "twolf", "vortex",
                                           "vpr"));

}  // namespace
}  // namespace cfir::sim
