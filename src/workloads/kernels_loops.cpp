// Loop/compute kernels: crafty (bitboard scans), eon (regular numeric
// loops, the predictable end of the spectrum), gap (modular-arithmetic
// hammocks) and gcc (multi-way dispatch chains).
#include <random>

#include "isa/assembler.hpp"
#include "workloads/workloads.hpp"

namespace cfir::workloads {

using isa::Assembler;
using isa::Program;

// ---------------------------------------------------------------------------
// crafty — bitboard evaluation: walk an array of 64-bit boards; for each,
// test a couple of squares (random bits → hard branches) and accumulate
// mobility scores; popcount-style reduction loop mixes in ALU pressure.
// ---------------------------------------------------------------------------
Program build_crafty(uint32_t scale) {
  Assembler as;
  std::mt19937_64 gen(0xC4AF7ULL);
  const size_t n = 768;
  const uint64_t boards = as.reserve("boards", n * 8);
  for (size_t i = 0; i < n; ++i) as.init_word(boards + i * 8, gen());

  const int rIdx = 1, rBoard = 2, rBit = 3, rScore = 4, rT = 5, rBase = 6;
  const int rEnd = 7, rPop = 8, rK = 9, rZ = 10, rOuter = 11, rMob = 12;
  as.movi(rBase, static_cast<int64_t>(boards));
  as.movi(rOuter, static_cast<int64_t>(3 * scale));
  as.label("outer");
  as.movi(rIdx, 0);
  as.movi(rScore, 0);
  as.movi(rMob, 0);
  as.movi(rEnd, static_cast<int64_t>(n));
  as.movi(rZ, 0);
  as.label("loop");
  as.shli(rT, rIdx, 3);
  as.add(rT, rBase, rT);
  as.ld(rBoard, rT, 0, 8);            // strided board load
  as.andi(rBit, rBoard, 1);           // random bit test
  as.beq(rBit, rZ, "no_center");      // hard hammock
  as.addi(rScore, rScore, 5);
  as.jmp("center_done");
  as.label("no_center");
  as.addi(rScore, rScore, 1);
  as.label("center_done");            // re-convergent point
  as.shrli(rT, rBoard, 32);           // CI: mobility from the strided load
  as.xor_(rMob, rMob, rT);
  // Partial popcount: 8 fixed rounds (predictable inner loop).
  as.mov(rT, rBoard);
  as.movi(rPop, 0);
  as.movi(rK, 8);
  as.label("pop");
  as.andi(rBit, rT, 1);
  as.add(rPop, rPop, rBit);
  as.shrli(rT, rT, 1);
  as.addi(rK, rK, -1);
  as.bne(rK, rZ, "pop");
  as.add(rScore, rScore, rPop);
  as.addi(rIdx, rIdx, 1);
  as.blt(rIdx, rEnd, "loop");
  as.addi(rOuter, rOuter, -1);
  as.bne(rOuter, rZ, "outer");
  as.halt();
  return as.assemble();
}

// ---------------------------------------------------------------------------
// eon — rendering flavour: fixed-trip inner loops of multiply-accumulate
// over strided arrays, fully predictable branches. The MBS classifies
// everything as easy, so the CI scheme stays idle (the white band of
// Figure 5 and the "no gain" end of Figure 10).
// ---------------------------------------------------------------------------
Program build_eon(uint32_t scale) {
  Assembler as;
  std::mt19937_64 gen(0xE0217ULL);
  const size_t n = 1024;
  const uint64_t xs = as.reserve("xs", n * 8);
  const uint64_t ys = as.reserve("ys", n * 8);
  for (size_t i = 0; i < n; ++i) {
    as.init_word(xs + i * 8, gen() % 4096);
    as.init_word(ys + i * 8, gen() % 4096);
  }

  const int rIdx = 1, rX = 2, rY = 3, rDot = 4, rT = 5, rXB = 6, rYB = 7;
  const int rEnd = 8, rNorm = 9, rOuter = 10, rZ = 11;
  as.movi(rXB, static_cast<int64_t>(xs));
  as.movi(rYB, static_cast<int64_t>(ys));
  as.movi(rOuter, static_cast<int64_t>(6 * scale));
  as.movi(rZ, 0);
  as.label("outer");
  as.movi(rIdx, 0);
  as.movi(rDot, 0);
  as.movi(rNorm, 0);
  as.movi(rEnd, static_cast<int64_t>(n));
  as.label("loop");
  as.shli(rT, rIdx, 3);
  as.add(rX, rXB, rT);
  as.ld(rX, rX, 0, 8);
  as.add(rY, rYB, rT);
  as.ld(rY, rY, 0, 8);
  as.mul(rT, rX, rY);
  as.add(rDot, rDot, rT);
  as.mul(rT, rX, rX);
  as.add(rNorm, rNorm, rT);
  as.addi(rIdx, rIdx, 1);
  as.blt(rIdx, rEnd, "loop");         // predictable loop branch
  as.addi(rOuter, rOuter, -1);
  as.bne(rOuter, rZ, "outer");
  as.halt();
  return as.assemble();
}

// ---------------------------------------------------------------------------
// gap — group-theory flavour: modular arithmetic over a strided array with
// a divisibility hammock (x % 3) that random data makes hard; the modular
// reduction after the join is control independent and strided-fed.
// ---------------------------------------------------------------------------
Program build_gap(uint32_t scale) {
  Assembler as;
  std::mt19937_64 gen(0x6A9ULL);
  const size_t n = 1280;
  const uint64_t arr = as.reserve("arr", n * 8);
  for (size_t i = 0; i < n; ++i) as.init_word(arr + i * 8, gen() % 100000);

  const int rIdx = 1, rV = 2, rMod = 3, rDiv3 = 4, rOther = 5, rT = 6;
  const int rBase = 7, rEnd = 8, rAcc = 9, rThree = 10, rZ = 11, rOuter = 12;
  as.movi(rBase, static_cast<int64_t>(arr));
  as.movi(rOuter, static_cast<int64_t>(3 * scale));
  as.movi(rZ, 0);
  as.label("outer");
  as.movi(rIdx, 0);
  as.movi(rDiv3, 0);
  as.movi(rOther, 0);
  as.movi(rAcc, 0);
  as.movi(rEnd, static_cast<int64_t>(n));
  as.movi(rThree, 3);
  as.label("loop");
  as.shli(rT, rIdx, 3);
  as.add(rT, rBase, rT);
  as.ld(rV, rT, 0, 8);                // strided load
  as.rem(rMod, rV, rThree);
  as.bne(rMod, rZ, "not_div");        // hard hammock (1/3 vs 2/3 mix)
  as.addi(rDiv3, rDiv3, 1);
  as.jmp("join");
  as.label("not_div");
  as.addi(rOther, rOther, 1);
  as.label("join");                   // re-convergent point
  as.andi(rT, rV, 1023);              // CI: strided-fed reduction
  as.add(rAcc, rAcc, rT);
  as.addi(rIdx, rIdx, 1);
  as.blt(rIdx, rEnd, "loop");
  as.addi(rOuter, rOuter, -1);
  as.bne(rOuter, rZ, "outer");
  as.halt();
  return as.assemble();
}

// ---------------------------------------------------------------------------
// gcc — instruction-selection flavour: dispatch over a stream of pseudo
// opcodes through an if/else chain (several branches per element, mixed
// bias), updating per-class counters; re-convergence at the chain exit.
// ---------------------------------------------------------------------------
Program build_gcc(uint32_t scale) {
  Assembler as;
  std::mt19937_64 gen(0x6CCULL);
  const size_t n = 1280;
  const uint64_t ops = as.reserve("ops", n);
  // Skewed class distribution: two common classes, two rare ones.
  std::discrete_distribution<int> cls({45, 30, 15, 10});
  std::vector<uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<uint8_t>(cls(gen));
  as.init_bytes(ops, bytes);

  const int rIdx = 1, rOp = 2, rC0 = 3, rC1 = 4, rC2 = 5, rC3 = 6, rT = 7;
  const int rBase = 8, rEnd = 9, rSum = 10, rK = 11, rZ = 12, rOuter = 13;
  as.movi(rBase, static_cast<int64_t>(ops));
  as.movi(rOuter, static_cast<int64_t>(3 * scale));
  as.movi(rZ, 0);
  as.label("outer");
  as.movi(rIdx, 0);
  as.movi(rC0, 0);
  as.movi(rC1, 0);
  as.movi(rC2, 0);
  as.movi(rC3, 0);
  as.movi(rSum, 0);
  as.movi(rEnd, static_cast<int64_t>(n));
  as.label("loop");
  as.add(rT, rBase, rIdx);
  as.ld(rOp, rT, 0, 1);               // strided opcode load
  as.movi(rK, 0);
  as.bne(rOp, rK, "try1");            // chain of data-dependent branches
  as.addi(rC0, rC0, 1);
  as.jmp("dispatched");
  as.label("try1");
  as.movi(rK, 1);
  as.bne(rOp, rK, "try2");
  as.addi(rC1, rC1, 1);
  as.jmp("dispatched");
  as.label("try2");
  as.movi(rK, 2);
  as.bne(rOp, rK, "class3");
  as.addi(rC2, rC2, 1);
  as.jmp("dispatched");
  as.label("class3");
  as.addi(rC3, rC3, 1);
  as.label("dispatched");             // common re-convergent point
  as.shli(rT, rOp, 1);                // CI: fed by the strided load
  as.add(rSum, rSum, rT);
  as.addi(rIdx, rIdx, 1);
  as.blt(rIdx, rEnd, "loop");
  as.addi(rOuter, rOuter, -1);
  as.bne(rOuter, rZ, "outer");
  as.halt();
  return as.assemble();
}

}  // namespace cfir::workloads
