// Trace capture / replay: a compact, versioned binary format for the
// committed instruction stream (PCs, branch outcomes, load/store
// addresses) of one workload run.
//
// Motivation (see README "Trace subsystem"): every figure bench used to
// re-execute each workload from instruction zero. Recording the committed
// stream once makes runs persistable, shareable and replayable — replay
// re-executes the reference interpreter under trace verification, so a
// stored trace doubles as an architectural regression artifact.
//
// Format, version 1 (all integers little-endian):
//
//   header:  magic "CFIRTRC1" | u32 version | u32 reserved
//            | u64 record_count | u64 base_pc | u64 final_digest
//            | 64 x u64 final architectural registers
//            | u32 scale | u32 name_len | name bytes
//   records: one per retired instruction —
//            tag byte: bits 0-1 kind (0 plain, 1 branch, 2 load, 3 store)
//                      bit  2   branch taken
//                      bits 3-4 log2(access bytes) for loads/stores
//            zigzag-varint pc delta from the *predicted* pc
//              (previous pc + 4; sequential code costs 1 byte)
//            branch: zigzag-varint delta of actual next pc from pc + 4
//            load/store: zigzag-varint address delta from the previous
//              memory access address
//
// `record_count`, `final_digest` and the final registers are patched into
// the header by TraceWriter::finish, so a trace file is self-validating:
// replay can check the reconstructed architectural state without re-running
// the original simulation. finish() then appends the shared CRC-32 footer
// (trace/blob.hpp), verified by TraceReader at open; footer-less files
// written before the footer existed still load.
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <string>

#include "isa/engine.hpp"
#include "isa/interpreter.hpp"
#include "isa/program.hpp"

namespace cfir::trace {

inline constexpr char kTraceMagic[8] = {'C', 'F', 'I', 'R',
                                        'T', 'R', 'C', '1'};
inline constexpr uint32_t kTraceVersion = 1;
/// record_count value written at open and replaced by finish(); a file
/// still carrying it was interrupted mid-recording and is rejected.
inline constexpr uint64_t kUnfinishedRecordCount = UINT64_MAX;

/// Directory trace files default into: CFIR_TRACE_DIR, or "." when unset.
[[nodiscard]] std::string env_trace_dir();

enum class RecordKind : uint8_t {
  kPlain = 0,   ///< ALU / jumps / calls / rets
  kBranch = 1,  ///< conditional branch (taken + target recorded)
  kLoad = 2,
  kStore = 3,
};

/// One retired instruction.
struct TraceRecord {
  uint64_t pc = 0;
  RecordKind kind = RecordKind::kPlain;
  bool taken = false;     ///< kBranch only
  uint64_t next_pc = 0;   ///< kBranch only: actual successor pc
  uint64_t addr = 0;      ///< kLoad/kStore only
  uint8_t size = 0;       ///< kLoad/kStore only: access bytes (1/2/4/8)

  bool operator==(const TraceRecord&) const = default;
};

// The engine's retired-instruction events and trace records are the same
// data; the enum values line up by design so conversion is a cast.
static_assert(static_cast<int>(RecordKind::kPlain) ==
              static_cast<int>(isa::EventKind::kPlain));
static_assert(static_cast<int>(RecordKind::kBranch) ==
              static_cast<int>(isa::EventKind::kBranch));
static_assert(static_cast<int>(RecordKind::kLoad) ==
              static_cast<int>(isa::EventKind::kLoad));
static_assert(static_cast<int>(RecordKind::kStore) ==
              static_cast<int>(isa::EventKind::kStore));

[[nodiscard]] inline TraceRecord to_trace_record(const isa::StepEvent& ev) {
  TraceRecord rec;
  rec.pc = ev.pc;
  rec.kind = static_cast<RecordKind>(ev.kind);
  rec.taken = ev.taken;
  rec.next_pc = ev.next_pc;
  rec.addr = ev.addr;
  rec.size = ev.size;
  return rec;
}

/// Workload identity stored in the header so `replay` / `info` can rebuild
/// the program without out-of-band knowledge.
struct TraceMeta {
  std::string workload;
  uint32_t scale = 1;
  uint64_t base_pc = 0;
};

class TraceWriter {
 public:
  /// Creates/truncates `path` and writes the header (counts zeroed).
  TraceWriter(const std::string& path, const TraceMeta& meta);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const TraceRecord& rec);

  /// Patches record count, final registers and memory digest into the
  /// header and closes the file. Idempotent.
  void finish(const std::array<uint64_t, isa::kNumLogicalRegs>& final_regs,
              uint64_t final_digest);

  [[nodiscard]] uint64_t records() const { return records_; }

 private:
  void put_varint(uint64_t v);

  std::ofstream out_;
  std::string path_;  ///< finish() re-reads the file to append the CRC footer
  uint64_t records_ = 0;
  uint64_t prev_pc_;     ///< pc of the previous record
  bool have_prev_ = false;
  uint64_t base_pc_;
  uint64_t last_addr_ = 0;
  bool finished_ = false;
};

class TraceReader {
 public:
  /// Opens and validates the header; throws std::runtime_error on a bad
  /// magic / version / truncated file.
  explicit TraceReader(const std::string& path);

  [[nodiscard]] const TraceMeta& meta() const { return meta_; }
  [[nodiscard]] uint64_t record_count() const { return record_count_; }
  [[nodiscard]] uint64_t final_digest() const { return final_digest_; }
  [[nodiscard]] const std::array<uint64_t, isa::kNumLogicalRegs>&
  final_regs() const {
    return final_regs_;
  }

  /// Reads the next record; returns false at end of stream.
  bool next(TraceRecord& out);

 private:
  [[nodiscard]] uint64_t get_varint();

  std::ifstream in_;
  TraceMeta meta_;
  uint64_t record_count_ = 0;
  uint64_t final_digest_ = 0;
  std::array<uint64_t, isa::kNumLogicalRegs> final_regs_{};
  uint64_t read_ = 0;
  uint64_t prev_pc_ = 0;
  bool have_prev_ = false;
  uint64_t last_addr_ = 0;
  int64_t open_us_ = 0;     ///< decode-throughput telemetry epoch
  bool telemetry_done_ = false;
};

/// Runs the reference interpreter over `program` (fresh memory, data image
/// applied), recording every retired instruction to `path`. Stops at HALT
/// or after `max_insts`. Returns the final architectural state.
isa::InterpResult record_interpreter(const isa::Program& program,
                                     const std::string& path,
                                     const TraceMeta& meta,
                                     uint64_t max_insts = UINT64_MAX);

/// Trace-driven re-execution: replays `program` on the interpreter while
/// verifying every retired instruction against the stored records, then
/// checks the final registers and memory digest against the header.
struct ReplayResult {
  bool match = false;
  uint64_t replayed = 0;        ///< records consumed
  std::string mismatch;         ///< empty when match
  isa::InterpResult final_state;
};
ReplayResult replay_trace(const isa::Program& program,
                          const std::string& path);
/// Same, driving an already-opened reader (no record consumed yet) —
/// callers that inspected meta() first avoid re-parsing the header.
ReplayResult replay_trace(const isa::Program& program, TraceReader& reader);

}  // namespace cfir::trace
