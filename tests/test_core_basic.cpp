#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "helpers.hpp"
#include "isa/assembler.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"

namespace cfir::core {
namespace {

sim::Simulator make_sim(const isa::Program& p, const CoreConfig& cfg) {
  return sim::Simulator(cfg, p);
}

TEST(CoreBasic, StraightLineArithmetic) {
  const isa::Program p = isa::assemble_text(R"(
    movi r1, 6
    movi r2, 7
    mul r3, r1, r2
    add r4, r3, r3
    halt
  )");
  sim::Simulator s = make_sim(p, sim::presets::scal(1, 256));
  const auto st = s.run(1000);
  EXPECT_TRUE(st.halted);
  EXPECT_EQ(st.committed, 4u);  // halt itself is not counted as committed?
  EXPECT_EQ(s.arch_reg(3), 42u);
  EXPECT_EQ(s.arch_reg(4), 84u);
}

TEST(CoreBasic, HaltCountsOnceAndStops) {
  const isa::Program p = isa::assemble_text("movi r1, 1\nhalt\nmovi r1, 9\n");
  sim::Simulator s = make_sim(p, sim::presets::scal(1, 256));
  const auto st = s.run(1000);
  EXPECT_TRUE(st.halted);
  EXPECT_EQ(s.arch_reg(1), 1u);  // instruction after halt never commits
}

TEST(CoreBasic, LoopIpcReasonable) {
  const isa::Program p = cfir::testing::figure1_program(256, 0, 1);
  sim::Simulator s = make_sim(p, sim::presets::scal(1, 256));
  const auto st = s.run(100000);
  EXPECT_TRUE(st.halted);
  EXPECT_GT(st.ipc(), 0.5);
  EXPECT_LT(st.ipc(), 8.0);
  EXPECT_GT(st.cycles, 0u);
}

TEST(CoreBasic, BranchStatsTracked) {
  // All-zero data: the hammock is perfectly biased, few mispredictions.
  const isa::Program p = cfir::testing::figure1_program(512, 100, 1);
  sim::Simulator s = make_sim(p, sim::presets::scal(1, 256));
  const auto st = s.run(100000);
  EXPECT_EQ(st.cond_branches, 512u + 512u);
  EXPECT_LT(st.mispredict_rate(), 0.1);
}

TEST(CoreBasic, HardHammockMispredicts) {
  const isa::Program p = cfir::testing::figure1_program(512, 50, 99);
  sim::Simulator s = make_sim(p, sim::presets::scal(1, 256));
  const auto st = s.run(100000);
  // Random 50/50 data: a large fraction of hammock branches mispredict and
  // wrong-path work is fetched then squashed.
  EXPECT_GT(st.mispredicts, 100u);
  EXPECT_GT(st.squashed, st.mispredicts);
}

TEST(CoreBasic, WrongPathRunOffImageRecovers) {
  // The hammock's wrong path runs into HALT; recovery must unwedge fetch.
  const isa::Program p = isa::assemble_text(R"(
    movi r1, 1
    movi r2, 0
    beq r1, r2, dead
    movi r3, 7
    halt
  dead:
    movi r3, 9
    halt
  )");
  sim::Simulator s = make_sim(p, sim::presets::scal(1, 256));
  const auto st = s.run(1000);
  EXPECT_TRUE(st.halted);
  EXPECT_EQ(s.arch_reg(3), 7u);
}

TEST(CoreBasic, SmallRegisterFileLimitsWindow) {
  const isa::Program p = cfir::testing::figure1_program(512, 50, 5);
  sim::Simulator s128 = make_sim(p, sim::presets::scal(1, 128));
  sim::Simulator s256 = make_sim(p, sim::presets::scal(1, 256));
  const auto a = s128.run(1000000);
  const auto b = s256.run(1000000);
  // 128 physical registers leave only ~64 renames in flight; rename stalls
  // must appear and IPC must not exceed the 256-register machine.
  EXPECT_GT(a.rename_stall_cycles, 0u);
  EXPECT_LE(a.ipc(), b.ipc() + 0.05);
}

TEST(CoreBasic, CommitNeverExceedsCap) {
  const isa::Program p = cfir::testing::figure1_program(4096, 50, 5);
  sim::Simulator s = make_sim(p, sim::presets::scal(1, 256));
  const auto st = s.run(5000);
  EXPECT_EQ(st.committed, 5000u);
  EXPECT_FALSE(st.halted);
}

TEST(CoreBasic, TooFewPhysRegsRejected) {
  const isa::Program p = isa::assemble_text("halt\n");
  CoreConfig cfg = sim::presets::scal(1, 256);
  cfg.num_phys_regs = 64;  // must exceed logical count + margin
  EXPECT_THROW(sim::Simulator(cfg, p), std::runtime_error);
}

TEST(CoreBasic, CallRetThroughRas) {
  const isa::Program p = isa::assemble_text(R"(
    movi r1, 3
    movi r5, 0
  loop:
    call f
    add r1, r1, -1
    movi r6, 0
    bne r1, r6, loop
    halt
  f:
    add r5, r5, r1
    ret
  )");
  sim::Simulator s = make_sim(p, sim::presets::scal(1, 256));
  const auto st = s.run(10000);
  EXPECT_TRUE(st.halted);
  EXPECT_EQ(s.arch_reg(5), 6u);  // 3 + 2 + 1
}

TEST(CoreBasic, RegisterOccupancySampled) {
  const isa::Program p = cfir::testing::figure1_program(1024, 50, 5);
  sim::Simulator s = make_sim(p, sim::presets::scal(1, 512));
  const auto st = s.run(100000);
  EXPECT_GT(st.reg_samples, 0u);
  EXPECT_GE(st.avg_regs_in_use(), 64.0);  // at least the architectural map
  EXPECT_LE(st.regs_in_use_max, 512u);
}

}  // namespace
}  // namespace cfir::core
