// Throughput regression guard for the pipelined warming path: on an
// optimized build with at least 4 hardware threads, the block-parallel
// 8-config grid capture (jobs = auto) must warm at least 2x as fast as
// the sequential reference path (bench/micro_warming prints the full
// picture; this test keeps the speedup from silently regressing).
// Skipped on Debug builds and under sanitizers, where instrumentation
// and lock overhead flatten the parallelism the guard measures, and on
// hosts too narrow for the fan-out to pay off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "obs/metrics.hpp"
#include "sim/presets.hpp"
#include "trace/trace.hpp"
#include "trace/warming.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace cfir;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

#ifdef NDEBUG
constexpr bool kOptimized = true;
#else
constexpr bool kOptimized = false;
#endif

/// Best-of-N wall time for one full trace-fed grid capture, fresh reader
/// each sample so every run pays block decode.
double best_us(const std::vector<core::CoreConfig>& configs,
               const isa::Program& program, const std::string& trace_path,
               const std::vector<uint64_t>& targets, int jobs, int repeats) {
  double best = 1e18;
  for (int r = 0; r < repeats; ++r) {
    trace::TraceReader reader(trace_path);
    const obs::Stopwatch clock;
    const auto blobs = trace::capture_warm_states_grid(configs, program,
                                                       reader, targets, jobs);
    best = std::min(best, static_cast<double>(clock.elapsed_us()));
    EXPECT_EQ(blobs.size(), configs.size());
  }
  return best;
}

TEST(WarmingBench, PipelinedGridAtLeast2xSequential) {
  if (!kOptimized || kSanitized) {
    GTEST_SKIP() << "throughput guard needs an optimized, uninstrumented "
                    "build (Debug or sanitizer detected)";
  }
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "pipelined fan-out guard needs >= 4 hardware threads";
  }

  // bzip2 s8 capped at ~600k records: long enough that thread handoff and
  // timer granularity vanish against the 8 x 600k training calls, short
  // enough for a sub-second sequential pass.
  const isa::Program program = workloads::build("bzip2", 8);
  const std::string path = std::string(::testing::TempDir()) +
                           "cfir_warm_bench_" +
                           std::to_string(reinterpret_cast<uintptr_t>(&program));
  trace::TraceMeta meta;
  meta.workload = "bzip2";
  meta.scale = 8;
  trace::record_interpreter(program, path, meta, 600'000,
                            trace::TraceFormat::kV2);
  uint64_t total = 0;
  {
    trace::TraceReader reader(path);
    total = reader.record_count();
  }
  std::vector<uint64_t> targets;
  for (uint64_t i = 1; i <= 8; ++i) targets.push_back(total * i / 8);

  const std::vector<core::CoreConfig> grid = {
      sim::presets::scal(2, 256),      sim::presets::scal(2, 512),
      sim::presets::wb(2, 256),        sim::presets::wb(2, 512),
      sim::presets::ci(2, 256),        sim::presets::ci(2, 512),
      sim::presets::ci_window(2, 512), sim::presets::vect(2, 512)};

  const double seq_us = best_us(grid, program, path, targets, /*jobs=*/1,
                                /*repeats=*/3);
  const double pipe_us = best_us(grid, program, path, targets, /*jobs=*/0,
                                 /*repeats=*/3);
  std::remove(path.c_str());
  ASSERT_GT(pipe_us, 0.0);
  const double speedup = seq_us / pipe_us;
  RecordProperty("speedup", std::to_string(speedup));
  EXPECT_GE(speedup, 2.0) << "pipelined 8-config warming only " << speedup
                          << "x the sequential reference path";
}

}  // namespace
