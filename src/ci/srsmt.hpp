// SRSMT — Scalar Register Set Map Table, paper Figure 6 and sections
// 2.3.3-2.3.4. A 4-way x 64-set PC-indexed table; each entry manages the
// ring of speculative replicas of one vectorized instruction:
//
//   PC | set of registers | Nregs | decode | commit | issue | seq1 | seq2 |
//   DAEC | address range
//
// Replica index k (absolute, monotonically increasing) corresponds to the
// k-th dynamic instance of the instruction after the entry's anchor; for
// loads its address is anchor + stride*(k+1). Every decoded instance of the
// PC consumes one index so the ring stays aligned with the instance stream;
// a validation that cannot reuse (replica not materialized yet) simply
// executes normally and retires its index at commit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "isa/isa.hpp"

namespace cfir::ci {

inline constexpr uint32_t kInvalidSrsmtSlot =
    std::numeric_limits<uint32_t>::max();

/// One speculative replica (a ring element of an entry).
struct Replica {
  enum class State : uint8_t {
    kEmpty,    ///< not materialized (no register/slot allocated)
    kWaiting,  ///< waiting for producer ring values
    kReady,    ///< operands available, eligible for issue
    kIssued,   ///< executing
    kDone,     ///< value produced
  };
  State state = State::kEmpty;
  uint64_t abs_index = 0;
  int phys_reg = -1;        ///< monolithic register file mode
  int spec_slot = -1;       ///< speculative-data-memory mode
  uint64_t value = 0;       ///< kept in the ring for consumer entries
  uint64_t addr = 0;        ///< loads
  bool consumed = false;    ///< a committed validation took the register
  uint8_t waiting_ops = 0;  ///< producers still pending (arith)
  // Operand values are latched when the replica becomes ready, so ring
  // wraparound of a producer can never corrupt an already-armed replica.
  uint64_t captured_a = 0;
  uint64_t captured_b = 0;
};

/// Operand descriptor — the paper's seq1/seq2 fields: either the PC (and
/// entry identity) of a vectorized producer or a captured scalar value.
struct SrsmtOperand {
  bool present = false;
  bool is_vector = false;
  bool is_self = false;  ///< recurrence: replica k reads own replica k-1
                         ///< (the paper's I11 "ADD R4,R4,R0" needs this —
                         ///< its seq1 is its own PC)
  uint64_t producer_pc = 0;
  uint32_t producer_slot = kInvalidSrsmtSlot;
  uint32_t producer_uid = 0;
  uint64_t index_offset = 0;  ///< producer ring index = own index + offset
  uint64_t scalar_value = 0;
};

struct SrsmtEntry {
  bool valid = false;
  uint32_t uid = 0;  ///< generation id; consumers check it before reading
  uint64_t pc = 0;
  isa::Instruction inst;
  bool is_load = false;

  // Load stream state.
  int64_t stride = 0;
  uint64_t base_addr = 0;  ///< address of the anchor instance
  bool anchored = false;   ///< anchor valid (set at the creator's commit)
  uint64_t anchor_value = 0;  ///< creator's committed result (self chains)

  // Operands (arith).
  SrsmtOperand op1, op2;

  // Counters (Figure 6). Absolute indices; ring position = index % Nregs.
  uint64_t decode_count = 0;   ///< indices handed to decoded instances
  uint64_t commit_count = 0;   ///< indices retired by committed instances
  uint64_t materialized = 0;   ///< replicas created (high-water index)
  uint32_t issue_count = 0;    ///< replicas currently executing
  uint32_t daec = 0;           ///< Dead Association Elimination Counter
  uint64_t lru = 0;
  uint64_t origin_branch_pc = 0;  ///< selecting hard branch (Figure 5 credit)
  bool mat_pending = false;    ///< materialization stalled (no registers)
  bool poisoned = false;       ///< ring desynced from the architectural
                               ///< stream; no new reuses or replicas, the
                               ///< entry is released once it drains

  std::vector<Replica> ring;              ///< Nregs elements
  std::vector<uint32_t> consumer_slots;   ///< entries whose operands read us

  [[nodiscard]] uint32_t nregs() const {
    return static_cast<uint32_t>(ring.size());
  }
  [[nodiscard]] Replica& at(uint64_t abs) { return ring[abs % ring.size()]; }
  [[nodiscard]] const Replica& at(uint64_t abs) const {
    return ring[abs % ring.size()];
  }
  /// Whether ring position for `abs` currently holds that absolute index.
  [[nodiscard]] bool holds(uint64_t abs) const {
    const Replica& r = at(abs);
    return r.state != Replica::State::kEmpty && r.abs_index == abs;
  }
  /// Predicted address of replica `abs` (loads).
  [[nodiscard]] uint64_t addr_of(uint64_t abs) const {
    return base_addr + static_cast<uint64_t>(stride) * (abs + 1);
  }
  /// Deallocation eligibility, paper 2.3.3: no in-flight validations and no
  /// replicas executing.
  [[nodiscard]] bool deallocatable() const {
    return decode_count == commit_count && issue_count == 0;
  }
};

/// The table proper.
class Srsmt {
 public:
  Srsmt(uint32_t sets, uint32_t ways, uint32_t replicas_per_entry);

  [[nodiscard]] uint32_t find(uint64_t pc) const;  ///< slot or kInvalidSrsmtSlot
  /// Allocates a slot for `pc`: free way first, then a deallocatable LRU
  /// victim (whose resources the caller must have released via the
  /// `release` callback passed here). Returns kInvalidSrsmtSlot if none.
  template <typename ReleaseFn>
  uint32_t alloc(uint64_t pc, ReleaseFn&& release) {
    const uint32_t set = set_of(pc);
    const uint32_t base = set * ways_;
    uint32_t victim = kInvalidSrsmtSlot;
    for (uint32_t w = 0; w < ways_; ++w) {
      SrsmtEntry& e = entries_[base + w];
      if (!e.valid) { victim = base + w; break; }
    }
    if (victim == kInvalidSrsmtSlot) {
      uint64_t best_lru = ~uint64_t{0};
      for (uint32_t w = 0; w < ways_; ++w) {
        SrsmtEntry& e = entries_[base + w];
        if (e.deallocatable() && e.lru < best_lru) {
          best_lru = e.lru;
          victim = base + w;
        }
      }
      if (victim == kInvalidSrsmtSlot) return kInvalidSrsmtSlot;
      release(victim);
    }
    SrsmtEntry& e = entries_[victim];
    const uint32_t ways_keep = replicas_;
    e = SrsmtEntry{};
    e.ring.assign(ways_keep, Replica{});
    e.valid = true;
    e.pc = pc;
    e.uid = ++uid_counter_;
    e.lru = ++stamp_;
    return victim;
  }

  [[nodiscard]] SrsmtEntry& entry(uint32_t slot) { return entries_[slot]; }
  [[nodiscard]] const SrsmtEntry& entry(uint32_t slot) const {
    return entries_[slot];
  }
  [[nodiscard]] uint32_t num_slots() const {
    return static_cast<uint32_t>(entries_.size());
  }
  void touch(uint32_t slot) { entries_[slot].lru = ++stamp_; }

  /// Section 3.1: 4 ways * 64 sets * 45 bytes = 11520 bytes.
  [[nodiscard]] uint64_t storage_bytes() const {
    return static_cast<uint64_t>(sets_) * ways_ * 45;
  }

 private:
  [[nodiscard]] uint32_t set_of(uint64_t pc) const {
    return static_cast<uint32_t>(pc >> 2) & (sets_ - 1);
  }

  uint32_t sets_;
  uint32_t ways_;
  uint32_t replicas_;
  uint64_t stamp_ = 0;
  uint32_t uid_counter_ = 0;
  std::vector<SrsmtEntry> entries_;
};

}  // namespace cfir::ci
