// Detailed-core throughput: the calendar-queue/intrusive-list scheduler
// (CFIR_CORE_SCHED=fast, the default) versus the heap/sort reference
// scheduler (=ref) that serves as its differential oracle — the two are
// bit-identical in simulated results (tests/test_core_sched_differential),
// so this bench measures pure host-side scheduling cost.
//
// Runs each workload kernel at scale 8 under a plain superscalar config,
// the paper's CI mechanism (whose replica engine rides the same core
// loop), and a wide-window stress point (1K-entry ROB) where
// the reference scheduler's per-cycle sort and retry-polling costs
// dominate. Repetitions alternate ref/fast so host noise hits both
// schedulers alike; each cell keeps its best wall time. Prints a table
// (million committed insts/sec per scheduler plus speedup) and, under
// CFIR_JSON=1, one machine-readable line per (workload, config, sched)
// cell with `detailed_insts_per_sec` — tests/test_detailed_bench.cpp
// guards the speedup on optimized builds.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/metrics.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace cfir;

struct Cell {
  uint64_t insts = 0;
  double best_us = 1e18;
  [[nodiscard]] double insts_per_sec() const {
    return best_us > 0.0 ? static_cast<double>(insts) * 1e6 / best_us : 0.0;
  }
};

/// One detailed run to the commit budget on a fresh Simulator; the
/// scheduler is selected via the same env knob users reach for,
/// exercising sched_mode_from_env() too.
double run_once(const core::CoreConfig& config, const isa::Program& program,
                const char* sched, uint64_t max_insts, uint64_t& insts_out) {
  setenv("CFIR_CORE_SCHED", sched, 1);
  sim::Simulator sim(config, program);
  const obs::Stopwatch clock;
  const stats::SimStats st = sim.run(max_insts);
  const double us = static_cast<double>(clock.elapsed_us());
  unsetenv("CFIR_CORE_SCHED");
  insts_out = st.committed;
  return us;
}

void emit_json(const std::string& workload, const char* config,
               const char* sched, const Cell& cell) {
  if (!bench::json_requested()) return;
  std::printf("{\"bench\":\"micro_detailed\",\"workload\":\"%s\","
              "\"config\":\"%s\",\"sched\":\"%s\",\"insts\":%llu,"
              "\"wall_us\":%.1f,\"detailed_insts_per_sec\":%.1f}\n",
              workload.c_str(), config, sched,
              static_cast<unsigned long long>(cell.insts), cell.best_us,
              cell.insts_per_sec());
}

[[nodiscard]] core::CoreConfig wide_window_config() {
  core::CoreConfig c = sim::presets::scal(1, 2048);
  c.rob_size = 1024;
  c.lsq_size = 512;
  return c;
}

}  // namespace

int main() {
  const std::vector<std::string> kernels = {"bzip2", "parser", "twolf"};
  const uint32_t scale = 8;
  const int repeats = 3;
  const uint64_t budget = 200000;  // committed insts per run

  const std::vector<std::pair<const char*, core::CoreConfig>> configs = {
      {"scal1p", sim::presets::scal(1, 256)},
      {"ci2p", sim::presets::ci(2, 256)},
      {"wide1p", wide_window_config()},
  };

  std::printf("detailed core throughput, Mi/s "
              "(scale %u, %llu commits, best of %d interleaved runs)\n",
              scale, static_cast<unsigned long long>(budget), repeats);
  std::printf("%-8s %-7s %9s | %8s %8s %8s\n", "workload", "config", "insts",
              "ref", "fast", "speedup");

  for (const std::string& name : kernels) {
    const isa::Program program = workloads::build(name, scale);
    for (const auto& [cfg_name, config] : configs) {
      Cell ref, fast;
      for (int r = 0; r < repeats; ++r) {
        ref.best_us = std::min(
            ref.best_us, run_once(config, program, "ref", budget, ref.insts));
        fast.best_us =
            std::min(fast.best_us,
                     run_once(config, program, "fast", budget, fast.insts));
      }
      std::printf("%-8s %-7s %9llu | %8.3f %8.3f %7.2fx\n", name.c_str(),
                  cfg_name, static_cast<unsigned long long>(fast.insts),
                  ref.insts_per_sec() / 1e6, fast.insts_per_sec() / 1e6,
                  ref.best_us / fast.best_us);
      emit_json(name, cfg_name, "ref", ref);
      emit_json(name, cfg_name, "fast", fast);
    }
  }
  return 0;
}
