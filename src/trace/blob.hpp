// Whole-file blob I/O with a CRC-32 integrity footer, shared by every
// binary artifact the trace subsystem writes.
//
// Footer layout (appended after the format's own payload):
//   "CRC1" | u32 crc32 of every preceding byte (util::crc32, seed 0)
//
// Readers verify the footer before any payload byte is decoded, so a
// truncated or bit-flipped file fails loudly (CorruptFileError) instead of
// decoding into garbage. The formats that existed before the footer
// (CFIRTRC1, CFIRCKP1/2) accept footer-less files for backward
// compatibility — their own structural checks still bound the damage — but
// always write the footer; the formats born with it (CFIRMAN1, CFIRSHD1)
// require it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/warmable.hpp"

namespace cfir::trace {

inline constexpr char kCrcFooterMagic[4] = {'C', 'R', 'C', '1'};
inline constexpr size_t kCrcFooterBytes = 8;  ///< magic + u32 crc

/// Writes `payload` to `path` followed by the CRC footer.
void write_blob_file(const std::string& path,
                     const std::vector<uint8_t>& payload);

/// Reads `path` and verifies the CRC footer, returning the payload without
/// it. With `require_footer`, a file lacking the footer throws
/// CorruptFileError; without, it is returned whole (legacy pre-footer
/// file). A present-but-wrong CRC always throws. `what` names the format
/// in error messages ("Checkpoint", "ShardManifest", ...).
[[nodiscard]] std::vector<uint8_t> read_blob_file(const std::string& path,
                                                  const char* what,
                                                  bool require_footer);

/// Appends the CRC footer to an existing footer-less file — for writers
/// that stream their payload and patch the header afterwards
/// (TraceWriter::finish), where the checksum can only be computed once the
/// bytes are final. Checksums in fixed-size chunks; never buffers the file.
void append_crc_footer(const std::string& path);

/// Verifies the CRC footer of `path` without returning (or buffering) the
/// payload — for readers that stream the file themselves (TraceReader).
/// Checksums in fixed-size chunks. Footer-less legacy files pass; a
/// present-but-wrong CRC throws CorruptFileError.
void verify_crc_footer(const std::string& path, const char* what);

/// The length-prefixed string encoding shared by every trace blob format
/// (u32 byte count + bytes): one definition so the manifest and shard
/// codecs cannot drift. get_string rejects lengths over 4 KiB
/// (CorruptFileError naming `what`) — these are short identifiers, and a
/// huge length means garbage bytes.
void put_string(util::ByteWriter& out, const std::string& s);
[[nodiscard]] std::string get_string(util::ByteReader& in, const char* what);

}  // namespace cfir::trace
