// Register-pressure study (paper sections 2.4.2 and 2.4.6): how replica
// speculation stretches value lifetimes, what DAEC reclaims, and how the
// speculative data memory takes the pressure off the register file.
//
//   $ ./example_register_pressure
#include <cstdio>

#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "workloads/workloads.hpp"

using namespace cfir;

namespace {
stats::SimStats run_one(const core::CoreConfig& cfg) {
  sim::Simulator s(cfg, workloads::build("bzip2", 1));
  return s.run(150000);
}
}  // namespace

int main() {
  stats::Table table({"configuration", "IPC", "avg regs", "max regs",
                      "rename stalls", "reuse%"});
  auto add = [&](const char* name, const core::CoreConfig& cfg) {
    const stats::SimStats st = run_one(cfg);
    table.add_row({name, stats::fmt(st.ipc(), 3),
                   stats::fmt(st.avg_regs_in_use(), 0),
                   std::to_string(st.regs_in_use_max),
                   std::to_string(st.rename_stall_cycles),
                   stats::fmt(100.0 * st.reuse_fraction(), 1)});
  };

  add("scal 256r", sim::presets::scal(1, 256));
  add("ci 128r (starved)", sim::presets::ci(1, 128));
  add("ci 256r", sim::presets::ci(1, 256));
  add("ci 512r", sim::presets::ci(1, 512));
  add("ci inf regs", sim::presets::ci(1, sim::presets::kInfRegs));

  core::CoreConfig nodaec = sim::presets::ci(1, sim::presets::kInfRegs);
  nodaec.daec_threshold = UINT32_MAX;  // disable DAEC reclamation
  add("ci inf, DAEC off", nodaec);

  add("ci-h 256r+768 slots", sim::presets::ci_specmem(1, 256, 768));

  std::printf("Register pressure under speculation (bzip2 kernel)\n\n%s\n",
              table.to_text().c_str());
  std::printf(
      "Observations (paper sections 2.4.2/2.4.6):\n"
      " * replicas inflate register lifetimes: 'DAEC off' holds many more\n"
      "   registers than 'ci inf regs' — DAEC reclaims dead speculation\n"
      "   after two misprediction recoveries;\n"
      " * at 128 registers the CI machine starves rename (stall count) and\n"
      "   loses performance, matching Figure 9;\n"
      " * the speculative data memory keeps replica values out of the\n"
      "   register file: 256 registers + 768 slots behaves like a much\n"
      "   larger monolithic file (Figure 13).\n");
  return 0;
}
