#include "core/config.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace cfir::core {

std::string CoreConfig::label() const {
  std::ostringstream os;
  switch (policy) {
    case Policy::kNone: os << (wide_bus ? "wb" : "scal"); break;
    case Policy::kCi: os << (use_spec_memory ? "ci-h" : "ci"); break;
    case Policy::kCiWindow: os << "ci-iw"; break;
    case Policy::kVect: os << "vect"; break;
  }
  os << cache_ports << "p/" << num_phys_regs << "r";
  if (policy == Policy::kCi || policy == Policy::kVect) {
    os << "/" << replicas << "rep";
  }
  if (use_spec_memory) os << "/" << spec_memory_slots << "slots";
  return os.str();
}

void CoreConfig::scale_window_to_regs() {
  rob_size = std::max<uint32_t>(256, num_phys_regs);
}

// The four CFIR_CORECONFIG_FIELDS kinds, as encode / decode / flatten
// operations. util::Digest and util::ByteWriter share method names, so one
// encode macro serves both digest() and serialize().
#define CFIR_CFG_ENC_u32(sink, f) (sink).u32(f);
#define CFIR_CFG_ENC_u64(sink, f) (sink).u64(f);
#define CFIR_CFG_ENC_boolean(sink, f) (sink).boolean(f);
#define CFIR_CFG_ENC_policy(sink, f) (sink).u8(static_cast<uint8_t>(f));

#define CFIR_CFG_DEC_u32(in, f) f = (in).u32();
#define CFIR_CFG_DEC_u64(in, f) f = (in).u64();
#define CFIR_CFG_DEC_boolean(in, f) f = (in).boolean();
#define CFIR_CFG_DEC_policy(in, f) f = static_cast<Policy>((in).u8());

#define CFIR_CFG_VAL_u32(f) static_cast<uint64_t>(f)
#define CFIR_CFG_VAL_u64(f) static_cast<uint64_t>(f)
#define CFIR_CFG_VAL_boolean(f) static_cast<uint64_t>((f) ? 1 : 0)
#define CFIR_CFG_VAL_policy(f) static_cast<uint64_t>(f)

uint64_t CoreConfig::digest() const {
  util::Digest d;
#define X(kind, field) CFIR_CFG_ENC_##kind(d, field)
  CFIR_CORECONFIG_FIELDS(X)
#undef X
  return d.value();
}

void CoreConfig::serialize(util::ByteWriter& out) const {
#define X(kind, field) CFIR_CFG_ENC_##kind(out, field)
  CFIR_CORECONFIG_FIELDS(X)
#undef X
}

CoreConfig CoreConfig::deserialize(util::ByteReader& in) {
  CoreConfig cfg;
#define X(kind, field) CFIR_CFG_DEC_##kind(in, cfg.field)
  CFIR_CORECONFIG_FIELDS(X)
#undef X
  return cfg;
}

uint64_t CoreConfig::warm_digest() const {
  // Exactly the fields FunctionalWarmer state depends on: the policy byte
  // stamped into the blob, predictor geometry, and cache geometry (tags and
  // LRU depend on size/assoc/line_bytes; hit latencies are timing-only and
  // never reach warm state). Fields listed in component order of
  // FunctionalWarmer::serialize_state so a new warm-relevant knob has an
  // obvious place to land.
  util::Digest d;
  d.u8(static_cast<uint8_t>(policy));
  d.u32(gshare_entries);
  d.u32(gshare_history_bits);
  d.u32(mbs_sets);
  d.u32(mbs_ways);
  d.u32(stride_sets);
  d.u32(stride_ways);
  const mem::CacheConfig* levels[] = {&memory.l1i, &memory.l1d, &memory.l2,
                                      &memory.l3};
  for (const mem::CacheConfig* c : levels) {
    d.u32(c->size_bytes);
    d.u32(c->assoc);
    d.u32(c->line_bytes);
  }
  return d.value();
}

std::vector<CoreConfig::NamedValue> CoreConfig::fields() const {
  std::vector<NamedValue> out;
#define X(kind, field) out.push_back({#field, CFIR_CFG_VAL_##kind(field)});
  CFIR_CORECONFIG_FIELDS(X)
#undef X
  return out;
}

}  // namespace cfir::core
