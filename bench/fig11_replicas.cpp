// Figure 11: IPC depending on the number of replicas per vectorized
// instruction (1/2/4/8) across the register sweep. Paper: 2 or 4 replicas
// are the sweet spot; 8 only pays with very many registers.
#include "common.hpp"

int main() {
  using namespace cfir;
  using namespace cfir::bench;
  run_register_sweep(
      "Figure 11: IPC vs replicas per vectorized instruction (ci1p)",
      [](uint32_t regs) -> std::vector<NamedConfig> {
        std::vector<NamedConfig> configs = {
            {"sc", sim::presets::scal(1, regs)},
            {"wb", sim::presets::wb(1, regs)},
        };
        for (const uint32_t reps : {1u, 2u, 4u, 8u}) {
          configs.push_back({std::to_string(reps) + "rep",
                             sim::presets::ci(1, regs, reps)});
        }
        return configs;
      });
  return 0;
}
