#include "sim/presets.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace cfir::sim::presets {

std::vector<uint32_t> register_sweep() {
  return {128, 256, 512, 768, kInfRegs};
}

std::string reg_label(uint32_t regs) {
  return regs >= kInfRegs ? "inf" : std::to_string(regs);
}

core::CoreConfig table1() {
  core::CoreConfig cfg;  // struct defaults are Table 1
  return cfg;
}

namespace {
core::CoreConfig base(uint32_t ports, uint32_t regs) {
  core::CoreConfig cfg = table1();
  cfg.cache_ports = ports;
  cfg.num_phys_regs = regs;
  cfg.scale_window_to_regs();
  return cfg;
}
}  // namespace

core::CoreConfig scal(uint32_t ports, uint32_t regs) {
  core::CoreConfig cfg = base(ports, regs);
  cfg.policy = core::Policy::kNone;
  cfg.wide_bus = false;
  return cfg;
}

core::CoreConfig wb(uint32_t ports, uint32_t regs) {
  core::CoreConfig cfg = base(ports, regs);
  cfg.policy = core::Policy::kNone;
  cfg.wide_bus = true;
  return cfg;
}

core::CoreConfig ci(uint32_t ports, uint32_t regs, uint32_t replicas) {
  core::CoreConfig cfg = base(ports, regs);
  cfg.policy = core::Policy::kCi;
  cfg.wide_bus = true;
  cfg.replicas = replicas;
  return cfg;
}

core::CoreConfig ci_specmem(uint32_t ports, uint32_t regs, uint32_t slots,
                            uint32_t replicas) {
  core::CoreConfig cfg = ci(ports, regs, replicas);
  cfg.use_spec_memory = true;
  cfg.spec_memory_slots = slots;
  return cfg;
}

core::CoreConfig ci_window(uint32_t ports, uint32_t regs) {
  core::CoreConfig cfg = base(ports, regs);
  cfg.policy = core::Policy::kCiWindow;
  cfg.wide_bus = true;
  return cfg;
}

core::CoreConfig vect(uint32_t ports, uint32_t regs, uint32_t replicas) {
  core::CoreConfig cfg = base(ports, regs);
  cfg.policy = core::Policy::kVect;
  cfg.wide_bus = true;
  cfg.replicas = replicas;
  return cfg;
}

core::CoreConfig from_spec(std::string_view spec) {
  const auto fail = [&](const std::string& why) -> core::CoreConfig {
    throw std::runtime_error("config spec '" + std::string(spec) + "': " +
                             why + " (expected <family>:<ports>:<regs>"
                             "[:<extra>...], e.g. ci:2:512)");
  };
  std::vector<std::string> parts;
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t colon = spec.find(':', pos);
    const size_t end = colon == std::string_view::npos ? spec.size() : colon;
    parts.emplace_back(spec.substr(pos, end - pos));
    if (colon == std::string_view::npos) break;
    pos = colon + 1;
  }
  if (parts.size() < 3) return fail("too few fields");
  const std::string family = parts[0];

  std::vector<uint32_t> nums;
  for (size_t i = 1; i < parts.size(); ++i) {
    size_t used = 0;
    unsigned long v = 0;
    try {
      v = std::stoul(parts[i], &used);
    } catch (const std::logic_error&) {
      return fail("'" + parts[i] + "' is not a number");
    }
    if (used != parts[i].size() || v == 0 || v > UINT32_MAX) {
      return fail("'" + parts[i] + "' is not a positive 32-bit number");
    }
    nums.push_back(static_cast<uint32_t>(v));
  }
  const uint32_t ports = nums[0];
  const uint32_t regs = nums[1];
  const auto arity = [&](size_t lo, size_t hi) {
    if (nums.size() < lo || nums.size() > hi) {
      fail("wrong number of fields for family '" + family + "'");
    }
  };
  if (family == "scal") {
    arity(2, 2);
    return scal(ports, regs);
  }
  if (family == "wb") {
    arity(2, 2);
    return wb(ports, regs);
  }
  if (family == "ci") {
    arity(2, 3);
    return nums.size() > 2 ? ci(ports, regs, nums[2]) : ci(ports, regs);
  }
  if (family == "ci-iw") {
    arity(2, 2);
    return ci_window(ports, regs);
  }
  if (family == "vect") {
    arity(2, 3);
    return nums.size() > 2 ? vect(ports, regs, nums[2]) : vect(ports, regs);
  }
  if (family == "ci-h") {
    arity(3, 4);
    return nums.size() > 3 ? ci_specmem(ports, regs, nums[2], nums[3])
                           : ci_specmem(ports, regs, nums[2]);
  }
  return fail("unknown family '" + family + "'");
}

}  // namespace cfir::sim::presets
