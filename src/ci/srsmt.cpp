#include "ci/srsmt.hpp"

#include <cassert>

namespace cfir::ci {

Srsmt::Srsmt(uint32_t sets, uint32_t ways, uint32_t replicas_per_entry)
    : sets_(sets), ways_(ways), replicas_(replicas_per_entry) {
  assert(sets_ > 0 && (sets_ & (sets_ - 1)) == 0);
  assert(replicas_ > 0);
  entries_.assign(static_cast<size_t>(sets_) * ways_, SrsmtEntry{});
}

uint32_t Srsmt::find(uint64_t pc) const {
  const uint32_t base = set_of(pc) * ways_;
  for (uint32_t w = 0; w < ways_; ++w) {
    const SrsmtEntry& e = entries_[base + w];
    if (e.valid && e.pc == pc) return base + w;
  }
  return kInvalidSrsmtSlot;
}

}  // namespace cfir::ci
