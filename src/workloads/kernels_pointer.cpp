// Pointer/structure kernels: mcf (linked-list chasing, the "CI found but
// not strided" case), parser (call/ret token handling) and vortex
// (store-heavy object updates).
#include <numeric>
#include <random>

#include "isa/assembler.hpp"
#include "workloads/workloads.hpp"

namespace cfir::workloads {

using isa::Assembler;
using isa::Program;

// ---------------------------------------------------------------------------
// mcf — network-simplex flavour: traverse a shuffled singly-linked list of
// arc nodes {next, cost}; a hard hammock on the cost sign updates either
// the surplus or deficit accumulator; the post-hammock bookkeeping is
// control independent but hangs off a *pointer-chased* (non-strided) load,
// so the CI scheme selects instructions yet cannot vectorize them — this
// is the gray band of Figure 5.
// ---------------------------------------------------------------------------
Program build_mcf(uint32_t scale) {
  Assembler as;
  std::mt19937_64 gen(0x3CFULL);
  const size_t nodes = 1024;
  const uint64_t heap = as.reserve("heap", nodes * 16);
  // Random traversal permutation (single cycle through all nodes).
  std::vector<uint32_t> perm(nodes);
  std::iota(perm.begin(), perm.end(), 0);
  for (size_t i = nodes - 1; i > 0; --i) {
    std::uniform_int_distribution<size_t> d(0, i);
    std::swap(perm[i], perm[d(gen)]);
  }
  std::uniform_int_distribution<int64_t> cost(-1000, 1000);
  for (size_t i = 0; i < nodes; ++i) {
    const size_t cur = perm[i];
    const size_t nxt = perm[(i + 1) % nodes];
    as.init_word(heap + cur * 16, heap + nxt * 16);  // next pointer
    as.init_word(heap + cur * 16 + 8,
                 static_cast<uint64_t>(cost(gen)));  // cost
  }

  const int rPtr = 1, rCost = 2, rPos = 3, rNeg = 4, rCnt = 5;
  const int rLimit = 7, rZero = 8, rSum = 9;
  as.movi(rPtr, static_cast<int64_t>(heap + perm[0] * 16));
  as.movi(rPos, 0);
  as.movi(rNeg, 0);
  as.movi(rCnt, 0);
  as.movi(rSum, 0);
  as.movi(rZero, 0);
  as.movi(rLimit, static_cast<int64_t>(6 * nodes * scale));
  as.label("loop");
  as.ld(rCost, rPtr, 8, 8);            // pointer-chased, NOT strided
  as.blt(rCost, rZero, "deficit");     // hard hammock on random sign
  as.add(rPos, rPos, rCost);
  as.jmp("join");
  as.label("deficit");
  as.sub(rNeg, rNeg, rCost);
  as.label("join");                    // re-convergent point
  as.add(rSum, rSum, rCost);           // CI but fed by a non-strided load
  as.addi(rCnt, rCnt, 1);
  as.ld(rPtr, rPtr, 0, 8);             // chase
  as.blt(rCnt, rLimit, "loop");
  as.halt();
  return as.assemble();
}

// ---------------------------------------------------------------------------
// parser — token stream processed through a helper "function": CALL/RET per
// token exercises the return-address stack; inside the callee a hammock
// classifies the token and a small loop skips its payload.
// ---------------------------------------------------------------------------
Program build_parser(uint32_t scale) {
  Assembler as;
  std::mt19937_64 gen(0x9A25E2ULL);
  const size_t n = 1024;
  const uint64_t toks = as.reserve("toks", n);
  std::uniform_int_distribution<int> tok(0, 7);
  std::vector<uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<uint8_t>(tok(gen));
  as.init_bytes(toks, bytes);

  const int rIdx = 1, rTok = 2, rWords = 3, rPunct = 4, rT = 5, rBase = 6;
  const int rEnd = 7, rFour = 8, rAcc = 9, rK = 10, rOuter = 11, rZ = 12;
  as.movi(rBase, static_cast<int64_t>(toks));
  as.movi(rOuter, static_cast<int64_t>(4 * scale));
  as.jmp("main");

  // int classify(tok): hammock + payload loop; result in rAcc.
  as.label("classify");
  as.movi(rFour, 4);
  as.blt(rTok, rFour, "is_word");      // hard: tokens uniform 0..7
  as.addi(rPunct, rPunct, 1);
  as.mov(rK, rTok);
  as.jmp("payload");
  as.label("is_word");
  as.addi(rWords, rWords, 1);
  as.addi(rK, rTok, 2);
  as.label("payload");                 // re-convergent point
  as.add(rAcc, rAcc, rTok);            // CI: token value from strided load
  as.label("skip");
  as.addi(rK, rK, -1);
  as.movi(rT, 0);
  as.bne(rK, rT, "skip");              // short data-dependent loop
  as.ret();

  as.label("main");
  as.movi(rIdx, 0);
  as.movi(rWords, 0);
  as.movi(rPunct, 0);
  as.movi(rAcc, 0);
  as.movi(rEnd, static_cast<int64_t>(n));
  as.label("loop");
  as.add(rT, rBase, rIdx);
  as.ld(rTok, rT, 0, 1);               // strided token load
  as.call("classify");
  as.addi(rIdx, rIdx, 1);
  as.blt(rIdx, rEnd, "loop");
  as.addi(rOuter, rOuter, -1);
  as.movi(rZ, 0);
  as.bne(rOuter, rZ, "main");
  as.halt();
  return as.assemble();
}

// ---------------------------------------------------------------------------
// vortex — object-store update: copy/update records between two regions
// with mostly-predictable control; stores dominate, which exercises the
// store-commit path and the memory-coherence range checks against
// vectorized loads.
// ---------------------------------------------------------------------------
Program build_vortex(uint32_t scale) {
  Assembler as;
  std::mt19937_64 gen(0x40F3ULL);
  const size_t recs = 512;
  const uint64_t src = as.reserve("src", recs * 24);
  const uint64_t dst = as.reserve("dst", recs * 24);
  for (size_t i = 0; i < recs; ++i) {
    as.init_word(src + i * 24, gen() % 1000);
    as.init_word(src + i * 24 + 8, gen() % 1000);
    as.init_word(src + i * 24 + 16, i);
  }

  const int rIdx = 1, rS = 2, rD = 3, rA = 4, rB = 5, rC = 6, rT = 7;
  const int rEnd = 8, rSum = 9, rOuter = 10, rZ = 11, rTh = 12;
  as.movi(rOuter, static_cast<int64_t>(6 * scale));
  as.label("outer");
  as.movi(rIdx, 0);
  as.movi(rSum, 0);
  as.movi(rEnd, static_cast<int64_t>(recs));
  as.movi(rTh, 500);
  as.label("loop");
  as.muli(rT, rIdx, 24);
  as.movi(rS, static_cast<int64_t>(src));
  as.add(rS, rS, rT);
  as.movi(rD, static_cast<int64_t>(dst));
  as.add(rD, rD, rT);
  as.ld(rA, rS, 0, 8);                 // strided record loads
  as.ld(rB, rS, 8, 8);
  as.ld(rC, rS, 16, 8);
  as.add(rT, rA, rB);
  as.st(rT, rD, 0, 8);                 // store-heavy update
  as.st(rC, rD, 8, 8);
  as.blt(rA, rTh, "small");            // semi-random hammock
  as.addi(rT, rT, 7);
  as.jmp("stored");
  as.label("small");
  as.addi(rT, rT, 3);
  as.label("stored");                  // re-convergent point
  as.add(rSum, rSum, rA);              // CI accumulation
  as.st(rT, rD, 16, 8);
  as.addi(rIdx, rIdx, 1);
  as.blt(rIdx, rEnd, "loop");
  as.addi(rOuter, rOuter, -1);
  as.movi(rZ, 0);
  as.bne(rOuter, rZ, "outer");
  as.halt();
  return as.assemble();
}

}  // namespace cfir::workloads
