// Bit-identity wall for the pipelined block-parallel warming path
// (docs/sampling.md "Pipelined warming"): capture_warm_states_grid must
// produce byte-identical warm blobs under every (source x jobs) setting —
// the engine pass, a CFIRTRC1 trace and a CFIRTRC2 trace, each at
// jobs = 1 (the sequential reference path), an explicit cap of 2, and
// 0 (auto) — because each warmer always sees the identical record stream
// in order on a single thread. Also locked here:
//
//  - a 4-record tiny-block CFIRTRC2 stress (every batch spans many block
//    boundaries; targets at 0, duplicated, mid-block and at end-of-trace);
//  - run_shard grids byte-equal across warm_jobs settings after scrubbing
//    the (intentionally nondeterministic) wall-clock telemetry;
//  - truncated traces name the offending warm target and interval, both
//    in FunctionalWarmer::advance_on_trace and in the grid capture;
//  - the CFIR_WARM_JOBS knob switches paths observably (warming.batches);
//  - WarmingPipelineS8: the same matrix on bzip2 s8 (excluded from the
//    sanitizer CI job alongside TraceV2S8 — same exclusion pattern).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "obs/metrics.hpp"
#include "sim/presets.hpp"
#include "trace/sampling.hpp"
#include "trace/shard.hpp"
#include "trace/trace.hpp"
#include "trace/warming.hpp"
#include "workloads/workloads.hpp"

namespace cfir::trace {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(std::string(::testing::TempDir()) + "cfir_warmpipe_" + tag +
              "_" + std::to_string(reinterpret_cast<uintptr_t>(this))) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

using Blobs = std::vector<std::vector<std::vector<uint8_t>>>;

Blobs capture_from(const std::string& trace_path,
                   const std::vector<core::CoreConfig>& configs,
                   const isa::Program& program,
                   const std::vector<uint64_t>& targets, int jobs) {
  TraceReader reader(trace_path);
  return capture_warm_states_grid(configs, program, reader, targets, jobs);
}

/// Wall-clock telemetry is host-dependent by design; zero it so shard
/// results can be compared byte for byte (the trace_tool --scrub-wall
/// contract).
ShardResult scrub_wall(ShardResult r) {
  r.warm_wall_us = 0;
  for (auto& iv : r.intervals) iv.wall_us.clear();
  return r;
}

TEST(WarmingPipeline, BlobsBitIdenticalAcrossSourcesAndJobs) {
  const isa::Program program = cfir::testing::figure1_program(512);
  TempFile v1("v1"), v2("v2");
  TraceMeta meta;
  meta.workload = "figure1";
  const isa::InterpResult r1 =
      record_interpreter(program, v1.path(), meta, UINT64_MAX,
                         TraceFormat::kV1);
  const isa::InterpResult r2 =
      record_interpreter(program, v2.path(), meta, UINT64_MAX,
                         TraceFormat::kV2);
  ASSERT_EQ(r1.executed, r2.executed);
  const uint64_t total = r1.executed;

  const std::vector<core::CoreConfig> configs = {
      sim::presets::scal(2, 256), sim::presets::ci(2, 512),
      sim::presets::wb(2, 256)};
  // Targets at 0 (cold snapshot before any record), back to back
  // duplicates, mid-stream and exactly at end-of-trace.
  const std::vector<uint64_t> targets = {0,         1,         total / 3,
                                         total / 3, total / 2, total - 1,
                                         total};

  const Blobs oracle =
      capture_warm_states_grid(configs, program, targets, /*jobs=*/1);
  ASSERT_EQ(oracle.size(), configs.size());
  for (const auto& per_config : oracle) {
    ASSERT_EQ(per_config.size(), targets.size());
  }
  // Cold and warm snapshots must actually differ, or the whole matrix
  // below would pass vacuously on empty blobs.
  EXPECT_NE(oracle[0][0], oracle[0][4]);
  EXPECT_EQ(oracle[0][2], oracle[0][3]);  // duplicate target, same state

  for (const int jobs : {1, 2, 0}) {
    EXPECT_EQ(oracle, capture_warm_states_grid(configs, program, targets,
                                               jobs))
        << "engine jobs=" << jobs;
    EXPECT_EQ(oracle, capture_from(v1.path(), configs, program, targets,
                                   jobs))
        << "v1 jobs=" << jobs;
    EXPECT_EQ(oracle, capture_from(v2.path(), configs, program, targets,
                                   jobs))
        << "v2 jobs=" << jobs;
  }
}

TEST(WarmingPipeline, EngineHaltBeforeLastTargetMatchesSequential) {
  // The engine source snapshots targets past HALT at the final state
  // instead of throwing (a plan may legitimately overshoot); sequential
  // and pipelined must agree on that tail behavior too.
  const isa::Program program = cfir::testing::figure1_program(128);
  const std::vector<core::CoreConfig> configs = {sim::presets::ci(2, 256)};
  const std::vector<uint64_t> targets = {100, 1u << 20, 1u << 21};
  const Blobs oracle =
      capture_warm_states_grid(configs, program, targets, /*jobs=*/1);
  EXPECT_EQ(oracle[0][1], oracle[0][2]);  // both clamp to the halt state
  for (const int jobs : {2, 0}) {
    EXPECT_EQ(oracle,
              capture_warm_states_grid(configs, program, targets, jobs))
        << "jobs=" << jobs;
  }
}

TEST(WarmingPipeline, TinyBlockStress) {
  // 4-record CFIRTRC2 blocks: every wave spans dozens of block
  // boundaries, and batch boundaries land mid-target-run. The decoded
  // stream (and therefore every blob) must still match the engine oracle.
  const isa::Program program = cfir::testing::figure1_program(64);
  TempFile tiny("tiny");
  TraceMeta meta;
  meta.workload = "figure1";
  const isa::InterpResult r = record_interpreter(
      program, tiny.path(), meta, UINT64_MAX, TraceFormat::kV2,
      /*block_len=*/4);
  const uint64_t total = r.executed;
  ASSERT_GT(total, uint64_t{16});
  {
    TraceReader reader(tiny.path());
    EXPECT_EQ(reader.block_len(), 4u);
    EXPECT_GE(reader.block_count(), total / 4);
  }

  const std::vector<core::CoreConfig> configs = {sim::presets::ci(2, 256),
                                                 sim::presets::scal(2, 256)};
  const std::vector<uint64_t> targets = {0, 3, 4, 5, 9, 9, total};
  const Blobs oracle =
      capture_warm_states_grid(configs, program, targets, /*jobs=*/1);
  for (const int jobs : {1, 2, 0}) {
    EXPECT_EQ(oracle, capture_from(tiny.path(), configs, program, targets,
                                   jobs))
        << "jobs=" << jobs;
  }
}

TEST(WarmingPipeline, TruncatedTraceErrorNamesTargetAndInterval) {
  const isa::Program program = cfir::testing::figure1_program(512);
  TempFile cut("cut");
  TraceMeta meta;
  meta.workload = "figure1";
  record_interpreter(program, cut.path(), meta, /*max_insts=*/100,
                     TraceFormat::kV2);
  const std::vector<core::CoreConfig> configs = {sim::presets::ci(2, 256)};
  const std::vector<uint64_t> targets = {50, 150};
  for (const int jobs : {1, 2}) {
    try {
      (void)capture_from(cut.path(), configs, program, targets, jobs);
      FAIL() << "truncated trace accepted (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("trace ends at 100 records"), std::string::npos)
          << msg;
      EXPECT_NE(msg.find("warm target 150"), std::string::npos) << msg;
      EXPECT_NE(msg.find("(interval 1 of 2)"), std::string::npos) << msg;
    }
  }
}

TEST(WarmingPipeline, AdvanceOnTraceErrorCarriesContext) {
  const isa::Program program = cfir::testing::figure1_program(512);
  TempFile cut("adv");
  TraceMeta meta;
  meta.workload = "figure1";
  record_interpreter(program, cut.path(), meta, /*max_insts=*/100,
                     TraceFormat::kV2);
  FunctionalWarmer warmer(sim::presets::ci(2, 256), program);
  TraceReader reader(cut.path());
  try {
    warmer.advance_on_trace(reader, 150, "interval 3 of 8");
    FAIL() << "truncated trace accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("trace ends at 100 records"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("warm target 150"), std::string::npos) << msg;
    EXPECT_NE(msg.find("(interval 3 of 8)"), std::string::npos) << msg;
  }
}

TEST(WarmingPipeline, WarmJobsKnobSwitchesPathObservably) {
  const isa::Program program = cfir::testing::figure1_program(256);
  TempFile file("knob");
  TraceMeta meta;
  meta.workload = "figure1";
  const isa::InterpResult r = record_interpreter(
      program, file.path(), meta, UINT64_MAX, TraceFormat::kV2);
  const std::vector<core::CoreConfig> configs = {sim::presets::ci(2, 256)};
  const std::vector<uint64_t> targets = {r.executed / 2, r.executed};
  obs::Counter& batches =
      obs::Registry::instance().counter("warming.batches");

  // Explicit jobs argument: the sequential path never touches the batch
  // counter, the pipelined path counts every fed batch.
  uint64_t before = batches.value();
  (void)capture_from(file.path(), configs, program, targets, /*jobs=*/1);
  EXPECT_EQ(batches.value(), before);
  before = batches.value();
  (void)capture_from(file.path(), configs, program, targets, /*jobs=*/2);
  EXPECT_GT(batches.value(), before);

  // jobs = -1 defers to CFIR_WARM_JOBS.
  ASSERT_EQ(setenv("CFIR_WARM_JOBS", "2", 1), 0);
  before = batches.value();
  (void)capture_from(file.path(), configs, program, targets, /*jobs=*/-1);
  EXPECT_GT(batches.value(), before);
  ASSERT_EQ(setenv("CFIR_WARM_JOBS", "1", 1), 0);
  before = batches.value();
  (void)capture_from(file.path(), configs, program, targets, /*jobs=*/-1);
  EXPECT_EQ(batches.value(), before);
  ASSERT_EQ(unsetenv("CFIR_WARM_JOBS"), 0);
}

TEST(WarmingPipeline, RunShardGridBitIdenticalAcrossWarmJobs) {
  const isa::Program program = cfir::testing::figure1_program(512);
  TempFile file("shard");
  TraceMeta meta;
  meta.workload = "figure1";
  record_interpreter(program, file.path(), meta, UINT64_MAX,
                     TraceFormat::kV2);

  const IntervalPlan plan =
      plan_intervals(program, 4, 0, 0, WarmMode::kFunctional, 500);
  std::vector<ConfigBinding> bindings(2);
  bindings[0].config = sim::presets::ci(2, 256);
  bindings[1].config = sim::presets::scal(2, 256);
  for (auto& b : bindings) {
    b.name = b.config.label();
    b.config_hash = b.config.digest();
  }

  // Engine-warmed and trace-warmed shards, warm_jobs 1 vs 8: byte-equal
  // CFIRSHD2 payloads once the wall telemetry is scrubbed.
  const auto seq_eng = scrub_wall(
      run_shard(bindings, program, plan, {0, 1}, 2, 0, {}, /*warm_jobs=*/1));
  const auto pipe_eng = scrub_wall(
      run_shard(bindings, program, plan, {0, 1}, 2, 0, {}, /*warm_jobs=*/8));
  EXPECT_EQ(seq_eng.serialize(), pipe_eng.serialize());

  const auto seq_trc = scrub_wall(run_shard(bindings, program, plan, {0, 1},
                                            2, 0, file.path(),
                                            /*warm_jobs=*/1));
  const auto pipe_trc = scrub_wall(run_shard(bindings, program, plan, {0, 1},
                                             2, 0, file.path(),
                                             /*warm_jobs=*/8));
  EXPECT_EQ(seq_trc.serialize(), pipe_trc.serialize());
  EXPECT_EQ(seq_eng.serialize(), seq_trc.serialize());
}

// ---------------------------------------------------------------------------
// WarmingPipelineS8: the matrix at paper scale. Excluded from the
// sanitizer CI job (with SamplingAccuracy / TraceV2S8 — instrumented
// builds make million-record streams too slow), still exact everywhere.
// ---------------------------------------------------------------------------

TEST(WarmingPipelineS8, GridMatrixOnBzip2) {
  const isa::Program program = workloads::build("bzip2", 8);
  TempFile file("s8");
  TraceMeta meta;
  meta.workload = "bzip2";
  meta.scale = 8;
  record_interpreter(program, file.path(), meta, /*max_insts=*/200'000,
                     TraceFormat::kV2);
  uint64_t total = 0;
  {
    TraceReader reader(file.path());
    total = reader.record_count();
  }
  ASSERT_GT(total, uint64_t{50'000});  // capped at 200k or ran to halt

  const std::vector<core::CoreConfig> configs = {
      sim::presets::scal(2, 256), sim::presets::wb(2, 512),
      sim::presets::ci(2, 512), sim::presets::vect(2, 512)};
  std::vector<uint64_t> targets;
  for (uint64_t i = 1; i <= 5; ++i) targets.push_back(total * i / 5);

  const Blobs oracle =
      capture_from(file.path(), configs, program, targets, /*jobs=*/1);
  for (const int jobs : {2, 0}) {
    EXPECT_EQ(oracle, capture_from(file.path(), configs, program, targets,
                                   jobs))
        << "jobs=" << jobs;
  }

  // Sharded grid over the recorded trace, merged: warm_jobs must never
  // leak into the merged stats either.
  const IntervalPlan plan =
      plan_intervals(program, 3, total, 0, WarmMode::kFunctional, 2000);
  std::vector<ConfigBinding> bindings(2);
  bindings[0].config = configs[2];
  bindings[1].config = configs[0];
  for (auto& b : bindings) {
    b.name = b.config.label();
    b.config_hash = b.config.digest();
  }
  for (const uint32_t shard : {0u, 1u}) {
    const auto seq = scrub_wall(run_shard(bindings, program, plan,
                                          {shard, 2}, 2, 0, file.path(),
                                          /*warm_jobs=*/1));
    const auto pipe = scrub_wall(run_shard(bindings, program, plan,
                                           {shard, 2}, 2, 0, file.path(),
                                           /*warm_jobs=*/8));
    EXPECT_EQ(seq.serialize(), pipe.serialize()) << "shard " << shard;
  }
}

}  // namespace
}  // namespace cfir::trace
