// google-benchmark microbenchmarks of the substrate components, used to
// size the experiment scales and catch performance regressions in the
// simulator itself.
#include <benchmark/benchmark.h>

#include <random>

#include "branch/gshare.hpp"
#include "ci/stride_predictor.hpp"
#include "isa/interpreter.hpp"
#include "mem/cache.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace cfir;

void BM_CacheAccess(benchmark::State& state) {
  mem::Cache cache(mem::CacheConfig{"L1D", 64 * 1024, 2, 32, 1});
  std::mt19937_64 gen(1);
  uint64_t now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(gen() % (1 << 20), false, ++now, 6));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void BM_GsharePredictTrain(benchmark::State& state) {
  branch::Gshare g;
  std::mt19937_64 gen(2);
  for (auto _ : state) {
    const uint64_t pc = 0x1000 + (gen() % 512) * 4;
    const bool pred = g.predict(pc);
    const uint64_t snap = g.speculate(pred);
    g.train(pc, snap, gen() & 1);
    g.recover(snap, gen() & 1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_GsharePredictTrain);

void BM_StridePredictorTrain(benchmark::State& state) {
  ci::StridePredictor sp;
  uint64_t addr = 0x100000;
  for (auto _ : state) {
    sp.train(0x1020, addr += 8);
    benchmark::DoNotOptimize(sp.lookup(0x1020));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StridePredictorTrain);

void BM_Interpreter(benchmark::State& state) {
  const isa::Program p = workloads::build("bzip2", 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::run_program(p, 20000));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 20000);
}
BENCHMARK(BM_Interpreter);

void BM_CoreBaseline(benchmark::State& state) {
  const isa::Program p = workloads::build("bzip2", 1);
  for (auto _ : state) {
    sim::Simulator s(sim::presets::scal(1, 256), p);
    benchmark::DoNotOptimize(s.run(20000));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 20000);
}
BENCHMARK(BM_CoreBaseline);

void BM_CoreWithCi(benchmark::State& state) {
  const isa::Program p = workloads::build("bzip2", 1);
  for (auto _ : state) {
    sim::Simulator s(sim::presets::ci(2, 512), p);
    benchmark::DoNotOptimize(s.run(20000));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 20000);
}
BENCHMARK(BM_CoreWithCi);

}  // namespace

BENCHMARK_MAIN();
