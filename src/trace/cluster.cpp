#include "trace/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace cfir::trace {

namespace {

uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Tiny deterministic PRNG (LCG advanced, splitmix-finalized output).
struct Rng {
  uint64_t state;
  uint64_t next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return splitmix64(state);
  }
  double next_double() {  // uniform in [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
};

double dist2(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

std::vector<std::vector<double>> centroids_of(
    const std::vector<std::vector<double>>& points,
    const std::vector<uint32_t>& assignment, uint32_t k) {
  const size_t dims = points.empty() ? 0 : points[0].size();
  std::vector<std::vector<double>> centroids(k,
                                             std::vector<double>(dims, 0.0));
  std::vector<uint64_t> counts(k, 0);
  for (size_t i = 0; i < points.size(); ++i) {
    const uint32_t c = assignment[i];
    ++counts[c];
    for (size_t j = 0; j < dims; ++j) centroids[c][j] += points[i][j];
  }
  for (uint32_t c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;
    for (double& v : centroids[c]) v /= static_cast<double>(counts[c]);
  }
  return centroids;
}

/// X-means BIC (Pelleg & Moore): log-likelihood of a spherical-Gaussian
/// mixture fit minus the parameter-count penalty. Higher is better.
double bic_score(const std::vector<std::vector<double>>& points,
                 const std::vector<uint32_t>& assignment, uint32_t k) {
  const double n = static_cast<double>(points.size());
  const double d = points.empty() ? 1.0 : static_cast<double>(points[0].size());
  const auto centroids = centroids_of(points, assignment, k);

  std::vector<uint64_t> sizes(k, 0);
  double sq_sum = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    ++sizes[assignment[i]];
    sq_sum += dist2(points[i], centroids[assignment[i]]);
  }
  const double denom = d * std::max(1.0, n - static_cast<double>(k));
  // The variance floor doubles as a noise gate: points are projected
  // frequency vectors (coordinates O(1)), so sub-1e-3 per-dimension
  // differences are execution jitter, not phase structure. Without the
  // floor the likelihood of near-identical intervals diverges as k grows
  // and BIC degenerates to k = max_k.
  const double variance = std::max(sq_sum / denom, 1e-6);

  double loglik = 0.0;
  for (uint32_t c = 0; c < k; ++c) {
    if (sizes[c] == 0) continue;
    const double r = static_cast<double>(sizes[c]);
    loglik += r * std::log(r) - r * std::log(n) -
              r * d / 2.0 * std::log(2.0 * M_PI * variance) -
              d * (r - 1.0) / 2.0;
  }
  const double params = static_cast<double>(k) * (d + 1.0);
  return loglik - params / 2.0 * std::log(n);
}

}  // namespace

std::vector<std::vector<double>> project_bbvs(const BbvSet& bbvs,
                                              uint32_t dims, uint64_t seed) {
  if (dims == 0) throw std::runtime_error("project_bbvs: dims must be > 0");
  const double scale = 1.0 / std::sqrt(static_cast<double>(dims));
  // Projection row per block, hashed from its leader PC so the matrix
  // does not depend on block discovery order; computed once, shared by
  // every interval.
  std::vector<std::vector<double>> rows(bbvs.leaders.size(),
                                        std::vector<double>(dims));
  for (size_t b = 0; b < bbvs.leaders.size(); ++b) {
    for (uint32_t j = 0; j < dims; ++j) {
      const uint64_t h = splitmix64(seed ^ splitmix64(bbvs.leaders[b]) ^
                                    (uint64_t{j} * 0xA24BAED4963EE407ull));
      rows[b][j] = (h & 1) != 0 ? scale : -scale;
    }
  }
  std::vector<std::vector<double>> points;
  points.reserve(bbvs.vectors.size());
  for (const std::vector<uint32_t>& vec : bbvs.vectors) {
    uint64_t total = 0;
    for (const uint32_t c : vec) total += c;
    std::vector<double> point(dims, 0.0);
    if (total > 0) {
      for (size_t b = 0; b < vec.size(); ++b) {
        if (vec[b] == 0) continue;
        const double freq =
            static_cast<double>(vec[b]) / static_cast<double>(total);
        for (uint32_t j = 0; j < dims; ++j) point[j] += freq * rows[b][j];
      }
    }
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<uint32_t> kmeans(const std::vector<std::vector<double>>& points,
                             uint32_t k, uint64_t seed, uint32_t iters) {
  const size_t n = points.size();
  if (k == 0 || n == 0) return std::vector<uint32_t>(n, 0);
  k = static_cast<uint32_t>(std::min<size_t>(k, n));

  // k-means++ seeding: first center uniform, then proportional to the
  // squared distance from the nearest chosen center.
  Rng rng{splitmix64(seed)};
  std::vector<std::vector<double>> centers;
  centers.reserve(k);
  centers.push_back(points[rng.next() % n]);
  std::vector<double> best_d2(n, 0.0);
  while (centers.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double d2 = dist2(points[i], centers[0]);
      for (size_t c = 1; c < centers.size(); ++c) {
        d2 = std::min(d2, dist2(points[i], centers[c]));
      }
      best_d2[i] = d2;
      total += d2;
    }
    size_t pick = 0;
    if (total > 0.0) {
      double target = rng.next_double() * total;
      for (; pick + 1 < n; ++pick) {
        target -= best_d2[pick];
        if (target <= 0.0) break;
      }
    } else {
      // All remaining points coincide with a center; any choice is as good.
      pick = rng.next() % n;
    }
    centers.push_back(points[pick]);
  }

  std::vector<uint32_t> assignment(n, 0);
  for (uint32_t iter = 0; iter < iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      uint32_t best = 0;
      double best_dist = std::numeric_limits<double>::max();
      for (uint32_t c = 0; c < k; ++c) {
        const double d2 = dist2(points[i], centers[c]);
        if (d2 < best_dist) {
          best_dist = d2;
          best = c;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    auto next = centroids_of(points, assignment, k);
    // Re-seed any emptied cluster with the farthest point whose donor
    // cluster keeps at least one member (deterministic: first farthest
    // wins). Stealing only from multi-member clusters — and keeping the
    // counts current — guarantees the donor cannot itself end up empty,
    // so no empty cluster survives this pass.
    std::vector<uint64_t> counts(k, 0);
    for (const uint32_t a : assignment) ++counts[a];
    for (uint32_t c = 0; c < k; ++c) {
      if (counts[c] > 0) continue;
      size_t farthest = n;
      double far_d = -1.0;
      for (size_t i = 0; i < n; ++i) {
        if (counts[assignment[i]] <= 1) continue;
        const double d2 = dist2(points[i], next[assignment[i]]);
        if (d2 > far_d) {
          far_d = d2;
          farthest = i;
        }
      }
      // An empty cluster implies some cluster holds >= 2 of the n >= k
      // points, so a donor always exists.
      if (farthest == n) continue;
      --counts[assignment[farthest]];
      next[c] = points[farthest];
      assignment[farthest] = c;
      ++counts[c];
    }
    centers = std::move(next);
  }
  return assignment;
}

Clustering cluster_bbvs(const BbvSet& bbvs, const ClusterOptions& opts) {
  Clustering result;
  const size_t n = bbvs.num_intervals();
  if (n == 0) return result;

  const auto points = project_bbvs(bbvs, opts.proj_dims, opts.seed);
  const uint32_t max_k = static_cast<uint32_t>(
      std::max<size_t>(1, std::min<size_t>(opts.max_k, n)));

  // Sweep k, keep every assignment so the winner needs no re-run.
  std::vector<std::vector<uint32_t>> assignments;
  assignments.reserve(max_k);
  result.bic_by_k.reserve(max_k);
  for (uint32_t k = 1; k <= max_k; ++k) {
    assignments.push_back(
        kmeans(points, k, opts.seed + k, opts.kmeans_iters));
    result.bic_by_k.push_back(bic_score(points, assignments.back(), k));
  }

  // SimPoint's rule: smallest k whose BIC reaches `bic_threshold` of the
  // swept score range.
  const double best =
      *std::max_element(result.bic_by_k.begin(), result.bic_by_k.end());
  const double worst =
      *std::min_element(result.bic_by_k.begin(), result.bic_by_k.end());
  const double cutoff = best - (1.0 - opts.bic_threshold) * (best - worst);
  uint32_t chosen = max_k;
  for (uint32_t k = 1; k <= max_k; ++k) {
    if (result.bic_by_k[k - 1] >= cutoff) {
      chosen = k;
      break;
    }
  }

  result.k = chosen;
  result.assignment = assignments[chosen - 1];
  result.sizes.assign(chosen, 0);
  for (const uint32_t a : result.assignment) ++result.sizes[a];

  // Representative per cluster: member closest to the centroid (lowest
  // index on ties, since the scan goes in order and uses strict <).
  const auto centroids = centroids_of(points, result.assignment, chosen);
  result.representative.assign(chosen, 0);
  std::vector<double> best_d(chosen, std::numeric_limits<double>::max());
  for (size_t i = 0; i < n; ++i) {
    const uint32_t c = result.assignment[i];
    const double d2 = dist2(points[i], centroids[c]);
    if (d2 < best_d[c]) {
      best_d[c] = d2;
      result.representative[c] = static_cast<uint32_t>(i);
    }
  }
  return result;
}

}  // namespace cfir::trace
