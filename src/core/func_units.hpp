// Per-cycle functional-unit availability (fully pipelined pools, Table 1).
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "isa/isa.hpp"

namespace cfir::core {

class FuPool {
 public:
  explicit FuPool(const CoreConfig& cfg) : cfg_(cfg) { new_cycle(); }

  void new_cycle() {
    simple_int_ = cfg_.simple_int_units;
    muldiv_ = cfg_.muldiv_units;
    mem_ports_ = cfg_.cache_ports;
  }

  [[nodiscard]] uint32_t simple_int_left() const { return simple_int_; }
  [[nodiscard]] uint32_t muldiv_left() const { return muldiv_; }
  [[nodiscard]] uint32_t mem_ports_left() const { return mem_ports_; }

  /// Attempts to reserve the FU needed by `op` (memory ports are reserved
  /// separately by the memory stage). Returns false when the pool is empty.
  bool try_reserve(isa::Opcode op);
  bool try_reserve_mem_port();
  void give_back_mem_port() { ++mem_ports_; }

  /// Execution latency of `op` excluding cache time.
  [[nodiscard]] uint32_t latency(isa::Opcode op) const;

 private:
  const CoreConfig& cfg_;
  uint32_t simple_int_ = 0;
  uint32_t muldiv_ = 0;
  uint32_t mem_ports_ = 0;
};

}  // namespace cfir::core
