// Trace tooling CLI: record, inspect, replay and sample workload traces.
//
//   trace_tool record <workload> [scale] [max_insts]   write <wl>.s<scale>.cfirtrace
//   trace_tool info   <file>                           print header + stream summary
//   trace_tool replay <file>                           verify trace against live run
//   trace_tool sample <workload> <k> [scale] [max]     interval-sampled detailed run
//
// Files land in CFIR_TRACE_DIR (default "."). `record` captures from the
// reference interpreter; `replay` re-executes under verification and cross
// checks the final architectural registers and memory digest stored in the
// header, exiting non-zero on any divergence. `sample` runs the detailed
// core over K checkpointed intervals in parallel (CFIR_THREADS) and prints
// both per-interval and merged stats as JSON.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"
#include "trace/sampling.hpp"
#include "trace/trace.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace cfir;

int usage() {
  std::fprintf(stderr,
               "usage: trace_tool record <workload> [scale] [max_insts]\n"
               "       trace_tool info   <trace-file>\n"
               "       trace_tool replay <trace-file>\n"
               "       trace_tool sample <workload> <k> [scale] [max_insts]\n"
               "env: CFIR_TRACE_DIR (output dir), CFIR_THREADS (sample)\n");
  return 2;
}

std::string default_path(const std::string& workload, uint32_t scale) {
  return trace::env_trace_dir() + "/" + workload + ".s" +
         std::to_string(scale) + ".cfirtrace";
}

int cmd_record(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string workload = argv[0];
  const uint32_t scale =
      argc > 1 ? static_cast<uint32_t>(std::strtoul(argv[1], nullptr, 10)) : 1;
  const uint64_t max_insts =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : UINT64_MAX;

  const isa::Program program = workloads::build(workload, scale);
  trace::TraceMeta meta;
  meta.workload = workload;
  meta.scale = scale;
  const std::string path = default_path(workload, scale);
  const isa::InterpResult r =
      trace::record_interpreter(program, path, meta, max_insts);
  std::printf("recorded %llu instructions of %s (scale %u) to %s\n",
              static_cast<unsigned long long>(r.executed), workload.c_str(),
              scale, path.c_str());
  std::printf("final digest 0x%016llx halted=%d\n",
              static_cast<unsigned long long>(r.mem_digest), r.halted);
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 1) return usage();
  trace::TraceReader reader(argv[0]);
  std::printf("workload: %s  scale: %u  base_pc: 0x%llx\n",
              reader.meta().workload.c_str(), reader.meta().scale,
              static_cast<unsigned long long>(reader.meta().base_pc));
  std::printf("records: %llu  final digest: 0x%016llx\n",
              static_cast<unsigned long long>(reader.record_count()),
              static_cast<unsigned long long>(reader.final_digest()));

  uint64_t branches = 0, taken = 0, loads = 0, stores = 0;
  trace::TraceRecord rec;
  while (reader.next(rec)) {
    switch (rec.kind) {
      case trace::RecordKind::kBranch:
        ++branches;
        if (rec.taken) ++taken;
        break;
      case trace::RecordKind::kLoad: ++loads; break;
      case trace::RecordKind::kStore: ++stores; break;
      case trace::RecordKind::kPlain: break;
    }
  }
  std::printf("branches: %llu (%llu taken)  loads: %llu  stores: %llu\n",
              static_cast<unsigned long long>(branches),
              static_cast<unsigned long long>(taken),
              static_cast<unsigned long long>(loads),
              static_cast<unsigned long long>(stores));
  return 0;
}

int cmd_replay(int argc, char** argv) {
  if (argc < 1) return usage();
  trace::TraceReader reader(argv[0]);
  const isa::Program program =
      workloads::build(reader.meta().workload, reader.meta().scale);
  const trace::ReplayResult r = trace::replay_trace(program, reader);
  if (!r.match) {
    std::fprintf(stderr, "replay FAILED after %llu records: %s\n",
                 static_cast<unsigned long long>(r.replayed),
                 r.mismatch.c_str());
    return 1;
  }
  std::printf("replay OK: %llu records, final digest 0x%016llx\n",
              static_cast<unsigned long long>(r.replayed),
              static_cast<unsigned long long>(r.final_state.mem_digest));
  return 0;
}

int cmd_sample(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string workload = argv[0];
  const uint32_t k =
      static_cast<uint32_t>(std::strtoul(argv[1], nullptr, 10));
  const uint32_t scale =
      argc > 2 ? static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10)) : 1;
  const uint64_t max_insts =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0;

  const isa::Program program = workloads::build(workload, scale);
  const trace::SampledRun run = trace::sampled_run(
      sim::presets::ci(2, 512), program, k, max_insts);
  for (size_t i = 0; i < run.intervals.size(); ++i) {
    const auto& interval = run.intervals[i];
    std::printf("{\"interval\":%zu,\"start\":%llu,\"length\":%llu,"
                "\"stats\":%s}\n",
                i, static_cast<unsigned long long>(interval.start_inst),
                static_cast<unsigned long long>(interval.length),
                stats::to_json(interval.stats).c_str());
  }
  std::printf("{\"aggregate\":true,\"total_insts\":%llu,\"stats\":%s}\n",
              static_cast<unsigned long long>(run.total_insts),
              stats::to_json(run.aggregate).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "record") return cmd_record(argc - 2, argv + 2);
    if (cmd == "info") return cmd_info(argc - 2, argv + 2);
    if (cmd == "replay") return cmd_replay(argc - 2, argv + 2);
    if (cmd == "sample") return cmd_sample(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_tool %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage();
}
