// Speculative data memory, paper section 2.4.6: a small, cheap memory
// (hierarchical-register-file style) holding replica results instead of the
// physical register file. Two write ports from the functional units, two
// read ports toward the register file, and twice the register-file latency.
// Values move into the register file through copy micro-ops inserted when a
// validation instruction decodes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace cfir::ci {

class SpecDataMemory {
 public:
  SpecDataMemory(uint32_t slots, uint32_t latency, uint32_t read_ports,
                 uint32_t write_ports);

  [[nodiscard]] int alloc();          ///< -1 when full
  void free_slot(int slot);
  [[nodiscard]] uint32_t free_count() const {
    return static_cast<uint32_t>(free_.size());
  }
  [[nodiscard]] uint32_t size() const {
    return static_cast<uint32_t>(values_.size());
  }
  [[nodiscard]] uint32_t in_use() const { return size() - free_count(); }
  [[nodiscard]] uint32_t latency() const { return latency_; }

  void write(int slot, uint64_t value) {
    values_[static_cast<size_t>(slot)] = value;
  }
  [[nodiscard]] uint64_t read(int slot) const {
    return values_[static_cast<size_t>(slot)];
  }

  /// Write-port arbitration: earliest cycle >= `cycle` with a free write
  /// port; books it.
  [[nodiscard]] uint64_t book_write(uint64_t cycle);
  /// Read-port arbitration for copy micro-ops: true when a read port is
  /// available at `cycle` (books it).
  [[nodiscard]] bool try_book_read(uint64_t cycle);

 private:
  uint32_t latency_;
  uint32_t read_ports_;
  uint32_t write_ports_;
  std::vector<uint64_t> values_;
  std::vector<int> free_;
  std::unordered_map<uint64_t, uint32_t> writes_at_;
  std::unordered_map<uint64_t, uint32_t> reads_at_;
  uint64_t gc_watermark_ = 0;
};

}  // namespace cfir::ci
