// MBS (Mispredicted Branch Status) table, paper section 2.3.1: a 4-way,
// 64-set table of 4-bit up/down counters that classifies static branches as
// highly biased (easy) or hard to predict. The counter moves toward the
// taken (up) / not-taken (down) extreme while the branch repeats its
// previous outcome and snaps to the middle when the direction flips; a
// branch is "hard" whenever the counter sits strictly between the extremes.
#pragma once

#include <cstdint>
#include <vector>

#include "util/warmable.hpp"

namespace cfir::branch {

class MbsTable : public util::Warmable {
 public:
  explicit MbsTable(uint32_t sets = 64, uint32_t ways = 4);

  /// Records a resolved outcome for the branch at `pc`. The detailed core
  /// calls this at commit, so the same call doubles as the functional
  /// warming hook (stream committed branches in commit order).
  void update(uint64_t pc, bool taken);

  /// True when the branch is considered hard to predict — i.e. its counter
  /// is not saturated at either extreme. Unknown branches are treated as
  /// easy (the control-independence scheme stays off until the branch shows
  /// a history), matching the paper's "highly biased" filter.
  [[nodiscard]] bool is_hard(uint64_t pc) const;

  /// Storage the structure would occupy in hardware (section 3.1 sizing).
  [[nodiscard]] uint64_t storage_bytes() const;

  /// Digest over the full table state (tags, counters, LRU stamps).
  [[nodiscard]] uint64_t debug_digest() const override;
  void serialize(util::ByteWriter& out) const override;
  void deserialize(util::ByteReader& in) override;

 private:
  struct Entry {
    uint64_t tag = 0;
    uint8_t counter = kMid;
    bool last_taken = false;
    bool valid = false;
    uint64_t lru = 0;
  };
  static constexpr uint8_t kMax = 15;
  static constexpr uint8_t kMin = 0;
  static constexpr uint8_t kMid = 8;

  [[nodiscard]] const Entry* find(uint64_t pc) const;
  Entry& find_or_alloc(uint64_t pc);

  uint32_t sets_;
  uint32_t ways_;
  uint64_t stamp_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace cfir::branch
