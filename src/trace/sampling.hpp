// Checkpointed interval sampling: split one long workload run into K
// architectural intervals, simulate each interval independently on the
// detailed core (resumed from its checkpoint), and merge the per-interval
// SimStats into one aggregate.
//
// Because checkpoints are exact architectural state, the union of the
// intervals commits exactly the same instruction stream as a monolithic
// run — committed/load/store/branch counts match exactly. Timing-facing
// counters (cycles, mispredicts, cache misses) differ slightly from a
// monolithic run because each interval starts with cold predictors and
// caches; this is the classic simulation-sampling trade-off, and the win is
// wall-clock: the K detailed simulations run in parallel on the
// sim::run_all thread pool while the fast-forward uses only the reference
// interpreter (orders of magnitude faster per instruction).
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "isa/program.hpp"
#include "stats/stats.hpp"
#include "trace/checkpoint.hpp"

namespace cfir::trace {

struct SampledRun {
  struct Interval {
    uint64_t start_inst = 0;   ///< first instruction index of the interval
    uint64_t length = 0;       ///< instructions detailed-simulated
    stats::SimStats stats;
  };
  std::vector<Interval> intervals;
  uint64_t total_insts = 0;    ///< instructions covered by all intervals
  stats::SimStats aggregate;   ///< merge of every interval's stats
};

/// The checkpoint schedule for a (program, k, max_insts) triple. Planning
/// costs two interpreter passes (count, then snapshot) and depends only on
/// the workload — never the core config — so one plan can be shared by
/// every configuration simulating the same workload (sim::run_all does).
struct IntervalPlan {
  uint64_t total_insts = 0;
  bool ran_to_halt = false;          ///< run ended at HALT, not at the cap
  std::vector<uint64_t> boundaries;  ///< interval start instruction counts
  std::vector<Checkpoint> checkpoints;
};
[[nodiscard]] IntervalPlan plan_intervals(const isa::Program& program,
                                          uint32_t k, uint64_t max_insts = 0);

/// Simulates every interval of `plan` in parallel under `config` and merges
/// the stats (`threads` <= 0 picks CFIR_THREADS / hardware concurrency).
[[nodiscard]] SampledRun sampled_run(const core::CoreConfig& config,
                                     const isa::Program& program,
                                     const IntervalPlan& plan,
                                     int threads = 0);

/// Convenience: plan_intervals + sampled_run in one call. `max_insts` == 0
/// covers the full run; `k` is clamped to the run length.
[[nodiscard]] SampledRun sampled_run(const core::CoreConfig& config,
                                     const isa::Program& program, uint32_t k,
                                     uint64_t max_insts = 0, int threads = 0);

}  // namespace cfir::trace
