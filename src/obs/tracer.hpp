// Flight-recorder tracing: RAII scoped spans and counter events recorded
// into per-thread ring buffers and exported as Chrome trace-event JSON
// (load the file in chrome://tracing or https://ui.perfetto.dev).
//
// Design constraints (docs/observability.md):
//  - Near-zero cost when disabled: every record call starts with one
//    relaxed atomic load and returns immediately while no trace is active.
//    Instrumentation therefore stays compiled in everywhere, including the
//    warming and simulation hot paths.
//  - Lock-free append when enabled: each thread appends to its own ring
//    buffer (registered once per thread under a mutex, then never shared
//    for writing), so worker threads on the sim::parallel_for pool never
//    contend. The rings are fixed size and wrap — a flight recorder keeps
//    the most recent window, it never blocks or grows.
//  - No behavioural coupling: the tracer only reads clocks and copies
//    pointers to string literals. Simulated results are bit-identical with
//    tracing on and off (locked by tests/test_obs.cpp).
//
// Span/counter names MUST be string literals (or otherwise outlive the
// tracer): the append path stores the pointer, never the bytes.
//
// Lifecycle: start(path) enables recording; stop() disables it, drains
// every thread's ring and writes the JSON file. stop() must not race with
// instrumented work — call it after worker pools have joined (trace_tool
// and the bench harness stop at process exit, after run_all returned).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace cfir::obs {

class Tracer {
 public:
  /// The process-wide tracer every instrumentation site records into.
  static Tracer& instance();

  /// Enables recording; the Chrome trace JSON is written to `path` by
  /// stop(). Restarting an already started tracer rebinds the output path
  /// and clears previously recorded events.
  void start(const std::string& path);

  /// Disables recording, drains every thread ring (chronological per
  /// thread, unbalanced end-events from ring wrap dropped, still-open
  /// spans closed at export time) and writes the trace file. No-op when
  /// never started; safe to call twice.
  void stop();

  /// One relaxed load — the only cost instrumentation pays when disabled.
  [[nodiscard]] static bool enabled() {
    return instance().enabled_.load(std::memory_order_relaxed);
  }

  // Record calls. All are no-ops while disabled; `name` must be a string
  // literal. `arg` surfaces in the event's "args":{"v":N}.
  static void begin(const char* name, uint64_t arg = 0, bool has_arg = false);
  static void end(const char* name);
  static void counter(const char* name, uint64_t value);
  static void instant(const char* name, uint64_t arg = 0,
                      bool has_arg = false);

  /// Labels the calling thread's lane in the trace viewer (emitted as a
  /// thread_name metadata event). sim::parallel_for names its workers.
  static void set_thread_name(const std::string& name);

  /// Events recorded since start() across all threads (ring-capped per
  /// thread) — introspection for tests.
  [[nodiscard]] uint64_t recorded_events() const;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
};

/// RAII span: begin event on construction (when tracing), matching end
/// event on destruction. The constructor-time enabled() check is latched,
/// so a span opened while tracing always closes even if tracing stops
/// mid-scope (the exporter drops ends without begins, so the pair stays
/// balanced either way).
class Span {
 public:
  explicit Span(const char* name) {
    if (Tracer::enabled()) {
      name_ = name;
      Tracer::begin(name);
    }
  }
  Span(const char* name, uint64_t arg) {
    if (Tracer::enabled()) {
      name_ = name;
      Tracer::begin(name, arg, /*has_arg=*/true);
    }
  }
  ~Span() {
    if (name_ != nullptr) Tracer::end(name_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
};

/// Starts the process tracer and registers an atexit hook that exports the
/// file when the process ends — the one-call setup for CLI entry points.
void trace_start(const std::string& path);

/// CFIR_TRACE=<file> starts the tracer exactly as trace_start(<file>)
/// would; unset/empty/"0" leaves tracing off. Returns whether tracing was
/// enabled. Called once from trace_tool and the bench harness.
bool init_from_env();

}  // namespace cfir::obs
