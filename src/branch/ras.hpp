// Return address stack for CALL/RET prediction, with full-state snapshots
// so that wrong-path pushes/pops are undone exactly on recovery.
#pragma once

#include <array>
#include <cstdint>

#include "util/warmable.hpp"

namespace cfir::branch {

class ReturnAddressStack : public util::Warmable {
 public:
  static constexpr int kEntries = 16;

  struct Snapshot {
    std::array<uint64_t, kEntries> stack{};
    int top = 0;  ///< index of next free slot (0 == empty)
  };

  void push(uint64_t return_pc);
  /// Pops and returns the predicted return target (0 when empty).
  uint64_t pop();
  [[nodiscard]] uint64_t peek() const;
  [[nodiscard]] int depth() const { return state_.top; }

  [[nodiscard]] Snapshot snapshot() const { return state_; }
  void restore(const Snapshot& s) { state_ = s; }

  // Functional warming reuses push()/pop() in commit order: misprediction
  // recovery restores the pre-branch snapshot exactly, so the state a
  // detailed run leaves behind is the committed push/pop sequence.
  [[nodiscard]] uint64_t debug_digest() const override;
  void serialize(util::ByteWriter& out) const override;
  void deserialize(util::ByteReader& in) override;

 private:
  Snapshot state_;
};

}  // namespace cfir::branch
