// Shared benchmark-harness plumbing: build a (workload x configuration)
// grid, run it on the thread pool, and print a paper-style table (one row
// per benchmark plus the harmonic-mean INT row the paper uses).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/presets.hpp"
#include "sim/sweep.hpp"
#include "stats/table.hpp"
#include "workloads/workloads.hpp"

namespace cfir::bench {

struct NamedConfig {
  std::string name;
  core::CoreConfig config;
};

/// Metric extracted from a finished run for the table cells.
using Metric = std::function<double(const stats::SimStats&)>;

inline uint64_t default_max_insts() {
  const uint64_t env = sim::env_max_insts();
  return env != 0 ? env : 30000;
}

/// CFIR_JSON=1 makes every bench also emit one machine-readable line per
/// grid point (workload, config, full stats::to_json blob) after the table.
inline bool json_requested() {
  const char* v = std::getenv("CFIR_JSON");
  return v != nullptr && *v != '\0' && *v != '0';
}

/// One machine-readable line summarizing what sharing each plan across its
/// config columns saved (sim::SweepSavings): checkpoints captured and
/// instructions functionally warmed once versus what per-column planning
/// and warming would have cost. Only meaningful for sampled grids
/// (CFIR_INTERVALS > 1); suppressed otherwise.
inline void dump_savings_json(const sim::SweepSavings& savings) {
  if (!json_requested() || savings.sampled_points == 0) return;
  std::printf("{\"shared_plan\":true,\"sampled_points\":%llu,"
              "\"plans\":%llu,\"checkpoints\":%llu,"
              "\"checkpoints_per_column\":%llu,\"warmed_insts\":%llu,"
              "\"warmed_insts_per_column\":%llu}\n",
              static_cast<unsigned long long>(savings.sampled_points),
              static_cast<unsigned long long>(savings.plans),
              static_cast<unsigned long long>(savings.checkpoints),
              static_cast<unsigned long long>(savings.checkpoints_per_column),
              static_cast<unsigned long long>(savings.warmed_insts),
              static_cast<unsigned long long>(
                  savings.warmed_insts_per_column));
}

inline void dump_json(const std::vector<sim::RunOutcome>& outcomes) {
  if (!json_requested()) return;
  for (const sim::RunOutcome& o : outcomes) {
    // wall_ms / insts_per_sec are host telemetry: nondeterministic by
    // nature, so nothing may byte-diff CFIR_JSON output across runs (the
    // simulated `stats` blob remains deterministic and diffable on its
    // own).
    const double secs = o.wall_ms / 1000.0;
    const double ips =
        secs > 0 ? static_cast<double>(o.detailed_insts) / secs : 0.0;
    std::printf("{\"workload\":\"%s\",\"config\":\"%s\",\"scale\":%u,"
                "\"intervals\":%u,\"wall_ms\":%.3f,\"insts_per_sec\":%.0f,"
                "\"stats\":%s",
                o.spec.workload.c_str(), o.spec.config_name.c_str(),
                o.spec.scale, o.spec.intervals, o.wall_ms, ips,
                stats::to_json(o.stats).c_str());
    // Sampled runs also expose the per-phase columns (one row per measured
    // interval / cluster representative): position, population weight, and
    // the phase's own IPC and ci-reuse next to the weighted aggregate.
    if (!o.phases.empty()) {
      std::printf(",\"phases\":[");
      for (size_t p = 0; p < o.phases.size(); ++p) {
        const sim::PhaseOutcome& ph = o.phases[p];
        std::printf("%s{\"start\":%llu,\"length\":%llu,\"weight\":%g,"
                    "\"ipc\":%g,\"ci_reuse\":%g,\"wall_ms\":%.3f}",
                    p == 0 ? "" : ",",
                    static_cast<unsigned long long>(ph.start_inst),
                    static_cast<unsigned long long>(ph.length), ph.weight,
                    ph.stats.ipc(), ph.stats.reuse_fraction(), ph.wall_ms);
      }
      std::printf("]");
    }
    std::printf("}\n");
  }
}

/// One machine-readable `telemetry` line: total detailed-simulation wall
/// and throughput for the whole figure plus a snapshot of every
/// obs::Registry instrument. Telemetry is host-side (nondeterministic), so
/// it rides in its own line that diff-based consumers can drop.
inline void dump_telemetry_json(const std::vector<sim::RunOutcome>& outcomes) {
  if (!json_requested()) return;
  double wall_ms = 0;
  unsigned long long insts = 0;
  for (const sim::RunOutcome& o : outcomes) {
    wall_ms += o.wall_ms;
    insts += o.detailed_insts;
  }
  const double secs = wall_ms / 1000.0;
  std::printf("{\"telemetry\":true,\"engine\":\"%s\",\"wall_ms\":%.3f,"
              "\"detailed_insts\":%llu,\"insts_per_sec\":%.0f,"
              "\"metrics\":%s}\n",
              isa::engine_kind_name(sim::env_engine_kind()), wall_ms, insts,
              secs > 0 ? static_cast<double>(insts) / secs : 0.0,
              obs::Registry::instance().to_json().c_str());
}

/// Runs all workloads under all configs and prints one row per workload and
/// one column per config. When `harmonic_summary` is set, appends the INT
/// row (harmonic mean — only meaningful for IPC-like metrics; use
/// arithmetic sums for counters via `sum_summary`).
inline void run_figure(const std::string& title,
                       const std::vector<NamedConfig>& configs,
                       const Metric& metric, int precision = 2,
                       bool harmonic_summary = true,
                       const std::vector<std::string>& workload_names =
                           workloads::names()) {
  obs::init_from_env();  // CFIR_TRACE=<file> flight-records this figure
  const uint32_t scale = sim::env_scale();
  const uint64_t max_insts = default_max_insts();
  const uint32_t intervals = sim::env_intervals();

  std::vector<sim::RunSpec> specs;
  for (const std::string& wl : workload_names) {
    for (const NamedConfig& nc : configs) {
      sim::RunSpec s;
      s.workload = wl;
      s.config_name = nc.name;
      s.config = nc.config;
      s.max_insts = max_insts;
      s.scale = scale;
      s.intervals = intervals;
      s.sample_mode = sim::env_sample_mode();
      s.warmup = sim::env_warmup();
      s.warm_mode = sim::env_warm_mode();
      s.detail_len = sim::env_detail_len();
      const trace::ShardSelection shard = sim::env_shard();
      s.shard_index = shard.index;
      s.shard_count = shard.count;
      specs.push_back(std::move(s));
    }
  }
  sim::SweepSavings savings;
  const auto outcomes = sim::run_all(specs, sim::env_threads(), &savings);

  std::vector<std::string> headers{"bench"};
  for (const NamedConfig& nc : configs) headers.push_back(nc.name);
  stats::Table table(std::move(headers));

  std::vector<std::vector<double>> columns(configs.size());
  size_t i = 0;
  for (const std::string& wl : workload_names) {
    std::vector<double> row;
    for (size_t c = 0; c < configs.size(); ++c, ++i) {
      const double v = metric(outcomes[i].stats);
      row.push_back(v);
      columns[c].push_back(v);
    }
    table.add_row(wl, row, precision);
  }
  if (harmonic_summary) {
    std::vector<double> intr;
    for (auto& col : columns) intr.push_back(stats::harmonic_mean(col));
    table.add_row("INT(hmean)", intr, precision);
  } else {
    std::vector<double> sums;
    for (auto& col : columns) {
      double s = 0;
      for (double v : col) s += v;
      sums.push_back(s);
    }
    table.add_row("TOTAL", sums, precision);
  }
  std::printf("%s\n", title.c_str());
  std::printf("(max %llu committed insts/run, scale %u, intervals %u; set "
              "CFIR_MAX_INSTS / CFIR_SCALE / CFIR_THREADS / CFIR_INTERVALS / "
              "CFIR_SAMPLE_MODE / CFIR_WARMUP / CFIR_WARM_MODE to change — "
              "see README \"Environment knobs\")\n\n",
              static_cast<unsigned long long>(max_insts), scale, intervals);
  std::printf("%s\n", table.to_text().c_str());
  dump_json(outcomes);
  dump_savings_json(savings);
  dump_telemetry_json(outcomes);
}

/// Variant keyed by register count instead of workload: one row per sweep
/// point, columns are configs, cells are harmonic-mean IPC over all
/// workloads (Figures 9, 11, 13, 14).
inline void run_register_sweep(
    const std::string& title,
    const std::function<std::vector<NamedConfig>(uint32_t regs)>& make_configs,
    int precision = 2) {
  obs::init_from_env();  // CFIR_TRACE=<file> flight-records this figure
  const uint32_t scale = sim::env_scale();
  const uint64_t max_insts = default_max_insts();
  const auto regs_sweep = sim::presets::register_sweep();
  const auto& wls = workloads::names();

  const auto proto = make_configs(256);
  std::vector<std::string> headers{"regs"};
  for (const NamedConfig& nc : proto) headers.push_back(nc.name);
  stats::Table table(std::move(headers));

  std::vector<sim::RunSpec> specs;
  for (const uint32_t regs : regs_sweep) {
    for (const NamedConfig& nc : make_configs(regs)) {
      for (const std::string& wl : wls) {
        sim::RunSpec s;
        s.workload = wl;
        s.config_name = nc.name;
        s.config = nc.config;
        s.max_insts = max_insts;
        s.scale = scale;
        s.intervals = sim::env_intervals();
        s.sample_mode = sim::env_sample_mode();
        s.warmup = sim::env_warmup();
        s.warm_mode = sim::env_warm_mode();
        s.detail_len = sim::env_detail_len();
        const trace::ShardSelection shard = sim::env_shard();
        s.shard_index = shard.index;
        s.shard_count = shard.count;
        specs.push_back(std::move(s));
      }
    }
  }
  sim::SweepSavings savings;
  const auto outcomes = sim::run_all(specs, sim::env_threads(), &savings);

  size_t i = 0;
  for (const uint32_t regs : regs_sweep) {
    std::vector<double> row;
    for (size_t c = 0; c < proto.size(); ++c) {
      std::vector<double> ipcs;
      for (size_t w = 0; w < wls.size(); ++w, ++i) {
        ipcs.push_back(outcomes[i].stats.ipc());
      }
      row.push_back(stats::harmonic_mean(ipcs));
    }
    table.add_row(sim::presets::reg_label(regs) + " regs", row, precision);
  }
  std::printf("%s\n", title.c_str());
  std::printf("(harmonic-mean IPC over %zu workloads; max %llu insts/run)\n\n",
              wls.size(), static_cast<unsigned long long>(max_insts));
  std::printf("%s\n", table.to_text().c_str());
  dump_json(outcomes);
  dump_savings_json(savings);
  dump_telemetry_json(outcomes);
}

}  // namespace cfir::bench
