// Throughput regression guard for the superblock-caching engine: on an
// optimized build, the cached engine must retire instructions at least 3x
// as fast as the switch-dispatch reference interpreter (bench/micro_engine
// prints the full picture; this test keeps the speedup from silently
// regressing). Skipped on Debug builds and under sanitizers, where
// instrumentation flattens the dispatch-cost difference the guard measures.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "isa/engine.hpp"
#include "mem/main_memory.hpp"
#include "obs/metrics.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace cfir;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

#ifdef NDEBUG
constexpr bool kOptimized = true;
#else
constexpr bool kOptimized = false;
#endif

/// Best-of-N wall time for one full run to HALT, fresh state each sample.
double best_us(const isa::Program& program, isa::EngineKind kind,
               int repeats) {
  double best = 1e18;
  for (int r = 0; r < repeats; ++r) {
    mem::MainMemory memory;
    isa::load_data_image(program, memory);
    isa::FunctionalEngine engine(program, memory, kind);
    const obs::Stopwatch clock;
    engine.run(UINT64_MAX);
    best = std::min(best, static_cast<double>(clock.elapsed_us()));
  }
  return best;
}

TEST(EngineBench, CachedEngineAtLeast3xSwitch) {
  if (!kOptimized || kSanitized) {
    GTEST_SKIP() << "throughput guard needs an optimized, uninstrumented "
                    "build (Debug or sanitizer detected)";
  }
  // Two kernels with different block shapes (~1-2M dynamic instructions
  // each: long enough that decode cost and timer granularity vanish, short
  // enough for a sub-second test); pass if either clears the bar, so a
  // noisy host sample on one workload cannot fail the guard.
  double best_speedup = 0.0;
  for (const char* kernel : {"bzip2", "parser"}) {
    const isa::Program program = workloads::build(kernel, 16);
    const double switch_us =
        best_us(program, isa::EngineKind::kSwitch, /*repeats=*/3);
    const double cached_us =
        best_us(program, isa::EngineKind::kCached, /*repeats=*/3);
    ASSERT_GT(cached_us, 0.0);
    best_speedup = std::max(best_speedup, switch_us / cached_us);
  }
  RecordProperty("speedup", std::to_string(best_speedup));
  EXPECT_GE(best_speedup, 3.0)
      << "cached engine only " << best_speedup
      << "x the switch interpreter at best";
}

}  // namespace
