// Trace capture / replay: a compact, versioned binary format for the
// committed instruction stream (PCs, branch outcomes, load/store
// addresses) of one workload run.
//
// Motivation (see README "Trace subsystem"): every figure bench used to
// re-execute each workload from instruction zero. Recording the committed
// stream once makes runs persistable, shareable and replayable — replay
// re-executes the reference interpreter under trace verification, so a
// stored trace doubles as an architectural regression artifact.
//
// Format, version 1 (all integers little-endian):
//
//   header:  magic "CFIRTRC1" | u32 version | u32 reserved
//            | u64 record_count | u64 base_pc | u64 final_digest
//            | 64 x u64 final architectural registers
//            | u32 scale | u32 name_len | name bytes
//   records: one per retired instruction —
//            tag byte: bits 0-1 kind (0 plain, 1 branch, 2 load, 3 store)
//                      bit  2   branch taken
//                      bits 3-4 log2(access bytes) for loads/stores
//            zigzag-varint pc delta from the *predicted* pc
//              (previous pc + 4; sequential code costs 1 byte)
//            branch: zigzag-varint delta of actual next pc from pc + 4
//            load/store: zigzag-varint address delta from the previous
//              memory access address
//
// `record_count`, `final_digest` and the final registers are patched into
// the header by TraceWriter::finish, so a trace file is self-validating:
// replay can check the reconstructed architectural state without re-running
// the original simulation. finish() then appends the shared CRC-32 footer
// (trace/blob.hpp), verified by TraceReader at open; footer-less files
// written before the footer existed still load.
//
// Format, version 2 ("CFIRTRC2", the default writer format): the same
// header (block capacity in the v1 reserved slot), then the record stream
// split into fixed-capacity blocks whose fields are stored as
// independently coded columns — each block carries the coder state it
// starts from plus its own CRC-32 footer, and the file ends in a
// CRC-protected block index mapping record ranges to file offsets, so
// TraceReader::seek_to lands on a block boundary and decodes only from
// there. Roughly 3-4x smaller than v1 and random-access; full byte-level
// layout in docs/trace-format.md and src/trace/trace_v2.hpp. Both
// versions load through the same TraceReader. The `CFIR_TRACE_FORMAT`
// env knob (v1|v2) selects the default writer format.
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "isa/engine.hpp"
#include "isa/interpreter.hpp"
#include "isa/program.hpp"

namespace cfir::trace {

inline constexpr char kTraceMagic[8] = {'C', 'F', 'I', 'R',
                                        'T', 'R', 'C', '1'};
inline constexpr uint32_t kTraceVersion = 1;
inline constexpr char kTraceMagicV2[8] = {'C', 'F', 'I', 'R',
                                          'T', 'R', 'C', '2'};
inline constexpr uint32_t kTraceVersionV2 = 2;
/// Default CFIRTRC2 block capacity in records. The header stores the
/// actual value, so readers never assume it.
inline constexpr uint32_t kTraceBlockLen = 65536;
/// Number of per-field columns in a CFIRTRC2 block.
inline constexpr size_t kTraceV2Columns = 11;
/// Display name of CFIRTRC2 column `col` (trace_tool info).
[[nodiscard]] const char* trace_v2_column_name(size_t col);
/// record_count value written at open and replaced by finish(); a file
/// still carrying it was interrupted mid-recording and is rejected.
inline constexpr uint64_t kUnfinishedRecordCount = UINT64_MAX;

/// On-disk trace format selector for writers.
enum class TraceFormat : uint8_t {
  kV1 = 1,  ///< row-oriented CFIRTRC1 (the oracle / legacy path)
  kV2 = 2,  ///< columnar seekable CFIRTRC2
};

/// Writer format from `CFIR_TRACE_FORMAT` ("v1" or "v2"); unset/empty
/// means v2. Anything else throws, so a typo cannot silently fall back.
[[nodiscard]] TraceFormat trace_format_from_env();

namespace v2 {
struct FileView;
class BlockWriter;
}  // namespace v2

/// Directory trace files default into: CFIR_TRACE_DIR, or "." when unset.
[[nodiscard]] std::string env_trace_dir();

enum class RecordKind : uint8_t {
  kPlain = 0,   ///< ALU / jumps / calls / rets
  kBranch = 1,  ///< conditional branch (taken + target recorded)
  kLoad = 2,
  kStore = 3,
};

/// One retired instruction.
struct TraceRecord {
  uint64_t pc = 0;
  RecordKind kind = RecordKind::kPlain;
  bool taken = false;     ///< kBranch only
  uint64_t next_pc = 0;   ///< kBranch only: actual successor pc
  uint64_t addr = 0;      ///< kLoad/kStore only
  uint8_t size = 0;       ///< kLoad/kStore only: access bytes (1/2/4/8)

  bool operator==(const TraceRecord&) const = default;
};

// The engine's retired-instruction events and trace records are the same
// data; the enum values line up by design so conversion is a cast.
static_assert(static_cast<int>(RecordKind::kPlain) ==
              static_cast<int>(isa::EventKind::kPlain));
static_assert(static_cast<int>(RecordKind::kBranch) ==
              static_cast<int>(isa::EventKind::kBranch));
static_assert(static_cast<int>(RecordKind::kLoad) ==
              static_cast<int>(isa::EventKind::kLoad));
static_assert(static_cast<int>(RecordKind::kStore) ==
              static_cast<int>(isa::EventKind::kStore));

[[nodiscard]] inline TraceRecord to_trace_record(const isa::StepEvent& ev) {
  TraceRecord rec;
  rec.pc = ev.pc;
  rec.kind = static_cast<RecordKind>(ev.kind);
  rec.taken = ev.taken;
  rec.next_pc = ev.next_pc;
  rec.addr = ev.addr;
  rec.size = ev.size;
  return rec;
}

/// Workload identity stored in the header so `replay` / `info` can rebuild
/// the program without out-of-band knowledge.
struct TraceMeta {
  std::string workload;
  uint32_t scale = 1;
  uint64_t base_pc = 0;
};

class TraceWriter {
 public:
  /// Creates/truncates `path` and writes the header (counts zeroed).
  /// `format` defaults to the CFIR_TRACE_FORMAT knob (v2 when unset);
  /// `block_len` is the CFIRTRC2 block capacity (0 = kTraceBlockLen,
  /// ignored for v1).
  TraceWriter(const std::string& path, const TraceMeta& meta,
              TraceFormat format = trace_format_from_env(),
              uint32_t block_len = 0);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const TraceRecord& rec);

  /// Patches record count, final registers and memory digest into the
  /// header and closes the file. Idempotent.
  void finish(const std::array<uint64_t, isa::kNumLogicalRegs>& final_regs,
              uint64_t final_digest);

  [[nodiscard]] uint64_t records() const { return records_; }
  [[nodiscard]] TraceFormat format() const { return format_; }

 private:
  void put_varint(uint64_t v);

  TraceFormat format_;
  std::unique_ptr<v2::BlockWriter> v2_;  ///< set iff format_ == kV2
  std::ofstream out_;
  std::string path_;  ///< finish() re-reads the file to append the CRC footer
  uint64_t records_ = 0;
  uint64_t prev_pc_ = 0;  ///< pc of the previous record
  bool have_prev_ = false;
  uint64_t base_pc_ = 0;
  uint64_t last_addr_ = 0;
  bool finished_ = false;
};

/// Reads both trace formats behind one interface: the leading magic picks
/// the codec at open. v1 streams records off disk; v2 buffers the file,
/// validates only the header + block index, and decodes blocks on demand
/// (CRC-checked per block), which is what makes seek_to cheap.
class TraceReader {
 public:
  /// Opens and validates the header; throws the typed trace/errors.hpp
  /// classes on a bad magic / version / corrupt or truncated file.
  explicit TraceReader(const std::string& path);
  ~TraceReader();
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  [[nodiscard]] const TraceMeta& meta() const { return meta_; }
  [[nodiscard]] uint64_t record_count() const { return record_count_; }
  [[nodiscard]] uint64_t final_digest() const { return final_digest_; }
  [[nodiscard]] const std::array<uint64_t, isa::kNumLogicalRegs>&
  final_regs() const {
    return final_regs_;
  }

  /// Reads the next record; returns false at end of stream.
  bool next(TraceRecord& out);

  /// On-disk format version of the open file (1 or 2).
  [[nodiscard]] uint32_t format_version() const { return version_; }
  /// Index of the record the next next() call returns.
  [[nodiscard]] uint64_t position() const { return read_; }

  /// Repositions the stream so the next next() returns record
  /// `inst_index`. `inst_index == record_count()` is a valid end-of-stream
  /// position; anything past it throws std::out_of_range. O(1) + one
  /// block decode for v2 (lands on the covering block boundary); for v1
  /// it falls back to sequential decode (rewinding first when behind), so
  /// the interface stays format-agnostic.
  void seek_to(uint64_t inst_index);

  /// CFIRTRC2 block geometry: count of blocks in the file and the block
  /// capacity from the header. A v1 file reports 0 for both.
  [[nodiscard]] size_t block_count() const;
  [[nodiscard]] uint32_t block_len() const;
  /// First record index of block `b` (v2 only).
  [[nodiscard]] uint64_t block_first_record(size_t b) const;
  /// Decodes block `b` after verifying its CRC (v2 only; throws on v1).
  /// Pure and thread-safe — bbv_from_trace fans block decodes out on the
  /// sim::parallel_for pool. Each call counts one `trace.blocks_read`.
  [[nodiscard]] std::vector<TraceRecord> decode_block(size_t b) const;
  /// Per-column compressed payload bytes summed over all blocks
  /// (trace_tool info; v2 only — zeros for v1).
  [[nodiscard]] std::array<uint64_t, kTraceV2Columns> column_bytes() const;

 private:
  [[nodiscard]] uint64_t get_varint();
  void drain_telemetry();

  std::ifstream in_;
  std::unique_ptr<v2::FileView> v2_;  ///< set iff version_ == 2
  uint32_t version_ = 1;
  TraceMeta meta_;
  uint64_t record_count_ = 0;
  uint64_t final_digest_ = 0;
  std::array<uint64_t, isa::kNumLogicalRegs> final_regs_{};
  uint64_t read_ = 0;
  std::streamoff data_start_ = 0;  ///< v1: first record byte (for rewinds)
  uint64_t prev_pc_ = 0;
  bool have_prev_ = false;
  uint64_t last_addr_ = 0;
  std::vector<TraceRecord> block_cache_;  ///< v2: decoded current block
  size_t cur_block_ = SIZE_MAX;           ///< v2: which block is cached
  int64_t open_us_ = 0;     ///< decode-throughput telemetry epoch
  bool telemetry_done_ = false;
};

/// Runs the reference interpreter over `program` (fresh memory, data image
/// applied), recording every retired instruction to `path`. Stops at HALT
/// or after `max_insts`. Returns the final architectural state. `format`
/// and `block_len` pass through to TraceWriter.
isa::InterpResult record_interpreter(const isa::Program& program,
                                     const std::string& path,
                                     const TraceMeta& meta,
                                     uint64_t max_insts = UINT64_MAX,
                                     TraceFormat format =
                                         trace_format_from_env(),
                                     uint32_t block_len = 0);

/// Trace-driven re-execution: replays `program` on the interpreter while
/// verifying every retired instruction against the stored records, then
/// checks the final registers and memory digest against the header.
struct ReplayResult {
  bool match = false;
  uint64_t replayed = 0;        ///< records consumed
  std::string mismatch;         ///< empty when match
  isa::InterpResult final_state;
};
ReplayResult replay_trace(const isa::Program& program,
                          const std::string& path);
/// Same, driving an already-opened reader (no record consumed yet) —
/// callers that inspected meta() first avoid re-parsing the header.
ReplayResult replay_trace(const isa::Program& program, TraceReader& reader);

}  // namespace cfir::trace
