#include "branch/gshare.hpp"

#include <cassert>

namespace cfir::branch {

Gshare::Gshare(uint32_t entries, uint32_t history_bits) {
  assert(entries > 0 && (entries & (entries - 1)) == 0);
  table_.assign(entries, 2);  // weakly taken
  mask_ = entries - 1;
  history_mask_ = history_bits >= 64 ? ~uint64_t{0}
                                     : ((uint64_t{1} << history_bits) - 1);
}

uint32_t Gshare::index(uint64_t pc, uint64_t history) const {
  return static_cast<uint32_t>((pc >> 2) ^ history) & mask_;
}

bool Gshare::predict(uint64_t pc) const {
  return table_[index(pc, history_)] >= 2;
}

uint64_t Gshare::speculate(bool predicted) {
  const uint64_t snapshot = history_;
  history_ = ((history_ << 1) | (predicted ? 1 : 0)) & history_mask_;
  return snapshot;
}

void Gshare::train(uint64_t pc, uint64_t snapshot, bool taken) {
  uint8_t& c = table_[index(pc, snapshot)];
  if (taken) {
    if (c < 3) ++c;
  } else {
    if (c > 0) --c;
  }
}

void Gshare::recover(uint64_t snapshot, bool taken) {
  history_ = ((snapshot << 1) | (taken ? 1 : 0)) & history_mask_;
}

void Gshare::warm_commit(uint64_t pc, bool taken) {
  train(pc, history_, taken);
  history_ = ((history_ << 1) | (taken ? 1 : 0)) & history_mask_;
}

uint64_t Gshare::debug_digest() const {
  util::Digest d;
  d.bytes(table_.data(), table_.size());
  d.u64(history_);
  return d.value();
}

void Gshare::serialize(util::ByteWriter& out) const {
  out.u32(static_cast<uint32_t>(table_.size()));
  out.bytes(table_.data(), table_.size());
  out.u64(history_);
}

void Gshare::deserialize(util::ByteReader& in) {
  const uint32_t n = in.u32();
  if (n != table_.size()) {
    throw std::runtime_error("Gshare: warm-state table size mismatch");
  }
  in.bytes(table_.data(), table_.size());
  history_ = in.u64() & history_mask_;
}

}  // namespace cfir::branch
