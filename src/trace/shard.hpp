// Shard runner and result blobs — the "execute" and "merge" layers of the
// plan / execute / merge decomposition of sampled simulation
// (docs/sharding.md; trace/manifest.hpp is the plan layer).
//
// A ShardSelection names the subset of a plan's intervals one worker runs:
// shard i of N takes every interval whose plan index ≡ i (mod N), so
// consecutive (expensive) intervals spread across shards. run_shard
// executes that subset — in-process on the sim::parallel_for pool — and
// returns a ShardResult: the per-interval measured stats plus everything
// the merge layer needs to validate and fold them. Results serialize as
// CFIRSHD1 blobs, so N workers on N machines can each run one shard and
// ship one small file back; merge_shard_results folds any complete set of
// them into a SampledRun **bit-identical** to the single-process
// trace::sampled_run (which is itself implemented as run_shard of the
// whole plan + merge — there is exactly one orchestration code path).
//
// File format, version 1 (little-endian, shared CRC-32 footer required —
// trace/blob.hpp):
//   magic "CFIRSHD1" | u32 version | u32 reserved
//   | u64 config_hash | u32 shard_index | u32 shard_count
//   | u32 plan_intervals | u64 total_insts | u8 ran_to_halt
//   | u64 detailed_insts | u64 warmed_insts
//   | u32 n_intervals
//   | n x (u32 plan_index | u64 start | u64 length | u64 warmup
//          | u64 weight_bits(double) | SimStats (stats::serialize))
//   | "CRC1" | u32 crc32
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "isa/program.hpp"
#include "stats/stats.hpp"
#include "trace/sampling.hpp"

namespace cfir::trace {

inline constexpr char kShardMagic[8] = {'C', 'F', 'I', 'R',
                                        'S', 'H', 'D', '1'};
inline constexpr uint32_t kShardVersion = 1;

/// Shard `index` of `count`: the intervals whose plan index ≡ index
/// (mod count). The default selection {0, 1} is the whole plan.
struct ShardSelection {
  uint32_t index = 0;
  uint32_t count = 1;

  [[nodiscard]] bool covers(size_t plan_index) const {
    return plan_index % count == index;
  }
};

/// Parses "i/N" (e.g. "0/4"); throws std::runtime_error on malformed specs
/// or i >= N, so a typo'd --shard flag fails loudly.
[[nodiscard]] ShardSelection parse_shard(std::string_view spec);

struct ShardResult {
  uint64_t config_hash = 0;   ///< stamped from the manifest (0 in-process)
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
  uint32_t plan_intervals = 0;  ///< intervals in the whole plan (coverage)
  uint64_t total_insts = 0;     ///< instructions the plan covers
  bool ran_to_halt = false;
  uint64_t detailed_insts = 0;  ///< this shard's detailed-simulation cost
  uint64_t warmed_insts = 0;    ///< this shard's functionally warmed insts

  struct Interval {
    uint32_t plan_index = 0;  ///< position in the plan (coverage + ordering)
    uint64_t start_inst = 0;
    uint64_t length = 0;
    uint64_t warmup = 0;
    double weight = 1.0;
    stats::SimStats stats;  ///< measured slice only (warm-up subtracted)
  };
  std::vector<Interval> intervals;

  /// Payload bytes (no CRC footer); deserialize ∘ serialize is the
  /// identity (fuzz-locked in tests/test_shard.cpp).
  [[nodiscard]] std::vector<uint8_t> serialize() const;
  [[nodiscard]] static ShardResult deserialize(
      const std::vector<uint8_t>& payload);

  void save(const std::string& path) const;
  [[nodiscard]] static ShardResult load(const std::string& path);
};

/// Execute layer: detail-simulates `shard`'s subset of `plan`'s intervals
/// in parallel under `config` (`threads` <= 0 picks CFIR_THREADS /
/// hardware concurrency), warming each interval per the plan's WarmMode —
/// functional prefixes reuse warm state already attached to the plan's
/// checkpoints (CFIRCKP2) and are captured in one streaming pass
/// otherwise. `config_hash` is stamped into the result for merge-time
/// validation; pass the manifest's hash when executing a manifest-derived
/// plan.
[[nodiscard]] ShardResult run_shard(const core::CoreConfig& config,
                                    const isa::Program& program,
                                    const IntervalPlan& plan,
                                    ShardSelection shard = {},
                                    int threads = 0,
                                    uint64_t config_hash = 0);

/// Merge layer: folds a complete set of shard results back into one
/// SampledRun. Validates that every result carries the same config hash
/// (ConfigMismatchError otherwise) and that the results cover every plan
/// interval exactly once (CorruptFileError otherwise). The aggregate is
/// bit-identical to the single-process sampled_run of the same plan,
/// regardless of shard count or merge order (stats::merge_shards).
[[nodiscard]] SampledRun merge_shard_results(
    const std::vector<ShardResult>& shards);

}  // namespace cfir::trace
