#include "isa/interpreter.hpp"

#include "obs/metrics.hpp"

namespace cfir::isa {

Interpreter::Interpreter(const Program& program, mem::MainMemory& memory)
    : program_(program), mem_(memory), pc_(program.base()) {}

template <bool Observed>
bool Interpreter::step_impl() {
  if (halted_) return false;
  const Instruction* inst = program_.try_at(pc_);
  if (inst == nullptr) {
    halted_ = true;
    return false;
  }
  const Opcode op = inst->op;
  uint64_t next_pc = pc_ + kInstBytes;
  switch (op) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      halted_ = true;
      return false;
    case Opcode::kJmp:
      next_pc = static_cast<uint64_t>(inst->imm);
      break;
    case Opcode::kCall:
      regs_[kLinkReg] = pc_ + kInstBytes;
      next_pc = static_cast<uint64_t>(inst->imm);
      break;
    case Opcode::kRet:
      next_pc = regs_[inst->rs1];
      break;
    default: {
      if (is_cond_branch(op)) {
        const bool taken = eval_branch(op, regs_[inst->rs1], regs_[inst->rs2]);
        if (taken) next_pc = static_cast<uint64_t>(inst->imm);
        if constexpr (Observed) {
          if (on_branch) on_branch(pc_, taken, next_pc);
        }
      } else if (is_load(op)) {
        const uint64_t addr = regs_[inst->rs1] + static_cast<uint64_t>(inst->imm);
        const int bytes = mem_bytes(op);
        regs_[inst->rd] = mem_.read(addr, bytes);
        if constexpr (Observed) {
          if (on_mem) on_mem(pc_, addr, bytes, /*is_store=*/false);
        }
      } else if (is_store(op)) {
        const uint64_t addr = regs_[inst->rs1] + static_cast<uint64_t>(inst->imm);
        const int bytes = mem_bytes(op);
        mem_.write(addr, regs_[inst->rs2], bytes);
        if constexpr (Observed) {
          if (on_mem) on_mem(pc_, addr, bytes, /*is_store=*/true);
        }
      } else {
        // ALU.
        regs_[inst->rd] =
            eval_alu(op, regs_[inst->rs1], regs_[inst->rs2], inst->imm);
      }
      break;
    }
  }
  if constexpr (Observed) {
    if (on_step) on_step(pc_, next_pc);
  }
  pc_ = next_pc;
  ++executed_;
  return true;
}

bool Interpreter::step() { return step_impl<true>(); }

uint64_t Interpreter::run(uint64_t max_insts) {
  const uint64_t start = executed_;
  // Saturating target so `max_insts == UINT64_MAX` ("run to HALT") cannot
  // overflow once `executed_` is nonzero.
  const uint64_t target =
      max_insts > UINT64_MAX - start ? UINT64_MAX : start + max_insts;
  const obs::Stopwatch clock;
  // Bind the observer check once: with no observers attached the loop runs
  // the specialization with every `if (on_*)` compiled out.
  if (on_step || on_branch || on_mem) {
    while (executed_ < target && step_impl<true>()) {
    }
  } else {
    while (executed_ < target && step_impl<false>()) {
    }
  }
  const uint64_t ran = executed_ - start;
  // Telemetry once per run() call, never per instruction — run() is the
  // throughput backbone of planning, warming and trace capture.
  if (ran > 0) {
    obs::Registry& reg = obs::Registry::instance();
    reg.counter("interp.insts").add(ran);
    reg.histogram("interp.run_us").observe(clock.elapsed_us());
  }
  return ran;
}

void load_data_image(const Program& program, mem::MainMemory& memory) {
  for (const DataSegment& seg : program.data()) {
    memory.write_block(seg.addr, seg.bytes.data(), seg.bytes.size());
  }
}

InterpResult run_program(const Program& program, uint64_t max_insts) {
  mem::MainMemory memory;
  load_data_image(program, memory);
  Interpreter interp(program, memory);
  interp.run(max_insts);
  InterpResult r;
  r.executed = interp.executed();
  r.halted = interp.halted();
  r.regs = interp.regs();
  r.mem_digest = memory.digest();
  return r;
}

}  // namespace cfir::isa
