#include "sim/pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/tracer.hpp"

namespace cfir::sim {

namespace {
int resolve_threads(int threads) {
  if (threads <= 0) {
    const char* v = std::getenv("CFIR_THREADS");
    if (v != nullptr && *v != '\0') {
      threads = static_cast<int>(std::strtol(v, nullptr, 10));
    }
  }
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  return std::max(threads, 1);
}
}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int n = resolve_threads(threads);
  workers_.reserve(static_cast<size_t>(n));
  try {
    for (int t = 0; t < n; ++t) {
      workers_.emplace_back([this, t] { worker_main(t); });
    }
  } catch (...) {
    // Thread creation failed mid-pool (resource exhaustion): join what
    // exists instead of letting the vector destructor terminate on
    // joinable threads, then surface the error.
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& th : workers_) th.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& th : workers_) th.join();
}

void ThreadPool::drain(Batch& b, std::unique_lock<std::mutex>& lk) {
  while (b.open()) {
    const size_t i = b.next++;
    ++b.in_flight;
    lk.unlock();
    std::exception_ptr err;
    try {
      (*b.fn)(i);
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();
    --b.in_flight;
    if (err) {
      if (!b.first_error) b.first_error = err;
      b.failed = true;
    }
  }
  // No claims left (exhausted or failed): once in_flight hits 0 the
  // batch is complete. The last finisher passes through here, so one
  // notify point covers every completion order.
  if (b.in_flight == 0) done_cv_.notify_all();
}

void ThreadPool::worker_main(int lane) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    Batch* b = nullptr;
    for (Batch* cand : queue_) {
      if (cand->open() && cand->helpers > 0) {
        b = cand;
        break;
      }
    }
    if (b == nullptr) {
      if (stop_) return;
      work_cv_.wait(lk);
      continue;
    }
    --b->helpers;  // the slot is held for the rest of the batch
    // Label this worker's lane in the trace viewer (re-applied per batch
    // join so a tracer started mid-process still sees named lanes). Done
    // under mu_ on purpose: releasing it here would let the submitter
    // retire the stack-allocated batch before drain() touches it.
    if (obs::Tracer::enabled()) {
      obs::Tracer::set_thread_name("worker-" + std::to_string(lane));
    }
    drain(*b, lk);
  }
}

void ThreadPool::run(size_t n, const std::function<void(size_t)>& fn,
                     int max_workers) {
  if (n == 0) return;
  Batch b;
  b.n = n;
  b.fn = &fn;
  const int cap = max_workers < 0 ? size() : std::min(max_workers, size());
  b.helpers = std::min<int>(cap, static_cast<int>(n));

  std::unique_lock<std::mutex> lk(mu_);
  queue_.push_back(&b);
  if (b.helpers > 0) work_cv_.notify_all();
  drain(b, lk);  // the submitter is always one of the batch's executors
  done_cv_.wait(lk, [&] { return b.in_flight == 0; });
  queue_.erase(std::find(queue_.begin(), queue_.end(), &b));
  const std::exception_ptr err = b.first_error;
  lk.unlock();
  if (err) std::rethrow_exception(err);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace cfir::sim
