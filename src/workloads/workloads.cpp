#include "workloads/workloads.hpp"

#include <stdexcept>
#include <unordered_map>

namespace cfir::workloads {

namespace {
struct Kernel {
  isa::Program (*build)(uint32_t);
  const char* description;
};

const std::unordered_map<std::string, Kernel>& registry() {
  static const std::unordered_map<std::string, Kernel> kKernels = {
      {"bzip2", {build_bzip2,
                 "RLE/histogram over random bytes (the paper's Figure 1 "
                 "hammock: hard branch + strided loads + CI accumulation)"}},
      {"crafty", {build_crafty,
                  "bitboard scans with random bit-test hammocks and "
                  "popcount ALU pressure"}},
      {"eon", {build_eon,
               "regular multiply-accumulate loops, predictable branches "
               "(CI mechanism stays idle)"}},
      {"gap", {build_gap,
               "modular-arithmetic divisibility hammocks over strided "
               "arrays"}},
      {"gcc", {build_gcc,
               "multi-way if/else dispatch over a skewed opcode stream"}},
      {"gzip", {build_gzip,
                "LZ window matching with data-dependent inner-loop exits"}},
      {"mcf", {build_mcf,
               "pointer chasing: CI selected but not strided-fed (no "
               "reuse, Figure 5 gray band)"}},
      {"parser", {build_parser,
                  "call/ret token classification (return-address stack "
                  "pressure)"}},
      {"perlbmk", {build_perlbmk,
                   "byte hashing with character-class hammocks"}},
      {"twolf", {build_twolf,
                 "annealing accept/reject on strided cost arrays"}},
      {"vortex", {build_vortex,
                  "store-heavy object updates (coherence-check pressure)"}},
      {"vpr", {build_vpr,
               "grid routing cost comparison with min/max CI reduction"}},
  };
  return kKernels;
}
}  // namespace

const std::vector<std::string>& names() {
  static const std::vector<std::string> kNames = {
      "bzip2", "crafty", "eon",     "gap",   "gcc",    "gzip",
      "mcf",   "parser", "perlbmk", "twolf", "vortex", "vpr"};
  return kNames;
}

isa::Program build(const std::string& name, uint32_t scale) {
  const auto it = registry().find(name);
  if (it == registry().end()) {
    throw std::invalid_argument("unknown workload: " + name);
  }
  if (scale == 0) scale = 1;
  return it->second.build(scale);
}

std::string describe(const std::string& name) {
  const auto it = registry().find(name);
  if (it == registry().end()) {
    throw std::invalid_argument("unknown workload: " + name);
  }
  return it->second.description;
}

}  // namespace cfir::workloads
