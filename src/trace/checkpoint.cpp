#include "trace/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "isa/interpreter.hpp"
#include "trace/io.hpp"

namespace cfir::trace {

namespace {

using io::get_raw;
using io::put_raw;

bool all_zero(const uint8_t* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (data[i] != 0) return false;
  }
  return true;
}

Checkpoint snapshot(const isa::Interpreter& interp,
                    const mem::MainMemory& memory) {
  Checkpoint ck;
  ck.pc = interp.pc();
  ck.executed = interp.executed();
  ck.regs = interp.regs();
  ck.memory = memory.clone();
  return ck;
}

}  // namespace

void Checkpoint::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("Checkpoint: cannot open " + path);
  if (has_warm()) {
    out.write(kCheckpointMagicV2, sizeof(kCheckpointMagicV2));
    put_raw(out, kCheckpointVersionWarm);
  } else {
    out.write(kCheckpointMagic, sizeof(kCheckpointMagic));
    put_raw(out, kCheckpointVersion);
  }
  put_raw(out, uint32_t{0});  // reserved
  put_raw(out, pc);
  put_raw(out, executed);
  for (const uint64_t r : regs) put_raw(out, r);

  std::vector<std::pair<uint64_t, const uint8_t*>> pages;
  memory.for_each_page([&](uint64_t base_addr, const uint8_t* data) {
    if (!all_zero(data, mem::MainMemory::kPageSize)) {
      pages.emplace_back(base_addr, data);
    }
  });
  put_raw(out, static_cast<uint64_t>(pages.size()));
  for (const auto& [base_addr, data] : pages) {
    put_raw(out, base_addr);
    out.write(reinterpret_cast<const char*>(data),
              mem::MainMemory::kPageSize);
  }
  if (has_warm()) {
    put_raw(out, static_cast<uint64_t>(warm.size()));
    out.write(reinterpret_cast<const char*>(warm.data()),
              static_cast<std::streamsize>(warm.size()));
  }
  out.close();
  if (!out) throw std::runtime_error("Checkpoint: write failed for " + path);
}

Checkpoint Checkpoint::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("Checkpoint: cannot open " + path);
  char magic[sizeof(kCheckpointMagic)];
  in.read(magic, sizeof(magic));
  const bool v1 =
      in && std::memcmp(magic, kCheckpointMagic, sizeof(magic)) == 0;
  const bool v2 =
      in && std::memcmp(magic, kCheckpointMagicV2, sizeof(magic)) == 0;
  if (!v1 && !v2) {
    throw std::runtime_error("Checkpoint: bad magic in " + path);
  }
  const uint32_t version = get_raw<uint32_t>(in);
  if (version != (v2 ? kCheckpointVersionWarm : kCheckpointVersion)) {
    throw std::runtime_error("Checkpoint: unsupported version " +
                             std::to_string(version));
  }
  (void)get_raw<uint32_t>(in);  // reserved

  Checkpoint ck;
  ck.pc = get_raw<uint64_t>(in);
  ck.executed = get_raw<uint64_t>(in);
  for (auto& r : ck.regs) r = get_raw<uint64_t>(in);
  const uint64_t page_count = get_raw<uint64_t>(in);
  std::vector<uint8_t> buf(mem::MainMemory::kPageSize);
  for (uint64_t p = 0; p < page_count; ++p) {
    const uint64_t base_addr = get_raw<uint64_t>(in);
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    // Fail fast inside the loop: a corrupt page_count would otherwise spin
    // for up to 2^64 iterations replaying stale bytes.
    if (!in) {
      throw std::runtime_error("Checkpoint: truncated file " + path);
    }
    ck.memory.write_block(base_addr, buf.data(), buf.size());
  }
  if (v2) {
    const uint64_t warm_size = get_raw<uint64_t>(in);
    if (!in) throw std::runtime_error("Checkpoint: truncated file " + path);
    // Cap pathological sizes before allocating: the blob cannot be larger
    // than what remains of the file.
    const auto pos = in.tellg();
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    in.seekg(pos);
    if (pos < 0 || end < pos ||
        warm_size > static_cast<uint64_t>(end - pos)) {
      throw std::runtime_error("Checkpoint: truncated warm state in " + path);
    }
    ck.warm.resize(warm_size);
    in.read(reinterpret_cast<char*>(ck.warm.data()),
            static_cast<std::streamsize>(warm_size));
  }
  if (!in) throw std::runtime_error("Checkpoint: truncated file " + path);
  return ck;
}

Checkpoint fast_forward(const isa::Program& program, uint64_t n_insts) {
  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  isa::Interpreter interp(program, memory);
  interp.run(n_insts);
  return snapshot(interp, memory);
}

std::vector<Checkpoint> interval_checkpoints(
    const isa::Program& program, const std::vector<uint64_t>& boundaries) {
  if (!std::is_sorted(boundaries.begin(), boundaries.end())) {
    throw std::runtime_error("interval_checkpoints: boundaries not sorted");
  }
  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  isa::Interpreter interp(program, memory);

  std::vector<Checkpoint> out;
  out.reserve(boundaries.size());
  for (const uint64_t boundary : boundaries) {
    while (interp.executed() < boundary && interp.step()) {
    }
    out.push_back(snapshot(interp, memory));
  }
  return out;
}

}  // namespace cfir::trace
