// The out-of-order core: an 8-wide, RUU-style superscalar with wrong-path
// fetch and execution, walk-based rename recovery, an LSQ, a wide-bus
// memory stage and in-order commit with an architectural recheck.
//
// This is the SimpleScalar-sim-outorder-equivalent substrate the paper
// extends; the control-independence machinery attaches through the
// Mechanism hook interface (core/types.hpp).
//
// Two schedulers implement the identical cycle-by-cycle semantics
// (docs/architecture.md "Detailed core scheduler"; CFIR_CORE_SCHED knob):
//
//   fast  flat, allocation-free structures — a cycle-bucketed calendar
//         ring for completion events, intrusive seq-sorted lists for the
//         ready and stalled-memory sets, a free-listed waiter pool, and a
//         small insertion-ordered ring for the wide-bus line buffers.
//         The default.
//   ref   the original containers (std::priority_queue wakeup heap,
//         per-cycle std::sort + rebuild of the stalled list, per-register
//         waiter vectors, std::unordered_map line buffers), kept verbatim
//         as the differential oracle.
//
// Every SimStats field, cycle count and commit record is bit-identical
// between the two (tests/test_core_sched_differential.cpp) — fast differs
// only in host cost (bench/micro_detailed, guarded >=1.5x in
// tests/test_detailed_bench.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "branch/gshare.hpp"
#include "branch/mbs.hpp"
#include "branch/ras.hpp"
#include "core/config.hpp"
#include "core/func_units.hpp"
#include "core/lsq.hpp"
#include "core/regfile.hpp"
#include "core/rename.hpp"
#include "core/types.hpp"
#include "isa/program.hpp"
#include "mem/hierarchy.hpp"
#include "mem/main_memory.hpp"
#include "stats/stats.hpp"

namespace cfir::obs {
class Counter;
class Histogram;
}  // namespace cfir::obs

namespace cfir::core {

/// Which scheduler backs the detailed core's cycle loop.
enum class SchedMode : uint8_t {
  kRef = 0,   ///< original heap/map/vector structures (oracle)
  kFast = 1,  ///< calendar ring + intrusive lists + pools (default)
};

[[nodiscard]] const char* sched_mode_name(SchedMode mode);
/// Reads `CFIR_CORE_SCHED` ("fast" | "ref"; unset/empty = fast). Throws on
/// typos so a misspelled knob fails loudly instead of silently running the
/// wrong scheduler.
[[nodiscard]] SchedMode sched_mode_from_env();

/// One architecturally committed instruction, as delivered to the batched
/// commit observer. Carries exactly what downstream consumers (the trace
/// recorder, tests) rebuild their records from; field semantics match the
/// committing DynInst.
struct CommitRecord {
  uint64_t pc = 0;
  uint64_t mem_addr = 0;       ///< loads/stores only
  uint64_t actual_target = 0;  ///< conditional branches only
  isa::Opcode op = isa::Opcode::kNop;
  uint8_t mem_size = 0;        ///< loads/stores only: access bytes
  bool is_cond_branch = false;
  bool is_load = false;
  bool is_store = false;
  bool actual_taken = false;   ///< conditional branches only
};

class Core {
 public:
  /// `mechanism` may be null (plain superscalar). `memory` must already hold
  /// the program's data image. `sched` selects the hot-loop scheduler; the
  /// default reads the CFIR_CORE_SCHED environment knob.
  Core(const CoreConfig& config, const isa::Program& program,
       mem::MainMemory& memory, Mechanism* mechanism,
       SchedMode sched = sched_mode_from_env());

  /// Runs until `max_commits` instructions commit, HALT commits, or the
  /// program runs off its image. Throws std::runtime_error on deadlock
  /// (which indicates a simulator bug, not a program property).
  void run(uint64_t max_commits);

  /// Executes a single cycle (tests drive this directly).
  void step_cycle();

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] uint64_t cycle() const { return cycle_; }
  [[nodiscard]] SchedMode sched_mode() const { return sched_; }
  [[nodiscard]] const stats::SimStats& stats() const { return stats_; }
  [[nodiscard]] stats::SimStats& stats() { return stats_; }

  // --- architectural state (commit order) ---------------------------------
  [[nodiscard]] uint64_t arch_reg(int logical) const {
    return arch_regs_[static_cast<size_t>(logical)];
  }

  /// Seeds the architectural state before the first cycle: logical register
  /// values (mirrored into the current physical mapping) and the fetch PC.
  /// Used to resume simulation from a checkpoint (src/trace/); `memory` must
  /// already hold the checkpointed image.
  void set_arch_state(const std::array<uint64_t, isa::kNumLogicalRegs>& regs,
                      uint64_t pc);

  /// Batched commit observer (same contract as FastEngine::on_block): spans
  /// of architecturally committed instructions (HALT included), in commit
  /// order. Spans are delivered when the fixed internal buffer fills and
  /// flushed at the end of every run() call; leave empty for zero overhead
  /// beyond one branch per commit. Callers driving step_cycle() directly
  /// call flush_commit_span() to drain the tail.
  std::function<void(const CommitRecord* records, size_t n)> on_commit_span;

  /// Delivers any buffered commit records to on_commit_span now. run()
  /// calls this before returning; only direct step_cycle() drivers need it.
  void flush_commit_span();

  // --- services used by the attached mechanism -----------------------------
  [[nodiscard]] const CoreConfig& config() const { return cfg_; }
  [[nodiscard]] const isa::Program& program() const { return program_; }
  [[nodiscard]] mem::MainMemory& memory() { return mem_; }
  [[nodiscard]] mem::CacheHierarchy& hierarchy() { return hierarchy_; }
  [[nodiscard]] PhysRegFile& regfile() { return regfile_; }
  [[nodiscard]] branch::MbsTable& mbs() { return mbs_; }
  // Branch-prediction state, exposed so the functional-warming path
  // (trace/warming.hpp) can install pre-trained predictor state before the
  // first cycle and so differential tests can digest it after a run.
  [[nodiscard]] branch::Gshare& gshare() { return gshare_; }
  [[nodiscard]] branch::ReturnAddressStack& ras() { return ras_; }
  [[nodiscard]] int rename_lookup(int logical) const {
    return rename_.lookup(logical);
  }

  /// Mechanism wrote `phys` (replica result): wake anything waiting on it.
  void replica_written(int phys);

  /// Mechanism signals the copy source of a waiting reused instruction is
  /// now available.
  void wake_copy(uint32_t rob_slot, uint64_t seq);

  /// Timed load issued by the replica engine. Honours wide-bus batching and
  /// port limits for the current cycle; returns false when no port (or
  /// batching slot) is available. On success `latency_out` is the cycles
  /// until data availability.
  bool try_replica_load_access(uint64_t addr, uint32_t& latency_out);

  /// Remaining L1D ports this cycle (after scalar issue).
  [[nodiscard]] uint32_t mem_ports_left() const {
    return fu_.mem_ports_left();
  }

 private:
  struct Event {
    uint64_t when;
    uint64_t seq;
    uint32_t slot;
    bool operator>(const Event& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };
  struct Waiter {
    uint32_t slot;
    uint64_t seq;
  };

  // Stages (executed in this order each cycle).
  void commit_stage();
  void writeback_stage();
  void issue_stage();
  void fetch_stage();

  // Scheduler-specific halves of writeback/issue (ref kept verbatim).
  void writeback_stage_ref();
  void writeback_stage_fast();
  void issue_stage_ref();
  void issue_stage_fast();

  // Helpers.
  [[nodiscard]] DynInst& at(uint32_t slot) { return rob_[slot]; }
  [[nodiscard]] bool slot_live(uint32_t slot, uint64_t seq) const;
  /// Fast-scheduler liveness: equivalent to slot_live for the seqs stored
  /// in events/waiters/ready nodes (always >= 1; next_seq_ starts at 1).
  /// Commit and squash both zero rob_[slot].seq before a slot leaves the
  /// window and seqs are never reused, so the seq match alone decides —
  /// skipping slot_live's ring-index modulo on the hottest validations.
  [[nodiscard]] bool slot_live_fast(uint32_t slot, uint64_t seq) const {
    return rob_[slot].seq == seq;
  }
  [[nodiscard]] uint32_t rob_tail_slot() const;
  void dispatch(DynInst di);
  bool try_issue(uint32_t slot);
  bool issue_mem(DynInst& di);
  void execute(DynInst& di, uint32_t slot, uint32_t latency);
  void complete(uint32_t slot);
  void resolve_branch(uint32_t slot);
  void schedule_completion(uint32_t slot, uint64_t seq, uint64_t when);
  void add_waiter(int phys, uint32_t slot, uint64_t seq);
  void wake_reg(int phys);
  /// Pushes (seq, slot) into the ready set of the active scheduler.
  void ready_push(uint64_t seq, uint32_t slot);
  /// Squashes everything strictly younger than `seq` and redirects fetch.
  void recover_to(uint64_t seq, uint64_t new_fetch_pc, uint64_t resume_delay);
  void squash_younger(uint64_t seq);
  /// Architectural recheck of the head instruction; returns false and
  /// triggers recovery when the executed result is not architectural.
  bool commit_check(DynInst& di);
  void apply_commit(DynInst& di);
  void record_commit(const DynInst& di);

  // --- configuration and attached subsystems --------------------------------
  CoreConfig cfg_;
  const isa::Program& program_;
  mem::MainMemory& mem_;
  Mechanism* mech_;
  SchedMode sched_;
  mem::CacheHierarchy hierarchy_;
  branch::Gshare gshare_;
  branch::ReturnAddressStack ras_;
  branch::MbsTable mbs_;
  PhysRegFile regfile_;
  RenameMap rename_;
  LoadStoreQueue lsq_;
  FuPool fu_;
  stats::SimStats stats_;

  // --- ROB ring --------------------------------------------------------------
  std::vector<DynInst> rob_;
  uint32_t rob_head_ = 0;
  uint32_t rob_count_ = 0;

  // --- wakeup/select (ref scheduler) ----------------------------------------
  std::vector<std::vector<Waiter>> reg_waiters_;  ///< per physical register
  using ReadyQueue =
      std::priority_queue<std::pair<uint64_t, uint32_t>,
                          std::vector<std::pair<uint64_t, uint32_t>>,
                          std::greater<>>;
  ReadyQueue ready_q_;                    ///< (seq, slot), lazy-validated
  std::vector<std::pair<uint64_t, uint32_t>> stalled_mem_;  ///< LSQ retries
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;

  // --- wakeup/select (fast scheduler) ---------------------------------------
  // Completion events live in a cycle-bucketed calendar ring: bucket
  // (when & mask) holds the events due at `when` (latencies are bounded by
  // CoreConfig; anything beyond the ring horizon parks in cal_overflow_
  // and migrates as the horizon advances). Draining time T pops exactly
  // the heap's (when==T) events in ascending seq order.
  static constexpr uint32_t kCalBuckets = 256;  // power of two
  std::vector<std::vector<Event>> cal_;
  std::vector<Event> cal_overflow_;
  std::vector<Event> cal_scratch_;
  uint64_t cal_next_drain_ = 0;

  // The ready set is a seq-sorted doubly-linked list of pooled nodes with
  // the SAME lazy-invalidation semantics as the ref heap: squashed entries
  // stay until inspected (and consume select bandwidth exactly like the
  // heap's stale pops), retried entries keep their position instead of a
  // pop/re-push round trip.
  struct ReadyNode {
    uint64_t seq = 0;
    uint32_t slot = 0;
    int32_t prev = -1;
    int32_t next = -1;
  };
  std::vector<ReadyNode> ready_pool_;
  int32_t ready_free_ = -1;
  int32_t ready_head_ = -1;
  int32_t ready_tail_ = -1;
  void ready_list_push(uint64_t seq, uint32_t slot);
  void ready_list_unlink(int32_t node);

  // Stalled memory ops thread an intrusive seq-sorted list through ROB
  // slots (a slot is in the list at most once; squash unlinks eagerly, so
  // entries are always live — the invisible part of the ref semantics).
  std::vector<int32_t> smem_next_;
  std::vector<int32_t> smem_prev_;
  int32_t smem_head_ = -1;
  int32_t smem_tail_ = -1;
  static constexpr int32_t kUnlinked = -2;
  void smem_insert(uint32_t slot, uint64_t seq);
  void smem_unlink(uint32_t slot);

  // Retry gating for stalled loads (fast scheduler): a refused issue_mem
  // attempt has no side effects beyond recomputing the (fixed) address, and
  // its outcome depends only on the LSQ's store population — disambiguation
  // and forwarding consult older stores exclusively — plus, for the
  // port-starved case, data-port availability. lsq_store_epoch_ bumps
  // whenever a store issues (addr+value become known) or leaves the LSQ
  // (commit or squash); a stalled load whose recorded epoch is current is
  // provably refused again and is skipped without replaying the attempt.
  // Port-starved loads additionally retry whenever a port is free (and
  // always under wide_bus, where a line-buffer hit can serve them portless).
  uint64_t lsq_store_epoch_ = 0;
  bool mem_fail_port_ = false;  ///< set by issue_mem on the refusing path
  std::vector<uint64_t> smem_gate_epoch_;
  std::vector<uint8_t> smem_gate_port_;

  // Register waiters draw nodes from one free-listed pool; each physical
  // register keeps a FIFO chain (append at tail, detach-then-walk on wake —
  // the same move-then-clear discipline as the ref vectors).
  struct WaiterNode {
    uint64_t seq = 0;
    uint32_t slot = 0;
    int32_t next = -1;
  };
  std::vector<WaiterNode> waiter_pool_;
  int32_t waiter_free_ = -1;
  std::vector<int32_t> reg_wait_head_;
  std::vector<int32_t> reg_wait_tail_;

  // --- wide-bus line buffers -----------------------------------------------
  // A wide access reads the whole line into a short-lived buffer; up to
  // cfg.wide_bus_loads_per_access loads can be served from it (section
  // 2.4.5) within a small window, without extra cache accesses or ports.
  struct LineAccess {
    uint64_t ready_cycle;
    uint32_t uses;
    uint64_t expire_cycle;
  };
  std::unordered_map<uint64_t, LineAccess> line_buffer_;  ///< ref scheduler
  static constexpr uint64_t kLineBufferWindow = 8;
  bool line_buffer_lookup(uint64_t line, uint32_t& latency_out);
  void line_buffer_insert(uint64_t line, uint32_t latency);

  // Fast scheduler: a small insertion-ordered ring searched newest-first
  // (the newest entry for a line IS the map's overwrite), aged lazily — the
  // search early-exits at the first expired entry because insert order is
  // cycle order. Sized so a live entry (<= window+1 cycles old, <=
  // cache_ports inserts/cycle) can never be overwritten while live.
  struct LineSlot {
    uint64_t line = ~uint64_t{0};
    uint64_t ready_cycle = 0;
    uint64_t expire_cycle = 0;
    uint32_t uses = 0;
  };
  std::vector<LineSlot> line_ring_;
  uint32_t line_ring_mask_ = 0;
  uint32_t line_ring_pos_ = 0;
  uint64_t line_ring_fill_ = 0;  ///< slots ever written (validity horizon)

  // --- batched commit observer ----------------------------------------------
  static constexpr size_t kCommitSpan = 256;
  std::array<CommitRecord, kCommitSpan> commit_buf_;
  size_t commit_buf_n_ = 0;

  // --- observability (obs::Registry; host telemetry, never SimStats) --------
  obs::Counter* obs_cycles_ = nullptr;
  obs::Counter* obs_flushes_ = nullptr;
  obs::Histogram* obs_rob_occupancy_ = nullptr;
  uint64_t flushes_ = 0;           ///< recover_to invocations (pipeline flushes)
  uint64_t obs_cycles_exported_ = 0;
  uint64_t obs_flushes_exported_ = 0;

  // --- fetch -------------------------------------------------------------------
  uint64_t fetch_pc_ = 0;
  uint64_t fetch_resume_cycle_ = 0;
  bool fetch_stalled_ = false;  ///< ran off the image / hit HALT; waits redirect
  uint64_t last_fetch_line_ = ~uint64_t{0};
  uint64_t next_seq_ = 1;

  // --- architectural ------------------------------------------------------------
  std::array<uint64_t, isa::kNumLogicalRegs> arch_regs_{};
  uint64_t cycle_ = 0;
  bool halted_ = false;
  uint64_t committed_target_ = UINT64_MAX;
  uint64_t last_commit_cycle_ = 0;
  uint64_t rename_starved_since_ = 0;
  uint32_t stores_committed_this_cycle_ = 0;
  uint32_t commit_slots_used_ = 0;
};

}  // namespace cfir::core
