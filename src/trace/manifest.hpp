// Shard manifest — the serialized form of an interval plan, and the "plan"
// layer of the plan / execute / merge decomposition of sampled simulation
// (docs/sharding.md):
//
//   plan    — plan_intervals / plan_cluster_intervals build an
//             IntervalPlan; write_manifest freezes it to disk as one
//             CFIRMAN1 manifest plus one self-contained CFIRCKP checkpoint
//             blob per interval (warm state included when the plan's warm
//             mode has a functional prefix).
//   execute — any machine loads the manifest, rebuilds the plan
//             (plan_from_manifest) and runs a subset of its intervals
//             (trace/shard.hpp), emitting one CFIRSHD1 result blob.
//   merge   — the result blobs fold back into the single-process answer
//             (trace::merge_shard_results / stats::merge_shards).
//
// The manifest records a canonical **config hash** — core::CoreConfig
// digest + workload identity + the plan structure itself — stamped into
// every shard result, so results produced under a different config or plan
// are rejected at merge time (ConfigMismatchError) instead of being
// silently averaged.
//
// File format, version 1 (little-endian, shared CRC-32 footer required —
// trace/blob.hpp):
//   magic "CFIRMAN1" | u32 version | u32 reserved
//   | u64 config_hash
//   | u8 mode | u8 warm_mode | u64 warmup | u64 total_insts
//   | u64 interval_len | u8 ran_to_halt
//   | u32 scale | u32 workload_len | workload bytes
//   | u32 n_intervals
//   | n x (u64 start | u64 length | u64 weight_bits(double)
//          | u32 file_len | checkpoint file name bytes)
//   | "CRC1" | u32 crc32
// Checkpoint file names are relative to the manifest's directory, so a
// manifest and its checkpoints move between machines as one directory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "trace/sampling.hpp"

namespace cfir::trace {

inline constexpr char kManifestMagic[8] = {'C', 'F', 'I', 'R',
                                           'M', 'A', 'N', '1'};
inline constexpr uint32_t kManifestVersion = 1;

/// `path` minus its final extension (".cfirman" usually) — the stem the
/// manifest's sibling artifacts are named from: write_manifest puts
/// checkpoints at `<stem>.ck<i>.cfirckpt` and trace_tool defaults shard
/// results to `<stem>.shard<i>of<N>.cfirshd`. One definition so the file
/// layout cannot drift between the planner and the tools.
[[nodiscard]] std::string path_stem(const std::string& path);

struct ShardManifest {
  std::string workload;  ///< cfir::workloads name — rebuilds the program
  uint32_t scale = 1;
  uint64_t config_hash = 0;  ///< plan_config_hash at write time
  SampleMode mode = SampleMode::kUniform;
  WarmMode warm_mode = WarmMode::kDetailed;
  uint64_t warmup = 0;
  uint64_t total_insts = 0;
  uint64_t interval_len = 0;  ///< cluster mode: source-window length
  bool ran_to_halt = false;

  struct IntervalRef {
    uint64_t start = 0;   ///< first measured instruction index
    uint64_t length = 0;  ///< measured instructions
    double weight = 1.0;  ///< population this interval stands in for
    std::string checkpoint_file;  ///< relative to the manifest's directory
  };
  std::vector<IntervalRef> intervals;

  /// Payload bytes (no CRC footer). Deterministic: serialize ∘ deserialize
  /// is the identity on the bytes (fuzz-locked in tests/test_shard.cpp).
  [[nodiscard]] std::vector<uint8_t> serialize() const;
  [[nodiscard]] static ShardManifest deserialize(
      const std::vector<uint8_t>& payload);

  void save(const std::string& path) const;
  [[nodiscard]] static ShardManifest load(const std::string& path);
};

/// The canonical config hash: CoreConfig::digest() + workload identity +
/// the plan's structure (mode, warm mode, boundaries, lengths, weights).
/// Everything that must agree for two shard results to be mergeable.
[[nodiscard]] uint64_t plan_config_hash(const core::CoreConfig& config,
                                        const std::string& workload,
                                        uint32_t scale,
                                        const IntervalPlan& plan);

/// Plan layer driver: writes `plan` as `manifest_path` plus one checkpoint
/// blob per interval next to it (named `<stem>.ck<i>.cfirckpt`), and
/// returns the manifest. The plan's checkpoints should already carry warm
/// state when the warm mode needs it (attach_warm_states) so every shard
/// is self-contained.
ShardManifest write_manifest(const IntervalPlan& plan,
                             const core::CoreConfig& config,
                             const std::string& workload, uint32_t scale,
                             const std::string& manifest_path);

/// Rebuilds a runnable IntervalPlan from a manifest, loading every
/// referenced checkpoint relative to the manifest's directory. Cluster
/// diagnostics (cluster_of, bic_by_k) are not stored and come back empty.
[[nodiscard]] IntervalPlan plan_from_manifest(const ShardManifest& manifest,
                                              const std::string&
                                                  manifest_path);

/// Recomputes the config hash for (`config`, the manifest's workload, the
/// reloaded `plan`) and throws ConfigMismatchError when it differs from the
/// manifest's — i.e. the caller is about to execute or merge under a
/// different experiment point than the plan was made for.
void verify_manifest_config(const ShardManifest& manifest,
                            const core::CoreConfig& config,
                            const IntervalPlan& plan);

}  // namespace cfir::trace
