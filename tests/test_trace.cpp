// Trace capture/replay and checkpointed interval sampling (src/trace/):
//  - write -> read roundtrip reproduces the live record stream exactly
//  - core-captured traces equal interpreter-captured traces
//  - checkpoint save/load and resume are bit-identical to an uninterrupted
//    run (register file + memory_digest)
//  - sampled-run aggregates match a monolithic run exactly on the
//    architectural counters and within tolerance on timing counters
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "trace/checkpoint.hpp"
#include "trace/errors.hpp"
#include "trace/sampling.hpp"
#include "workloads/workloads.hpp"

namespace cfir::trace {
namespace {

/// Unique temp path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(std::string(::testing::TempDir()) + "cfir_" + tag + "_" +
              std::to_string(reinterpret_cast<uintptr_t>(this))) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<uint8_t> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

std::vector<TraceRecord> capture_live(const isa::Program& program,
                                      uint64_t max_insts = UINT64_MAX) {
  // Reference stream straight from the interpreter observers, bypassing
  // the file format.
  std::vector<TraceRecord> live;
  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  isa::Interpreter interp(program, memory);
  TraceRecord pending;
  interp.on_branch = [&](uint64_t, bool taken, uint64_t target) {
    pending.kind = RecordKind::kBranch;
    pending.taken = taken;
    pending.next_pc = target;
  };
  interp.on_mem = [&](uint64_t, uint64_t addr, int bytes, bool is_store) {
    pending.kind = is_store ? RecordKind::kStore : RecordKind::kLoad;
    pending.addr = addr;
    pending.size = static_cast<uint8_t>(bytes);
  };
  interp.on_step = [&](uint64_t pc, uint64_t) {
    pending.pc = pc;
    live.push_back(pending);
    pending = TraceRecord{};
  };
  interp.run(max_insts);
  return live;
}

TEST(TraceFormat, RoundTripEqualsLiveStream) {
  const isa::Program program = cfir::testing::figure1_program(256, 50, 11);
  const std::vector<TraceRecord> live = capture_live(program);
  ASSERT_FALSE(live.empty());

  TempFile file("roundtrip");
  TraceMeta meta;
  meta.workload = "figure1";
  meta.scale = 1;
  const isa::InterpResult r =
      record_interpreter(program, file.path(), meta);
  EXPECT_EQ(r.executed, live.size());

  TraceReader reader(file.path());
  EXPECT_EQ(reader.meta().workload, "figure1");
  EXPECT_EQ(reader.meta().scale, 1u);
  EXPECT_EQ(reader.meta().base_pc, program.base());
  EXPECT_EQ(reader.record_count(), live.size());
  EXPECT_EQ(reader.final_digest(), r.mem_digest);
  EXPECT_EQ(reader.final_regs(), r.regs);

  TraceRecord rec;
  for (size_t i = 0; i < live.size(); ++i) {
    ASSERT_TRUE(reader.next(rec)) << "stream ended early at " << i;
    ASSERT_EQ(rec, live[i]) << "record " << i << " differs";
  }
  EXPECT_FALSE(reader.next(rec));
}

TEST(TraceFormat, CrcFooterRejectsBitFlips) {
  // Every finished trace carries the CRC-32 footer; a single flipped
  // payload byte must be rejected at open, before any record decodes.
  const isa::Program program = cfir::testing::figure1_program(64, 50, 5);
  TempFile file("crcflip");
  TraceMeta meta;
  meta.workload = "figure1";
  // v1 relies on the whole-file CRC verified at open; CFIRTRC2 localizes
  // integrity per block/index (tests/test_trace_v2.cpp), so pin to v1.
  (void)record_interpreter(program, file.path(), meta, UINT64_MAX,
                           TraceFormat::kV1);
  EXPECT_NO_THROW(TraceReader{file.path()});

  std::vector<uint8_t> bytes = file_bytes(file.path());
  bytes[bytes.size() / 2] ^= 0x40;  // mid-stream, away from the footer
  {
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(TraceReader{file.path()}, CorruptFileError);
}

TEST(TraceFormat, LegacyFooterlessFileStillLoads) {
  // Files written before the CRC footer existed end right after the last
  // record; stripping the footer must leave a loadable (legacy) file.
  const isa::Program program = cfir::testing::figure1_program(64, 50, 6);
  TempFile file("legacy");
  TraceMeta meta;
  meta.workload = "figure1";
  // Footer-less files are a v1-era artifact; CFIRTRC2 has carried the
  // footer from day one, so the legacy path is pinned to the v1 writer.
  const isa::InterpResult r = record_interpreter(
      program, file.path(), meta, UINT64_MAX, TraceFormat::kV1);

  std::vector<uint8_t> bytes = file_bytes(file.path());
  bytes.resize(bytes.size() - 8);  // drop "CRC1" + u32
  {
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  TraceReader reader(file.path());
  EXPECT_EQ(reader.record_count(), r.executed);
  TraceRecord rec;
  uint64_t n = 0;
  while (reader.next(rec)) ++n;
  EXPECT_EQ(n, r.executed);
}

TEST(TraceFormat, StrictBlobsRejectsLegacyFooterlessFiles) {
  // CFIR_STRICT_BLOBS=1 turns the one-time legacy warning into a hard
  // CorruptFileError — a fleet of post-CRC artifacts treats a missing
  // footer as truncation, not as age.
  const isa::Program program = cfir::testing::figure1_program(64, 50, 7);
  TempFile file("strict");
  TraceMeta meta;
  meta.workload = "figure1";
  (void)record_interpreter(program, file.path(), meta, UINT64_MAX,
                           TraceFormat::kV1);

  std::vector<uint8_t> bytes = file_bytes(file.path());
  bytes.resize(bytes.size() - 8);  // drop "CRC1" + u32
  {
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  ASSERT_EQ(setenv("CFIR_STRICT_BLOBS", "1", 1), 0);
  EXPECT_THROW(TraceReader{file.path()}, CorruptFileError);
  ASSERT_EQ(unsetenv("CFIR_STRICT_BLOBS"), 0);
  EXPECT_NO_THROW(TraceReader{file.path()});
}

TEST(TraceFormat, RandomProgramsRoundTrip) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const isa::Program program = cfir::testing::random_program(seed);
    const std::vector<TraceRecord> live = capture_live(program);
    TempFile file("rand" + std::to_string(seed));
    TraceMeta meta;
    meta.workload = "random";
    record_interpreter(program, file.path(), meta);

    TraceReader reader(file.path());
    ASSERT_EQ(reader.record_count(), live.size()) << "seed " << seed;
    TraceRecord rec;
    for (size_t i = 0; i < live.size(); ++i) {
      ASSERT_TRUE(reader.next(rec));
      ASSERT_EQ(rec, live[i]) << "seed " << seed << " record " << i;
    }
  }
}

TEST(TraceFormat, CoreCaptureMatchesInterpreterCapture) {
  // The detailed core commits the same architectural stream the
  // interpreter retires, so both capture paths must produce identical
  // traces.
  const isa::Program program = workloads::build("bzip2", 1);
  constexpr uint64_t kCap = 15000;

  TempFile interp_file("interp");
  TraceMeta meta;
  meta.workload = "bzip2";
  record_interpreter(program, interp_file.path(), meta, kCap);

  TempFile core_file("core");
  meta.base_pc = program.base();
  TraceWriter writer(core_file.path(), meta);
  sim::Simulator sim(sim::presets::ci(2, 512), program);
  sim.attach_trace(writer);
  const stats::SimStats st = sim.run(kCap);
  std::array<uint64_t, isa::kNumLogicalRegs> regs{};
  for (int i = 0; i < isa::kNumLogicalRegs; ++i) {
    regs[static_cast<size_t>(i)] = sim.arch_reg(i);
  }
  writer.finish(regs, sim.memory_digest());
  ASSERT_EQ(writer.records(), st.committed);

  TraceReader a(interp_file.path());
  TraceReader b(core_file.path());
  ASSERT_EQ(a.record_count(), b.record_count());
  EXPECT_EQ(a.final_digest(), b.final_digest());
  EXPECT_EQ(a.final_regs(), b.final_regs());
  TraceRecord ra, rb;
  for (uint64_t i = 0; i < a.record_count(); ++i) {
    ASSERT_TRUE(a.next(ra));
    ASSERT_TRUE(b.next(rb));
    ASSERT_EQ(ra, rb) << "record " << i << " differs";
  }
}

TEST(TraceReplay, AllWorkloadsMatchDirectSimulatorRun) {
  // Acceptance check: record + replay reproduces the same final digest and
  // architectural registers as a direct Simulator::run, for all twelve
  // workloads.
  constexpr uint64_t kCap = 12000;
  for (const std::string& wl : workloads::names()) {
    const isa::Program program = workloads::build(wl, 1);
    TempFile file("replay_" + wl);
    TraceMeta meta;
    meta.workload = wl;
    record_interpreter(program, file.path(), meta, kCap);

    const ReplayResult r = replay_trace(program, file.path());
    ASSERT_TRUE(r.match) << wl << ": " << r.mismatch;

    sim::Simulator sim(sim::presets::ci(2, 512), program);
    const stats::SimStats st = sim.run(kCap);
    EXPECT_EQ(st.committed, r.replayed) << wl;
    EXPECT_EQ(sim.memory_digest(), r.final_state.mem_digest) << wl;
    for (int i = 0; i < isa::kNumLogicalRegs; ++i) {
      ASSERT_EQ(sim.arch_reg(i), r.final_state.regs[static_cast<size_t>(i)])
          << wl << " r" << i;
    }
  }
}

TEST(TraceReplay, DetectsDivergence) {
  const isa::Program p1 = cfir::testing::figure1_program(128, 50, 3);
  const isa::Program p2 = cfir::testing::figure1_program(128, 50, 4);
  TempFile file("diverge");
  TraceMeta meta;
  meta.workload = "figure1";
  record_interpreter(p1, file.path(), meta);
  // Replaying a different program against p1's trace must not match.
  const ReplayResult r = replay_trace(p2, file.path());
  EXPECT_FALSE(r.match);
  EXPECT_FALSE(r.mismatch.empty());
}

TEST(TraceFormat, FuzzRandomRecordStreamsRoundTrip) {
  // The varint/delta codec must reproduce *arbitrary* record streams, not
  // just streams the interpreter can emit: adversarial pc jumps (large
  // positive and negative deltas), address swings across the whole 64-bit
  // space, and every kind/size combination. Both writers must survive it:
  // the row-oriented v1 codec and the columnar CFIRTRC2 one.
  for (const TraceFormat format : {TraceFormat::kV1, TraceFormat::kV2}) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    std::mt19937_64 gen(seed);
    std::vector<TraceRecord> records;
    uint64_t pc = gen();
    for (int i = 0; i < 2000; ++i) {
      TraceRecord rec;
      rec.pc = pc;
      switch (gen() % 4) {
        case 0:
          rec.kind = RecordKind::kPlain;
          break;
        case 1:
          rec.kind = RecordKind::kBranch;
          rec.taken = (gen() & 1) != 0;
          rec.next_pc = gen();
          break;
        case 2:
        case 3:
          rec.kind = (gen() & 1) != 0 ? RecordKind::kLoad
                                      : RecordKind::kStore;
          rec.addr = gen();
          rec.size = static_cast<uint8_t>(uint64_t{1} << (gen() % 4));
          break;
      }
      records.push_back(rec);
      // Mostly sequential pcs with occasional wild jumps, like real code.
      pc = (gen() % 8 == 0) ? gen() : pc + isa::kInstBytes;
    }

    TempFile file("fuzz" + std::to_string(seed));
    TraceMeta meta;
    meta.workload = "fuzz";
    meta.base_pc = records.front().pc;
    // A deliberately odd, small block capacity so the v2 stream spans
    // several blocks with ragged coder-base snapshots (v1 ignores it).
    TraceWriter writer(file.path(), meta, format, 257);
    for (const TraceRecord& rec : records) writer.append(rec);
    std::array<uint64_t, isa::kNumLogicalRegs> regs{};
    for (auto& r : regs) r = gen();
    const uint64_t digest = gen();
    writer.finish(regs, digest);

    TraceReader reader(file.path());
    ASSERT_EQ(reader.record_count(), records.size()) << "seed " << seed;
    EXPECT_EQ(reader.final_digest(), digest);
    EXPECT_EQ(reader.final_regs(), regs);
    TraceRecord rec;
    for (size_t i = 0; i < records.size(); ++i) {
      ASSERT_TRUE(reader.next(rec)) << "seed " << seed << " record " << i;
      ASSERT_EQ(rec, records[i]) << "seed " << seed << " record " << i;
    }
    EXPECT_FALSE(reader.next(rec));
  }
  }
}

namespace {
Checkpoint random_checkpoint(uint64_t seed, bool with_warm) {
  std::mt19937_64 gen(seed);
  Checkpoint ck;
  ck.pc = gen();
  ck.executed = gen();
  for (auto& r : ck.regs) r = gen();
  // A handful of sparse pages, some partially zero (the all-zero-page
  // dropping must be stable across round trips).
  for (int p = 0; p < 6; ++p) {
    const uint64_t base = (gen() % 1024) * mem::MainMemory::kPageSize;
    std::vector<uint8_t> page(mem::MainMemory::kPageSize, 0);
    const size_t fill = static_cast<size_t>(gen() % page.size());
    for (size_t b = 0; b < fill; ++b) page[b] = static_cast<uint8_t>(gen());
    ck.memory.write_block(base, page.data(), page.size());
  }
  if (with_warm) {
    ck.warm.resize(64 + gen() % 4096);
    for (auto& b : ck.warm) b = static_cast<uint8_t>(gen());
  }
  return ck;
}
}  // namespace

TEST(Checkpoint, FuzzSerializeDeserializeReserializeStable) {
  // save -> load -> save must be byte-identical, for cold (CFIRCKP1) and
  // warm (CFIRCKP2) checkpoints alike: shards exchanged between machines
  // must not mutate in flight.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (const bool with_warm : {false, true}) {
      const Checkpoint ck = random_checkpoint(seed, with_warm);
      TempFile first("ckfz_a" + std::to_string(seed) + (with_warm ? "w" : ""));
      TempFile second("ckfz_b" + std::to_string(seed) + (with_warm ? "w" : ""));
      ck.save(first.path());
      const Checkpoint loaded = Checkpoint::load(first.path());
      EXPECT_EQ(loaded.pc, ck.pc);
      EXPECT_EQ(loaded.executed, ck.executed);
      EXPECT_EQ(loaded.regs, ck.regs);
      EXPECT_EQ(loaded.memory.digest(), ck.memory.digest());
      EXPECT_EQ(loaded.warm, ck.warm);
      EXPECT_EQ(loaded.has_warm(), with_warm);
      loaded.save(second.path());
      EXPECT_EQ(file_bytes(first.path()), file_bytes(second.path()))
          << "seed " << seed << " warm " << with_warm;
    }
  }
}

TEST(Checkpoint, TruncatedWarmStateFailsLoudly) {
  const Checkpoint ck = random_checkpoint(3, /*with_warm=*/true);
  TempFile file("cktrunc");
  ck.save(file.path());
  std::vector<uint8_t> bytes = file_bytes(file.path());
  bytes.resize(bytes.size() - ck.warm.size() / 2);
  {
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(Checkpoint::load(file.path()), std::runtime_error);
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  const isa::Program program = workloads::build("gzip", 1);
  const Checkpoint ck = fast_forward(program, 5000);
  ASSERT_EQ(ck.executed, 5000u);

  TempFile file("ckpt");
  ck.save(file.path());
  const Checkpoint loaded = Checkpoint::load(file.path());
  EXPECT_EQ(loaded.pc, ck.pc);
  EXPECT_EQ(loaded.executed, ck.executed);
  EXPECT_EQ(loaded.regs, ck.regs);
  EXPECT_EQ(loaded.memory.digest(), ck.memory.digest());
}

TEST(Checkpoint, InterpreterResumeBitIdentical) {
  for (const char* wl : {"bzip2", "mcf", "parser"}) {
    const isa::Program program = workloads::build(wl, 1);
    const isa::InterpResult whole = isa::run_program(program);

    const Checkpoint ck = fast_forward(program, whole.executed / 2);
    mem::MainMemory memory = ck.memory.clone();
    isa::Interpreter interp(program, memory);
    interp.set_pc(ck.pc);
    for (int i = 0; i < isa::kNumLogicalRegs; ++i) {
      interp.set_reg(i, ck.regs[static_cast<size_t>(i)]);
    }
    interp.run();
    EXPECT_EQ(ck.executed + interp.executed(), whole.executed) << wl;
    EXPECT_EQ(interp.regs(), whole.regs) << wl;
    EXPECT_EQ(memory.digest(), whole.mem_digest) << wl;
  }
}

TEST(Checkpoint, CoreResumeBitIdentical) {
  // Detailed core resumed from a mid-run checkpoint must land on exactly
  // the architectural state of an uninterrupted run.
  for (const char* wl : {"bzip2", "twolf", "vpr"}) {
    const isa::Program program = workloads::build(wl, 1);
    const isa::InterpResult whole = isa::run_program(program);
    const core::CoreConfig config = sim::presets::ci(2, 512);

    const Checkpoint ck = fast_forward(program, whole.executed / 3);
    sim::Simulator resumed(config, program, ck);
    const stats::SimStats st = resumed.run(UINT64_MAX);
    EXPECT_EQ(ck.executed + st.committed, whole.executed) << wl;
    for (int i = 0; i < isa::kNumLogicalRegs; ++i) {
      ASSERT_EQ(resumed.arch_reg(i), whole.regs[static_cast<size_t>(i)])
          << wl << " r" << i;
    }
    EXPECT_EQ(resumed.memory_digest(), whole.mem_digest) << wl;
  }
}

TEST(Checkpoint, IntervalCheckpointsOnePassMatchesFastForward) {
  const isa::Program program = workloads::build("gap", 1);
  const std::vector<uint64_t> boundaries{0, 1000, 4000, 9000};
  const std::vector<Checkpoint> cks =
      interval_checkpoints(program, boundaries);
  ASSERT_EQ(cks.size(), boundaries.size());
  for (size_t i = 0; i < boundaries.size(); ++i) {
    const Checkpoint direct = fast_forward(program, boundaries[i]);
    EXPECT_EQ(cks[i].pc, direct.pc) << "boundary " << boundaries[i];
    EXPECT_EQ(cks[i].executed, direct.executed);
    EXPECT_EQ(cks[i].regs, direct.regs);
    EXPECT_EQ(cks[i].memory.digest(), direct.memory.digest());
  }
}

TEST(SampledRun, AggregateMatchesMonolithic) {
  // Architectural counters must match a monolithic run exactly (the
  // intervals partition the same committed stream); timing counters carry
  // per-interval cold-start effects, so IPC gets a tolerance.
  // Scale 4 keeps intervals long enough that per-interval cold-start cost
  // (empty predictors and caches) stays a bounded fraction of the interval.
  // Workloads whose monolithic run is dominated by a one-time training
  // phase (vortex) exceed any honest tolerance until detailed warm-up
  // windows exist (ROADMAP open item) and are excluded here.
  const core::CoreConfig config = sim::presets::ci(2, 512);
  for (const char* wl : {"bzip2", "eon", "gcc", "twolf"}) {
    const isa::Program program = workloads::build(wl, 4);
    sim::Simulator mono(config, program);
    const stats::SimStats whole = mono.run(UINT64_MAX);

    const SampledRun sampled =
        sampled_run(config, program, /*k=*/5, /*max_insts=*/0, /*threads=*/2);
    EXPECT_EQ(sampled.intervals.size(), 5u) << wl;
    EXPECT_EQ(sampled.total_insts, whole.committed) << wl;
    EXPECT_EQ(sampled.aggregate.committed, whole.committed) << wl;
    EXPECT_EQ(sampled.aggregate.committed_loads, whole.committed_loads) << wl;
    EXPECT_EQ(sampled.aggregate.committed_stores, whole.committed_stores)
        << wl;
    EXPECT_EQ(sampled.aggregate.committed_branches, whole.committed_branches)
        << wl;
    EXPECT_EQ(sampled.aggregate.cond_branches, whole.cond_branches) << wl;
    EXPECT_TRUE(sampled.aggregate.halted) << wl;
    ASSERT_GT(sampled.aggregate.ipc(), 0.0) << wl;
    const double rel =
        std::abs(sampled.aggregate.ipc() - whole.ipc()) / whole.ipc();
    EXPECT_LT(rel, 0.30) << wl << ": sampled IPC " << sampled.aggregate.ipc()
                         << " vs monolithic " << whole.ipc();
  }
}

TEST(SampledRun, CappedRunCoversExactlyTheCap) {
  const isa::Program program = workloads::build("crafty", 1);
  const core::CoreConfig config = sim::presets::scal(2, 256);
  const SampledRun sampled =
      sampled_run(config, program, /*k=*/4, /*max_insts=*/8000);
  EXPECT_EQ(sampled.total_insts, 8000u);
  EXPECT_EQ(sampled.aggregate.committed, 8000u);
  uint64_t covered = 0;
  for (const auto& interval : sampled.intervals) covered += interval.length;
  EXPECT_EQ(covered, 8000u);
}

TEST(SampledRun, ImmediateHaltProgramReportsHalted) {
  // A program that halts at instruction 0 has one empty interval; the
  // sampler must still retire HALT and report halted like a monolithic run.
  const isa::Program program = isa::assemble_text("halt");
  const core::CoreConfig config = sim::presets::scal(2, 256);
  const SampledRun sampled = sampled_run(config, program, /*k=*/4);
  EXPECT_EQ(sampled.total_insts, 0u);
  EXPECT_EQ(sampled.aggregate.committed, 0u);
  EXPECT_TRUE(sampled.aggregate.halted);
}

TEST(SampledRun, ZeroWarmupCapturesCheckpointsAtBoundaries) {
  const isa::Program program = workloads::build("gzip", 1);
  const IntervalPlan plan =
      plan_intervals(program, /*k=*/4, /*max_insts=*/0, /*warmup=*/0);
  ASSERT_EQ(plan.checkpoints.size(), plan.boundaries.size());
  for (size_t i = 0; i < plan.boundaries.size(); ++i) {
    EXPECT_EQ(plan.checkpoints[i].executed, plan.boundaries[i]) << i;
  }
  const SampledRun run =
      sampled_run(sim::presets::scal(2, 256), program, plan);
  for (const auto& interval : run.intervals) {
    EXPECT_EQ(interval.warmup, 0u);
  }
}

TEST(SampledRun, OversizedWarmupClampsToRunStart) {
  // A warm-up longer than the distance to the run start (and longer than
  // the spacing between intervals) must clamp to instruction 0, not
  // underflow — every interval's effective warm-up is exactly its prefix.
  const isa::Program program = workloads::build("gzip", 1);
  const uint64_t huge = 1 << 30;
  const IntervalPlan plan =
      plan_intervals(program, /*k=*/3, /*max_insts=*/0, /*warmup=*/huge);
  ASSERT_EQ(plan.checkpoints.size(), 3u);
  for (size_t i = 0; i < plan.checkpoints.size(); ++i) {
    EXPECT_EQ(plan.checkpoints[i].executed, 0u) << i;
  }
  const core::CoreConfig config = sim::presets::scal(2, 256);
  const SampledRun run = sampled_run(config, program, plan);
  for (size_t i = 0; i < run.intervals.size(); ++i) {
    EXPECT_EQ(run.intervals[i].warmup, plan.boundaries[i]) << i;
  }
  // Warm-up re-executes each prefix but is subtracted back out, so the
  // union still commits exactly the monolithic stream.
  sim::Simulator mono(config, program);
  const stats::SimStats mono_stats = mono.run(UINT64_MAX);
  EXPECT_EQ(run.aggregate.committed, mono_stats.committed);
  EXPECT_EQ(run.aggregate.committed_stores, mono_stats.committed_stores);
}

TEST(SampledRun, WarmupLongerThanIntervalSpacingOverlapsSafely) {
  // k=6 on a short run: the spacing between boundaries is far smaller than
  // the warm-up, so every warm-up window overlaps several earlier
  // intervals. The re-execution is redundant but must stay correct.
  const isa::Program program = workloads::build("crafty", 1);
  const core::CoreConfig config = sim::presets::scal(2, 256);
  const IntervalPlan plan =
      plan_intervals(program, /*k=*/6, /*max_insts=*/6000, /*warmup=*/5000);
  const SampledRun run = sampled_run(config, program, plan);
  EXPECT_EQ(run.aggregate.committed, 6000u);
  for (size_t i = 0; i < run.intervals.size(); ++i) {
    EXPECT_LE(run.intervals[i].warmup, plan.boundaries[i]) << i;
  }
  // Cost accounting includes the overlapping warm-ups.
  EXPECT_GT(run.detailed_insts, run.aggregate.committed);
}

TEST(SampledRun, NoneWarmModeIgnoresWarmupKnob) {
  const isa::Program program = workloads::build("gzip", 1);
  const IntervalPlan plan = plan_intervals(
      program, /*k=*/4, /*max_insts=*/0, /*warmup=*/12345, WarmMode::kNone);
  for (size_t i = 0; i < plan.boundaries.size(); ++i) {
    EXPECT_EQ(plan.checkpoints[i].executed, plan.boundaries[i]) << i;
  }
  const SampledRun run =
      sampled_run(sim::presets::scal(2, 256), program, plan);
  EXPECT_EQ(run.warmed_insts, 0u);
  for (const auto& interval : run.intervals) {
    EXPECT_EQ(interval.warmup, 0u);
  }
}

TEST(SampledRun, DetailCapScalesWeightsAndCutsCost) {
  const isa::Program program = workloads::build("bzip2", 2);
  const core::CoreConfig config = sim::presets::scal(2, 256);
  const IntervalPlan full_plan = plan_intervals(program, 4);
  const IntervalPlan capped_plan =
      plan_intervals(program, 4, 0, 0, WarmMode::kFunctional,
                     /*detail_len=*/1500);
  ASSERT_EQ(capped_plan.lengths.size(), full_plan.lengths.size());
  for (size_t i = 0; i < capped_plan.lengths.size(); ++i) {
    EXPECT_LE(capped_plan.lengths[i], 1500u);
    // weight * measured == original interval population (extrapolation).
    EXPECT_NEAR(capped_plan.weights[i] *
                    static_cast<double>(capped_plan.lengths[i]),
                static_cast<double>(full_plan.lengths[i]),
                1e-6 * static_cast<double>(full_plan.lengths[i]));
  }
  const SampledRun run = sampled_run(config, program, capped_plan);
  EXPECT_LE(run.detailed_insts, 4 * 1500u);
  EXPECT_GT(run.warmed_insts, 0u);
  // The extrapolated committed-instruction estimate lands near the truth.
  const double est = static_cast<double>(run.aggregate.committed);
  const double truth = static_cast<double>(capped_plan.total_insts);
  EXPECT_NEAR(est, truth, 0.01 * truth);
}

TEST(SampledRun, FunctionalWarmStatesAttachAndShard) {
  // attach_warm_states embeds per-interval warm blobs; a plan whose
  // checkpoints round-trip through CFIRCKP2 files must produce the exact
  // same sampled run (shardability).
  const isa::Program program = workloads::build("twolf", 2);
  const core::CoreConfig config = sim::presets::ci(2, 512);
  IntervalPlan plan = plan_intervals(program, 3, 0, 0, WarmMode::kFunctional);
  const SampledRun before = sampled_run(config, program, plan);

  attach_warm_states(plan, config, program);
  for (const Checkpoint& ck : plan.checkpoints) {
    EXPECT_TRUE(ck.has_warm());
  }
  // Round-trip every checkpoint through its v2 file form.
  for (Checkpoint& ck : plan.checkpoints) {
    TempFile file("shard");
    ck.save(file.path());
    ck = Checkpoint::load(file.path());
    EXPECT_TRUE(ck.has_warm());
  }
  const SampledRun after = sampled_run(config, program, plan);
  EXPECT_EQ(before.aggregate.cycles, after.aggregate.cycles);
  EXPECT_EQ(before.aggregate.committed, after.aggregate.committed);
  EXPECT_EQ(before.aggregate.mispredicts, after.aggregate.mispredicts);
  EXPECT_EQ(before.aggregate.l1d_misses, after.aggregate.l1d_misses);
  EXPECT_EQ(before.warmed_insts, after.warmed_insts);
}

TEST(SampledRun, RunAllIntervalsFieldAggregates) {
  // RunSpec::intervals routes a sweep grid point through the sampler.
  sim::RunSpec mono;
  mono.workload = "twolf";
  mono.config_name = "mono";
  mono.config = sim::presets::ci(2, 512);
  mono.max_insts = 10000;
  sim::RunSpec sampled = mono;
  sampled.config_name = "sampled";
  sampled.intervals = 4;
  const auto out = sim::run_all({mono, sampled}, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].stats.committed, out[1].stats.committed);
  EXPECT_EQ(out[0].stats.committed_stores, out[1].stats.committed_stores);
}

}  // namespace
}  // namespace cfir::trace
