// The plan / execute / merge decomposition of sampled simulation
// (trace/manifest.hpp, trace/shard.hpp):
//
//  - manifest and shard-result blobs are byte-stable across
//    serialize -> deserialize -> re-serialize (shards exchanged between
//    machines must not mutate in flight) and reject corruption with the
//    typed errors trace_tool maps to exit codes;
//  - running a plan's intervals as N shards and merging the results is
//    bit-identical to the single-process trace::sampled_run, for any N,
//    any merge order, and through the full manifest-file round trip;
//  - a config GRID bound to one plan (CFIRMAN2: shared checkpoints,
//    per-(interval, config) warm state) merges to per-config columns each
//    bit-identical to that config's single-config sampled_run — the
//    acceptance matrix covers bzip2/parser/twolf s8 under functional
//    warming for a 3-point register grid — while the shared streaming
//    pass keeps grid warming cost within 1.1x of a single config's;
//  - legacy v1 manifests still load (as 1-config manifests) and verify;
//  - mismatched plans/configs and incomplete/duplicate shard sets are
//    rejected at merge time instead of silently skewing the aggregate.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "helpers.hpp"
#include "sim/presets.hpp"
#include "trace/blob.hpp"
#include "trace/errors.hpp"
#include "trace/manifest.hpp"
#include "trace/sampling.hpp"
#include "trace/shard.hpp"
#include "workloads/workloads.hpp"

namespace cfir::trace {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(::testing::TempDir() + "cfir_shard_" + tag + ".bin") {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A manifest written by either write_manifest overload plus its
/// checkpoint blobs and warm sidecars, all removed on destruction.
class TempManifest {
 public:
  TempManifest(const IntervalPlan& plan, const core::CoreConfig& config,
               const std::string& workload, uint32_t scale,
               const std::string& tag)
      : path_(::testing::TempDir() + "cfir_man_" + tag + ".cfirman"),
        manifest_(write_manifest(plan, config, workload, scale, path_)) {}
  TempManifest(const IntervalPlan& plan,
               const std::vector<ConfigBinding>& bindings,
               const std::string& workload, uint32_t scale,
               const std::string& tag)
      : path_(::testing::TempDir() + "cfir_man_" + tag + ".cfirman"),
        manifest_(write_manifest(plan, bindings, workload, scale, path_)) {}
  ~TempManifest() {
    std::remove(path_.c_str());
    const std::string dir = path_.substr(0, path_.find_last_of('/') + 1);
    for (const auto& iv : manifest_.intervals) {
      std::remove((dir + iv.checkpoint_file).c_str());
      for (const std::string& wf : iv.warm_files) {
        if (!wf.empty()) std::remove((dir + wf).c_str());
      }
    }
  }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const ShardManifest& manifest() const { return manifest_; }

 private:
  std::string path_;
  ShardManifest manifest_;
};

core::CoreConfig random_config(std::mt19937_64& gen) {
  core::CoreConfig cfg = sim::presets::ci(
      static_cast<uint32_t>(gen() % 2 + 1),
      static_cast<uint32_t>(128u << (gen() % 3)));
  cfg.gshare_history_bits = static_cast<uint32_t>(gen() % 8 + 8);
  cfg.replicas = static_cast<uint32_t>(gen() % 8 + 1);
  cfg.watchdog_cycles = gen() % 100000 + 1;
  return cfg;
}

ShardManifest random_manifest(uint64_t seed) {
  std::mt19937_64 gen(seed);
  ShardManifest m;
  m.workload = "wl" + std::to_string(gen() % 1000);
  m.scale = static_cast<uint32_t>(gen() % 16 + 1);
  m.plan_hash = gen();
  m.mode = (gen() & 1) != 0 ? SampleMode::kCluster : SampleMode::kUniform;
  m.warm_mode = static_cast<WarmMode>(gen() % 4);
  m.warmup = gen() % 100000;
  m.total_insts = gen();
  m.interval_len = gen() % 100000;
  m.ran_to_halt = (gen() & 1) != 0;
  const size_t nc = gen() % 3 + 1;
  m.configs.resize(nc);
  for (size_t c = 0; c < nc; ++c) {
    m.configs[c].name = "cfg" + std::to_string(c);
    m.configs[c].config_hash = gen();
    m.configs[c].config = random_config(gen);
    m.configs[c].embedded = true;
  }
  const size_t n = gen() % 8;
  m.intervals.resize(n);
  for (size_t i = 0; i < n; ++i) {
    m.intervals[i].start = gen();
    m.intervals[i].length = gen();
    m.intervals[i].weight =
        static_cast<double>(gen() % 10000) / 16.0;  // exact in binary
    m.intervals[i].checkpoint_file = "ck" + std::to_string(i) + ".cfirckpt";
    m.intervals[i].warm_files.resize(nc);
    for (size_t c = 0; c < nc; ++c) {
      if ((gen() & 1) != 0) {
        m.intervals[i].warm_files[c] = "ck" + std::to_string(i) + ".cfg" +
                                       std::to_string(c) + ".cfirwarm";
      }
    }
  }
  return m;
}

ShardResult random_shard_result(uint64_t seed) {
  std::mt19937_64 gen(seed);
  ShardResult r;
  r.plan_hash = gen();
  r.shard_count = static_cast<uint32_t>(gen() % 7 + 1);
  r.shard_index = static_cast<uint32_t>(gen() % r.shard_count);
  r.plan_intervals = static_cast<uint32_t>(gen() % 16 + 1);
  r.total_insts = gen();
  r.ran_to_halt = (gen() & 1) != 0;
  r.warmed_insts = gen() % 1000000;
  r.warm_wall_us = gen() % 1000000;
  const size_t nc = gen() % 3 + 1;
  r.configs.resize(nc);
  for (size_t c = 0; c < nc; ++c) {
    r.configs[c].name = "cfg" + std::to_string(c);
    r.configs[c].config_hash = gen();
    r.configs[c].detailed_insts = gen() % 1000000;
  }
  const size_t n = gen() % 5;
  r.intervals.resize(n);
  for (size_t i = 0; i < n; ++i) {
    r.intervals[i].plan_index = static_cast<uint32_t>(gen() % 16);
    r.intervals[i].start_inst = gen();
    r.intervals[i].length = gen();
    r.intervals[i].warmup = gen() % 10000;
    r.intervals[i].weight = static_cast<double>(gen() % 10000) / 16.0;
    r.intervals[i].stats.resize(nc);
    r.intervals[i].wall_us.resize(nc);
    for (size_t c = 0; c < nc; ++c) {
      r.intervals[i].stats[c] = cfir::testing::random_sim_stats(gen);
      r.intervals[i].wall_us[c] = gen() % 10000000;
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Blob byte stability and corruption rejection
// ---------------------------------------------------------------------------

TEST(ShardManifestBlob, FuzzSerializeDeserializeReserializeStable) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    const ShardManifest m = random_manifest(seed);
    const std::vector<uint8_t> first = m.serialize();
    const ShardManifest loaded = ShardManifest::deserialize(first);
    EXPECT_EQ(loaded.version, kManifestVersion) << "seed " << seed;
    EXPECT_EQ(loaded.workload, m.workload) << "seed " << seed;
    EXPECT_EQ(loaded.plan_hash, m.plan_hash) << "seed " << seed;
    ASSERT_EQ(loaded.configs.size(), m.configs.size()) << "seed " << seed;
    for (size_t c = 0; c < m.configs.size(); ++c) {
      EXPECT_EQ(loaded.configs[c].name, m.configs[c].name);
      EXPECT_EQ(loaded.configs[c].config_hash, m.configs[c].config_hash);
      EXPECT_TRUE(loaded.configs[c].embedded);
      EXPECT_EQ(loaded.configs[c].config.digest(),
                m.configs[c].config.digest())
          << "seed " << seed << " config " << c;
    }
    EXPECT_EQ(loaded.intervals.size(), m.intervals.size())
        << "seed " << seed;
    EXPECT_EQ(loaded.serialize(), first) << "seed " << seed;
  }
}

TEST(ShardManifestBlob, V1LayoutRoundTripsByteStable) {
  // A ShardManifest loaded from a legacy CFIRMAN1 file keeps version 1 and
  // re-serializes to the same bytes — v1 artifacts survive tooling passes.
  std::mt19937_64 gen(11);
  ShardManifest m;
  m.version = 1;
  m.workload = "bzip2";
  m.scale = 8;
  m.plan_hash = gen();
  m.mode = SampleMode::kCluster;
  m.warm_mode = WarmMode::kFunctional;
  m.warmup = 300;
  m.total_insts = gen();
  m.interval_len = 1000;
  m.ran_to_halt = true;
  ShardManifest::ConfigPoint cp;
  cp.config_hash = m.plan_hash;
  m.configs.push_back(cp);
  m.intervals.resize(3);
  for (size_t i = 0; i < 3; ++i) {
    m.intervals[i].start = gen();
    m.intervals[i].length = gen();
    m.intervals[i].weight = static_cast<double>(gen() % 100) / 4.0;
    m.intervals[i].checkpoint_file = "ck" + std::to_string(i) + ".cfirckpt";
  }
  const std::vector<uint8_t> first = m.serialize();
  ASSERT_GE(first.size(), 8u);
  EXPECT_EQ(std::string(first.begin(), first.begin() + 8), "CFIRMAN1");
  const ShardManifest loaded = ShardManifest::deserialize(first);
  EXPECT_EQ(loaded.version, 1u);
  ASSERT_EQ(loaded.configs.size(), 1u);
  EXPECT_EQ(loaded.configs[0].config_hash, m.plan_hash);
  EXPECT_FALSE(loaded.configs[0].embedded);
  EXPECT_TRUE(loaded.intervals[0].warm_files.empty());
  EXPECT_EQ(loaded.serialize(), first);
}

TEST(ShardManifestBlob, FileRoundTripVerifiesCrc) {
  const ShardManifest m = random_manifest(7);
  TempFile file("man_crc");
  m.save(file.path());
  const ShardManifest loaded = ShardManifest::load(file.path());
  EXPECT_EQ(loaded.serialize(), m.serialize());

  // Flip one payload byte: the CRC footer must catch it.
  {
    std::FILE* f = std::fopen(file.path().c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 12, SEEK_SET);
    std::fputc(0xA5, f);
    std::fclose(f);
  }
  EXPECT_THROW((void)ShardManifest::load(file.path()), CorruptFileError);
}

TEST(ShardManifestBlob, TruncationAndWrongKindRejected) {
  const ShardManifest m = random_manifest(9);
  std::vector<uint8_t> payload = m.serialize();

  std::vector<uint8_t> truncated(payload.begin(), payload.begin() + 24);
  EXPECT_THROW((void)ShardManifest::deserialize(truncated), CorruptFileError);

  std::vector<uint8_t> wrong = payload;
  wrong[0] = 'X';
  EXPECT_THROW((void)ShardManifest::deserialize(wrong), BadMagicError);

  std::vector<uint8_t> vers = payload;
  vers[8] = 99;  // u32 version little-endian LSB
  EXPECT_THROW((void)ShardManifest::deserialize(vers), VersionError);

  // A file missing its (mandatory) footer is rejected even when the
  // payload itself is intact.
  TempFile file("man_nofooter");
  {
    std::FILE* f = std::fopen(file.path().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(payload.data(), 1, payload.size(), f);
    std::fclose(f);
  }
  EXPECT_THROW((void)ShardManifest::load(file.path()), CorruptFileError);
}

TEST(ShardResultBlob, FuzzSerializeDeserializeReserializeStable) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    const ShardResult r = random_shard_result(seed);
    const std::vector<uint8_t> first = r.serialize();
    const ShardResult loaded = ShardResult::deserialize(first);
    EXPECT_EQ(loaded.plan_hash, r.plan_hash) << "seed " << seed;
    ASSERT_EQ(loaded.configs.size(), r.configs.size()) << "seed " << seed;
    for (size_t c = 0; c < r.configs.size(); ++c) {
      EXPECT_EQ(loaded.configs[c].name, r.configs[c].name);
      EXPECT_EQ(loaded.configs[c].config_hash, r.configs[c].config_hash);
      EXPECT_EQ(loaded.configs[c].detailed_insts,
                r.configs[c].detailed_insts);
    }
    EXPECT_EQ(loaded.warm_wall_us, r.warm_wall_us) << "seed " << seed;
    ASSERT_EQ(loaded.intervals.size(), r.intervals.size())
        << "seed " << seed;
    for (size_t i = 0; i < r.intervals.size(); ++i) {
      for (size_t c = 0; c < r.configs.size(); ++c) {
        EXPECT_EQ(stats::to_json(loaded.intervals[i].stats[c]),
                  stats::to_json(r.intervals[i].stats[c]))
            << "seed " << seed << " interval " << i << " config " << c;
        EXPECT_EQ(loaded.intervals[i].wall_us[c], r.intervals[i].wall_us[c])
            << "seed " << seed << " interval " << i << " config " << c;
      }
    }
    EXPECT_EQ(loaded.serialize(), first) << "seed " << seed;
  }
}

// A version-2 blob (pre wall-telemetry) must still load, with every wall
// field zero: hosts in a farm upgrade at different times, and the merged
// SimStats never depended on the wall fields anyway.
TEST(ShardResultBlob, Version2BlobLoadsWithZeroWallFields) {
  const ShardResult r = random_shard_result(7);
  util::ByteWriter out;
  for (const char c : kShardMagicV2) out.u8(static_cast<uint8_t>(c));
  out.u32(kShardVersionNoWall);
  out.u32(0);  // reserved
  out.u64(r.plan_hash);
  out.u32(r.shard_index);
  out.u32(r.shard_count);
  out.u32(r.plan_intervals);
  out.u64(r.total_insts);
  out.boolean(r.ran_to_halt);
  out.u64(r.warmed_insts);
  // v2 layout: no warm_wall_us here.
  out.u32(static_cast<uint32_t>(r.configs.size()));
  for (const auto& cc : r.configs) {
    put_string(out, cc.name);
    out.u64(cc.config_hash);
    out.u64(cc.detailed_insts);
  }
  out.u32(static_cast<uint32_t>(r.intervals.size()));
  for (const auto& iv : r.intervals) {
    out.u32(iv.plan_index);
    out.u64(iv.start_inst);
    out.u64(iv.length);
    out.u64(iv.warmup);
    out.u64(std::bit_cast<uint64_t>(iv.weight));
    for (const stats::SimStats& st : iv.stats) stats::serialize(st, out);
    // v2 layout: no per-(interval, config) wall_us here.
  }

  const ShardResult loaded = ShardResult::deserialize(out.take());
  EXPECT_EQ(loaded.plan_hash, r.plan_hash);
  EXPECT_EQ(loaded.warmed_insts, r.warmed_insts);
  EXPECT_EQ(loaded.warm_wall_us, 0u);
  ASSERT_EQ(loaded.intervals.size(), r.intervals.size());
  for (size_t i = 0; i < r.intervals.size(); ++i) {
    ASSERT_EQ(loaded.intervals[i].wall_us.size(), r.configs.size());
    for (const uint64_t w : loaded.intervals[i].wall_us) EXPECT_EQ(w, 0u);
    for (size_t c = 0; c < r.configs.size(); ++c) {
      EXPECT_EQ(stats::to_json(loaded.intervals[i].stats[c]),
                stats::to_json(r.intervals[i].stats[c]));
    }
  }
}

TEST(ShardResultBlob, WrongKindAndVersionRejected) {
  const ShardResult r = random_shard_result(3);
  std::vector<uint8_t> payload = r.serialize();
  std::vector<uint8_t> wrong = payload;
  wrong[3] = 'Z';
  EXPECT_THROW((void)ShardResult::deserialize(wrong), BadMagicError);
  std::vector<uint8_t> vers = payload;
  vers[8] = 99;
  EXPECT_THROW((void)ShardResult::deserialize(vers), VersionError);
  // A CFIRSHD1 magic claiming version 2 is inconsistent, and vice versa.
  std::vector<uint8_t> mixed = payload;
  mixed[7] = '1';
  EXPECT_THROW((void)ShardResult::deserialize(mixed), VersionError);
  payload.resize(payload.size() / 2);
  EXPECT_THROW((void)ShardResult::deserialize(payload), CorruptFileError);
}

TEST(ParseShard, AcceptsValidRejectsMalformed) {
  const ShardSelection s = parse_shard("2/5");
  EXPECT_EQ(s.index, 2u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_TRUE(s.covers(2));
  EXPECT_TRUE(s.covers(7));
  EXPECT_FALSE(s.covers(3));
  EXPECT_THROW((void)parse_shard("5/5"), std::runtime_error);
  EXPECT_THROW((void)parse_shard("0"), std::runtime_error);
  EXPECT_THROW((void)parse_shard("a/b"), std::runtime_error);
  EXPECT_THROW((void)parse_shard("1/0"), std::runtime_error);
  EXPECT_THROW((void)parse_shard("1/2x"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Sharded == unsharded
// ---------------------------------------------------------------------------

/// Every per-interval stat block and the aggregate must match bit for bit.
void expect_same_run(const SampledRun& a, const SampledRun& b,
                     const std::string& label) {
  ASSERT_EQ(a.intervals.size(), b.intervals.size()) << label;
  for (size_t i = 0; i < a.intervals.size(); ++i) {
    EXPECT_EQ(a.intervals[i].start_inst, b.intervals[i].start_inst)
        << label << " interval " << i;
    EXPECT_EQ(a.intervals[i].warmup, b.intervals[i].warmup)
        << label << " interval " << i;
    EXPECT_EQ(stats::to_json(a.intervals[i].stats),
              stats::to_json(b.intervals[i].stats))
        << label << " interval " << i;
  }
  EXPECT_EQ(a.total_insts, b.total_insts) << label;
  EXPECT_EQ(a.detailed_insts, b.detailed_insts) << label;
  EXPECT_EQ(a.warmed_insts, b.warmed_insts) << label;
  EXPECT_EQ(stats::to_json(a.aggregate), stats::to_json(b.aggregate))
      << label;
}

TEST(ShardedRun, AnyShardCountMergesBitIdentical) {
  const core::CoreConfig config = sim::presets::ci(2, 512);
  const isa::Program program = workloads::build("bzip2", 1);
  const IntervalPlan plan =
      plan_intervals(program, 5, /*max_insts=*/40000, /*warmup=*/500,
                     WarmMode::kDetailed);
  const SampledRun reference = sampled_run(config, program, plan);

  for (const uint32_t n : {2u, 3u, 5u}) {
    std::vector<ShardResult> shards;
    for (uint32_t i = 0; i < n; ++i) {
      shards.push_back(
          run_shard(config, program, plan, ShardSelection{i, n}));
    }
    // Merge order must not matter: reverse the shard list.
    std::reverse(shards.begin(), shards.end());
    expect_same_run(merge_shard_results(shards), reference,
                    "N=" + std::to_string(n));
  }
}

TEST(ShardedRun, SerializedShardsMergeBitIdentical) {
  // The full wire path: each shard result passes through its CFIRSHD2 blob
  // before merging, as it would between machines.
  const core::CoreConfig config = sim::presets::ci(2, 512);
  const isa::Program program = workloads::build("parser", 1);

  ClusterPlanOptions opts;
  opts.n_intervals = 8;
  opts.max_k = 3;
  opts.warm_mode = WarmMode::kFunctional;
  opts.detail_len = 1500;
  opts.max_insts = 40000;
  IntervalPlan plan = plan_cluster_intervals(program, opts);
  attach_warm_states(plan, config, program);
  const SampledRun reference = sampled_run(config, program, plan);

  std::vector<ShardResult> shards;
  for (uint32_t i = 0; i < 2; ++i) {
    const ShardResult r =
        run_shard(config, program, plan, ShardSelection{i, 2});
    TempFile file("wire" + std::to_string(i));
    r.save(file.path());
    shards.push_back(ShardResult::load(file.path()));
  }
  expect_same_run(merge_shard_results(shards), reference, "wire");
}

TEST(ShardedRun, V1ManifestRoundTripRunsBitIdentical) {
  // Legacy plan layer to disk and back: a plan reloaded from a v1 manifest
  // (warm state riding in the CFIRCKP2 checkpoints, config supplied by the
  // executor) must reproduce the in-memory plan's sampled run exactly, and
  // the combined config hash must accept the planning config and reject
  // others — the "v1 manifests still load" contract.
  const core::CoreConfig config = sim::presets::ci(2, 512);
  const isa::Program program = workloads::build("twolf", 1);

  ClusterPlanOptions opts;
  opts.n_intervals = 8;
  opts.max_k = 3;
  opts.warm_mode = WarmMode::kHybrid;
  opts.warmup = 300;
  opts.detail_len = 1500;
  opts.max_insts = 40000;
  IntervalPlan plan = plan_cluster_intervals(program, opts);
  attach_warm_states(plan, config, program);
  const SampledRun reference = sampled_run(config, program, plan);

  TempManifest tm(plan, config, "twolf", 1, "roundtrip");
  EXPECT_EQ(tm.manifest().version, 1u);
  const ShardManifest manifest = ShardManifest::load(tm.path());
  EXPECT_EQ(manifest.version, 1u);
  EXPECT_EQ(manifest.plan_hash, tm.manifest().plan_hash);
  ASSERT_EQ(manifest.configs.size(), 1u);
  EXPECT_FALSE(manifest.configs[0].embedded);
  EXPECT_THROW((void)bindings_from_manifest(manifest, tm.path()),
               VersionError);

  const IntervalPlan reloaded = plan_from_manifest(manifest, tm.path());
  verify_manifest_config(manifest, config, reloaded);  // must not throw

  core::CoreConfig other = config;
  other.num_phys_regs = 256;
  EXPECT_THROW(verify_manifest_config(manifest, other, reloaded),
               ConfigMismatchError);

  std::vector<ShardResult> shards;
  for (uint32_t i = 0; i < 2; ++i) {
    shards.push_back(run_shard(config, program, reloaded,
                               ShardSelection{i, 2}, /*threads=*/0,
                               manifest.plan_hash));
  }
  expect_same_run(merge_shard_results(shards), reference, "manifest");
}

TEST(ShardedRun, MergeRejectsIncompleteDuplicateAndMismatched) {
  const core::CoreConfig config = sim::presets::ci(2, 512);
  const isa::Program program = workloads::build("bzip2", 1);
  const IntervalPlan plan = plan_intervals(program, 4, 20000);

  const ShardResult s0 =
      run_shard(config, program, plan, ShardSelection{0, 2});
  const ShardResult s1 =
      run_shard(config, program, plan, ShardSelection{1, 2});

  EXPECT_THROW((void)merge_shard_results({s0}), CorruptFileError);       // missing
  EXPECT_THROW((void)merge_shard_results({s0, s0}), CorruptFileError);   // dup
  ShardResult tampered = s1;
  tampered.plan_hash = 0xDEADBEEF;
  EXPECT_THROW((void)merge_shard_results({s0, tampered}), ConfigMismatchError);
  ShardResult wrong_grid = s1;
  wrong_grid.configs[0].config_hash ^= 1;
  EXPECT_THROW((void)merge_shard_results({s0, wrong_grid}),
               ConfigMismatchError);
  EXPECT_NO_THROW((void)merge_shard_results({s0, s1}));
  EXPECT_NO_THROW((void)merge_shard_results({s1, s0}));  // any order
}

// ---------------------------------------------------------------------------
// Config grids: one plan, one checkpoint set, per-config columns
// ---------------------------------------------------------------------------

std::vector<std::pair<std::string, core::CoreConfig>> register_grid() {
  std::vector<std::pair<std::string, core::CoreConfig>> points;
  for (const uint32_t regs : {128u, 256u, 512u}) {
    core::CoreConfig config = sim::presets::ci(2, regs);
    points.emplace_back(config.label(), config);
  }
  return points;
}

TEST(ConfigGrid, SharedWarmingIsAmortizedAcrossConfigs) {
  // The acceptance bound: warming a 3-config grid must cost at most 1.1x
  // the warmed instructions of a single config — the streaming pass is
  // shared, so the counts are in fact equal.
  const isa::Program program = workloads::build("bzip2", 1);
  const IntervalPlan plan =
      plan_intervals(program, 4, /*max_insts=*/30000, /*warmup=*/0,
                     WarmMode::kFunctional, /*detail_len=*/1000);
  const auto points = register_grid();

  const ShardResult single =
      run_shard(points[0].second, program, plan);
  ASSERT_GT(single.warmed_insts, 0u);

  const ShardResult grid = run_shard(bind_configs(plan, points, program),
                                     program, plan);
  ASSERT_EQ(grid.configs.size(), 3u);
  EXPECT_LE(static_cast<double>(grid.warmed_insts),
            1.1 * static_cast<double>(single.warmed_insts));

  // And when warming is deferred to execute time (no pre-bound blobs),
  // run_shard's one shared capture pass keeps the same bound.
  std::vector<ConfigBinding> cold;
  for (const auto& [name, config] : points) {
    ConfigBinding b;
    b.name = name;
    b.config = config;
    cold.push_back(std::move(b));
  }
  const ShardResult deferred = run_shard(cold, program, plan);
  EXPECT_LE(static_cast<double>(deferred.warmed_insts),
            1.1 * static_cast<double>(single.warmed_insts));
}

TEST(ConfigGrid, GridColumnsMatchSingleConfigRuns) {
  // Bound or deferred, every grid column must be bit-identical to the
  // single-config run of the same plan.
  const isa::Program program = workloads::build("parser", 1);
  const IntervalPlan plan =
      plan_intervals(program, 4, /*max_insts=*/30000, /*warmup=*/0,
                     WarmMode::kFunctional, /*detail_len=*/1000);
  const auto points = register_grid();

  const ShardResult grid = run_shard(bind_configs(plan, points, program),
                                     program, plan);
  const MergedGrid merged = merge_shard_grid({grid});
  ASSERT_EQ(merged.configs.size(), points.size());
  for (size_t c = 0; c < points.size(); ++c) {
    EXPECT_EQ(merged.configs[c].name, points[c].first);
    EXPECT_EQ(merged.configs[c].config_hash, points[c].second.digest());
    expect_same_run(merged.configs[c].run,
                    sampled_run(points[c].second, program, plan),
                    "column " + points[c].first);
  }
}

TEST(ConfigGrid, VerifyManifestPlanCatchesSwappedCheckpointFiles) {
  // The plan hash covers only manifest fields, so the checkpoint POSITION
  // check is what catches a .cfirckpt overwritten with one from a
  // different interval — before a shard silently simulates the wrong
  // slice of the run.
  const isa::Program program = workloads::build("bzip2", 1);
  const IntervalPlan plan = plan_intervals(program, 4, 20000);
  const auto bindings = bind_configs(plan, register_grid(), program);
  TempManifest tm(plan, bindings, "bzip2", 1, "swap");
  const ShardManifest manifest = ShardManifest::load(tm.path());

  const IntervalPlan ok = plan_from_manifest(manifest, tm.path());
  EXPECT_NO_THROW(verify_manifest_plan(manifest, ok));

  // Overwrite interval 0's checkpoint with interval 2's.
  const std::string dir = tm.path().substr(0, tm.path().find_last_of('/') + 1);
  const Checkpoint moved =
      Checkpoint::load(dir + manifest.intervals[2].checkpoint_file);
  moved.save(dir + manifest.intervals[0].checkpoint_file);
  const IntervalPlan swapped = plan_from_manifest(manifest, tm.path());
  EXPECT_THROW(verify_manifest_plan(manifest, swapped), CorruptFileError);
}

TEST(ConfigGrid, MergeRejectsColumnMixtures) {
  const isa::Program program = workloads::build("bzip2", 1);
  const IntervalPlan plan = plan_intervals(program, 4, 20000);
  const auto points = register_grid();
  const auto bindings = bind_configs(plan, points, program);

  const ShardResult s0 = run_shard(bindings, program, plan,
                                   ShardSelection{0, 2});
  ShardResult s1 = run_shard(bindings, program, plan, ShardSelection{1, 2});
  EXPECT_NO_THROW((void)merge_shard_grid({s0, s1}));

  // A shard that ran a different column set cannot fold into this grid.
  ShardResult renamed = s1;
  renamed.configs[1].name = "imposter";
  EXPECT_THROW((void)merge_shard_grid({s0, renamed}), ConfigMismatchError);
  ShardResult dropped = s1;
  dropped.configs.pop_back();
  for (auto& iv : dropped.intervals) iv.stats.pop_back();
  EXPECT_THROW((void)merge_shard_grid({s0, dropped}), ConfigMismatchError);
}

// ---------------------------------------------------------------------------
// Acceptance: bzip2/parser/twolf s8, functional warming, a 3-point
// register grid (128/256/512 phys regs) farmed from ONE CFIRMAN2 manifest
// — every merged column bit-identical to that config's single-config
// sampled_run.
// ---------------------------------------------------------------------------

void expect_grid_acceptance(const std::string& workload) {
  const isa::Program program = workloads::build(workload, 8);

  ClusterPlanOptions opts;
  opts.n_intervals = 16;
  opts.max_k = 4;
  opts.warm_mode = WarmMode::kFunctional;
  opts.detail_len = 2000;
  const IntervalPlan plan = plan_cluster_intervals(program, opts);
  const auto points = register_grid();
  const auto bindings = bind_configs(plan, points, program);

  TempManifest tm(plan, bindings, workload, 8, "grid_" + workload);
  const ShardManifest manifest = ShardManifest::load(tm.path());
  EXPECT_EQ(manifest.version, kManifestVersion);
  ASSERT_EQ(manifest.configs.size(), points.size());
  for (size_t c = 0; c < points.size(); ++c) {
    EXPECT_EQ(manifest.configs[c].name, points[c].first);
    EXPECT_EQ(manifest.configs[c].config_hash, points[c].second.digest());
    EXPECT_TRUE(manifest.configs[c].embedded);
  }

  const IntervalPlan reloaded = plan_from_manifest(manifest, tm.path());
  verify_manifest_plan(manifest, reloaded);  // must not throw
  const std::vector<ConfigBinding> reloaded_bindings =
      bindings_from_manifest(manifest, tm.path());
  ASSERT_EQ(reloaded_bindings.size(), points.size());

  // Two shards, each through its CFIRSHD2 wire format, merged in reverse.
  std::vector<ShardResult> shards;
  for (uint32_t i = 0; i < 2; ++i) {
    const ShardResult r =
        run_shard(reloaded_bindings, program, reloaded, ShardSelection{i, 2},
                  /*threads=*/0, manifest.plan_hash);
    TempFile file("grid_" + workload + std::to_string(i));
    r.save(file.path());
    shards.push_back(ShardResult::load(file.path()));
  }
  std::reverse(shards.begin(), shards.end());
  const MergedGrid merged = merge_shard_grid(shards);
  ASSERT_EQ(merged.configs.size(), points.size());
  for (size_t c = 0; c < points.size(); ++c) {
    expect_same_run(merged.configs[c].run,
                    sampled_run(points[c].second, program, plan),
                    workload + " s8 column " + points[c].first);
  }
}

TEST(GridAcceptance, Bzip2S8Functional) { expect_grid_acceptance("bzip2"); }
TEST(GridAcceptance, ParserS8Functional) { expect_grid_acceptance("parser"); }
TEST(GridAcceptance, TwolfS8Functional) { expect_grid_acceptance("twolf"); }

}  // namespace
}  // namespace cfir::trace
