// Two ways to author programs for the simulator:
//   * `Assembler` — a builder API with labels, forward references and a
//     managed data segment; used by the synthetic workloads.
//   * `assemble_text` — a small text assembler ("add r1, r2, r3", labels,
//     `.word`/`.bytes` directives); used by tests and examples.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "isa/program.hpp"

namespace cfir::isa {

/// Error thrown on malformed input (unknown label, bad mnemonic, ...).
class AssemblerError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Assembler {
 public:
  explicit Assembler(uint64_t code_base = kCodeBase,
                     uint64_t data_base = kDataBase)
      : code_base_(code_base), data_cursor_(data_base) {}

  // --- labels -------------------------------------------------------------
  /// Binds `name` to the PC of the next emitted instruction.
  void label(const std::string& name);
  /// PC the next emitted instruction will occupy.
  [[nodiscard]] uint64_t here() const;

  // --- ALU ----------------------------------------------------------------
  void op3(Opcode op, int rd, int rs1, int rs2);
  void add(int rd, int rs1, int rs2) { op3(Opcode::kAdd, rd, rs1, rs2); }
  void sub(int rd, int rs1, int rs2) { op3(Opcode::kSub, rd, rs1, rs2); }
  void mul(int rd, int rs1, int rs2) { op3(Opcode::kMul, rd, rs1, rs2); }
  void div(int rd, int rs1, int rs2) { op3(Opcode::kDiv, rd, rs1, rs2); }
  void rem(int rd, int rs1, int rs2) { op3(Opcode::kRem, rd, rs1, rs2); }
  void and_(int rd, int rs1, int rs2) { op3(Opcode::kAnd, rd, rs1, rs2); }
  void or_(int rd, int rs1, int rs2) { op3(Opcode::kOr, rd, rs1, rs2); }
  void xor_(int rd, int rs1, int rs2) { op3(Opcode::kXor, rd, rs1, rs2); }
  void shl(int rd, int rs1, int rs2) { op3(Opcode::kShl, rd, rs1, rs2); }
  void shr(int rd, int rs1, int rs2) { op3(Opcode::kShr, rd, rs1, rs2); }
  void slt(int rd, int rs1, int rs2) { op3(Opcode::kSlt, rd, rs1, rs2); }
  void sltu(int rd, int rs1, int rs2) { op3(Opcode::kSltu, rd, rs1, rs2); }
  void seq(int rd, int rs1, int rs2) { op3(Opcode::kSeq, rd, rs1, rs2); }
  void min(int rd, int rs1, int rs2) { op3(Opcode::kMin, rd, rs1, rs2); }
  void max(int rd, int rs1, int rs2) { op3(Opcode::kMax, rd, rs1, rs2); }

  void opi(Opcode op, int rd, int rs1, int64_t imm);
  void addi(int rd, int rs1, int64_t imm) { opi(Opcode::kAddi, rd, rs1, imm); }
  void muli(int rd, int rs1, int64_t imm) { opi(Opcode::kMuli, rd, rs1, imm); }
  void andi(int rd, int rs1, int64_t imm) { opi(Opcode::kAndi, rd, rs1, imm); }
  void ori(int rd, int rs1, int64_t imm) { opi(Opcode::kOri, rd, rs1, imm); }
  void xori(int rd, int rs1, int64_t imm) { opi(Opcode::kXori, rd, rs1, imm); }
  void shli(int rd, int rs1, int64_t imm) { opi(Opcode::kShli, rd, rs1, imm); }
  void shrli(int rd, int rs1, int64_t imm) { opi(Opcode::kShrli, rd, rs1, imm); }
  void movi(int rd, int64_t imm);
  void mov(int rd, int rs1) { opi(Opcode::kMov, rd, rs1, 0); }

  // --- memory -------------------------------------------------------------
  void ld(int rd, int rs1, int64_t disp = 0, int bytes = 8);
  void st(int rs2, int rs1, int64_t disp = 0, int bytes = 8);

  // --- control ------------------------------------------------------------
  void br(Opcode op, int rs1, int rs2, const std::string& target);
  void beq(int rs1, int rs2, const std::string& t) { br(Opcode::kBeq, rs1, rs2, t); }
  void bne(int rs1, int rs2, const std::string& t) { br(Opcode::kBne, rs1, rs2, t); }
  void blt(int rs1, int rs2, const std::string& t) { br(Opcode::kBlt, rs1, rs2, t); }
  void bge(int rs1, int rs2, const std::string& t) { br(Opcode::kBge, rs1, rs2, t); }
  void bltu(int rs1, int rs2, const std::string& t) { br(Opcode::kBltu, rs1, rs2, t); }
  void bgeu(int rs1, int rs2, const std::string& t) { br(Opcode::kBgeu, rs1, rs2, t); }
  void jmp(const std::string& target);
  void call(const std::string& target);
  void ret(int rs1 = kLinkReg);
  void nop();
  void halt();

  // --- data segment -------------------------------------------------------
  /// Reserves `bytes` of zero-initialized data, 8-byte aligned, and returns
  /// its address; `name` becomes a data label usable by `data_addr`.
  uint64_t reserve(const std::string& name, uint64_t bytes);
  [[nodiscard]] uint64_t data_addr(const std::string& name) const;
  /// Writes a 64-bit word into reserved data space at `addr`.
  void init_word(uint64_t addr, uint64_t value);
  void init_bytes(uint64_t addr, const std::vector<uint8_t>& bytes);

  /// Resolves all pending label references and produces the Program.
  [[nodiscard]] Program assemble();

 private:
  struct Fixup {
    size_t inst_index;
    std::string label;
  };
  void emit(Instruction inst);

  uint64_t code_base_;
  uint64_t data_cursor_;
  std::vector<Instruction> code_;
  std::unordered_map<std::string, uint64_t> labels_;
  std::unordered_map<std::string, uint64_t> data_labels_;
  std::vector<Fixup> fixups_;
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> data_init_;
};

/// Parses a textual assembly listing into a Program.
[[nodiscard]] Program assemble_text(std::string_view source);

}  // namespace cfir::isa
