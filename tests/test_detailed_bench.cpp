// Throughput regression guard for the fast detailed-core scheduler: on an
// optimized build, CFIR_CORE_SCHED=fast must simulate at least 1.5x as
// fast as the reference scheduler somewhere in the wide-window regime the
// rewrite targets (bench/micro_detailed prints the full table; the
// differential suite proves the two bit-identical, so this guard measures
// pure host-side scheduling cost). Skipped on Debug builds and under
// sanitizers, where instrumentation swamps the data-structure costs the
// guard measures.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace cfir;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

#ifdef NDEBUG
constexpr bool kOptimized = true;
#else
constexpr bool kOptimized = false;
#endif

/// The stress point the rewrite targets: a 1K-entry ROB / 512-entry LSQ
/// window on one memory port, where the reference scheduler's per-cycle
/// sort and stalled-load polling dominate the cycle loop.
core::CoreConfig wide_window_config() {
  core::CoreConfig c = sim::presets::scal(1, 2048);
  c.rob_size = 1024;
  c.lsq_size = 512;
  return c;
}

/// One detailed run to the commit budget under the named scheduler; fresh
/// Simulator per sample so no warmed state leaks between schedulers.
double run_us(const core::CoreConfig& config, const isa::Program& program,
              const char* sched, uint64_t max_insts) {
  setenv("CFIR_CORE_SCHED", sched, 1);
  sim::Simulator sim(config, program);
  const obs::Stopwatch clock;
  sim.run(max_insts);
  const double us = static_cast<double>(clock.elapsed_us());
  unsetenv("CFIR_CORE_SCHED");
  return us;
}

TEST(DetailedBench, FastSchedAtLeast1_5xRef) {
  if (!kOptimized || kSanitized) {
    GTEST_SKIP() << "throughput guard needs an optimized, uninstrumented "
                    "build (Debug or sanitizer detected)";
  }
  // Interleave ref/fast samples so host noise (frequency steps, competing
  // load) hits both schedulers alike, keep each side's best, and pass if
  // any workload clears the bar — a noisy sample on one kernel cannot
  // fail the guard.
  const core::CoreConfig config = wide_window_config();
  const uint64_t budget = 200000;  // committed insts per sample
  const int repeats = 5;
  double best_speedup = 0.0;
  for (const char* kernel : {"bzip2", "twolf"}) {
    const isa::Program program = workloads::build(kernel, 8);
    double ref_us = 1e18;
    double fast_us = 1e18;
    for (int r = 0; r < repeats; ++r) {
      ref_us = std::min(ref_us, run_us(config, program, "ref", budget));
      fast_us = std::min(fast_us, run_us(config, program, "fast", budget));
    }
    ASSERT_GT(fast_us, 0.0);
    best_speedup = std::max(best_speedup, ref_us / fast_us);
  }
  RecordProperty("speedup", std::to_string(best_speedup));
  EXPECT_GE(best_speedup, 1.5)
      << "fast scheduler only " << best_speedup
      << "x the reference scheduler at best";
}

}  // namespace
