#include "trace/trace_v2.hpp"

#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "trace/blob.hpp"
#include "trace/errors.hpp"
#include "util/crc32.hpp"

namespace cfir::trace::v2 {

namespace {

constexpr char kIndexMagic[8] = {'C', 'F', 'I', 'R', 'I', 'D', 'X', '2'};

/// Fixed part of a block: u32 record count, five u64 coder bases, and the
/// eleven u32 per-column payload lengths.
constexpr size_t kBlockFixedBytes = 4 + 5 * 8 + kTraceV2Columns * 4;

/// Index footer after the entries: u64 n_blocks + u64 index_offset +
/// index magic + "CRC1" index crc + whole-file "CRC1" footer.
constexpr size_t kIndexTailBytes = 8 + 8 + 8 + kCrcFooterBytes +
                                   kCrcFooterBytes;

constexpr uint64_t zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
constexpr int64_t unzigzag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// pc and branch-target deltas are almost always multiples of
// isa::kInstBytes (4), so the codec divides them down before zigzag and
// carries the remainder in the low two bits — one varint byte then spans
// ±16KiB of code instead of ±4KiB. Works for arbitrary 64-bit deltas:
// d = 4*(sd >> 2) + (d & 3) with an arithmetic (floor) shift.
constexpr uint64_t scale_encode(uint64_t d) {
  return (zigzag(static_cast<int64_t>(d) >> 2) << 2) | (d & 3);
}
constexpr uint64_t scale_decode(uint64_t v) {
  return (static_cast<uint64_t>(unzigzag(v >> 2)) << 2) + (v & 3);
}

uint8_t log2_size(uint8_t bytes) {
  switch (bytes) {
    case 1: return 0;
    case 2: return 1;
    case 4: return 2;
    default: return 3;
  }
}

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  const size_t n = out.size();
  out.resize(n + 4);
  std::memcpy(out.data() + n, &v, 4);
}
void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  const size_t n = out.size();
  out.resize(n + 8);
  std::memcpy(out.data() + n, &v, 8);
}
uint32_t rd_u32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t rd_u64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

void put_varint(std::vector<uint8_t>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

// --------------------------------------------------------------------------
// Per-column byte compressor: a tiny deterministic greedy LZ (hash-4 match
// finder, varint-framed literal-run / match pairs, unbounded window inside
// the column). Column payloads are highly repetitive — the kind stream and
// the flag bitmaps replay the program's loop structure — so matching whole
// repeated stretches is worth far more than shaving bits per field. Each
// column stores a leading codec byte (kCodecRaw | kCodecLz) and the writer
// keeps whichever is smaller, so pathological inputs never grow beyond
// raw + 1 byte.
//
// LZ body layout: varint uncompressed_size, then alternating
//   varint lit_len | lit bytes | varint (match_len - 4) | varint distance
// ending after a literal run that reaches uncompressed_size (a trailing
// empty run is omitted when a match ends the stream).
// --------------------------------------------------------------------------

constexpr uint8_t kCodecRaw = 0;
constexpr uint8_t kCodecLz = 1;
constexpr size_t kLzMinMatch = 4;

[[noreturn]] void corrupt(const std::string& what);

std::vector<uint8_t> lz_compress(const uint8_t* src, size_t n) {
  std::vector<uint8_t> out;
  put_varint(out, n);
  constexpr uint32_t kHashBits = 15;
  std::vector<int64_t> head(size_t{1} << kHashBits, -1);
  const auto hash4 = [&](size_t i) {
    uint32_t v;
    std::memcpy(&v, src + i, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
  };
  size_t i = 0;
  size_t lit_start = 0;
  const auto flush_lits = [&](size_t end) {
    put_varint(out, end - lit_start);
    out.insert(out.end(), src + lit_start, src + end);
  };
  while (i + kLzMinMatch <= n) {
    const uint32_t h = hash4(i);
    const int64_t cand = head[h];
    head[h] = static_cast<int64_t>(i);
    size_t match_len = 0;
    if (cand >= 0 &&
        std::memcmp(src + cand, src + i, kLzMinMatch) == 0) {
      size_t l = kLzMinMatch;
      while (i + l < n && src[static_cast<size_t>(cand) + l] == src[i + l]) {
        ++l;
      }
      match_len = l;
    }
    if (match_len >= kLzMinMatch) {
      flush_lits(i);
      put_varint(out, match_len - kLzMinMatch);
      put_varint(out, i - static_cast<size_t>(cand));
      for (size_t k = 1; k < match_len && i + k + kLzMinMatch <= n; ++k) {
        head[hash4(i + k)] = static_cast<int64_t>(i + k);
      }
      i += match_len;
      lit_start = i;
    } else {
      ++i;
    }
  }
  if (lit_start < n) flush_lits(n);
  return out;
}

std::vector<uint8_t> lz_decompress(const uint8_t* src, size_t n) {
  size_t pos = 0;
  const auto get_varint = [&]() -> uint64_t {
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (pos >= n) corrupt("truncated lz column");
      const uint8_t c = src[pos++];
      if (shift == 63 && (c & 0x7f) > 1) corrupt("lz varint overflow");
      v |= static_cast<uint64_t>(c & 0x7f) << shift;
      if ((c & 0x80) == 0) return v;
      shift += 7;
      if (shift > 63) corrupt("lz varint overflow");
    }
  };
  const uint64_t raw_size = get_varint();
  // Column payloads are bounded by the block they came from; a huge size
  // here is corruption, not data.
  if (raw_size > (uint64_t{1} << 32)) corrupt("lz column size implausible");
  std::vector<uint8_t> out;
  out.reserve(raw_size);
  while (out.size() < raw_size) {
    const uint64_t lit = get_varint();
    if (lit > raw_size - out.size() || lit > n - pos) {
      corrupt("lz literal run overruns");
    }
    out.insert(out.end(), src + pos, src + pos + lit);
    pos += lit;
    if (out.size() >= raw_size) break;
    const uint64_t mlen = get_varint() + kLzMinMatch;
    const uint64_t dist = get_varint();
    if (dist == 0 || dist > out.size() || mlen > raw_size - out.size()) {
      corrupt("lz match out of range");
    }
    for (uint64_t k = 0; k < mlen; ++k) {
      out.push_back(out[out.size() - dist]);
    }
  }
  if (pos != n) corrupt("lz column length mismatch");
  return out;
}

/// Packs one bit per push, LSB-first within each byte.
class BitPacker {
 public:
  void push(bool bit) {
    if ((n_ & 7) == 0) bytes_.push_back(0);
    if (bit) bytes_.back() |= static_cast<uint8_t>(1u << (n_ & 7));
    ++n_;
  }
  [[nodiscard]] const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
  size_t n_ = 0;
};

/// Packs one 2-bit code per push, low pairs first within each byte.
class CodePacker {
 public:
  void push(uint8_t code) {
    if ((n_ & 3) == 0) bytes_.push_back(0);
    bytes_.back() |= static_cast<uint8_t>((code & 3u) << ((n_ & 3) * 2));
    ++n_;
  }
  [[nodiscard]] const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
  size_t n_ = 0;
};

[[noreturn]] void corrupt(const std::string& what) {
  throw CorruptFileError("CFIRTRC2: " + what);
}

/// Read cursor over one column's payload slice. All three shapes throw
/// CorruptFileError on overrun and verify exact consumption at the end, so
/// a block whose column lengths disagree with its contents is rejected
/// even when its CRC was forged to match.
struct ColumnSlice {
  const uint8_t* p = nullptr;
  size_t n = 0;
};

class BitCursor {
 public:
  explicit BitCursor(ColumnSlice s) : s_(s) {}
  bool next() {
    if (i_ >= s_.n * 8) corrupt("bitmap column overrun");
    const bool b = ((s_.p[i_ >> 3] >> (i_ & 7)) & 1) != 0;
    ++i_;
    return b;
  }
  void check_done() const {
    if ((i_ + 7) / 8 != s_.n) corrupt("bitmap column length mismatch");
  }

 private:
  ColumnSlice s_;
  size_t i_ = 0;
};

class CodeCursor {
 public:
  explicit CodeCursor(ColumnSlice s) : s_(s) {}
  uint8_t next() {
    if (i_ >= s_.n * 4) corrupt("code column overrun");
    const uint8_t c = (s_.p[i_ >> 2] >> ((i_ & 3) * 2)) & 3;
    ++i_;
    return c;
  }
  void check_done() const {
    if ((i_ + 3) / 4 != s_.n) corrupt("code column length mismatch");
  }

 private:
  ColumnSlice s_;
  size_t i_ = 0;
};

class VarintCursor {
 public:
  explicit VarintCursor(ColumnSlice s) : s_(s) {}
  uint64_t next() {
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (pos_ >= s_.n) corrupt("truncated varint column");
      const uint8_t c = s_.p[pos_++];
      if (shift == 63 && (c & 0x7f) > 1) corrupt("varint overflow");
      v |= static_cast<uint64_t>(c & 0x7f) << shift;
      if ((c & 0x80) == 0) return v;
      shift += 7;
      if (shift > 63) corrupt("varint overflow");
    }
  }
  void check_done() const {
    if (pos_ != s_.n) corrupt("varint column length mismatch");
  }

 private:
  ColumnSlice s_;
  size_t pos_ = 0;
};

/// Serializes the CFIRTRC2 header (identical field layout to CFIRTRC1;
/// the v1 reserved u32 holds the block capacity).
std::vector<uint8_t> encode_header(const TraceMeta& meta, uint32_t block_len,
                                   uint64_t record_count,
                                   uint64_t final_digest,
                                   const std::array<uint64_t,
                                                    isa::kNumLogicalRegs>&
                                       final_regs) {
  std::vector<uint8_t> out;
  out.insert(out.end(), kTraceMagicV2, kTraceMagicV2 + 8);
  put_u32(out, kTraceVersionV2);
  put_u32(out, block_len);
  put_u64(out, record_count);
  put_u64(out, meta.base_pc);
  put_u64(out, final_digest);
  for (const uint64_t r : final_regs) put_u64(out, r);
  put_u32(out, meta.scale);
  put_u32(out, static_cast<uint32_t>(meta.workload.size()));
  out.insert(out.end(), meta.workload.begin(), meta.workload.end());
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Reader side
// ---------------------------------------------------------------------------

FileView open_file(const std::string& path) {
  FileView f;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) throw std::runtime_error("TraceReader: cannot open " + path);
    const std::streamoff size = in.tellg();
    f.bytes.resize(static_cast<size_t>(size));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(f.bytes.data()), size);
    if (!in) corrupt("short read of " + path);
  }
  const std::vector<uint8_t>& b = f.bytes;
  constexpr size_t kFixedHeader =
      8 + 4 + 4 + 8 + 8 + 8 + 8 * isa::kNumLogicalRegs + 4 + 4;
  if (b.size() < kFixedHeader) corrupt("truncated header in " + path);
  if (std::memcmp(b.data(), kTraceMagicV2, 8) != 0) {
    throw BadMagicError("TraceReader: bad magic in " + path);
  }
  const uint32_t version = rd_u32(b.data() + 8);
  if (version != kTraceVersionV2) {
    throw VersionError("TraceReader: unsupported version " +
                       std::to_string(version) + " in " + path);
  }
  f.block_len = rd_u32(b.data() + 12);
  f.record_count = rd_u64(b.data() + 16);
  if (f.record_count == kUnfinishedRecordCount) {
    throw std::runtime_error(
        "TraceReader: unfinished trace (recording was interrupted before "
        "finish()) in " + path);
  }
  if (f.block_len == 0) corrupt("zero block length in " + path);
  f.meta.base_pc = rd_u64(b.data() + 24);
  f.final_digest = rd_u64(b.data() + 32);
  for (int i = 0; i < isa::kNumLogicalRegs; ++i) {
    f.final_regs[static_cast<size_t>(i)] =
        rd_u64(b.data() + 40 + 8 * static_cast<size_t>(i));
  }
  const size_t post_regs = 40 + 8 * static_cast<size_t>(isa::kNumLogicalRegs);
  f.meta.scale = rd_u32(b.data() + post_regs);
  const uint32_t name_len = rd_u32(b.data() + post_regs + 4);
  if (name_len > 4096) {
    corrupt("corrupt header (name length " + std::to_string(name_len) +
            ") in " + path);
  }
  const size_t header_size = kFixedHeader + name_len;
  if (b.size() < header_size + kIndexTailBytes) {
    corrupt("truncated file " + path);
  }
  f.meta.workload.assign(
      reinterpret_cast<const char*>(b.data() + kFixedHeader), name_len);

  // Parse the footers back to front: whole-file CRC (present but not
  // verified here — per-block CRCs and the index CRC below localize
  // integrity so open stays O(index)), index CRC, index magic, then the
  // two u64 index fields and the entries.
  const size_t fsize = b.size();
  if (std::memcmp(b.data() + fsize - 8, kCrcFooterMagic, 4) != 0) {
    corrupt("missing whole-file CRC footer in " + path);
  }
  if (std::memcmp(b.data() + fsize - 16, kCrcFooterMagic, 4) != 0) {
    corrupt("missing index CRC footer in " + path);
  }
  if (std::memcmp(b.data() + fsize - 24, kIndexMagic, 8) != 0) {
    corrupt("missing or corrupt index footer in " + path);
  }
  const uint64_t n_blocks = rd_u64(b.data() + fsize - 40);
  f.index_offset = rd_u64(b.data() + fsize - 32);
  if (f.index_offset < header_size ||
      f.index_offset + n_blocks * kIndexEntryBytes + kIndexTailBytes !=
          fsize) {
    corrupt("index footer geometry mismatch in " + path);
  }
  const uint32_t want_icrc = rd_u32(b.data() + fsize - 12);
  uint32_t icrc = util::crc32(b.data(), header_size);
  icrc = util::crc32(b.data() + f.index_offset, fsize - 16 - f.index_offset,
                     icrc);
  if (icrc != want_icrc) corrupt("index CRC mismatch in " + path);

  f.blocks.resize(n_blocks);
  uint64_t expect_first = 0;
  uint64_t expect_offset = header_size;
  for (size_t i = 0; i < n_blocks; ++i) {
    const uint8_t* e = b.data() + f.index_offset + i * kIndexEntryBytes;
    f.blocks[i].first_record = rd_u64(e);
    f.blocks[i].offset = rd_u64(e + 8);
    f.blocks[i].count = rd_u32(e + 16);
    // Blocks are written back to back, so each entry must pick up exactly
    // where the previous block ended and the last must end at the index.
    if (f.blocks[i].first_record != expect_first ||
        f.blocks[i].offset != expect_offset || f.blocks[i].count == 0 ||
        f.blocks[i].count > f.block_len) {
      corrupt("inconsistent block index in " + path);
    }
    const uint64_t end = (i + 1 < n_blocks)
                             ? rd_u64(b.data() + f.index_offset +
                                      (i + 1) * kIndexEntryBytes + 8)
                             : f.index_offset;
    if (end < f.blocks[i].offset + kBlockFixedBytes + kCrcFooterBytes) {
      corrupt("undersized block in " + path);
    }
    expect_first += f.blocks[i].count;
    expect_offset = end;
  }
  if (expect_first != f.record_count) {
    corrupt("block index does not cover the record count in " + path);
  }
  return f;
}

std::vector<TraceRecord> decode_block(const FileView& file, size_t b) {
  if (b >= file.blocks.size()) {
    throw std::out_of_range("decode_block: block " + std::to_string(b) +
                            " of " + std::to_string(file.blocks.size()));
  }
  const BlockIndexEntry& entry = file.blocks[b];
  const uint64_t end = (b + 1 < file.blocks.size())
                           ? file.blocks[b + 1].offset
                           : file.index_offset;
  const uint8_t* base = file.bytes.data() + entry.offset;
  const size_t avail = static_cast<size_t>(end - entry.offset);
  if (avail < kBlockFixedBytes + kCrcFooterBytes) corrupt("truncated block");

  const uint32_t n = rd_u32(base);
  if (n != entry.count) corrupt("block record count disagrees with index");
  uint64_t pred_pc = rd_u64(base + 4);
  uint64_t load_addr = rd_u64(base + 12);
  uint64_t load_delta = rd_u64(base + 20);
  uint64_t store_addr = rd_u64(base + 28);
  uint64_t store_delta = rd_u64(base + 36);

  std::array<ColumnSlice, kTraceV2Columns> stored;
  size_t off = kBlockFixedBytes;
  for (size_t c = 0; c < kTraceV2Columns; ++c) {
    const uint32_t len = rd_u32(base + 44 + 4 * c);
    if (len > avail - kCrcFooterBytes || off + len > avail - kCrcFooterBytes) {
      corrupt("block column lengths exceed the block");
    }
    stored[c] = {base + off, len};
    off += len;
  }
  if (off + kCrcFooterBytes != avail) {
    corrupt("block column lengths disagree with the block size");
  }
  if (std::memcmp(base + off, kCrcFooterMagic, 4) != 0 ||
      rd_u32(base + off + 4) != util::crc32(base, off)) {
    corrupt("block CRC mismatch");
  }

  // Unframe each column: leading codec byte, body either raw or LZ. The
  // scratch vectors live for the whole decode so the cursors can point at
  // decompressed bytes.
  std::array<ColumnSlice, kTraceV2Columns> cols;
  std::array<std::vector<uint8_t>, kTraceV2Columns> scratch;
  for (size_t c = 0; c < kTraceV2Columns; ++c) {
    if (stored[c].n == 0) continue;
    const uint8_t codec = stored[c].p[0];
    if (codec == kCodecRaw) {
      cols[c] = {stored[c].p + 1, stored[c].n - 1};
    } else if (codec == kCodecLz) {
      scratch[c] = lz_decompress(stored[c].p + 1, stored[c].n - 1);
      cols[c] = {scratch[c].data(), scratch[c].size()};
    } else {
      corrupt("unknown column codec");
    }
  }

  CodeCursor kinds(cols[0]);
  BitCursor pc_flags(cols[1]);
  VarintCursor pc_deltas(cols[2]);
  BitCursor taken(cols[3]);
  BitCursor target_flags(cols[4]);
  VarintCursor target_deltas(cols[5]);
  BitCursor load_flags(cols[6]);
  VarintCursor load_deltas(cols[7]);
  BitCursor store_flags(cols[8]);
  VarintCursor store_deltas(cols[9]);
  CodeCursor mem_sizes(cols[10]);

  std::vector<TraceRecord> out(n);
  for (uint32_t i = 0; i < n; ++i) {
    TraceRecord& rec = out[i];
    rec.kind = static_cast<RecordKind>(kinds.next());
    rec.pc = pred_pc;
    if (pc_flags.next()) rec.pc += scale_decode(pc_deltas.next());
    if (rec.kind == RecordKind::kBranch) {
      rec.taken = taken.next();
      rec.next_pc = rec.pc + isa::kInstBytes;
      if (target_flags.next()) {
        rec.next_pc += scale_decode(target_deltas.next());
      }
      pred_pc = rec.next_pc;
    } else {
      pred_pc = rec.pc + isa::kInstBytes;
      if (rec.kind == RecordKind::kLoad) {
        if (load_flags.next()) {
          load_delta += static_cast<uint64_t>(unzigzag(load_deltas.next()));
        }
        load_addr += load_delta;
        rec.addr = load_addr;
        rec.size = static_cast<uint8_t>(1u << mem_sizes.next());
      } else if (rec.kind == RecordKind::kStore) {
        if (store_flags.next()) {
          store_delta += static_cast<uint64_t>(unzigzag(store_deltas.next()));
        }
        store_addr += store_delta;
        rec.addr = store_addr;
        rec.size = static_cast<uint8_t>(1u << mem_sizes.next());
      }
    }
  }
  kinds.check_done();
  pc_flags.check_done();
  pc_deltas.check_done();
  taken.check_done();
  target_flags.check_done();
  target_deltas.check_done();
  load_flags.check_done();
  load_deltas.check_done();
  store_flags.check_done();
  store_deltas.check_done();
  mem_sizes.check_done();

  obs::Registry& reg = obs::Registry::instance();
  reg.counter("trace.blocks_read").increment();
  reg.counter("trace.decode_records").add(n);
  reg.counter("trace.decode_bytes").add(avail);
  return out;
}

std::array<uint64_t, kTraceV2Columns> column_bytes(const FileView& file) {
  std::array<uint64_t, kTraceV2Columns> sums{};
  for (const BlockIndexEntry& entry : file.blocks) {
    const uint8_t* base = file.bytes.data() + entry.offset;
    for (size_t c = 0; c < kTraceV2Columns; ++c) {
      sums[c] += rd_u32(base + 44 + 4 * c);
    }
  }
  return sums;
}

// ---------------------------------------------------------------------------
// Writer side
// ---------------------------------------------------------------------------

BlockWriter::BlockWriter(const std::string& path, const TraceMeta& meta,
                         uint32_t block_len)
    : out_(path, std::ios::binary | std::ios::trunc),
      path_(path),
      meta_(meta),
      block_len_(block_len),
      pred_pc_(meta.base_pc) {
  if (!out_) {
    throw std::runtime_error("TraceWriter: cannot open " + path);
  }
  if (block_len_ == 0) {
    throw std::invalid_argument("TraceWriter: zero block length");
  }
  pending_.reserve(block_len_);
  // Sentinel header; finish() rewrites it with the real counts. An
  // unfinished file keeps the sentinel, so readers reject it exactly like
  // an unfinished v1 trace.
  const std::vector<uint8_t> hdr =
      encode_header(meta_, block_len_, kUnfinishedRecordCount, 0, {});
  out_.write(reinterpret_cast<const char*>(hdr.data()),
             static_cast<std::streamsize>(hdr.size()));
}

void BlockWriter::append(const TraceRecord& rec) {
  pending_.push_back(rec);
  if (pending_.size() >= block_len_) flush_block();
}

void BlockWriter::flush_block() {
  if (pending_.empty()) return;

  std::vector<uint8_t> block;
  put_u32(block, static_cast<uint32_t>(pending_.size()));
  put_u64(block, pred_pc_);
  put_u64(block, load_addr_);
  put_u64(block, load_delta_);
  put_u64(block, store_addr_);
  put_u64(block, store_delta_);

  CodePacker kinds;
  BitPacker pc_flags;
  std::vector<uint8_t> pc_deltas;
  BitPacker taken;
  BitPacker target_flags;
  std::vector<uint8_t> target_deltas;
  BitPacker load_flags;
  std::vector<uint8_t> load_deltas;
  BitPacker store_flags;
  std::vector<uint8_t> store_deltas;
  CodePacker mem_sizes;

  for (const TraceRecord& rec : pending_) {
    kinds.push(static_cast<uint8_t>(rec.kind));
    const uint64_t d = rec.pc - pred_pc_;
    pc_flags.push(d != 0);
    if (d != 0) put_varint(pc_deltas, scale_encode(d));
    if (rec.kind == RecordKind::kBranch) {
      taken.push(rec.taken);
      const uint64_t td = rec.next_pc - (rec.pc + isa::kInstBytes);
      target_flags.push(td != 0);
      if (td != 0) put_varint(target_deltas, scale_encode(td));
      pred_pc_ = rec.next_pc;
    } else {
      pred_pc_ = rec.pc + isa::kInstBytes;
      if (rec.kind == RecordKind::kLoad) {
        const uint64_t delta = rec.addr - load_addr_;
        const uint64_t dd = delta - load_delta_;
        load_flags.push(dd != 0);
        if (dd != 0) {
          put_varint(load_deltas, zigzag(static_cast<int64_t>(dd)));
        }
        load_delta_ = delta;
        load_addr_ = rec.addr;
        mem_sizes.push(log2_size(rec.size));
      } else if (rec.kind == RecordKind::kStore) {
        const uint64_t delta = rec.addr - store_addr_;
        const uint64_t dd = delta - store_delta_;
        store_flags.push(dd != 0);
        if (dd != 0) {
          put_varint(store_deltas, zigzag(static_cast<int64_t>(dd)));
        }
        store_delta_ = delta;
        store_addr_ = rec.addr;
        mem_sizes.push(log2_size(rec.size));
      }
    }
  }

  const std::array<const std::vector<uint8_t>*, kTraceV2Columns> raw = {
      &kinds.bytes(),        &pc_flags.bytes(),    &pc_deltas,
      &taken.bytes(),        &target_flags.bytes(), &target_deltas,
      &load_flags.bytes(),   &load_deltas,          &store_flags.bytes(),
      &store_deltas,         &mem_sizes.bytes()};
  // Each non-empty column is framed as a codec byte plus the body; the
  // writer keeps whichever of raw / LZ is smaller. Empty columns stay at
  // zero bytes (no codec byte).
  std::array<std::vector<uint8_t>, kTraceV2Columns> payloads;
  for (size_t c = 0; c < kTraceV2Columns; ++c) {
    const std::vector<uint8_t>& col = *raw[c];
    if (col.empty()) continue;
    std::vector<uint8_t> lz = lz_compress(col.data(), col.size());
    if (lz.size() < col.size()) {
      payloads[c].reserve(lz.size() + 1);
      payloads[c].push_back(kCodecLz);
      payloads[c].insert(payloads[c].end(), lz.begin(), lz.end());
    } else {
      payloads[c].reserve(col.size() + 1);
      payloads[c].push_back(kCodecRaw);
      payloads[c].insert(payloads[c].end(), col.begin(), col.end());
    }
  }
  for (const auto& col : payloads) {
    put_u32(block, static_cast<uint32_t>(col.size()));
  }
  for (const auto& col : payloads) {
    block.insert(block.end(), col.begin(), col.end());
  }
  const uint32_t crc = util::crc32(block.data(), block.size());
  block.insert(block.end(), kCrcFooterMagic, kCrcFooterMagic + 4);
  put_u32(block, crc);

  index_.push_back({records_, static_cast<uint64_t>(out_.tellp()),
                    static_cast<uint32_t>(pending_.size())});
  out_.write(reinterpret_cast<const char*>(block.data()),
             static_cast<std::streamsize>(block.size()));
  records_ += pending_.size();
  pending_.clear();
}

void BlockWriter::finish(
    const std::array<uint64_t, isa::kNumLogicalRegs>& final_regs,
    uint64_t final_digest) {
  flush_block();
  const uint64_t index_offset = static_cast<uint64_t>(out_.tellp());

  const std::vector<uint8_t> hdr = encode_header(
      meta_, block_len_, records_, final_digest, final_regs);

  std::vector<uint8_t> idx;
  idx.reserve(index_.size() * kIndexEntryBytes + 24);
  for (const BlockIndexEntry& e : index_) {
    put_u64(idx, e.first_record);
    put_u64(idx, e.offset);
    put_u32(idx, e.count);
  }
  put_u64(idx, static_cast<uint64_t>(index_.size()));
  put_u64(idx, index_offset);
  idx.insert(idx.end(), kIndexMagic, kIndexMagic + 8);

  // The index CRC covers the final header plus the index region, so a
  // seeked open validates everything it trusts without touching blocks.
  uint32_t icrc = util::crc32(hdr.data(), hdr.size());
  icrc = util::crc32(idx.data(), idx.size(), icrc);
  idx.insert(idx.end(), kCrcFooterMagic, kCrcFooterMagic + 4);
  put_u32(idx, icrc);

  out_.write(reinterpret_cast<const char*>(idx.data()),
             static_cast<std::streamsize>(idx.size()));
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(hdr.data()),
             static_cast<std::streamsize>(hdr.size()));
  out_.close();
  if (!out_) throw std::runtime_error("TraceWriter: write failed");
  // Standard whole-file footer last, so blob-level tools (read_blob_file,
  // strict-mode audits) see a well-formed CRC1 blob.
  append_crc_footer(path_);
}

}  // namespace cfir::trace::v2

namespace cfir::trace {

const char* trace_v2_column_name(size_t col) {
  static constexpr const char* kNames[kTraceV2Columns] = {
      "kinds",        "pc_flags",      "pc_deltas",   "taken",
      "target_flags", "target_deltas", "load_flags",  "load_deltas",
      "store_flags",  "store_deltas",  "mem_sizes"};
  return col < kTraceV2Columns ? kNames[col] : "?";
}

}  // namespace cfir::trace
