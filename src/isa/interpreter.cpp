#include "isa/interpreter.hpp"

#include "obs/metrics.hpp"

namespace cfir::isa {

Interpreter::Interpreter(const Program& program, mem::MainMemory& memory)
    : program_(program), mem_(memory), pc_(program.base()) {}

bool Interpreter::step() {
  if (halted_) return false;
  const Instruction* inst = program_.try_at(pc_);
  if (inst == nullptr) {
    halted_ = true;
    return false;
  }
  const Opcode op = inst->op;
  uint64_t next_pc = pc_ + kInstBytes;
  switch (op) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      halted_ = true;
      return false;
    case Opcode::kJmp:
      next_pc = static_cast<uint64_t>(inst->imm);
      break;
    case Opcode::kCall:
      regs_[kLinkReg] = pc_ + kInstBytes;
      next_pc = static_cast<uint64_t>(inst->imm);
      break;
    case Opcode::kRet:
      next_pc = regs_[inst->rs1];
      break;
    default: {
      if (is_cond_branch(op)) {
        const bool taken = eval_branch(op, regs_[inst->rs1], regs_[inst->rs2]);
        if (taken) next_pc = static_cast<uint64_t>(inst->imm);
        if (on_branch) on_branch(pc_, taken, next_pc);
      } else if (is_load(op)) {
        const uint64_t addr = regs_[inst->rs1] + static_cast<uint64_t>(inst->imm);
        const int bytes = mem_bytes(op);
        regs_[inst->rd] = mem_.read(addr, bytes);
        if (on_mem) on_mem(pc_, addr, bytes, /*is_store=*/false);
      } else if (is_store(op)) {
        const uint64_t addr = regs_[inst->rs1] + static_cast<uint64_t>(inst->imm);
        const int bytes = mem_bytes(op);
        mem_.write(addr, regs_[inst->rs2], bytes);
        if (on_mem) on_mem(pc_, addr, bytes, /*is_store=*/true);
      } else {
        // ALU.
        regs_[inst->rd] =
            eval_alu(op, regs_[inst->rs1], regs_[inst->rs2], inst->imm);
      }
      break;
    }
  }
  if (on_step) on_step(pc_, next_pc);
  pc_ = next_pc;
  ++executed_;
  return true;
}

uint64_t Interpreter::run(uint64_t max_insts) {
  const uint64_t start = executed_;
  const obs::Stopwatch clock;
  while (executed_ - start < max_insts && step()) {
  }
  const uint64_t ran = executed_ - start;
  // Telemetry once per run() call, never per instruction — run() is the
  // throughput backbone of planning, warming and trace capture.
  if (ran > 0) {
    obs::Registry& reg = obs::Registry::instance();
    reg.counter("interp.insts").add(ran);
    reg.histogram("interp.run_us").observe(clock.elapsed_us());
  }
  return ran;
}

void load_data_image(const Program& program, mem::MainMemory& memory) {
  for (const DataSegment& seg : program.data()) {
    memory.write_block(seg.addr, seg.bytes.data(), seg.bytes.size());
  }
}

InterpResult run_program(const Program& program, uint64_t max_insts) {
  mem::MainMemory memory;
  load_data_image(program, memory);
  Interpreter interp(program, memory);
  interp.run(max_insts);
  InterpResult r;
  r.executed = interp.executed();
  r.halted = interp.halted();
  r.regs = interp.regs();
  r.mem_digest = memory.digest();
  return r;
}

}  // namespace cfir::isa
