// Figure 8: number of accesses to the L1 data cache for the baseline
// (scalXp), the wide-bus baseline (wbXp) and the control-independence
// mechanism (ciXp), with one or two ports. The wide bus cuts accesses;
// CI cuts further despite executing extra speculative loads.
#include "common.hpp"

int main() {
  using namespace cfir;
  using namespace cfir::bench;
  const std::vector<NamedConfig> configs = {
      {"scal1p", sim::presets::scal(1, 256)},
      {"wb1p", sim::presets::wb(1, 256)},
      {"ci1p", sim::presets::ci(1, 256)},
      {"scal2p", sim::presets::scal(2, 256)},
      {"wb2p", sim::presets::wb(2, 256)},
      {"ci2p", sim::presets::ci(2, 256)},
  };
  run_figure(
      "Figure 8: L1 data cache accesses (x1000) per configuration",
      configs,
      [](const stats::SimStats& s) {
        return static_cast<double>(s.l1d_accesses) / 1000.0;
      },
      1, /*harmonic_summary=*/false);
  return 0;
}
