// Workload explorer: run any of the twelve SpecInt2000-named kernels under
// any mechanism and print the full statistics block.
//
//   $ ./example_workload_explorer                 # list workloads
//   $ ./example_workload_explorer bzip2 ci 512    # workload, policy, regs
//     policies: scal | wb | ci | ci-iw | vect | ci-h
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "workloads/workloads.hpp"

using namespace cfir;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: %s <workload> [policy=ci] [regs=512]\n\n", argv[0]);
    std::printf("workloads:\n");
    for (const auto& name : workloads::names()) {
      std::printf("  %-8s %s\n", name.c_str(),
                  workloads::describe(name).c_str());
    }
    std::printf("\npolicies: scal wb ci ci-iw vect ci-h\n");
    return 0;
  }
  const std::string wl = argv[1];
  const std::string policy = argc > 2 ? argv[2] : "ci";
  const uint32_t regs =
      argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 512;

  core::CoreConfig cfg;
  if (policy == "scal") cfg = sim::presets::scal(1, regs);
  else if (policy == "wb") cfg = sim::presets::wb(1, regs);
  else if (policy == "ci") cfg = sim::presets::ci(2, regs);
  else if (policy == "ci-iw") cfg = sim::presets::ci_window(1, regs);
  else if (policy == "vect") cfg = sim::presets::vect(2, regs);
  else if (policy == "ci-h") cfg = sim::presets::ci_specmem(1, regs, 768);
  else {
    std::fprintf(stderr, "unknown policy: %s\n", policy.c_str());
    return 1;
  }

  std::printf("%s under %s:\n  %s\n\n", wl.c_str(), cfg.label().c_str(),
              workloads::describe(wl).c_str());
  sim::Simulator sim(cfg, workloads::build(wl, sim::env_scale()));
  const stats::SimStats st = sim.run(sim::env_max_insts() != 0
                                         ? sim::env_max_insts()
                                         : 200000);
  std::printf("%s\n", st.to_string().c_str());
  return 0;
}
