// Functional reference interpreter. This is the architectural oracle: the
// out-of-order core (with or without the paper's mechanism) must produce
// exactly the same final register file and memory image. Also provides the
// dynamic branch/load traces used by unit tests and workload analysis.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "isa/program.hpp"
#include "mem/main_memory.hpp"

namespace cfir::isa {

class Interpreter {
 public:
  /// `memory` is used in place; apply the program's data image first (or use
  /// `run_program` below).
  Interpreter(const Program& program, mem::MainMemory& memory);

  /// Executes at most `max_insts` instructions; returns the number executed.
  /// Stops earlier at HALT or when the PC leaves the code image.
  uint64_t run(uint64_t max_insts = UINT64_MAX);

  /// Executes one instruction; returns false when halted / out of image.
  bool step();

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] uint64_t pc() const { return pc_; }
  /// Redirects execution (checkpoint restore); clears the halted flag.
  void set_pc(uint64_t pc) {
    pc_ = pc;
    halted_ = false;
  }
  [[nodiscard]] uint64_t executed() const { return executed_; }
  [[nodiscard]] uint64_t reg(int r) const { return regs_[static_cast<size_t>(r)]; }
  void set_reg(int r, uint64_t v) { regs_[static_cast<size_t>(r)] = v; }
  [[nodiscard]] const std::array<uint64_t, kNumLogicalRegs>& regs() const {
    return regs_;
  }

  /// Optional observers (used by tests, workload characterization and the
  /// trace recorder). `on_step` fires after every retired instruction with
  /// its pc and the pc that follows it.
  std::function<void(uint64_t pc, bool taken, uint64_t target)> on_branch;
  std::function<void(uint64_t pc, uint64_t addr, int bytes, bool is_store)>
      on_mem;
  std::function<void(uint64_t pc, uint64_t next_pc)> on_step;

 private:
  /// Shared step body; `Observed` compiles the observer checks in or out so
  /// run() can bind "any observers attached?" once instead of re-testing
  /// three std::functions per instruction.
  template <bool Observed>
  bool step_impl();

  const Program& program_;
  mem::MainMemory& mem_;
  std::array<uint64_t, kNumLogicalRegs> regs_{};
  uint64_t pc_;
  uint64_t executed_ = 0;
  bool halted_ = false;
};

/// Applies `program`'s data image to `memory`.
void load_data_image(const Program& program, mem::MainMemory& memory);

/// Convenience: clone-free full run. Applies the data image to a fresh
/// memory, runs to completion (or `max_insts`) and returns final state.
struct InterpResult {
  uint64_t executed = 0;
  bool halted = false;
  std::array<uint64_t, kNumLogicalRegs> regs{};
  uint64_t mem_digest = 0;
};
[[nodiscard]] InterpResult run_program(const Program& program,
                                       uint64_t max_insts = UINT64_MAX);

}  // namespace cfir::isa
