#include "trace/warming.hpp"

#include <stdexcept>

#include "ci/mechanism.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"
#include "util/warmable.hpp"

namespace cfir::trace {

namespace {
/// Blob header guarding against feeding a warm-state blob into a warmer
/// built from a different configuration.
constexpr uint32_t kWarmStateMagic = 0x314D5257;  // "WRM1"
}  // namespace

const char* warm_mode_name(WarmMode mode) {
  switch (mode) {
    case WarmMode::kNone: return "none";
    case WarmMode::kDetailed: return "detailed";
    case WarmMode::kFunctional: return "functional";
    case WarmMode::kHybrid: return "hybrid";
  }
  return "?";
}

WarmMode parse_warm_mode(std::string_view name) {
  if (name.empty() || name == "detailed") return WarmMode::kDetailed;
  if (name == "none") return WarmMode::kNone;
  if (name == "functional") return WarmMode::kFunctional;
  if (name == "hybrid") return WarmMode::kHybrid;
  throw std::runtime_error(
      "warm mode must be 'none', 'detailed', 'functional' or 'hybrid', got '" +
      std::string(name) + "'");
}

FunctionalWarmer::FunctionalWarmer(const core::CoreConfig& config,
                                   const isa::Program& program,
                                   isa::EngineKind engine_kind)
    : program_(program),
      policy_(config.policy),
      engine_kind_(engine_kind),
      l1i_line_bytes_(config.memory.l1i.line_bytes),
      gshare_(config.gshare_entries, config.gshare_history_bits),
      mbs_(config.mbs_sets, config.mbs_ways),
      stride_(config.stride_sets, config.stride_ways),
      hier_(config.memory) {}

void FunctionalWarmer::on_record(const TraceRecord& rec) {
  // Instruction fetch: one L1I access per line transition, mirroring the
  // core's fetch stage (last_fetch_line_ there, last_fetch_line_ here).
  const uint64_t line = rec.pc / l1i_line_bytes_;
  if (line != last_fetch_line_) {
    hier_.warm_inst(rec.pc);
    last_fetch_line_ = line;
  }

  switch (rec.kind) {
    case RecordKind::kBranch:
      gshare_.warm_commit(rec.pc, rec.taken);
      mbs_.update(rec.pc, rec.taken);
      break;
    case RecordKind::kLoad:
      hier_.warm_data(rec.addr, /*is_write=*/false);
      if (policy_ == core::Policy::kCi || policy_ == core::Policy::kVect) {
        stride_.train(rec.pc, rec.addr);
        if (policy_ == core::Policy::kVect) {
          // The vect policy's commit rule (ci/mechanism.cpp on_commit):
          // every confident, non-zero-stride load is selected. Purely
          // commit-driven, so functional warming reproduces it exactly.
          // The ci policy's S flags are episode-driven (speculative state
          // a commit stream cannot derive) and deliberately stay cold:
          // pre-selecting every strided load was tried and over-drives the
          // replica engine in short windows (twolf IPC +45%), a worse bias
          // than the cold-selection ramp it removes.
          const ci::StridePredictor::Info sp = stride_.lookup(rec.pc);
          if (sp.confident && !sp.selected && sp.stride != 0) {
            stride_.select(rec.pc, 0);
          }
        }
      }
      break;
    case RecordKind::kStore:
      hier_.warm_data(rec.addr, /*is_write=*/true);
      break;
    case RecordKind::kPlain: {
      // CALL/RET drive the return address stack; recovery snapshots make
      // the detailed core's final RAS equal the committed push/pop stream.
      const isa::Instruction* ip = program_.try_at(rec.pc);
      if (ip != nullptr) {
        if (ip->op == isa::Opcode::kCall) {
          ras_.push(rec.pc + isa::kInstBytes);
        } else if (ip->op == isa::Opcode::kRet) {
          ras_.pop();
        }
      }
      break;
    }
  }
  ++warmed_;
}

void FunctionalWarmer::ensure_engine() {
  if (engine_ != nullptr) return;
  engine_mem_ = std::make_unique<mem::MainMemory>();
  isa::load_data_image(program_, *engine_mem_);
  engine_ = std::make_unique<isa::FunctionalEngine>(program_, *engine_mem_,
                                                    engine_kind_);
  // A warmer restored from a serialized blob already holds the state of
  // [0, warmed_): fast-skip the engine there with the sink still unset so
  // the prefix is architecturally executed but not streamed (and trained)
  // a second time.
  if (warmed_ > 0) engine_->run(warmed_);
  engine_->set_sink([this](uint64_t, const isa::StepEvent* ev, size_t n) {
    for (size_t i = 0; i < n; ++i) on_record(to_trace_record(ev[i]));
  });
}

void FunctionalWarmer::advance_to(uint64_t n_insts) {
  ensure_engine();
  engine_->run_to(n_insts);
}

void FunctionalWarmer::advance_on_trace(TraceReader& reader,
                                        uint64_t n_insts) {
  if (n_insts <= warmed_) return;
  reader.seek_to(warmed_);
  TraceRecord rec;
  while (warmed_ < n_insts) {
    if (!reader.next(rec)) {
      throw std::runtime_error(
          "FunctionalWarmer::advance_on_trace: trace ends at " +
          std::to_string(warmed_) + ", warm target " +
          std::to_string(n_insts));
    }
    on_record(rec);  // increments warmed_
  }
  // A later advance_to() must resume from the new position; drop any live
  // engine so ensure_engine() fast-skips the trace-warmed prefix.
  engine_.reset();
  engine_mem_.reset();
}

void FunctionalWarmer::apply_to(sim::Simulator& sim) const {
  core::Core& core = sim.core();
  core.gshare() = gshare_;
  core.ras() = ras_;
  core.mbs() = mbs_;
  core.hierarchy() = hier_;
  if (ci::CiMechanism* mech = sim.ci_mechanism()) {
    mech->stride_predictor() = stride_;
  }
}

std::vector<uint8_t> FunctionalWarmer::serialize_state() const {
  util::ByteWriter out;
  out.u32(kWarmStateMagic);
  out.u8(static_cast<uint8_t>(policy_));
  out.u64(warmed_);
  out.u64(last_fetch_line_);
  gshare_.serialize(out);
  mbs_.serialize(out);
  ras_.serialize(out);
  stride_.serialize(out);
  hier_.serialize(out);
  return out.take();
}

void FunctionalWarmer::deserialize_state(const std::vector<uint8_t>& blob) {
  util::ByteReader in(blob);
  if (in.u32() != kWarmStateMagic) {
    throw std::runtime_error("FunctionalWarmer: bad warm-state magic");
  }
  if (in.u8() != static_cast<uint8_t>(policy_)) {
    throw std::runtime_error("FunctionalWarmer: warm-state policy mismatch");
  }
  warmed_ = in.u64();
  last_fetch_line_ = in.u64();
  // Drop any live engine: it sits at the pre-restore position, and the
  // next advance_to() must resume from warmed_ (ensure_engine fast-skips
  // the restored prefix).
  engine_.reset();
  engine_mem_.reset();
  gshare_.deserialize(in);
  mbs_.deserialize(in);
  ras_.deserialize(in);
  stride_.deserialize(in);
  hier_.deserialize(in);
  if (!in.done()) {
    throw std::runtime_error("FunctionalWarmer: trailing warm-state bytes");
  }
}

std::vector<std::vector<uint8_t>> capture_warm_states(
    const core::CoreConfig& config, const isa::Program& program,
    const std::vector<uint64_t>& targets) {
  obs::Span span("warming.capture", targets.size());
  const obs::Stopwatch clock;
  std::vector<std::vector<uint8_t>> out;
  out.reserve(targets.size());
  FunctionalWarmer warmer(config, program);
  uint64_t prev = 0;
  for (const uint64_t target : targets) {
    if (target < prev) {
      throw std::runtime_error("capture_warm_states: targets not sorted");
    }
    prev = target;
    warmer.advance_to(target);
    out.push_back(warmer.serialize_state());
  }
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("warming.insts").add(prev);
  reg.histogram("warming.capture_us").observe(clock.elapsed_us());
  return out;
}

std::vector<std::vector<std::vector<uint8_t>>> capture_warm_states_grid(
    const std::vector<core::CoreConfig>& configs, const isa::Program& program,
    const std::vector<uint64_t>& targets) {
  if (configs.empty()) {
    throw std::runtime_error("capture_warm_states_grid: no configs");
  }
  std::vector<std::unique_ptr<FunctionalWarmer>> warmers;
  warmers.reserve(configs.size());
  for (const core::CoreConfig& config : configs) {
    warmers.push_back(std::make_unique<FunctionalWarmer>(config, program));
  }

  // One functional-engine pass; the sink delivers the same TraceRecord
  // stream FunctionalWarmer::advance_to feeds itself, so the fanned-out
  // blobs match solo captures bit for bit.
  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  isa::FunctionalEngine engine(program, memory);
  engine.set_sink([&](uint64_t, const isa::StepEvent* ev, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      const TraceRecord rec = to_trace_record(ev[i]);
      for (auto& warmer : warmers) warmer->on_record(rec);
    }
  });

  obs::Span span("warming.capture", targets.size());
  const obs::Stopwatch clock;
  std::vector<std::vector<std::vector<uint8_t>>> out(configs.size());
  for (auto& per_config : out) per_config.reserve(targets.size());
  uint64_t prev = 0;
  for (const uint64_t target : targets) {
    if (target < prev) {
      throw std::runtime_error("capture_warm_states_grid: targets not sorted");
    }
    prev = target;
    engine.run_to(target);
    for (size_t c = 0; c < warmers.size(); ++c) {
      out[c].push_back(warmers[c]->serialize_state());
    }
  }
  // The streamed prefix is counted once however many configs fanned out —
  // the same convention ShardResult::warmed_insts uses.
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("warming.insts").add(engine.executed());
  reg.histogram("warming.capture_us").observe(clock.elapsed_us());
  return out;
}

std::vector<std::vector<std::vector<uint8_t>>> capture_warm_states_grid(
    const std::vector<core::CoreConfig>& configs, const isa::Program& program,
    TraceReader& reader, const std::vector<uint64_t>& targets) {
  if (configs.empty()) {
    throw std::runtime_error("capture_warm_states_grid: no configs");
  }
  std::vector<std::unique_ptr<FunctionalWarmer>> warmers;
  warmers.reserve(configs.size());
  for (const core::CoreConfig& config : configs) {
    warmers.push_back(std::make_unique<FunctionalWarmer>(config, program));
  }

  // The stored records ARE the engine's event stream (the recorder used
  // the same sink), so fanning them out trains byte-identical state — but
  // a CFIRTRC2 reader only decodes the blocks covering [0, last target).
  obs::Span span("warming.capture", targets.size());
  const obs::Stopwatch clock;
  std::vector<std::vector<std::vector<uint8_t>>> out(configs.size());
  for (auto& per_config : out) per_config.reserve(targets.size());
  reader.seek_to(0);
  uint64_t pos = 0;
  TraceRecord rec;
  for (const uint64_t target : targets) {
    if (target < pos) {
      throw std::runtime_error("capture_warm_states_grid: targets not sorted");
    }
    while (pos < target) {
      if (!reader.next(rec)) {
        throw std::runtime_error(
            "capture_warm_states_grid: trace ends at " + std::to_string(pos) +
            ", warm target " + std::to_string(target));
      }
      for (auto& warmer : warmers) warmer->on_record(rec);
      ++pos;
    }
    for (size_t c = 0; c < warmers.size(); ++c) {
      out[c].push_back(warmers[c]->serialize_state());
    }
  }
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("warming.insts").add(pos);
  reg.histogram("warming.capture_us").observe(clock.elapsed_us());
  return out;
}

}  // namespace cfir::trace
