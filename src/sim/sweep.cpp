#include "sim/sweep.hpp"

#include <atomic>
#include <mutex>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace cfir::sim {

namespace {
uint64_t env_u64(const char* name, uint64_t dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  return std::strtoull(v, nullptr, 10);
}
}  // namespace

uint32_t env_scale() {
  return static_cast<uint32_t>(env_u64("CFIR_SCALE", 1));
}
int env_threads() { return static_cast<int>(env_u64("CFIR_THREADS", 0)); }
uint64_t env_max_insts() { return env_u64("CFIR_MAX_INSTS", 0); }

std::vector<RunOutcome> run_all(const std::vector<RunSpec>& specs,
                                int threads) {
  if (threads <= 0) threads = env_threads();
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads <= 0) threads = 1;
  threads = std::min<int>(threads, static_cast<int>(specs.size()));

  std::vector<RunOutcome> out(specs.size());
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::string error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= specs.size() || failed.load()) break;
      const RunSpec& spec = specs[i];
      try {
        isa::Program program =
            workloads::build(spec.workload, spec.scale);
        Simulator sim(spec.config, std::move(program));
        const uint64_t cap =
            spec.max_insts == 0 ? UINT64_MAX : spec.max_insts;
        out[i].spec = spec;
        out[i].stats = sim.run(cap);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lk(error_mu);
        error = std::string("run '") + spec.workload + "/" +
                spec.config_name + "' failed: " + e.what();
        failed.store(true);
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  if (failed.load()) throw std::runtime_error(error);
  return out;
}

}  // namespace cfir::sim
