#include "isa/interpreter.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "isa/assembler.hpp"

namespace cfir::isa {
namespace {

TEST(Interpreter, SumLoop) {
  const Program p = assemble_text(R"(
    movi r1, 10
    movi r2, 0
  loop:
    add r2, r2, r1
    add r1, r1, -1
    bne r1, r3, loop
    halt
  )");
  const InterpResult r = run_program(p);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.regs[2], 55u);
  EXPECT_EQ(r.regs[1], 0u);
  EXPECT_EQ(r.executed, 2 + 3 * 10u);
}

TEST(Interpreter, Figure1HammockCounts) {
  // 512 words, ~50% zero: r2 non-zero count, r3 zero count, r4 sum.
  const Program p = cfir::testing::figure1_program(512, 50, 7);
  const InterpResult r = run_program(p);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.regs[2] + r.regs[3], 512u);
  EXPECT_GT(r.regs[3], 100u);  // plenty of zeros at p=0.5
  EXPECT_GT(r.regs[2], 100u);
  EXPECT_GT(r.regs[4], 0u);
}

TEST(Interpreter, MemoryRoundTrip) {
  Assembler as;
  const uint64_t buf = as.reserve("buf", 32);
  as.movi(1, static_cast<int64_t>(buf));
  as.movi(2, 0xDEAD);
  as.st(2, 1, 8, 8);
  as.ld(3, 1, 8, 8);
  as.st(2, 1, 16, 2);   // narrow store truncates
  as.ld(4, 1, 16, 2);
  as.ld(5, 1, 16, 1);
  as.halt();
  const InterpResult r = run_program(as.assemble());
  EXPECT_EQ(r.regs[3], 0xDEADu);
  EXPECT_EQ(r.regs[4], 0xDEADu);
  EXPECT_EQ(r.regs[5], 0xADu);
}

TEST(Interpreter, CallRet) {
  const Program p = assemble_text(R"(
    movi r1, 5
    call f
    add r3, r2, r2
    halt
  f:
    add r2, r1, r1
    ret
  )");
  const InterpResult r = run_program(p);
  EXPECT_EQ(r.regs[2], 10u);
  EXPECT_EQ(r.regs[3], 20u);
  EXPECT_TRUE(r.halted);
}

TEST(Interpreter, StopsWhenRunningOffImage) {
  Assembler as;
  as.movi(1, 1);
  as.movi(2, 2);  // no halt: falls off the end
  const InterpResult r = run_program(as.assemble());
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.executed, 2u);
}

TEST(Interpreter, MaxInstsCap) {
  const Program p = assemble_text(R"(
    movi r1, 0
  loop:
    add r1, r1, 1
    jmp loop
  )");
  const InterpResult r = run_program(p, 101);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.executed, 101u);
  EXPECT_EQ(r.regs[1], 50u);  // 1 movi + 50 adds + 50 jmps
}

TEST(Interpreter, BranchObserver) {
  const Program p = cfir::testing::figure1_program(64, 50, 3);
  mem::MainMemory m;
  load_data_image(p, m);
  Interpreter in(p, m);
  uint64_t branches = 0, taken = 0;
  in.on_branch = [&](uint64_t, bool t, uint64_t) {
    ++branches;
    if (t) ++taken;
  };
  in.run();
  EXPECT_EQ(branches, 64u + 64u);  // hammock + loop-close per element
  EXPECT_GT(taken, 64u);           // loop branch taken 63 times + hammocks
}

TEST(Interpreter, MemObserver) {
  const Program p = cfir::testing::figure1_program(32, 0, 3);
  mem::MainMemory m;
  load_data_image(p, m);
  Interpreter in(p, m);
  uint64_t loads = 0;
  uint64_t last_addr = 0;
  int64_t stride = 0;
  in.on_mem = [&](uint64_t, uint64_t addr, int bytes, bool is_store) {
    EXPECT_FALSE(is_store);
    EXPECT_EQ(bytes, 8);
    if (loads > 0) stride = static_cast<int64_t>(addr - last_addr);
    last_addr = addr;
    ++loads;
  };
  in.run();
  EXPECT_EQ(loads, 32u);
  EXPECT_EQ(stride, 8);  // unit-strided walk
}

TEST(Interpreter, DeterministicDigest) {
  const Program p = cfir::testing::random_program(123);
  const InterpResult a = run_program(p, 200000);
  const InterpResult b = run_program(p, 200000);
  EXPECT_EQ(a.mem_digest, b.mem_digest);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.regs, b.regs);
}

}  // namespace
}  // namespace cfir::isa
