// Reusable work-queue thread pool behind sim::parallel_for and the
// block-parallel streaming paths (trace decode waves, the warming
// pipeline). parallel_for used to spawn a fresh set of std::threads per
// call, which is fine for one coarse fan-out but charges a thread-spawn
// per wave to loops like bbv_from_trace's 32-block decode waves and the
// warming pipeline's per-batch config fan-out. ThreadPool keeps one set
// of workers alive for the process and hands them batches instead.
//
// Batch semantics are exactly parallel_for's: indices 0..n-1 are claimed
// atomically in order, every claimed index runs `fn` exactly once, the
// first thrown exception stops further claims of that batch and is
// rethrown on the submitting thread after the batch drains
// (tests/test_sweep.cpp locks this). The submitting thread participates
// in draining its own batch, which both bounds a batch's concurrency at
// `max_workers + 1` and makes nested run() calls (a task submitting its
// own batch) deadlock-free: the innermost submitter always makes
// progress on its own indices even when every pool worker is busy.
// run() may be called concurrently from any number of threads — open
// batches share the workers FIFO — which is what lets the warming
// pipeline's decode prefetch and per-config fan-out overlap on one pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cfir::sim {

class ThreadPool {
 public:
  /// `threads` <= 0 resolves like parallel_for: CFIR_THREADS, else the
  /// hardware concurrency, else 1. This is the worker count; a run()
  /// caller adds itself on top, so a batch capped at `max_workers = T-1`
  /// executes on at most T threads — the old parallel_for(T) contract.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Invokes fn(0..n-1), each index exactly once, on up to
  /// `max_workers` pool workers plus the calling thread (max_workers < 0
  /// means "any"). Blocks until every claimed index finished, then
  /// rethrows the first exception a task threw. Safe to call
  /// concurrently and from inside a task.
  void run(size_t n, const std::function<void(size_t)>& fn,
           int max_workers = -1);

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// The process-wide memoized pool (sized from CFIR_THREADS / hardware
  /// concurrency at first use). parallel_for and the streaming decode /
  /// warming paths all share it, so total pool threads stay bounded by
  /// one machine-sized set however many fan-outs are in flight.
  static ThreadPool& shared();

 private:
  // One run() call. Lives on the submitter's stack; run() removes it
  // from queue_ only after in_flight drops to 0 and no claims remain, so
  // workers never touch a dead batch. All fields are guarded by the
  // pool-wide mu_ except fn execution itself (mu_ is released around it;
  // tasks here are coarse — block decodes, config feeds, interval sims —
  // so one pool-wide mutex for claim bookkeeping is not a bottleneck).
  struct Batch {
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
    size_t next = 0;       ///< first unclaimed index
    size_t in_flight = 0;  ///< claimed but not yet finished
    bool failed = false;   ///< stop handing out further indices
    int helpers = 0;       ///< pool workers still allowed to join
    std::exception_ptr first_error;

    [[nodiscard]] bool open() const { return !failed && next < n; }
  };

  void worker_main(int lane);
  /// Claims and runs indices of `b` until it has none left to hand out.
  /// `lk` must hold mu_ on entry and holds it again on return.
  void drain(Batch& b, std::unique_lock<std::mutex>& lk);

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: a batch may need help
  std::condition_variable done_cv_;  ///< submitters: a batch may be done
  std::vector<Batch*> queue_;        ///< open batches, FIFO
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cfir::sim
