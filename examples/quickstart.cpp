// Quickstart: build the paper's Figure 1 program with the assembler API,
// run it on the baseline superscalar and on the control-independence
// machine, and compare.
//
//   $ ./example_quickstart
#include <cstdio>
#include <random>

#include "isa/assembler.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"

using namespace cfir;

int main() {
  // The code of Figure 1: count zero / non-zero elements of a[], accumulate
  // the sum. Random data makes the hammock branch hard to predict.
  isa::Assembler as;
  std::mt19937_64 gen(2005);
  const size_t n = 4096;
  const uint64_t a = as.reserve("a", n * 8);
  for (size_t i = 0; i < n; ++i) {
    as.init_word(a + 8 * i, gen() & 1 ? 1 + gen() % 100 : 0);
  }
  as.movi(1, 0);                       // I1: R1 = 0 (index)
  as.movi(2, 0);                       // I2: R2 = 0 (non-zero count)
  as.movi(3, 0);                       // I3: R3 = 0 (zero count)
  as.movi(4, 0);                       // I4: R4 = 0 (sum)
  as.movi(5, static_cast<int64_t>(a));
  as.movi(6, static_cast<int64_t>(n * 8));
  as.movi(7, 0);
  as.label("loop");
  as.add(0, 5, 1);
  as.ld(0, 0, 0, 8);                   // I5: LD R0, a[R1]
  as.beq(0, 7, "else_");               // I6/I7: BE else
  as.addi(2, 2, 1);                    // I8: INC R2
  as.jmp("ip");                        // I9: BR IP
  as.label("else_");
  as.addi(3, 3, 1);                    // I10: INC R3
  as.label("ip");
  as.add(4, 4, 0);                     // I11: ADD R4, R4, R0  (control indep.)
  as.addi(1, 1, 8);                    // I12: ADD R1, 8
  as.blt(1, 6, "loop");                // I13/I14: BLE loop
  as.halt();
  const isa::Program program = as.assemble();

  std::printf("Figure 1 program (%zu static instructions):\n%s\n",
              program.size(), program.listing().c_str());

  auto report = [](const char* name, sim::Simulator& s,
                   const stats::SimStats& st) {
    std::printf("%-18s IPC %.3f  cycles %-8llu  mispredict rate %.1f%%  "
                "reused %llu (%.1f%% of committed)\n",
                name, st.ipc(), static_cast<unsigned long long>(st.cycles),
                100.0 * st.mispredict_rate(),
                static_cast<unsigned long long>(st.reused_committed),
                100.0 * st.reuse_fraction());
    std::printf("%-18s   non-zero(R2)=%llu zero(R3)=%llu sum(R4)=%llu\n", "",
                static_cast<unsigned long long>(s.arch_reg(2)),
                static_cast<unsigned long long>(s.arch_reg(3)),
                static_cast<unsigned long long>(s.arch_reg(4)));
  };

  {
    sim::Simulator s(sim::presets::scal(1, 512), program);
    const auto st = s.run(1000000);
    report("superscalar", s, st);
  }
  {
    sim::Simulator s(sim::presets::wb(1, 512), program);
    const auto st = s.run(1000000);
    report("wide bus", s, st);
  }
  {
    sim::Simulator s(sim::presets::ci(1, 512), program);
    const auto st = s.run(1000000);
    report("control indep.", s, st);
    std::printf("\nCI detail: %llu hard mispredicts, %llu episodes with "
                "selection, %llu with reuse, %llu replicas executed, "
                "safety net fired %llu times\n",
                static_cast<unsigned long long>(st.hard_mispredicts),
                static_cast<unsigned long long>(st.ep_ci_selected),
                static_cast<unsigned long long>(st.ep_ci_reused),
                static_cast<unsigned long long>(st.replicas_executed),
                static_cast<unsigned long long>(st.safety_net_recoveries));
  }
  return 0;
}
