#include "trace/warming.hpp"

#include <algorithm>
#include <stdexcept>

#include "ci/mechanism.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/pool.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "trace/batch_reader.hpp"
#include "util/warmable.hpp"

namespace cfir::trace {

namespace {
/// Blob header guarding against feeding a warm-state blob into a warmer
/// built from a different configuration.
constexpr uint32_t kWarmStateMagic = 0x314D5257;  // "WRM1"

/// Engine-path fan-out batch: one default trace block's worth of
/// records, so the engine-fed and trace-fed pipelines see the same
/// batch granularity.
constexpr size_t kEngineBatch = kTraceBlockLen;

/// jobs < 0 → CFIR_WARM_JOBS; <= 0 → auto (the shared pool's size, i.e.
/// CFIR_THREADS / hardware concurrency); 1 = sequential reference path.
int resolve_warm_jobs(int jobs) {
  if (jobs < 0) jobs = sim::env_warm_jobs();
  if (jobs <= 0) jobs = sim::ThreadPool::shared().size();
  return std::max(jobs, 1);
}

void check_targets_sorted(const std::vector<uint64_t>& targets) {
  for (size_t i = 1; i < targets.size(); ++i) {
    if (targets[i] < targets[i - 1]) {
      throw std::runtime_error("capture_warm_states_grid: targets not sorted");
    }
  }
}

[[noreturn]] void throw_trace_truncated(uint64_t pos, uint64_t target,
                                        size_t index, size_t n_targets) {
  throw std::runtime_error(
      "capture_warm_states_grid: trace ends at " + std::to_string(pos) +
      " records, warm target " + std::to_string(target) + " (interval " +
      std::to_string(index) + " of " + std::to_string(n_targets) + ")");
}

std::vector<std::unique_ptr<FunctionalWarmer>> make_warmers(
    const std::vector<core::CoreConfig>& configs,
    const isa::Program& program) {
  std::vector<std::unique_ptr<FunctionalWarmer>> warmers;
  warmers.reserve(configs.size());
  for (const core::CoreConfig& config : configs) {
    warmers.push_back(std::make_unique<FunctionalWarmer>(config, program));
  }
  return warmers;
}

/// Per-config fan-out of one decoded batch: one task per config, each
/// walking the identical record span in stream order on its own (single
/// threaded) warmer and serializing snapshot blobs for the targets that
/// land inside the span — so serialization happens off the decode
/// thread, inside the task that owns the warmer. Targets are consumed
/// when `pos` reaches them BEFORE the record at `pos` trains, exactly
/// like the sequential loop; a target equal to the batch's end position
/// is deliberately left to the next batch (or the caller's
/// finalization), keeping the consumption point unambiguous. Returns
/// the target index the caller should resume from.
size_t feed_batch_grid(std::vector<std::unique_ptr<FunctionalWarmer>>& warmers,
                       const std::vector<std::vector<TraceRecord>>& blocks,
                       uint64_t first_record, size_t records,
                       const std::vector<uint64_t>& targets, size_t ti,
                       std::vector<std::vector<std::vector<uint8_t>>>& out,
                       int jobs) {
  obs::Registry& reg = obs::Registry::instance();
  const obs::Stopwatch feed_clock;
  const size_t nt = targets.size();
  sim::ThreadPool::shared().run(
      warmers.size(),
      [&](size_t c) {
        FunctionalWarmer& warmer = *warmers[c];
        size_t t = ti;
        uint64_t pos = first_record;
        for (const auto& block : blocks) {
          for (const TraceRecord& rec : block) {
            while (t < nt && targets[t] == pos) {
              out[c][t++] = warmer.serialize_state();
            }
            warmer.on_record(rec);
            ++pos;
          }
        }
      },
      jobs - 1);
  reg.counter("warming.feed_us").add(feed_clock.elapsed_us());
  reg.counter("warming.batches").add(1);
  const uint64_t end = first_record + records;
  while (ti < nt && targets[ti] < end) ++ti;
  return ti;
}

/// Snapshots targets [ti, nt) — all sitting exactly at the current
/// stream position — in parallel across configs.
void snapshot_tail_grid(std::vector<std::unique_ptr<FunctionalWarmer>>& warmers,
                        const std::vector<uint64_t>& targets, size_t ti,
                        std::vector<std::vector<std::vector<uint8_t>>>& out,
                        int jobs) {
  if (ti >= targets.size()) return;
  sim::ThreadPool::shared().run(
      warmers.size(),
      [&](size_t c) {
        for (size_t t = ti; t < targets.size(); ++t) {
          out[c][t] = warmers[c]->serialize_state();
        }
      },
      jobs - 1);
}
}  // namespace

const char* warm_mode_name(WarmMode mode) {
  switch (mode) {
    case WarmMode::kNone: return "none";
    case WarmMode::kDetailed: return "detailed";
    case WarmMode::kFunctional: return "functional";
    case WarmMode::kHybrid: return "hybrid";
  }
  return "?";
}

WarmMode parse_warm_mode(std::string_view name) {
  if (name.empty() || name == "detailed") return WarmMode::kDetailed;
  if (name == "none") return WarmMode::kNone;
  if (name == "functional") return WarmMode::kFunctional;
  if (name == "hybrid") return WarmMode::kHybrid;
  throw std::runtime_error(
      "warm mode must be 'none', 'detailed', 'functional' or 'hybrid', got '" +
      std::string(name) + "'");
}

FunctionalWarmer::FunctionalWarmer(const core::CoreConfig& config,
                                   const isa::Program& program,
                                   isa::EngineKind engine_kind)
    : program_(program),
      policy_(config.policy),
      engine_kind_(engine_kind),
      l1i_line_bytes_(config.memory.l1i.line_bytes),
      gshare_(config.gshare_entries, config.gshare_history_bits),
      mbs_(config.mbs_sets, config.mbs_ways),
      stride_(config.stride_sets, config.stride_ways),
      hier_(config.memory) {}

void FunctionalWarmer::on_record(const TraceRecord& rec) {
  // Instruction fetch: one L1I access per line transition, mirroring the
  // core's fetch stage (last_fetch_line_ there, last_fetch_line_ here).
  const uint64_t line = rec.pc / l1i_line_bytes_;
  if (line != last_fetch_line_) {
    hier_.warm_inst(rec.pc);
    last_fetch_line_ = line;
  }

  switch (rec.kind) {
    case RecordKind::kBranch:
      gshare_.warm_commit(rec.pc, rec.taken);
      mbs_.update(rec.pc, rec.taken);
      break;
    case RecordKind::kLoad:
      hier_.warm_data(rec.addr, /*is_write=*/false);
      if (policy_ == core::Policy::kCi || policy_ == core::Policy::kVect) {
        stride_.train(rec.pc, rec.addr);
        if (policy_ == core::Policy::kVect) {
          // The vect policy's commit rule (ci/mechanism.cpp on_commit):
          // every confident, non-zero-stride load is selected. Purely
          // commit-driven, so functional warming reproduces it exactly.
          // The ci policy's S flags are episode-driven (speculative state
          // a commit stream cannot derive) and deliberately stay cold:
          // pre-selecting every strided load was tried and over-drives the
          // replica engine in short windows (twolf IPC +45%), a worse bias
          // than the cold-selection ramp it removes.
          const ci::StridePredictor::Info sp = stride_.lookup(rec.pc);
          if (sp.confident && !sp.selected && sp.stride != 0) {
            stride_.select(rec.pc, 0);
          }
        }
      }
      break;
    case RecordKind::kStore:
      hier_.warm_data(rec.addr, /*is_write=*/true);
      break;
    case RecordKind::kPlain: {
      // CALL/RET drive the return address stack; recovery snapshots make
      // the detailed core's final RAS equal the committed push/pop stream.
      const isa::Instruction* ip = program_.try_at(rec.pc);
      if (ip != nullptr) {
        if (ip->op == isa::Opcode::kCall) {
          ras_.push(rec.pc + isa::kInstBytes);
        } else if (ip->op == isa::Opcode::kRet) {
          ras_.pop();
        }
      }
      break;
    }
  }
  ++warmed_;
}

void FunctionalWarmer::ensure_engine() {
  if (engine_ != nullptr) return;
  engine_mem_ = std::make_unique<mem::MainMemory>();
  isa::load_data_image(program_, *engine_mem_);
  engine_ = std::make_unique<isa::FunctionalEngine>(program_, *engine_mem_,
                                                    engine_kind_);
  // A warmer restored from a serialized blob already holds the state of
  // [0, warmed_): fast-skip the engine there with the sink still unset so
  // the prefix is architecturally executed but not streamed (and trained)
  // a second time.
  if (warmed_ > 0) engine_->run(warmed_);
  engine_->set_sink([this](uint64_t, const isa::StepEvent* ev, size_t n) {
    for (size_t i = 0; i < n; ++i) on_record(to_trace_record(ev[i]));
  });
}

void FunctionalWarmer::advance_to(uint64_t n_insts) {
  ensure_engine();
  engine_->run_to(n_insts);
}

void FunctionalWarmer::advance_on_trace(TraceReader& reader,
                                        uint64_t n_insts,
                                        std::string_view context) {
  if (n_insts <= warmed_) return;
  reader.seek_to(warmed_);
  TraceRecord rec;
  while (warmed_ < n_insts) {
    if (!reader.next(rec)) {
      std::string msg =
          "FunctionalWarmer::advance_on_trace: trace ends at " +
          std::to_string(warmed_) + " records, warm target " +
          std::to_string(n_insts);
      if (!context.empty()) {
        msg += " (";
        msg += context;
        msg += ")";
      }
      throw std::runtime_error(msg);
    }
    on_record(rec);  // increments warmed_
  }
  // A later advance_to() must resume from the new position; drop any live
  // engine so ensure_engine() fast-skips the trace-warmed prefix.
  engine_.reset();
  engine_mem_.reset();
}

void FunctionalWarmer::apply_to(sim::Simulator& sim) const {
  core::Core& core = sim.core();
  core.gshare() = gshare_;
  core.ras() = ras_;
  core.mbs() = mbs_;
  core.hierarchy() = hier_;
  if (ci::CiMechanism* mech = sim.ci_mechanism()) {
    mech->stride_predictor() = stride_;
  }
}

std::vector<uint8_t> FunctionalWarmer::serialize_state() const {
  util::ByteWriter out;
  out.u32(kWarmStateMagic);
  out.u8(static_cast<uint8_t>(policy_));
  out.u64(warmed_);
  out.u64(last_fetch_line_);
  gshare_.serialize(out);
  mbs_.serialize(out);
  ras_.serialize(out);
  stride_.serialize(out);
  hier_.serialize(out);
  return out.take();
}

void FunctionalWarmer::deserialize_state(const std::vector<uint8_t>& blob) {
  util::ByteReader in(blob);
  if (in.u32() != kWarmStateMagic) {
    throw std::runtime_error("FunctionalWarmer: bad warm-state magic");
  }
  if (in.u8() != static_cast<uint8_t>(policy_)) {
    throw std::runtime_error("FunctionalWarmer: warm-state policy mismatch");
  }
  warmed_ = in.u64();
  last_fetch_line_ = in.u64();
  // Drop any live engine: it sits at the pre-restore position, and the
  // next advance_to() must resume from warmed_ (ensure_engine fast-skips
  // the restored prefix).
  engine_.reset();
  engine_mem_.reset();
  gshare_.deserialize(in);
  mbs_.deserialize(in);
  ras_.deserialize(in);
  stride_.deserialize(in);
  hier_.deserialize(in);
  if (!in.done()) {
    throw std::runtime_error("FunctionalWarmer: trailing warm-state bytes");
  }
}

std::vector<std::vector<uint8_t>> capture_warm_states(
    const core::CoreConfig& config, const isa::Program& program,
    const std::vector<uint64_t>& targets) {
  obs::Span span("warming.capture", targets.size());
  const obs::Stopwatch clock;
  std::vector<std::vector<uint8_t>> out;
  out.reserve(targets.size());
  FunctionalWarmer warmer(config, program);
  uint64_t prev = 0;
  for (const uint64_t target : targets) {
    if (target < prev) {
      throw std::runtime_error("capture_warm_states: targets not sorted");
    }
    prev = target;
    warmer.advance_to(target);
    out.push_back(warmer.serialize_state());
  }
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("warming.insts").add(prev);
  reg.histogram("warming.capture_us").observe(clock.elapsed_us());
  return out;
}

namespace {
/// Sequential engine-fed grid capture: the pre-pipeline reference path
/// (jobs == 1), kept verbatim as the oracle the pipelined path is
/// differential-tested against.
std::vector<std::vector<std::vector<uint8_t>>> capture_grid_engine_sequential(
    const std::vector<core::CoreConfig>& configs, const isa::Program& program,
    const std::vector<uint64_t>& targets) {
  std::vector<std::unique_ptr<FunctionalWarmer>> warmers =
      make_warmers(configs, program);

  // One functional-engine pass; the sink delivers the same TraceRecord
  // stream FunctionalWarmer::advance_to feeds itself, so the fanned-out
  // blobs match solo captures bit for bit.
  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  isa::FunctionalEngine engine(program, memory);
  engine.set_sink([&](uint64_t, const isa::StepEvent* ev, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      const TraceRecord rec = to_trace_record(ev[i]);
      for (auto& warmer : warmers) warmer->on_record(rec);
    }
  });

  std::vector<std::vector<std::vector<uint8_t>>> out(configs.size());
  for (auto& per_config : out) per_config.reserve(targets.size());
  for (const uint64_t target : targets) {
    engine.run_to(target);
    for (size_t c = 0; c < warmers.size(); ++c) {
      out[c].push_back(warmers[c]->serialize_state());
    }
  }
  // The streamed prefix is counted once however many configs fanned out —
  // the same convention ShardResult::warmed_insts uses.
  obs::Registry::instance().counter("warming.insts").add(engine.executed());
  return out;
}

/// Pipelined engine-fed grid capture: the engine streams block-sized
/// record batches into a buffer (an engine can't decode ahead of itself,
/// so this is the documented sequential-decode fallback), then each
/// batch trains all configs in parallel via feed_batch_grid. A program
/// that halts before the last target snapshots the remaining targets at
/// its final state, exactly like the sequential engine path.
std::vector<std::vector<std::vector<uint8_t>>> capture_grid_engine_pipelined(
    const std::vector<core::CoreConfig>& configs, const isa::Program& program,
    const std::vector<uint64_t>& targets, int jobs) {
  std::vector<std::unique_ptr<FunctionalWarmer>> warmers =
      make_warmers(configs, program);
  std::vector<std::vector<std::vector<uint8_t>>> out(
      configs.size(), std::vector<std::vector<uint8_t>>(targets.size()));

  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  isa::FunctionalEngine engine(program, memory);
  // One persistent single-block buffer: the sink fills blocks[0], the
  // fan-out reads it, clear() keeps the capacity across batches.
  std::vector<std::vector<TraceRecord>> blocks(1);
  std::vector<TraceRecord>& batch = blocks.front();
  engine.set_sink([&](uint64_t, const isa::StepEvent* ev, size_t n) {
    for (size_t i = 0; i < n; ++i) batch.push_back(to_trace_record(ev[i]));
  });

  obs::Registry& reg = obs::Registry::instance();
  const uint64_t limit = targets.empty() ? 0 : targets.back();
  uint64_t pos = 0;
  size_t ti = 0;
  while (pos < limit) {
    batch.clear();
    const obs::Stopwatch decode_clock;
    engine.run_to(std::min(limit, pos + kEngineBatch));
    reg.counter("warming.decode_wait_us").add(decode_clock.elapsed_us());
    if (batch.empty()) break;  // program halted before the last target
    const size_t records = batch.size();
    ti = feed_batch_grid(warmers, blocks, pos, records, targets, ti, out,
                         jobs);
    pos += records;
  }
  snapshot_tail_grid(warmers, targets, ti, out, jobs);
  reg.counter("warming.insts").add(pos);
  return out;
}

/// Sequential trace-fed grid capture (jobs == 1 oracle).
std::vector<std::vector<std::vector<uint8_t>>> capture_grid_trace_sequential(
    const std::vector<core::CoreConfig>& configs, const isa::Program& program,
    TraceReader& reader, const std::vector<uint64_t>& targets) {
  std::vector<std::unique_ptr<FunctionalWarmer>> warmers =
      make_warmers(configs, program);

  // The stored records ARE the engine's event stream (the recorder used
  // the same sink), so fanning them out trains byte-identical state — but
  // a CFIRTRC2 reader only decodes the blocks covering [0, last target).
  std::vector<std::vector<std::vector<uint8_t>>> out(configs.size());
  for (auto& per_config : out) per_config.reserve(targets.size());
  reader.seek_to(0);
  uint64_t pos = 0;
  TraceRecord rec;
  for (size_t t = 0; t < targets.size(); ++t) {
    const uint64_t target = targets[t];
    while (pos < target) {
      if (!reader.next(rec)) {
        throw_trace_truncated(pos, target, t, targets.size());
      }
      for (auto& warmer : warmers) warmer->on_record(rec);
      ++pos;
    }
    for (size_t c = 0; c < warmers.size(); ++c) {
      out[c].push_back(warmers[c]->serialize_state());
    }
  }
  obs::Registry::instance().counter("warming.insts").add(pos);
  return out;
}

/// Pipelined trace-fed grid capture: BlockBatchReader wave-decodes
/// upcoming blocks concurrently with the per-config fan-out (double
/// buffered), so decode never sits on the warmers' critical path.
std::vector<std::vector<std::vector<uint8_t>>> capture_grid_trace_pipelined(
    const std::vector<core::CoreConfig>& configs, const isa::Program& program,
    TraceReader& reader, const std::vector<uint64_t>& targets, int jobs) {
  std::vector<std::unique_ptr<FunctionalWarmer>> warmers =
      make_warmers(configs, program);
  std::vector<std::vector<std::vector<uint8_t>>> out(
      configs.size(), std::vector<std::vector<uint8_t>>(targets.size()));

  const uint64_t limit = targets.empty() ? 0 : targets.back();
  uint64_t pos = 0;
  size_t ti = 0;
  {
    BlockBatchReader batches(reader, limit, jobs);
    BlockBatchReader::Batch batch;
    while (batches.next_batch(batch)) {
      const size_t records = batch.records();
      ti = feed_batch_grid(warmers, batch.blocks, batch.first_record, records,
                           targets, ti, out, jobs);
      pos = batch.first_record + records;
    }
  }
  // Leftover targets either sit exactly at the delivered end of stream
  // (the normal case — the last target IS the record limit) or the trace
  // is truncated.
  size_t reachable = ti;
  while (reachable < targets.size() && targets[reachable] == pos) {
    ++reachable;
  }
  if (reachable < targets.size()) {
    throw_trace_truncated(pos, targets[reachable], reachable, targets.size());
  }
  snapshot_tail_grid(warmers, targets, ti, out, jobs);
  obs::Registry::instance().counter("warming.insts").add(pos);
  return out;
}
}  // namespace

std::vector<std::vector<std::vector<uint8_t>>> capture_warm_states_grid(
    const std::vector<core::CoreConfig>& configs, const isa::Program& program,
    const std::vector<uint64_t>& targets, int jobs) {
  if (configs.empty()) {
    throw std::runtime_error("capture_warm_states_grid: no configs");
  }
  check_targets_sorted(targets);
  jobs = resolve_warm_jobs(jobs);
  obs::Span span("warming.capture", targets.size());
  const obs::Stopwatch clock;
  auto out = jobs <= 1
                 ? capture_grid_engine_sequential(configs, program, targets)
                 : capture_grid_engine_pipelined(configs, program, targets,
                                                 jobs);
  obs::Registry::instance()
      .histogram("warming.capture_us")
      .observe(clock.elapsed_us());
  return out;
}

std::vector<std::vector<std::vector<uint8_t>>> capture_warm_states_grid(
    const std::vector<core::CoreConfig>& configs, const isa::Program& program,
    TraceReader& reader, const std::vector<uint64_t>& targets, int jobs) {
  if (configs.empty()) {
    throw std::runtime_error("capture_warm_states_grid: no configs");
  }
  check_targets_sorted(targets);
  jobs = resolve_warm_jobs(jobs);
  obs::Span span("warming.capture", targets.size());
  const obs::Stopwatch clock;
  auto out = jobs <= 1 ? capture_grid_trace_sequential(configs, program,
                                                       reader, targets)
                       : capture_grid_trace_pipelined(configs, program,
                                                      reader, targets, jobs);
  obs::Registry::instance()
      .histogram("warming.capture_us")
      .observe(clock.elapsed_us());
  return out;
}

}  // namespace cfir::trace
