#include "ci/mechanism.hpp"

#include <cassert>

namespace cfir::ci {

using core::DynInst;
using isa::Opcode;

CiMechanism::CiMechanism(const core::CoreConfig& cfg)
    : cfg_(cfg),
      stride_(cfg.stride_sets, cfg.stride_ways),
      srsmt_(cfg.srsmt_sets, cfg.srsmt_ways, cfg.replicas),
      nrbq_(cfg.nrbq_entries) {
  if (cfg_.use_spec_memory) {
    specmem_ = std::make_unique<SpecDataMemory>(
        cfg_.spec_memory_slots, cfg_.spec_memory_latency,
        cfg_.spec_memory_read_ports, cfg_.spec_memory_write_ports);
  }
}

CiMechanism::~CiMechanism() = default;

void CiMechanism::attach(core::Core& core) {
  core_ = &core;
  engine_ = std::make_unique<ReplicaEngine>(core, srsmt_, specmem_.get());
}

bool CiMechanism::vectorizable_arith(const isa::Instruction& inst) {
  const Opcode op = inst.op;
  if (!isa::has_dest(op)) return false;
  if (isa::is_mem(op) || isa::is_branch(op)) return false;
  if (op == Opcode::kMovi || op == Opcode::kCall) return false;
  return isa::num_sources(op) >= 1;
}

// ---------------------------------------------------------------------------
// Decode: validation of previously vectorized PCs, or fresh vectorization.
// ---------------------------------------------------------------------------
void CiMechanism::on_decode(DynInst& di) {
  // CRP "reached" check (R flag, section 2.3.2); the NRBQ entries track
  // their own re-convergent points the same way.
  nrbq_.observe_pc(di.pc);
  if (crp_.active && !crp_.reached && di.pc == crp_.rp_pc) {
    crp_.reached = true;
    crp_.select_budget = cfg_.ci_select_window;
  }
  if (di.is_load || vectorizable_arith(di.inst)) validate_or_create(di);
}

void CiMechanism::validate_or_create(DynInst& di) {
  auto& stats = core_->stats();
  const uint32_t slot = srsmt_.find(di.pc);
  if (slot == kInvalidSrsmtSlot) {
    // No entry: consider creating one (step 3 of the paper — vectorization
    // happens the next time the selected instruction is encountered).
    if (di.is_load) {
      const StridePredictor::Info sp = stride_.lookup(di.pc);
      if (sp.known && sp.confident && sp.selected && sp.stride != 0) {
        create_load_entry(di, sp);
      }
    } else {
      create_arith_entry(di);
    }
    return;
  }

  SrsmtEntry& e = srsmt_.entry(slot);
  srsmt_.touch(slot);

  // Validation (step 4 / section 2.3.4). A poisoned (desynced) ring is a
  // standing hard failure: it re-vectorizes once quiescent.
  bool hard_fail = e.poisoned;
  bool soft_fail = false;
  if (di.is_load) {
    const StridePredictor::Info sp = stride_.lookup(di.pc);
    if (!sp.known || sp.stride != e.stride) {
      hard_fail = true;  // the stride did not keep on being the same
    } else if (!sp.confident) {
      soft_fail = true;
    } else if (!e.anchored) {
      soft_fail = true;  // creator has not committed yet
    }
  } else {
    for (const SrsmtOperand* op : {&e.op1, &e.op2}) {
      if (!op->present) continue;
      const int logical = op == &e.op1 ? di.inst.rs1 : di.inst.rs2;
      const RenameExt& x = ext_[static_cast<size_t>(logical)];
      if (op->is_self) {
        // The recurrence input must still be produced by this very entry
        // (paper: I11's seq1 is I11's own PC).
        if (!x.vs || x.seq_pc != di.pc || x.entry_uid != e.uid) {
          hard_fail = true;
          break;
        }
      } else if (op->is_vector) {
        if (!x.vs || x.seq_pc != op->producer_pc ||
            x.entry_uid != op->producer_uid) {
          hard_fail = true;  // producer identity changed
          break;
        }
      } else {
        const int ps = op == &e.op1 ? di.ps1 : di.ps2;
        if (ps < 0 || !core_->regfile().ready(ps)) {
          soft_fail = true;
        } else if (core_->regfile().value(ps) != op->scalar_value) {
          hard_fail = true;  // scalar operand changed value
          break;
        }
      }
    }
  }

  if (hard_fail && e.decode_count == e.commit_count) {
    // Quiescent: no in-flight validations reference the ring, so the entry
    // and its registers can be dropped and re-vectorized with the new
    // operands (paper 2.3.4).
    ++stats.validations_failed;
    engine_->release_entry(slot, "replace");
    if (di.is_load) {
      const StridePredictor::Info sp = stride_.lookup(di.pc);
      if (sp.known && sp.confident && sp.selected && sp.stride != 0) {
        create_load_entry(di, sp);
      }
    } else {
      create_arith_entry(di);
    }
    return;
  }
  // A hard failure with validations still in flight degrades to a soft
  // failure: the instance executes normally (consuming its index so the
  // ring stays aligned) and the release happens at a later encounter once
  // the ring drains. Eager release here would strand the in-flight
  // validations waiting on replicas that can no longer complete.
  const bool degraded = hard_fail;

  // This dynamic instance consumes the next replica index either way so the
  // ring stays aligned with the instance stream.
  const uint64_t idx = e.decode_count;
  di.mech.index_consumed = true;
  di.mech.srsmt_slot = slot;
  di.mech.entry_uid = e.uid;
  di.mech.replica_index = idx;
  ++e.decode_count;

  if (degraded || soft_fail || !engine_->replica_available(e, idx)) {
    ++stats.validations_failed;
    return;  // executes normally; index retires at commit
  }

  // Reuse.
  di.mech.reused = true;
  if (di.is_load) {
    // The replica's address is the instruction's effective address (the
    // commit-time architectural recheck verifies this exactly).
    di.mem_addr = e.addr_of(idx);
  }
  if (specmem_ != nullptr) {
    di.mech.via_copy = true;
  } else {
    di.mech.reuse_phys = e.at(idx).phys_reg;
    assert(di.mech.reuse_phys >= 0);
  }
}

void CiMechanism::create_load_entry(DynInst& di,
                                    const StridePredictor::Info& sp) {
  auto release = [this](uint32_t victim) {
    engine_->release_entry(victim, "replace");
  };
  const uint32_t slot = srsmt_.alloc(di.pc, release);
  if (slot == kInvalidSrsmtSlot) return;
  SrsmtEntry& e = srsmt_.entry(slot);
  e.inst = di.inst;
  e.is_load = true;
  e.stride = sp.stride;
  e.anchored = false;  // anchored when this instance commits
  e.origin_branch_pc = sp.origin_branch_pc;
  ++core_->stats().srsmt_allocs;
  di.mech.created_entry = true;
  di.mech.created_slot = slot;
  di.mech.created_uid = e.uid;
}

void CiMechanism::create_arith_entry(DynInst& di) {
  // Requires >=1 source produced by a live vectorized entry; scalar sources
  // must be ready so their value can be latched (the paper stalls decode in
  // this case; we simply skip and retry at the next encounter).
  struct SrcInfo {
    bool present = false;
    bool vector = false;
    bool self = false;
    const RenameExt* ext = nullptr;
    int ps = -1;
    int logical = 0;
  };
  SrcInfo s1, s2;
  if (isa::reads_rs1(di.inst.op)) {
    s1 = {true, false, false, &ext_[di.inst.rs1], di.ps1, di.inst.rs1};
  }
  if (isa::reads_rs2(di.inst.op)) {
    s2 = {true, false, false, &ext_[di.inst.rs2], di.ps2, di.inst.rs2};
  }
  bool any_vector = false;
  uint64_t origin = 0;
  for (SrcInfo* s : {&s1, &s2}) {
    if (!s->present) continue;
    if (isa::has_dest(di.inst.op) && s->logical == di.inst.rd) {
      // Accumulator recurrence (paper Figure 1, I11: ADD R4,R4,R0): the
      // operand is this instruction's own previous result.
      s->self = true;
      continue;
    }
    if (s->ext->vs) {
      const SrsmtEntry& p = srsmt_.entry(s->ext->entry_slot);
      if (p.valid && p.uid == s->ext->entry_uid) {
        s->vector = true;
        any_vector = true;
        if (origin == 0) origin = p.origin_branch_pc;
      } else {
        return;  // stale producer; do not vectorize this time
      }
    } else {
      if (s->ps < 0 || !core_->regfile().ready(s->ps)) return;
    }
  }
  if (!any_vector) return;  // chains must start at a vectorized producer

  auto release = [this](uint32_t victim) {
    engine_->release_entry(victim, "replace");
  };
  const uint32_t slot = srsmt_.alloc(di.pc, release);
  if (slot == kInvalidSrsmtSlot) return;
  SrsmtEntry& e = srsmt_.entry(slot);
  e.inst = di.inst;
  e.is_load = false;
  const bool has_self = s1.self || s2.self;
  // Self-recurrent chains anchor on the creator's committed result;
  // pure feed-forward chains are live immediately.
  e.anchored = !has_self;
  e.origin_branch_pc = origin;
  auto fill = [&](SrsmtOperand& op, const SrcInfo& s) {
    if (!s.present) return;
    op.present = true;
    if (s.self) {
      op.is_self = true;
      op.producer_pc = di.pc;
      op.producer_slot = slot;
      op.producer_uid = e.uid;
      e.consumer_slots.push_back(slot);  // own completions arm successors
    } else if (s.vector) {
      SrsmtEntry& p = srsmt_.entry(s.ext->entry_slot);
      op.is_vector = true;
      op.producer_pc = s.ext->seq_pc;
      op.producer_slot = s.ext->entry_slot;
      op.producer_uid = s.ext->entry_uid;
      op.index_offset = p.decode_count;
      p.consumer_slots.push_back(slot);
    } else {
      op.scalar_value = core_->regfile().value(s.ps);
    }
  };
  fill(e.op1, s1);
  fill(e.op2, s2);
  ++core_->stats().srsmt_allocs;
  di.mech.created_entry = true;
  di.mech.created_slot = slot;
  di.mech.created_uid = e.uid;
  if (e.anchored) engine_->materialize(slot);
}

// ---------------------------------------------------------------------------
// Rename: stridedPC/V-S propagation, NRBQ/CRP masks, CI selection.
// ---------------------------------------------------------------------------
void CiMechanism::on_renamed(DynInst& di) {
  auto& stats = core_->stats();
  const Opcode op = di.inst.op;

  if (di.is_cond_branch && !vect_policy()) {
    const uint64_t rp =
        estimate_reconvergence_point(core_->program(), di.pc, di.inst);
    nrbq_.push(di.seq, di.pc, rp);
  }

  // CI selection (section 2.3.2): instructions past the re-convergent point
  // whose sources were not written between the branch and the RP.
  if (!vect_policy() && crp_.active && crp_.reached &&
      crp_.select_budget > 0 && !di.is_branch) {
    --crp_.select_budget;
    bool clean = true;
    int checked = 0;
    if (isa::reads_rs1(op)) {
      ++checked;
      clean &= (crp_.mask & (uint64_t{1} << di.inst.rs1)) == 0;
    }
    if (isa::reads_rs2(op)) {
      ++checked;
      clean &= (crp_.mask & (uint64_t{1} << di.inst.rs2)) == 0;
    }
    if (clean && checked > 0) {
      mark_selected(crp_.branch_pc);
      // Select the strided loads at the base of the backward slice for
      // speculative vectorization (sets their S flags).
      auto select_sources = [&](int logical) {
        const RenameExt& x = ext_[static_cast<size_t>(logical)];
        for (uint8_t i = 0; i < x.strided_count; ++i) {
          stride_.select(x.strided_pcs[i], crp_.branch_pc);
        }
      };
      if (isa::reads_rs1(op)) select_sources(di.inst.rs1);
      if (isa::reads_rs2(op)) select_sources(di.inst.rs2);
    }
    if (crp_.select_budget == 0) crp_.active = false;
  }

  if (!di.has_dest) return;

  // Register-write masks.
  nrbq_.on_dest_write(di.inst.rd);
  if (crp_.active && !crp_.reached) {
    crp_.mask |= uint64_t{1} << di.inst.rd;
  }

  // Rename extension update with walk-recovery snapshot.
  RenameExt& x = ext_[static_cast<size_t>(di.inst.rd)];
  di.mech.prev_strided_pcs = x.strided_pcs;
  di.mech.prev_strided_count = x.strided_count;
  di.mech.prev_vs = x.vs;
  di.mech.prev_seq_pc = x.seq_pc;
  di.mech.prev_entry_slot = x.entry_slot;
  di.mech.prev_entry_uid = x.entry_uid;
  di.mech.ext_saved = true;

  RenameExt nx;  // default: cleared
  if (di.is_load) {
    const StridePredictor::Info sp = stride_.lookup(di.pc);
    if (sp.known && sp.confident) {
      nx.strided_pcs[0] = di.pc;
      nx.strided_count = 1;
    }
  } else if (vectorizable_arith(di.inst)) {
    // Union of the sources' stridedPC sets, truncated to the configured
    // per-entry budget (Figure 4 sweeps this width).
    auto add_from = [&](int logical) {
      const RenameExt& src = ext_[static_cast<size_t>(logical)];
      for (uint8_t i = 0; i < src.strided_count; ++i) {
        const uint64_t pc = src.strided_pcs[i];
        bool dup = false;
        for (uint8_t j = 0; j < nx.strided_count; ++j) {
          if (nx.strided_pcs[j] == pc) { dup = true; break; }
        }
        if (dup) continue;
        if (nx.strided_count <
            std::min<uint32_t>(cfg_.stridedpc_per_entry, 4)) {
          nx.strided_pcs[nx.strided_count++] = pc;
        } else {
          ++stats.stridedpc_overflows;
        }
      }
    };
    if (isa::reads_rs1(op)) add_from(di.inst.rs1);
    if (isa::reads_rs2(op)) add_from(di.inst.rs2);
    if (nx.strided_count > 0) {
      ++stats.stridedpc_propagations;
      stats.stridedpc_width_accum += nx.strided_count;
    }
  }
  // V/S flag: the latest writer of this logical register is vectorized.
  const uint32_t slot = di.mech.created_entry ? di.mech.created_slot
                                              : di.mech.srsmt_slot;
  if (slot != kInvalidSrsmtSlot) {
    const SrsmtEntry& e = srsmt_.entry(slot);
    if (e.valid && e.pc == di.pc) {
      nx.vs = true;
      nx.seq_pc = di.pc;
      nx.entry_slot = slot;
      nx.entry_uid = e.uid;
    }
  }
  x = nx;
}

// ---------------------------------------------------------------------------
// Branch resolution, squash, commit.
// ---------------------------------------------------------------------------
void CiMechanism::on_mispredict_pre(DynInst& di) {
  if (!di.is_cond_branch || vect_policy()) return;
  if (!core_->mbs().is_hard(di.pc)) return;
  ++core_->stats().hard_mispredicts;
  EpisodeStats& ep = episodes_[di.pc];
  ++ep.episodes;
  ep.cur_selected = false;
  ep.cur_reused = false;
  // Initialize the CRP from the NRBQ before the squash removes the
  // wrong-path branches (their masks count, section 2.3.2).
  const NrbqEntry* entry = nrbq_.find(di.seq);
  if (entry == nullptr) {
    crp_.active = false;  // NRBQ overflow evicted it; episode finds nothing
    return;
  }
  // The R flag starts clear: the post-recovery refetch must cross the RP.
  crp_.active = true;
  crp_.reached = false;
  crp_.rp_pc = entry->rp_pc;
  crp_.mask = nrbq_.mask_of(di.seq);
  crp_.branch_pc = di.pc;
  crp_.select_budget = 0;
}

void CiMechanism::on_branch_resolved(DynInst& /*di*/, bool mispredicted) {
  if (mispredicted) run_daec();
}

void CiMechanism::run_daec() {
  // Section 2.4.2: on every branch misprediction recovery, entries whose
  // decode and commit fields match age; at the threshold their speculative
  // work is presumed dead and the registers are reclaimed.
  for (uint32_t slot = 0; slot < srsmt_.num_slots(); ++slot) {
    SrsmtEntry& e = srsmt_.entry(slot);
    if (!e.valid) continue;
    if (e.decode_count == e.commit_count) {
      if (++e.daec >= cfg_.daec_threshold && e.issue_count == 0) {
        engine_->release_entry(slot, "daec");
      }
    } else {
      e.daec = 0;
    }
  }
}

void CiMechanism::on_squash(DynInst& di) {
  if (di.is_cond_branch) nrbq_.on_branch_squash(di.seq);
  if (di.mech.index_consumed) {
    SrsmtEntry& e = srsmt_.entry(di.mech.srsmt_slot);
    if (e.valid && e.uid == di.mech.entry_uid) {
      // Hand the replica index back (exact equivalent of the paper's
      // "copy commit into decode": squash walks youngest-first, so indices
      // return in reverse order).
      assert(e.decode_count == di.mech.replica_index + 1);
      --e.decode_count;
    } else if (di.mech.reused && di.mech.pd_from_replica && di.pd >= 0) {
      // The entry died while this validation was in flight (hard
      // validation failure or coherence release). Ownership of the replica
      // register was transferred to this instruction at release time; the
      // squash must return it to the free list (the core skips
      // replica-owned registers).
      core_->regfile().free_reg(di.pd);
    }
  }
  if (di.mech.created_entry) {
    SrsmtEntry& e = srsmt_.entry(di.mech.created_slot);
    if (e.valid && e.uid == di.mech.created_uid) {
      // The creating instance was wrong-path speculation; drop the entry.
      engine_->release_entry(di.mech.created_slot, "creator-squash");
    }
  }
  if (di.mech.ext_saved) {
    RenameExt& x = ext_[static_cast<size_t>(di.inst.rd)];
    x.strided_pcs = di.mech.prev_strided_pcs;
    x.strided_count = di.mech.prev_strided_count;
    x.vs = di.mech.prev_vs;
    x.seq_pc = di.mech.prev_seq_pc;
    x.entry_slot = di.mech.prev_entry_slot;
    x.entry_uid = di.mech.prev_entry_uid;
  }
}

void CiMechanism::on_commit(DynInst& di) {
  if (di.is_cond_branch) nrbq_.on_branch_commit(di.seq);

  if (di.is_load) stride_.train(di.pc, di.mem_addr);
  if (di.is_load && vect_policy()) {
    // Full-blown dynamic vectorization [12]: every confident strided load
    // is selected, independent of control-independence analysis.
    const StridePredictor::Info sp = stride_.lookup(di.pc);
    if (sp.confident && !sp.selected && sp.stride != 0) {
      stride_.select(di.pc, 0);
    }
  }

  if (di.mech.created_entry) {
    SrsmtEntry& e = srsmt_.entry(di.mech.created_slot);
    if (e.valid && e.uid == di.mech.created_uid && !e.anchored) {
      // The creator's commit anchors the speculative stream: loads get
      // their architectural base address, self-recurrent chains their seed
      // value.
      e.anchored = true;
      if (e.is_load) {
        e.base_addr = di.mem_addr;
      } else {
        e.anchor_value = di.result;
      }
      engine_->materialize(di.mech.created_slot);
    }
  }

  if (di.mech.index_consumed) {
    SrsmtEntry& e = srsmt_.entry(di.mech.srsmt_slot);
    if (e.valid && e.uid == di.mech.entry_uid) {
      bool desync = false;
      if (!di.mech.reused) {
        // The instance executed normally; verify the ring still tracks the
        // architectural stream and resynchronize by release when not.
        if (e.is_load) {
          desync = e.anchored &&
                   e.addr_of(di.mech.replica_index) != di.mem_addr;
        } else if (engine_->replica_done(e, di.mech.replica_index)) {
          desync = e.at(di.mech.replica_index).value != di.result;
        }
      }
      if (desync) {
        // Younger validations may still be waiting on this ring; an eager
        // release would strand them. Poison the entry (no new reuses or
        // replicas), keep retiring indices so it drains, and release once
        // quiescent; still-speculative reuses resolve through the
        // commit-time recheck.
        e.poisoned = true;
      }
      engine_->retire_index(di.mech.srsmt_slot, di.mech.replica_index,
                            di.mech.reused);
      if (e.valid && e.poisoned && e.deallocatable()) {
        engine_->release_entry(di.mech.srsmt_slot, "desync");
      } else if (di.mech.reused && e.valid) {
        mark_reused(e.origin_branch_pc);
      }
    }
  }
}

bool CiMechanism::on_store_commit(DynInst& di) {
  auto& stats = core_->stats();
  ++stats.store_range_checks;
  const uint64_t lo = di.mem_addr;
  const uint64_t hi = di.mem_addr + static_cast<uint64_t>(di.mem_size);
  bool conflict = false;
  for (uint32_t slot = 0; slot < srsmt_.num_slots(); ++slot) {
    SrsmtEntry& e = srsmt_.entry(slot);
    if (!e.valid || !e.is_load || !e.anchored) continue;
    if (e.materialized <= e.commit_count) continue;
    // Outstanding replica address range (section 2.4.3).
    const uint64_t first = e.addr_of(e.commit_count);
    const uint64_t last = e.addr_of(e.materialized - 1);
    const uint64_t rlo = std::min(first, last);
    const uint64_t rhi =
        std::max(first, last) + static_cast<uint64_t>(isa::mem_bytes(e.inst.op));
    if (lo < rhi && rlo < hi) {
      engine_->release_entry(slot, "coherence");
      conflict = true;
    }
  }
  if (conflict) ++stats.store_range_conflicts;
  return conflict;
}

void CiMechanism::issue_cycle(uint64_t cycle, core::CycleResources& res) {
  engine_->tick(cycle, res);
}

void CiMechanism::on_misvalidation(DynInst& di) {
  SrsmtEntry& e = srsmt_.entry(di.mech.srsmt_slot);
  if (e.valid && e.uid == di.mech.entry_uid) {
    engine_->release_entry(di.mech.srsmt_slot, "misvalidation");
  }
}

void CiMechanism::on_watchdog_reclaim() { engine_->reclaim_unclaimed(); }

bool CiMechanism::copy_source_ready(const DynInst& di) {
  const SrsmtEntry& e = srsmt_.entry(di.mech.srsmt_slot);
  if (!e.valid || e.uid != di.mech.entry_uid) return false;
  return engine_->replica_done(e, di.mech.replica_index);
}

void CiMechanism::register_copy_waiter(uint32_t rob_slot, const DynInst& di) {
  engine_->register_copy_waiter(rob_slot, di.seq, di.mech.srsmt_slot,
                                di.mech.entry_uid, di.mech.replica_index);
}

bool CiMechanism::try_issue_copy(DynInst& di, uint64_t cycle,
                                 uint32_t& latency, uint64_t& value) {
  return engine_->try_issue_copy(di.mech.srsmt_slot, di.mech.entry_uid,
                                 di.mech.replica_index, cycle, latency, value);
}

// ---------------------------------------------------------------------------
// Episode accounting (Figure 5).
// ---------------------------------------------------------------------------
void CiMechanism::mark_selected(uint64_t branch_pc) {
  const auto it = episodes_.find(branch_pc);
  if (it == episodes_.end()) return;
  if (!it->second.cur_selected) {
    it->second.cur_selected = true;
    ++it->second.selected;
  }
}

void CiMechanism::mark_reused(uint64_t branch_pc) {
  if (branch_pc == 0) return;  // vect policy: no episode attribution
  const auto it = episodes_.find(branch_pc);
  if (it == episodes_.end()) return;
  EpisodeStats& ep = it->second;
  if (ep.cur_reused) return;  // current episode already credited
  if (ep.cur_selected) {
    ep.cur_reused = true;
    ++ep.reused;
    return;
  }
  // The reuse outlived its selecting episode: a replica ring seeded by an
  // earlier episode of this branch keeps feeding reuse after a newer
  // episode reset the per-episode flags. Credit the earlier selecting
  // episode instead of the current one — capped at the number of selecting
  // episodes, which is what keeps ep_ci_reused <= ep_ci_selected as an
  // invariant rather than a display-side clamp.
  if (ep.reused < ep.selected) ++ep.reused;
}

void CiMechanism::finalize() {
  if (core_ == nullptr) return;
  uint64_t episodes = 0, selected = 0, reused = 0;
  for (const auto& [pc, ep] : episodes_) {
    episodes += ep.episodes;
    selected += ep.selected;
    reused += ep.reused;
  }
  auto& stats = core_->stats();
  stats.ep_total += episodes - folded_episodes_;
  stats.ep_ci_selected += selected - folded_selected_;
  stats.ep_ci_reused += reused - folded_reused_;
  folded_episodes_ = episodes;
  folded_selected_ = selected;
  folded_reused_ = reused;
}

uint64_t CiMechanism::storage_bytes() const {
  // Section 3.1 inventory. Rename extension: 16 bytes per entry * 64.
  uint64_t total = srsmt_.storage_bytes() + stride_.storage_bytes() +
                   nrbq_.storage_bytes() + Crp::storage_bytes() + 64 * 16;
  total += core_ != nullptr ? core_->mbs().storage_bytes()
                            : uint64_t{cfg_.mbs_sets} * cfg_.mbs_ways * 8;
  return total;
}

}  // namespace cfir::ci
