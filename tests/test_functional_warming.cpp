// Warming-equivalence differential tests (ISSUE 3 tentpole): functionally
// warming over a committed prefix must leave each Warmable component in
// bit-identical state (compared via debug_digest()) to what a detailed run
// of the same prefix leaves behind.
//
// Why this can be exact per component:
//  - gshare / MBS train only at commit, and misprediction recovery repairs
//    the speculative global history before the correct path refetches, so
//    the detailed run's final predictor state is a pure function of the
//    committed branch stream.
//  - the RAS is snapshot-restored on every recovery, so its final state is
//    the committed CALL/RET push/pop sequence.
//  - the stride predictor trains only at commit; under the vect policy the
//    S flags are also set by a commit-time rule (ci/mechanism.cpp), so the
//    full table (flags included) is commit-derivable.
//  - caches: Cache::debug_digest compares contents (resident tags + dirty
//    bits), which for a branch-free run without replacement pressure are
//    the same line set regardless of the detailed core's issue-order
//    interleaving. Programs with wrong-path fetch perturb cache contents,
//    so the cache equivalence program is straight-line by construction.
#include "trace/warming.hpp"

#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "isa/assembler.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "trace/sampling.hpp"
#include "trace/shard.hpp"
#include "util/warmable.hpp"
#include "workloads/workloads.hpp"

namespace cfir::trace {
namespace {

// Runs the detailed core over the whole program (to HALT, so all in-flight
// speculation is resolved and drained) and a functional warmer over the
// same committed stream.
struct WarmPair {
  sim::Simulator sim;
  FunctionalWarmer warmer;
  WarmPair(const core::CoreConfig& config, const isa::Program& program)
      : sim(config, program), warmer(config, program) {
    sim.run(UINT64_MAX);
    warmer.advance_to(UINT64_MAX);
  }
};

TEST(FunctionalWarming, GshareMatchesDetailedRun) {
  for (const char* wl : {"bzip2", "parser", "twolf"}) {
    const isa::Program program = workloads::build(wl, 1);
    WarmPair p(sim::presets::scal(2, 256), program);
    EXPECT_EQ(p.warmer.gshare().debug_digest(),
              p.sim.core().gshare().debug_digest())
        << wl;
  }
}

TEST(FunctionalWarming, MbsMatchesDetailedRun) {
  for (const char* wl : {"bzip2", "parser", "twolf"}) {
    const isa::Program program = workloads::build(wl, 1);
    WarmPair p(sim::presets::scal(2, 256), program);
    EXPECT_EQ(p.warmer.mbs().debug_digest(), p.sim.core().mbs().debug_digest())
        << wl;
  }
}

TEST(FunctionalWarming, RasMatchesDetailedRun) {
  // A call-heavy program whose recursion leaves a non-trivial final stack:
  // recurse(n) { if (n) recurse(n-1); } called from a loop, interleaved
  // with leaf calls, halting mid-call-chain would not drain — instead halt
  // after the loop so the RAS holds whatever stale depth the sequence
  // produced on both sides.
  isa::Assembler as;
  const int rN = 1, rC = 2, rZ = 3;
  as.movi(rC, 6);
  as.movi(rZ, 0);
  as.label("loop");
  as.movi(rN, 4);
  as.call("recurse");
  as.call("leaf");
  as.addi(rC, rC, -1);
  as.bne(rC, rZ, "loop");
  as.halt();
  as.label("recurse");
  as.beq(rN, rZ, "base");
  as.addi(rN, rN, -1);
  // Non-tail recursion clobbers r63, so stash the link in a stack slot
  // keyed by depth to keep returns architecturally correct.
  as.shli(4, rN, 3);
  as.st(63, 4, 0x8000, 8);
  as.call("recurse");
  as.shli(4, rN, 3);
  as.ld(63, 4, 0x8000, 8);
  as.addi(rN, rN, 1);
  as.label("base");
  as.ret();
  as.label("leaf");
  as.ret();
  const isa::Program program = as.assemble();

  for (const char* preset : {"scal", "ci"}) {
    const core::CoreConfig config = preset == std::string("ci")
                                        ? sim::presets::ci(2, 512)
                                        : sim::presets::scal(2, 256);
    WarmPair p(config, program);
    EXPECT_GT(p.warmer.warmed(), 0u);
    EXPECT_EQ(p.warmer.ras().debug_digest(), p.sim.core().ras().debug_digest())
        << preset;
  }
}

TEST(FunctionalWarming, StridePredictorMatchesDetailedVectRun) {
  // vect policy: commit-time training *and* commit-time selection, so the
  // entire stride table — S flags and origin PCs included — must match.
  for (const char* wl : {"bzip2", "gzip", "mcf"}) {
    const isa::Program program = workloads::build(wl, 1);
    WarmPair p(sim::presets::vect(2, 512), program);
    ASSERT_NE(p.sim.ci_mechanism(), nullptr);
    EXPECT_EQ(p.warmer.stride_predictor().debug_digest(),
              p.sim.ci_mechanism()->stride_predictor().debug_digest())
        << wl;
  }
}

TEST(FunctionalWarming, StridePredictorContentMatchesUnderCiPolicy) {
  // Under the ci policy the S flags are episode-driven (speculative) and
  // stay cold in the warmer; everything the *training* path writes — tags,
  // addresses, strides, confidence, LRU — is still commit-derived. Compare
  // via lookup() of every committed load PC rather than the full digest.
  const isa::Program program = workloads::build("bzip2", 1);
  WarmPair p(sim::presets::ci(2, 512), program);
  ASSERT_NE(p.sim.ci_mechanism(), nullptr);
  const ci::StridePredictor& detailed =
      p.sim.ci_mechanism()->stride_predictor();
  const ci::StridePredictor& warmed = p.warmer.stride_predictor();
  // Collect load PCs from the reference stream.
  const isa::Program probe = workloads::build("bzip2", 1);
  std::vector<uint64_t> load_pcs;
  {
    mem::MainMemory mem;
    isa::load_data_image(probe, mem);
    isa::Interpreter interp(probe, mem);
    interp.on_mem = [&](uint64_t pc, uint64_t, int, bool is_store) {
      if (!is_store) load_pcs.push_back(pc);
    };
    interp.run();
  }
  ASSERT_FALSE(load_pcs.empty());
  size_t compared = 0;
  for (const uint64_t pc : load_pcs) {
    const auto d = detailed.lookup(pc);
    const auto w = warmed.lookup(pc);
    ASSERT_EQ(d.known, w.known) << std::hex << pc;
    if (!d.known) continue;
    EXPECT_EQ(d.confident, w.confident) << std::hex << pc;
    EXPECT_EQ(d.stride, w.stride) << std::hex << pc;
    EXPECT_EQ(d.last_addr, w.last_addr) << std::hex << pc;
    ++compared;
  }
  EXPECT_GT(compared, 0u);
}

/// Branch-free program with strided loads and disjoint stores: no wrong
/// path, no LSQ forwarding, no replacement pressure in any level.
isa::Program straight_line_memory_program() {
  isa::Assembler as;
  const uint64_t buf = as.reserve("buf", 64 * 1024);
  for (uint64_t i = 0; i < 32; ++i) as.init_word(buf + 8 * i, i * 3 + 1);
  as.movi(1, static_cast<int64_t>(buf));
  as.movi(2, 7);
  for (int i = 0; i < 96; ++i) as.ld(3, 1, i * 96, 8);
  for (int i = 0; i < 32; ++i) as.st(2, 1, 32000 + i * 96, 8);
  for (int i = 0; i < 16; ++i) as.ld(3, 1, 24000 + i * 32, 4);
  // Keep HALT on the same I-line as real code: the warmer never sees HALT
  // (it is not a committed record), so it must not open a line by itself.
  if ((as.here() % 64) == 0) as.addi(4, 4, 0);
  as.halt();
  return as.assemble();
}

TEST(FunctionalWarming, CacheHierarchyMatchesDetailedStraightLineRun) {
  const isa::Program program = straight_line_memory_program();
  WarmPair p(sim::presets::scal(2, 256), program);
  const mem::CacheHierarchy& d = p.sim.core().hierarchy();
  const mem::CacheHierarchy& w = p.warmer.hierarchy();
  EXPECT_EQ(w.l1i().debug_digest(), d.l1i().debug_digest());
  EXPECT_EQ(w.l1d().debug_digest(), d.l1d().debug_digest());
  EXPECT_EQ(w.l2().debug_digest(), d.l2().debug_digest());
  EXPECT_EQ(w.l3().debug_digest(), d.l3().debug_digest());
  EXPECT_EQ(w.debug_digest(), d.debug_digest());
  // The warm accesses must not have polluted any stats counter.
  EXPECT_EQ(w.l1d().stats().accesses, 0u);
  EXPECT_EQ(w.l2().stats().accesses, 0u);
}

TEST(FunctionalWarming, WarmAccessMatchesTimedAccessStateTransitions) {
  // Unit-level: the same access sequence through warm_access and access()
  // must land on the same contents, including dirty bits and evictions.
  mem::CacheConfig cfg;
  cfg.name = "t";
  cfg.size_bytes = 1024;  // 8 sets x 2 ways x 64B
  cfg.assoc = 2;
  cfg.line_bytes = 64;
  mem::Cache timed(cfg);
  mem::Cache warm(cfg);
  std::mt19937_64 gen(7);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t addr = (gen() % 64) * 64 + gen() % 64;
    const bool is_write = (gen() & 3) == 0;
    timed.access(addr, is_write, static_cast<uint64_t>(i), 10);
    warm.warm_access(addr, is_write);
    ASSERT_EQ(warm.debug_digest(), timed.debug_digest()) << "access " << i;
    ASSERT_EQ(warm.probe(addr), timed.probe(addr));
  }
  EXPECT_GT(timed.stats().accesses, 0u);
  EXPECT_EQ(warm.stats().accesses, 0u);
}

TEST(FunctionalWarming, SerializeRoundTripIsByteStableAndStateExact) {
  const isa::Program program = workloads::build("twolf", 1);
  const core::CoreConfig config = sim::presets::ci(2, 512);
  FunctionalWarmer a(config, program);
  a.advance_to(20000);
  const std::vector<uint8_t> blob = a.serialize_state();

  FunctionalWarmer b(config, program);
  b.deserialize_state(blob);
  EXPECT_EQ(b.warmed(), a.warmed());
  EXPECT_EQ(b.gshare().debug_digest(), a.gshare().debug_digest());
  EXPECT_EQ(b.mbs().debug_digest(), a.mbs().debug_digest());
  EXPECT_EQ(b.ras().debug_digest(), a.ras().debug_digest());
  EXPECT_EQ(b.stride_predictor().debug_digest(),
            a.stride_predictor().debug_digest());
  EXPECT_EQ(b.hierarchy().debug_digest(), a.hierarchy().debug_digest());
  // serialize(deserialize(blob)) == blob: the checkpoint-attached format is
  // stable under round-trips.
  EXPECT_EQ(b.serialize_state(), blob);
}

TEST(FunctionalWarming, DeserializeRejectsMismatchedGeometry) {
  const isa::Program program = workloads::build("gzip", 1);
  FunctionalWarmer big(sim::presets::ci(2, 512), program);
  big.advance_to(1000);
  core::CoreConfig small_cfg = sim::presets::ci(2, 512);
  small_cfg.gshare_entries = 1024;
  FunctionalWarmer small(small_cfg, program);
  EXPECT_THROW(small.deserialize_state(big.serialize_state()),
               std::runtime_error);
  // Policy family must match too (stride tables only exist under ci/vect).
  FunctionalWarmer scal_warmer(sim::presets::scal(2, 256), program);
  EXPECT_THROW(scal_warmer.deserialize_state(big.serialize_state()),
               std::runtime_error);
  // Truncated blob fails loudly.
  std::vector<uint8_t> blob = big.serialize_state();
  blob.resize(blob.size() / 2);
  FunctionalWarmer other(sim::presets::ci(2, 512), program);
  EXPECT_THROW(other.deserialize_state(blob), std::runtime_error);
}

TEST(FunctionalWarming, AdvanceToAfterDeserializeResumesWithoutRetraining) {
  // Restoring a shipped warmer and continuing must equal one uninterrupted
  // pass — the restored prefix is fast-skipped, never streamed twice.
  const isa::Program program = workloads::build("parser", 1);
  const core::CoreConfig config = sim::presets::ci(2, 512);
  FunctionalWarmer a(config, program);
  a.advance_to(5000);
  FunctionalWarmer b(config, program);
  b.deserialize_state(a.serialize_state());
  a.advance_to(12000);
  b.advance_to(12000);
  EXPECT_EQ(b.warmed(), a.warmed());
  EXPECT_EQ(b.serialize_state(), a.serialize_state());
}

TEST(FunctionalWarming, AdvanceToIsMonotonicAndIncremental) {
  // Warming to 5k then 10k must equal warming straight to 10k — the
  // single-pass multi-boundary capture in sampled_run depends on it.
  const isa::Program program = workloads::build("parser", 1);
  const core::CoreConfig config = sim::presets::scal(2, 256);
  FunctionalWarmer stepped(config, program);
  stepped.advance_to(5000);
  stepped.advance_to(2000);  // no-op: below current position
  EXPECT_EQ(stepped.warmed(), 5000u);
  stepped.advance_to(10000);
  FunctionalWarmer direct(config, program);
  direct.advance_to(10000);
  EXPECT_EQ(stepped.warmed(), direct.warmed());
  EXPECT_EQ(stepped.serialize_state(), direct.serialize_state());
}

TEST(FunctionalWarming, CaptureWarmStatesMatchesIndividualWarmers) {
  const isa::Program program = workloads::build("bzip2", 1);
  const core::CoreConfig config = sim::presets::ci(2, 512);
  const std::vector<uint64_t> targets{0, 3000, 3000, 9000};
  const auto blobs = capture_warm_states(config, program, targets);
  ASSERT_EQ(blobs.size(), targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    FunctionalWarmer w(config, program);
    w.advance_to(targets[i]);
    EXPECT_EQ(blobs[i], w.serialize_state()) << "target " << targets[i];
  }
  EXPECT_THROW(capture_warm_states(config, program, {100, 50}),
               std::runtime_error);
}

// --- CFIR_ENGINE matrix ---------------------------------------------------
// The superblock-caching engine (docs/functional-engine.md) must stream the
// bit-identical committed-record sequence the switch oracle streams, so
// every warm-state blob, sampled-run stat and CFIRSHD2 merge below must be
// byte-equal between CFIR_ENGINE=switch and =cached.

using isa::EngineKind;

std::vector<uint8_t> final_warm_blob(const core::CoreConfig& config,
                                     const isa::Program& program,
                                     EngineKind kind) {
  FunctionalWarmer w(config, program, kind);
  w.advance_to(UINT64_MAX);
  return w.serialize_state();
}

TEST(EngineWarmingMatrix, WarmStateBlobsBitIdenticalAcrossEngines) {
  // serialize_state() carries the full component matrix — gshare, MBS,
  // RAS, stride predictor and all four cache levels — so blob equality is
  // per-component bit equality in one shot, across the policy families.
  for (const char* wl : {"bzip2", "parser", "twolf"}) {
    const isa::Program program = workloads::build(wl, 1);
    const core::CoreConfig configs[] = {sim::presets::scal(2, 256),
                                        sim::presets::ci(2, 512),
                                        sim::presets::vect(2, 512)};
    for (const core::CoreConfig& config : configs) {
      EXPECT_EQ(final_warm_blob(config, program, EngineKind::kSwitch),
                final_warm_blob(config, program, EngineKind::kCached))
          << wl;
    }
  }
}

TEST(EngineWarmingMatrix, CachedEngineWarmerMatchesDetailedRun) {
  // The digest matrix above pins switch-engine warmers to the detailed
  // core; re-run the commit-derivable component comparisons with a
  // cached-engine warmer so the oracle chain is closed on both sides.
  for (const char* wl : {"bzip2", "parser", "twolf"}) {
    const isa::Program program = workloads::build(wl, 1);
    sim::Simulator sim(sim::presets::scal(2, 256), program);
    sim.run(UINT64_MAX);
    FunctionalWarmer warmer(sim::presets::scal(2, 256), program,
                            EngineKind::kCached);
    warmer.advance_to(UINT64_MAX);
    EXPECT_EQ(warmer.gshare().debug_digest(),
              sim.core().gshare().debug_digest())
        << wl;
    EXPECT_EQ(warmer.mbs().debug_digest(), sim.core().mbs().debug_digest())
        << wl;
    EXPECT_EQ(warmer.ras().debug_digest(), sim.core().ras().debug_digest())
        << wl;
  }
}

/// Sets CFIR_ENGINE for one scope and restores the previous value, so the
/// env-keyed default (FunctionalEngine construction inside planning,
/// warming and shard execution) is what actually gets exercised.
class ScopedEngineEnv {
 public:
  explicit ScopedEngineEnv(const char* value) {
    const char* prev = std::getenv("CFIR_ENGINE");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv("CFIR_ENGINE", value, 1);
  }
  ~ScopedEngineEnv() {
    if (had_prev_) {
      setenv("CFIR_ENGINE", prev_.c_str(), 1);
    } else {
      unsetenv("CFIR_ENGINE");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

/// Everything simulated in a SampledRun, byte-packed — deliberately
/// excluding the wall_us/warm_wall_us host telemetry, which is
/// nondeterministic and documented as never part of the simulated result.
std::vector<uint8_t> run_signature(const SampledRun& r) {
  util::ByteWriter out;
  out.u64(r.total_insts);
  out.u64(r.detailed_insts);
  out.u64(r.warmed_insts);
  stats::serialize(r.aggregate, out);
  out.u64(r.intervals.size());
  for (const SampledRun::Interval& iv : r.intervals) {
    out.u64(iv.start_inst);
    out.u64(iv.length);
    out.u64(iv.warmup);
    uint64_t weight_bits = 0;
    std::memcpy(&weight_bits, &iv.weight, sizeof(weight_bits));
    out.u64(weight_bits);
    stats::serialize(iv.stats, out);
  }
  return out.take();
}

// The bzip2/parser/twolf s8 sampled-run rows (the accuracy-matrix
// workloads) run under both CFIR_ENGINE values: planning (count + BBV +
// checkpoints), functional warming, solo sampled_run AND a 2-shard
// CFIRSHD2 round-trip + merge must all be bit-identical between engines.
// Excluded from the sanitizer job like the accuracy matrix (runtime, not
// memory-safety, coverage).
TEST(EngineSamplingS8Matrix, SampledRunsAndMergesBitIdenticalAcrossEngines) {
  for (const char* wl : {"bzip2", "parser", "twolf"}) {
    const isa::Program program = workloads::build(wl, 8);
    const core::CoreConfig config = sim::presets::ci(2, 512);
    ClusterPlanOptions opts;
    opts.n_intervals = 16;
    opts.max_k = 2;
    opts.warm_mode = WarmMode::kFunctional;
    opts.detail_len = 2000;

    std::vector<std::vector<uint8_t>> solo_sigs;
    std::vector<std::vector<uint8_t>> merged_sigs;
    for (const char* engine : {"switch", "cached"}) {
      ScopedEngineEnv env(engine);
      const IntervalPlan plan = plan_cluster_intervals(program, opts);
      solo_sigs.push_back(run_signature(sampled_run(config, program, plan,
                                                    /*threads=*/2)));
      std::vector<ShardResult> shards;
      for (uint32_t i = 0; i < 2; ++i) {
        const ShardResult r = run_shard(config, program, plan,
                                        ShardSelection{i, 2}, /*threads=*/2);
        // Round-trip through the CFIRSHD2 payload codec so the merged
        // output is what a multi-machine merge would actually consume.
        shards.push_back(ShardResult::deserialize(r.serialize()));
      }
      merged_sigs.push_back(run_signature(merge_shard_results(shards)));
    }
    EXPECT_EQ(solo_sigs[0], solo_sigs[1]) << wl;
    EXPECT_EQ(merged_sigs[0], merged_sigs[1]) << wl;
    // And sharded == solo, engine-independently (the PR 4 invariant).
    EXPECT_EQ(solo_sigs[0], merged_sigs[0]) << wl;
  }
}

}  // namespace
}  // namespace cfir::trace
