#include "obs/tracer.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

namespace cfir::obs {

namespace {

enum class Phase : uint8_t { kBegin, kEnd, kCounter, kInstant };

struct Event {
  int64_t ts_us = 0;
  const char* name = nullptr;  ///< string literal, stored by pointer
  uint64_t arg = 0;
  Phase phase = Phase::kInstant;
  bool has_arg = false;
};

/// Events each thread's flight-recorder ring can hold before wrapping.
constexpr size_t kRingCapacity = 1u << 16;

struct ThreadRing {
  uint32_t tid = 0;
  std::string thread_name;
  std::vector<Event> ring;
  size_t head = 0;         ///< next write slot
  uint64_t appended = 0;   ///< total appends (detects wrap)

  void append(const Event& e) {
    if (ring.empty()) ring.resize(kRingCapacity);
    ring[head] = e;
    head = (head + 1) % kRingCapacity;
    ++appended;
  }
};

int64_t now_us() {
  // One steady epoch per process so timestamps from every thread share a
  // timeline; established on first use, before any worker thread exists.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out.append(buf);
    } else {
      out.push_back(c);
    }
  }
}

/// Process-wide tracer state, separate from the Tracer facade so the
/// append path's thread-local registration can reach it directly.
struct TracerState {
  std::mutex mu;  ///< guards registry + start/stop; never the append path
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::string out_path;
  uint32_t next_tid = 1;
  uint64_t epoch_generation = 0;  ///< bumped by start(); stale TLS re-registers

  static TracerState& get() {
    static TracerState state;
    return state;
  }
};

// Thread-local ring registration. The generation check makes a restarted
// tracer hand out fresh rings instead of replaying a dead session's buffer.
thread_local std::shared_ptr<ThreadRing> tls_ring;
thread_local uint64_t tls_generation = 0;

ThreadRing* local_ring() {
  TracerState& impl = TracerState::get();
  if (tls_ring == nullptr || tls_generation != impl.epoch_generation) {
    auto ring = std::make_shared<ThreadRing>();
    {
      std::lock_guard<std::mutex> lk(impl.mu);
      ring->tid = impl.next_tid++;
      impl.rings.push_back(ring);
      tls_generation = impl.epoch_generation;
    }
    tls_ring = std::move(ring);
  }
  return tls_ring.get();
}

void record(Phase phase, const char* name, uint64_t arg, bool has_arg) {
  Event e;
  e.ts_us = now_us();
  e.name = name;
  e.arg = arg;
  e.phase = phase;
  e.has_arg = has_arg;
  local_ring()->append(e);
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::start(const std::string& path) {
  TracerState& impl = TracerState::get();
  std::lock_guard<std::mutex> lk(impl.mu);
  impl.out_path = path;
  impl.rings.clear();
  impl.next_tid = 1;
  ++impl.epoch_generation;
  (void)now_us();  // pin the epoch before any worker records
  enabled_.store(true, std::memory_order_release);
}

void Tracer::stop() {
  TracerState& impl = TracerState::get();
  // Flip the gate first so no new appends start, then drain under the
  // registry lock. Callers must have joined instrumented workers already
  // (see header); the gate makes a stray late call drop its event rather
  // than corrupt anything, since it would write only its own ring.
  if (!enabled_.exchange(false)) return;

  std::lock_guard<std::mutex> lk(impl.mu);
  std::ofstream out(impl.out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cfir: obs: cannot write trace file %s\n",
                 impl.out_path.c_str());
    return;
  }
  const int64_t drain_ts = now_us();

  // One event per line: the file is a single valid JSON document, and
  // line-oriented tools (and the ctest) can still scan it.
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  std::string line;
  bool first = true;
  auto emit = [&](const std::string& body) {
    if (!first) out << ",\n";
    first = false;
    out << body;
  };

  for (const auto& ring : impl.rings) {
    line.clear();
    line += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    line += std::to_string(ring->tid);
    line += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escape_into(line, ring->thread_name.empty()
                               ? "thread-" + std::to_string(ring->tid)
                               : ring->thread_name);
    line += "\"}}";
    emit(line);

    // Chronological order within the ring; when it wrapped, the oldest
    // surviving events start at `head`.
    const bool wrapped = ring->appended > ring->ring.size();
    const size_t n = wrapped ? ring->ring.size()
                             : static_cast<size_t>(ring->appended);
    const size_t begin = wrapped ? ring->head : 0;
    // A wrapped ring can hold end-events whose begin was overwritten; a
    // drain can see begin-events whose scope is still open. Track depth so
    // every emitted B has an emitted E and vice versa — the exporter keeps
    // the pairs balanced whatever the ring lost.
    int depth = 0;
    int64_t last_ts = 0;
    for (size_t k = 0; k < n; ++k) {
      const Event& e = ring->ring[(begin + k) % kRingCapacity];
      last_ts = e.ts_us;
      const char* ph = nullptr;
      switch (e.phase) {
        case Phase::kBegin:
          ph = "B";
          ++depth;
          break;
        case Phase::kEnd:
          if (depth == 0) continue;  // begin lost to ring wrap
          --depth;
          ph = "E";
          break;
        case Phase::kCounter: ph = "C"; break;
        case Phase::kInstant: ph = "i"; break;
      }
      line.clear();
      line += "{\"ph\":\"";
      line += ph;
      line += "\",\"pid\":1,\"tid\":";
      line += std::to_string(ring->tid);
      line += ",\"ts\":";
      line += std::to_string(e.ts_us);
      line += ",\"name\":\"";
      json_escape_into(line, e.name);
      line += "\"";
      if (e.phase == Phase::kCounter) {
        line += ",\"args\":{\"value\":";
        line += std::to_string(e.arg);
        line += "}";
      } else if (e.has_arg) {
        line += ",\"args\":{\"v\":";
        line += std::to_string(e.arg);
        line += "}";
      }
      if (e.phase == Phase::kInstant) line += ",\"s\":\"t\"";
      line += "}";
      emit(line);
    }
    // Close spans still open at drain time so the B/E pairing stays
    // balanced (e.g. a Span alive in the caller when stop() runs).
    for (; depth > 0; --depth) {
      line.clear();
      line += "{\"ph\":\"E\",\"pid\":1,\"tid\":";
      line += std::to_string(ring->tid);
      line += ",\"ts\":";
      line += std::to_string(std::max(last_ts, drain_ts));
      line += ",\"name\":\"<open-at-export>\"}";
      emit(line);
    }
  }
  out << "\n]}\n";
}

void Tracer::begin(const char* name, uint64_t arg, bool has_arg) {
  if (!enabled()) return;
  record(Phase::kBegin, name, arg, has_arg);
}

void Tracer::end(const char* name) {
  if (!enabled()) return;
  record(Phase::kEnd, name, 0, false);
}

void Tracer::counter(const char* name, uint64_t value) {
  if (!enabled()) return;
  record(Phase::kCounter, name, value, true);
}

void Tracer::instant(const char* name, uint64_t arg, bool has_arg) {
  if (!enabled()) return;
  record(Phase::kInstant, name, arg, has_arg);
}

void Tracer::set_thread_name(const std::string& name) {
  if (!enabled()) return;
  local_ring()->thread_name = name;
}

uint64_t Tracer::recorded_events() const {
  TracerState& impl = TracerState::get();
  std::lock_guard<std::mutex> lk(impl.mu);
  uint64_t total = 0;
  for (const auto& ring : impl.rings) {
    total += std::min<uint64_t>(ring->appended, kRingCapacity);
  }
  return total;
}

void trace_start(const std::string& path) {
  Tracer::instance().start(path);
  static bool atexit_registered = false;
  if (!atexit_registered) {
    atexit_registered = true;
    std::atexit([] { Tracer::instance().stop(); });
  }
}

bool init_from_env() {
  const char* v = std::getenv("CFIR_TRACE");
  if (v == nullptr || *v == '\0' ||
      (v[0] == '0' && v[1] == '\0')) {
    return false;
  }
  trace_start(v);
  return true;
}

}  // namespace cfir::obs
