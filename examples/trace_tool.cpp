// Trace tooling CLI: record, inspect, replay, phase-analyze and sample
// workload traces.
//
//   trace_tool record <workload> [scale] [max_insts]   write <wl>.s<scale>.cfirtrace
//   trace_tool info   <file>                           print header + stream summary
//   trace_tool replay <file>                           verify trace against live run
//   trace_tool phases <file> [n_intervals]             BBV + phase clustering, JSON
//   trace_tool sample <workload> <k> [scale] [max]     sampled detailed run
//          [--mode=uniform|cluster] [--warmup=W] [--max-k=K]
//          [--warm-mode=none|detailed|functional|hybrid] [--detail=M]
//
// Files land in CFIR_TRACE_DIR (default "."). `record` captures from the
// reference interpreter; `replay` re-executes under verification and cross
// checks the final architectural registers and memory digest stored in the
// header, exiting non-zero on any divergence. `phases` chops a stored
// trace into n fixed-length intervals, builds per-interval basic-block
// vectors and clusters them (docs/sampling.md). `sample` runs the
// detailed core over the planned intervals in parallel (CFIR_THREADS) and
// prints per-interval and merged stats as JSON; in cluster mode <k> is
// the number of BBV windows and only one weighted representative per
// phase is simulated.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"
#include "trace/bbv.hpp"
#include "trace/cluster.hpp"
#include "trace/sampling.hpp"
#include "trace/trace.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace cfir;

int usage() {
  std::fprintf(
      stderr,
      "usage: trace_tool record <workload> [scale] [max_insts]\n"
      "       trace_tool info   <trace-file>\n"
      "       trace_tool replay <trace-file>\n"
      "       trace_tool phases <trace-file> [n_intervals]\n"
      "       trace_tool sample <workload> <k> [scale] [max_insts]\n"
      "                         [--mode=uniform|cluster] [--warmup=W]\n"
      "                         [--max-k=K]\n"
      "                         [--warm-mode=none|detailed|functional|hybrid]\n"
      "                         [--detail=M (measured-slice cap/interval)]\n"
      "env: CFIR_TRACE_DIR (output dir), CFIR_THREADS (sample)\n");
  return 2;
}

std::string default_path(const std::string& workload, uint32_t scale) {
  return trace::env_trace_dir() + "/" + workload + ".s" +
         std::to_string(scale) + ".cfirtrace";
}

int cmd_record(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string workload = argv[0];
  const uint32_t scale =
      argc > 1 ? static_cast<uint32_t>(std::strtoul(argv[1], nullptr, 10)) : 1;
  const uint64_t max_insts =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : UINT64_MAX;

  const isa::Program program = workloads::build(workload, scale);
  trace::TraceMeta meta;
  meta.workload = workload;
  meta.scale = scale;
  const std::string path = default_path(workload, scale);
  const isa::InterpResult r =
      trace::record_interpreter(program, path, meta, max_insts);
  std::printf("recorded %llu instructions of %s (scale %u) to %s\n",
              static_cast<unsigned long long>(r.executed), workload.c_str(),
              scale, path.c_str());
  std::printf("final digest 0x%016llx halted=%d\n",
              static_cast<unsigned long long>(r.mem_digest), r.halted);
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 1) return usage();
  trace::TraceReader reader(argv[0]);
  std::printf("workload: %s  scale: %u  base_pc: 0x%llx\n",
              reader.meta().workload.c_str(), reader.meta().scale,
              static_cast<unsigned long long>(reader.meta().base_pc));
  std::printf("records: %llu  final digest: 0x%016llx\n",
              static_cast<unsigned long long>(reader.record_count()),
              static_cast<unsigned long long>(reader.final_digest()));

  uint64_t branches = 0, taken = 0, loads = 0, stores = 0;
  trace::TraceRecord rec;
  while (reader.next(rec)) {
    switch (rec.kind) {
      case trace::RecordKind::kBranch:
        ++branches;
        if (rec.taken) ++taken;
        break;
      case trace::RecordKind::kLoad: ++loads; break;
      case trace::RecordKind::kStore: ++stores; break;
      case trace::RecordKind::kPlain: break;
    }
  }
  std::printf("branches: %llu (%llu taken)  loads: %llu  stores: %llu\n",
              static_cast<unsigned long long>(branches),
              static_cast<unsigned long long>(taken),
              static_cast<unsigned long long>(loads),
              static_cast<unsigned long long>(stores));
  return 0;
}

int cmd_replay(int argc, char** argv) {
  if (argc < 1) return usage();
  trace::TraceReader reader(argv[0]);
  const isa::Program program =
      workloads::build(reader.meta().workload, reader.meta().scale);
  const trace::ReplayResult r = trace::replay_trace(program, reader);
  if (!r.match) {
    std::fprintf(stderr, "replay FAILED after %llu records: %s\n",
                 static_cast<unsigned long long>(r.replayed),
                 r.mismatch.c_str());
    return 1;
  }
  std::printf("replay OK: %llu records, final digest 0x%016llx\n",
              static_cast<unsigned long long>(r.replayed),
              static_cast<unsigned long long>(r.final_state.mem_digest));
  return 0;
}

int cmd_phases(int argc, char** argv) {
  if (argc < 1) return usage();
  trace::TraceReader reader(argv[0]);
  const uint32_t n_intervals =
      argc > 1 ? static_cast<uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 32;
  if (n_intervals == 0) return usage();

  // Interval length from the header's record count, so `phases` needs no
  // workload rebuild — it only walks the stored stream.
  const uint64_t records = reader.record_count();
  const uint64_t interval_len =
      records == 0 ? 1 : (records + n_intervals - 1) / n_intervals;
  const trace::BbvSet bbvs = trace::bbv_from_trace(reader, interval_len);
  const trace::Clustering clusters = trace::cluster_bbvs(bbvs);

  std::printf("{\"workload\":\"%s\",\"scale\":%u,\"records\":%llu,"
              "\"interval_len\":%llu,\"intervals\":%zu,\"blocks\":%zu,"
              "\"k\":%u}\n",
              reader.meta().workload.c_str(), reader.meta().scale,
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(interval_len),
              bbvs.num_intervals(), bbvs.leaders.size(), clusters.k);
  for (size_t i = 0; i < bbvs.num_intervals(); ++i) {
    uint64_t insts = 0;
    for (const uint32_t c : bbvs.vectors[i]) insts += c;
    std::printf("{\"interval\":%zu,\"start\":%llu,\"insts\":%llu,"
                "\"cluster\":%u}\n",
                i, static_cast<unsigned long long>(i * interval_len),
                static_cast<unsigned long long>(insts),
                clusters.assignment[i]);
  }
  for (uint32_t c = 0; c < clusters.k; ++c) {
    std::printf("{\"cluster\":%u,\"representative\":%u,\"weight\":%llu}\n",
                c, clusters.representative[c],
                static_cast<unsigned long long>(clusters.sizes[c]));
  }
  return 0;
}

int cmd_sample(int argc, char** argv) {
  // Positional args first, then --flags (any order among themselves).
  std::vector<std::string> pos;
  trace::SampleMode mode = trace::SampleMode::kUniform;
  trace::WarmMode warm_mode = trace::WarmMode::kDetailed;
  uint64_t warmup = 0;
  uint64_t detail_len = 0;
  uint32_t max_k = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--warm-mode=", 0) == 0) {
      warm_mode = trace::parse_warm_mode(arg.substr(12));
    } else if (arg.rfind("--detail=", 0) == 0) {
      detail_len = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--mode=", 0) == 0) {
      const std::string v = arg.substr(7);
      if (v == "uniform") {
        mode = trace::SampleMode::kUniform;
      } else if (v == "cluster") {
        mode = trace::SampleMode::kCluster;
      } else {
        return usage();
      }
    } else if (arg.rfind("--warmup=", 0) == 0) {
      warmup = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--max-k=", 0) == 0) {
      max_k = static_cast<uint32_t>(
          std::strtoul(arg.c_str() + 8, nullptr, 10));
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      pos.push_back(arg);
    }
  }
  if (pos.size() < 2) return usage();
  const std::string workload = pos[0];
  const uint32_t k =
      static_cast<uint32_t>(std::strtoul(pos[1].c_str(), nullptr, 10));
  const uint32_t scale =
      pos.size() > 2
          ? static_cast<uint32_t>(std::strtoul(pos[2].c_str(), nullptr, 10))
          : 1;
  const uint64_t max_insts =
      pos.size() > 3 ? std::strtoull(pos[3].c_str(), nullptr, 10) : 0;

  const isa::Program program = workloads::build(workload, scale);
  trace::IntervalPlan plan;
  if (mode == trace::SampleMode::kCluster) {
    trace::ClusterPlanOptions opts;
    opts.n_intervals = k;
    opts.max_k = max_k;
    opts.warmup = warmup;
    opts.warm_mode = warm_mode;
    opts.detail_len = detail_len;
    opts.max_insts = max_insts;
    plan = trace::plan_cluster_intervals(program, opts);
  } else {
    plan = trace::plan_intervals(program, k, max_insts, warmup, warm_mode,
                                 detail_len);
  }
  const trace::SampledRun run =
      trace::sampled_run(sim::presets::ci(2, 512), program, plan);
  for (size_t i = 0; i < run.intervals.size(); ++i) {
    const auto& interval = run.intervals[i];
    std::printf("{\"interval\":%zu,\"start\":%llu,\"length\":%llu,"
                "\"warmup\":%llu,\"weight\":%g,\"stats\":%s}\n",
                i, static_cast<unsigned long long>(interval.start_inst),
                static_cast<unsigned long long>(interval.length),
                static_cast<unsigned long long>(interval.warmup),
                interval.weight, stats::to_json(interval.stats).c_str());
  }
  const double coverage =
      run.total_insts == 0
          ? 0.0
          : static_cast<double>(run.detailed_insts) /
                static_cast<double>(run.total_insts);
  std::printf("{\"aggregate\":true,\"mode\":\"%s\",\"warm_mode\":\"%s\","
              "\"total_insts\":%llu,\"detailed_insts\":%llu,"
              "\"warmed_insts\":%llu,\"detailed_fraction\":%g,"
              "\"stats\":%s}\n",
              mode == trace::SampleMode::kCluster ? "cluster" : "uniform",
              trace::warm_mode_name(warm_mode),
              static_cast<unsigned long long>(run.total_insts),
              static_cast<unsigned long long>(run.detailed_insts),
              static_cast<unsigned long long>(run.warmed_insts),
              coverage, stats::to_json(run.aggregate).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "record") return cmd_record(argc - 2, argv + 2);
    if (cmd == "info") return cmd_info(argc - 2, argv + 2);
    if (cmd == "replay") return cmd_replay(argc - 2, argv + 2);
    if (cmd == "phases") return cmd_phases(argc - 2, argv + 2);
    if (cmd == "sample") return cmd_sample(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_tool %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage();
}
