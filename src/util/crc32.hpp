// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte ranges.
// Used as the integrity footer of every binary artifact the trace subsystem
// writes (CFIRTRC1 / CFIRCKP / CFIRMAN1 / CFIRSHD1 — see
// docs/trace-format.md "CRC footer"): a truncated or bit-flipped file is
// rejected at open instead of decoding into garbage. The incremental form
// (`seed` is a previous call's return value) lets callers checksum a file
// in chunks without holding it in memory.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cfir::util {

/// CRC of `data[0, n)` continued from `seed` (0 starts a fresh checksum).
/// Matches zlib's crc32(): crc32(crc32(0, a), b) == crc32(0, a || b).
[[nodiscard]] uint32_t crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace cfir::util
