#include "workloads/workloads.hpp"

#include <gtest/gtest.h>

#include "isa/interpreter.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"

namespace cfir::workloads {
namespace {

TEST(Workloads, RegistryHasTwelveSpecIntNames) {
  EXPECT_EQ(names().size(), 12u);
  EXPECT_EQ(names().front(), "bzip2");
  EXPECT_EQ(names().back(), "vpr");
  EXPECT_THROW(build("notabenchmark", 1), std::invalid_argument);
  EXPECT_THROW(describe("notabenchmark"), std::invalid_argument);
}

class EveryWorkload : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryWorkload, TerminatesUnderInterpreter) {
  const isa::Program p = build(GetParam(), 1);
  const isa::InterpResult r = isa::run_program(p, 3000000);
  EXPECT_TRUE(r.halted) << GetParam() << " did not halt";
  // Scale 1 sits in a band that keeps full sweeps fast but meaningful.
  EXPECT_GT(r.executed, 10000u) << GetParam();
  EXPECT_LT(r.executed, 2000000u) << GetParam();
}

TEST_P(EveryWorkload, DeterministicAcrossBuilds) {
  const isa::InterpResult a = isa::run_program(build(GetParam(), 1), 3000000);
  const isa::InterpResult b = isa::run_program(build(GetParam(), 1), 3000000);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.regs, b.regs);
  EXPECT_EQ(a.mem_digest, b.mem_digest);
}

TEST_P(EveryWorkload, ScaleGrowsWork) {
  const isa::InterpResult s1 = isa::run_program(build(GetParam(), 1), 30000000);
  const isa::InterpResult s2 = isa::run_program(build(GetParam(), 2), 30000000);
  EXPECT_GT(s2.executed, s1.executed) << GetParam();
}

TEST_P(EveryWorkload, HasDescription) {
  EXPECT_FALSE(describe(GetParam()).empty());
}

INSTANTIATE_TEST_SUITE_P(All, EveryWorkload,
                         ::testing::ValuesIn(names()),
                         [](const auto& info) { return info.param; });

TEST(WorkloadCharacter, EonIsPredictableBzip2IsNot) {
  sim::Simulator eon(sim::presets::scal(1, 256), build("eon", 1));
  sim::Simulator bzip2(sim::presets::scal(1, 256), build("bzip2", 1));
  const auto se = eon.run(1000000);
  const auto sb = bzip2.run(1000000);
  EXPECT_LT(se.mispredict_rate(), 0.03);
  EXPECT_GT(sb.mispredict_rate(), 0.10);
}

TEST(WorkloadCharacter, McfSelectsButCannotReuse) {
  // Pointer chasing: CI instructions are found, but their backward slices
  // do not start at strided loads, so reuse stays (nearly) absent — the
  // gray band of Figure 5.
  sim::Simulator s(sim::presets::ci(2, 512), build("mcf", 1));
  const auto st = s.run(1000000);
  EXPECT_GT(st.ep_total, 0u);
  EXPECT_GT(st.ep_ci_selected, 0u);
  EXPECT_LT(static_cast<double>(st.ep_ci_reused),
            0.3 * static_cast<double>(st.ep_ci_selected));
}

TEST(WorkloadCharacter, Bzip2ReusesThroughCi) {
  sim::Simulator s(sim::presets::ci(2, 512), build("bzip2", 1));
  const auto st = s.run(1000000);
  EXPECT_GT(st.ep_ci_reused, 0u);
  EXPECT_GT(st.reused_committed, 0u);
}

TEST(WorkloadCharacter, VortexExercisesCoherenceChecks) {
  sim::Simulator s(sim::presets::ci(2, 512), build("vortex", 1));
  const auto st = s.run(1000000);
  EXPECT_GT(st.store_range_checks, 0u);
  // Paper section 2.4.3: conflicts are rare (<3% of stores).
  EXPECT_LT(static_cast<double>(st.store_range_conflicts),
            0.25 * static_cast<double>(st.committed_stores) + 10);
}

TEST(WorkloadCharacter, ParserStressesReturnStack) {
  sim::Simulator s(sim::presets::scal(1, 256), build("parser", 1));
  const auto st = s.run(1000000);
  EXPECT_GT(st.committed_branches, st.cond_branches);  // calls/rets present
}

}  // namespace
}  // namespace cfir::workloads
