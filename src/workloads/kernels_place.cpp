// Placement/routing kernels: twolf (simulated-annealing accept/reject) and
// vpr (grid routing cost with min/max reduction).
#include <random>

#include "isa/assembler.hpp"
#include "workloads/workloads.hpp"

namespace cfir::workloads {

using isa::Assembler;
using isa::Program;

// ---------------------------------------------------------------------------
// twolf — annealing accept/reject: compare a strided cost delta against a
// strided threshold; the accept branch is essentially a coin flip, and the
// post-join bookkeeping (best-cost update, counters) is control independent
// and strided-fed.
// ---------------------------------------------------------------------------
Program build_twolf(uint32_t scale) {
  Assembler as;
  std::mt19937_64 gen(0x2201FULL);
  const size_t n = 1280;
  const uint64_t deltas = as.reserve("deltas", n * 8);
  const uint64_t thresh = as.reserve("thresh", n * 8);
  for (size_t i = 0; i < n; ++i) {
    as.init_word(deltas + i * 8, gen() % 2000);
    as.init_word(thresh + i * 8, gen() % 2000);
  }

  const int rIdx = 1, rD = 2, rTh = 3, rAcc = 4, rRej = 5, rT = 6;
  const int rDB = 7, rTB = 8, rEnd = 9, rCost = 10, rZ = 11, rOuter = 12;
  as.movi(rDB, static_cast<int64_t>(deltas));
  as.movi(rTB, static_cast<int64_t>(thresh));
  as.movi(rOuter, static_cast<int64_t>(3 * scale));
  as.movi(rZ, 0);
  as.label("outer");
  as.movi(rIdx, 0);
  as.movi(rAcc, 0);
  as.movi(rRej, 0);
  as.movi(rCost, 100000);
  as.movi(rEnd, static_cast<int64_t>(n));
  as.label("loop");
  as.shli(rT, rIdx, 3);
  as.add(rD, rDB, rT);
  as.ld(rD, rD, 0, 8);                // strided delta
  as.add(rTh, rTB, rT);
  as.ld(rTh, rTh, 0, 8);              // strided threshold
  as.blt(rD, rTh, "accept");          // coin-flip hammock
  as.addi(rRej, rRej, 1);
  as.jmp("joined");
  as.label("accept");
  as.addi(rAcc, rAcc, 1);
  as.label("joined");                 // re-convergent point
  as.sub(rT, rCost, rD);              // CI: strided-fed cost update
  as.min(rCost, rCost, rT);
  as.addi(rIdx, rIdx, 1);
  as.blt(rIdx, rEnd, "loop");
  as.addi(rOuter, rOuter, -1);
  as.bne(rOuter, rZ, "outer");
  as.halt();
  return as.assemble();
}

// ---------------------------------------------------------------------------
// vpr — routing cost: for each net, compare the costs of two strided
// channel arrays (random data → hard pick), then accumulate min/max track
// usage after the join.
// ---------------------------------------------------------------------------
Program build_vpr(uint32_t scale) {
  Assembler as;
  std::mt19937_64 gen(0x0BADCAFEULL);
  const size_t n = 1280;
  const uint64_t horiz = as.reserve("horiz", n * 8);
  const uint64_t vert = as.reserve("vert", n * 8);
  for (size_t i = 0; i < n; ++i) {
    as.init_word(horiz + i * 8, gen() % 5000);
    as.init_word(vert + i * 8, gen() % 5000);
  }

  const int rIdx = 1, rH = 2, rV = 3, rHC = 4, rVC = 5, rT = 6;
  const int rHB = 7, rVB = 8, rEnd = 9, rMin = 10, rMax = 11, rZ = 12;
  const int rOuter = 13;
  as.movi(rHB, static_cast<int64_t>(horiz));
  as.movi(rVB, static_cast<int64_t>(vert));
  as.movi(rOuter, static_cast<int64_t>(3 * scale));
  as.movi(rZ, 0);
  as.label("outer");
  as.movi(rIdx, 0);
  as.movi(rHC, 0);
  as.movi(rVC, 0);
  as.movi(rMin, 1 << 20);
  as.movi(rMax, 0);
  as.movi(rEnd, static_cast<int64_t>(n));
  as.label("loop");
  as.shli(rT, rIdx, 3);
  as.add(rH, rHB, rT);
  as.ld(rH, rH, 0, 8);                // strided horizontal cost
  as.add(rV, rVB, rT);
  as.ld(rV, rV, 0, 8);                // strided vertical cost
  as.blt(rH, rV, "pick_h");           // hard pick
  as.addi(rVC, rVC, 1);
  as.jmp("picked");
  as.label("pick_h");
  as.addi(rHC, rHC, 1);
  as.label("picked");                 // re-convergent point
  as.add(rT, rH, rV);                 // CI: total channel cost
  as.min(rMin, rMin, rT);
  as.max(rMax, rMax, rT);
  as.addi(rIdx, rIdx, 1);
  as.blt(rIdx, rEnd, "loop");
  as.addi(rOuter, rOuter, -1);
  as.bne(rOuter, rZ, "outer");
  as.halt();
  return as.assemble();
}

}  // namespace cfir::workloads
