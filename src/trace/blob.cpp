#include "trace/blob.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "trace/errors.hpp"
#include "util/crc32.hpp"

namespace cfir::trace {

namespace {

/// Opens `path` positioned at the end and returns its size; rejects
/// anything that is not a readable regular file (tellg returns -1 for
/// directories and such) before any buffer is sized from it.
std::ifstream open_sized(const std::string& path, const char* what,
                         std::streamoff& size) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  size = in ? static_cast<std::streamoff>(in.tellg()) : std::streamoff{-1};
  if (!in || size < 0) {
    throw CorruptFileError(std::string(what) + ": cannot open " + path);
  }
  in.seekg(0);
  return in;
}

std::vector<uint8_t> read_whole_file(const std::string& path,
                                     const char* what) {
  std::streamoff size = 0;
  std::ifstream in = open_sized(path, what, size);
  // Read in chunks instead of sizing the buffer from the reported size: a
  // directory opens fine on some platforms and reports a bogus huge size
  // (this libstdc++ says LLONG_MAX), which must fail on the first read,
  // not in the allocator.
  std::vector<uint8_t> bytes;
  std::vector<uint8_t> buf(64 * 1024);
  for (;;) {
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    const std::streamsize got = in.gcount();
    bytes.insert(bytes.end(), buf.data(), buf.data() + got);
    if (in.eof()) break;
    if (!in) {
      throw CorruptFileError(std::string(what) + ": cannot read " + path);
    }
  }
  return bytes;
}

/// CRC of the stream's next `n` bytes, computed in fixed-size chunks so
/// callers that only need the checksum never buffer the whole file.
uint32_t crc_of_stream(std::istream& in, uint64_t n, const std::string& path,
                       const char* what) {
  std::vector<uint8_t> buf(64 * 1024);
  uint32_t crc = 0;
  while (n > 0) {
    const size_t chunk =
        static_cast<size_t>(std::min<uint64_t>(n, buf.size()));
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(chunk));
    if (!in) {
      throw CorruptFileError(std::string(what) + ": read failed for " +
                             path);
    }
    crc = util::crc32(buf.data(), chunk, crc);
    n -= chunk;
  }
  return crc;
}

void append_footer_bytes(std::ofstream& out, uint32_t crc) {
  out.write(kCrcFooterMagic, sizeof(kCrcFooterMagic));
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
}

}  // namespace

void write_blob_file(const std::string& path,
                     const std::vector<uint8_t>& payload) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("blob: cannot open " + path);
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  append_footer_bytes(out, util::crc32(payload.data(), payload.size()));
  out.close();
  if (!out) throw std::runtime_error("blob: write failed for " + path);
}

std::vector<uint8_t> read_blob_file(const std::string& path, const char* what,
                                    bool require_footer) {
  std::vector<uint8_t> bytes = read_whole_file(path, what);
  const bool has_footer =
      bytes.size() >= kCrcFooterBytes &&
      std::memcmp(bytes.data() + bytes.size() - kCrcFooterBytes,
                  kCrcFooterMagic, sizeof(kCrcFooterMagic)) == 0;
  if (!has_footer) {
    if (require_footer) {
      throw CorruptFileError(std::string(what) +
                             ": missing CRC footer (truncated file?) in " +
                             path);
    }
    return bytes;  // legacy pre-footer file
  }
  const size_t payload_size = bytes.size() - kCrcFooterBytes;
  uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + payload_size + sizeof(kCrcFooterMagic),
              sizeof(stored));
  if (stored != util::crc32(bytes.data(), payload_size)) {
    throw CorruptFileError(std::string(what) +
                           ": CRC mismatch (corrupt or truncated file) in " +
                           path);
  }
  bytes.resize(payload_size);
  return bytes;
}

void append_crc_footer(const std::string& path) {
  std::streamoff size = 0;
  std::ifstream in = open_sized(path, "blob", size);
  const uint32_t crc =
      crc_of_stream(in, static_cast<uint64_t>(size), path, "blob");
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) throw std::runtime_error("blob: cannot open " + path);
  append_footer_bytes(out, crc);
  out.close();
  if (!out) throw std::runtime_error("blob: write failed for " + path);
}

void verify_crc_footer(const std::string& path, const char* what) {
  std::streamoff size = 0;
  std::ifstream in = open_sized(path, what, size);
  if (static_cast<uint64_t>(size) < kCrcFooterBytes) return;  // legacy
  const uint64_t payload_size =
      static_cast<uint64_t>(size) - kCrcFooterBytes;

  char footer[kCrcFooterBytes];
  in.seekg(static_cast<std::streamoff>(payload_size));
  in.read(footer, sizeof(footer));
  if (!in) {
    throw CorruptFileError(std::string(what) + ": read failed for " + path);
  }
  if (std::memcmp(footer, kCrcFooterMagic, sizeof(kCrcFooterMagic)) != 0) {
    return;  // legacy pre-footer file
  }
  uint32_t stored = 0;
  std::memcpy(&stored, footer + sizeof(kCrcFooterMagic), sizeof(stored));

  in.seekg(0);
  if (stored != crc_of_stream(in, payload_size, path, what)) {
    throw CorruptFileError(std::string(what) +
                           ": CRC mismatch (corrupt or truncated file) in " +
                           path);
  }
}

}  // namespace cfir::trace
