// Differential tests: the out-of-order core must commit exactly the
// interpreter's architectural state, for every configuration dimension of
// the baseline (ports, wide bus, register counts).
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "isa/assembler.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace cfir::sim {
namespace {

void expect_match(const core::CoreConfig& cfg, const isa::Program& p,
                  uint64_t cap = 400000) {
  const DiffResult r = differential_run(cfg, p, cap);
  EXPECT_TRUE(r.match) << r.mismatch;
}

TEST(CoreDifferential, Figure1Hammock) {
  expect_match(presets::scal(1, 256), cfir::testing::figure1_program(512, 50, 3));
}

TEST(CoreDifferential, Figure1AllZero) {
  expect_match(presets::scal(1, 256), cfir::testing::figure1_program(512, 100, 3));
}

TEST(CoreDifferential, WideBus) {
  expect_match(presets::wb(1, 256), cfir::testing::figure1_program(512, 50, 9));
}

TEST(CoreDifferential, TwoPorts) {
  expect_match(presets::scal(2, 256), cfir::testing::figure1_program(512, 50, 9));
}

TEST(CoreDifferential, TinyRegisterFile) {
  expect_match(presets::scal(1, 128), cfir::testing::figure1_program(512, 50, 11));
}

TEST(CoreDifferential, HugeRegisterFile) {
  expect_match(presets::scal(1, presets::kInfRegs),
               cfir::testing::figure1_program(512, 50, 11));
}

TEST(CoreDifferential, StoreLoadForwardingPattern) {
  const isa::Program p = isa::assemble_text(R"(
    movi r1, 1048576
    movi r2, 0
    movi r9, 64
  loop:
    add r3, r2, r2
    add r4, r1, r2
    st8 r3, 0(r4)
    ld8 r5, 0(r4)      # forwarded from the in-flight store
    add r6, r6, r5
    add r2, r2, 8
    bne r2, r9, loop
    halt
  )");
  expect_match(presets::scal(1, 256), p);
}

TEST(CoreDifferential, PartialOverlapStoreLoad) {
  const isa::Program p = isa::assemble_text(R"(
    movi r1, 1048576
    movi r2, 0x11223344
    st8 r2, 0(r1)
    st1 r3, 2(r1)      # narrow store into the middle
    ld8 r4, 0(r1)      # overlaps both stores: must wait, not forward
    ld2 r5, 2(r1)
    halt
  )");
  expect_match(presets::scal(1, 256), p);
}

TEST(CoreDifferential, DivChain) {
  const isa::Program p = isa::assemble_text(R"(
    movi r1, 1000000
    movi r2, 7
    div r3, r1, r2
    div r4, r3, r2
    rem r5, r1, r2
    movi r6, 0
    div r7, r1, r6     # division by zero path
    halt
  )");
  expect_match(presets::scal(1, 256), p);
}

TEST(CoreDifferential, CallRetNesting) {
  const isa::Program p = isa::assemble_text(R"(
    movi r1, 20
    movi r2, 0
  loop:
    call outer
    add r1, r1, -1
    movi r9, 0
    bne r1, r9, loop
    halt
  outer:
    mov r60, r63        # save link
    call inner
    mov r63, r60
    add r2, r2, 1
    ret
  inner:
    add r2, r2, 2
    ret
  )");
  expect_match(presets::scal(1, 256), p);
}

TEST(CoreDifferential, WorkloadsUnderBaseline) {
  for (const char* name : {"bzip2", "mcf", "eon"}) {
    const isa::Program p = workloads::build(name, 1);
    const DiffResult r = differential_run(presets::scal(1, 256), p, 60000);
    EXPECT_TRUE(r.match) << name << ": " << r.mismatch;
  }
}

}  // namespace
}  // namespace cfir::sim
