// Compact 64-bit RISC ISA used by the simulator substrate.
//
// The ISA deliberately mirrors the properties the paper's mechanism relies
// on: 64 logical registers (the NRBQ/CRP masks and the rename-map extension
// in the paper are sized for 64 logical registers), fixed-size instruction
// slots so that "the instruction one location above the branch target"
// (re-convergence heuristic, paper section 2.3.1) is well defined, and
// absolute branch targets resolved at assembly time.
#pragma once

#include <cstdint>
#include <string>

namespace cfir::isa {

/// Number of architectural (logical) integer registers.
inline constexpr int kNumLogicalRegs = 64;
/// Size of one instruction slot; PCs advance in units of this.
inline constexpr uint64_t kInstBytes = 4;
/// Register used as the link register by CALL/RET.
inline constexpr uint8_t kLinkReg = 63;

/// Operation codes. Arithmetic is 64-bit two's complement (wrapping).
enum class Opcode : uint8_t {
  kNop,
  kHalt,
  // Register-register ALU.
  kAdd, kSub, kMul, kDiv, kRem,
  kAnd, kOr, kXor,
  kShl, kShr, kSar,
  kSlt, kSltu, kSeq,
  kMin, kMax,
  // Register-immediate ALU.
  kAddi, kMuli, kAndi, kOri, kXori, kShli, kShrli,
  kMovi,  ///< rd = imm
  kMov,   ///< rd = rs1
  // Memory: address = rs1 + imm. Loads zero-extend sub-word accesses.
  kLd8, kLd4, kLd2, kLd1,
  kSt8, kSt4, kSt2, kSt1,
  // Control. Conditional branches compare rs1 against rs2; target is the
  // absolute PC held in imm (labels are resolved by the assembler).
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kJmp,   ///< unconditional direct jump to imm
  kCall,  ///< r63 = pc + 4; jump to imm
  kRet,   ///< jump to rs1 (predicted via the return address stack)
  kOpcodeCount,
};

/// One static instruction. `imm` holds immediates, load/store displacements
/// and absolute branch targets.
struct Instruction {
  Opcode op = Opcode::kNop;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  int64_t imm = 0;

  bool operator==(const Instruction&) const = default;
};

/// Functional-unit class an instruction executes on (latencies are
/// configured in core::CoreConfig following Table 1 of the paper).
enum class FuClass : uint8_t {
  kNone,     ///< nop/halt/jumps resolved at decode
  kIntAlu,   ///< simple integer
  kIntMul,
  kIntDiv,
  kMem,      ///< loads and stores (address generation + cache access)
  kBranch,   ///< conditional branches and indirect jumps (use an ALU)
};

[[nodiscard]] bool has_dest(Opcode op);
[[nodiscard]] int num_sources(Opcode op);  ///< 0, 1 or 2 register sources
[[nodiscard]] bool reads_rs1(Opcode op);
[[nodiscard]] bool reads_rs2(Opcode op);
[[nodiscard]] bool is_load(Opcode op);
[[nodiscard]] bool is_store(Opcode op);
[[nodiscard]] bool is_mem(Opcode op);
[[nodiscard]] bool is_cond_branch(Opcode op);
[[nodiscard]] bool is_uncond_branch(Opcode op);  ///< jmp/call/ret
[[nodiscard]] bool is_branch(Opcode op);         ///< any control transfer
[[nodiscard]] bool is_indirect(Opcode op);       ///< target comes from a register
[[nodiscard]] FuClass fu_class(Opcode op);
[[nodiscard]] int mem_bytes(Opcode op);  ///< access width, 0 for non-memory

/// Number of bytes accessed by a load/store opcode; 0 otherwise.
[[nodiscard]] const char* opcode_name(Opcode op);
[[nodiscard]] std::string disassemble(const Instruction& inst, uint64_t pc);

/// Evaluates a two-source ALU operation (used by both the reference
/// interpreter and the out-of-order core so that semantics can never
/// diverge between them).
[[nodiscard]] uint64_t eval_alu(Opcode op, uint64_t a, uint64_t b, int64_t imm);

/// Evaluates a conditional-branch predicate.
[[nodiscard]] bool eval_branch(Opcode op, uint64_t a, uint64_t b);

}  // namespace cfir::isa
