// The observability layer (src/obs/) must observe without perturbing:
//
//  - the metrics registry takes concurrent updates from a parallel_for
//    pool without losing a single count (instruments are shared atomics,
//    find-or-create is mutex-guarded);
//  - the tracer's Chrome trace-event export is valid JSON with balanced
//    B/E span pairs on every thread lane, even though each thread records
//    into its own wrapping ring buffer;
//  - .cfirprog heartbeat records round-trip through to_json/parse and the
//    parser survives torn/foreign lines (watch races the writer);
//  - obs::log rate-limits by key so a farm of shards cannot flood stderr;
//  - above all: simulated results are BIT-IDENTICAL with telemetry on and
//    off. The flight recorder reads clocks and copies pointers; it never
//    touches simulated state. This file locks that in for sampled_run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/tracer.hpp"
#include "sim/presets.hpp"
#include "sim/sweep.hpp"
#include "stats/stats.hpp"
#include "trace/sampling.hpp"
#include "workloads/workloads.hpp"

namespace cfir::obs {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(::testing::TempDir() + "cfir_obs_" + tag + ".tmp") {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(ObsMetrics, CountersExactUnderParallelHammering) {
  Registry& reg = Registry::instance();
  reg.reset();
  constexpr size_t kTasks = 64;
  constexpr int kAddsPerTask = 1000;
  // Every task bumps one shared counter AND its own striped counter, mixing
  // find-or-create races with pure add races.
  sim::parallel_for(
      kTasks,
      [&](size_t i) {
        for (int k = 0; k < kAddsPerTask; ++k) {
          reg.counter("obs_test.shared").add(1);
          reg.counter("obs_test.stripe_" + std::to_string(i % 7)).add(2);
          reg.histogram("obs_test.lat").observe(i + 1);
          reg.gauge("obs_test.level").set(static_cast<double>(i));
        }
      },
      8);
  EXPECT_EQ(reg.counter("obs_test.shared").value(), kTasks * kAddsPerTask);
  uint64_t striped = 0;
  for (int s = 0; s < 7; ++s) {
    striped += reg.counter("obs_test.stripe_" + std::to_string(s)).value();
  }
  EXPECT_EQ(striped, 2u * kTasks * kAddsPerTask);
  EXPECT_EQ(reg.histogram("obs_test.lat").count(), kTasks * kAddsPerTask);
  EXPECT_EQ(reg.histogram("obs_test.lat").min(), 1u);
  EXPECT_EQ(reg.histogram("obs_test.lat").max(), kTasks);
  reg.reset();
}

TEST(ObsMetrics, KindMismatchThrows) {
  Registry& reg = Registry::instance();
  reg.reset();
  reg.counter("obs_test.kind").add(1);
  EXPECT_THROW((void)reg.gauge("obs_test.kind"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("obs_test.kind"), std::logic_error);
  reg.reset();
}

TEST(ObsMetrics, SnapshotSortedAndJsonWellFormed) {
  Registry& reg = Registry::instance();
  reg.reset();
  reg.counter("obs_test.b").add(2);
  reg.counter("obs_test.a").add(1);
  reg.histogram("obs_test.h").observe(10);
  const std::vector<MetricSample> snap = reg.snapshot();
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"obs_test.a\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.h\""), std::string::npos);
  // Brace balance as a cheap well-formedness proxy (full validation runs
  // in CI via python -m json.tool on the bench telemetry line).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  reg.reset();
}

// ---------------------------------------------------------------------------
// Tracer export
// ---------------------------------------------------------------------------

/// Minimal per-line scan of the one-event-per-line export: extracts "ph"
/// and "tid" without a JSON library.
struct ExportedEvent {
  char ph = 0;
  long tid = -1;
};

std::vector<ExportedEvent> scan_export(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<ExportedEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    const size_t ph = line.find("\"ph\":\"");
    if (ph == std::string::npos) continue;
    ExportedEvent e;
    e.ph = line[ph + 6];
    const size_t tid = line.find("\"tid\":");
    if (tid != std::string::npos) {
      e.tid = std::strtol(line.c_str() + tid + 6, nullptr, 10);
    }
    events.push_back(e);
  }
  return events;
}

TEST(ObsTracer, ExportBalancedSpansAcrossThreads) {
  TempFile out("trace");
  Tracer::instance().start(out.path());
  ASSERT_TRUE(Tracer::enabled());
  sim::parallel_for(
      16,
      [&](size_t i) {
        Span outer("test.outer", i);
        Tracer::counter("test.progress", i);
        { Span inner("test.inner"); }
        Tracer::instant("test.mark");
      },
      4);
  EXPECT_GT(Tracer::instance().recorded_events(), 0u);
  Tracer::instance().stop();
  EXPECT_FALSE(Tracer::enabled());

  const std::vector<ExportedEvent> events = scan_export(out.path());
  ASSERT_FALSE(events.empty());
  // Balanced B/E per thread lane: depth never dips negative, ends at zero.
  std::map<long, long> depth;
  for (const ExportedEvent& e : events) {
    if (e.ph == 'B') ++depth[e.tid];
    if (e.ph == 'E') {
      --depth[e.tid];
      EXPECT_GE(depth[e.tid], 0) << "unbalanced E on tid " << e.tid;
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;

  // The file must parse as one JSON object per event line with a closing
  // bracket — spot-check the envelope.
  std::ifstream in(out.path());
  std::stringstream whole;
  whole << in.rdbuf();
  const std::string text = whole.str();
  EXPECT_EQ(text.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(text.find("]}"), std::string::npos);
}

TEST(ObsTracer, SpanOpenAcrossStopStillBalances) {
  TempFile out("trace_open");
  Tracer::instance().start(out.path());
  {
    Span open_span("test.open");
    // Stop while the span is still open: the exporter synthesizes the
    // matching end event instead of emitting an unbalanced file.
    Tracer::instance().stop();
  }
  const std::vector<ExportedEvent> events = scan_export(out.path());
  long depth = 0;
  for (const ExportedEvent& e : events) {
    if (e.ph == 'B') ++depth;
    if (e.ph == 'E') --depth;
  }
  EXPECT_EQ(depth, 0);
}

TEST(ObsTracer, DisabledRecordingIsDropped) {
  Tracer::instance().stop();
  ASSERT_FALSE(Tracer::enabled());
  const uint64_t before = Tracer::instance().recorded_events();
  {
    Span s("test.disabled");
    Tracer::counter("test.disabled_counter", 1);
  }
  EXPECT_EQ(Tracer::instance().recorded_events(), before);
}

// ---------------------------------------------------------------------------
// The invariant everything above exists to protect: telemetry does not
// change simulated results.
// ---------------------------------------------------------------------------

TEST(ObsTracer, SampledRunStatsBitIdenticalWithTracingOn) {
  const isa::Program program = workloads::build("gzip", 1);
  const trace::IntervalPlan plan = trace::plan_intervals(
      program, 4, 60000, 0, trace::WarmMode::kFunctional, 0);
  const core::CoreConfig config = sim::presets::ci(2, 512);

  Tracer::instance().stop();
  const trace::SampledRun off = trace::sampled_run(config, program, plan, 2);

  TempFile out("identical");
  Tracer::instance().start(out.path());
  const trace::SampledRun on = trace::sampled_run(config, program, plan, 2);
  Tracer::instance().stop();

  // Serialized stats compare byte-for-byte: any telemetry bleed into
  // simulated state shows up here.
  EXPECT_EQ(stats::to_json(off.aggregate), stats::to_json(on.aggregate));
  ASSERT_EQ(off.intervals.size(), on.intervals.size());
  for (size_t i = 0; i < off.intervals.size(); ++i) {
    EXPECT_EQ(stats::to_json(off.intervals[i].stats),
              stats::to_json(on.intervals[i].stats))
        << "interval " << i;
  }
  EXPECT_EQ(off.detailed_insts, on.detailed_insts);
  EXPECT_EQ(off.warmed_insts, on.warmed_insts);
}

// ---------------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------------

TEST(ObsProgress, HeartbeatJsonRoundTrips) {
  Heartbeat hb;
  hb.phase = "detail";
  hb.shard_index = 2;
  hb.shard_count = 5;
  hb.done = 7;
  hb.total = 12;
  hb.intervals_done = 3;
  hb.plan_intervals = 20;
  hb.configs = 4;
  hb.warmed_insts = 123456;
  hb.detailed_insts = 7890;
  hb.eta_ms = 4200;
  hb.t_ms = 999;

  Heartbeat back;
  ASSERT_TRUE(Heartbeat::parse(hb.to_json(), &back));
  EXPECT_EQ(back.phase, hb.phase);
  EXPECT_EQ(back.shard_index, hb.shard_index);
  EXPECT_EQ(back.shard_count, hb.shard_count);
  EXPECT_EQ(back.done, hb.done);
  EXPECT_EQ(back.total, hb.total);
  EXPECT_EQ(back.intervals_done, hb.intervals_done);
  EXPECT_EQ(back.plan_intervals, hb.plan_intervals);
  EXPECT_EQ(back.configs, hb.configs);
  EXPECT_EQ(back.warmed_insts, hb.warmed_insts);
  EXPECT_EQ(back.detailed_insts, hb.detailed_insts);
  EXPECT_EQ(back.eta_ms, hb.eta_ms);
  EXPECT_EQ(back.t_ms, hb.t_ms);
}

TEST(ObsProgress, ParseRejectsTornAndForeignLines) {
  Heartbeat hb;
  EXPECT_FALSE(Heartbeat::parse("", &hb));
  EXPECT_FALSE(Heartbeat::parse("{\"phase\":\"detail\"}", &hb));  // no tag
  EXPECT_FALSE(Heartbeat::parse("{\"cfirprog\":1,\"phase\":\"de", &hb));
  EXPECT_FALSE(Heartbeat::parse("not json at all", &hb));
}

TEST(ObsProgress, SidecarAppendsParseableRecords) {
  TempFile side("prog");
  Progress& progress = Progress::global();
  progress.configure(side.path(), /*mirror_stderr=*/false);
  ASSERT_TRUE(progress.enabled());
  Heartbeat hb;
  hb.phase = "warm";
  progress.emit(hb, /*force=*/true);
  hb.phase = "detail";
  hb.done = 1;
  hb.total = 2;
  progress.emit(hb, /*force=*/true);
  hb.phase = "done";
  hb.done = 2;
  progress.emit(hb, /*force=*/true);
  progress.disable();
  EXPECT_FALSE(progress.enabled());

  std::ifstream in(side.path());
  std::string line;
  std::vector<Heartbeat> records;
  while (std::getline(in, line)) {
    Heartbeat parsed;
    ASSERT_TRUE(Heartbeat::parse(line, &parsed)) << line;
    records.push_back(parsed);
  }
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.front().phase, "warm");
  EXPECT_EQ(records.back().phase, "done");
  EXPECT_EQ(records.back().done, 2u);
}

// ---------------------------------------------------------------------------
// Rate-limited logging
// ---------------------------------------------------------------------------

TEST(ObsLog, SuppressesPastPerKeyLimit) {
  log_reset_for_tests();
  EXPECT_TRUE(log(LogLevel::kWarn, "obs-test-key", "first", 2));
  EXPECT_TRUE(log(LogLevel::kWarn, "obs-test-key", "second", 2));
  EXPECT_FALSE(log(LogLevel::kWarn, "obs-test-key", "third", 2));
  EXPECT_FALSE(log(LogLevel::kWarn, "obs-test-key", "fourth", 2));
  EXPECT_EQ(log_emitted("obs-test-key"), 2u);
  EXPECT_EQ(log_seen("obs-test-key"), 4u);
  // Independent keys have independent budgets.
  EXPECT_TRUE(log(LogLevel::kInfo, "obs-test-other", "hello", 1));
  EXPECT_FALSE(log(LogLevel::kInfo, "obs-test-other", "again", 1));
  log_reset_for_tests();
}

}  // namespace
}  // namespace cfir::obs
