#include "isa/isa.hpp"

#include <array>
#include <cassert>
#include <sstream>

namespace cfir::isa {

namespace {

struct OpInfo {
  const char* name;
  bool dest;
  bool src1;
  bool src2;
  FuClass fu;
  int mem_bytes;
};

constexpr int kOpCount = static_cast<int>(Opcode::kOpcodeCount);

constexpr std::array<OpInfo, kOpCount> kOpTable = {{
    /*kNop*/   {"nop",  false, false, false, FuClass::kNone, 0},
    /*kHalt*/  {"halt", false, false, false, FuClass::kNone, 0},
    /*kAdd*/   {"add",  true,  true,  true,  FuClass::kIntAlu, 0},
    /*kSub*/   {"sub",  true,  true,  true,  FuClass::kIntAlu, 0},
    /*kMul*/   {"mul",  true,  true,  true,  FuClass::kIntMul, 0},
    /*kDiv*/   {"div",  true,  true,  true,  FuClass::kIntDiv, 0},
    /*kRem*/   {"rem",  true,  true,  true,  FuClass::kIntDiv, 0},
    /*kAnd*/   {"and",  true,  true,  true,  FuClass::kIntAlu, 0},
    /*kOr*/    {"or",   true,  true,  true,  FuClass::kIntAlu, 0},
    /*kXor*/   {"xor",  true,  true,  true,  FuClass::kIntAlu, 0},
    /*kShl*/   {"shl",  true,  true,  true,  FuClass::kIntAlu, 0},
    /*kShr*/   {"shr",  true,  true,  true,  FuClass::kIntAlu, 0},
    /*kSar*/   {"sar",  true,  true,  true,  FuClass::kIntAlu, 0},
    /*kSlt*/   {"slt",  true,  true,  true,  FuClass::kIntAlu, 0},
    /*kSltu*/  {"sltu", true,  true,  true,  FuClass::kIntAlu, 0},
    /*kSeq*/   {"seq",  true,  true,  true,  FuClass::kIntAlu, 0},
    /*kMin*/   {"min",  true,  true,  true,  FuClass::kIntAlu, 0},
    /*kMax*/   {"max",  true,  true,  true,  FuClass::kIntAlu, 0},
    /*kAddi*/  {"addi", true,  true,  false, FuClass::kIntAlu, 0},
    /*kMuli*/  {"muli", true,  true,  false, FuClass::kIntMul, 0},
    /*kAndi*/  {"andi", true,  true,  false, FuClass::kIntAlu, 0},
    /*kOri*/   {"ori",  true,  true,  false, FuClass::kIntAlu, 0},
    /*kXori*/  {"xori", true,  true,  false, FuClass::kIntAlu, 0},
    /*kShli*/  {"shli", true,  true,  false, FuClass::kIntAlu, 0},
    /*kShrli*/ {"shrli",true,  true,  false, FuClass::kIntAlu, 0},
    /*kMovi*/  {"movi", true,  false, false, FuClass::kIntAlu, 0},
    /*kMov*/   {"mov",  true,  true,  false, FuClass::kIntAlu, 0},
    /*kLd8*/   {"ld8",  true,  true,  false, FuClass::kMem, 8},
    /*kLd4*/   {"ld4",  true,  true,  false, FuClass::kMem, 4},
    /*kLd2*/   {"ld2",  true,  true,  false, FuClass::kMem, 2},
    /*kLd1*/   {"ld1",  true,  true,  false, FuClass::kMem, 1},
    /*kSt8*/   {"st8",  false, true,  true,  FuClass::kMem, 8},
    /*kSt4*/   {"st4",  false, true,  true,  FuClass::kMem, 4},
    /*kSt2*/   {"st2",  false, true,  true,  FuClass::kMem, 2},
    /*kSt1*/   {"st1",  false, true,  true,  FuClass::kMem, 1},
    /*kBeq*/   {"beq",  false, true,  true,  FuClass::kBranch, 0},
    /*kBne*/   {"bne",  false, true,  true,  FuClass::kBranch, 0},
    /*kBlt*/   {"blt",  false, true,  true,  FuClass::kBranch, 0},
    /*kBge*/   {"bge",  false, true,  true,  FuClass::kBranch, 0},
    /*kBltu*/  {"bltu", false, true,  true,  FuClass::kBranch, 0},
    /*kBgeu*/  {"bgeu", false, true,  true,  FuClass::kBranch, 0},
    /*kJmp*/   {"jmp",  false, false, false, FuClass::kNone, 0},
    /*kCall*/  {"call", true,  false, false, FuClass::kIntAlu, 0},
    /*kRet*/   {"ret",  false, true,  false, FuClass::kBranch, 0},
}};

const OpInfo& info(Opcode op) {
  const auto idx = static_cast<size_t>(op);
  assert(idx < kOpTable.size());
  return kOpTable[idx];
}

}  // namespace

bool has_dest(Opcode op) { return info(op).dest; }
bool reads_rs1(Opcode op) { return info(op).src1; }
bool reads_rs2(Opcode op) { return info(op).src2; }
int num_sources(Opcode op) {
  return (info(op).src1 ? 1 : 0) + (info(op).src2 ? 1 : 0);
}
bool is_load(Opcode op) {
  return op == Opcode::kLd8 || op == Opcode::kLd4 || op == Opcode::kLd2 ||
         op == Opcode::kLd1;
}
bool is_store(Opcode op) {
  return op == Opcode::kSt8 || op == Opcode::kSt4 || op == Opcode::kSt2 ||
         op == Opcode::kSt1;
}
bool is_mem(Opcode op) { return is_load(op) || is_store(op); }
bool is_cond_branch(Opcode op) {
  switch (op) {
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
      return true;
    default:
      return false;
  }
}
bool is_uncond_branch(Opcode op) {
  return op == Opcode::kJmp || op == Opcode::kCall || op == Opcode::kRet;
}
bool is_branch(Opcode op) { return is_cond_branch(op) || is_uncond_branch(op); }
bool is_indirect(Opcode op) { return op == Opcode::kRet; }
FuClass fu_class(Opcode op) { return info(op).fu; }
int mem_bytes(Opcode op) { return info(op).mem_bytes; }
const char* opcode_name(Opcode op) { return info(op).name; }

std::string disassemble(const Instruction& inst, uint64_t pc) {
  std::ostringstream os;
  os << std::hex << "0x" << pc << std::dec << ": " << opcode_name(inst.op);
  const Opcode op = inst.op;
  auto r = [](int n) { return "r" + std::to_string(n); };
  if (op == Opcode::kNop || op == Opcode::kHalt) {
    // no operands
  } else if (is_load(op)) {
    os << ' ' << r(inst.rd) << ", " << inst.imm << '(' << r(inst.rs1) << ')';
  } else if (is_store(op)) {
    os << ' ' << r(inst.rs2) << ", " << inst.imm << '(' << r(inst.rs1) << ')';
  } else if (is_cond_branch(op)) {
    os << ' ' << r(inst.rs1) << ", " << r(inst.rs2) << ", 0x" << std::hex
       << inst.imm;
  } else if (op == Opcode::kJmp || op == Opcode::kCall) {
    os << " 0x" << std::hex << inst.imm;
  } else if (op == Opcode::kRet) {
    os << ' ' << r(inst.rs1);
  } else if (op == Opcode::kMovi) {
    os << ' ' << r(inst.rd) << ", " << inst.imm;
  } else if (op == Opcode::kMov) {
    os << ' ' << r(inst.rd) << ", " << r(inst.rs1);
  } else if (reads_rs2(op)) {
    os << ' ' << r(inst.rd) << ", " << r(inst.rs1) << ", " << r(inst.rs2);
  } else {
    os << ' ' << r(inst.rd) << ", " << r(inst.rs1) << ", " << inst.imm;
  }
  return os.str();
}

uint64_t eval_alu(Opcode op, uint64_t a, uint64_t b, int64_t imm) {
  const auto sa = static_cast<int64_t>(a);
  const auto sb = static_cast<int64_t>(b);
  const auto ub = static_cast<uint64_t>(imm);
  switch (op) {
    case Opcode::kAdd:  return a + b;
    case Opcode::kSub:  return a - b;
    case Opcode::kMul:  return a * b;
    // Division by zero yields 0 (no traps in this ISA); INT64_MIN / -1 is
    // defined as unsigned negation to avoid signed overflow.
    case Opcode::kDiv:
      if (b == 0) return 0;
      if (sb == -1) return uint64_t{0} - a;
      return static_cast<uint64_t>(sa / sb);
    case Opcode::kRem:
      if (b == 0) return a;
      if (sb == -1) return 0;
      return static_cast<uint64_t>(sa % sb);
    case Opcode::kAnd:  return a & b;
    case Opcode::kOr:   return a | b;
    case Opcode::kXor:  return a ^ b;
    case Opcode::kShl:  return a << (b & 63);
    case Opcode::kShr:  return a >> (b & 63);
    case Opcode::kSar:  return static_cast<uint64_t>(sa >> (b & 63));
    case Opcode::kSlt:  return sa < sb ? 1 : 0;
    case Opcode::kSltu: return a < b ? 1 : 0;
    case Opcode::kSeq:  return a == b ? 1 : 0;
    case Opcode::kMin:  return static_cast<uint64_t>(sa < sb ? sa : sb);
    case Opcode::kMax:  return static_cast<uint64_t>(sa > sb ? sa : sb);
    case Opcode::kAddi: return a + ub;
    case Opcode::kMuli: return a * ub;
    case Opcode::kAndi: return a & ub;
    case Opcode::kOri:  return a | ub;
    case Opcode::kXori: return a ^ ub;
    case Opcode::kShli: return a << (imm & 63);
    case Opcode::kShrli:return a >> (imm & 63);
    case Opcode::kMovi: return ub;
    case Opcode::kMov:  return a;
    default:
      assert(false && "eval_alu called on non-ALU opcode");
      return 0;
  }
}

bool eval_branch(Opcode op, uint64_t a, uint64_t b) {
  const auto sa = static_cast<int64_t>(a);
  const auto sb = static_cast<int64_t>(b);
  switch (op) {
    case Opcode::kBeq:  return a == b;
    case Opcode::kBne:  return a != b;
    case Opcode::kBlt:  return sa < sb;
    case Opcode::kBge:  return sa >= sb;
    case Opcode::kBltu: return a < b;
    case Opcode::kBgeu: return a >= b;
    default:
      assert(false && "eval_branch called on non-branch opcode");
      return false;
  }
}

}  // namespace cfir::isa
