#include "ci/srsmt.hpp"

#include <gtest/gtest.h>

namespace cfir::ci {
namespace {

Srsmt make_table() { return Srsmt(4, 2, 4); }  // 4 sets x 2 ways, 4 replicas

TEST(Srsmt, AllocAndFind) {
  Srsmt t = make_table();
  int released = 0;
  auto rel = [&](uint32_t) { ++released; };
  const uint32_t s = t.alloc(0x1000, rel);
  ASSERT_NE(s, kInvalidSrsmtSlot);
  EXPECT_EQ(t.find(0x1000), s);
  EXPECT_EQ(t.find(0x2000), kInvalidSrsmtSlot);
  EXPECT_EQ(released, 0);
  const SrsmtEntry& e = t.entry(s);
  EXPECT_TRUE(e.valid);
  EXPECT_EQ(e.pc, 0x1000u);
  EXPECT_EQ(e.nregs(), 4u);
  EXPECT_GT(e.uid, 0u);
}

TEST(Srsmt, UidsAreUniqueAcrossGenerations) {
  Srsmt t = make_table();
  auto rel = [](uint32_t) {};
  const uint32_t a = t.alloc(0x1000, rel);
  const uint32_t uid_a = t.entry(a).uid;
  t.entry(a).valid = false;
  const uint32_t b = t.alloc(0x1000, rel);
  EXPECT_NE(t.entry(b).uid, uid_a);
}

TEST(Srsmt, VictimRequiresDeallocatable) {
  Srsmt t = make_table();
  auto rel = [](uint32_t) {};
  // Fill both ways of set 0 (pc>>2 % 4 == 0).
  const uint32_t a = t.alloc(0x1000, rel);
  const uint32_t b = t.alloc(0x1040, rel);
  ASSERT_NE(a, kInvalidSrsmtSlot);
  ASSERT_NE(b, kInvalidSrsmtSlot);
  // Make both non-deallocatable (in-flight validations).
  t.entry(a).decode_count = 1;
  t.entry(b).issue_count = 1;
  EXPECT_EQ(t.alloc(0x1080, rel), kInvalidSrsmtSlot);
  // Retire the in-flight validation of `a`: now evictable.
  t.entry(a).decode_count = 0;
  int released = 0;
  auto rel2 = [&](uint32_t victim) {
    EXPECT_EQ(victim, a);
    ++released;
  };
  const uint32_t c = t.alloc(0x1080, rel2);
  EXPECT_EQ(c, a);
  EXPECT_EQ(released, 1);
  EXPECT_EQ(t.entry(c).pc, 0x1080u);
}

TEST(Srsmt, LruPicksColdestVictim) {
  Srsmt t = make_table();
  auto rel = [](uint32_t) {};
  const uint32_t a = t.alloc(0x1000, rel);
  const uint32_t b = t.alloc(0x1040, rel);
  t.touch(a);  // b is now the LRU
  const uint32_t c = t.alloc(0x1080, rel);
  EXPECT_EQ(c, b);
}

TEST(SrsmtEntry, RingHoldsAndAddressing) {
  Srsmt t = make_table();
  auto rel = [](uint32_t) {};
  const uint32_t s = t.alloc(0x1000, rel);
  SrsmtEntry& e = t.entry(s);
  e.is_load = true;
  e.stride = 8;
  e.base_addr = 0x100000;
  e.anchored = true;
  EXPECT_EQ(e.addr_of(0), 0x100008u);  // anchor + stride*(k+1)
  EXPECT_EQ(e.addr_of(3), 0x100020u);
  // Ring position aliasing: abs 0 and abs 4 share a slot with 4 replicas.
  e.at(0).state = Replica::State::kReady;
  e.at(0).abs_index = 0;
  EXPECT_TRUE(e.holds(0));
  EXPECT_FALSE(e.holds(4));  // same slot, different absolute index
  e.at(4).abs_index = 4;
  EXPECT_TRUE(e.holds(4));
  EXPECT_FALSE(e.holds(0));
}

TEST(SrsmtEntry, NegativeStrideAddressing) {
  Srsmt t = make_table();
  auto rel = [](uint32_t) {};
  SrsmtEntry& e = t.entry(t.alloc(0x1000, rel));
  e.stride = -16;
  e.base_addr = 0x100100;
  EXPECT_EQ(e.addr_of(0), 0x1000F0u);
  EXPECT_EQ(e.addr_of(1), 0x1000E0u);
}

TEST(SrsmtEntry, DeallocatableRule) {
  Srsmt t = make_table();
  auto rel = [](uint32_t) {};
  SrsmtEntry& e = t.entry(t.alloc(0x1000, rel));
  EXPECT_TRUE(e.deallocatable());
  e.decode_count = 2;
  e.commit_count = 1;
  EXPECT_FALSE(e.deallocatable());
  e.commit_count = 2;
  EXPECT_TRUE(e.deallocatable());
  e.issue_count = 1;
  EXPECT_FALSE(e.deallocatable());
}

TEST(Srsmt, StorageBudgetMatchesPaper) {
  Srsmt t(64, 4, 4);
  EXPECT_EQ(t.storage_bytes(), 11520u);  // section 3.1: 4*64*45
}

}  // namespace
}  // namespace cfir::ci
