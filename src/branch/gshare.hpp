// Gshare conditional branch predictor (64K-entry 2-bit counter table per
// Table 1 of the paper) with speculative global-history management: fetch
// shifts the prediction into the history; misprediction recovery restores
// the pre-branch snapshot and shifts in the actual outcome.
#pragma once

#include <cstdint>
#include <vector>

namespace cfir::branch {

class Gshare {
 public:
  explicit Gshare(uint32_t entries = 64 * 1024, uint32_t history_bits = 16);

  /// Predicts `pc`'s direction using current speculative history.
  [[nodiscard]] bool predict(uint64_t pc) const;

  /// Returns the history snapshot to store with the in-flight branch, then
  /// speculatively shifts `predicted` into the history.
  uint64_t speculate(bool predicted);

  /// Trains the counter table with the resolved outcome. Uses the history
  /// the branch was predicted with (`snapshot`).
  void train(uint64_t pc, uint64_t snapshot, bool taken);

  /// Misprediction repair: restores `snapshot` and shifts in `taken`.
  void recover(uint64_t snapshot, bool taken);

  /// Raw history restore (used when an indirect jump mispredicts: the jump
  /// itself never entered the history, but squashed wrong-path conditional
  /// branches after it did).
  void set_history(uint64_t h) { history_ = h & history_mask_; }

  [[nodiscard]] uint64_t history() const { return history_; }
  [[nodiscard]] uint32_t entries() const {
    return static_cast<uint32_t>(table_.size());
  }

 private:
  [[nodiscard]] uint32_t index(uint64_t pc, uint64_t history) const;

  std::vector<uint8_t> table_;  ///< 2-bit saturating counters
  uint32_t mask_;
  uint64_t history_mask_;
  uint64_t history_ = 0;
};

}  // namespace cfir::branch
