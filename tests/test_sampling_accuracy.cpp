// Acceptance matrix for sampled-simulation accuracy (ISSUE 3): for each of
// {bzip2, parser, twolf} x {detailed, functional, hybrid} warm modes, the
// cluster-sampled IPC estimate must land within the mode's error bound of
// the full detailed run without exceeding the mode's detailed-instruction
// budget — so a warm-up regression fails CI instead of silently degrading
// accuracy.
//
// Mode configurations (tuned once, then locked):
//  - detailed (PR 2's configuration): full 1/16-run representative windows
//    with a 20k-instruction detailed warm-up. <=3% IPC error at <=25%
//    (~9% in practice) detailed instructions.
//  - functional (SMARTS): representatives measure only a short slice
//    (plan detail_len) and the *entire* prefix streams through predictors
//    and caches at interpreter speed. <=2% IPC error at <=2% detailed.
//  - hybrid: functional prefix plus a short detailed tail that also fills
//    the pipeline/LSQ state functional warming cannot reach. <=2% at <=2%.
//
// Everything here is deterministic — same seed, same plan, same simulated
// cycle counts on every host — so these are regression tests, not flaky
// statistical assertions.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "trace/sampling.hpp"
#include "workloads/workloads.hpp"

namespace cfir::trace {
namespace {

constexpr uint32_t kScale = 8;

/// Full-run reference stats, computed once per workload and shared by the
/// matrix rows (the monolithic detailed run dominates this suite's cost).
const stats::SimStats& full_run(const std::string& workload) {
  static std::map<std::string, stats::SimStats> cache;
  const auto it = cache.find(workload);
  if (it != cache.end()) return it->second;
  const isa::Program program = workloads::build(workload, kScale);
  sim::Simulator sim(sim::presets::ci(2, 512), program);
  return cache.emplace(workload, sim.run(UINT64_MAX)).first->second;
}

struct MatrixPoint {
  WarmMode warm_mode;
  uint32_t n_intervals;
  uint64_t warmup;
  uint64_t detail_len;
  double ipc_bound;     ///< max |sampled - full| / full
  double budget_bound;  ///< max detailed_insts / full committed
};

void expect_within(const std::string& workload, const MatrixPoint& p) {
  const stats::SimStats& full = full_run(workload);
  const isa::Program program = workloads::build(workload, kScale);

  ClusterPlanOptions opts;
  opts.n_intervals = p.n_intervals;
  opts.max_k = 2;
  opts.warmup = p.warmup;
  opts.warm_mode = p.warm_mode;
  opts.detail_len = p.detail_len;
  const IntervalPlan plan = plan_cluster_intervals(program, opts);
  EXPECT_EQ(plan.warm_mode, p.warm_mode);

  const SampledRun run = sampled_run(sim::presets::ci(2, 512), program, plan);
  const double rel_error =
      std::abs(run.aggregate.ipc() - full.ipc()) / full.ipc();
  const double detailed_fraction =
      static_cast<double>(run.detailed_insts) /
      static_cast<double>(full.committed);

  EXPECT_LT(rel_error, p.ipc_bound)
      << workload << "/" << warm_mode_name(p.warm_mode) << ": sampled IPC "
      << run.aggregate.ipc() << " vs full " << full.ipc();
  EXPECT_LE(detailed_fraction, p.budget_bound)
      << workload << "/" << warm_mode_name(p.warm_mode) << ": "
      << run.detailed_insts << " detailed insts of " << full.committed;
  EXPECT_TRUE(run.aggregate.halted);
  if (p.warm_mode != WarmMode::kDetailed) {
    // Functional coverage reported: the prefixes streamed at interpreter
    // speed are the instructions the detailed budget no longer pays for.
    EXPECT_GT(run.warmed_insts, 0u);
  }
}

// PR 2's detailed-warm-up configuration: long representative windows, 20k
// detailed warm-up. The budget stays an order of magnitude above the
// functional rows — that gap is what functional warming buys.
MatrixPoint detailed_point() {
  return {WarmMode::kDetailed, 16, 20000, 0, 0.03, 0.25};
}

TEST(SamplingAccuracyMatrix, Bzip2Detailed) {
  expect_within("bzip2", detailed_point());
}
TEST(SamplingAccuracyMatrix, ParserDetailed) {
  expect_within("parser", detailed_point());
}
TEST(SamplingAccuracyMatrix, TwolfDetailed) {
  expect_within("twolf", detailed_point());
}

// Functional warming: <=2% IPC error while detail-simulating <=2% of the
// committed instructions (the ISSUE 3 acceptance numbers). Slice lengths
// are per workload: long enough to amortize the pipeline-fill ramp and the
// (deliberately unwarmed) episode-driven reuse spin-up, short enough to
// stay under budget.
TEST(SamplingAccuracyMatrix, Bzip2Functional) {
  expect_within("bzip2", {WarmMode::kFunctional, 16, 0, 4000, 0.02, 0.02});
}
TEST(SamplingAccuracyMatrix, ParserFunctional) {
  expect_within("parser", {WarmMode::kFunctional, 16, 0, 8000, 0.02, 0.02});
}
TEST(SamplingAccuracyMatrix, TwolfFunctional) {
  expect_within("twolf", {WarmMode::kFunctional, 32, 0, 3000, 0.02, 0.02});
}

// Hybrid: same bounds; the short detailed tail (counted against the
// budget) replaces part of the measured slice.
TEST(SamplingAccuracyMatrix, Bzip2Hybrid) {
  expect_within("bzip2", {WarmMode::kHybrid, 16, 1000, 3000, 0.02, 0.02});
}
TEST(SamplingAccuracyMatrix, ParserHybrid) {
  expect_within("parser", {WarmMode::kHybrid, 16, 500, 7500, 0.02, 0.02});
}
TEST(SamplingAccuracyMatrix, TwolfHybrid) {
  expect_within("twolf", {WarmMode::kHybrid, 16, 500, 2500, 0.02, 0.02});
}

TEST(SamplingAccuracy, FunctionalBeatsColdAtEqualBudget) {
  // Same plan geometry, warming on vs off: the functional rows' accuracy
  // must come from the warm state, not from the plan.
  const isa::Program program = workloads::build("bzip2", kScale);
  const core::CoreConfig config = sim::presets::ci(2, 512);
  const double full_ipc = full_run("bzip2").ipc();

  ClusterPlanOptions opts;
  opts.n_intervals = 16;
  opts.max_k = 2;
  opts.detail_len = 4000;
  opts.warm_mode = WarmMode::kNone;
  const SampledRun cold =
      sampled_run(config, program, plan_cluster_intervals(program, opts));
  opts.warm_mode = WarmMode::kFunctional;
  const SampledRun warm =
      sampled_run(config, program, plan_cluster_intervals(program, opts));

  EXPECT_EQ(cold.detailed_insts, warm.detailed_insts);
  EXPECT_LT(std::abs(warm.aggregate.ipc() - full_ipc),
            std::abs(cold.aggregate.ipc() - full_ipc))
      << "cold " << cold.aggregate.ipc() << " warm " << warm.aggregate.ipc()
      << " full " << full_ipc;
}

TEST(SamplingAccuracy, WarmupPreservesArchitecturalExactness) {
  // Uniform intervals with warm-up: warm-up slices re-execute the tail of
  // the previous interval but are subtracted back out, so the aggregate
  // still commits exactly the monolithic stream.
  const isa::Program program = workloads::build("gcc", 2);
  const core::CoreConfig config = sim::presets::ci(2, 512);

  sim::Simulator mono(config, program);
  const stats::SimStats mono_stats = mono.run(UINT64_MAX);

  const IntervalPlan plan =
      plan_intervals(program, /*k=*/6, /*max_insts=*/0, /*warmup=*/15000);
  const SampledRun run = sampled_run(config, program, plan);

  EXPECT_EQ(run.aggregate.committed, mono_stats.committed);
  EXPECT_EQ(run.aggregate.committed_loads, mono_stats.committed_loads);
  EXPECT_EQ(run.aggregate.committed_stores, mono_stats.committed_stores);
  EXPECT_EQ(run.aggregate.committed_branches, mono_stats.committed_branches);
  EXPECT_TRUE(run.aggregate.halted);
  // Warm-up is accounted as cost, not as progress.
  EXPECT_GT(run.detailed_insts, run.aggregate.committed);
  // Episode hierarchy survives warm-up subtraction (the re-clamp in
  // sampled_run; see src/trace/sampling.cpp).
  EXPECT_GE(run.aggregate.ep_total, run.aggregate.ep_ci_selected);
  EXPECT_GE(run.aggregate.ep_ci_selected, run.aggregate.ep_ci_reused);
  // And the warm predictors close most of the cold-start IPC gap (cold
  // k=6 sampling is ~25% off on this workload; warmed it is ~2%).
  EXPECT_NEAR(run.aggregate.ipc(), mono_stats.ipc(),
              0.06 * mono_stats.ipc());
}

TEST(SamplingAccuracy, FunctionalWarmUniformUnionStaysExact) {
  // Functional warming changes no architectural state, so a full-coverage
  // uniform plan still commits exactly the monolithic stream — and with
  // every interval warm, timing lands within 2% too.
  const isa::Program program = workloads::build("bzip2", 4);
  const core::CoreConfig config = sim::presets::ci(2, 512);

  sim::Simulator mono(config, program);
  const stats::SimStats mono_stats = mono.run(UINT64_MAX);

  const IntervalPlan plan = plan_intervals(program, /*k=*/8, 0, /*warmup=*/0,
                                           WarmMode::kFunctional);
  const SampledRun run = sampled_run(config, program, plan);
  EXPECT_EQ(run.aggregate.committed, mono_stats.committed);
  EXPECT_EQ(run.aggregate.committed_loads, mono_stats.committed_loads);
  EXPECT_EQ(run.aggregate.committed_branches, mono_stats.committed_branches);
  EXPECT_TRUE(run.aggregate.halted);
  EXPECT_NEAR(run.aggregate.ipc(), mono_stats.ipc(),
              0.02 * mono_stats.ipc());
}

TEST(SamplingAccuracy, WarmupReducesColdStartBias) {
  const isa::Program program = workloads::build("bzip2", 4);
  const core::CoreConfig config = sim::presets::ci(2, 512);

  sim::Simulator mono(config, program);
  const double full_ipc = mono.run(UINT64_MAX).ipc();

  const SampledRun cold = sampled_run(
      config, program, plan_intervals(program, 8, 0, /*warmup=*/0));
  const SampledRun warm = sampled_run(
      config, program, plan_intervals(program, 8, 0, /*warmup=*/20000));

  const double cold_err = std::abs(cold.aggregate.ipc() - full_ipc);
  const double warm_err = std::abs(warm.aggregate.ipc() - full_ipc);
  EXPECT_LT(warm_err, cold_err)
      << "cold " << cold.aggregate.ipc() << " warm " << warm.aggregate.ipc()
      << " full " << full_ipc;
}

}  // namespace
}  // namespace cfir::trace
