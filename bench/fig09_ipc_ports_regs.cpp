// Figure 9: IPC for scal/wb/ci with 1 and 2 L1D ports across the register
// sweep (128/256/512/768/inf). The paper's shape: wide buses help the
// baseline; CI loses at 128 registers, is neutral at 256 and gains
// 14-17.8% beyond 512 while the baselines flatten out.
//
// All 30 config columns of one workload share a single interval plan when
// sampling (CFIR_INTERVALS > 1): boundaries and checkpoints are
// config-independent, and functional warming streams each gap once for
// the whole column group (sim::run_all / trace::run_shard). With
// CFIR_JSON=1 the trailing "shared_plan" line reports what that sharing
// saved — checkpoints planned and instructions warmed once vs per column.
#include "common.hpp"

int main() {
  using namespace cfir;
  using namespace cfir::bench;
  run_register_sweep(
      "Figure 9: IPC vs registers and L1D ports",
      [](uint32_t regs) -> std::vector<NamedConfig> {
        return {
            {"scal1p", sim::presets::scal(1, regs)},
            {"wb1p", sim::presets::wb(1, regs)},
            {"ci1p", sim::presets::ci(1, regs)},
            {"scal2p", sim::presets::scal(2, regs)},
            {"wb2p", sim::presets::wb(2, regs)},
            {"ci2p", sim::presets::ci(2, regs)},
        };
      });
  return 0;
}
