// Metrics registry: named counters, gauges and histograms shared by every
// layer of the pipeline. Unlike the tracer (obs/tracer.hpp), the registry
// is always on — each instrument is a handful of relaxed atomics updated
// at coarse granularity (once per warming pass, per detail unit, per trace
// decode), never per instruction, so the cost is unmeasurable and there is
// no mode in which telemetry silently disappears.
//
// Usage pattern: look an instrument up once (the returned reference is
// stable for the life of the process), then update it lock-free:
//
//   static obs::Counter& insts = obs::Registry::instance()
//       .counter("warming.insts");
//   insts.add(n);
//
// Lookup takes a mutex (instrument creation is rare); updates never do.
// Snapshots (`to_json`, `snapshot`) are taken with relaxed loads — they
// are a telemetry read, not a synchronization point, and the pipeline
// only snapshots after its worker pools have joined anyway.
//
// Naming convention: dot-separated `<subsystem>.<what>[_<unit>]`, e.g.
// `warming.insts`, `trace.decode_bytes`, `checkpoint.load_us`,
// `shard.detail_cycles`. docs/observability.md lists the instruments the
// pipeline registers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cfir::obs {

/// Monotonic event count (total instructions warmed, bytes decoded, ...).
class Counter {
 public:
  void add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void increment() { add(1); }
  [[nodiscard]] uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins level (threads in flight, current shard index, ...).
/// Stored as a double so rates and ratios fit too.
class Gauge {
 public:
  void set(double v) {
    bits_.store(to_bits(v), std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return from_bits(bits_.load(std::memory_order_relaxed));
  }
  void reset() { set(0.0); }

 private:
  static uint64_t to_bits(double v) {
    uint64_t b = 0;
    static_assert(sizeof(b) == sizeof(v));
    __builtin_memcpy(&b, &v, sizeof(b));
    return b;
  }
  static double from_bits(uint64_t b) {
    double v = 0;
    __builtin_memcpy(&v, &b, sizeof(v));
    return v;
  }
  std::atomic<uint64_t> bits_{0};
};

/// Power-of-two bucketed distribution (checkpoint load micros, per-unit
/// detail cycles, ...). Bucket i counts observations in [2^(i-1), 2^i)
/// (bucket 0 counts zeros); count/sum/min/max are exact, the shape is
/// 2x-resolution — plenty for "where does the time go" telemetry at a
/// fixed 64 x 8-byte footprint per instrument.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void observe(uint64_t v);

  [[nodiscard]] uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t min() const;  ///< 0 when empty
  [[nodiscard]] uint64_t max() const;  ///< 0 when empty
  /// count() ? sum()/count() : 0 — the mean most summaries want.
  [[nodiscard]] double mean() const;
  [[nodiscard]] uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// One value snapshotted out of the registry (see Registry::snapshot).
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t count = 0;  ///< counter value, or histogram count
  double value = 0;    ///< gauge value, or histogram mean
  uint64_t sum = 0;    ///< histogram only
  uint64_t min = 0;    ///< histogram only
  uint64_t max = 0;    ///< histogram only
};

class Registry {
 public:
  /// The process-wide registry all pipeline instruments live in.
  static Registry& instance();

  // Find-or-create by name. The returned reference never moves or dies
  // (map-backed), so call sites cache it in a static. A name is one kind
  // forever: asking for `counter("x")` after `gauge("x")` throws
  // std::logic_error — that is an instrumentation bug, not runtime input.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// All instruments, sorted by name — the stable order `to_json` and the
  /// telemetry blocks print in.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// `{"name":{...},...}` object, sorted by name: counters as
  /// `{"count":N}`, gauges as `{"value":X}`, histograms as
  /// `{"count":N,"sum":S,"min":m,"max":M,"mean":X}`. Embedded by the
  /// bench `telemetry` block and `trace_tool merge --per-phase`.
  [[nodiscard]] std::string to_json() const;

  /// Zeroes every registered instrument (references stay valid) — lets
  /// tests and back-to-back bench figures take deltas.
  void reset();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry() = default;

  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Entry& entry(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// Microsecond stopwatch for feeding wall-time histograms/fields:
///   obs::Stopwatch sw; ...work...; hist.observe(sw.elapsed_us());
class Stopwatch {
 public:
  Stopwatch();
  /// Microseconds since construction (monotonic clock).
  [[nodiscard]] uint64_t elapsed_us() const;

 private:
  int64_t start_us_ = 0;
};

}  // namespace cfir::obs
