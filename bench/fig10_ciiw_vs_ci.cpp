// Figure 10: exploiting control independence only inside the instruction
// window ("squash reuse", ci-iw) vs the full scheme (ci), per benchmark,
// with a single wide port. Paper: ci-iw gains ~9.1%, ci ~17.8% over scal.
#include "common.hpp"

int main() {
  using namespace cfir;
  using namespace cfir::bench;
  const std::vector<NamedConfig> configs = {
      {"scal", sim::presets::scal(1, 512)},
      {"wb", sim::presets::wb(1, 512)},
      {"ci-iw", sim::presets::ci_window(1, 512)},
      {"ci", sim::presets::ci(1, 512)},
  };
  run_figure("Figure 10: IPC of in-window-only CI (ci-iw) vs the full "
             "scheme (ci), 1 port, 512 regs",
             configs, [](const stats::SimStats& s) { return s.ipc(); });
  return 0;
}
