// Decode-prefetching batch view of a recorded trace — the first stage of
// the pipelined functional-warming path (docs/sampling.md "Pipelined
// warming"). A CFIRTRC2 block decode (CRC check + column expansion + LZ)
// is pure and thread-safe (TraceReader::decode_block), so upcoming
// blocks can be decoded while the consumer is still training warmers on
// the previous ones: a dedicated prefetch thread wave-decodes the next
// run of blocks on the shared sim::ThreadPool and parks the finished
// wave in a depth-1 slot (double buffering — one wave being consumed,
// one being produced). The consumer's only exposure to decode cost is
// the time it actually blocks in next_batch(), surfaced as the
// `warming.decode_wait_us` counter; 0 means decode never sat on the
// warming critical path.
//
// CFIRTRC1 sources have no block index, so they fall back to sequential
// reads on the consumer thread (fixed-size batches, no prefetch thread)
// — same batch interface, no overlap. Record order is the stream order
// in every mode, and the set of blocks decoded for a record limit L is
// exactly the set a sequential read of [0, L) touches, so
// `trace.blocks_read` accounting is unchanged.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "trace/trace.hpp"

namespace cfir::trace {

/// Streams the records [0, limit) of `reader` as decoded batches. While
/// a BlockBatchReader is live it owns the reader: no other next()/seek
/// calls may touch it (wave decodes run concurrently on pool threads).
class BlockBatchReader {
 public:
  /// One delivered wave: `blocks` hold the records, in stream order,
  /// starting at record index `first_record`.
  struct Batch {
    uint64_t first_record = 0;
    std::vector<std::vector<TraceRecord>> blocks;

    [[nodiscard]] size_t records() const {
      size_t n = 0;
      for (const auto& b : blocks) n += b.size();
      return n;
    }
  };

  /// `limit` caps the delivered records (clamped to the trace length —
  /// a shortfall surfaces as early end-of-stream, which the warming
  /// layer turns into its truncated-trace error). `jobs` is the
  /// pipeline's parallelism cap: each wave decodes on up to `jobs`
  /// threads, and `jobs` <= 1 disables the prefetch thread entirely
  /// (every decode runs synchronously inside next_batch).
  BlockBatchReader(TraceReader& reader, uint64_t limit, int jobs);
  ~BlockBatchReader();
  BlockBatchReader(const BlockBatchReader&) = delete;
  BlockBatchReader& operator=(const BlockBatchReader&) = delete;

  /// Fetches the next wave into `out`; false at end of stream. Rethrows
  /// (once) any exception the prefetch decode hit. Time spent blocked
  /// here accumulates into the `warming.decode_wait_us` counter.
  bool next_batch(Batch& out);

 private:
  [[nodiscard]] Batch decode_wave();  ///< cursor-advancing wave decode
  [[nodiscard]] Batch read_sequential();  ///< v1 fallback batch
  void produce();                         ///< prefetch-thread main

  TraceReader& reader_;
  uint64_t limit_;
  int jobs_;
  size_t wave_blocks_;
  bool v2_;
  bool done_ = false;  ///< consumer saw end-of-stream (or the error)

  // Decode cursor. Owned by the prefetch thread when prefetching, by
  // next_batch otherwise — never shared.
  uint64_t next_record_ = 0;
  size_t next_block_ = 0;

  // Depth-1 producer/consumer slot (prefetch mode only).
  bool prefetching_ = false;
  std::thread prefetcher_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool slot_full_ = false;
  Batch slot_;
  std::exception_ptr slot_error_;
};

}  // namespace cfir::trace
