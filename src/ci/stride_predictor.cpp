#include "ci/stride_predictor.hpp"

#include <cassert>

namespace cfir::ci {

StridePredictor::StridePredictor(uint32_t sets, uint32_t ways)
    : sets_(sets), ways_(ways) {
  assert(sets_ > 0 && (sets_ & (sets_ - 1)) == 0);
  entries_.assign(static_cast<size_t>(sets_) * ways_, Entry{});
}

const StridePredictor::Entry* StridePredictor::find(uint64_t pc) const {
  const uint32_t set = static_cast<uint32_t>(pc >> 2) & (sets_ - 1);
  const size_t base = static_cast<size_t>(set) * ways_;
  for (uint32_t w = 0; w < ways_; ++w) {
    const Entry& e = entries_[base + w];
    if (e.valid && e.tag == pc) return &e;
  }
  return nullptr;
}

StridePredictor::Entry* StridePredictor::find_mut(uint64_t pc) {
  return const_cast<Entry*>(find(pc));
}

StridePredictor::Entry& StridePredictor::find_or_alloc(uint64_t pc) {
  if (Entry* e = find_mut(pc)) return *e;
  const uint32_t set = static_cast<uint32_t>(pc >> 2) & (sets_ - 1);
  const size_t base = static_cast<size_t>(set) * ways_;
  size_t victim = base;
  for (uint32_t w = 0; w < ways_; ++w) {
    Entry& e = entries_[base + w];
    if (!e.valid) { victim = base + w; break; }
    if (e.lru < entries_[victim].lru) victim = base + w;
  }
  Entry& v = entries_[victim];
  v = Entry{};
  v.tag = pc;
  v.valid = true;
  return v;
}

void StridePredictor::train(uint64_t pc, uint64_t addr) {
  Entry& e = find_or_alloc(pc);
  e.lru = ++stamp_;
  if (e.last_addr == 0 && e.stride == 0 && e.confidence == 0) {
    // Fresh entry: just record the address.
    e.last_addr = addr;
    return;
  }
  const int64_t observed = static_cast<int64_t>(addr - e.last_addr);
  if (observed == e.stride) {
    if (e.confidence < 3) ++e.confidence;
  } else {
    if (e.confidence > 0) {
      --e.confidence;
    }
    if (e.confidence == 0) {
      e.stride = observed;
      // A stride change drops the selection: the vectorized stream is dead.
      e.s_flag = false;
    }
  }
  e.last_addr = addr;
}

StridePredictor::Info StridePredictor::lookup(uint64_t pc) const {
  Info info;
  const Entry* e = find(pc);
  if (e == nullptr) return info;
  info.known = true;
  info.confident = e->confidence > 1;
  info.stride = e->stride;
  info.last_addr = e->last_addr;
  info.selected = e->s_flag;
  info.origin_branch_pc = e->origin_branch_pc;
  return info;
}

bool StridePredictor::select(uint64_t pc, uint64_t origin_branch_pc) {
  Entry* e = find_mut(pc);
  if (e == nullptr) return false;
  e->s_flag = true;
  e->origin_branch_pc = origin_branch_pc;
  return true;
}

void StridePredictor::clear_selection(uint64_t pc) {
  if (Entry* e = find_mut(pc)) e->s_flag = false;
}

uint64_t StridePredictor::debug_digest() const {
  util::Digest d;
  d.u32(sets_).u32(ways_).u64(stamp_);
  for (const Entry& e : entries_) {
    d.u64(e.tag).boolean(e.valid).u64(e.last_addr).i64(e.stride);
    d.u8(e.confidence).boolean(e.s_flag).u64(e.origin_branch_pc).u64(e.lru);
  }
  return d.value();
}

void StridePredictor::serialize(util::ByteWriter& out) const {
  out.u32(sets_);
  out.u32(ways_);
  out.u64(stamp_);
  for (const Entry& e : entries_) {
    out.u64(e.tag);
    out.boolean(e.valid);
    out.u64(e.last_addr);
    out.i64(e.stride);
    out.u8(e.confidence);
    out.boolean(e.s_flag);
    out.u64(e.origin_branch_pc);
    out.u64(e.lru);
  }
}

void StridePredictor::deserialize(util::ByteReader& in) {
  if (in.u32() != sets_ || in.u32() != ways_) {
    throw std::runtime_error("StridePredictor: warm-state geometry mismatch");
  }
  stamp_ = in.u64();
  for (Entry& e : entries_) {
    e.tag = in.u64();
    e.valid = in.boolean();
    e.last_addr = in.u64();
    e.stride = in.i64();
    e.confidence = in.u8();
    e.s_flag = in.boolean();
    e.origin_branch_pc = in.u64();
    e.lru = in.u64();
  }
}

uint64_t StridePredictor::storage_bytes() const {
  // Paper: PC(64) + last address(64) + stride(64) + confidence(2) + S(1)
  // per entry, quoted as 24 bytes per element.
  return static_cast<uint64_t>(sets_) * ways_ * 24;
}

}  // namespace cfir::ci
