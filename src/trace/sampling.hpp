// Checkpointed interval sampling: pick a set of intervals of one long
// workload run, simulate each independently on the detailed core (resumed
// from its checkpoint), and merge the per-interval SimStats into one
// aggregate. Two plan kinds (docs/sampling.md has the full treatment):
//
//  - uniform: K contiguous equal intervals covering the whole run. The
//    union commits exactly the monolithic instruction stream, so
//    architectural counters match a monolithic run exactly; the win is
//    wall-clock (the K detailed simulations run in parallel on the
//    sim::run_all pool while the fast-forward uses only the reference
//    interpreter).
//  - cluster: SimPoint-style phase sampling. The run is chopped into N
//    fixed-length windows, each summarized as a basic-block vector
//    (bbv.hpp), the vectors are clustered (cluster.hpp), and only one
//    representative window per cluster is detail-simulated. The aggregate
//    extrapolates by cluster population (SimStats::merge_scaled), so ~K
//    representatives stand in for the whole run at a fraction of the
//    detailed-simulation cost.
//
// Either kind warms each interval's microarchitectural state per the
// plan's WarmMode (trace/warming.hpp):
//
//  - detailed: the interval starts W instructions early (its checkpoint is
//    captured at start - W) and the stats accumulated during the warm-up
//    slice are subtracted back out (SimStats::subtract). Accurate but the
//    warm-up instructions cost full detailed simulation.
//  - functional: SMARTS-style — the *whole* prefix [0, start) streams
//    through the predictors and caches only, at interpreter speed, before
//    the detailed interval begins. Near-zero cost per warmed instruction
//    and no residual transient from state with long time constants.
//  - hybrid: functional prefix up to start - W, then a detailed warm-up of
//    the last W instructions to also warm what functional warming cannot
//    reach (LSQ, in-flight window, replica streams).
//
// Orchestration is layered (docs/sharding.md): this header is the **plan**
// layer (IntervalPlan and the planners); trace/shard.hpp is the
// **execute** layer (run any subset of a plan's intervals) and the
// **merge** layer (fold shard results back into one SampledRun);
// trace/manifest.hpp freezes a plan to disk so the three layers can run on
// different machines. sampled_run below is just plan-in-hand execute +
// merge of the whole plan in one process.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "isa/program.hpp"
#include "stats/stats.hpp"
#include "trace/checkpoint.hpp"
#include "trace/warming.hpp"

namespace cfir::trace {

enum class SampleMode : uint8_t {
  kUniform = 0,  ///< contiguous equal intervals, exact architectural union
  kCluster = 1,  ///< BBV-clustered representatives, population-weighted
};

struct SampledRun {
  struct Interval {
    uint64_t start_inst = 0;  ///< first measured instruction index
    uint64_t length = 0;      ///< instructions measured (after warm-up)
    uint64_t warmup = 0;      ///< instructions warm-simulated before start
    double weight = 1.0;      ///< population this interval stands in for
    stats::SimStats stats;    ///< measured slice only (warm-up subtracted)
    /// Host wall-clock of this interval's detail simulation (telemetry —
    /// never part of the simulated result; 0 from pre-v3 shard blobs).
    uint64_t wall_us = 0;
  };
  std::vector<Interval> intervals;
  uint64_t total_insts = 0;    ///< instructions the plan covers
  uint64_t detailed_insts = 0; ///< instructions actually detail-simulated
                               ///< (measured + detailed warm-up; the cost)
  uint64_t warmed_insts = 0;   ///< instructions functionally warmed
                               ///< (interpreter-speed; ~free by comparison)
  /// Host wall-clock telemetry: summed per-interval detail wall, and the
  /// warm-capture pass wall (shared across a grid's columns).
  uint64_t wall_us = 0;
  uint64_t warm_wall_us = 0;
  stats::SimStats aggregate;   ///< weighted merge of every interval
};

/// The sampling schedule for one workload. Planning uses only the
/// reference interpreter and depends on the workload — never the core
/// config — so one plan can be shared by every configuration simulating
/// the same workload (sim::run_all does).
struct IntervalPlan {
  SampleMode mode = SampleMode::kUniform;
  WarmMode warm_mode = WarmMode::kDetailed;
  uint64_t total_insts = 0;
  bool ran_to_halt = false;          ///< run ended at HALT, not at the cap
  uint64_t warmup = 0;               ///< requested detailed warm-up W
                                     ///< (instructions; unused by
                                     ///< none/functional modes)
  std::vector<uint64_t> boundaries;  ///< measured-interval start counts
  std::vector<uint64_t> lengths;     ///< measured-interval lengths
  std::vector<double> weights;       ///< per interval (uniform: all 1)
  /// One per interval. Modes with a detailed warm-up slice (detailed,
  /// hybrid) capture at max(start - warmup, 0) — clamped, never
  /// underflowed — and the actual warm-up available to interval i is
  /// boundaries[i] - checkpoints[i].executed. Modes without one (none,
  /// functional) capture at the boundary itself.
  std::vector<Checkpoint> checkpoints;

  // Cluster-mode diagnostics (empty in uniform mode).
  uint64_t interval_len = 0;        ///< window length the run was chopped into
  std::vector<uint32_t> cluster_of; ///< per source window: cluster id
  std::vector<double> bic_by_k;     ///< BIC score per swept k
};

/// Uniform plan: K equal intervals with optional warm-up. Costs two
/// interpreter passes (count, then snapshot).
///
/// `detail_len` > 0 caps the *measured* slice of every interval at that
/// many instructions and scales the interval's weight by
/// interval_len / measured_len — the SMARTS estimator: many short
/// detail-simulated units extrapolated to the run, with the gaps covered
/// by warming instead of detailed simulation. With a cap the union no
/// longer commits the whole stream, so architectural counters become
/// (unbiased) estimates rather than exact; leave it 0 when exactness
/// matters more than cost.
[[nodiscard]] IntervalPlan plan_intervals(const isa::Program& program,
                                          uint32_t k, uint64_t max_insts = 0,
                                          uint64_t warmup = 0,
                                          WarmMode warm_mode =
                                              WarmMode::kDetailed,
                                          uint64_t detail_len = 0);

/// Knobs for cluster-mode planning (see cluster.hpp for the algorithm
/// parameters' meaning).
struct ClusterPlanOptions {
  uint32_t n_intervals = 32;  ///< fixed-length windows the run is split into
  uint32_t max_k = 0;         ///< cluster-count cap; 0 = min(16, n_intervals)
  uint64_t warmup = 0;        ///< detailed warm-up insts per representative
  WarmMode warm_mode = WarmMode::kDetailed;
  uint64_t detail_len = 0;    ///< measured-slice cap per representative
                              ///< (0 = whole window; see plan_intervals)
  uint64_t max_insts = 0;     ///< run-length cap (0 = to HALT)
  uint32_t proj_dims = 16;
  uint64_t seed = 0xC1F15EEDu;
};

/// Cluster plan: BBV + k-means phase detection, one weighted
/// representative window per phase. Costs three interpreter passes
/// (count, BBV, snapshot).
[[nodiscard]] IntervalPlan plan_cluster_intervals(
    const isa::Program& program, const ClusterPlanOptions& opts = {});

/// Attaches per-interval functional warm state to `plan`'s checkpoints for
/// `config` (one streaming interpreter pass; see capture_warm_states).
/// Checkpoints then save as CFIRCKP2, so warmed intervals can be farmed to
/// other machines; sampled_run reuses attached state instead of
/// re-streaming. Warm state is config-dependent — attaching binds the plan
/// to configs with identical predictor/cache geometry and policy family.
void attach_warm_states(IntervalPlan& plan, const core::CoreConfig& config,
                        const isa::Program& program);

/// One config point of an experiment grid, bound to a (config-independent)
/// IntervalPlan. The plan carries everything that is shared across the
/// grid — interval boundaries, weights, architectural checkpoints — and
/// the binding carries the only per-config execution state: which core to
/// simulate and the functional warm state its predictors/caches start
/// from (predictor/cache geometry differs per config, so warm blobs bind
/// per-(interval, config)).
struct ConfigBinding {
  std::string name;          ///< column label (CoreConfig::label() usually)
  core::CoreConfig config;
  uint64_t config_hash = 0;  ///< 0 = CoreConfig::digest() at use
  /// Per plan interval: FunctionalWarmer blob for this config, trained
  /// over [0, checkpoint.executed). Empty when the plan's warm mode has no
  /// functional prefix or when warming is deferred to execute time
  /// (run_shard then streams the gaps once for the whole grid).
  std::vector<std::vector<uint8_t>> warm;
};

/// Binds every (name, config) point to `plan`: one fan-out streaming pass
/// (capture_warm_states_grid) captures all configs' per-interval warm
/// state when the plan's warm mode has a functional prefix — O(prefix)
/// architectural execution for the whole grid, not O(prefix × configs).
[[nodiscard]] std::vector<ConfigBinding> bind_configs(
    const IntervalPlan& plan,
    const std::vector<std::pair<std::string, core::CoreConfig>>& points,
    const isa::Program& program);

/// Simulates every interval of `plan` in parallel under `config`, warms
/// each interval per the plan's WarmMode (functional prefixes stream once
/// up front, detailed warm-up slices run and are subtracted per interval),
/// and merges the weighted stats (`threads` <= 0 picks CFIR_THREADS /
/// hardware concurrency). Implemented as trace::run_shard of the whole
/// plan + trace::merge_shard_results — the same code path a multi-machine
/// sharded run takes, so the two agree bit for bit.
[[nodiscard]] SampledRun sampled_run(const core::CoreConfig& config,
                                     const isa::Program& program,
                                     const IntervalPlan& plan,
                                     int threads = 0);

/// Convenience: uniform plan_intervals + sampled_run in one call.
/// `max_insts` == 0 covers the full run; `k` is clamped to the run length.
[[nodiscard]] SampledRun sampled_run(const core::CoreConfig& config,
                                     const isa::Program& program, uint32_t k,
                                     uint64_t max_insts = 0, int threads = 0);

}  // namespace cfir::trace
