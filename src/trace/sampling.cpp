#include "trace/sampling.hpp"

#include <algorithm>

#include "isa/interpreter.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"

namespace cfir::trace {

IntervalPlan plan_intervals(const isa::Program& program, uint32_t k,
                            uint64_t max_insts) {
  const uint64_t cap = max_insts == 0 ? UINT64_MAX : max_insts;

  // Pass 1: measure the run length with the reference interpreter.
  IntervalPlan plan;
  {
    mem::MainMemory memory;
    isa::load_data_image(program, memory);
    isa::Interpreter interp(program, memory);
    interp.run(cap);
    plan.total_insts = interp.executed();
  }
  plan.ran_to_halt = plan.total_insts < cap;
  if (k == 0) k = 1;
  k = static_cast<uint32_t>(
      std::max<uint64_t>(1, std::min<uint64_t>(k, plan.total_insts)));

  // Pass 2: capture a checkpoint at each interval boundary.
  plan.boundaries.reserve(k);
  for (uint32_t i = 0; i < k; ++i) {
    plan.boundaries.push_back(plan.total_insts * i / k);
  }
  plan.checkpoints = interval_checkpoints(program, plan.boundaries);
  return plan;
}

SampledRun sampled_run(const core::CoreConfig& config,
                       const isa::Program& program, const IntervalPlan& plan,
                       int threads) {
  const size_t k = plan.boundaries.size();
  SampledRun result;
  result.total_insts = plan.total_insts;
  result.intervals.resize(k);
  for (size_t i = 0; i < k; ++i) {
    const uint64_t end = i + 1 < k ? plan.boundaries[i + 1]
                                   : plan.total_insts;
    result.intervals[i].start_inst = plan.boundaries[i];
    result.intervals[i].length = end - plan.boundaries[i];
  }

  // Detailed-simulate every interval in parallel. When the run ended at
  // HALT (not at the cap), the final interval runs unbounded so the core
  // retires HALT and reports `halted` like a monolithic run.
  sim::parallel_for(
      k,
      [&](size_t i) {
        SampledRun::Interval& interval = result.intervals[i];
        const bool last = i + 1 == k;
        // The final interval of a halting run always executes — even when
        // empty (a program that halts at instruction 0) — so the core
        // retires HALT and the aggregate reports `halted` like a
        // monolithic run would.
        const bool run_to_halt = last && plan.ran_to_halt;
        if (interval.length == 0 && !run_to_halt) return;
        sim::Simulator sim(config, program, plan.checkpoints[i]);
        interval.stats =
            sim.run(run_to_halt ? UINT64_MAX : interval.length);
      },
      threads);

  for (const SampledRun::Interval& interval : result.intervals) {
    result.aggregate.merge(interval.stats);
  }
  return result;
}

SampledRun sampled_run(const core::CoreConfig& config,
                       const isa::Program& program, uint32_t k,
                       uint64_t max_insts, int threads) {
  return sampled_run(config, program, plan_intervals(program, k, max_insts),
                     threads);
}

}  // namespace cfir::trace
