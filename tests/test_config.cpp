// CoreConfig's X-macro field list (CFIR_CORECONFIG_FIELDS) is the single
// source of truth for digest(), the byte codec and the name/value
// enumeration. These tests close the drift loopholes:
//
//  - flipping EVERY listed field changes digest() — a field added to the
//    struct and the list but mis-encoded (or shadowed) cannot hide;
//  - the field count here is asserted against fields().size(), so a field
//    added to the struct without hash coverage fails this suite the moment
//    the list is (correctly) extended, and sizeof-coverage keeps honest;
//  - serialize ∘ deserialize is the identity (manifest-embedded configs
//    rebuild exactly), and truncated blobs are rejected;
//  - preset specs (sim::presets::from_spec) parse to the presets they name
//    and reject malformed input.
#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "sim/presets.hpp"
#include "util/warmable.hpp"

namespace cfir::core {
namespace {

struct FieldMutator {
  const char* name;
  std::function<void(CoreConfig&)> flip;
};

/// One mutator per X-macro entry: numbers bump by one, booleans toggle,
/// the policy cycles to the next enumerator.
std::vector<FieldMutator> field_mutators() {
#define CFIR_TST_MUT_u32(f) \
  [](CoreConfig& c) { c.f += 1; }
#define CFIR_TST_MUT_u64(f) \
  [](CoreConfig& c) { c.f += 1; }
#define CFIR_TST_MUT_boolean(f) \
  [](CoreConfig& c) { c.f = !c.f; }
#define CFIR_TST_MUT_policy(f)                                        \
  [](CoreConfig& c) {                                                 \
    c.f = static_cast<Policy>((static_cast<uint8_t>(c.f) + 1) % 4);   \
  }
#define X(kind, field) FieldMutator{#field, CFIR_TST_MUT_##kind(field)},
  return {CFIR_CORECONFIG_FIELDS(X)};
#undef X
#undef CFIR_TST_MUT_u32
#undef CFIR_TST_MUT_u64
#undef CFIR_TST_MUT_boolean
#undef CFIR_TST_MUT_policy
}

TEST(CoreConfigDigest, EveryFieldFlipChangesDigest) {
  const CoreConfig base;
  const uint64_t base_digest = base.digest();
  for (const FieldMutator& m : field_mutators()) {
    CoreConfig flipped = base;
    m.flip(flipped);
    EXPECT_NE(flipped.digest(), base_digest)
        << "field '" << m.name
        << "' is listed in CFIR_CORECONFIG_FIELDS but a flip does not "
           "change digest() — encoding bug or duplicate entry";
  }
}

TEST(CoreConfigDigest, FieldListMatchesEnumerationAndIsDistinct) {
  const CoreConfig base;
  const auto mutators = field_mutators();
  const auto named = base.fields();
  ASSERT_EQ(named.size(), mutators.size());
  std::set<std::string> names;
  for (size_t i = 0; i < named.size(); ++i) {
    EXPECT_STREQ(named[i].name, mutators[i].name) << i;
    names.insert(named[i].name);
  }
  EXPECT_EQ(names.size(), named.size()) << "duplicate field names";
  // The enumeration reflects live values, not defaults.
  CoreConfig tweaked = base;
  tweaked.num_phys_regs = 777;
  bool found = false;
  for (const auto& nv : tweaked.fields()) {
    if (std::string(nv.name) == "num_phys_regs") {
      EXPECT_EQ(nv.value, 777u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CoreConfigCodec, SerializeDeserializeIsIdentity) {
  CoreConfig cfg = sim::presets::ci_specmem(2, 512, 768, 6);
  cfg.wide_bus = true;
  cfg.watchdog_cycles = 1234567;
  util::ByteWriter out;
  cfg.serialize(out);
  const std::vector<uint8_t> bytes = out.data();

  util::ByteReader in(bytes);
  const CoreConfig back = CoreConfig::deserialize(in);
  EXPECT_TRUE(in.done());
  EXPECT_EQ(back.digest(), cfg.digest());

  util::ByteWriter again;
  back.serialize(again);
  EXPECT_EQ(again.data(), bytes);

  // Truncated blobs fail loudly instead of zero-filling fields.
  std::vector<uint8_t> cut(bytes.begin(), bytes.end() - 3);
  util::ByteReader short_in(cut);
  EXPECT_THROW((void)CoreConfig::deserialize(short_in), std::runtime_error);
}

TEST(PresetSpec, ParsesFamiliesAndRejectsGarbage) {
  EXPECT_EQ(sim::presets::from_spec("ci:2:512").digest(),
            sim::presets::ci(2, 512).digest());
  EXPECT_EQ(sim::presets::from_spec("ci:2:512:6").digest(),
            sim::presets::ci(2, 512, 6).digest());
  EXPECT_EQ(sim::presets::from_spec("scal:1:256").digest(),
            sim::presets::scal(1, 256).digest());
  EXPECT_EQ(sim::presets::from_spec("wb:2:128").digest(),
            sim::presets::wb(2, 128).digest());
  EXPECT_EQ(sim::presets::from_spec("ci-iw:2:512").digest(),
            sim::presets::ci_window(2, 512).digest());
  EXPECT_EQ(sim::presets::from_spec("vect:2:512:8").digest(),
            sim::presets::vect(2, 512, 8).digest());
  EXPECT_EQ(sim::presets::from_spec("ci-h:2:512:768").digest(),
            sim::presets::ci_specmem(2, 512, 768).digest());

  EXPECT_THROW((void)sim::presets::from_spec(""), std::runtime_error);
  EXPECT_THROW((void)sim::presets::from_spec("ci"), std::runtime_error);
  EXPECT_THROW((void)sim::presets::from_spec("ci:2"), std::runtime_error);
  EXPECT_THROW((void)sim::presets::from_spec("doom:2:512"),
               std::runtime_error);
  EXPECT_THROW((void)sim::presets::from_spec("ci:2:512:4:9"),
               std::runtime_error);
  EXPECT_THROW((void)sim::presets::from_spec("ci:two:512"),
               std::runtime_error);
  EXPECT_THROW((void)sim::presets::from_spec("ci:2:0"), std::runtime_error);
  EXPECT_THROW((void)sim::presets::from_spec("scal:1:256:4"),
               std::runtime_error);
}

}  // namespace
}  // namespace cfir::core
