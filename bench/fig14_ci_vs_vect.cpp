// Figure 14: the control-independence scheme vs the full-blown dynamic
// vectorization of reference [12] across the register sweep (2 wide
// ports). Paper: ci wins below ~700 registers; vect edges ahead (~4%) only
// with unbounded registers while generating far more useless speculation
// (48.45% vs 29.62% of executed instructions wasted).
#include "common.hpp"

int main() {
  using namespace cfir;
  using namespace cfir::bench;
  run_register_sweep(
      "Figure 14: ci vs full dynamic vectorization (vect), 2 wide ports",
      [](uint32_t regs) -> std::vector<NamedConfig> {
        return {
            {"ci", sim::presets::ci(2, regs)},
            {"vect", sim::presets::vect(2, regs)},
        };
      });

  // Waste comparison at the paper's operating point.
  const uint64_t max_insts = default_max_insts();
  std::vector<sim::RunSpec> specs;
  for (const char* mode : {"ci", "vect"}) {
    for (const std::string& wl : workloads::names()) {
      sim::RunSpec s;
      s.workload = wl;
      s.config_name = mode;
      s.config = std::string(mode) == "ci"
                     ? sim::presets::ci(2, sim::presets::kInfRegs)
                     : sim::presets::vect(2, sim::presets::kInfRegs);
      s.max_insts = max_insts;
      s.scale = sim::env_scale();
      s.intervals = sim::env_intervals();
      s.sample_mode = sim::env_sample_mode();
      s.warmup = sim::env_warmup();
      s.warm_mode = sim::env_warm_mode();
      s.detail_len = sim::env_detail_len();
      specs.push_back(std::move(s));
    }
  }
  const auto out = sim::run_all(specs, sim::env_threads());
  double waste[2] = {0, 0}, reuse[2] = {0, 0};
  uint64_t exec[2] = {0, 0}, committed[2] = {0, 0};
  for (const auto& o : out) {
    const int m = o.spec.config_name == "ci" ? 0 : 1;
    // Wasted work: wrong-path squashes plus replicas that never validated.
    waste[m] += static_cast<double>(o.stats.squashed +
                                    o.stats.replicas_executed) -
                static_cast<double>(o.stats.reused_committed);
    exec[m] += o.stats.committed + o.stats.squashed +
               o.stats.replicas_executed;
    reuse[m] += static_cast<double>(o.stats.reused_committed);
    committed[m] += o.stats.committed;
  }
  std::printf("Speculative waste (inf regs): ci %.1f%% vs vect %.1f%% of "
              "executed (paper: 29.6%% vs 48.5%%)\n",
              exec[0] ? 100.0 * waste[0] / static_cast<double>(exec[0]) : 0.0,
              exec[1] ? 100.0 * waste[1] / static_cast<double>(exec[1]) : 0.0);
  std::printf("Reuse fraction of committed: ci %.1f%% vs vect %.1f%% "
              "(paper: 14%% vs 17%%)\n",
              committed[0] ? 100.0 * reuse[0] / static_cast<double>(committed[0]) : 0.0,
              committed[1] ? 100.0 * reuse[1] / static_cast<double>(committed[1]) : 0.0);
  return 0;
}
