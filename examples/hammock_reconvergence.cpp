// Re-convergence analysis walkthrough: assemble the three canonical control
// constructs of the paper's Figure 2 (loop / if-then / if-then-else), show
// the estimated re-convergent point for each branch, then trace how the
// NRBQ write masks evolve so the CI filter of section 2.3.2 becomes
// concrete.
//
//   $ ./example_hammock_reconvergence
#include <cstdio>

#include "ci/reconvergence.hpp"
#include "isa/assembler.hpp"

using namespace cfir;

namespace {
void analyze(const char* title, const isa::Program& p) {
  std::printf("--- %s ---\n%s", title, p.listing().c_str());
  for (size_t i = 0; i < p.size(); ++i) {
    const isa::Instruction& inst = p.code()[i];
    if (!isa::is_cond_branch(inst.op)) continue;
    const uint64_t pc = p.pc_of(i);
    const uint64_t rp = ci::estimate_reconvergence_point(p, pc, inst);
    std::printf("branch at 0x%llx -> estimated re-convergent point 0x%llx\n",
                static_cast<unsigned long long>(pc),
                static_cast<unsigned long long>(rp));
  }
  std::printf("\n");
}
}  // namespace

int main() {
  {
    isa::Assembler as;  // Figure 2a: loop
    as.label("loop");
    as.addi(1, 1, 1);
    as.blt(1, 2, "loop");
    as.halt();
    analyze("loop structure (backward branch: RP = fall-through)",
            as.assemble());
  }
  {
    isa::Assembler as;  // Figure 2b: if-then
    as.beq(1, 2, "endif");
    as.addi(3, 3, 1);
    as.label("endif");
    as.halt();
    analyze("if-then (forward branch, no closing jump: RP = target)",
            as.assemble());
  }
  isa::Assembler as;  // Figure 2c: if-then-else
  as.beq(1, 2, "else_");
  as.addi(3, 3, 1);
  as.jmp("join");
  as.label("else_");
  as.addi(4, 4, 1);
  as.label("join");
  as.add(5, 5, 6);
  as.halt();
  const isa::Program p = as.assemble();
  analyze("if-then-else (jump above target: RP = its destination)", p);

  // NRBQ mask walkthrough on the if-then-else: decode the taken (else)
  // path and watch the mask close when the join point is crossed.
  ci::Nrbq nrbq(16);
  const uint64_t branch_pc = p.pc_of(0);
  const uint64_t rp =
      ci::estimate_reconvergence_point(p, branch_pc, p.code()[0]);
  nrbq.push(/*seq=*/1, branch_pc, rp);
  std::printf("NRBQ trace (else path): push branch 0x%llx rp=0x%llx\n",
              static_cast<unsigned long long>(branch_pc),
              static_cast<unsigned long long>(rp));
  auto show = [&](const char* what) {
    std::printf("  after %-28s mask=%#llx reached=%d\n", what,
                static_cast<unsigned long long>(nrbq.mask_of(1)),
                nrbq.find(1)->reached);
  };
  nrbq.observe_pc(p.pc_of(3));  // else: addi r4
  nrbq.on_dest_write(4);
  show("else-arm write of r4");
  nrbq.observe_pc(rp);          // join crossed: region closes
  show("crossing the join point");
  nrbq.on_dest_write(5);        // post-join write of r5 (the CI candidate)
  show("post-join write of r5");
  std::printf("\nr5 stays clear of the mask: 'add r5, r5, r6' after the join "
              "is control independent\nand would be selected for speculative "
              "vectorization if its slice started at a strided load.\n");
  return 0;
}
