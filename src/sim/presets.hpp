// Named processor configurations matching the paper's evaluation section:
// scalXp / wbXp / ciXp / ci-h-N / ci-iw / vect, register sweeps of
// 128/256/512/768/"infinite", and Table 1 defaults everywhere else.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"

namespace cfir::sim::presets {

/// Physical register count used for the paper's "infinite" points.
inline constexpr uint32_t kInfRegs = 8192;

/// The register sweep of Figures 9/11/13/14.
[[nodiscard]] std::vector<uint32_t> register_sweep();
/// Pretty label for a sweep point ("128", ..., "inf").
[[nodiscard]] std::string reg_label(uint32_t regs);

/// Table 1 baseline (no mechanism, scalar ports).
[[nodiscard]] core::CoreConfig table1();

/// scalXp: plain superscalar with X scalar L1D ports.
[[nodiscard]] core::CoreConfig scal(uint32_t ports, uint32_t regs);
/// wbXp: superscalar with X wide L1D ports (section 2.4.5).
[[nodiscard]] core::CoreConfig wb(uint32_t ports, uint32_t regs);
/// ciXp: wide bus + the control-independence mechanism.
[[nodiscard]] core::CoreConfig ci(uint32_t ports, uint32_t regs,
                                  uint32_t replicas = 4);
/// ci-h-N: ci with the speculative data memory of section 2.4.6.
[[nodiscard]] core::CoreConfig ci_specmem(uint32_t ports, uint32_t regs,
                                          uint32_t slots,
                                          uint32_t replicas = 4);
/// ci-iw: squash reuse only (Figure 10).
[[nodiscard]] core::CoreConfig ci_window(uint32_t ports, uint32_t regs);
/// vect: full-blown dynamic vectorization of reference [12] (Figure 14).
[[nodiscard]] core::CoreConfig vect(uint32_t ports, uint32_t regs,
                                    uint32_t replicas = 4);

/// Parses a preset spec "<family>:<ports>:<regs>[:<extra>...]" into a
/// CoreConfig — the textual form of a config point for `trace_tool plan
/// --configs` / `sample --config` (docs/sharding.md):
///   scal:2:512 | wb:1:256 | ci:2:512[:replicas] | ci-iw:2:512
///   vect:2:512[:replicas] | ci-h:2:512:slots[:replicas]
/// Throws std::runtime_error on unknown families, malformed numbers or
/// wrong arities so a typo'd grid column fails loudly at plan time.
[[nodiscard]] core::CoreConfig from_spec(std::string_view spec);

}  // namespace cfir::sim::presets
