#include "branch/mbs.hpp"
#include <cstddef>

#include <cassert>

namespace cfir::branch {

MbsTable::MbsTable(uint32_t sets, uint32_t ways) : sets_(sets), ways_(ways) {
  assert(sets_ > 0 && (sets_ & (sets_ - 1)) == 0);
  entries_.assign(static_cast<size_t>(sets_) * ways_, Entry{});
}

const MbsTable::Entry* MbsTable::find(uint64_t pc) const {
  const uint32_t set = static_cast<uint32_t>(pc >> 2) & (sets_ - 1);
  const size_t base = static_cast<size_t>(set) * ways_;
  for (uint32_t w = 0; w < ways_; ++w) {
    const Entry& e = entries_[base + w];
    if (e.valid && e.tag == pc) return &e;
  }
  return nullptr;
}

MbsTable::Entry& MbsTable::find_or_alloc(uint64_t pc) {
  const uint32_t set = static_cast<uint32_t>(pc >> 2) & (sets_ - 1);
  const size_t base = static_cast<size_t>(set) * ways_;
  for (uint32_t w = 0; w < ways_; ++w) {
    Entry& e = entries_[base + w];
    if (e.valid && e.tag == pc) return e;
  }
  size_t victim = base;
  for (uint32_t w = 0; w < ways_; ++w) {
    Entry& e = entries_[base + w];
    if (!e.valid) { victim = base + w; break; }
    if (e.lru < entries_[victim].lru) victim = base + w;
  }
  Entry& v = entries_[victim];
  v = Entry{};
  v.tag = pc;
  v.valid = true;
  return v;
}

void MbsTable::update(uint64_t pc, bool taken) {
  Entry& e = find_or_alloc(pc);
  e.lru = ++stamp_;
  if (taken == e.last_taken) {
    if (taken) {
      if (e.counter < kMax) ++e.counter;
    } else {
      if (e.counter > kMin) --e.counter;
    }
  } else {
    e.counter = kMid;
  }
  e.last_taken = taken;
}

bool MbsTable::is_hard(uint64_t pc) const {
  const Entry* e = find(pc);
  if (e == nullptr) return false;
  return e->counter != kMax && e->counter != kMin;
}

uint64_t MbsTable::debug_digest() const {
  util::Digest d;
  d.u32(sets_).u32(ways_).u64(stamp_);
  for (const Entry& e : entries_) {
    d.u64(e.tag).u8(e.counter).boolean(e.last_taken).boolean(e.valid);
    d.u64(e.lru);
  }
  return d.value();
}

void MbsTable::serialize(util::ByteWriter& out) const {
  out.u32(sets_);
  out.u32(ways_);
  out.u64(stamp_);
  for (const Entry& e : entries_) {
    out.u64(e.tag);
    out.u8(e.counter);
    out.boolean(e.last_taken);
    out.boolean(e.valid);
    out.u64(e.lru);
  }
}

void MbsTable::deserialize(util::ByteReader& in) {
  if (in.u32() != sets_ || in.u32() != ways_) {
    throw std::runtime_error("MbsTable: warm-state geometry mismatch");
  }
  stamp_ = in.u64();
  for (Entry& e : entries_) {
    e.tag = in.u64();
    e.counter = in.u8();
    e.last_taken = in.boolean();
    e.valid = in.boolean();
    e.lru = in.u64();
  }
}

uint64_t MbsTable::storage_bytes() const {
  // Paper section 3.1: 4 ways * 64 sets * 8 bytes per element = 2048 bytes.
  return static_cast<uint64_t>(sets_) * ways_ * 8;
}

}  // namespace cfir::branch
