// Superblock-caching functional engine (ROADMAP "Fast functional engine").
//
// Everything upstream of detailed simulation — trace capture, replay
// verification, BBV collection and above all grid-shared functional warming
// — streams committed instructions through a functional core. The reference
// `Interpreter` (interpreter.hpp) pays, per instruction: an image bounds
// check (`Program::try_at`), a cold `switch` dispatch, an out-of-line
// `eval_alu`/`eval_branch` call, and three `std::function` observer checks.
// `FastEngine` removes all four: each basic block is decoded ONCE into a
// flat cached array of pre-resolved micro-ops (operands, immediates and
// branch targets pre-extracted; handler selected at decode time), executed
// with computed-goto threaded dispatch where the compiler supports it (a
// dense-switch jump table otherwise), with direct block→block chaining for
// fall-through and taken edges so the entry-PC hash map is off the hot
// path after the first visit.
//
// Observer batching contract (see docs/functional-engine.md): instead of
// three per-instruction callbacks, `FastEngine` exposes ONE per-block sink,
// `on_block(entry_pc, events, n)`, invoked after each executed block slice
// with the retired-instruction events in program order. The event stream is
// bit-identical — instruction for instruction — to what the Interpreter's
// on_branch/on_mem/on_step observers assemble (tests/
// test_engine_differential.cpp locks this in over adversarial random
// programs), so consumers pay per-block callback cost, not per-instruction
// virtual cost. A null sink disables event collection entirely (the
// fast-forward / restore-skip path).
//
// `FunctionalEngine` below is the uniform facade the pipeline uses: it runs
// on `FastEngine` when the `CFIR_ENGINE` knob selects `cached` (the
// default) and on the reference `Interpreter` under `switch` (kept as the
// bit-exact oracle), delivering the identical event stream either way.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/interpreter.hpp"
#include "isa/program.hpp"
#include "mem/main_memory.hpp"

namespace cfir::isa {

/// Which functional core backs the pipeline's streaming passes.
enum class EngineKind : uint8_t {
  kSwitch = 0,  ///< reference Interpreter (per-instruction switch; oracle)
  kCached = 1,  ///< FastEngine (decode-once cached superblocks; default)
};

[[nodiscard]] const char* engine_kind_name(EngineKind kind);
/// Reads `CFIR_ENGINE` ("switch" | "cached"; unset/empty = cached). Throws
/// on typos so a misspelled knob fails loudly instead of silently running
/// the wrong engine.
[[nodiscard]] EngineKind engine_kind_from_env();

/// Retired-instruction event kind. Values intentionally mirror
/// trace::RecordKind so conversion is a cast, but isa stays independent of
/// the trace layer.
enum class EventKind : uint8_t {
  kPlain = 0,   ///< ALU / jumps / calls / rets
  kBranch = 1,  ///< conditional branch
  kLoad = 2,
  kStore = 3,
};

/// One retired instruction, as observed by a per-block sink. Field
/// semantics match the Interpreter observers: `next_pc` is the actual
/// successor of a conditional branch (kBranch only), `addr`/`size` the
/// access of a load/store.
struct StepEvent {
  uint64_t pc = 0;
  uint64_t next_pc = 0;  ///< kBranch only
  uint64_t addr = 0;     ///< kLoad/kStore only
  EventKind kind = EventKind::kPlain;
  bool taken = false;    ///< kBranch only
  uint8_t size = 0;      ///< kLoad/kStore only: access bytes (1/2/4/8)

  bool operator==(const StepEvent&) const = default;
};

class FastEngine {
 public:
  /// `memory` is used in place; apply the program's data image first.
  /// `program` and `memory` must outlive the engine.
  FastEngine(const Program& program, mem::MainMemory& memory);

  /// Executes at most `max_insts` instructions; returns the number
  /// executed. Stops earlier at HALT or when the PC leaves the code image.
  /// A budget expiring inside a block executes exactly the budgeted prefix
  /// of that block (and delivers a partial event span), so callers can stop
  /// at arbitrary instruction counts.
  uint64_t run(uint64_t max_insts = UINT64_MAX);

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] uint64_t pc() const { return pc_; }
  /// Redirects execution (checkpoint restore); clears the halted flag.
  void set_pc(uint64_t pc) {
    pc_ = pc;
    halted_ = false;
  }
  [[nodiscard]] uint64_t executed() const { return executed_; }
  [[nodiscard]] uint64_t reg(int r) const {
    return regs_[static_cast<size_t>(r)];
  }
  void set_reg(int r, uint64_t v) { regs_[static_cast<size_t>(r)] = v; }
  [[nodiscard]] const std::array<uint64_t, kNumLogicalRegs>& regs() const {
    return regs_;
  }

  /// Per-block observer: invoked once per executed block slice with the
  /// retired events in program order. Null (the default) disables event
  /// collection — the pure-execution fast path. May be (re)set between
  /// run() calls at any instruction boundary.
  std::function<void(uint64_t entry_pc, const StepEvent* events, size_t n)>
      on_block;

  /// Invalidation hook for self-modifying / hot-swapped code images: bumps
  /// the decode epoch and drops every cached block (and chain edge). The
  /// next run() re-decodes from the live Program. Architectural state (pc,
  /// regs, executed) is untouched.
  void invalidate_code();
  /// Decode-epoch counter: starts at 0, +1 per invalidate_code().
  [[nodiscard]] uint64_t epoch() const { return epoch_; }

  // Block-cache telemetry (lifetime totals; also exported once per run()
  // to the obs registry as engine.blocks / engine.block_hit_rate).
  [[nodiscard]] uint64_t blocks_entered() const { return blocks_entered_; }
  [[nodiscard]] uint64_t blocks_decoded() const { return blocks_decoded_; }

 private:
  /// One pre-decoded micro-op. `op` selects the handler (decode-time
  /// resolution: the execution loop indexes a dispatch table with it);
  /// operands and immediate are pre-extracted, `bytes` pre-computes the
  /// access width for loads/stores.
  struct MicroOp {
    int64_t imm = 0;
    Opcode op = Opcode::kNop;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    uint8_t bytes = 0;
  };

  /// One decoded basic block: a slice of the micro-op pool plus lazily
  /// filled chain edges to successor blocks (indices into blocks_, -1 =
  /// not chained yet). Blocks end at the first control transfer or HALT
  /// (inclusive), at the image edge, or at kMaxBlockOps.
  struct Block {
    uint64_t entry_pc = 0;
    uint32_t first = 0;      ///< pool_ index of the first micro-op
    uint32_t count = 0;      ///< micro-ops in the block (incl. terminator)
    int32_t fall_chain = -1;  ///< fall-through / not-taken successor
    int32_t taken_chain = -1; ///< taken / jmp / call target successor
    uint64_t ind_target = 0;  ///< 1-entry BTB for RET: last indirect target
    int32_t ind_chain = -1;   ///< block for ind_target (-1 = none cached)
  };

  /// How an executed block slice ended.
  enum class Exit : uint8_t {
    kFall,      ///< ran off the end (no terminator: cap / image edge)
    kNotTaken,  ///< conditional branch fell through
    kTaken,     ///< conditional branch / jmp / call went to the target
    kIndirect,  ///< ret: target from a register
    kHalt,
    kBudget,    ///< max_insts expired inside the block
  };

  /// Finds the cached block at `pc`, decoding it on a miss; -1 when `pc`
  /// is outside the image (execution halts there).
  int32_t lookup_or_decode(uint64_t pc);
  int32_t decode_block(uint64_t entry_pc);
  /// Executes up to `budget` micro-ops starting at block `bi_inout`,
  /// following already-filled chain edges from block to block without
  /// leaving the dispatch loop; delivers one on_block span per block when
  /// `Collect`. Returns why it stopped (HALT, budget, or a cold edge that
  /// needs a decode); `bi_inout` becomes the last block executed and
  /// `next_pc_out` the architectural successor PC.
  template <bool Collect>
  Exit exec_chain(int32_t& bi_inout, uint64_t budget, uint64_t& next_pc_out);
  template <bool Collect>
  uint64_t run_loop(uint64_t target);
  /// Load/store via the 1-entry page caches below — same result as
  /// mem_.read / mem_.write, minus the per-byte hash lookup.
  uint64_t load(uint64_t addr, uint32_t bytes);
  void store(uint64_t addr, uint64_t value, uint32_t bytes);

  const Program& program_;
  mem::MainMemory& mem_;
  std::array<uint64_t, kNumLogicalRegs> regs_{};
  uint64_t pc_;
  uint64_t executed_ = 0;
  bool halted_ = false;

  // Software mini-TLB: the last page touched by a load and by a store.
  // MainMemory pages are heap-allocated and never freed or moved, so a hit
  // needs no revalidation; absent pages are never cached (a later store
  // can materialize them).
  const uint8_t* ld_page_ = nullptr;
  uint64_t ld_page_no_ = 0;
  uint8_t* st_page_ = nullptr;
  uint64_t st_page_no_ = 0;

  std::vector<Block> blocks_;
  std::vector<MicroOp> pool_;
  std::unordered_map<uint64_t, int32_t> block_of_pc_;
  /// Per-slice event buffer. Fixed size (a block never exceeds
  /// kMaxBlockOps micro-ops, and each op emits at most one event) so the
  /// collect path appends through a raw cursor — no per-op capacity check.
  static constexpr uint32_t kMaxBlockOps = 256;
  std::array<StepEvent, kMaxBlockOps> events_;
  uint64_t epoch_ = 0;
  uint64_t blocks_entered_ = 0;
  uint64_t blocks_decoded_ = 0;
};

/// Uniform functional-execution facade: the pipeline's streaming passes
/// (warming, trace record, BBV, checkpoint fast-forward) run on whichever
/// engine `kind` selects and receive the identical event stream through the
/// same per-block sink either way. `kSwitch` wires the sink to the
/// reference Interpreter's observers (spans of one); `kCached` passes
/// FastEngine's block spans through.
class FunctionalEngine {
 public:
  using Sink =
      std::function<void(uint64_t entry_pc, const StepEvent* events, size_t n)>;

  FunctionalEngine(const Program& program, mem::MainMemory& memory,
                   EngineKind kind = engine_kind_from_env());

  /// Installs (or clears, with {}) the per-block event sink. May be called
  /// between runs at any instruction boundary — e.g. fast-skip a restored
  /// prefix sink-less, then attach the sink and continue.
  void set_sink(Sink sink);

  /// Executes at most `max_insts` instructions; returns the number
  /// executed (see FastEngine::run for the stop conditions).
  uint64_t run(uint64_t max_insts = UINT64_MAX);
  /// Runs forward to program-global instruction count `target` (no-op when
  /// already there or past — positions are monotonic).
  void run_to(uint64_t target);

  [[nodiscard]] EngineKind kind() const { return kind_; }
  [[nodiscard]] bool halted() const;
  [[nodiscard]] uint64_t pc() const;
  [[nodiscard]] uint64_t executed() const;
  [[nodiscard]] const std::array<uint64_t, kNumLogicalRegs>& regs() const;

 private:
  EngineKind kind_;
  // Exactly one of the two is live, per kind_.
  std::unique_ptr<Interpreter> interp_;
  std::unique_ptr<FastEngine> fast_;
  Sink sink_;
  StepEvent pending_;  ///< switch path: event under construction
};

}  // namespace cfir::isa
