// Aligned-text table printer used by the benchmark harnesses to emit
// paper-style rows (one row per benchmark / register count, one column per
// configuration). Supports CSV output for downstream plotting.
#pragma once

#include <string>
#include <vector>

namespace cfir::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Convenience: first cell is a label, remaining cells are numbers
  /// formatted with `precision` decimal places.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with fixed precision (no locale surprises).
[[nodiscard]] std::string fmt(double v, int precision = 2);

}  // namespace cfir::stats
