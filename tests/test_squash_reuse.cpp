#include "ci/squash_reuse.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"

namespace cfir::sim {
namespace {

TEST(SquashReuse, HitsOnHardHammock) {
  const isa::Program p = cfir::testing::figure1_program(2048, 50, 31);
  Simulator s(presets::ci_window(1, 256), p);
  const auto st = s.run(2000000);
  ASSERT_NE(s.squash_reuse_mechanism(), nullptr);
  // The control-independent sum past the join point was executed on the
  // wrong path and must be reused after the squash.
  EXPECT_GT(s.squash_reuse_mechanism()->buffer_hits(), 0u);
  EXPECT_GT(st.reused_committed, 0u);
  EXPECT_EQ(st.safety_net_recoveries, 0u);
}

TEST(SquashReuse, NoHitsOnPredictableCode) {
  const isa::Program p = cfir::testing::figure1_program(2048, 100, 32);
  Simulator s(presets::ci_window(1, 256), p);
  s.run(2000000);
  EXPECT_LT(s.squash_reuse_mechanism()->buffer_hits(), 10u);
}

TEST(SquashReuse, MatchesInterpreter) {
  const isa::Program p = cfir::testing::figure1_program(1024, 50, 33);
  const DiffResult r = differential_run(presets::ci_window(1, 256), p, 500000);
  EXPECT_TRUE(r.match) << r.mismatch;
}

TEST(SquashReuse, BeatsPlainWideBusOnHardHammocks) {
  // ci-iw exists to shave misprediction penalty: same machine, strictly
  // less re-execution. Allow a small tolerance for second-order effects.
  const isa::Program p = cfir::testing::figure1_program(4096, 50, 34);
  Simulator a(presets::wb(1, 256), p);
  Simulator b(presets::ci_window(1, 256), p);
  const auto sa = a.run(4000000);
  const auto sb = b.run(4000000);
  EXPECT_GE(sb.ipc() * 1.02, sa.ipc());
}

}  // namespace
}  // namespace cfir::sim
