// Physical register file with a free list and explicit ownership tracking
// for replica-held registers (paper sections 2.3.3/2.4.2): replica registers
// are allocated by the SRSMT with a configurable reserve left for rename,
// and only join the normal lifetime once a validation commits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cfir::core {

class PhysRegFile {
 public:
  explicit PhysRegFile(uint32_t num_regs);

  /// Allocates for a scalar rename. Returns -1 when the free list is empty.
  [[nodiscard]] int alloc();
  /// Allocates for a replica only when more than `reserve` registers would
  /// remain free. Returns -1 otherwise.
  [[nodiscard]] int alloc_replica(uint32_t reserve);
  void free_reg(int r);

  [[nodiscard]] uint64_t value(int r) const { return regs_[static_cast<size_t>(r)].value; }
  [[nodiscard]] bool ready(int r) const { return regs_[static_cast<size_t>(r)].ready; }
  void write(int r, uint64_t v) {
    regs_[static_cast<size_t>(r)].value = v;
    regs_[static_cast<size_t>(r)].ready = true;
  }
  void mark_unready(int r) { regs_[static_cast<size_t>(r)].ready = false; }

  [[nodiscard]] uint32_t size() const { return static_cast<uint32_t>(regs_.size()); }
  [[nodiscard]] uint32_t free_count() const { return static_cast<uint32_t>(free_.size()); }
  [[nodiscard]] uint32_t in_use() const { return size() - free_count(); }

 private:
  struct Reg {
    uint64_t value = 0;
    bool ready = false;
  };
  std::vector<Reg> regs_;
  std::vector<int> free_;
};

}  // namespace cfir::core
