// Rate-limited diagnostic logging for the library. All human-facing
// chatter goes to stderr through here — never stdout, which belongs to
// machine output (bench CFIR_JSON, trace_tool print_run) and is
// byte-diffed by CI.
//
// Every message has a `key`; each key prints at most `limit` times per
// process (default 1 — "warn once" semantics, as the legacy footer-less
// blob warning had). The first call past the limit prints a one-line
// "further '<key>' messages suppressed" notice so readers know the
// stream is incomplete; later calls are counted but silent. Counts are
// queryable for tests (`log_emitted`, `log_seen`).
#pragma once

#include <cstdint>
#include <string>

namespace cfir::obs {

enum class LogLevel { kInfo, kWarn, kError };

/// Prints "cfir: <level>: <message>" to stderr unless `key` already hit
/// its per-process limit. Thread-safe. Returns whether the line printed.
bool log(LogLevel level, const std::string& key, const std::string& message,
         uint64_t limit = 1);

/// Times `key` actually printed so far (suppression notice not counted).
[[nodiscard]] uint64_t log_emitted(const std::string& key);

/// Times `key` was logged, printed or suppressed.
[[nodiscard]] uint64_t log_seen(const std::string& key);

/// Forgets all per-key counts — test isolation only.
void log_reset_for_tests();

}  // namespace cfir::obs
