// Property-based differential testing: structured random programs must
// commit exactly the interpreter's architectural state on the baseline
// core across configuration dimensions.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"

namespace cfir::sim {
namespace {

class RandomProgramBaseline : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramBaseline, MatchesInterpreterScalar1Port) {
  const isa::Program p = cfir::testing::random_program(GetParam());
  const DiffResult r = differential_run(presets::scal(1, 256), p, 300000);
  EXPECT_TRUE(r.match) << "seed " << GetParam() << ": " << r.mismatch;
}

TEST_P(RandomProgramBaseline, MatchesInterpreterWideBus2Ports) {
  const isa::Program p = cfir::testing::random_program(GetParam());
  const DiffResult r = differential_run(presets::wb(2, 256), p, 300000);
  EXPECT_TRUE(r.match) << "seed " << GetParam() << ": " << r.mismatch;
}

TEST_P(RandomProgramBaseline, MatchesInterpreterSmallRegfile) {
  const isa::Program p = cfir::testing::random_program(GetParam());
  const DiffResult r = differential_run(presets::scal(1, 128), p, 300000);
  EXPECT_TRUE(r.match) << "seed " << GetParam() << ": " << r.mismatch;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramBaseline,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace cfir::sim
