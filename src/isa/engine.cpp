#include "isa/engine.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

// Threaded (computed-goto) dispatch needs the GNU "labels as values"
// extension; both toolchains this repo targets have it. The fallback is a
// dense switch over the pre-decoded handler id — the compiler lowers it to
// the same jump table a function-pointer table would reach through, minus
// the indirect-call overhead.
#if defined(__GNUC__) || defined(__clang__)
#define CFIR_ENGINE_THREADED 1
#else
#define CFIR_ENGINE_THREADED 0
#endif

namespace cfir::isa {

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSwitch: return "switch";
    case EngineKind::kCached: return "cached";
  }
  return "?";
}

EngineKind engine_kind_from_env() {
  const char* v = std::getenv("CFIR_ENGINE");
  if (v == nullptr || *v == '\0' || std::string_view(v) == "cached") {
    return EngineKind::kCached;
  }
  if (std::string_view(v) == "switch") return EngineKind::kSwitch;
  throw std::runtime_error(
      "CFIR_ENGINE must be 'switch' or 'cached', got '" + std::string(v) +
      "'");
}

// ---------------------------------------------------------------------------
// FastEngine
// ---------------------------------------------------------------------------

// Decode stops after kMaxBlockOps micro-ops (FastEngine::kMaxBlockOps, the
// events_ buffer size) even without a terminator, so one pathological
// straight-line region cannot produce an unbounded block (the fall-through
// edge chains the pieces back together at full speed).

FastEngine::FastEngine(const Program& program, mem::MainMemory& memory)
    : program_(program), mem_(memory), pc_(program.base()) {}

void FastEngine::invalidate_code() {
  ++epoch_;
  blocks_.clear();
  pool_.clear();
  block_of_pc_.clear();
}

int32_t FastEngine::decode_block(uint64_t entry_pc) {
  const uint32_t first = static_cast<uint32_t>(pool_.size());
  uint64_t pc = entry_pc;
  uint32_t count = 0;
  while (count < kMaxBlockOps) {
    const Instruction* inst = program_.try_at(pc);
    if (inst == nullptr) break;  // image edge: the fall-through halts
    MicroOp u;
    u.imm = inst->imm;
    u.op = inst->op;
    u.rd = inst->rd;
    u.rs1 = inst->rs1;
    u.rs2 = inst->rs2;
    u.bytes = static_cast<uint8_t>(mem_bytes(inst->op));
    pool_.push_back(u);
    ++count;
    // Any control transfer (cond branch, jmp, call, ret) or HALT terminates
    // the block; everything before it is straight-line by construction.
    if (is_branch(inst->op) || inst->op == Opcode::kHalt) break;
    pc += kInstBytes;
  }
  if (count == 0) {
    pool_.resize(first);
    return -1;  // entry outside the image (or unaligned)
  }
  Block b;
  b.entry_pc = entry_pc;
  b.first = first;
  b.count = count;
  blocks_.push_back(b);
  ++blocks_decoded_;
  return static_cast<int32_t>(blocks_.size() - 1);
}

int32_t FastEngine::lookup_or_decode(uint64_t pc) {
  const auto it = block_of_pc_.find(pc);
  if (it != block_of_pc_.end()) return it->second;
  const int32_t bi = decode_block(pc);
  block_of_pc_.emplace(pc, bi);  // negative results cached too
  return bi;
}

inline uint64_t FastEngine::load(uint64_t addr, uint32_t bytes) {
  const uint64_t off = addr & (mem::MainMemory::kPageSize - 1);
  if (off + bytes <= mem::MainMemory::kPageSize) {
    const uint64_t no = addr >> mem::MainMemory::kPageBits;
    const uint8_t* p;
    if (st_page_ != nullptr && st_page_no_ == no) {
      p = st_page_;  // freshest view of a page we also write
    } else if (ld_page_ != nullptr && ld_page_no_ == no) {
      p = ld_page_;
    } else {
      p = mem_.page_data(addr);
      if (p == nullptr) return 0;  // absent page reads as zero; not cached
      ld_page_ = p;
      ld_page_no_ = no;
    }
    uint64_t v = 0;
    for (uint32_t i = 0; i < bytes; ++i) {
      v |= static_cast<uint64_t>(p[off + i]) << (8 * i);
    }
    return v;
  }
  return mem_.read(addr, static_cast<int>(bytes));  // page-crossing access
}

inline void FastEngine::store(uint64_t addr, uint64_t value, uint32_t bytes) {
  const uint64_t off = addr & (mem::MainMemory::kPageSize - 1);
  if (off + bytes <= mem::MainMemory::kPageSize) {
    const uint64_t no = addr >> mem::MainMemory::kPageBits;
    if (st_page_ == nullptr || st_page_no_ != no) {
      st_page_ = mem_.mutable_page_data(addr);
      st_page_no_ = no;
    }
    for (uint32_t i = 0; i < bytes; ++i) {
      st_page_[off + i] = static_cast<uint8_t>(value >> (8 * i));
    }
    return;
  }
  mem_.write(addr, value, static_cast<int>(bytes));  // page-crossing access
}

template <bool Collect>
FastEngine::Exit FastEngine::exec_chain(int32_t& bi_inout, uint64_t budget,
                                        uint64_t& next_pc_out) {
  int32_t bi = bi_inout;
  uint64_t remaining = budget;  // > 0: run_loop never calls with 0 left
  uint64_t* const regs = regs_.data();
  const Block* blk;
  const MicroOp* begin;
  const MicroOp* u;
  const MicroOp* end;
  uint64_t pc;
  uint64_t nxt;
  uint32_t slice;
  bool truncated;
  bool btaken;
  // Raw append cursor into the fixed events_ buffer (a slice never exceeds
  // kMaxBlockOps ops and each op emits at most one event).
  StepEvent* ev = events_.data();

  // Hot path: handlers at block exits follow already-filled chain edges by
  // jumping straight back to enter_block — control returns to run_loop
  // only on HALT, budget expiry, or a cold edge that needs a decode.
enter_block:
  ++blocks_entered_;
  blk = &blocks_[static_cast<size_t>(bi)];
  slice = blk->count;
  truncated = remaining < slice;
  if (truncated) {
    // max_insts expires inside this block: execute exactly the budgeted
    // prefix (the terminator is the last op, so it is never reached).
    slice = static_cast<uint32_t>(remaining);
  }
  begin = pool_.data() + blk->first;
  u = begin;
  end = begin + slice;
  pc = blk->entry_pc;
  if constexpr (Collect) ev = events_.data();

#define CFIR_EMIT_PLAIN()                                                    \
  do {                                                                       \
    if constexpr (Collect) {                                                 \
      *ev++ = StepEvent{pc, 0, 0, EventKind::kPlain, false, 0};              \
    }                                                                        \
  } while (0)

#if CFIR_ENGINE_THREADED
  // Handler addresses indexed by Opcode value — decode-time handler
  // selection, threaded per-op dispatch (each handler jumps straight to the
  // next op's handler; no central loop branch).
  static const void* const kL[] = {
      &&h_nop,  &&h_halt, &&h_add,  &&h_sub,  &&h_mul,  &&h_div,  &&h_rem,
      &&h_and,  &&h_or,   &&h_xor,  &&h_shl,  &&h_shr,  &&h_sar,  &&h_slt,
      &&h_sltu, &&h_seq,  &&h_min,  &&h_max,  &&h_addi, &&h_muli, &&h_andi,
      &&h_ori,  &&h_xori, &&h_shli, &&h_shrli, &&h_movi, &&h_mov, &&h_ld,
      &&h_ld,   &&h_ld,   &&h_ld,   &&h_st,   &&h_st,   &&h_st,   &&h_st,
      &&h_beq,  &&h_bne,  &&h_blt,  &&h_bge,  &&h_bltu, &&h_bgeu, &&h_jmp,
      &&h_call, &&h_ret,
  };
  static_assert(sizeof(kL) / sizeof(kL[0]) ==
                static_cast<size_t>(Opcode::kOpcodeCount));

// Without event collection nothing reads `pc` mid-block, so the per-op
// increment is compiled out and block-exit handlers recompute it from the
// micro-op index instead (CFIR_CUR_PC).
#define CFIR_ADVANCE()                                                       \
  do {                                                                       \
    if (++u == end) goto fall_out;                                           \
    if constexpr (Collect) pc += kInstBytes;                                 \
    goto* kL[static_cast<size_t>(u->op)];                                    \
  } while (0)
#define CFIR_CUR_PC()                                                        \
  (Collect ? pc                                                              \
           : blk->entry_pc + static_cast<uint64_t>(u - begin) * kInstBytes)
#define CFIR_NEXT()                                                          \
  do {                                                                       \
    CFIR_EMIT_PLAIN();                                                       \
    CFIR_ADVANCE();                                                          \
  } while (0)

  goto* kL[static_cast<size_t>(u->op)];

h_nop:
  CFIR_NEXT();
h_add:
  regs[u->rd] = regs[u->rs1] + regs[u->rs2];
  CFIR_NEXT();
h_sub:
  regs[u->rd] = regs[u->rs1] - regs[u->rs2];
  CFIR_NEXT();
h_mul:
  regs[u->rd] = regs[u->rs1] * regs[u->rs2];
  CFIR_NEXT();
h_div: {
  // Same semantics as eval_alu: /0 -> 0, INT64_MIN / -1 defined as
  // unsigned negation (no signed-overflow UB).
  const uint64_t a = regs[u->rs1], b = regs[u->rs2];
  regs[u->rd] = b == 0 ? 0
                : static_cast<int64_t>(b) == -1
                    ? uint64_t{0} - a
                    : static_cast<uint64_t>(static_cast<int64_t>(a) /
                                            static_cast<int64_t>(b));
  CFIR_NEXT();
}
h_rem: {
  const uint64_t a = regs[u->rs1], b = regs[u->rs2];
  regs[u->rd] = b == 0 ? a
                : static_cast<int64_t>(b) == -1
                    ? 0
                    : static_cast<uint64_t>(static_cast<int64_t>(a) %
                                            static_cast<int64_t>(b));
  CFIR_NEXT();
}
h_and:
  regs[u->rd] = regs[u->rs1] & regs[u->rs2];
  CFIR_NEXT();
h_or:
  regs[u->rd] = regs[u->rs1] | regs[u->rs2];
  CFIR_NEXT();
h_xor:
  regs[u->rd] = regs[u->rs1] ^ regs[u->rs2];
  CFIR_NEXT();
h_shl:
  regs[u->rd] = regs[u->rs1] << (regs[u->rs2] & 63);
  CFIR_NEXT();
h_shr:
  regs[u->rd] = regs[u->rs1] >> (regs[u->rs2] & 63);
  CFIR_NEXT();
h_sar:
  regs[u->rd] = static_cast<uint64_t>(static_cast<int64_t>(regs[u->rs1]) >>
                                      (regs[u->rs2] & 63));
  CFIR_NEXT();
h_slt:
  regs[u->rd] = static_cast<int64_t>(regs[u->rs1]) <
                        static_cast<int64_t>(regs[u->rs2])
                    ? 1
                    : 0;
  CFIR_NEXT();
h_sltu:
  regs[u->rd] = regs[u->rs1] < regs[u->rs2] ? 1 : 0;
  CFIR_NEXT();
h_seq:
  regs[u->rd] = regs[u->rs1] == regs[u->rs2] ? 1 : 0;
  CFIR_NEXT();
h_min: {
  const auto a = static_cast<int64_t>(regs[u->rs1]);
  const auto b = static_cast<int64_t>(regs[u->rs2]);
  regs[u->rd] = static_cast<uint64_t>(a < b ? a : b);
  CFIR_NEXT();
}
h_max: {
  const auto a = static_cast<int64_t>(regs[u->rs1]);
  const auto b = static_cast<int64_t>(regs[u->rs2]);
  regs[u->rd] = static_cast<uint64_t>(a > b ? a : b);
  CFIR_NEXT();
}
h_addi:
  regs[u->rd] = regs[u->rs1] + static_cast<uint64_t>(u->imm);
  CFIR_NEXT();
h_muli:
  regs[u->rd] = regs[u->rs1] * static_cast<uint64_t>(u->imm);
  CFIR_NEXT();
h_andi:
  regs[u->rd] = regs[u->rs1] & static_cast<uint64_t>(u->imm);
  CFIR_NEXT();
h_ori:
  regs[u->rd] = regs[u->rs1] | static_cast<uint64_t>(u->imm);
  CFIR_NEXT();
h_xori:
  regs[u->rd] = regs[u->rs1] ^ static_cast<uint64_t>(u->imm);
  CFIR_NEXT();
h_shli:
  regs[u->rd] = regs[u->rs1] << (u->imm & 63);
  CFIR_NEXT();
h_shrli:
  regs[u->rd] = regs[u->rs1] >> (u->imm & 63);
  CFIR_NEXT();
h_movi:
  regs[u->rd] = static_cast<uint64_t>(u->imm);
  CFIR_NEXT();
h_mov:
  regs[u->rd] = regs[u->rs1];
  CFIR_NEXT();
h_ld: {
  const uint64_t addr = regs[u->rs1] + static_cast<uint64_t>(u->imm);
  regs[u->rd] = load(addr, u->bytes);
  if constexpr (Collect) {
    *ev++ = StepEvent{pc, 0, addr, EventKind::kLoad, false, u->bytes};
  }
  CFIR_ADVANCE();
}
h_st: {
  const uint64_t addr = regs[u->rs1] + static_cast<uint64_t>(u->imm);
  store(addr, regs[u->rs2], u->bytes);
  if constexpr (Collect) {
    *ev++ = StepEvent{pc, 0, addr, EventKind::kStore, false, u->bytes};
  }
  CFIR_ADVANCE();
}
h_beq:
  btaken = regs[u->rs1] == regs[u->rs2];
  goto do_branch;
h_bne:
  btaken = regs[u->rs1] != regs[u->rs2];
  goto do_branch;
h_blt:
  btaken = static_cast<int64_t>(regs[u->rs1]) <
           static_cast<int64_t>(regs[u->rs2]);
  goto do_branch;
h_bge:
  btaken = static_cast<int64_t>(regs[u->rs1]) >=
           static_cast<int64_t>(regs[u->rs2]);
  goto do_branch;
h_bltu:
  btaken = regs[u->rs1] < regs[u->rs2];
  goto do_branch;
h_bgeu:
  btaken = regs[u->rs1] >= regs[u->rs2];
  goto do_branch;
do_branch: {
  nxt = btaken ? static_cast<uint64_t>(u->imm) : CFIR_CUR_PC() + kInstBytes;
  if constexpr (Collect) {
    *ev++ = StepEvent{pc, nxt, 0, EventKind::kBranch, btaken, 0};
  }
  ++u;
  if (btaken) goto exit_taken;
  goto exit_fall;
}
h_jmp:
  nxt = static_cast<uint64_t>(u->imm);
  CFIR_EMIT_PLAIN();
  ++u;
  goto exit_taken;
h_call:
  regs[kLinkReg] = CFIR_CUR_PC() + kInstBytes;
  nxt = static_cast<uint64_t>(u->imm);
  CFIR_EMIT_PLAIN();
  ++u;
  goto exit_taken;
h_ret:
  nxt = regs[u->rs1];
  CFIR_EMIT_PLAIN();
  ++u;
  goto exit_indirect;
h_halt:
  // HALT neither retires nor emits an event (interpreter parity): u stays
  // on the halt op so it is not counted as consumed.
  nxt = CFIR_CUR_PC();
  goto exit_halt;

#undef CFIR_ADVANCE
#undef CFIR_NEXT
#undef CFIR_CUR_PC

#else  // !CFIR_ENGINE_THREADED — portable dense-switch dispatch
  for (;;) {
    switch (u->op) {
      case Opcode::kNop:
        CFIR_EMIT_PLAIN();
        break;
      case Opcode::kHalt:
        nxt = pc;
        goto exit_halt;
      case Opcode::kJmp:
        nxt = static_cast<uint64_t>(u->imm);
        CFIR_EMIT_PLAIN();
        ++u;
        goto exit_taken;
      case Opcode::kCall:
        regs[kLinkReg] = pc + kInstBytes;
        nxt = static_cast<uint64_t>(u->imm);
        CFIR_EMIT_PLAIN();
        ++u;
        goto exit_taken;
      case Opcode::kRet:
        nxt = regs[u->rs1];
        CFIR_EMIT_PLAIN();
        ++u;
        goto exit_indirect;
      default:
        if (is_cond_branch(u->op)) {
          btaken = eval_branch(u->op, regs[u->rs1], regs[u->rs2]);
          nxt = btaken ? static_cast<uint64_t>(u->imm) : pc + kInstBytes;
          if constexpr (Collect) {
            *ev++ = StepEvent{pc, nxt, 0, EventKind::kBranch, btaken, 0};
          }
          ++u;
          if (btaken) goto exit_taken;
          goto exit_fall;
        } else if (is_load(u->op)) {
          const uint64_t addr = regs[u->rs1] + static_cast<uint64_t>(u->imm);
          regs[u->rd] = load(addr, u->bytes);
          if constexpr (Collect) {
            *ev++ = StepEvent{pc, 0, addr, EventKind::kLoad, false, u->bytes};
          }
        } else if (is_store(u->op)) {
          const uint64_t addr = regs[u->rs1] + static_cast<uint64_t>(u->imm);
          store(addr, regs[u->rs2], u->bytes);
          if constexpr (Collect) {
            *ev++ = StepEvent{pc, 0, addr, EventKind::kStore, false, u->bytes};
          }
        } else {
          regs[u->rd] = eval_alu(u->op, regs[u->rs1], regs[u->rs2], u->imm);
          CFIR_EMIT_PLAIN();
        }
        break;
    }
    if (++u == end) goto fall_out;
    pc += kInstBytes;
  }
#endif

// Block-exit bookkeeping shared by every edge: retire the consumed slice
// and flush its event span before chaining or returning.
#define CFIR_BLOCK_DONE()                                                    \
  do {                                                                       \
    const uint64_t consumed = static_cast<uint64_t>(u - begin);              \
    executed_ += consumed;                                                   \
    remaining -= consumed;                                                   \
    if constexpr (Collect) {                                                 \
      if (ev != events_.data()) {                                            \
        on_block(blk->entry_pc, events_.data(),                              \
                 static_cast<size_t>(ev - events_.data()));                  \
      }                                                                      \
    }                                                                        \
  } while (0)

fall_out:
  // Ran off the end: budget cut, decode cap, or image edge. The successor
  // is the next sequential slot; computed from the micro-op index because
  // the no-collect threaded path does not maintain `pc`.
  nxt = blk->entry_pc + static_cast<uint64_t>(u - begin) * kInstBytes;
  if (truncated) goto exit_budget;
  goto exit_fall;

exit_taken:
  CFIR_BLOCK_DONE();
  if (blk->taken_chain >= 0 && remaining > 0) {
    bi = blk->taken_chain;
    goto enter_block;
  }
  bi_inout = bi;
  next_pc_out = nxt;
  return remaining == 0 ? Exit::kBudget : Exit::kTaken;

exit_fall:
  CFIR_BLOCK_DONE();
  if (blk->fall_chain >= 0 && remaining > 0) {
    bi = blk->fall_chain;
    goto enter_block;
  }
  bi_inout = bi;
  next_pc_out = nxt;
  return remaining == 0 ? Exit::kBudget : Exit::kFall;

exit_indirect:
  CFIR_BLOCK_DONE();
  // 1-entry BTB: the chain is only valid for the target it was filled for
  // (RET returns to whichever call site is live).
  if (blk->ind_chain >= 0 && blk->ind_target == nxt && remaining > 0) {
    bi = blk->ind_chain;
    goto enter_block;
  }
  bi_inout = bi;
  next_pc_out = nxt;
  return remaining == 0 ? Exit::kBudget : Exit::kIndirect;

exit_halt:
  CFIR_BLOCK_DONE();
  bi_inout = bi;
  next_pc_out = nxt;
  return Exit::kHalt;

exit_budget:
  CFIR_BLOCK_DONE();  // consumed == remaining, so remaining is now 0
  bi_inout = bi;
  next_pc_out = nxt;
  return Exit::kBudget;

#undef CFIR_EMIT_PLAIN
#undef CFIR_BLOCK_DONE
}

// flatten pulls exec_chain into the loop body (each instantiation has
// exactly one call site). The loop here only sees cold events — a chain
// edge that needs its first decode, budget expiry, HALT, or the PC leaving
// the image; hot chained edges never leave exec_chain.
template <bool Collect>
#if defined(__GNUC__) || defined(__clang__)
__attribute__((flatten))
#endif
uint64_t FastEngine::run_loop(uint64_t target) {
  const uint64_t start = executed_;
  int32_t bi = lookup_or_decode(pc_);
  while (executed_ < target) {
    if (bi < 0) {
      halted_ = true;  // PC left the code image; pc_ stays on the bad slot
      break;
    }
    uint64_t next_pc = 0;
    const Exit ex = exec_chain<Collect>(bi, target - executed_, next_pc);
    pc_ = next_pc;
    if (ex == Exit::kHalt) {
      halted_ = true;
      break;
    }
    if (ex == Exit::kBudget) break;  // target reached exactly
    // Cold edge: block `bi` exited on `ex` with no chain filled. Decode the
    // successor and fill the slot — written through blocks_[...] because
    // the decode may reallocate blocks_.
    const int32_t nxt = lookup_or_decode(next_pc);
    switch (ex) {
      case Exit::kTaken:
        blocks_[static_cast<size_t>(bi)].taken_chain = nxt;
        break;
      case Exit::kIndirect:
        blocks_[static_cast<size_t>(bi)].ind_chain = nxt;
        blocks_[static_cast<size_t>(bi)].ind_target = next_pc;
        break;
      default:  // kFall (fall-through and not-taken branches)
        blocks_[static_cast<size_t>(bi)].fall_chain = nxt;
        break;
    }
    bi = nxt;
  }
  return executed_ - start;
}

uint64_t FastEngine::run(uint64_t max_insts) {
  if (halted_ || max_insts == 0) return 0;
  const uint64_t start = executed_;
  // Saturating target: max_insts == UINT64_MAX means "to HALT".
  const uint64_t target =
      max_insts > UINT64_MAX - start ? UINT64_MAX : start + max_insts;
  const obs::Stopwatch clock;
  const uint64_t blocks_before = blocks_entered_;
  // Event collection is bound once per run, never checked per instruction.
  const uint64_t ran =
      on_block ? run_loop<true>(target) : run_loop<false>(target);
  if (ran > 0) {
    // Telemetry once per run() call (interpreter convention): functional
    // instructions land in the shared interp.insts counter, plus the
    // block-cache effectiveness pair documented in docs/observability.md.
    obs::Registry& reg = obs::Registry::instance();
    reg.counter("interp.insts").add(ran);
    reg.counter("engine.blocks").add(blocks_entered_ - blocks_before);
    reg.histogram("engine.run_us").observe(clock.elapsed_us());
    if (blocks_entered_ > 0) {
      reg.gauge("engine.block_hit_rate")
          .set(1.0 - static_cast<double>(blocks_decoded_) /
                         static_cast<double>(blocks_entered_));
    }
  }
  return ran;
}

// ---------------------------------------------------------------------------
// FunctionalEngine
// ---------------------------------------------------------------------------

FunctionalEngine::FunctionalEngine(const Program& program,
                                   mem::MainMemory& memory, EngineKind kind)
    : kind_(kind) {
  if (kind_ == EngineKind::kCached) {
    fast_ = std::make_unique<FastEngine>(program, memory);
  } else {
    interp_ = std::make_unique<Interpreter>(program, memory);
  }
}

void FunctionalEngine::set_sink(Sink sink) {
  sink_ = std::move(sink);
  if (fast_ != nullptr) {
    fast_->on_block = sink_;
    return;
  }
  if (!sink_) {
    // Clearing all three observers also unlocks the interpreter's
    // unobserved fast loop.
    interp_->on_branch = nullptr;
    interp_->on_mem = nullptr;
    interp_->on_step = nullptr;
    return;
  }
  // Switch path: assemble the identical event from the three
  // per-instruction observers and deliver it as a span of one.
  interp_->on_branch = [this](uint64_t, bool taken, uint64_t target) {
    pending_.kind = EventKind::kBranch;
    pending_.taken = taken;
    pending_.next_pc = target;
  };
  interp_->on_mem = [this](uint64_t, uint64_t addr, int bytes,
                           bool is_store) {
    pending_.kind = is_store ? EventKind::kStore : EventKind::kLoad;
    pending_.addr = addr;
    pending_.size = static_cast<uint8_t>(bytes);
  };
  interp_->on_step = [this](uint64_t pc, uint64_t) {
    pending_.pc = pc;
    sink_(pending_.pc, &pending_, 1);
    pending_ = StepEvent{};
  };
}

uint64_t FunctionalEngine::run(uint64_t max_insts) {
  return fast_ != nullptr ? fast_->run(max_insts) : interp_->run(max_insts);
}

void FunctionalEngine::run_to(uint64_t target) {
  const uint64_t done = executed();
  if (target > done) run(target - done);
}

bool FunctionalEngine::halted() const {
  return fast_ != nullptr ? fast_->halted() : interp_->halted();
}

uint64_t FunctionalEngine::pc() const {
  return fast_ != nullptr ? fast_->pc() : interp_->pc();
}

uint64_t FunctionalEngine::executed() const {
  return fast_ != nullptr ? fast_->executed() : interp_->executed();
}

const std::array<uint64_t, kNumLogicalRegs>& FunctionalEngine::regs() const {
  return fast_ != nullptr ? fast_->regs() : interp_->regs();
}

}  // namespace cfir::isa
