#include "sim/simulator.hpp"

#include <sstream>

#include "trace/checkpoint.hpp"
#include "trace/trace.hpp"

namespace cfir::sim {

namespace {

std::unique_ptr<core::Mechanism> make_mechanism(
    const core::CoreConfig& config, ci::CiMechanism** ci_out,
    ci::SquashReuseMechanism** sr_out) {
  switch (config.policy) {
    case core::Policy::kNone:
      return nullptr;
    case core::Policy::kCi:
    case core::Policy::kVect: {
      auto m = std::make_unique<ci::CiMechanism>(config);
      *ci_out = m.get();
      return m;
    }
    case core::Policy::kCiWindow: {
      auto m = std::make_unique<ci::SquashReuseMechanism>(config);
      *sr_out = m.get();
      return m;
    }
  }
  return nullptr;
}

}  // namespace

Simulator::Simulator(const core::CoreConfig& config, isa::Program program)
    : program_(std::move(program)) {
  isa::load_data_image(program_, memory_);
  mech_ = make_mechanism(config, &ci_, &sr_);
  core_ = std::make_unique<core::Core>(config, program_, memory_, mech_.get());
}

Simulator::Simulator(const core::CoreConfig& config, isa::Program program,
                     const trace::Checkpoint& start)
    : program_(std::move(program)), memory_(start.memory.clone()) {
  mech_ = make_mechanism(config, &ci_, &sr_);
  core_ = std::make_unique<core::Core>(config, program_, memory_, mech_.get());
  core_->set_arch_state(start.regs, start.pc);
}

void Simulator::attach_trace(trace::TraceWriter& writer) {
  // Spans batch the per-commit callback out of the core's hot loop; the
  // core flushes the buffer when full and at the end of run().
  core_->on_commit_span = [&writer](const core::CommitRecord* recs,
                                    size_t n) {
    for (size_t i = 0; i < n; ++i) {
      const core::CommitRecord& cr = recs[i];
      if (cr.op == isa::Opcode::kHalt) continue;
      trace::TraceRecord rec;
      rec.pc = cr.pc;
      if (cr.is_cond_branch) {
        rec.kind = trace::RecordKind::kBranch;
        rec.taken = cr.actual_taken;
        rec.next_pc = cr.actual_target;
      } else if (cr.is_load) {
        rec.kind = trace::RecordKind::kLoad;
        rec.addr = cr.mem_addr;
        rec.size = cr.mem_size;
      } else if (cr.is_store) {
        rec.kind = trace::RecordKind::kStore;
        rec.addr = cr.mem_addr;
        rec.size = cr.mem_size;
      }
      writer.append(rec);
    }
  };
}

stats::SimStats Simulator::run(uint64_t max_insts) {
  core_->run(max_insts);
  if (mech_ != nullptr) mech_->finalize();
  return core_->stats();
}

DiffResult differential_run(const core::CoreConfig& config,
                            const isa::Program& program, uint64_t max_insts) {
  DiffResult r;
  // Reference.
  const isa::InterpResult ref = isa::run_program(program, max_insts);
  // Timing core.
  Simulator sim(config, program);
  const stats::SimStats st = sim.run(max_insts);
  r.executed = st.committed;
  std::ostringstream why;
  if (st.committed != ref.executed) {
    why << "committed " << st.committed << " != interpreter " << ref.executed
        << "; ";
  }
  for (int i = 0; i < isa::kNumLogicalRegs; ++i) {
    if (sim.arch_reg(i) != ref.regs[static_cast<size_t>(i)]) {
      why << "r" << i << " = " << sim.arch_reg(i) << " != "
          << ref.regs[static_cast<size_t>(i)] << "; ";
    }
  }
  if (sim.memory_digest() != ref.mem_digest) why << "memory digest differs; ";
  r.mismatch = why.str();
  r.match = r.mismatch.empty();
  return r;
}

}  // namespace cfir::sim
