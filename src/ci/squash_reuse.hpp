// Squash-reuse baseline ("ci-iw" in Figure 10): control independence is
// exploited only for instructions that were already inside the window when
// the misprediction was detected. On a hard misprediction the squashed
// control-independent instructions (past the estimated re-convergent point,
// operands untouched between branch and RP) deposit their results in a
// PC-indexed reuse buffer; when the same PC is refetched down the correct
// path with identical operand values, the result is reused without
// execution (Sodani/Sohi-style value-based reuse test, reference [19]).
//
// No pre-execution happens: this is exactly the "ci-iw" restriction the
// paper uses to isolate the value of executing beyond the window.
#pragma once

#include <cstdint>
#include <vector>

#include "ci/reconvergence.hpp"
#include "core/pipeline.hpp"

namespace cfir::ci {

class SquashReuseMechanism : public core::Mechanism {
 public:
  explicit SquashReuseMechanism(const core::CoreConfig& cfg);

  void attach(core::Core& core) override;
  void on_decode(core::DynInst& di) override;
  void on_renamed(core::DynInst& di) override;
  void on_mispredict_pre(core::DynInst& di) override;
  void on_branch_resolved(core::DynInst& di, bool mispredicted) override;
  void on_squash(core::DynInst& di) override;
  void on_commit(core::DynInst& di) override;
  bool on_store_commit(core::DynInst& di) override;

  [[nodiscard]] const Nrbq& nrbq() const { return nrbq_; }
  [[nodiscard]] uint64_t buffer_hits() const { return hits_; }

 private:
  struct BufferEntry {
    bool valid = false;
    uint64_t pc = 0;
    isa::Instruction inst;
    uint64_t v1 = 0, v2 = 0;
    uint64_t result = 0;
  };
  [[nodiscard]] size_t index_of(uint64_t pc) const {
    return (pc >> 2) & (buffer_.size() - 1);
  }

  core::CoreConfig cfg_;
  core::Core* core_ = nullptr;
  Nrbq nrbq_;
  std::vector<BufferEntry> buffer_;
  // Active squash context (set between on_mispredict_pre and
  // on_branch_resolved of a hard mispredicted branch).
  bool capture_active_ = false;
  uint64_t capture_rp_ = 0;
  uint64_t capture_mask_ = 0;
  uint64_t hits_ = 0;
};

}  // namespace cfir::ci
