// Shared binary I/O primitives for the trace / checkpoint file formats.
// Both formats document "all integers little-endian"; these helpers are the
// single place to add byte-swapping if a big-endian host ever matters.
#pragma once

#include <istream>
#include <ostream>

namespace cfir::trace::io {

template <typename T>
void put_raw(std::ostream& s, const T& v) {
  s.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get_raw(std::istream& s) {
  T v{};
  s.read(reinterpret_cast<char*>(&v), sizeof(T));
  return v;
}

}  // namespace cfir::trace::io
