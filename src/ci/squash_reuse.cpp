#include "ci/squash_reuse.hpp"

namespace cfir::ci {

using core::DynInst;
using isa::Opcode;

namespace {
/// Only simple register-to-register computations are reusable: loads would
/// need memory invalidation, branches/stores have no register result.
bool reusable(const isa::Instruction& inst) {
  const Opcode op = inst.op;
  if (!isa::has_dest(op)) return false;
  if (isa::is_mem(op) || isa::is_branch(op)) return false;
  if (op == Opcode::kCall) return false;
  return true;
}
}  // namespace

SquashReuseMechanism::SquashReuseMechanism(const core::CoreConfig& cfg)
    : cfg_(cfg), nrbq_(cfg.nrbq_entries) {
  uint32_t n = 1;
  while (n < cfg.squash_reuse_entries) n <<= 1;
  buffer_.assign(n, BufferEntry{});
}

void SquashReuseMechanism::attach(core::Core& core) { core_ = &core; }

void SquashReuseMechanism::on_decode(DynInst& di) {
  nrbq_.observe_pc(di.pc);
  if (!reusable(di.inst)) return;
  BufferEntry& e = buffer_[index_of(di.pc)];
  if (!e.valid || e.pc != di.pc || !(e.inst == di.inst)) return;
  // Value-based reuse test: both operands must be ready with the captured
  // values (conservative but exact).
  auto value_ok = [&](bool reads, int ps, uint64_t captured) {
    if (!reads) return true;
    return ps >= 0 && core_->regfile().ready(ps) &&
           core_->regfile().value(ps) == captured;
  };
  if (!value_ok(isa::reads_rs1(di.inst.op), di.ps1, e.v1)) return;
  if (!value_ok(isa::reads_rs2(di.inst.op), di.ps2, e.v2)) return;
  di.mech.squash_reused = true;
  di.mech.squash_value = e.result;
  e.valid = false;  // one-shot
  ++hits_;
}

void SquashReuseMechanism::on_renamed(DynInst& di) {
  if (di.is_cond_branch) {
    const uint64_t rp =
        estimate_reconvergence_point(core_->program(), di.pc, di.inst);
    nrbq_.push(di.seq, di.pc, rp);
  }
  if (di.has_dest) nrbq_.on_dest_write(di.inst.rd);
}

void SquashReuseMechanism::on_mispredict_pre(DynInst& di) {
  capture_active_ = false;
  if (!di.is_cond_branch) return;
  if (!core_->mbs().is_hard(di.pc)) return;
  ++core_->stats().hard_mispredicts;
  const NrbqEntry* entry = nrbq_.find(di.seq);
  if (entry == nullptr) return;
  capture_active_ = true;
  capture_rp_ = entry->rp_pc;
  capture_mask_ = nrbq_.mask_of(di.seq);
}

void SquashReuseMechanism::on_branch_resolved(DynInst& /*di*/,
                                              bool mispredicted) {
  if (mispredicted) capture_active_ = false;
}

void SquashReuseMechanism::on_squash(DynInst& di) {
  if (di.is_cond_branch) nrbq_.on_branch_squash(di.seq);
  if (!capture_active_ || !di.completed || !reusable(di.inst)) return;
  if (di.pc < capture_rp_) return;  // before the re-convergent point
  // Control independent: no source register written between the branch and
  // the re-convergent point (CRP mask test, section 2.3.2).
  if (isa::reads_rs1(di.inst.op) &&
      (capture_mask_ & (uint64_t{1} << di.inst.rs1)) != 0) {
    return;
  }
  if (isa::reads_rs2(di.inst.op) &&
      (capture_mask_ & (uint64_t{1} << di.inst.rs2)) != 0) {
    return;
  }
  BufferEntry& e = buffer_[index_of(di.pc)];
  e.valid = true;
  e.pc = di.pc;
  e.inst = di.inst;
  e.v1 = di.v1;
  e.v2 = di.v2;
  e.result = di.result;
}

void SquashReuseMechanism::on_commit(DynInst& di) {
  if (di.is_cond_branch) nrbq_.on_branch_commit(di.seq);
  if (di.mech.squash_reused) ++core_->stats().reused_committed;
}

bool SquashReuseMechanism::on_store_commit(DynInst& /*di*/) { return false; }

}  // namespace cfir::ci
