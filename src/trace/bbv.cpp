#include "trace/bbv.hpp"

#include <algorithm>
#include <stdexcept>

#include "isa/engine.hpp"
#include "isa/isa.hpp"
#include "sim/sweep.hpp"
#include "trace/trace.hpp"

namespace cfir::trace {

BbvBuilder::BbvBuilder(uint64_t interval_len) {
  if (interval_len == 0) {
    throw std::runtime_error("BbvBuilder: interval_len must be > 0");
  }
  set_.interval_len = interval_len;
}

void BbvBuilder::step(uint64_t pc, bool is_cond_branch) {
  if (in_interval_ == set_.interval_len) flush_interval();

  // Block boundary: stream start, the instruction after a conditional
  // branch (both arms), or any PC discontinuity (jump/call/ret/taken
  // branch target).
  const bool new_block =
      !have_prev_ || prev_was_branch_ || pc != prev_pc_ + isa::kInstBytes;
  if (new_block) {
    const auto [it, inserted] =
        dim_of_.try_emplace(pc, static_cast<uint32_t>(set_.leaders.size()));
    if (inserted) set_.leaders.push_back(pc);
    cur_dim_ = it->second;
  }
  if (cur_dim_ >= current_.size()) current_.resize(cur_dim_ + 1, 0);
  ++current_[cur_dim_];
  ++in_interval_;
  ++set_.total_insts;

  prev_pc_ = pc;
  prev_was_branch_ = is_cond_branch;
  have_prev_ = true;
}

void BbvBuilder::flush_interval() {
  set_.vectors.push_back(std::move(current_));
  current_.clear();
  in_interval_ = 0;
}

BbvSet BbvBuilder::finish() {
  if (in_interval_ > 0) flush_interval();
  // Early intervals stopped growing before later blocks were discovered;
  // pad every vector to the final dimensionality.
  for (auto& v : set_.vectors) v.resize(set_.leaders.size(), 0);
  return std::move(set_);
}

BbvSet bbv_from_trace(TraceReader& reader, uint64_t interval_len) {
  BbvBuilder builder(interval_len);
  // On a CFIRTRC2 trace, fan the block decodes (CRC + column expansion —
  // the expensive part) out on the memoized sim::ThreadPool behind
  // parallel_for, in bounded waves so memory stays at a few blocks per
  // worker — the pool persists across waves, so a 1000-block trace pays
  // zero thread spawns here instead of one set per 32-block wave. The
  // records are then fed to the builder strictly in stream order: leader
  // discovery order defines the BBV dimension numbering, so the vectors
  // stay bit-identical to a sequential read.
  const size_t n_blocks = reader.block_count();
  if (n_blocks > 1) {
    constexpr size_t kWave = 32;
    std::vector<std::vector<TraceRecord>> decoded(std::min(kWave, n_blocks));
    for (size_t start = 0; start < n_blocks; start += kWave) {
      const size_t n = std::min(kWave, n_blocks - start);
      sim::parallel_for(
          n, [&](size_t i) { decoded[i] = reader.decode_block(start + i); });
      for (size_t i = 0; i < n; ++i) {
        for (const TraceRecord& rec : decoded[i]) {
          builder.step(rec.pc, rec.kind == RecordKind::kBranch);
        }
      }
    }
    return builder.finish();
  }
  TraceRecord rec;
  while (reader.next(rec)) {
    builder.step(rec.pc, rec.kind == RecordKind::kBranch);
  }
  return builder.finish();
}

BbvSet bbv_from_program(const isa::Program& program, uint64_t interval_len,
                        uint64_t max_insts) {
  BbvBuilder builder(interval_len);
  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  // kBranch events are exactly the conditional branches, so the engine's
  // event stream carries the is_cond_branch flag without a program lookup.
  isa::FunctionalEngine engine(program, memory);
  engine.set_sink([&](uint64_t, const isa::StepEvent* ev, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      builder.step(ev[i].pc, ev[i].kind == isa::EventKind::kBranch);
    }
  });
  engine.run(max_insts == 0 ? UINT64_MAX : max_insts);
  return builder.finish();
}

}  // namespace cfir::trace
