#include "sim/presets.hpp"

#include <gtest/gtest.h>

namespace cfir::sim::presets {
namespace {

TEST(Presets, Table1Defaults) {
  const core::CoreConfig cfg = table1();
  EXPECT_EQ(cfg.fetch_width, 8u);
  EXPECT_EQ(cfg.rob_size, 256u);
  EXPECT_EQ(cfg.issue_width, 8u);
  EXPECT_EQ(cfg.commit_width, 8u);
  EXPECT_EQ(cfg.lsq_size, 64u);
  EXPECT_EQ(cfg.simple_int_units, 6u);
  EXPECT_EQ(cfg.muldiv_units, 3u);
  EXPECT_EQ(cfg.mul_latency, 2u);
  EXPECT_EQ(cfg.div_latency, 12u);
  EXPECT_EQ(cfg.gshare_entries, 64u * 1024);
  // Table 1 memory hierarchy.
  EXPECT_EQ(cfg.memory.l1i.size_bytes, 64u * 1024);
  EXPECT_EQ(cfg.memory.l1i.line_bytes, 64u);
  EXPECT_EQ(cfg.memory.l1d.size_bytes, 64u * 1024);
  EXPECT_EQ(cfg.memory.l1d.assoc, 2u);
  EXPECT_EQ(cfg.memory.l1d.line_bytes, 32u);
  EXPECT_EQ(cfg.memory.l2.size_bytes, 256u * 1024);
  EXPECT_EQ(cfg.memory.l2.hit_latency, 6u);
  EXPECT_EQ(cfg.memory.l3.size_bytes, 2u * 1024 * 1024);
  EXPECT_EQ(cfg.memory.l3.hit_latency, 18u);
  EXPECT_EQ(cfg.memory.memory_latency, 100u);
  // Mechanism structures (Table 1).
  EXPECT_EQ(cfg.stride_sets, 256u);
  EXPECT_EQ(cfg.stride_ways, 4u);
  EXPECT_EQ(cfg.srsmt_sets, 64u);
  EXPECT_EQ(cfg.srsmt_ways, 4u);
  EXPECT_EQ(cfg.mbs_sets, 64u);
  EXPECT_EQ(cfg.nrbq_entries, 16u);
}

TEST(Presets, PolicyAndPortsWiring) {
  EXPECT_EQ(scal(1, 256).policy, core::Policy::kNone);
  EXPECT_FALSE(scal(1, 256).wide_bus);
  EXPECT_TRUE(wb(2, 256).wide_bus);
  EXPECT_EQ(wb(2, 256).cache_ports, 2u);
  EXPECT_EQ(ci(2, 512).policy, core::Policy::kCi);
  EXPECT_TRUE(ci(2, 512).wide_bus);
  EXPECT_EQ(ci(2, 512, 8).replicas, 8u);
  EXPECT_EQ(ci_window(1, 256).policy, core::Policy::kCiWindow);
  EXPECT_EQ(vect(2, 512).policy, core::Policy::kVect);
  EXPECT_TRUE(ci_specmem(1, 256, 768).use_spec_memory);
  EXPECT_EQ(ci_specmem(1, 256, 768).spec_memory_slots, 768u);
}

TEST(Presets, WindowScalesWithRegistersAbove256) {
  EXPECT_EQ(scal(1, 128).rob_size, 256u);
  EXPECT_EQ(scal(1, 256).rob_size, 256u);
  EXPECT_EQ(scal(1, 512).rob_size, 512u);
  EXPECT_EQ(scal(1, 768).rob_size, 768u);
  EXPECT_EQ(scal(1, kInfRegs).rob_size, kInfRegs);
}

TEST(Presets, RegisterSweepMatchesPaper) {
  const auto sweep = register_sweep();
  ASSERT_EQ(sweep.size(), 5u);
  EXPECT_EQ(sweep[0], 128u);
  EXPECT_EQ(sweep[3], 768u);
  EXPECT_EQ(reg_label(sweep[4]), "inf");
  EXPECT_EQ(reg_label(128), "128");
}

TEST(Presets, Labels) {
  EXPECT_EQ(scal(1, 256).label(), "scal1p/256r");
  EXPECT_EQ(wb(2, 512).label(), "wb2p/512r");
  EXPECT_EQ(ci(2, 512).label(), "ci2p/512r/4rep");
  EXPECT_EQ(ci_window(1, 256).label(), "ci-iw1p/256r");
  EXPECT_EQ(vect(2, 512).label(), "vect2p/512r/4rep");
  EXPECT_EQ(ci_specmem(1, 256, 768).label(), "ci-h1p/256r/4rep/768slots");
}

}  // namespace
}  // namespace cfir::sim::presets
