// Integration tests of the full control-independence mechanism on the
// paper's own example shape (Figure 1) and on targeted corner cases
// (memory coherence, DAEC, spec-memory mode, vect policy).
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "isa/assembler.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"

namespace cfir::sim {
namespace {

TEST(CiMechanism, Figure1ReusesControlIndependentWork) {
  const isa::Program p = cfir::testing::figure1_program(2048, 50, 21);
  Simulator s(presets::ci(2, 512), p);
  const auto st = s.run(2000000);
  EXPECT_TRUE(st.halted);
  // The hammock is hard; the mechanism must find and vectorize the strided
  // load and its control-independent consumer.
  EXPECT_GT(st.hard_mispredicts, 50u);
  EXPECT_GT(st.srsmt_allocs, 0u);
  EXPECT_GT(st.replicas_created, 0u);
  EXPECT_GT(st.replicas_executed, 0u);
  EXPECT_GT(st.reused_committed, 0u);
  // Correctness: the architectural safety net must never fire.
  EXPECT_EQ(st.safety_net_recoveries, 0u);
}

TEST(CiMechanism, Figure1MatchesInterpreter) {
  const isa::Program p = cfir::testing::figure1_program(1024, 50, 22);
  const DiffResult r = differential_run(presets::ci(2, 512), p, 1000000);
  EXPECT_TRUE(r.match) << r.mismatch;
}

TEST(CiMechanism, EpisodesTracked) {
  const isa::Program p = cfir::testing::figure1_program(2048, 50, 23);
  Simulator s(presets::ci(2, 512), p);
  const auto st = s.run(2000000);
  EXPECT_GT(st.ep_total, 0u);
  EXPECT_GE(st.ep_total, st.ep_ci_selected);
  EXPECT_GE(st.ep_ci_selected, st.ep_ci_reused);
  EXPECT_GT(st.ep_ci_selected, 0u);
  EXPECT_GT(st.ep_ci_reused, 0u);
}

TEST(CiMechanism, PredictableBranchesLeaveMechanismIdle) {
  // All-zero data: the hammock is perfectly biased; the MBS filters it and
  // almost no CI episodes open.
  const isa::Program p = cfir::testing::figure1_program(2048, 100, 24);
  Simulator s(presets::ci(2, 512), p);
  const auto st = s.run(2000000);
  EXPECT_LT(st.hard_mispredicts, 20u);
}

TEST(CiMechanism, CoherenceSquashOnStoreIntoVectorizedRange) {
  // A strided load stream vectorizes; a store then writes ahead of the
  // reader into the replicated range -> range check must fire.
  isa::Assembler as;
  const uint64_t a = as.reserve("a", 4096 * 8);
  std::mt19937_64 gen(5);
  for (size_t i = 0; i < 4096; ++i) {
    as.init_word(a + 8 * i, gen() % 2);
  }
  const int rIdx = 1, rV = 2, rSum = 3, rBase = 4, rEnd = 5, rZ = 6;
  const int rSt = 7, rC = 8, rT = 9, rOnes = 10, rZeros = 11;
  as.movi(rIdx, 0);
  as.movi(rSum, 0);
  as.movi(rBase, static_cast<int64_t>(a));
  as.movi(rEnd, 4096 * 8);
  as.movi(rZ, 0);
  as.movi(rC, 12345);
  as.label("loop");
  as.add(rV, rBase, rIdx);
  as.ld(rV, rV, 0, 8);          // strided load (will vectorize)
  as.beq(rV, rZ, "skip");       // hard hammock keeps MBS interested
  as.addi(rOnes, rOnes, 1);     // arms write registers the CI consumer
  as.jmp("join");               // does not read (as in Figure 1)
  as.label("skip");
  as.addi(rZeros, rZeros, 1);
  as.label("join");
  as.add(rSum, rSum, rV);       // CI consumer, strided-fed
  // Store an LCG-generated bit two elements ahead: lands inside the
  // outstanding replica range (coherence check) yet keeps the hammock
  // data-dependent and hard to predict.
  as.muli(rC, rC, 6364136223846793005LL);
  as.addi(rC, rC, 1442695040888963407LL);
  as.shrli(rT, rC, 33);
  as.andi(rT, rT, 1);
  as.add(rSt, rBase, rIdx);
  as.st(rT, rSt, 16, 8);
  as.addi(rIdx, rIdx, 8);
  as.blt(rIdx, rEnd, "loop");
  as.halt();
  const isa::Program p = as.assemble();
  Simulator s(presets::ci(2, 512), p);
  const auto st = s.run(2000000);
  EXPECT_GT(st.store_range_checks, 0u);
  EXPECT_GT(st.store_range_conflicts, 0u);
  EXPECT_EQ(st.safety_net_recoveries, 0u);
  // And the result must still be architecturally exact.
  const DiffResult r = differential_run(presets::ci(2, 512), p, 2000000);
  EXPECT_TRUE(r.match) << r.mismatch;
}

TEST(CiMechanism, SpecMemoryModeReuses) {
  const isa::Program p = cfir::testing::figure1_program(2048, 50, 25);
  Simulator s(presets::ci_specmem(2, 256, 768), p);
  const auto st = s.run(2000000);
  EXPECT_GT(st.reused_committed, 0u);
  EXPECT_GT(st.specmem_writes, 0u);
  EXPECT_GT(st.specmem_copies, 0u);
  EXPECT_EQ(st.safety_net_recoveries, 0u);
}

TEST(CiMechanism, SpecMemoryModeMatchesInterpreter) {
  const isa::Program p = cfir::testing::figure1_program(1024, 50, 26);
  const DiffResult r =
      differential_run(presets::ci_specmem(2, 256, 768), p, 1000000);
  EXPECT_TRUE(r.match) << r.mismatch;
}

TEST(CiMechanism, VectPolicyVectorizesWithoutEpisodes) {
  const isa::Program p = cfir::testing::figure1_program(2048, 50, 27);
  Simulator s(presets::vect(2, presets::kInfRegs), p);
  const auto st = s.run(2000000);
  EXPECT_GT(st.replicas_executed, 0u);
  EXPECT_GT(st.reused_committed, 0u);
  EXPECT_EQ(st.ep_total, 0u);  // no CRP episodes under vect
  EXPECT_EQ(st.safety_net_recoveries, 0u);
}

TEST(CiMechanism, VectPolicyMatchesInterpreter) {
  const isa::Program p = cfir::testing::figure1_program(1024, 50, 28);
  const DiffResult r =
      differential_run(presets::vect(2, presets::kInfRegs), p, 1000000);
  EXPECT_TRUE(r.match) << r.mismatch;
}

TEST(CiMechanism, ReplicaRegistersReleasedEventually) {
  // After the run, entries may hold registers, but the in-use count must
  // stay far below the total: DAEC and retire-reclaim keep it bounded.
  const isa::Program p = cfir::testing::figure1_program(4096, 50, 29);
  Simulator s(presets::ci(2, presets::kInfRegs), p);
  const auto st = s.run(4000000);
  EXPECT_GT(st.reused_committed, 0u);
  EXPECT_LT(st.avg_regs_in_use(), 2048.0);
}

TEST(CiMechanism, StrideBreakTriggersRevalidationNotCorruption) {
  // Alternate between two interleaved walks from the same load PC: the
  // stride predictor oscillates, validations hard-fail, entries recycle —
  // committed state must stay exact and the safety net silent.
  isa::Assembler as;
  const uint64_t a = as.reserve("a", 1024 * 8);
  for (size_t i = 0; i < 1024; ++i) as.init_word(a + 8 * i, i % 3);
  const int rI = 1, rJ = 2, rV = 3, rSum = 4, rB = 5, rN = 6, rZ = 7, rT = 8;
  as.movi(rI, 0);
  as.movi(rJ, 1024 * 8 - 8);
  as.movi(rSum, 0);
  as.movi(rB, static_cast<int64_t>(a));
  as.movi(rN, 512);
  as.movi(rZ, 0);
  as.label("loop");
  as.add(rT, rB, rI);
  as.ld(rV, rT, 0, 8);        // ascending access
  as.add(rSum, rSum, rV);
  as.add(rT, rB, rJ);
  as.ld(rV, rT, 0, 8);        // same data, descending access
  as.beq(rV, rZ, "skip");
  as.addi(rSum, rSum, 5);
  as.label("skip");
  as.add(rSum, rSum, rV);
  as.addi(rI, rI, 8);
  as.addi(rJ, rJ, -8);
  as.addi(rN, rN, -1);
  as.bne(rN, rZ, "loop");
  as.halt();
  const isa::Program p = as.assemble();
  const DiffResult r = differential_run(presets::ci(2, 512), p, 1000000);
  EXPECT_TRUE(r.match) << r.mismatch;
}

}  // namespace
}  // namespace cfir::sim
