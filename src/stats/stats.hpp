// Simulation statistics. One flat struct per run — every paper figure is
// derived from these counters (see DESIGN.md section 4 for the mapping).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/warmable.hpp"

namespace cfir::stats {

// Every additive counter of SimStats, in declaration order. merge(),
// subtract(), merge_scaled() and to_json() are all generated from this one
// list so adding a counter is a two-line change (declare it below, add it
// here). `halted` (merge = logical OR) and `regs_in_use_max` (merge = max)
// are the only non-additive fields and are handled explicitly.
#define CFIR_SIMSTATS_COUNTERS(X)                                          \
  X(cycles)                                                                \
  X(committed)                                                             \
  X(committed_loads)                                                       \
  X(committed_stores)                                                      \
  X(committed_branches)                                                    \
  X(fetched)                                                               \
  X(squashed)                                                              \
  X(cond_branches)                                                         \
  X(mispredicts)                                                           \
  X(hard_mispredicts)                                                      \
  X(ep_total)                                                              \
  X(ep_ci_selected)                                                        \
  X(ep_ci_reused)                                                          \
  X(reused_committed)                                                      \
  X(replicas_created)                                                      \
  X(replicas_executed)                                                     \
  X(validations_failed)                                                    \
  X(misvalidation_squashes)                                                \
  X(safety_net_recoveries)                                                 \
  X(srsmt_allocs)                                                          \
  X(srsmt_dealloc_daec)                                                    \
  X(srsmt_dealloc_coherence)                                               \
  X(srsmt_dealloc_replace)                                                 \
  X(l1i_accesses)                                                          \
  X(l1i_misses)                                                            \
  X(l1d_accesses)                                                          \
  X(l1d_misses)                                                            \
  X(l2_accesses)                                                           \
  X(l2_misses)                                                             \
  X(l3_accesses)                                                           \
  X(l3_misses)                                                             \
  X(wide_accesses)                                                         \
  X(loads_piggybacked)                                                     \
  X(lsq_forwards)                                                          \
  X(store_range_checks)                                                    \
  X(store_range_conflicts)                                                 \
  X(regs_in_use_accum)                                                     \
  X(reg_samples)                                                           \
  X(rename_stall_cycles)                                                   \
  X(replica_alloc_denied)                                                  \
  X(watchdog_reclaims)                                                     \
  X(stridedpc_propagations)                                                \
  X(stridedpc_overflows)                                                   \
  X(stridedpc_width_accum)                                                 \
  X(specmem_writes)                                                        \
  X(specmem_copies)                                                        \
  X(specmem_alloc_denied)

struct SimStats {
  // --- progress ----------------------------------------------------------
  uint64_t cycles = 0;
  uint64_t committed = 0;            ///< architecturally committed instructions
  uint64_t committed_loads = 0;
  uint64_t committed_stores = 0;
  uint64_t committed_branches = 0;
  uint64_t fetched = 0;              ///< instructions entering the pipeline
  uint64_t squashed = 0;             ///< fetched but never committed (specBP)
  bool halted = false;

  // --- branches ------------------------------------------------------------
  uint64_t cond_branches = 0;        ///< committed conditional branches
  uint64_t mispredicts = 0;          ///< resolved mispredictions (recovery)
  uint64_t hard_mispredicts = 0;     ///< mispredictions the MBS deems hard

  // --- control independence episodes (Figure 5) ---------------------------
  // One "episode" per hard mispredicted branch handled by the CRP.
  uint64_t ep_total = 0;
  uint64_t ep_ci_selected = 0;       ///< episodes selecting >=1 CI instruction
  uint64_t ep_ci_reused = 0;         ///< episodes whose selections led to reuse

  // --- reuse / replication (Figures 11-12) --------------------------------
  uint64_t reused_committed = 0;     ///< committed instructions fed by replicas
  uint64_t replicas_created = 0;
  uint64_t replicas_executed = 0;    ///< specCI activity
  uint64_t validations_failed = 0;   ///< SRSMT validation mismatches at decode
  uint64_t misvalidation_squashes = 0;  ///< commit-time replica/value mismatch
  uint64_t safety_net_recoveries = 0;   ///< architectural recheck firing
  uint64_t srsmt_allocs = 0;
  uint64_t srsmt_dealloc_daec = 0;
  uint64_t srsmt_dealloc_coherence = 0;
  uint64_t srsmt_dealloc_replace = 0;

  // --- memory system (Figure 8) --------------------------------------------
  uint64_t l1i_accesses = 0, l1i_misses = 0;
  uint64_t l1d_accesses = 0, l1d_misses = 0;
  uint64_t l2_accesses = 0, l2_misses = 0;
  uint64_t l3_accesses = 0, l3_misses = 0;
  uint64_t wide_accesses = 0;        ///< line-wide L1D reads issued
  uint64_t loads_piggybacked = 0;    ///< loads served by someone else's access
  uint64_t lsq_forwards = 0;

  // --- coherence (section 2.4.3) -------------------------------------------
  uint64_t store_range_checks = 0;
  uint64_t store_range_conflicts = 0;

  // --- register file (section 2.4.2, Figures 9/13) -------------------------
  uint64_t regs_in_use_accum = 0;    ///< sum over sampled cycles
  uint64_t reg_samples = 0;
  uint64_t regs_in_use_max = 0;
  uint64_t rename_stall_cycles = 0;  ///< cycles rename blocked on free list
  uint64_t replica_alloc_denied = 0; ///< replicas skipped: no registers/slots
  uint64_t watchdog_reclaims = 0;    ///< liveness guard firings (see DESIGN.md)

  // --- stridedPC propagation (Figure 4) ------------------------------------
  uint64_t stridedpc_propagations = 0;
  uint64_t stridedpc_overflows = 0;  ///< unions truncated by the per-entry cap
  uint64_t stridedpc_width_accum = 0;  ///< sum of set sizes after propagation

  // --- speculative data memory (Figure 13) ---------------------------------
  uint64_t specmem_writes = 0;
  uint64_t specmem_copies = 0;       ///< copy micro-ops inserted
  uint64_t specmem_alloc_denied = 0;

  // --- derived -------------------------------------------------------------
  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0 : static_cast<double>(committed) /
                                   static_cast<double>(cycles);
  }
  [[nodiscard]] double mispredict_rate() const {
    return cond_branches == 0
               ? 0.0
               : static_cast<double>(mispredicts) /
                     static_cast<double>(cond_branches);
  }
  [[nodiscard]] double avg_regs_in_use() const {
    return reg_samples == 0 ? 0.0
                            : static_cast<double>(regs_in_use_accum) /
                                  static_cast<double>(reg_samples);
  }
  [[nodiscard]] double avg_stridedpc_width() const {
    return stridedpc_propagations == 0
               ? 0.0
               : static_cast<double>(stridedpc_width_accum) /
                     static_cast<double>(stridedpc_propagations);
  }
  [[nodiscard]] double reuse_fraction() const {
    return committed == 0 ? 0.0
                          : static_cast<double>(reused_committed) /
                                static_cast<double>(committed);
  }

  /// Human-readable multi-line dump (examples, debugging).
  [[nodiscard]] std::string to_string() const;

  /// Accumulates `other` into this. Counters add; `regs_in_use_max` takes
  /// the max; `halted` becomes true once any contributor reached HALT (in
  /// an interval-sampled run only the final interval can). Used by the
  /// interval-sampling driver to aggregate per-interval stats, so the
  /// derived ratios (ipc(), reuse_fraction(), ...) remain meaningful on the
  /// merged result.
  SimStats& merge(const SimStats& other);

  /// Inverse of merge() for the additive counters: subtracts `other` from
  /// this. The warm-up machinery in trace::sampled_run snapshots stats at
  /// the end of the warm-up slice and subtracts them from the full-interval
  /// stats, leaving only the measured window — the subtrahend is therefore
  /// always a prefix snapshot of the minuend and underflow indicates a
  /// caller bug: debug builds assert, release builds saturate at zero.
  /// `halted` and `regs_in_use_max` are not invertible (OR / max lose
  /// information); they keep the minuend's value, which is correct for the
  /// warm-up use where the minuend covers a superset window.
  SimStats& subtract(const SimStats& other);

  /// merge() with every additive counter of `other` scaled by `weight`
  /// (rounded to nearest). Cluster-mode sampling extrapolates a full run
  /// from one representative interval per phase: each representative's
  /// stats are folded in weighted by its cluster population, so the
  /// aggregate's derived ratios estimate the full-run values.
  SimStats& merge_scaled(const SimStats& other, double weight);
};

/// Byte serialization of one SimStats block (every X-macro counter in
/// declaration order, then `halted`, then `regs_in_use_max` — all
/// little-endian via util::ByteWriter). This is the payload format of the
/// per-interval stats inside CFIRSHD1 shard-result blobs
/// (trace/shard.hpp), so shards computed on one machine deserialize
/// bit-identically on another.
void serialize(const SimStats& s, util::ByteWriter& out);
[[nodiscard]] SimStats deserialize_stats(util::ByteReader& in);

/// One measured interval's contribution to a sharded aggregate: the
/// interval's measured stats and the population weight it stands in for.
struct WeightedStats {
  SimStats stats;
  double weight = 1.0;
};

/// Merge layer of sharded sampling: folds per-interval contributions into
/// one aggregate, exactly as the in-process sampler does (merge for weight
/// 1, merge_scaled otherwise). Each contribution rounds and adds
/// independently, and integer addition / max / OR commute — so the result
/// is bit-identical for ANY ordering or grouping of the parts. That
/// order-independence is what lets intervals be farmed across shards and
/// machines and still merge back to the single-process answer
/// (tests/test_stats.cpp locks it with randomized orders).
[[nodiscard]] SimStats merge_shards(const std::vector<WeightedStats>& parts);

/// Harmonic mean, the average the paper uses for IPC across benchmarks.
[[nodiscard]] double harmonic_mean(const std::vector<double>& xs);

/// Machine-readable single-line JSON object holding every counter plus the
/// derived metrics (keys match the member names). Benches and the trace
/// tool emit this so results can be diffed / plotted without screen-scraping
/// the ASCII tables.
[[nodiscard]] std::string to_json(const SimStats& s);

}  // namespace cfir::stats
