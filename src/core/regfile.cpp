#include "core/regfile.hpp"

#include <cassert>

namespace cfir::core {

PhysRegFile::PhysRegFile(uint32_t num_regs) {
  regs_.assign(num_regs, Reg{});
  free_.reserve(num_regs);
  // Hand out low indices first (purely cosmetic in traces).
  for (int r = static_cast<int>(num_regs) - 1; r >= 0; --r) free_.push_back(r);
}

int PhysRegFile::alloc() {
  if (free_.empty()) return -1;
  const int r = free_.back();
  free_.pop_back();
  regs_[static_cast<size_t>(r)].ready = false;
  return r;
}

int PhysRegFile::alloc_replica(uint32_t reserve) {
  if (free_.size() <= reserve) return -1;
  return alloc();
}

void PhysRegFile::free_reg(int r) {
  assert(r >= 0 && r < static_cast<int>(regs_.size()));
  regs_[static_cast<size_t>(r)].ready = false;
  free_.push_back(r);
}

}  // namespace cfir::core
