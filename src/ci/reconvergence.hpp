// Re-convergent point estimation and tracking, paper section 2.3.1-2.3.2:
//
//  * RP heuristics — backward branches re-converge at the fall-through;
//    forward branches are classified by inspecting the instruction one slot
//    above the target (an unconditional forward branch there means
//    if-then-else, otherwise if-then).
//  * NRBQ — a 16-entry queue of in-flight conditional branches, each with a
//    64-bit mask of logical registers written after that branch and before
//    the next one.
//  * CRP — the current re-convergent point: RP address, R (reached) flag
//    and the accumulated write mask used to filter control-independent
//    instructions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "isa/program.hpp"

namespace cfir::ci {

/// Estimates the re-convergent point of the conditional branch at
/// `branch_pc` using the static heuristics of section 2.3.1.
[[nodiscard]] uint64_t estimate_reconvergence_point(const isa::Program& prog,
                                                    uint64_t branch_pc,
                                                    const isa::Instruction& br);

struct NrbqEntry {
  uint64_t branch_seq = 0;
  uint64_t branch_pc = 0;
  uint64_t rp_pc = 0;
  uint64_t mask = 0;   ///< logical registers written since this branch
  bool reached = false;  ///< decode passed this branch's re-convergent point
};

/// Not-Retired Branch Queue.
class Nrbq {
 public:
  explicit Nrbq(uint32_t capacity = 16) : capacity_(capacity) {}

  /// Pushes a decoded conditional branch; evicts the oldest entry when full
  /// (that branch then simply cannot seed a CRP).
  void push(uint64_t branch_seq, uint64_t branch_pc, uint64_t rp_pc);
  /// Every decoded PC: entries whose re-convergent point this is stop
  /// accumulating mask bits (the paper's mask covers writes *between* the
  /// branch and its RP — Figure 1's I11 must not disqualify itself by
  /// writing R4 after the join).
  void observe_pc(uint64_t pc);
  /// Records a register write: sets the bit in every entry that has not yet
  /// passed its re-convergent point. Each entry's mask therefore holds
  /// exactly "registers written after this branch and before its RP, on
  /// either path" — the region the CRP needs (see DESIGN.md on why the
  /// paper's OR-to-tail formulation is interpreted this way: with a literal
  /// OR the paper's own Figure 1 example would taint R4/R0 and never select
  /// I11).
  void on_dest_write(int logical);
  /// Branch left the window from the front (commit).
  void on_branch_commit(uint64_t branch_seq);
  /// Branch squashed from the back.
  void on_branch_squash(uint64_t branch_seq);

  /// The accumulated write mask of `branch_seq`'s region (CRP mask
  /// initialization of section 2.3.2). Returns 0 for unknown branches.
  [[nodiscard]] uint64_t mask_of(uint64_t branch_seq) const;
  [[nodiscard]] const NrbqEntry* find(uint64_t branch_seq) const;
  [[nodiscard]] size_t size() const { return q_.size(); }
  [[nodiscard]] uint32_t capacity() const { return capacity_; }

  /// Section 3.1: 16 entries * 8 bytes.
  [[nodiscard]] uint64_t storage_bytes() const { return capacity_ * 8; }

 private:
  uint32_t capacity_;
  std::deque<NrbqEntry> q_;
};

/// Current Re-convergent Point register.
struct Crp {
  bool active = false;
  bool reached = false;     ///< R flag
  uint64_t rp_pc = 0;
  uint64_t mask = 0;
  uint64_t branch_pc = 0;   ///< the hard mispredicted branch (episode owner)
  uint32_t select_budget = 0;  ///< instructions still inspectable past RP

  /// Section 3.1: 8 bytes PC + 8 bytes mask.
  [[nodiscard]] static uint64_t storage_bytes() { return 16; }
};

}  // namespace cfir::ci
