#include "sim/sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/pool.hpp"
#include "sim/simulator.hpp"
#include "trace/sampling.hpp"
#include "workloads/workloads.hpp"

namespace cfir::sim {

namespace {
uint64_t env_u64(const char* name, uint64_t dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  return std::strtoull(v, nullptr, 10);
}
}  // namespace

uint32_t env_scale() {
  return static_cast<uint32_t>(env_u64("CFIR_SCALE", 1));
}
int env_threads() { return static_cast<int>(env_u64("CFIR_THREADS", 0)); }
uint64_t env_max_insts() { return env_u64("CFIR_MAX_INSTS", 0); }
uint32_t env_intervals() {
  return static_cast<uint32_t>(env_u64("CFIR_INTERVALS", 1));
}

trace::SampleMode env_sample_mode() {
  const char* v = std::getenv("CFIR_SAMPLE_MODE");
  if (v == nullptr || *v == '\0' || std::string_view(v) == "uniform") {
    return trace::SampleMode::kUniform;
  }
  if (std::string_view(v) == "cluster") return trace::SampleMode::kCluster;
  throw std::runtime_error(
      std::string("CFIR_SAMPLE_MODE must be 'uniform' or 'cluster', got '") +
      v + "'");
}

uint64_t env_warmup() { return env_u64("CFIR_WARMUP", 0); }

trace::WarmMode env_warm_mode() {
  const char* v = std::getenv("CFIR_WARM_MODE");
  return trace::parse_warm_mode(v == nullptr ? "" : v);
}

uint64_t env_detail_len() { return env_u64("CFIR_DETAIL_LEN", 0); }

int env_warm_jobs() { return static_cast<int>(env_u64("CFIR_WARM_JOBS", 0)); }

isa::EngineKind env_engine_kind() { return isa::engine_kind_from_env(); }

trace::ShardSelection env_shard() {
  const char* v = std::getenv("CFIR_SHARD");
  if (v == nullptr || *v == '\0') return trace::ShardSelection{};
  return trace::parse_shard(v);
}

void parallel_for(size_t n, const std::function<void(size_t)>& fn,
                  int threads) {
  if (threads <= 0) threads = env_threads();
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads <= 0) threads = 1;
  threads = std::min<int>(threads, static_cast<int>(n));

  if (threads <= 1) {
    // Inline path: same claim semantics as the pool (every claimed index
    // runs fn; the first failure stops further claims), no pool round
    // trip. The calling thread keeps whatever tracer name it has.
    std::exception_ptr first_error;
    for (size_t i = 0; i < n && !first_error; ++i) {
      try {
        fn(i);
      } catch (...) {
        first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  // Threaded path: the memoized shared pool executes the batch —
  // `threads - 1` pool workers plus the calling thread, so the requested
  // parallelism is honored without spawning (and joining) a fresh thread
  // set per call. Exception semantics live in ThreadPool::run.
  ThreadPool::shared().run(n, fn, threads - 1);
}

std::vector<RunOutcome> run_all(const std::vector<RunSpec>& specs,
                                int threads, SweepSavings* savings) {
  obs::Span run_all_span("run_all", specs.size());
  // Interval plans depend only on (workload, scale, cap, k), never on the
  // core config, so capture each unique plan once up front (interpreter
  // passes are ~50x cheaper than detailed simulation) and share it across
  // the config columns of the grid. Unique plans are independent, so they
  // build on the pool too.
  using PlanKey = std::tuple<std::string, uint32_t, uint64_t, uint32_t,
                             uint8_t, uint64_t, uint8_t, uint64_t>;
  const auto plan_key = [](const RunSpec& spec) {
    return PlanKey{spec.workload,
                   spec.scale,
                   spec.max_insts,
                   spec.intervals,
                   static_cast<uint8_t>(spec.sample_mode),
                   spec.warmup,
                   static_cast<uint8_t>(spec.warm_mode),
                   spec.detail_len};
  };
  std::map<PlanKey, trace::IntervalPlan> plans;
  for (const RunSpec& spec : specs) {
    if (spec.intervals <= 1) continue;
    plans.try_emplace(plan_key(spec));
  }
  {
    std::vector<std::pair<const PlanKey, trace::IntervalPlan>*> slots;
    slots.reserve(plans.size());
    for (auto& entry : plans) slots.push_back(&entry);
    parallel_for(
        slots.size(),
        [&](size_t i) {
          const auto& [workload, scale, max_insts, intervals, mode, warmup,
                       warm_mode, detail_len] = slots[i]->first;
          obs::Span plan_span("plan", i);
          try {
            const isa::Program program = workloads::build(workload, scale);
            if (static_cast<trace::SampleMode>(mode) ==
                trace::SampleMode::kCluster) {
              trace::ClusterPlanOptions opts;
              opts.n_intervals = intervals;
              opts.warmup = warmup;
              opts.warm_mode = static_cast<trace::WarmMode>(warm_mode);
              opts.detail_len = detail_len;
              opts.max_insts = max_insts;
              slots[i]->second = trace::plan_cluster_intervals(program, opts);
            } else {
              slots[i]->second = trace::plan_intervals(
                  program, intervals, max_insts, warmup,
                  static_cast<trace::WarmMode>(warm_mode), detail_len);
            }
          } catch (const std::exception& e) {
            throw std::runtime_error("interval planning for '" + workload +
                                     "' (scale " + std::to_string(scale) +
                                     ") failed: " + e.what());
          }
        },
        threads);
  }

  std::vector<RunOutcome> out(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) out[i].spec = specs[i];

  // Monolithic grid points are embarrassingly parallel: one pool item each.
  std::vector<size_t> mono;
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].intervals <= 1) mono.push_back(i);
  }
  parallel_for(
      mono.size(),
      [&](size_t m) {
        const size_t i = mono[m];
        const RunSpec& spec = specs[i];
        try {
          isa::Program program = workloads::build(spec.workload, spec.scale);
          const uint64_t cap =
              spec.max_insts == 0 ? UINT64_MAX : spec.max_insts;
          Simulator sim(spec.config, std::move(program));
          const obs::Stopwatch clock;
          {
            obs::Span detail_span("detail", i);
            out[i].stats = sim.run(cap);
          }
          const uint64_t wall_us = clock.elapsed_us();
          out[i].wall_ms = static_cast<double>(wall_us) / 1000.0;
          out[i].detailed_insts = out[i].stats.committed;
          obs::Registry& reg = obs::Registry::instance();
          reg.histogram("sweep.mono_us").observe(wall_us);
          reg.counter("shard.detail_insts").add(out[i].stats.committed);
        } catch (const std::exception& e) {
          throw std::runtime_error(std::string("run '") + spec.workload +
                                   "/" + spec.config_name +
                                   "' failed: " + e.what());
        }
      },
      threads);

  // Sampled grid points sharing one plan (and one shard selection) execute
  // as a single multi-config run_shard: every config column rides the same
  // checkpoints and, under functional warming, the same streamed gaps —
  // the whole point of the config-independent plan / per-config binding
  // split (docs/sharding.md). Each group saturates the pool internally
  // over (interval × config) pairs; columns are bit-identical to running
  // each spec alone.
  std::map<std::tuple<PlanKey, uint32_t, uint32_t>, std::vector<size_t>>
      groups;
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].intervals <= 1) continue;
    groups[{plan_key(specs[i]), specs[i].shard_index,
            std::max<uint32_t>(1, specs[i].shard_count)}]
        .push_back(i);
  }
  if (savings != nullptr) {
    *savings = SweepSavings{};
    savings->plans = plans.size();
    for (const auto& [key, plan] : plans) {
      savings->checkpoints += plan.checkpoints.size();
    }
  }
  for (const auto& [key, members] : groups) {
    const RunSpec& lead = specs[members.front()];
    try {
      const trace::IntervalPlan& plan = plans.at(std::get<0>(key));
      const trace::ShardSelection shard{std::get<1>(key), std::get<2>(key)};
      const isa::Program program =
          workloads::build(lead.workload, lead.scale);
      std::vector<trace::ConfigBinding> bindings;
      bindings.reserve(members.size());
      for (const size_t i : members) {
        trace::ConfigBinding b;
        b.name = specs[i].config_name;
        b.config = specs[i].config;
        bindings.push_back(std::move(b));
      }
      const trace::ShardResult result =
          trace::run_shard(bindings, program, plan, shard, threads);
      for (size_t c = 0; c < members.size(); ++c) {
        RunOutcome& o = out[members[c]];
        std::vector<stats::WeightedStats> parts;
        parts.reserve(result.intervals.size());
        o.phases.reserve(result.intervals.size());
        for (const trace::ShardResult::Interval& iv : result.intervals) {
          parts.push_back({iv.stats[c], iv.weight});
          const uint64_t wall_us = iv.wall_us.empty() ? 0 : iv.wall_us[c];
          o.phases.push_back({iv.start_inst, iv.length, iv.weight,
                              iv.stats[c],
                              static_cast<double>(wall_us) / 1000.0});
          o.wall_ms += static_cast<double>(wall_us) / 1000.0;
        }
        o.detailed_insts = result.configs[c].detailed_insts;
        o.stats = stats::merge_shards(parts);
        if (shard.count == 1) {
          // Complete coverage: report `halted` like a monolithic run even
          // when no representative window contains HALT.
          o.stats.halted = o.stats.halted || result.ran_to_halt;
        }
      }
      if (savings != nullptr) {
        savings->sampled_points += members.size();
        savings->checkpoints_per_column +=
            plan.checkpoints.size() * members.size();
        savings->warmed_insts += result.warmed_insts;
        savings->warmed_insts_per_column +=
            result.warmed_insts * members.size();
      }
    } catch (const std::exception& e) {
      throw std::runtime_error(
          std::string("run '") + lead.workload + "/" + lead.config_name +
          "' (shared plan, " + std::to_string(members.size()) +
          " config columns) failed: " + e.what());
    }
  }
  return out;
}

}  // namespace cfir::sim
