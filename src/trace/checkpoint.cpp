#include "trace/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "isa/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "trace/blob.hpp"
#include "trace/errors.hpp"
#include "trace/io.hpp"
#include "util/warmable.hpp"

namespace cfir::trace {

namespace {

bool all_zero(const uint8_t* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (data[i] != 0) return false;
  }
  return true;
}

Checkpoint snapshot(const isa::FunctionalEngine& engine,
                    const mem::MainMemory& memory) {
  Checkpoint ck;
  ck.pc = engine.pc();
  ck.executed = engine.executed();
  ck.regs = engine.regs();
  ck.memory = memory.clone();
  return ck;
}

}  // namespace

void Checkpoint::save(const std::string& path, bool include_warm) const {
  obs::Span span("checkpoint.save");
  const obs::Stopwatch clock;
  // Stream pages straight to the file (memory images can be large) and
  // append the CRC footer with the chunked helper afterwards, like
  // TraceWriter::finish — never the whole payload in one buffer.
  const bool with_warm = include_warm && has_warm();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("Checkpoint: cannot open " + path);
  if (with_warm) {
    out.write(kCheckpointMagicV2, sizeof(kCheckpointMagicV2));
    io::put_raw(out, kCheckpointVersionWarm);
  } else {
    out.write(kCheckpointMagic, sizeof(kCheckpointMagic));
    io::put_raw(out, kCheckpointVersion);
  }
  io::put_raw(out, uint32_t{0});  // reserved
  io::put_raw(out, pc);
  io::put_raw(out, executed);
  for (const uint64_t r : regs) io::put_raw(out, r);

  std::vector<std::pair<uint64_t, const uint8_t*>> pages;
  memory.for_each_page([&](uint64_t base_addr, const uint8_t* data) {
    if (!all_zero(data, mem::MainMemory::kPageSize)) {
      pages.emplace_back(base_addr, data);
    }
  });
  io::put_raw(out, static_cast<uint64_t>(pages.size()));
  for (const auto& [base_addr, data] : pages) {
    io::put_raw(out, base_addr);
    out.write(reinterpret_cast<const char*>(data),
              mem::MainMemory::kPageSize);
  }
  if (with_warm) {
    io::put_raw(out, static_cast<uint64_t>(warm.size()));
    out.write(reinterpret_cast<const char*>(warm.data()),
              static_cast<std::streamsize>(warm.size()));
  }
  out.close();
  if (!out) throw std::runtime_error("Checkpoint: write failed for " + path);
  append_crc_footer(path);
  obs::Registry::instance()
      .histogram("checkpoint.save_us")
      .observe(clock.elapsed_us());
}

Checkpoint Checkpoint::load(const std::string& path) {
  obs::Span span("checkpoint.load");
  const obs::Stopwatch clock;
  const std::vector<uint8_t> bytes =
      read_blob_file(path, "Checkpoint", /*require_footer=*/false);
  if (bytes.size() < sizeof(kCheckpointMagic)) {
    throw CorruptFileError("Checkpoint: truncated file " + path);
  }
  const bool v1 =
      std::memcmp(bytes.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) ==
      0;
  const bool v2 = std::memcmp(bytes.data(), kCheckpointMagicV2,
                              sizeof(kCheckpointMagicV2)) == 0;
  if (!v1 && !v2) {
    throw BadMagicError("Checkpoint: bad magic in " + path);
  }
  try {
    util::ByteReader in(bytes.data() + sizeof(kCheckpointMagic),
                        bytes.size() - sizeof(kCheckpointMagic));
    const uint32_t version = in.u32();
    if (version != (v2 ? kCheckpointVersionWarm : kCheckpointVersion)) {
      throw VersionError("Checkpoint: unsupported version " +
                         std::to_string(version) + " in " + path);
    }
    (void)in.u32();  // reserved

    Checkpoint ck;
    ck.pc = in.u64();
    ck.executed = in.u64();
    for (auto& r : ck.regs) r = in.u64();
    const uint64_t page_count = in.u64();
    std::vector<uint8_t> buf(mem::MainMemory::kPageSize);
    for (uint64_t p = 0; p < page_count; ++p) {
      const uint64_t base_addr = in.u64();
      // ByteReader bounds-checks every read, so a corrupt page_count fails
      // on the first out-of-range page instead of spinning.
      in.bytes(buf.data(), buf.size());
      ck.memory.write_block(base_addr, buf.data(), buf.size());
    }
    if (v2) {
      const uint64_t warm_size = in.u64();
      if (warm_size > in.remaining()) {
        throw CorruptFileError("Checkpoint: truncated warm state in " + path);
      }
      ck.warm.resize(warm_size);
      in.bytes(ck.warm.data(), warm_size);
    }
    obs::Registry::instance()
        .histogram("checkpoint.load_us")
        .observe(clock.elapsed_us());
    return ck;
  } catch (const VersionError&) {
    throw;
  } catch (const CorruptFileError&) {
    throw;
  } catch (const std::exception&) {
    // ByteReader underflow: the payload ended before the structure did.
    throw CorruptFileError("Checkpoint: truncated file " + path);
  }
}

Checkpoint fast_forward(const isa::Program& program, uint64_t n_insts) {
  obs::Span span("checkpoint.capture", n_insts);
  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  // Pure architectural fast-forward: no sink attached, so the cached
  // engine runs its no-collection loop.
  isa::FunctionalEngine engine(program, memory);
  engine.run(n_insts);
  return snapshot(engine, memory);
}

std::vector<Checkpoint> interval_checkpoints(
    const isa::Program& program, const std::vector<uint64_t>& boundaries) {
  obs::Span span("checkpoint.capture", boundaries.size());
  if (!std::is_sorted(boundaries.begin(), boundaries.end())) {
    throw std::runtime_error("interval_checkpoints: boundaries not sorted");
  }
  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  isa::FunctionalEngine engine(program, memory);

  std::vector<Checkpoint> out;
  out.reserve(boundaries.size());
  for (const uint64_t boundary : boundaries) {
    engine.run_to(boundary);
    out.push_back(snapshot(engine, memory));
  }
  return out;
}

}  // namespace cfir::trace
