// Logical-to-physical rename map. Recovery is walk-based: each DynInst
// records the mapping it replaced, and squash restores youngest-first.
#pragma once

#include <array>
#include <cstdint>

#include "isa/isa.hpp"

namespace cfir::core {

class RenameMap {
 public:
  RenameMap() { map_.fill(-1); }

  [[nodiscard]] int lookup(int logical) const {
    return map_[static_cast<size_t>(logical)];
  }
  /// Installs a new mapping; returns the replaced physical register.
  int remap(int logical, int phys) {
    const int old = map_[static_cast<size_t>(logical)];
    map_[static_cast<size_t>(logical)] = phys;
    return old;
  }
  void restore(int logical, int phys) {
    map_[static_cast<size_t>(logical)] = phys;
  }

 private:
  std::array<int, isa::kNumLogicalRegs> map_;
};

}  // namespace cfir::core
