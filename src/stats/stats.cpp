#include "stats/stats.hpp"

#include <algorithm>
#include <sstream>

namespace cfir::stats {

std::string SimStats::to_string() const {
  std::ostringstream os;
  os << "cycles=" << cycles << " committed=" << committed
     << " IPC=" << ipc() << '\n'
     << "fetched=" << fetched << " squashed(specBP)=" << squashed
     << " replicas(specCI)=" << replicas_executed << '\n'
     << "cond_branches=" << cond_branches << " mispredicts=" << mispredicts
     << " rate=" << mispredict_rate() << '\n'
     << "CI episodes=" << ep_total << " selected=" << ep_ci_selected
     << " reused=" << ep_ci_reused << '\n'
     << "reused_committed=" << reused_committed
     << " (" << 100.0 * reuse_fraction() << "% of committed)\n"
     << "L1D accesses=" << l1d_accesses << " misses=" << l1d_misses
     << " wide=" << wide_accesses << " piggybacked=" << loads_piggybacked
     << '\n'
     << "store range checks=" << store_range_checks
     << " conflicts=" << store_range_conflicts << '\n'
     << "avg regs in use=" << avg_regs_in_use()
     << " max=" << regs_in_use_max
     << " rename stalls=" << rename_stall_cycles << '\n'
     << "validations failed=" << validations_failed
     << " misvalidation squashes=" << misvalidation_squashes
     << " safety net=" << safety_net_recoveries << '\n';
  return os.str();
}

SimStats& SimStats::merge(const SimStats& other) {
  cycles += other.cycles;
  committed += other.committed;
  committed_loads += other.committed_loads;
  committed_stores += other.committed_stores;
  committed_branches += other.committed_branches;
  fetched += other.fetched;
  squashed += other.squashed;
  halted = halted || other.halted;

  cond_branches += other.cond_branches;
  mispredicts += other.mispredicts;
  hard_mispredicts += other.hard_mispredicts;

  ep_total += other.ep_total;
  ep_ci_selected += other.ep_ci_selected;
  ep_ci_reused += other.ep_ci_reused;

  reused_committed += other.reused_committed;
  replicas_created += other.replicas_created;
  replicas_executed += other.replicas_executed;
  validations_failed += other.validations_failed;
  misvalidation_squashes += other.misvalidation_squashes;
  safety_net_recoveries += other.safety_net_recoveries;
  srsmt_allocs += other.srsmt_allocs;
  srsmt_dealloc_daec += other.srsmt_dealloc_daec;
  srsmt_dealloc_coherence += other.srsmt_dealloc_coherence;
  srsmt_dealloc_replace += other.srsmt_dealloc_replace;

  l1i_accesses += other.l1i_accesses;
  l1i_misses += other.l1i_misses;
  l1d_accesses += other.l1d_accesses;
  l1d_misses += other.l1d_misses;
  l2_accesses += other.l2_accesses;
  l2_misses += other.l2_misses;
  l3_accesses += other.l3_accesses;
  l3_misses += other.l3_misses;
  wide_accesses += other.wide_accesses;
  loads_piggybacked += other.loads_piggybacked;
  lsq_forwards += other.lsq_forwards;

  store_range_checks += other.store_range_checks;
  store_range_conflicts += other.store_range_conflicts;

  regs_in_use_accum += other.regs_in_use_accum;
  reg_samples += other.reg_samples;
  regs_in_use_max = std::max(regs_in_use_max, other.regs_in_use_max);
  rename_stall_cycles += other.rename_stall_cycles;
  replica_alloc_denied += other.replica_alloc_denied;
  watchdog_reclaims += other.watchdog_reclaims;

  stridedpc_propagations += other.stridedpc_propagations;
  stridedpc_overflows += other.stridedpc_overflows;
  stridedpc_width_accum += other.stridedpc_width_accum;

  specmem_writes += other.specmem_writes;
  specmem_copies += other.specmem_copies;
  specmem_alloc_denied += other.specmem_alloc_denied;
  return *this;
}

std::string to_json(const SimStats& s) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  const auto num = [&](const char* key, auto value) {
    if (!first) os << ',';
    first = false;
    os << '"' << key << "\":" << value;
  };
  num("cycles", s.cycles);
  num("committed", s.committed);
  num("committed_loads", s.committed_loads);
  num("committed_stores", s.committed_stores);
  num("committed_branches", s.committed_branches);
  num("fetched", s.fetched);
  num("squashed", s.squashed);
  num("halted", s.halted ? "true" : "false");
  num("cond_branches", s.cond_branches);
  num("mispredicts", s.mispredicts);
  num("hard_mispredicts", s.hard_mispredicts);
  num("ep_total", s.ep_total);
  num("ep_ci_selected", s.ep_ci_selected);
  num("ep_ci_reused", s.ep_ci_reused);
  num("reused_committed", s.reused_committed);
  num("replicas_created", s.replicas_created);
  num("replicas_executed", s.replicas_executed);
  num("validations_failed", s.validations_failed);
  num("misvalidation_squashes", s.misvalidation_squashes);
  num("safety_net_recoveries", s.safety_net_recoveries);
  num("srsmt_allocs", s.srsmt_allocs);
  num("srsmt_dealloc_daec", s.srsmt_dealloc_daec);
  num("srsmt_dealloc_coherence", s.srsmt_dealloc_coherence);
  num("srsmt_dealloc_replace", s.srsmt_dealloc_replace);
  num("l1i_accesses", s.l1i_accesses);
  num("l1i_misses", s.l1i_misses);
  num("l1d_accesses", s.l1d_accesses);
  num("l1d_misses", s.l1d_misses);
  num("l2_accesses", s.l2_accesses);
  num("l2_misses", s.l2_misses);
  num("l3_accesses", s.l3_accesses);
  num("l3_misses", s.l3_misses);
  num("wide_accesses", s.wide_accesses);
  num("loads_piggybacked", s.loads_piggybacked);
  num("lsq_forwards", s.lsq_forwards);
  num("store_range_checks", s.store_range_checks);
  num("store_range_conflicts", s.store_range_conflicts);
  num("regs_in_use_accum", s.regs_in_use_accum);
  num("reg_samples", s.reg_samples);
  num("regs_in_use_max", s.regs_in_use_max);
  num("rename_stall_cycles", s.rename_stall_cycles);
  num("replica_alloc_denied", s.replica_alloc_denied);
  num("watchdog_reclaims", s.watchdog_reclaims);
  num("stridedpc_propagations", s.stridedpc_propagations);
  num("stridedpc_overflows", s.stridedpc_overflows);
  num("stridedpc_width_accum", s.stridedpc_width_accum);
  num("specmem_writes", s.specmem_writes);
  num("specmem_copies", s.specmem_copies);
  num("specmem_alloc_denied", s.specmem_alloc_denied);
  num("ipc", s.ipc());
  num("mispredict_rate", s.mispredict_rate());
  num("avg_regs_in_use", s.avg_regs_in_use());
  num("avg_stridedpc_width", s.avg_stridedpc_width());
  num("reuse_fraction", s.reuse_fraction());
  os << '}';
  return os.str();
}

double harmonic_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double denom = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    denom += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / denom;
}

}  // namespace cfir::stats
