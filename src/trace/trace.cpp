#include "trace/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "mem/main_memory.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "trace/blob.hpp"
#include "trace/errors.hpp"
#include "trace/io.hpp"
#include "trace/trace_v2.hpp"

namespace cfir::trace {

namespace {

// Header field offsets (see the format comment in trace.hpp).
constexpr std::streamoff kOffRecordCount = 16;
constexpr std::streamoff kOffFinalDigest = 32;
constexpr std::streamoff kOffFinalRegs = 40;

constexpr uint64_t zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
constexpr int64_t unzigzag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

constexpr uint8_t kKindMask = 0x3;
constexpr uint8_t kTakenBit = 0x4;
constexpr int kSizeShift = 3;

uint8_t log2_size(uint8_t bytes) {
  switch (bytes) {
    case 1: return 0;
    case 2: return 1;
    case 4: return 2;
    default: return 3;
  }
}

using io::get_raw;
using io::put_raw;

}  // namespace

std::string env_trace_dir() {
  const char* v = std::getenv("CFIR_TRACE_DIR");
  return (v == nullptr || *v == '\0') ? std::string(".") : std::string(v);
}

TraceFormat trace_format_from_env() {
  const char* v = std::getenv("CFIR_TRACE_FORMAT");
  if (v == nullptr || *v == '\0' || std::strcmp(v, "v2") == 0) {
    return TraceFormat::kV2;
  }
  if (std::strcmp(v, "v1") == 0) return TraceFormat::kV1;
  throw std::runtime_error(
      std::string("CFIR_TRACE_FORMAT must be 'v1' or 'v2', got '") + v +
      "'");
}

// ---------------------------------------------------------------------------
// TraceWriter
// ---------------------------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path, const TraceMeta& meta,
                         TraceFormat format, uint32_t block_len)
    : format_(format),
      path_(path),
      prev_pc_(meta.base_pc),
      base_pc_(meta.base_pc) {
  if (format_ == TraceFormat::kV2) {
    v2_ = std::make_unique<v2::BlockWriter>(
        path, meta, block_len == 0 ? kTraceBlockLen : block_len);
    return;
  }
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("TraceWriter: cannot open " + path);
  }
  out_.write(kTraceMagic, sizeof(kTraceMagic));
  put_raw(out_, kTraceVersion);
  put_raw(out_, uint32_t{0});  // reserved
  put_raw(out_, kUnfinishedRecordCount);  // patched by finish()
  put_raw(out_, meta.base_pc);
  put_raw(out_, uint64_t{0});  // final_digest, patched by finish()
  for (int i = 0; i < isa::kNumLogicalRegs; ++i) put_raw(out_, uint64_t{0});
  put_raw(out_, meta.scale);
  put_raw(out_, static_cast<uint32_t>(meta.workload.size()));
  out_.write(meta.workload.data(),
             static_cast<std::streamsize>(meta.workload.size()));
}

TraceWriter::~TraceWriter() {
  if (!finished_ && out_.is_open()) {
    // Unfinished traces keep the sentinel record count written at open, so
    // TraceReader rejects them instead of reading a truncated stream.
    out_.close();
  }
}

void TraceWriter::put_varint(uint64_t v) {
  while (v >= 0x80) {
    out_.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out_.put(static_cast<char>(v));
}

void TraceWriter::append(const TraceRecord& rec) {
  if (v2_) {
    v2_->append(rec);
    ++records_;
    return;
  }
  uint8_t tag = static_cast<uint8_t>(rec.kind) & kKindMask;
  if (rec.kind == RecordKind::kBranch && rec.taken) tag |= kTakenBit;
  if (rec.kind == RecordKind::kLoad || rec.kind == RecordKind::kStore) {
    tag |= static_cast<uint8_t>(log2_size(rec.size) << kSizeShift);
  }
  out_.put(static_cast<char>(tag));

  const uint64_t pred = have_prev_ ? prev_pc_ + isa::kInstBytes : base_pc_;
  put_varint(zigzag(static_cast<int64_t>(rec.pc - pred)));
  prev_pc_ = rec.pc;
  have_prev_ = true;

  if (rec.kind == RecordKind::kBranch) {
    put_varint(zigzag(
        static_cast<int64_t>(rec.next_pc - (rec.pc + isa::kInstBytes))));
  } else if (rec.kind == RecordKind::kLoad ||
             rec.kind == RecordKind::kStore) {
    put_varint(zigzag(static_cast<int64_t>(rec.addr - last_addr_)));
    last_addr_ = rec.addr;
  }
  ++records_;
}

void TraceWriter::finish(
    const std::array<uint64_t, isa::kNumLogicalRegs>& final_regs,
    uint64_t final_digest) {
  if (finished_) return;
  if (v2_) {
    v2_->finish(final_regs, final_digest);
    finished_ = true;
    return;
  }
  out_.seekp(kOffRecordCount);
  put_raw(out_, records_);
  out_.seekp(kOffFinalDigest);
  put_raw(out_, final_digest);
  out_.seekp(kOffFinalRegs);
  for (const uint64_t r : final_regs) put_raw(out_, r);
  out_.close();
  if (!out_) throw std::runtime_error("TraceWriter: write failed");
  // The checksum covers the patched header, so it can only be computed now
  // that the bytes are final.
  append_crc_footer(path_);
  finished_ = true;
}

// ---------------------------------------------------------------------------
// TraceReader
// ---------------------------------------------------------------------------

TraceReader::TraceReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_) throw std::runtime_error("TraceReader: cannot open " + path);
  // Sniff the magic to pick the codec. v2 validates per block + via the
  // index CRC, so only the v1 path verifies the whole-file footer — that
  // keeps a seeked v2 open from checksumming payload it never decodes.
  char magic[sizeof(kTraceMagic)] = {};
  in_.read(magic, sizeof(magic));
  if (!in_) throw BadMagicError("TraceReader: bad magic in " + path);
  if (std::memcmp(magic, kTraceMagicV2, sizeof(magic)) == 0) {
    in_.close();
    version_ = kTraceVersionV2;
    v2_ = std::make_unique<v2::FileView>(v2::open_file(path));
    meta_ = v2_->meta;
    record_count_ = v2_->record_count;
    final_digest_ = v2_->final_digest;
    final_regs_ = v2_->final_regs;
    open_us_ = std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
                   .count();
    return;
  }
  if (std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0) {
    throw BadMagicError("TraceReader: bad magic in " + path);
  }
  // Verify the CRC footer (when present) before decoding anything; the
  // record stream below is bounded by record_count, so the footer bytes are
  // never consumed as records.
  verify_crc_footer(path, "TraceReader");
  const uint32_t version = get_raw<uint32_t>(in_);
  if (version != kTraceVersion) {
    throw VersionError("TraceReader: unsupported version " +
                       std::to_string(version) + " in " + path);
  }
  (void)get_raw<uint32_t>(in_);  // reserved
  record_count_ = get_raw<uint64_t>(in_);
  if (record_count_ == kUnfinishedRecordCount) {
    throw std::runtime_error(
        "TraceReader: unfinished trace (recording was interrupted before "
        "finish()) in " + path);
  }
  meta_.base_pc = get_raw<uint64_t>(in_);
  final_digest_ = get_raw<uint64_t>(in_);
  for (auto& r : final_regs_) r = get_raw<uint64_t>(in_);
  meta_.scale = get_raw<uint32_t>(in_);
  const uint32_t name_len = get_raw<uint32_t>(in_);
  // Workload names are short identifiers; a large length means the header
  // bytes are garbage — fail cleanly instead of attempting the allocation.
  if (name_len > 4096) {
    throw std::runtime_error("TraceReader: corrupt header (name length " +
                             std::to_string(name_len) + ") in " + path);
  }
  meta_.workload.resize(name_len);
  in_.read(meta_.workload.data(), name_len);
  if (!in_) throw std::runtime_error("TraceReader: truncated header");
  prev_pc_ = meta_.base_pc;
  data_start_ = in_.tellg();
  open_us_ = std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count();
}

TraceReader::~TraceReader() = default;

uint64_t TraceReader::get_varint() {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int c = in_.get();
    if (c == std::char_traits<char>::eof()) {
      throw std::runtime_error("TraceReader: truncated varint");
    }
    v |= static_cast<uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) throw std::runtime_error("TraceReader: varint overflow");
  }
  return v;
}

void TraceReader::drain_telemetry() {
  // Decode-throughput telemetry, settled once per fully drained stream
  // (never per record — next() is the replay hot path). v2 counts its
  // records/bytes per decoded block instead, so only the histogram is
  // shared.
  if (telemetry_done_) return;
  telemetry_done_ = true;
  const int64_t now_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  obs::Registry& reg = obs::Registry::instance();
  if (version_ == kTraceVersion) {
    const auto pos = in_.tellg();
    reg.counter("trace.decode_records").add(record_count_);
    if (pos > 0) {
      reg.counter("trace.decode_bytes").add(static_cast<uint64_t>(pos));
    }
  }
  reg.histogram("trace.decode_us")
      .observe(static_cast<uint64_t>(std::max<int64_t>(
          0, now_us - open_us_)));
}

bool TraceReader::next(TraceRecord& out) {
  if (read_ >= record_count_) {
    drain_telemetry();
    return false;
  }
  if (v2_) {
    // Serve out of the cached block, decoding the covering block on
    // demand — a seek_to only pays for blocks it actually reads into.
    if (cur_block_ == SIZE_MAX ||
        read_ < v2_->blocks[cur_block_].first_record ||
        read_ >= v2_->blocks[cur_block_].first_record +
                     v2_->blocks[cur_block_].count) {
      const auto it = std::upper_bound(
          v2_->blocks.begin(), v2_->blocks.end(), read_,
          [](uint64_t r, const v2::BlockIndexEntry& e) {
            return r < e.first_record;
          });
      cur_block_ = static_cast<size_t>(it - v2_->blocks.begin()) - 1;
      block_cache_ = v2::decode_block(*v2_, cur_block_);
    }
    out = block_cache_[read_ - v2_->blocks[cur_block_].first_record];
    ++read_;
    return true;
  }
  const int tag_c = in_.get();
  if (tag_c == std::char_traits<char>::eof()) {
    throw std::runtime_error("TraceReader: truncated record stream");
  }
  const uint8_t tag = static_cast<uint8_t>(tag_c);
  out = TraceRecord{};
  out.kind = static_cast<RecordKind>(tag & kKindMask);

  const uint64_t pred = have_prev_ ? prev_pc_ + isa::kInstBytes
                                   : meta_.base_pc;
  out.pc = pred + static_cast<uint64_t>(unzigzag(get_varint()));
  prev_pc_ = out.pc;
  have_prev_ = true;

  if (out.kind == RecordKind::kBranch) {
    out.taken = (tag & kTakenBit) != 0;
    out.next_pc = out.pc + isa::kInstBytes +
                  static_cast<uint64_t>(unzigzag(get_varint()));
  } else if (out.kind == RecordKind::kLoad ||
             out.kind == RecordKind::kStore) {
    out.size = static_cast<uint8_t>(1u << ((tag >> kSizeShift) & 0x3));
    out.addr =
        last_addr_ + static_cast<uint64_t>(unzigzag(get_varint()));
    last_addr_ = out.addr;
  }
  ++read_;
  return true;
}

void TraceReader::seek_to(uint64_t inst_index) {
  if (inst_index > record_count_) {
    throw std::out_of_range(
        "TraceReader::seek_to(" + std::to_string(inst_index) +
        ") past record count " + std::to_string(record_count_));
  }
  if (v2_ || inst_index == read_) {
    // v2 repositions in O(1); next() finds and decodes the covering block.
    read_ = inst_index;
    return;
  }
  // v1 has no index: decode forward, rewinding first when the target is
  // behind. Correct (and the reason the interface works on legacy files),
  // just O(prefix).
  if (inst_index < read_) {
    in_.clear();
    in_.seekg(data_start_);
    read_ = 0;
    prev_pc_ = meta_.base_pc;
    have_prev_ = false;
    last_addr_ = 0;
  }
  TraceRecord scratch;
  while (read_ < inst_index && next(scratch)) {
  }
}

size_t TraceReader::block_count() const {
  return v2_ ? v2_->blocks.size() : 0;
}

uint32_t TraceReader::block_len() const { return v2_ ? v2_->block_len : 0; }

uint64_t TraceReader::block_first_record(size_t b) const {
  if (!v2_ || b >= v2_->blocks.size()) {
    throw std::out_of_range("TraceReader::block_first_record(" +
                            std::to_string(b) + ")");
  }
  return v2_->blocks[b].first_record;
}

std::vector<TraceRecord> TraceReader::decode_block(size_t b) const {
  if (!v2_) {
    throw std::logic_error(
        "TraceReader::decode_block: v1 traces have no blocks");
  }
  return v2::decode_block(*v2_, b);
}

std::array<uint64_t, kTraceV2Columns> TraceReader::column_bytes() const {
  return v2_ ? v2::column_bytes(*v2_)
             : std::array<uint64_t, kTraceV2Columns>{};
}

// ---------------------------------------------------------------------------
// Capture / replay drivers
// ---------------------------------------------------------------------------

namespace {

/// Wires one interpreter step into one TraceRecord. The interpreter fires
/// on_branch / on_mem inside the step and on_step at the end, so the
/// observers stash details and on_step emits.
class StepRecorder {
 public:
  explicit StepRecorder(isa::Interpreter& interp) : interp_(interp) {
    interp_.on_branch = [this](uint64_t pc, bool taken, uint64_t target) {
      pending_.kind = RecordKind::kBranch;
      pending_.taken = taken;
      pending_.next_pc = target;
      (void)pc;
    };
    interp_.on_mem = [this](uint64_t pc, uint64_t addr, int bytes,
                            bool is_store) {
      pending_.kind = is_store ? RecordKind::kStore : RecordKind::kLoad;
      pending_.addr = addr;
      pending_.size = static_cast<uint8_t>(bytes);
      (void)pc;
    };
    interp_.on_step = [this](uint64_t pc, uint64_t next_pc) {
      pending_.pc = pc;
      if (pending_.kind == RecordKind::kBranch) pending_.next_pc = next_pc;
      if (sink) sink(pending_);
      pending_ = TraceRecord{};
    };
  }

  std::function<void(const TraceRecord&)> sink;

 private:
  isa::Interpreter& interp_;
  TraceRecord pending_;
};

}  // namespace

isa::InterpResult record_interpreter(const isa::Program& program,
                                     const std::string& path,
                                     const TraceMeta& meta,
                                     uint64_t max_insts, TraceFormat format,
                                     uint32_t block_len) {
  obs::Span span("trace.record");
  TraceMeta m = meta;
  m.base_pc = program.base();
  TraceWriter writer(path, m, format, block_len);

  // Capture runs on the CFIR_ENGINE-selected functional engine; the cached
  // engine emits the identical record stream per-block instead of
  // per-instruction, so the trace bytes match the switch oracle exactly
  // (CI byte-diffs the two).
  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  isa::FunctionalEngine engine(program, memory);
  engine.set_sink([&](uint64_t, const isa::StepEvent* ev, size_t n) {
    for (size_t i = 0; i < n; ++i) writer.append(to_trace_record(ev[i]));
  });
  engine.run(max_insts);

  isa::InterpResult r;
  r.executed = engine.executed();
  r.halted = engine.halted();
  r.regs = engine.regs();
  r.mem_digest = memory.digest();
  writer.finish(r.regs, r.mem_digest);
  return r;
}

ReplayResult replay_trace(const isa::Program& program,
                          const std::string& path) {
  TraceReader reader(path);
  return replay_trace(program, reader);
}

ReplayResult replay_trace(const isa::Program& program, TraceReader& reader) {
  obs::Span span("trace.replay");
  ReplayResult result;
  std::ostringstream why;

  // Replay stays on the reference Interpreter deliberately: verification
  // must stop at the exact diverging instruction (the run cap below counts
  // consumed records), which a block-batched engine cannot guarantee.
  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  isa::Interpreter interp(program, memory);
  StepRecorder recorder(interp);

  bool diverged = false;
  recorder.sink = [&](const TraceRecord& live) {
    if (diverged) return;
    TraceRecord stored;
    if (!reader.next(stored)) {
      why << "trace ended early at live instruction " << result.replayed
          << "; ";
      diverged = true;
      return;
    }
    if (!(stored == live)) {
      why << "record " << result.replayed << " mismatch: stored pc=0x"
          << std::hex << stored.pc << " live pc=0x" << live.pc << std::dec
          << " stored kind=" << static_cast<int>(stored.kind)
          << " live kind=" << static_cast<int>(live.kind) << "; ";
      diverged = true;
      return;
    }
    ++result.replayed;
  };

  // A trace may have been capped at CFIR_MAX_INSTS, so replay exactly the
  // recorded prefix rather than running the program to completion.
  while (!diverged && result.replayed < reader.record_count() &&
         interp.step()) {
  }
  if (!diverged && result.replayed != reader.record_count()) {
    why << "trace has " << reader.record_count()
        << " records but live run retired only " << result.replayed << "; ";
  }

  result.final_state.executed = interp.executed();
  result.final_state.halted = interp.halted();
  result.final_state.regs = interp.regs();
  result.final_state.mem_digest = memory.digest();

  if (result.final_state.mem_digest != reader.final_digest()) {
    why << "final memory digest differs; ";
  }
  for (int i = 0; i < isa::kNumLogicalRegs; ++i) {
    if (result.final_state.regs[static_cast<size_t>(i)] !=
        reader.final_regs()[static_cast<size_t>(i)]) {
      why << "final r" << i << " differs; ";
      break;
    }
  }
  result.mismatch = why.str();
  result.match = result.mismatch.empty();
  return result;
}

}  // namespace cfir::trace
