// Live shard progress: run_shard appends heartbeat records to a
// `.cfirprog` sidecar (and optionally mirrors them to stderr) while it
// executes, so a farm operator — or `trace_tool watch` — can see grid
// completion without waiting for the CFIRSHD2 blob to land. This is the
// monitoring surface the planned cfir_served dispatcher reuses.
//
// Record format (docs/observability.md): one flat JSON object per line,
// append-only, e.g.
//
//   {"cfirprog":1,"t_ms":412,"phase":"detail","shard":"0/2","done":5,
//    "total":12,"intervals_done":2,"plan_intervals":6,"configs":2,
//    "warmed_insts":120000,"detailed_insts":50000,"eta_ms":577}
//
// `phase` is "warm" while functional warm states are being produced,
// "detail" during detailed simulation (done/total count
// interval x config units), "done" exactly once when the shard finishes.
// A reader only ever needs the *last* line per file; earlier lines give
// history. Heartbeats are rate-limited (~100 ms) except phase
// transitions and the final record, which always flush.
//
// Everything defaults off: the writer is a no-op until configure() runs
// (trace_tool wires it from CFIR_PROGRESS), so library callers pay one
// relaxed load per heartbeat site.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace cfir::obs {

struct Heartbeat {
  std::string phase;         ///< "warm" | "detail" | "done"
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
  uint64_t done = 0;         ///< detail units finished (interval x config)
  uint64_t total = 0;        ///< detail units this shard will run
  uint64_t intervals_done = 0;
  uint64_t plan_intervals = 0;  ///< whole plan, not just this shard
  uint32_t configs = 1;
  uint64_t warmed_insts = 0;
  uint64_t detailed_insts = 0;
  int64_t eta_ms = -1;  ///< estimated remaining wall ms; -1 = unknown
  /// Writer stamps this; parse() recovers it. Milliseconds since the
  /// writing process started.
  int64_t t_ms = 0;

  /// One-line flat JSON record (no trailing newline).
  [[nodiscard]] std::string to_json() const;

  /// Parses a record line written by to_json (tolerant of unknown keys,
  /// rejects lines without the `"cfirprog":1` tag). Returns false on
  /// malformed input — watch skips such lines instead of dying on a
  /// torn tail write.
  static bool parse(const std::string& line, Heartbeat* out);
};

class Progress {
 public:
  /// The process-wide progress writer run_shard emits through.
  static Progress& global();

  /// Starts writing: heartbeats append to `sidecar_path` (empty = no
  /// file) and, when `mirror_stderr`, also print to stderr as JSONL.
  /// Truncates an existing sidecar — each shard run owns its file.
  void configure(const std::string& sidecar_path, bool mirror_stderr);

  /// Back to no-op mode (flushes nothing further; the file keeps what
  /// was written).
  void disable();

  /// One relaxed load — the cost of a heartbeat site while disabled.
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Appends `hb` (t_ms stamped here). Rate-limited to one record per
  /// ~100 ms per process unless `force` — callers force phase
  /// transitions and the final "done" record.
  void emit(Heartbeat hb, bool force = false);

  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

 private:
  Progress() = default;

  std::atomic<bool> enabled_{false};
};

/// CFIR_PROGRESS: unset/empty/"0" = off; "stderr" = sidecar + stderr
/// mirror; anything else ("1") = sidecar only.
[[nodiscard]] bool progress_requested();
[[nodiscard]] bool progress_stderr_requested();

}  // namespace cfir::obs
