// Acceptance criteria for cluster-mode sampling (ISSUE 2 / ROADMAP
// "SimPoint-style cluster selection"): on at least two workloads, the
// cluster-sampled IPC estimate must land within 3% of the full detailed
// run while detail-simulating at most 25% of the committed instructions
// (warm-up included). Also locks in warm-up correctness for uniform mode:
// warmed intervals still commit exactly the monolithic stream.
//
// Everything here is deterministic — same seed, same plan, same simulated
// cycle counts on every host — so these are regression tests, not flaky
// statistical assertions.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "trace/sampling.hpp"
#include "workloads/workloads.hpp"

namespace cfir::trace {
namespace {

struct AccuracyResult {
  double full_ipc = 0.0;
  double sampled_ipc = 0.0;
  double rel_error = 0.0;
  double detailed_fraction = 0.0;
};

AccuracyResult cluster_accuracy(const std::string& workload, uint32_t scale,
                                const ClusterPlanOptions& opts) {
  const isa::Program program = workloads::build(workload, scale);
  const core::CoreConfig config = sim::presets::ci(2, 512);

  sim::Simulator full(config, program);
  const stats::SimStats full_stats = full.run(UINT64_MAX);

  const IntervalPlan plan = plan_cluster_intervals(program, opts);
  const SampledRun run = sampled_run(config, program, plan);

  AccuracyResult r;
  r.full_ipc = full_stats.ipc();
  r.sampled_ipc = run.aggregate.ipc();
  r.rel_error = std::abs(r.sampled_ipc - r.full_ipc) / r.full_ipc;
  r.detailed_fraction = static_cast<double>(run.detailed_insts) /
                        static_cast<double>(full_stats.committed);
  return r;
}

ClusterPlanOptions acceptance_options() {
  // 16 windows, 20k-instruction warm-up, at most 2 representatives: long
  // windows amortize the residual post-warm-up transient, and the cap
  // bounds the detailed-simulation budget. These workloads' phases are
  // homogeneous enough that 2 representatives suffice (the BIC sweep
  // typically picks 1-2 on its own).
  ClusterPlanOptions opts;
  opts.n_intervals = 16;
  opts.warmup = 20000;
  opts.max_k = 2;
  return opts;
}

TEST(SamplingAccuracy, ClusterModeBzip2Within3Percent) {
  const AccuracyResult r =
      cluster_accuracy("bzip2", /*scale=*/8, acceptance_options());
  EXPECT_LT(r.rel_error, 0.03)
      << "full IPC " << r.full_ipc << " sampled " << r.sampled_ipc;
  EXPECT_LE(r.detailed_fraction, 0.25);
}

TEST(SamplingAccuracy, ClusterModeParserWithin3Percent) {
  const AccuracyResult r =
      cluster_accuracy("parser", /*scale=*/8, acceptance_options());
  EXPECT_LT(r.rel_error, 0.03)
      << "full IPC " << r.full_ipc << " sampled " << r.sampled_ipc;
  EXPECT_LE(r.detailed_fraction, 0.25);
}

TEST(SamplingAccuracy, ClusterModeTwolfWithin3Percent) {
  const AccuracyResult r =
      cluster_accuracy("twolf", /*scale=*/8, acceptance_options());
  EXPECT_LT(r.rel_error, 0.03)
      << "full IPC " << r.full_ipc << " sampled " << r.sampled_ipc;
  EXPECT_LE(r.detailed_fraction, 0.25);
}

TEST(SamplingAccuracy, WarmupPreservesArchitecturalExactness) {
  // Uniform intervals with warm-up: warm-up slices re-execute the tail of
  // the previous interval but are subtracted back out, so the aggregate
  // still commits exactly the monolithic stream.
  const isa::Program program = workloads::build("gcc", 2);
  const core::CoreConfig config = sim::presets::ci(2, 512);

  sim::Simulator mono(config, program);
  const stats::SimStats mono_stats = mono.run(UINT64_MAX);

  const IntervalPlan plan =
      plan_intervals(program, /*k=*/6, /*max_insts=*/0, /*warmup=*/15000);
  const SampledRun run = sampled_run(config, program, plan);

  EXPECT_EQ(run.aggregate.committed, mono_stats.committed);
  EXPECT_EQ(run.aggregate.committed_loads, mono_stats.committed_loads);
  EXPECT_EQ(run.aggregate.committed_stores, mono_stats.committed_stores);
  EXPECT_EQ(run.aggregate.committed_branches, mono_stats.committed_branches);
  EXPECT_TRUE(run.aggregate.halted);
  // Warm-up is accounted as cost, not as progress.
  EXPECT_GT(run.detailed_insts, run.aggregate.committed);
  // Episode hierarchy survives warm-up subtraction (the re-clamp in
  // sampled_run; see src/trace/sampling.cpp).
  EXPECT_GE(run.aggregate.ep_total, run.aggregate.ep_ci_selected);
  EXPECT_GE(run.aggregate.ep_ci_selected, run.aggregate.ep_ci_reused);
  // And the warm predictors close most of the cold-start IPC gap (cold
  // k=6 sampling is ~25% off on this workload; warmed it is ~2%).
  EXPECT_NEAR(run.aggregate.ipc(), mono_stats.ipc(),
              0.06 * mono_stats.ipc());
}

TEST(SamplingAccuracy, WarmupReducesColdStartBias) {
  const isa::Program program = workloads::build("bzip2", 4);
  const core::CoreConfig config = sim::presets::ci(2, 512);

  sim::Simulator mono(config, program);
  const double full_ipc = mono.run(UINT64_MAX).ipc();

  const SampledRun cold = sampled_run(
      config, program, plan_intervals(program, 8, 0, /*warmup=*/0));
  const SampledRun warm = sampled_run(
      config, program, plan_intervals(program, 8, 0, /*warmup=*/20000));

  const double cold_err = std::abs(cold.aggregate.ipc() - full_ipc);
  const double warm_err = std::abs(warm.aggregate.ipc() - full_ipc);
  EXPECT_LT(warm_err, cold_err)
      << "cold " << cold.aggregate.ipc() << " warm " << warm.aggregate.ipc()
      << " full " << full_ipc;
}

}  // namespace
}  // namespace cfir::trace
