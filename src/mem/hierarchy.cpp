#include "mem/hierarchy.hpp"

namespace cfir::mem {

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config)
    : config_(config),
      l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2),
      l3_(config.l3) {}

void CacheHierarchy::reset() {
  l1i_.reset();
  l1d_.reset();
  l2_.reset();
  l3_.reset();
}

uint32_t CacheHierarchy::lower_fill_latency(uint64_t addr, bool is_write,
                                            uint64_t now) {
  // L2 lookup happens after the L1 miss is detected.
  const auto r2 = l2_.access(addr, is_write, now, /*placeholder*/ 0);
  if (r2.hit) return r2.latency;
  const auto r3 = l3_.access(addr, is_write, now + r2.latency, 0);
  uint32_t below = r3.hit ? r3.latency
                          : r3.latency + config_.memory_latency;
  return l2_.config().hit_latency + below;
}

uint32_t CacheHierarchy::access_inst(uint64_t addr, uint64_t now) {
  // Probe L1I first; only on a real miss do we consult the lower levels.
  if (l1i_.probe(addr)) {
    return l1i_.access(addr, false, now, 0).latency;
  }
  const uint32_t fill = lower_fill_latency(addr, false, now);
  return l1i_.access(addr, false, now, fill).latency;
}

uint32_t CacheHierarchy::access_data(uint64_t addr, bool is_write,
                                     uint64_t now) {
  if (l1d_.probe(addr)) {
    return l1d_.access(addr, is_write, now, 0).latency;
  }
  const uint32_t fill = lower_fill_latency(addr, is_write, now);
  return l1d_.access(addr, is_write, now, fill).latency;
}

namespace {
// Mirrors the timed path's level walk: the L1 miss consults L2
// unconditionally, and L3 only when L2 also misses.
void warm_lower(Cache& l2, Cache& l3, uint64_t addr, bool is_write) {
  const bool l2_hit = l2.probe(addr);
  l2.warm_access(addr, is_write);
  if (!l2_hit) l3.warm_access(addr, is_write);
}
}  // namespace

void CacheHierarchy::warm_inst(uint64_t addr) {
  const bool hit = l1i_.probe(addr);
  l1i_.warm_access(addr, false);
  if (!hit) warm_lower(l2_, l3_, addr, false);
}

void CacheHierarchy::warm_data(uint64_t addr, bool is_write) {
  const bool hit = l1d_.probe(addr);
  l1d_.warm_access(addr, is_write);
  if (!hit) warm_lower(l2_, l3_, addr, is_write);
}

uint64_t CacheHierarchy::debug_digest() const {
  util::Digest d;
  d.u64(l1i_.debug_digest()).u64(l1d_.debug_digest());
  d.u64(l2_.debug_digest()).u64(l3_.debug_digest());
  return d.value();
}

void CacheHierarchy::serialize(util::ByteWriter& out) const {
  l1i_.serialize(out);
  l1d_.serialize(out);
  l2_.serialize(out);
  l3_.serialize(out);
}

void CacheHierarchy::deserialize(util::ByteReader& in) {
  l1i_.deserialize(in);
  l1d_.deserialize(in);
  l2_.deserialize(in);
  l3_.deserialize(in);
}

}  // namespace cfir::mem
