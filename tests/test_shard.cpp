// The plan / execute / merge decomposition of sampled simulation
// (trace/manifest.hpp, trace/shard.hpp):
//
//  - manifest and shard-result blobs are byte-stable across
//    serialize -> deserialize -> re-serialize (shards exchanged between
//    machines must not mutate in flight) and reject corruption with the
//    typed errors trace_tool maps to exit codes;
//  - running a plan's intervals as N shards and merging the results is
//    bit-identical to the single-process trace::sampled_run, for any N,
//    any merge order, and through the full manifest-file round trip —
//    the acceptance matrix covers bzip2/parser/twolf s8 under functional
//    warming;
//  - mismatched configs and incomplete/duplicate shard sets are rejected
//    at merge time instead of silently skewing the aggregate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "sim/presets.hpp"
#include "trace/errors.hpp"
#include "trace/manifest.hpp"
#include "trace/sampling.hpp"
#include "trace/shard.hpp"
#include "workloads/workloads.hpp"

namespace cfir::trace {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(::testing::TempDir() + "cfir_shard_" + tag + ".bin") {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A manifest written by write_manifest plus its checkpoint blobs, all
/// removed on destruction.
class TempManifest {
 public:
  TempManifest(const IntervalPlan& plan, const core::CoreConfig& config,
               const std::string& workload, uint32_t scale,
               const std::string& tag)
      : path_(::testing::TempDir() + "cfir_man_" + tag + ".cfirman"),
        manifest_(write_manifest(plan, config, workload, scale, path_)) {}
  ~TempManifest() {
    std::remove(path_.c_str());
    const std::string dir =
        path_.substr(0, path_.find_last_of('/') + 1);
    for (const auto& iv : manifest_.intervals) {
      std::remove((dir + iv.checkpoint_file).c_str());
    }
  }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const ShardManifest& manifest() const { return manifest_; }

 private:
  std::string path_;
  ShardManifest manifest_;
};

ShardManifest random_manifest(uint64_t seed) {
  std::mt19937_64 gen(seed);
  ShardManifest m;
  m.workload = "wl" + std::to_string(gen() % 1000);
  m.scale = static_cast<uint32_t>(gen() % 16 + 1);
  m.config_hash = gen();
  m.mode = (gen() & 1) != 0 ? SampleMode::kCluster : SampleMode::kUniform;
  m.warm_mode = static_cast<WarmMode>(gen() % 4);
  m.warmup = gen() % 100000;
  m.total_insts = gen();
  m.interval_len = gen() % 100000;
  m.ran_to_halt = (gen() & 1) != 0;
  const size_t n = gen() % 8;
  m.intervals.resize(n);
  for (size_t i = 0; i < n; ++i) {
    m.intervals[i].start = gen();
    m.intervals[i].length = gen();
    m.intervals[i].weight =
        static_cast<double>(gen() % 10000) / 16.0;  // exact in binary
    m.intervals[i].checkpoint_file = "ck" + std::to_string(i) + ".cfirckpt";
  }
  return m;
}

ShardResult random_shard_result(uint64_t seed) {
  std::mt19937_64 gen(seed);
  ShardResult r;
  r.config_hash = gen();
  r.shard_count = static_cast<uint32_t>(gen() % 7 + 1);
  r.shard_index = static_cast<uint32_t>(gen() % r.shard_count);
  r.plan_intervals = static_cast<uint32_t>(gen() % 16 + 1);
  r.total_insts = gen();
  r.ran_to_halt = (gen() & 1) != 0;
  r.detailed_insts = gen() % 1000000;
  r.warmed_insts = gen() % 1000000;
  const size_t n = gen() % 5;
  r.intervals.resize(n);
  for (size_t i = 0; i < n; ++i) {
    r.intervals[i].plan_index = static_cast<uint32_t>(gen() % 16);
    r.intervals[i].start_inst = gen();
    r.intervals[i].length = gen();
    r.intervals[i].warmup = gen() % 10000;
    r.intervals[i].weight = static_cast<double>(gen() % 10000) / 16.0;
    r.intervals[i].stats = cfir::testing::random_sim_stats(gen);
  }
  return r;
}

// ---------------------------------------------------------------------------
// Blob byte stability and corruption rejection
// ---------------------------------------------------------------------------

TEST(ShardManifestBlob, FuzzSerializeDeserializeReserializeStable) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    const ShardManifest m = random_manifest(seed);
    const std::vector<uint8_t> first = m.serialize();
    const ShardManifest loaded = ShardManifest::deserialize(first);
    EXPECT_EQ(loaded.workload, m.workload) << "seed " << seed;
    EXPECT_EQ(loaded.config_hash, m.config_hash) << "seed " << seed;
    EXPECT_EQ(loaded.intervals.size(), m.intervals.size())
        << "seed " << seed;
    EXPECT_EQ(loaded.serialize(), first) << "seed " << seed;
  }
}

TEST(ShardManifestBlob, FileRoundTripVerifiesCrc) {
  const ShardManifest m = random_manifest(7);
  TempFile file("man_crc");
  m.save(file.path());
  const ShardManifest loaded = ShardManifest::load(file.path());
  EXPECT_EQ(loaded.serialize(), m.serialize());

  // Flip one payload byte: the CRC footer must catch it.
  std::vector<uint8_t> bytes = m.serialize();
  {
    std::FILE* f = std::fopen(file.path().c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 12, SEEK_SET);
    std::fputc(0xA5, f);
    std::fclose(f);
  }
  EXPECT_THROW((void)ShardManifest::load(file.path()), CorruptFileError);
}

TEST(ShardManifestBlob, TruncationAndWrongKindRejected) {
  const ShardManifest m = random_manifest(9);
  std::vector<uint8_t> payload = m.serialize();

  std::vector<uint8_t> truncated(payload.begin(), payload.begin() + 24);
  EXPECT_THROW((void)ShardManifest::deserialize(truncated), CorruptFileError);

  std::vector<uint8_t> wrong = payload;
  wrong[0] = 'X';
  EXPECT_THROW((void)ShardManifest::deserialize(wrong), BadMagicError);

  std::vector<uint8_t> vers = payload;
  vers[8] = 99;  // u32 version little-endian LSB
  EXPECT_THROW((void)ShardManifest::deserialize(vers), VersionError);

  // A file missing its (mandatory) footer is rejected even when the
  // payload itself is intact.
  TempFile file("man_nofooter");
  {
    std::FILE* f = std::fopen(file.path().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(payload.data(), 1, payload.size(), f);
    std::fclose(f);
  }
  EXPECT_THROW((void)ShardManifest::load(file.path()), CorruptFileError);
}

TEST(ShardResultBlob, FuzzSerializeDeserializeReserializeStable) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    const ShardResult r = random_shard_result(seed);
    const std::vector<uint8_t> first = r.serialize();
    const ShardResult loaded = ShardResult::deserialize(first);
    EXPECT_EQ(loaded.config_hash, r.config_hash) << "seed " << seed;
    EXPECT_EQ(loaded.intervals.size(), r.intervals.size())
        << "seed " << seed;
    for (size_t i = 0; i < r.intervals.size(); ++i) {
      EXPECT_EQ(stats::to_json(loaded.intervals[i].stats),
                stats::to_json(r.intervals[i].stats))
          << "seed " << seed << " interval " << i;
    }
    EXPECT_EQ(loaded.serialize(), first) << "seed " << seed;
  }
}

TEST(ShardResultBlob, WrongKindAndVersionRejected) {
  const ShardResult r = random_shard_result(3);
  std::vector<uint8_t> payload = r.serialize();
  std::vector<uint8_t> wrong = payload;
  wrong[3] = 'Z';
  EXPECT_THROW((void)ShardResult::deserialize(wrong), BadMagicError);
  std::vector<uint8_t> vers = payload;
  vers[8] = 2;
  EXPECT_THROW((void)ShardResult::deserialize(vers), VersionError);
  payload.resize(payload.size() / 2);
  EXPECT_THROW((void)ShardResult::deserialize(payload), CorruptFileError);
}

TEST(ParseShard, AcceptsValidRejectsMalformed) {
  const ShardSelection s = parse_shard("2/5");
  EXPECT_EQ(s.index, 2u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_TRUE(s.covers(2));
  EXPECT_TRUE(s.covers(7));
  EXPECT_FALSE(s.covers(3));
  EXPECT_THROW((void)parse_shard("5/5"), std::runtime_error);
  EXPECT_THROW((void)parse_shard("0"), std::runtime_error);
  EXPECT_THROW((void)parse_shard("a/b"), std::runtime_error);
  EXPECT_THROW((void)parse_shard("1/0"), std::runtime_error);
  EXPECT_THROW((void)parse_shard("1/2x"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Sharded == unsharded
// ---------------------------------------------------------------------------

/// Every per-interval stat block and the aggregate must match bit for bit.
void expect_same_run(const SampledRun& a, const SampledRun& b,
                     const std::string& label) {
  ASSERT_EQ(a.intervals.size(), b.intervals.size()) << label;
  for (size_t i = 0; i < a.intervals.size(); ++i) {
    EXPECT_EQ(a.intervals[i].start_inst, b.intervals[i].start_inst)
        << label << " interval " << i;
    EXPECT_EQ(a.intervals[i].warmup, b.intervals[i].warmup)
        << label << " interval " << i;
    EXPECT_EQ(stats::to_json(a.intervals[i].stats),
              stats::to_json(b.intervals[i].stats))
        << label << " interval " << i;
  }
  EXPECT_EQ(a.total_insts, b.total_insts) << label;
  EXPECT_EQ(a.detailed_insts, b.detailed_insts) << label;
  EXPECT_EQ(a.warmed_insts, b.warmed_insts) << label;
  EXPECT_EQ(stats::to_json(a.aggregate), stats::to_json(b.aggregate))
      << label;
}

TEST(ShardedRun, AnyShardCountMergesBitIdentical) {
  const core::CoreConfig config = sim::presets::ci(2, 512);
  const isa::Program program = workloads::build("bzip2", 1);
  const IntervalPlan plan =
      plan_intervals(program, 5, /*max_insts=*/40000, /*warmup=*/500,
                     WarmMode::kDetailed);
  const SampledRun reference = sampled_run(config, program, plan);

  for (const uint32_t n : {2u, 3u, 5u}) {
    std::vector<ShardResult> shards;
    for (uint32_t i = 0; i < n; ++i) {
      shards.push_back(
          run_shard(config, program, plan, ShardSelection{i, n}));
    }
    // Merge order must not matter: reverse the shard list.
    std::reverse(shards.begin(), shards.end());
    expect_same_run(merge_shard_results(shards), reference,
                    "N=" + std::to_string(n));
  }
}

TEST(ShardedRun, SerializedShardsMergeBitIdentical) {
  // The full wire path: each shard result passes through its CFIRSHD1 blob
  // before merging, as it would between machines.
  const core::CoreConfig config = sim::presets::ci(2, 512);
  const isa::Program program = workloads::build("parser", 1);

  ClusterPlanOptions opts;
  opts.n_intervals = 8;
  opts.max_k = 3;
  opts.warm_mode = WarmMode::kFunctional;
  opts.detail_len = 1500;
  opts.max_insts = 40000;
  IntervalPlan plan = plan_cluster_intervals(program, opts);
  attach_warm_states(plan, config, program);
  const SampledRun reference = sampled_run(config, program, plan);

  std::vector<ShardResult> shards;
  for (uint32_t i = 0; i < 2; ++i) {
    const ShardResult r =
        run_shard(config, program, plan, ShardSelection{i, 2});
    TempFile file("wire" + std::to_string(i));
    r.save(file.path());
    shards.push_back(ShardResult::load(file.path()));
  }
  expect_same_run(merge_shard_results(shards), reference, "wire");
}

TEST(ShardedRun, ManifestRoundTripRunsBitIdentical) {
  // Plan layer to disk and back: a plan reloaded from its manifest (with
  // warm state riding in the CFIRCKP2 checkpoints) must reproduce the
  // in-memory plan's sampled run exactly, and the config hash must accept
  // the planning config and reject others.
  const core::CoreConfig config = sim::presets::ci(2, 512);
  const isa::Program program = workloads::build("twolf", 1);

  ClusterPlanOptions opts;
  opts.n_intervals = 8;
  opts.max_k = 3;
  opts.warm_mode = WarmMode::kHybrid;
  opts.warmup = 300;
  opts.detail_len = 1500;
  opts.max_insts = 40000;
  IntervalPlan plan = plan_cluster_intervals(program, opts);
  attach_warm_states(plan, config, program);
  const SampledRun reference = sampled_run(config, program, plan);

  TempManifest tm(plan, config, "twolf", 1, "roundtrip");
  const ShardManifest manifest = ShardManifest::load(tm.path());
  EXPECT_EQ(manifest.config_hash, tm.manifest().config_hash);

  const IntervalPlan reloaded = plan_from_manifest(manifest, tm.path());
  verify_manifest_config(manifest, config, reloaded);  // must not throw

  core::CoreConfig other = config;
  other.num_phys_regs = 256;
  EXPECT_THROW(verify_manifest_config(manifest, other, reloaded),
               ConfigMismatchError);

  std::vector<ShardResult> shards;
  for (uint32_t i = 0; i < 2; ++i) {
    shards.push_back(run_shard(config, program, reloaded,
                               ShardSelection{i, 2}, /*threads=*/0,
                               manifest.config_hash));
  }
  expect_same_run(merge_shard_results(shards), reference, "manifest");
}

TEST(ShardedRun, MergeRejectsIncompleteDuplicateAndMismatched) {
  const core::CoreConfig config = sim::presets::ci(2, 512);
  const isa::Program program = workloads::build("bzip2", 1);
  const IntervalPlan plan = plan_intervals(program, 4, 20000);

  const ShardResult s0 =
      run_shard(config, program, plan, ShardSelection{0, 2});
  const ShardResult s1 =
      run_shard(config, program, plan, ShardSelection{1, 2});

  EXPECT_THROW((void)merge_shard_results({s0}), CorruptFileError);       // missing
  EXPECT_THROW((void)merge_shard_results({s0, s0}), CorruptFileError);   // dup
  ShardResult tampered = s1;
  tampered.config_hash = 0xDEADBEEF;
  EXPECT_THROW((void)merge_shard_results({s0, tampered}), ConfigMismatchError);
  EXPECT_NO_THROW((void)merge_shard_results({s0, s1}));
  EXPECT_NO_THROW((void)merge_shard_results({s1, s0}));  // any order
}

// ---------------------------------------------------------------------------
// Acceptance: the ISSUE 4 matrix — bzip2/parser/twolf s8, functional
// warming, sharded pipeline bit-identical to single-process sampled_run.
// ---------------------------------------------------------------------------

void expect_acceptance(const std::string& workload) {
  const core::CoreConfig config = sim::presets::ci(2, 512);
  const isa::Program program = workloads::build(workload, 8);

  ClusterPlanOptions opts;
  opts.n_intervals = 16;
  opts.max_k = 4;
  opts.warm_mode = WarmMode::kFunctional;
  opts.detail_len = 2000;
  IntervalPlan plan = plan_cluster_intervals(program, opts);
  attach_warm_states(plan, config, program);
  const SampledRun reference = sampled_run(config, program, plan);

  TempManifest tm(plan, config, workload, 8, "acc_" + workload);
  const ShardManifest manifest = ShardManifest::load(tm.path());
  const IntervalPlan reloaded = plan_from_manifest(manifest, tm.path());
  verify_manifest_config(manifest, config, reloaded);

  std::vector<ShardResult> shards;
  for (uint32_t i = 0; i < 2; ++i) {
    const ShardResult r = run_shard(config, program, reloaded,
                                    ShardSelection{i, 2}, /*threads=*/0,
                                    manifest.config_hash);
    TempFile file("acc_" + workload + std::to_string(i));
    r.save(file.path());
    shards.push_back(ShardResult::load(file.path()));
  }
  expect_same_run(merge_shard_results(shards), reference, workload + " s8");
}

TEST(ShardAcceptance, Bzip2S8Functional) { expect_acceptance("bzip2"); }
TEST(ShardAcceptance, ParserS8Functional) { expect_acceptance("parser"); }
TEST(ShardAcceptance, TwolfS8Functional) { expect_acceptance("twolf"); }

}  // namespace
}  // namespace cfir::trace
