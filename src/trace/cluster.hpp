// Phase clustering of per-interval basic-block vectors (bbv.hpp), the
// SimPoint recipe (Sherwood et al., ASPLOS'02):
//
//   1. Normalize each BBV to a frequency vector (entries sum to 1), so
//      intervals compare by *where* they spend time, not how long they are.
//   2. Random-project down to a small dimension. The projection matrix is
//      a deterministic +-1/sqrt(d) sign matrix hashed from (seed, leader
//      pc, output dim), so results are reproducible across runs and
//      independent of block discovery order.
//   3. k-means (k-means++ seeding, Lloyd refinement) for every k in
//      1..max_k, scored with the Bayesian Information Criterion of
//      X-means (Pelleg & Moore, ICML'00). The chosen k is the smallest
//      whose BIC reaches `bic_threshold` of the best score's range —
//      SimPoint's "smallest k within 90% of the best" rule.
//   4. Each cluster is represented by the member interval closest to the
//      centroid; its weight is the cluster population.
//
// Everything is deterministic: fixed seed, no std::rand, ties broken by
// lowest index. Two machines clustering the same trace agree bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/bbv.hpp"

namespace cfir::trace {

struct ClusterOptions {
  uint32_t max_k = 16;        ///< sweep k = 1..min(max_k, #intervals)
  uint32_t proj_dims = 16;    ///< random-projection target dimension
  uint64_t seed = 0xC1F15EEDu;
  uint32_t kmeans_iters = 64;   ///< Lloyd iteration cap per k
  double bic_threshold = 0.9;   ///< pick smallest k within this BIC range
};

struct Clustering {
  uint32_t k = 0;
  std::vector<uint32_t> assignment;      ///< per interval: cluster id
  std::vector<uint32_t> representative;  ///< per cluster: interval index
  std::vector<uint64_t> sizes;           ///< per cluster: member count
  std::vector<double> bic_by_k;          ///< BIC score of k = 1..max swept
};

/// Normalizes + projects the BBVs (step 1-2 above). Exposed for tests;
/// returns one `dims`-dimensional point per interval.
[[nodiscard]] std::vector<std::vector<double>> project_bbvs(
    const BbvSet& bbvs, uint32_t dims, uint64_t seed);

/// Deterministic k-means on pre-projected points: returns the per-point
/// assignment for exactly `k` clusters (k-means++ seeding, Lloyd until
/// stable or `iters`).
[[nodiscard]] std::vector<uint32_t> kmeans(
    const std::vector<std::vector<double>>& points, uint32_t k,
    uint64_t seed, uint32_t iters = 64);

/// The full pipeline: project, sweep k by BIC, pick representatives.
[[nodiscard]] Clustering cluster_bbvs(const BbvSet& bbvs,
                                      const ClusterOptions& opts = {});

}  // namespace cfir::trace
