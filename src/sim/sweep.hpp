// Thread-pooled experiment runner: the figure benches enqueue one job per
// (workload, configuration) grid point and collect SimStats. Simulations
// are embarrassingly parallel, so this scales to the host's cores
// (CFIR_THREADS overrides).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "isa/program.hpp"
#include "stats/stats.hpp"

namespace cfir::sim {

struct RunSpec {
  std::string workload;     ///< name registered in cfir::workloads
  std::string config_name;  ///< column label in the output table
  core::CoreConfig config;
  uint64_t max_insts = 0;   ///< 0 = run to completion
  uint32_t scale = 1;       ///< workload size multiplier
};

struct RunOutcome {
  RunSpec spec;
  stats::SimStats stats;
};

/// Runs every spec (order preserved in the result). `threads` <= 0 picks
/// CFIR_THREADS or the hardware concurrency.
[[nodiscard]] std::vector<RunOutcome> run_all(const std::vector<RunSpec>& specs,
                                              int threads = 0);

/// Environment knobs shared by the bench binaries.
[[nodiscard]] uint32_t env_scale();      ///< CFIR_SCALE, default 1
[[nodiscard]] int env_threads();         ///< CFIR_THREADS, default 0 (auto)
[[nodiscard]] uint64_t env_max_insts();  ///< CFIR_MAX_INSTS, default 0

}  // namespace cfir::sim
