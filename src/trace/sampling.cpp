#include "trace/sampling.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "isa/engine.hpp"
#include "obs/tracer.hpp"
#include "trace/bbv.hpp"
#include "trace/cluster.hpp"
#include "trace/shard.hpp"

namespace cfir::trace {

namespace {

/// Pass 1 of every plan: measure the run length with the functional engine
/// (no sink — pure execution speed).
uint64_t measure_run(const isa::Program& program, uint64_t cap) {
  mem::MainMemory memory;
  isa::load_data_image(program, memory);
  isa::FunctionalEngine engine(program, memory);
  engine.run(cap);
  return engine.executed();
}

/// Applies the SMARTS measured-slice cap: shortens every interval's
/// measured window to `detail_len` and scales its weight so the aggregate
/// still extrapolates to the interval's full population.
void apply_detail_cap(IntervalPlan& plan, uint64_t detail_len) {
  if (detail_len == 0) return;
  for (size_t i = 0; i < plan.lengths.size(); ++i) {
    const uint64_t full = plan.lengths[i];
    if (full <= detail_len) continue;
    plan.lengths[i] = detail_len;
    plan.weights[i] *= static_cast<double>(full) /
                       static_cast<double>(detail_len);
  }
}

/// Checkpoint capture for the final plan: one snapshot per interval, at
/// max(start - warmup, 0) for modes with a detailed warm-up slice (the
/// clamp means a warm-up longer than the prefix starts at instruction 0,
/// never underflows) and at the boundary itself otherwise.
void capture_checkpoints(IntervalPlan& plan, const isa::Program& program) {
  const uint64_t warmup =
      warm_mode_has_detailed_slice(plan.warm_mode) ? plan.warmup : 0;
  std::vector<uint64_t> warm_starts;
  warm_starts.reserve(plan.boundaries.size());
  for (const uint64_t start : plan.boundaries) {
    warm_starts.push_back(start >= warmup ? start - warmup : 0);
  }
  plan.checkpoints = interval_checkpoints(program, warm_starts);
}

}  // namespace

IntervalPlan plan_intervals(const isa::Program& program, uint32_t k,
                            uint64_t max_insts, uint64_t warmup,
                            WarmMode warm_mode, uint64_t detail_len) {
  obs::Span span("plan.uniform", k);
  const uint64_t cap = max_insts == 0 ? UINT64_MAX : max_insts;

  IntervalPlan plan;
  plan.mode = SampleMode::kUniform;
  plan.warm_mode = warm_mode;
  plan.warmup = warmup;
  plan.total_insts = measure_run(program, cap);
  plan.ran_to_halt = plan.total_insts < cap;
  if (k == 0) k = 1;
  k = static_cast<uint32_t>(
      std::max<uint64_t>(1, std::min<uint64_t>(k, plan.total_insts)));

  plan.boundaries.reserve(k);
  plan.lengths.reserve(k);
  for (uint32_t i = 0; i < k; ++i) {
    plan.boundaries.push_back(plan.total_insts * i / k);
  }
  for (uint32_t i = 0; i < k; ++i) {
    const uint64_t end =
        i + 1 < k ? plan.boundaries[i + 1] : plan.total_insts;
    plan.lengths.push_back(end - plan.boundaries[i]);
  }
  plan.weights.assign(k, 1.0);
  apply_detail_cap(plan, detail_len);
  capture_checkpoints(plan, program);
  return plan;
}

IntervalPlan plan_cluster_intervals(const isa::Program& program,
                                    const ClusterPlanOptions& opts) {
  obs::Span span("plan.cluster", opts.n_intervals);
  const uint64_t cap = opts.max_insts == 0 ? UINT64_MAX : opts.max_insts;

  IntervalPlan plan;
  plan.mode = SampleMode::kCluster;
  plan.warm_mode = opts.warm_mode;
  plan.warmup = opts.warmup;
  plan.total_insts = measure_run(program, cap);
  plan.ran_to_halt = plan.total_insts < cap;
  if (plan.total_insts == 0) {
    // Degenerate program (halts immediately): one empty interval so the
    // detailed core still retires HALT.
    plan.boundaries = {0};
    plan.lengths = {0};
    plan.weights = {1.0};
    capture_checkpoints(plan, program);
    return plan;
  }

  const uint64_t n = std::max<uint64_t>(
      1, std::min<uint64_t>(opts.n_intervals, plan.total_insts));
  plan.interval_len = (plan.total_insts + n - 1) / n;

  // Pass 2: per-window basic-block vectors; pass 3 below: checkpoints.
  const BbvSet bbvs =
      bbv_from_program(program, plan.interval_len, plan.total_insts);

  ClusterOptions copts;
  copts.max_k = opts.max_k != 0
                    ? opts.max_k
                    : static_cast<uint32_t>(std::min<uint64_t>(16, n));
  copts.proj_dims = opts.proj_dims;
  copts.seed = opts.seed;
  const Clustering clusters = cluster_bbvs(bbvs, copts);
  plan.cluster_of = clusters.assignment;
  plan.bic_by_k = clusters.bic_by_k;

  // One measured interval per cluster, at its representative window,
  // weighted by cluster population. Sorted by start so checkpoint capture
  // stays a single forward interpreter pass.
  std::vector<uint32_t> order(clusters.k);
  for (uint32_t c = 0; c < clusters.k; ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return clusters.representative[a] < clusters.representative[b];
  });
  for (const uint32_t c : order) {
    const uint64_t start =
        uint64_t{clusters.representative[c]} * plan.interval_len;
    plan.boundaries.push_back(start);
    plan.lengths.push_back(
        std::min(plan.interval_len, plan.total_insts - start));
    plan.weights.push_back(static_cast<double>(clusters.sizes[c]));
  }
  apply_detail_cap(plan, opts.detail_len);
  capture_checkpoints(plan, program);
  return plan;
}

void attach_warm_states(IntervalPlan& plan, const core::CoreConfig& config,
                        const isa::Program& program) {
  if (!warm_mode_has_functional_prefix(plan.warm_mode)) return;
  std::vector<uint64_t> targets;
  targets.reserve(plan.checkpoints.size());
  for (const Checkpoint& ck : plan.checkpoints) {
    targets.push_back(ck.executed);
  }
  std::vector<std::vector<uint8_t>> blobs =
      capture_warm_states(config, program, targets);
  for (size_t i = 0; i < plan.checkpoints.size(); ++i) {
    plan.checkpoints[i].warm = std::move(blobs[i]);
  }
}

std::vector<ConfigBinding> bind_configs(
    const IntervalPlan& plan,
    const std::vector<std::pair<std::string, core::CoreConfig>>& points,
    const isa::Program& program) {
  if (points.empty()) {
    throw std::runtime_error("bind_configs: no config points");
  }
  std::vector<ConfigBinding> bindings;
  bindings.reserve(points.size());
  for (const auto& [name, config] : points) {
    ConfigBinding b;
    b.name = name;
    b.config = config;
    b.config_hash = config.digest();
    bindings.push_back(std::move(b));
  }
  if (!warm_mode_has_functional_prefix(plan.warm_mode)) return bindings;

  std::vector<uint64_t> targets;
  targets.reserve(plan.checkpoints.size());
  for (const Checkpoint& ck : plan.checkpoints) {
    targets.push_back(ck.executed);
  }
  // Warm state depends only on warm_digest()-covered geometry (policy,
  // predictor and cache shapes), so a ports/regs/width sweep trains each
  // distinct geometry ONCE and the rest of its group shares the blobs —
  // they are byte-identical by construction, and write_manifest collapses
  // the shared blobs to one sidecar file per interval.
  std::vector<size_t> group_of(points.size());
  std::vector<size_t> rep_point;  // first point index of each group
  std::unordered_map<uint64_t, size_t> group_by_digest;
  for (size_t c = 0; c < points.size(); ++c) {
    const uint64_t wd = points[c].second.warm_digest();
    const auto [it, fresh] = group_by_digest.emplace(wd, rep_point.size());
    if (fresh) rep_point.push_back(c);
    group_of[c] = it->second;
  }
  std::vector<core::CoreConfig> unique_configs;
  unique_configs.reserve(rep_point.size());
  for (const size_t r : rep_point) unique_configs.push_back(points[r].second);
  std::vector<std::vector<std::vector<uint8_t>>> blobs =
      capture_warm_states_grid(unique_configs, program, targets);
  for (size_t c = 0; c < bindings.size(); ++c) {
    const size_t g = group_of[c];
    if (rep_point[g] == c) {
      bindings[c].warm = std::move(blobs[g]);
    } else {
      bindings[c].warm = bindings[rep_point[g]].warm;  // rep comes first
    }
  }
  return bindings;
}

SampledRun sampled_run(const core::CoreConfig& config,
                       const isa::Program& program, const IntervalPlan& plan,
                       int threads) {
  // The single-process run IS the sharded run with one shard covering the
  // whole plan: execute layer, then merge layer. Farming the same plan
  // across machines (trace_tool plan / run-shard / merge) walks exactly
  // this code path and therefore reproduces this result bit for bit.
  return merge_shard_results(
      {run_shard(config, program, plan, ShardSelection{}, threads)});
}

SampledRun sampled_run(const core::CoreConfig& config,
                       const isa::Program& program, uint32_t k,
                       uint64_t max_insts, int threads) {
  return sampled_run(config, program, plan_intervals(program, k, max_insts),
                     threads);
}

}  // namespace cfir::trace
