#include "mem/cache.hpp"
#include "mem/hierarchy.hpp"

#include <gtest/gtest.h>

namespace cfir::mem {
namespace {

CacheConfig small_cache() {
  // 4 sets x 2 ways x 16-byte lines = 128 bytes.
  return CacheConfig{"test", 128, 2, 16, 1};
}

TEST(Cache, MissThenHit) {
  Cache c(small_cache());
  auto r1 = c.access(0x100, false, 0, 10);
  EXPECT_FALSE(r1.hit);
  EXPECT_EQ(r1.latency, 11u);  // hit latency + fill
  auto r2 = c.access(0x104, false, 20, 10);  // same line
  EXPECT_TRUE(r2.hit);
  EXPECT_EQ(r2.latency, 1u);
  EXPECT_EQ(c.stats().accesses, 2u);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEviction) {
  Cache c(small_cache());
  // Three lines mapping to the same set (set stride = 4 lines * 16B = 64B).
  c.access(0x000, false, 0, 10);
  c.access(0x040, false, 1, 10);
  EXPECT_TRUE(c.probe(0x000));
  c.access(0x000, false, 2, 10);  // touch to make 0x40 the LRU
  c.access(0x080, false, 3, 10);  // evicts 0x40
  EXPECT_TRUE(c.probe(0x000));
  EXPECT_FALSE(c.probe(0x040));
  EXPECT_TRUE(c.probe(0x080));
}

TEST(Cache, WritebackOnDirtyEviction) {
  Cache c(small_cache());
  c.access(0x000, true, 0, 10);   // dirty
  c.access(0x040, false, 1, 10);
  c.access(0x080, false, 2, 10);  // evicts dirty 0x000
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, MshrMergeShortensLatency) {
  Cache c(small_cache());
  auto r1 = c.access(0x200, false, 0, 20);
  EXPECT_EQ(r1.latency, 21u);
  // The line was installed by the first access; a later access hits. Use a
  // different line in the same fill window to observe the merge path: merge
  // applies to the same line while the fill is outstanding, so force a miss
  // by evicting first. Simplest observable property: merges counter stays 0
  // for hits and the in-flight table bounds latency for repeated misses.
  Cache c2(small_cache());
  c2.access(0x200, false, 0, 20);
  // Same line, still missing in another set? Not possible once installed.
  // Verify the merge bookkeeping directly with an eviction dance:
  c2.access(0x240, false, 1, 20);
  c2.access(0x280, false, 2, 20);  // 0x200 evicted
  auto r3 = c2.access(0x200, false, 5, 20);  // fill from cycle 0 outstanding
  EXPECT_FALSE(r3.hit);
  EXPECT_EQ(c2.stats().mshr_merges, 1u);
  EXPECT_LT(r3.latency, 21u);  // merged into the outstanding fill
}

TEST(Hierarchy, Table1Latencies) {
  CacheHierarchy h;  // Table 1 defaults
  // Cold access: L1 miss + L2 miss + L3 miss + memory.
  const uint32_t cold = h.access_data(0x100000, false, 0);
  EXPECT_EQ(cold, 1u + 6 + 18 + 100);
  // Warm: L1 hit.
  EXPECT_EQ(h.access_data(0x100000, false, 200), 1u);
  // L1 evict far later is hard to force here; probe L2 residency instead.
  EXPECT_TRUE(h.l2().probe(0x100000));
  EXPECT_TRUE(h.l3().probe(0x100000));
}

TEST(Hierarchy, L2HitAfterL1Conflict) {
  HierarchyConfig cfg;
  cfg.l1d = {"L1D", 64, 1, 32, 1};  // 2 sets, direct mapped: easy conflicts
  CacheHierarchy h(cfg);
  h.access_data(0x0, false, 0);
  h.access_data(0x40, false, 200);  // conflicts with 0x0 in L1, fills L2
  const uint32_t r = h.access_data(0x0, false, 400);  // L1 miss, L2 hit
  EXPECT_EQ(r, 1u + 6);
  EXPECT_EQ(h.l2().stats().hits, 1u);
}

TEST(Hierarchy, InstructionPathCountsSeparately) {
  CacheHierarchy h;
  h.access_inst(0x1000, 0);
  h.access_inst(0x1000, 10);
  EXPECT_EQ(h.l1i().stats().accesses, 2u);
  EXPECT_EQ(h.l1i().stats().hits, 1u);
  EXPECT_EQ(h.l1d().stats().accesses, 0u);
}

TEST(Hierarchy, ResetClearsState) {
  CacheHierarchy h;
  h.access_data(0x100, true, 0);
  h.reset();
  EXPECT_EQ(h.l1d().stats().accesses, 0u);
  EXPECT_FALSE(h.l1d().probe(0x100));
}

TEST(Cache, Table1Geometry) {
  // The Table 1 L1D: 64KB, 2-way, 32B lines -> 1024 sets.
  Cache l1d(CacheConfig{"L1D", 64 * 1024, 2, 32, 1});
  EXPECT_EQ(l1d.num_sets(), 1024u);
  Cache l2(CacheConfig{"L2", 256 * 1024, 4, 32, 6});
  EXPECT_EQ(l2.num_sets(), 2048u);
  Cache l3(CacheConfig{"L3", 2 * 1024 * 1024, 4, 64, 18});
  EXPECT_EQ(l3.num_sets(), 8192u);
}

}  // namespace
}  // namespace cfir::mem
