#include "ci/spec_memory.hpp"

#include <cassert>

namespace cfir::ci {

SpecDataMemory::SpecDataMemory(uint32_t slots, uint32_t latency,
                               uint32_t read_ports, uint32_t write_ports)
    : latency_(latency), read_ports_(read_ports), write_ports_(write_ports) {
  values_.assign(slots, 0);
  free_.reserve(slots);
  for (int s = static_cast<int>(slots) - 1; s >= 0; --s) free_.push_back(s);
}

int SpecDataMemory::alloc() {
  if (free_.empty()) return -1;
  const int s = free_.back();
  free_.pop_back();
  return s;
}

void SpecDataMemory::free_slot(int slot) {
  assert(slot >= 0 && slot < static_cast<int>(values_.size()));
  free_.push_back(slot);
}

uint64_t SpecDataMemory::book_write(uint64_t cycle) {
  uint64_t c = cycle;
  while (writes_at_[c] >= write_ports_) ++c;
  ++writes_at_[c];
  // Opportunistic cleanup of old bookings.
  if (writes_at_.size() > 1024 && cycle > gc_watermark_ + 1024) {
    for (auto it = writes_at_.begin(); it != writes_at_.end();) {
      it = it->first < cycle ? writes_at_.erase(it) : std::next(it);
    }
    for (auto it = reads_at_.begin(); it != reads_at_.end();) {
      it = it->first < cycle ? reads_at_.erase(it) : std::next(it);
    }
    gc_watermark_ = cycle;
  }
  return c;
}

bool SpecDataMemory::try_book_read(uint64_t cycle) {
  auto& n = reads_at_[cycle];
  if (n >= read_ports_) return false;
  ++n;
  return true;
}

}  // namespace cfir::ci
