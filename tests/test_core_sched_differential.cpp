// Differential oracle for the detailed-core scheduler rewrite
// (src/core/pipeline.*): CFIR_CORE_SCHED=fast (calendar-queue wakeup,
// intrusive stall lists, epoch-gated load retries — the default) must be
// indistinguishable from =ref (the original heap/sort scheduler, kept
// verbatim) in every simulated result. "Indistinguishable" is byte
// equality, not field spot-checks:
//
//  - plain Simulator runs: serialized SimStats (stats::serialize) and the
//    cycle counter match across a config matrix that stresses every
//    replaced structure — 1-port scalar (mem-port retries), the paper's CI
//    mechanism (replica engine riding the same core loop), and a
//    1K-entry-ROB wide window (calendar wrap + long stall lists);
//  - the acceptance grid: {bzip2, parser, twolf} at scale 8 ×
//    {detailed, functional, hybrid} warming, executed through the full
//    plan / bind / run_shard grid path, with the merged CFIRSHD2 payloads
//    byte-equal after zeroing the host wall-clock telemetry (the only
//    fields documented as host-dependent, trace/shard.hpp).
//
// The knob itself is covered too: unset/empty/"fast" select the fast
// scheduler, "ref" the reference, anything else throws.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "helpers.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"
#include "trace/sampling.hpp"
#include "trace/shard.hpp"
#include "util/warmable.hpp"
#include "workloads/workloads.hpp"

namespace cfir {
namespace {

/// Sets CFIR_CORE_SCHED for the lifetime of one scoped run and restores
/// the unset default after, so tests cannot leak a mode into each other.
class ScopedSched {
 public:
  explicit ScopedSched(const char* mode) { setenv("CFIR_CORE_SCHED", mode, 1); }
  ~ScopedSched() { unsetenv("CFIR_CORE_SCHED"); }
};

[[nodiscard]] std::vector<uint8_t> stats_bytes(const stats::SimStats& s) {
  util::ByteWriter w;
  stats::serialize(s, w);
  return w.take();
}

struct RunResult {
  std::vector<uint8_t> stats;
  uint64_t cycles = 0;
  uint64_t committed = 0;
};

[[nodiscard]] RunResult run_sim(const core::CoreConfig& config,
                                const isa::Program& program, const char* sched,
                                uint64_t max_insts) {
  ScopedSched scoped(sched);
  sim::Simulator sim(config, program);
  const stats::SimStats st = sim.run(max_insts);
  return {stats_bytes(st), st.cycles, st.committed};
}

[[nodiscard]] core::CoreConfig wide_window_config() {
  core::CoreConfig c = sim::presets::scal(1, 2048);
  c.rob_size = 1024;
  c.lsq_size = 512;
  return c;
}

/// The config matrix every identity test runs: each point stresses a
/// different replaced structure (see file comment).
[[nodiscard]] std::vector<std::pair<const char*, core::CoreConfig>>
sched_matrix() {
  return {
      {"scal1p", sim::presets::scal(1, 256)},
      {"ci2p", sim::presets::ci(2, 256)},
      {"wide1p", wide_window_config()},
  };
}

TEST(CoreSchedKnob, EnvSelection) {
  unsetenv("CFIR_CORE_SCHED");
  EXPECT_EQ(core::sched_mode_from_env(), core::SchedMode::kFast);
  {
    ScopedSched s("");
    EXPECT_EQ(core::sched_mode_from_env(), core::SchedMode::kFast);
  }
  {
    ScopedSched s("fast");
    EXPECT_EQ(core::sched_mode_from_env(), core::SchedMode::kFast);
  }
  {
    ScopedSched s("ref");
    EXPECT_EQ(core::sched_mode_from_env(), core::SchedMode::kRef);
  }
  {
    ScopedSched s("quantum");
    EXPECT_THROW(static_cast<void>(core::sched_mode_from_env()),
                 std::runtime_error);
  }
}

TEST(CoreSchedDifferential, SimulatorStatsByteEqual) {
  for (const std::string& name : {"bzip2", "parser", "twolf"}) {
    const isa::Program program = workloads::build(name, 8);
    for (const auto& [cfg_name, config] : sched_matrix()) {
      const RunResult ref = run_sim(config, program, "ref", 120000);
      const RunResult fast = run_sim(config, program, "fast", 120000);
      EXPECT_EQ(ref.stats, fast.stats) << name << "/" << cfg_name;
      EXPECT_EQ(ref.cycles, fast.cycles) << name << "/" << cfg_name;
      EXPECT_GT(fast.committed, 0u) << name << "/" << cfg_name;
    }
  }
}

/// Random programs reach squash/retry interleavings the curated kernels
/// may not (misfetched wakeups, stale calendar nodes, LSQ squashes that
/// must bump the retry-gate epoch).
TEST(CoreSchedDifferential, RandomProgramsByteEqual) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const isa::Program program = testing::random_program(seed);
    for (const auto& [cfg_name, config] : sched_matrix()) {
      const RunResult ref = run_sim(config, program, "ref", 60000);
      const RunResult fast = run_sim(config, program, "fast", 60000);
      EXPECT_EQ(ref.stats, fast.stats) << "seed " << seed << "/" << cfg_name;
      EXPECT_EQ(ref.cycles, fast.cycles) << "seed " << seed << "/" << cfg_name;
    }
  }
}

/// Strips the fields documented as host telemetry (trace/shard.hpp v3:
/// warm-capture wall and per-(interval, config) detail wall) so the
/// remaining payload is pure simulated result.
[[nodiscard]] std::vector<uint8_t> simulated_payload(trace::ShardResult r) {
  r.warm_wall_us = 0;
  for (auto& interval : r.intervals) interval.wall_us.clear();
  return r.serialize();
}

[[nodiscard]] std::vector<uint8_t> run_grid(const isa::Program& program,
                                            trace::WarmMode warm_mode,
                                            const char* sched) {
  ScopedSched scoped(sched);
  const trace::IntervalPlan plan =
      trace::plan_intervals(program, 2, 120000, 5000, warm_mode);
  const std::vector<std::pair<std::string, core::CoreConfig>> points = {
      {"scal1p", sim::presets::scal(1, 256)},
      {"ci2p", sim::presets::ci(2, 256)},
  };
  const std::vector<trace::ConfigBinding> bindings =
      trace::bind_configs(plan, points, program);
  return simulated_payload(trace::run_shard(bindings, program, plan));
}

/// The acceptance matrix: every workload × warm mode, through the same
/// grid path a sharded experiment takes. Byte-equal CFIRSHD2 payloads
/// imply equal per-interval stats, warm counts, and merged grids.
TEST(CoreSchedDifferential, ShardGridByteEqualAcrossWarmModes) {
  const std::vector<std::pair<const char*, trace::WarmMode>> modes = {
      {"detailed", trace::WarmMode::kDetailed},
      {"functional", trace::WarmMode::kFunctional},
      {"hybrid", trace::WarmMode::kHybrid},
  };
  for (const std::string& name : {"bzip2", "parser", "twolf"}) {
    const isa::Program program = workloads::build(name, 8);
    for (const auto& [mode_name, mode] : modes) {
      const std::vector<uint8_t> ref = run_grid(program, mode, "ref");
      const std::vector<uint8_t> fast = run_grid(program, mode, "fast");
      EXPECT_EQ(ref, fast) << name << "/" << mode_name;
    }
  }
}

}  // namespace
}  // namespace cfir
