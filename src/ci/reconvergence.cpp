#include "ci/reconvergence.hpp"

namespace cfir::ci {

uint64_t estimate_reconvergence_point(const isa::Program& prog,
                                      uint64_t branch_pc,
                                      const isa::Instruction& br) {
  const uint64_t target = static_cast<uint64_t>(br.imm);
  if (target <= branch_pc) {
    // Backward branch: loop-closing; re-converges at the fall-through
    // (Figure 2a).
    return branch_pc + isa::kInstBytes;
  }
  // Forward branch: inspect the instruction one location above the target.
  const uint64_t probe_pc = target - isa::kInstBytes;
  const isa::Instruction* probe = prog.try_at(probe_pc);
  if (probe != nullptr && probe->op == isa::Opcode::kJmp &&
      static_cast<uint64_t>(probe->imm) > probe_pc) {
    // Unconditional forward branch right above the target: the classic
    // if-then-else shape (Figure 2c); re-converge where that jump lands.
    return static_cast<uint64_t>(probe->imm);
  }
  // if-then shape (Figure 2b): re-converge at the branch target itself.
  return target;
}

void Nrbq::push(uint64_t branch_seq, uint64_t branch_pc, uint64_t rp_pc) {
  if (q_.size() >= capacity_) q_.pop_front();
  q_.push_back(NrbqEntry{branch_seq, branch_pc, rp_pc, 0});
}

void Nrbq::observe_pc(uint64_t pc) {
  for (NrbqEntry& e : q_) {
    if (!e.reached && e.rp_pc == pc) e.reached = true;
  }
}

void Nrbq::on_dest_write(int logical) {
  const uint64_t bit = uint64_t{1} << logical;
  for (NrbqEntry& e : q_) {
    if (!e.reached) e.mask |= bit;
  }
}

void Nrbq::on_branch_commit(uint64_t branch_seq) {
  if (!q_.empty() && q_.front().branch_seq == branch_seq) q_.pop_front();
}

void Nrbq::on_branch_squash(uint64_t branch_seq) {
  if (!q_.empty() && q_.back().branch_seq == branch_seq) q_.pop_back();
}

uint64_t Nrbq::mask_of(uint64_t branch_seq) const {
  const NrbqEntry* e = find(branch_seq);
  return e == nullptr ? 0 : e->mask;
}

const NrbqEntry* Nrbq::find(uint64_t branch_seq) const {
  for (const NrbqEntry& e : q_) {
    if (e.branch_seq == branch_seq) return &e;
  }
  return nullptr;
}

}  // namespace cfir::ci
