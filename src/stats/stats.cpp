#include "stats/stats.hpp"

#include <sstream>

namespace cfir::stats {

std::string SimStats::to_string() const {
  std::ostringstream os;
  os << "cycles=" << cycles << " committed=" << committed
     << " IPC=" << ipc() << '\n'
     << "fetched=" << fetched << " squashed(specBP)=" << squashed
     << " replicas(specCI)=" << replicas_executed << '\n'
     << "cond_branches=" << cond_branches << " mispredicts=" << mispredicts
     << " rate=" << mispredict_rate() << '\n'
     << "CI episodes=" << ep_total << " selected=" << ep_ci_selected
     << " reused=" << ep_ci_reused << '\n'
     << "reused_committed=" << reused_committed
     << " (" << 100.0 * reuse_fraction() << "% of committed)\n"
     << "L1D accesses=" << l1d_accesses << " misses=" << l1d_misses
     << " wide=" << wide_accesses << " piggybacked=" << loads_piggybacked
     << '\n'
     << "store range checks=" << store_range_checks
     << " conflicts=" << store_range_conflicts << '\n'
     << "avg regs in use=" << avg_regs_in_use()
     << " max=" << regs_in_use_max
     << " rename stalls=" << rename_stall_cycles << '\n'
     << "validations failed=" << validations_failed
     << " misvalidation squashes=" << misvalidation_squashes
     << " safety net=" << safety_net_recoveries << '\n';
  return os.str();
}

double harmonic_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double denom = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    denom += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / denom;
}

}  // namespace cfir::stats
