#include "branch/ras.hpp"
#include <cstddef>

namespace cfir::branch {

void ReturnAddressStack::push(uint64_t return_pc) {
  if (state_.top == kEntries) {
    // Overflow: shift down (oldest entry lost), standard RAS behaviour.
    for (int i = 1; i < kEntries; ++i) state_.stack[static_cast<size_t>(i - 1)] = state_.stack[static_cast<size_t>(i)];
    state_.top = kEntries - 1;
  }
  state_.stack[static_cast<size_t>(state_.top++)] = return_pc;
}

uint64_t ReturnAddressStack::pop() {
  if (state_.top == 0) return 0;
  return state_.stack[static_cast<size_t>(--state_.top)];
}

uint64_t ReturnAddressStack::peek() const {
  return state_.top == 0 ? 0 : state_.stack[static_cast<size_t>(state_.top - 1)];
}

}  // namespace cfir::branch
