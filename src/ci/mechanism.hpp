// CiMechanism — the paper's contribution, assembled: MBS-gated hard-branch
// filtering, NRBQ/CRP re-convergence tracking, CI instruction selection,
// stride-predictor-driven speculative vectorization through the SRSMT and
// replica engine, validation/reuse at decode, DAEC register reclamation and
// store-range memory coherence.
//
// The same class implements the `vect` baseline (reference [12] of the
// paper: full-blown dynamic vectorization) by switching the selection
// policy to "every confident strided load", with no MBS/CRP gating.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "ci/replica_engine.hpp"
#include "ci/reconvergence.hpp"
#include "ci/spec_memory.hpp"
#include "ci/srsmt.hpp"
#include "ci/stride_predictor.hpp"
#include "core/pipeline.hpp"

namespace cfir::ci {

/// Rename-map extension, paper Figures 3 and 7: per logical register the
/// stridedPC set (capped at cfg.stridedpc_per_entry) plus the V/S flag and
/// the producer "sequence" (PC) with its SRSMT entry identity.
struct RenameExt {
  std::array<uint64_t, 4> strided_pcs{};
  uint8_t strided_count = 0;
  bool vs = false;
  uint64_t seq_pc = 0;
  uint32_t entry_slot = kInvalidSrsmtSlot;
  uint32_t entry_uid = 0;
};

class CiMechanism : public core::Mechanism {
 public:
  explicit CiMechanism(const core::CoreConfig& cfg);
  ~CiMechanism() override;

  void attach(core::Core& core) override;
  void on_decode(core::DynInst& di) override;
  void on_renamed(core::DynInst& di) override;
  void on_mispredict_pre(core::DynInst& di) override;
  void on_branch_resolved(core::DynInst& di, bool mispredicted) override;
  void on_squash(core::DynInst& di) override;
  void on_commit(core::DynInst& di) override;
  bool on_store_commit(core::DynInst& di) override;
  void issue_cycle(uint64_t cycle, core::CycleResources& res) override;
  void on_misvalidation(core::DynInst& di) override;
  void on_watchdog_reclaim() override;
  bool copy_source_ready(const core::DynInst& di) override;
  void register_copy_waiter(uint32_t rob_slot, const core::DynInst& di) override;
  bool try_issue_copy(core::DynInst& di, uint64_t cycle, uint32_t& latency,
                      uint64_t& value) override;
  [[nodiscard]] uint32_t store_commit_extra_cycles() const override {
    return 1;  // section 2.4.3
  }
  [[nodiscard]] uint32_t max_store_commits_per_cycle() const override {
    return 2;  // section 2.4.3
  }

  /// Folds episode statistics (Figure 5) into the core's stat block; called
  /// by the simulator after the run. Incremental: only the delta since the
  /// previous call is added, so the warm-up machinery can snapshot stats
  /// mid-run (Simulator::run is re-entrant) without double counting.
  void finalize() override;

  /// Extra hardware budget of the scheme, section 3.1 (bytes).
  [[nodiscard]] uint64_t storage_bytes() const;

  // Introspection for tests and examples.
  [[nodiscard]] const Srsmt& srsmt() const { return srsmt_; }
  [[nodiscard]] const StridePredictor& stride_predictor() const {
    return stride_;
  }
  /// Mutable access for the functional-warming path, which installs a
  /// commit-order-trained stride table before the first cycle.
  [[nodiscard]] StridePredictor& stride_predictor() { return stride_; }
  [[nodiscard]] const Nrbq& nrbq() const { return nrbq_; }
  [[nodiscard]] const Crp& crp() const { return crp_; }
  [[nodiscard]] const RenameExt& rename_ext(int logical) const {
    return ext_[static_cast<size_t>(logical)];
  }

 private:
  struct EpisodeStats {
    uint64_t episodes = 0;
    uint64_t selected = 0;
    uint64_t reused = 0;
    bool cur_selected = false;
    bool cur_reused = false;
  };

  [[nodiscard]] bool vect_policy() const {
    return cfg_.policy == core::Policy::kVect;
  }
  [[nodiscard]] static bool vectorizable_arith(const isa::Instruction& inst);
  /// Validation at decode; may set the reuse fields of `di`.
  void validate_or_create(core::DynInst& di);
  void create_load_entry(core::DynInst& di, const StridePredictor::Info& sp);
  void create_arith_entry(core::DynInst& di);
  void mark_selected(uint64_t branch_pc);
  void mark_reused(uint64_t branch_pc);
  void run_daec();

  core::CoreConfig cfg_;
  core::Core* core_ = nullptr;
  StridePredictor stride_;
  Srsmt srsmt_;
  std::unique_ptr<SpecDataMemory> specmem_;
  std::unique_ptr<ReplicaEngine> engine_;
  Nrbq nrbq_;
  Crp crp_;
  std::array<RenameExt, isa::kNumLogicalRegs> ext_{};
  std::unordered_map<uint64_t, EpisodeStats> episodes_;
  /// Episode totals already folded into the core stats by finalize().
  uint64_t folded_episodes_ = 0;
  uint64_t folded_selected_ = 0;
  uint64_t folded_reused_ = 0;
};

}  // namespace cfir::ci
