// CFIRTRC2 internals: the columnar, block-compressed, seekable trace
// codec behind the TraceWriter/TraceReader facade (trace/trace.hpp owns
// the public API and the format constants; docs/trace-format.md has the
// full byte-level layout).
//
// The committed-record stream is split into fixed-capacity blocks
// (`block_len` records, default trace.hpp kTraceBlockLen) and each block
// stores its records as independently coded per-field columns — kinds,
// pc-delta flags + varints, branch taken/target bits, per-kind memory
// address delta-of-delta streams, access widths. Every block carries the
// inter-block coder state it starts from (predicted pc, last load/store
// address and stride), so any block decodes with no earlier block — that
// is what makes the format seekable. Integrity is layered the same way:
// each block ends in its own CRC-32 footer (blob.hpp "CRC1" form),
// the block index + header are covered by an index CRC in the footer,
// and the file still ends with the standard whole-file CRC footer for
// blob-level tooling — which TraceReader deliberately does NOT verify at
// open, so opening and seeking stay O(index), never O(file) decode work.
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace cfir::trace::v2 {

/// One block of the index footer: records [first_record,
/// first_record + count) live at absolute file offset `offset`.
struct BlockIndexEntry {
  uint64_t first_record = 0;
  uint64_t offset = 0;
  uint32_t count = 0;
};

/// Serialized size of one index entry (u64 + u64 + u32).
inline constexpr size_t kIndexEntryBytes = 20;

/// A validated, fully buffered CFIRTRC2 file: header fields, the block
/// index, and the raw bytes blocks decode out of. Opening validates the
/// header, the index footer and its CRC — but no block payload; those are
/// CRC-checked individually by decode_block, so a reader that seeks only
/// pays for the blocks it touches.
struct FileView {
  TraceMeta meta;
  uint64_t record_count = 0;
  uint64_t final_digest = 0;
  std::array<uint64_t, isa::kNumLogicalRegs> final_regs{};
  uint32_t block_len = 0;     ///< block capacity in records
  uint64_t index_offset = 0;  ///< where the blocks region ends
  std::vector<BlockIndexEntry> blocks;
  std::vector<uint8_t> bytes;  ///< the entire file, one read at open
};

/// Opens and validates `path` as CFIRTRC2. Throws BadMagicError /
/// VersionError / CorruptFileError per the trace/errors.hpp contract;
/// an unfinished file (sentinel record count) throws std::runtime_error
/// exactly like the v1 reader.
[[nodiscard]] FileView open_file(const std::string& path);

/// Decodes block `b` after verifying its CRC footer (CorruptFileError on
/// any mismatch or malformed column). Pure function of the FileView —
/// safe to call from parallel workers. Counts one `trace.blocks_read`
/// plus the block's records/bytes into the decode counters.
[[nodiscard]] std::vector<TraceRecord> decode_block(const FileView& file,
                                                    size_t b);

/// Per-column compressed payload bytes summed over every block (walks
/// only the block headers — no payload decode). Order matches
/// trace_v2_column_name.
[[nodiscard]] std::array<uint64_t, kTraceV2Columns> column_bytes(
    const FileView& file);

/// Streaming CFIRTRC2 writer: buffers `block_len` records, encodes and
/// flushes them as one columnar block, and on finish() writes the index
/// footer, rewrites the header with the final counts, and appends the
/// whole-file CRC footer. Owned by the TraceWriter facade.
class BlockWriter {
 public:
  BlockWriter(const std::string& path, const TraceMeta& meta,
              uint32_t block_len);

  void append(const TraceRecord& rec);
  void finish(const std::array<uint64_t, isa::kNumLogicalRegs>& final_regs,
              uint64_t final_digest);

 private:
  void flush_block();

  std::ofstream out_;
  std::string path_;
  TraceMeta meta_;
  uint32_t block_len_;
  uint64_t records_ = 0;
  std::vector<TraceRecord> pending_;
  std::vector<BlockIndexEntry> index_;

  // Inter-block coder state, snapshotted into each block's header so the
  // block decodes standalone.
  uint64_t pred_pc_;
  uint64_t load_addr_ = 0;
  uint64_t load_delta_ = 0;
  uint64_t store_addr_ = 0;
  uint64_t store_delta_ = 0;
};

}  // namespace cfir::trace::v2
