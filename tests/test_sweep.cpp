#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "sim/pool.hpp"
#include "sim/presets.hpp"

namespace cfir::sim {
namespace {

TEST(Sweep, RunsGridInOrder) {
  std::vector<RunSpec> specs;
  for (const char* wl : {"bzip2", "eon"}) {
    for (uint32_t ports : {1u, 2u}) {
      RunSpec s;
      s.workload = wl;
      s.config_name = "scal" + std::to_string(ports) + "p";
      s.config = presets::scal(ports, 256);
      s.max_insts = 20000;
      specs.push_back(s);
    }
  }
  const auto out = run_all(specs, 2);
  ASSERT_EQ(out.size(), 4u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].spec.workload, specs[i].workload);
    EXPECT_EQ(out[i].spec.config_name, specs[i].config_name);
    EXPECT_GT(out[i].stats.committed, 0u);
    EXPECT_GT(out[i].stats.ipc(), 0.0);
  }
}

TEST(Sweep, ParallelEqualsSerial) {
  std::vector<RunSpec> specs;
  for (const char* wl : {"gap", "vpr", "twolf"}) {
    RunSpec s;
    s.workload = wl;
    s.config_name = "ci";
    s.config = presets::ci(2, 512);
    s.max_insts = 20000;
    specs.push_back(s);
  }
  const auto serial = run_all(specs, 1);
  const auto parallel = run_all(specs, 3);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].stats.cycles, parallel[i].stats.cycles) << i;
    EXPECT_EQ(serial[i].stats.committed, parallel[i].stats.committed) << i;
    EXPECT_EQ(serial[i].stats.reused_committed,
              parallel[i].stats.reused_committed)
        << i;
  }
}

// Worker exceptions must reach the caller: a sweep that swallowed them
// would report zeroed outcomes as if the grid point ran. The first thrown
// error is rethrown on the calling thread after the pool joins, for both
// the inline (threads <= 1) and the threaded path.
TEST(Sweep, ParallelForRethrowsWorkerException) {
  for (const int threads : {1, 4}) {
    std::atomic<size_t> ran{0};
    try {
      parallel_for(
          8,
          [&](size_t i) {
            ran.fetch_add(1);
            if (i == 3) throw std::runtime_error("task 3 exploded");
          },
          threads);
      FAIL() << "parallel_for swallowed the worker exception (threads="
             << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 3 exploded") << "threads=" << threads;
    }
    // Failure stops the pool handing out further work, so not every task
    // necessarily ran — but the throwing one did.
    EXPECT_GE(ran.load(), 4u) << "threads=" << threads;
    EXPECT_LE(ran.load(), 8u) << "threads=" << threads;
  }
}

// Every task completed => no exception, all indices visited exactly once.
TEST(Sweep, ParallelForRunsEachIndexOnce) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(hits.size(), [&](size_t i) { hits[i].fetch_add(1); }, 4);
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Sweep, UnknownWorkloadReportsError) {
  std::vector<RunSpec> specs(1);
  specs[0].workload = "doom";
  specs[0].config = presets::scal(1, 256);
  specs[0].max_insts = 10;
  EXPECT_THROW(run_all(specs, 1), std::runtime_error);
}

TEST(Sweep, SampledSpecsExposePhasesAndShardsPartition) {
  // A sampled grid point surfaces per-phase stats, and two complementary
  // shard specs of the same plan split its intervals and merge back to the
  // unsharded stats exactly (the bench-level CFIR_SHARD contract).
  RunSpec whole;
  whole.workload = "bzip2";
  whole.config_name = "ci";
  whole.config = presets::ci(2, 512);
  whole.max_insts = 30000;
  whole.intervals = 4;
  whole.warmup = 200;

  RunSpec half0 = whole, half1 = whole;
  half0.shard_count = half1.shard_count = 2;
  half0.shard_index = 0;
  half1.shard_index = 1;

  const auto out = run_all({whole, half0, half1}, 1);
  ASSERT_EQ(out.size(), 3u);
  ASSERT_EQ(out[0].phases.size(), 4u);
  EXPECT_EQ(out[1].phases.size(), 2u);
  EXPECT_EQ(out[2].phases.size(), 2u);
  uint64_t phase_committed = 0;
  for (const PhaseOutcome& ph : out[0].phases) {
    EXPECT_EQ(ph.weight, 1.0);
    phase_committed += ph.stats.committed;
  }
  EXPECT_EQ(phase_committed, out[0].stats.committed);

  stats::SimStats folded = out[1].stats;
  folded.merge(out[2].stats);
  EXPECT_EQ(folded.cycles, out[0].stats.cycles);
  EXPECT_EQ(folded.committed, out[0].stats.committed);
  EXPECT_EQ(folded.reused_committed, out[0].stats.reused_committed);
  // Monolithic specs keep phases empty.
  RunSpec mono = whole;
  mono.intervals = 1;
  EXPECT_TRUE(run_all({mono}, 1)[0].phases.empty());
}

TEST(Sweep, SharedPlanGridMatchesPerColumnRunsAndReportsSavings) {
  // Config columns sharing one plan execute as a single multi-config
  // run_shard; each column must be bit-identical to running the spec
  // alone, and the savings accounting must show the plan (and the
  // functional-warming stream) amortized across the columns.
  std::vector<RunSpec> grid;
  for (const uint32_t regs : {128u, 256u, 512u}) {
    RunSpec s;
    s.workload = "bzip2";
    s.config_name = "ci2p/" + std::to_string(regs) + "r";
    s.config = presets::ci(2, regs);
    s.max_insts = 30000;
    s.intervals = 4;
    s.warm_mode = trace::WarmMode::kFunctional;
    s.detail_len = 500;
    grid.push_back(std::move(s));
  }
  SweepSavings savings;
  const auto together = run_all(grid, 2, &savings);
  ASSERT_EQ(together.size(), 3u);
  EXPECT_EQ(savings.sampled_points, 3u);
  EXPECT_EQ(savings.plans, 1u);
  EXPECT_EQ(savings.checkpoints_per_column, savings.checkpoints * 3);
  ASSERT_GT(savings.warmed_insts, 0u);
  // The warming stream is shared: the per-column cost would be 3x.
  EXPECT_EQ(savings.warmed_insts_per_column, savings.warmed_insts * 3);

  for (size_t i = 0; i < grid.size(); ++i) {
    const auto alone = run_all({grid[i]}, 1);
    EXPECT_EQ(alone[0].stats.cycles, together[i].stats.cycles) << i;
    EXPECT_EQ(alone[0].stats.committed, together[i].stats.committed) << i;
    EXPECT_EQ(alone[0].stats.reused_committed,
              together[i].stats.reused_committed)
        << i;
    ASSERT_EQ(alone[0].phases.size(), together[i].phases.size()) << i;
  }
}

// The memoized worker pool behind parallel_for and the warming pipeline:
// batches submitted concurrently from independent threads must each run
// every index exactly once (the pool multiplexes its workers across the
// live batches; each submitter drains its own).
TEST(Pool, ConcurrentBatchesFromTwoThreadsEachRunOnce) {
  ThreadPool& pool = ThreadPool::shared();
  std::vector<std::atomic<int>> a(48), b(48);
  std::thread ta([&] {
    pool.run(a.size(), [&](size_t i) { a[i].fetch_add(1); });
  });
  std::thread tb([&] {
    pool.run(b.size(), [&](size_t i) { b[i].fetch_add(1); });
  });
  ta.join();
  tb.join();
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].load(), 1) << i;
  for (size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i].load(), 1) << i;
}

// Nested run() must not deadlock even when every worker is already busy:
// the submitting task participates in draining its own inner batch, so
// the innermost batch always makes progress (the warming pipeline nests
// exactly like this — config fan-out inside a shard's interval task).
TEST(Pool, NestedRunCompletesAllIndices) {
  std::atomic<int> total{0};
  ThreadPool::shared().run(4, [&](size_t) {
    ThreadPool::shared().run(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

// max_workers caps the helpers a batch may borrow; with a cap of 1 the
// observed concurrency can never exceed 2 (one helper + the submitter),
// no matter how many workers the pool owns.
TEST(Pool, MaxWorkersBoundsConcurrency) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> live{0}, high{0};
  pool.run(
      64,
      [&](size_t) {
        const int now = live.fetch_add(1) + 1;
        int seen = high.load();
        while (now > seen && !high.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        live.fetch_sub(1);
      },
      /*max_workers=*/1);
  EXPECT_LE(high.load(), 2);
  EXPECT_GE(high.load(), 1);
}

TEST(Sweep, EnvWarmJobsParses) {
  ASSERT_EQ(setenv("CFIR_WARM_JOBS", "4", 1), 0);
  EXPECT_EQ(env_warm_jobs(), 4);
  ASSERT_EQ(unsetenv("CFIR_WARM_JOBS"), 0);
  EXPECT_EQ(env_warm_jobs(), 0);
}

TEST(Sweep, EnvShardParsesSpec) {
  ASSERT_EQ(setenv("CFIR_SHARD", "1/3", 1), 0);
  const trace::ShardSelection sel = env_shard();
  EXPECT_EQ(sel.index, 1u);
  EXPECT_EQ(sel.count, 3u);
  ASSERT_EQ(setenv("CFIR_SHARD", "bogus", 1), 0);
  EXPECT_THROW((void)env_shard(), std::runtime_error);
  ASSERT_EQ(unsetenv("CFIR_SHARD"), 0);
  EXPECT_EQ(env_shard().count, 1u);
}

}  // namespace
}  // namespace cfir::sim
