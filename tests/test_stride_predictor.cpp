#include "ci/stride_predictor.hpp"

#include <gtest/gtest.h>

namespace cfir::ci {
namespace {

TEST(StridePredictor, LearnsConstantStride) {
  StridePredictor sp;
  const uint64_t pc = 0x1000;
  for (int i = 0; i < 5; ++i) {
    sp.train(pc, 0x100000 + static_cast<uint64_t>(i) * 8);
  }
  const auto info = sp.lookup(pc);
  ASSERT_TRUE(info.known);
  EXPECT_TRUE(info.confident);
  EXPECT_EQ(info.stride, 8);
  EXPECT_EQ(info.last_addr, 0x100000u + 4 * 8);
}

TEST(StridePredictor, UnknownPc) {
  StridePredictor sp;
  EXPECT_FALSE(sp.lookup(0x4242).known);
}

TEST(StridePredictor, NegativeStride) {
  StridePredictor sp;
  const uint64_t pc = 0x2000;
  for (int i = 0; i < 5; ++i) {
    sp.train(pc, 0x200000 - static_cast<uint64_t>(i) * 16);
  }
  const auto info = sp.lookup(pc);
  EXPECT_TRUE(info.confident);
  EXPECT_EQ(info.stride, -16);
}

TEST(StridePredictor, StrideChangeDropsConfidenceAndSelection) {
  StridePredictor sp;
  const uint64_t pc = 0x3000;
  for (int i = 0; i < 6; ++i) {
    sp.train(pc, 0x100000 + static_cast<uint64_t>(i) * 8);
  }
  EXPECT_TRUE(sp.select(pc, 0x77));
  EXPECT_TRUE(sp.lookup(pc).selected);
  // Break the pattern repeatedly: random-ish addresses.
  sp.train(pc, 0x900000);
  sp.train(pc, 0x5000);
  sp.train(pc, 0x123456);
  sp.train(pc, 0x77777);
  const auto info = sp.lookup(pc);
  EXPECT_FALSE(info.confident);
  EXPECT_FALSE(info.selected);  // S flag cleared when the stream died
}

TEST(StridePredictor, SelectionRequiresEntry) {
  StridePredictor sp;
  EXPECT_FALSE(sp.select(0xAAAA, 1));
  sp.train(0xAAAA, 0x100);
  EXPECT_TRUE(sp.select(0xAAAA, 0x99));
  EXPECT_EQ(sp.lookup(0xAAAA).origin_branch_pc, 0x99u);
  sp.clear_selection(0xAAAA);
  EXPECT_FALSE(sp.lookup(0xAAAA).selected);
}

TEST(StridePredictor, ConfidenceIsTwoBitSaturating) {
  StridePredictor sp;
  const uint64_t pc = 0x5000;
  // Warmup: first train only records the address, second learns the
  // stride; repeats then raise the 2-bit counter toward saturation.
  sp.train(pc, 100);
  sp.train(pc, 108);   // stride learned, confidence 0
  EXPECT_FALSE(sp.lookup(pc).confident);
  sp.train(pc, 116);   // confidence 1
  EXPECT_FALSE(sp.lookup(pc).confident);
  sp.train(pc, 124);   // confidence 2: trusted ("greater than 1")
  EXPECT_TRUE(sp.lookup(pc).confident);
  sp.train(pc, 132);   // confidence 3 (saturates)
  // One break decrements but stays confident (3 -> 2).
  sp.train(pc, 0x900000);
  EXPECT_TRUE(sp.lookup(pc).confident);
  // A second break drops below the threshold.
  sp.train(pc, 0x5);
  EXPECT_FALSE(sp.lookup(pc).confident);
}

TEST(StridePredictor, SetAssociativeEviction) {
  StridePredictor sp(2, 2);  // 2 sets x 2 ways
  // Four PCs mapping to set 0 (pc>>2 even).
  const uint64_t pcs[3] = {0x00, 0x10, 0x20};
  for (uint64_t pc : pcs) sp.train(pc, 0x100);
  // Only two ways: the LRU (0x00) must have been evicted.
  EXPECT_FALSE(sp.lookup(0x00).known);
  EXPECT_TRUE(sp.lookup(0x10).known);
  EXPECT_TRUE(sp.lookup(0x20).known);
}

TEST(StridePredictor, StorageBudgetMatchesPaper) {
  StridePredictor sp(256, 4);
  EXPECT_EQ(sp.storage_bytes(), 24576u);  // section 3.1
}

}  // namespace
}  // namespace cfir::ci
