#include "isa/program.hpp"

#include <sstream>

namespace cfir::isa {

void Program::set_label(std::string name, uint64_t pc) {
  labels_.emplace_back(std::move(name), pc);
}

std::optional<uint64_t> Program::label(const std::string& name) const {
  for (const auto& [n, pc] : labels_) {
    if (n == name) return pc;
  }
  return std::nullopt;
}

std::string Program::listing() const {
  std::ostringstream os;
  for (size_t i = 0; i < code_.size(); ++i) {
    const uint64_t pc = pc_of(i);
    for (const auto& [n, lpc] : labels_) {
      if (lpc == pc) os << n << ":\n";
    }
    os << "  " << disassemble(code_[i], pc) << '\n';
  }
  return os.str();
}

}  // namespace cfir::isa
