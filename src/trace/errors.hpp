// Typed failure modes of the binary file formats (trace / checkpoint /
// manifest / shard blobs). Every reader throws the most specific class that
// applies, so callers — `trace_tool` in particular — can map failures to
// distinct exit codes and actionable messages instead of collapsing
// everything into one generic error. All classes derive from
// std::runtime_error, so existing catch sites keep working unchanged.
//
// trace_tool's exit-code contract (docs/sharding.md "Exit codes"):
//   2  usage error
//   3  BadMagicError       — not a CFIR file of the expected kind
//   4  VersionError        — right kind, unsupported format version
//   5  ConfigMismatchError — artifacts from incompatible configs/plans
//   6  CorruptFileError    — truncated file or CRC/structure mismatch
//   1  anything else
#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace cfir::trace {

/// Formats a hash for error messages ("0x1b0a735794fb1467").
[[nodiscard]] inline std::string hex64(uint64_t v) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// The file does not start with the expected magic string: it is a
/// different kind of file (or not a CFIR artifact at all).
class BadMagicError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Recognized magic but a format version this build cannot decode.
class VersionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Artifacts whose config hashes disagree were combined — e.g. a shard
/// result produced under a different core config or interval plan than the
/// manifest it is being merged against.
class ConfigMismatchError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Structurally broken file: truncated payload, CRC footer mismatch, or
/// fields that contradict each other.
class CorruptFileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace cfir::trace
