#include "core/config.hpp"

#include <algorithm>
#include <sstream>

namespace cfir::core {

std::string CoreConfig::label() const {
  std::ostringstream os;
  switch (policy) {
    case Policy::kNone: os << (wide_bus ? "wb" : "scal"); break;
    case Policy::kCi: os << (use_spec_memory ? "ci-h" : "ci"); break;
    case Policy::kCiWindow: os << "ci-iw"; break;
    case Policy::kVect: os << "vect"; break;
  }
  os << cache_ports << "p/" << num_phys_regs << "r";
  if (policy == Policy::kCi || policy == Policy::kVect) {
    os << "/" << replicas << "rep";
  }
  if (use_spec_memory) os << "/" << spec_memory_slots << "slots";
  return os.str();
}

void CoreConfig::scale_window_to_regs() {
  rob_size = std::max<uint32_t>(256, num_phys_regs);
}

}  // namespace cfir::core
