// Figure 4: IPC depending on the number of propagated stridedPCs per
// rename-map entry (1, 2 or 4). The paper reports SpecInt2000 needs 1.7 on
// average and that going from 2 to 4 hardly changes performance.
#include "common.hpp"

int main() {
  using namespace cfir;
  using namespace cfir::bench;
  std::vector<NamedConfig> configs;
  for (const uint32_t pcs : {1u, 2u, 4u}) {
    core::CoreConfig cfg = sim::presets::ci(2, 256);
    cfg.stridedpc_per_entry = pcs;
    configs.push_back({std::to_string(pcs) + "PC", cfg});
  }
  run_figure(
      "Figure 4: IPC vs propagated stridedPCs per rename entry (ci2p, 256 "
      "regs, 4 replicas)",
      configs, [](const stats::SimStats& s) { return s.ipc(); });

  // The paper's companion number: average stridedPC set width actually
  // propagated (SpecInt2000: ~1.7).
  std::vector<sim::RunSpec> specs;
  for (const std::string& wl : workloads::names()) {
    sim::RunSpec s;
    s.workload = wl;
    s.config_name = "4PC";
    s.config = sim::presets::ci(2, 256);
    s.config.stridedpc_per_entry = 4;
    s.max_insts = default_max_insts();
    s.scale = sim::env_scale();
    s.intervals = sim::env_intervals();
    s.sample_mode = sim::env_sample_mode();
    s.warmup = sim::env_warmup();
    s.warm_mode = sim::env_warm_mode();
    s.detail_len = sim::env_detail_len();
    specs.push_back(std::move(s));
  }
  const auto out = sim::run_all(specs, sim::env_threads());
  double num = 0, den = 0;
  for (const auto& o : out) {
    num += static_cast<double>(o.stats.stridedpc_width_accum);
    den += static_cast<double>(o.stats.stridedpc_propagations);
  }
  std::printf("Average propagated stridedPCs per entry (4PC cap): %.2f "
              "(paper: 1.7)\n",
              den > 0 ? num / den : 0.0);
  return 0;
}
