#include "trace/batch_reader.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "sim/pool.hpp"

namespace cfir::trace {

namespace {
/// Blocks per wave. Matches the scale of bbv_from_trace's decode waves:
/// large enough to keep every decode lane busy, small enough that two
/// buffered waves stay at a few dozen MB even at the default 64Ki-record
/// block capacity.
constexpr size_t kWaveBlocks = 16;
/// Records per sequential-fallback (CFIRTRC1) batch: one default block's
/// worth, so v1 and v2 feeds see similar batch granularity.
constexpr size_t kSequentialBatch = kTraceBlockLen;
}  // namespace

BlockBatchReader::BlockBatchReader(TraceReader& reader, uint64_t limit,
                                   int jobs)
    : reader_(reader),
      limit_(std::min(limit, reader.record_count())),
      jobs_(std::max(jobs, 1)),
      wave_blocks_(std::max<size_t>(kWaveBlocks,
                                    static_cast<size_t>(std::max(jobs, 1)))),
      v2_(reader.block_count() > 0) {
  if (v2_ && jobs_ > 1 && limit_ > 0) {
    prefetching_ = true;
    prefetcher_ = std::thread([this] { produce(); });
  }
}

BlockBatchReader::~BlockBatchReader() {
  if (prefetching_) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    prefetcher_.join();
  }
}

BlockBatchReader::Batch BlockBatchReader::decode_wave() {
  Batch out;
  out.first_record = next_record_;
  const size_t n_blocks = reader_.block_count();
  size_t count = 0;
  while (next_block_ + count < n_blocks && count < wave_blocks_ &&
         reader_.block_first_record(next_block_ + count) < limit_) {
    ++count;
  }
  if (count == 0) return out;
  out.blocks.resize(count);
  const size_t first = next_block_;
  // Wave decode on the shared pool: `jobs_ - 1` helpers plus this thread,
  // so the whole pipeline honors the CFIR_WARM_JOBS cap per stage.
  sim::ThreadPool::shared().run(
      count, [&](size_t i) { out.blocks[i] = reader_.decode_block(first + i); },
      jobs_ - 1);
  next_block_ += count;
  // Trim the final block to the record limit (the wave never includes a
  // block whose first record is past it).
  uint64_t pos = out.first_record;
  for (auto& blk : out.blocks) {
    if (pos + blk.size() > limit_) {
      blk.resize(static_cast<size_t>(limit_ - pos));
    }
    pos += blk.size();
  }
  next_record_ = pos;
  return out;
}

BlockBatchReader::Batch BlockBatchReader::read_sequential() {
  Batch out;
  out.first_record = next_record_;
  if (next_record_ >= limit_) return out;
  const size_t want = static_cast<size_t>(
      std::min<uint64_t>(kSequentialBatch, limit_ - next_record_));
  std::vector<TraceRecord> records;
  records.reserve(want);
  TraceRecord rec;
  while (records.size() < want && reader_.next(rec)) records.push_back(rec);
  if (records.empty()) return out;
  next_record_ += records.size();
  out.blocks.push_back(std::move(records));
  return out;
}

void BlockBatchReader::produce() {
  for (;;) {
    Batch wave;
    std::exception_ptr err;
    try {
      wave = decode_wave();
    } catch (...) {
      err = std::current_exception();
    }
    const bool last = err != nullptr || wave.blocks.empty();
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return stop_ || !slot_full_; });
    if (stop_) return;
    slot_ = std::move(wave);
    slot_error_ = err;
    slot_full_ = true;
    cv_.notify_all();
    if (last) return;  // end-of-stream (empty) or error batch published
  }
}

bool BlockBatchReader::next_batch(Batch& out) {
  if (done_) return false;
  obs::Registry& reg = obs::Registry::instance();
  if (!prefetching_) {
    // Sequential fallback (v1 source, jobs <= 1, or empty limit): the
    // whole decode is consumer stall, so it all lands in the counter —
    // which is exactly what makes the pipelined path's near-zero wait
    // legible next to it.
    const obs::Stopwatch wait;
    out = v2_ ? decode_wave() : read_sequential();
    reg.counter("warming.decode_wait_us").add(wait.elapsed_us());
    done_ = out.blocks.empty();
    return !done_;
  }
  const obs::Stopwatch wait;
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return slot_full_; });
  reg.counter("warming.decode_wait_us").add(wait.elapsed_us());
  if (slot_error_) {
    const std::exception_ptr err = slot_error_;
    done_ = true;
    std::rethrow_exception(err);
  }
  out = std::move(slot_);
  slot_full_ = false;
  cv_.notify_all();
  done_ = out.blocks.empty();
  return !done_;
}

}  // namespace cfir::trace
