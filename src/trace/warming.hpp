// SMARTS-style functional warming (Wunderlich et al., ISCA'03 — see
// docs/sampling.md "Functional warming"): stream the committed-instruction
// records of the gap before a detailed interval through the predictors and
// caches *only*, at functional-engine speed, so the detailed interval
// starts with warm microarchitectural state without paying detailed
// simulation for the warm-up.
//
// The FunctionalWarmer owns standalone instances of every Warmable
// component the core trains on the committed path — gshare, MBS, RAS, the
// stride predictor and the four-level cache hierarchy — built from the same
// CoreConfig as the detailed core. Streaming a committed prefix through
// on_record() reproduces, component by component, exactly the state a
// detailed run's commit-path training leaves behind (tests/
// test_functional_warming.cpp locks this in per component); apply_to()
// then copies that state into a freshly constructed Simulator before its
// first cycle. Warm state also serializes to an opaque blob so it can ride
// inside CFIRCKP2 checkpoints (trace/checkpoint.hpp) and warmed intervals
// stay shardable across machines.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "branch/gshare.hpp"
#include "branch/mbs.hpp"
#include "branch/ras.hpp"
#include "ci/stride_predictor.hpp"
#include "core/config.hpp"
#include "isa/engine.hpp"
#include "isa/interpreter.hpp"
#include "isa/program.hpp"
#include "mem/hierarchy.hpp"
#include "mem/main_memory.hpp"
#include "trace/trace.hpp"

namespace cfir::sim {
class Simulator;
}  // namespace cfir::sim

namespace cfir::trace {

/// How a detailed interval's state is warmed before measurement begins.
enum class WarmMode : uint8_t {
  kNone = 0,       ///< cold start at the interval boundary
  kDetailed = 1,   ///< detail-simulate W extra instructions, subtract stats
  kFunctional = 2, ///< stream the whole prefix through predictors/caches
  kHybrid = 3,     ///< functional prefix + a short detailed tail of W insts
};

[[nodiscard]] const char* warm_mode_name(WarmMode mode);
/// Parses "none" | "detailed" | "functional" | "hybrid"; throws on typos so
/// a misspelled knob fails loudly instead of silently running cold.
[[nodiscard]] WarmMode parse_warm_mode(std::string_view name);

/// True when `mode` runs a detailed warm-up slice before the measured
/// window (and therefore wants checkpoints captured `warmup` insts early).
[[nodiscard]] constexpr bool warm_mode_has_detailed_slice(WarmMode mode) {
  return mode == WarmMode::kDetailed || mode == WarmMode::kHybrid;
}

/// True when `mode` streams a functional prefix through predictors/caches.
[[nodiscard]] constexpr bool warm_mode_has_functional_prefix(WarmMode mode) {
  return mode == WarmMode::kFunctional || mode == WarmMode::kHybrid;
}

class FunctionalWarmer {
 public:
  /// Components are sized from `config` exactly as the detailed core sizes
  /// its own; `program` must outlive the warmer (opcode lookup for RAS
  /// call/ret handling and the streaming engine both reference it).
  /// `engine_kind` selects the functional core advance_to() streams from
  /// (defaults to the CFIR_ENGINE knob; the event stream — and therefore
  /// every trained component — is bit-identical either way).
  FunctionalWarmer(const core::CoreConfig& config, const isa::Program& program,
                   isa::EngineKind engine_kind = isa::engine_kind_from_env());

  /// Feeds one committed instruction, in commit order. Callers replaying a
  /// stored CFIRTRC1 trace drive this directly; advance_to() drives it from
  /// the built-in functional engine.
  void on_record(const TraceRecord& rec);

  /// Streams committed instructions from the warmer's current position up
  /// to (program-global) instruction count `n_insts` through on_record(),
  /// using the functional engine. Monotonic: calling with a target at
  /// or below the current position is a no-op, so one warmer can snapshot
  /// several sorted interval boundaries in a single pass. After
  /// deserialize_state() the position is the blob's warmed(): the restored
  /// prefix is fast-skipped (architecturally executed, not re-trained), so
  /// resuming a shipped warmer continues exactly where serialization
  /// stopped.
  void advance_to(uint64_t n_insts);

  /// Like advance_to(), but streams the gap out of a recorded trace
  /// instead of re-executing the program on the functional engine — on a
  /// CFIRTRC2 file the reader seeks straight to the warmer's position and
  /// decodes only the covering blocks, so warming cost follows the gap,
  /// not the prefix. The record stream is identical to what advance_to
  /// feeds itself (the recorder used the same engine events), so the
  /// trained state — and serialize_state() blobs — stay bit-identical.
  /// Monotonic like advance_to; `reader` must be the trace of `program`.
  /// `context` (e.g. "interval 3 of 8") is appended to the
  /// truncated-trace error so a shard run names which warm gap fell off
  /// the end of the trace instead of just a bare record count.
  void advance_on_trace(TraceReader& reader, uint64_t n_insts,
                        std::string_view context = {});

  /// Committed instructions warmed so far.
  [[nodiscard]] uint64_t warmed() const { return warmed_; }

  /// Copies the warm component state into `sim` (which must be freshly
  /// constructed from the same CoreConfig and not yet run). The stride
  /// predictor transfers only when the policy has a CiMechanism.
  void apply_to(sim::Simulator& sim) const;

  /// Opaque warm-state blob (components + a geometry signature + position).
  /// deserialize() rejects blobs from differently configured warmers.
  [[nodiscard]] std::vector<uint8_t> serialize_state() const;
  void deserialize_state(const std::vector<uint8_t>& blob);

  // Per-component introspection for the differential tests.
  [[nodiscard]] const branch::Gshare& gshare() const { return gshare_; }
  [[nodiscard]] const branch::MbsTable& mbs() const { return mbs_; }
  [[nodiscard]] const branch::ReturnAddressStack& ras() const { return ras_; }
  [[nodiscard]] const ci::StridePredictor& stride_predictor() const {
    return stride_;
  }
  [[nodiscard]] const mem::CacheHierarchy& hierarchy() const { return hier_; }

 private:
  const isa::Program& program_;
  core::Policy policy_;
  isa::EngineKind engine_kind_;
  uint32_t l1i_line_bytes_;

  branch::Gshare gshare_;
  branch::MbsTable mbs_;
  branch::ReturnAddressStack ras_;
  ci::StridePredictor stride_;
  mem::CacheHierarchy hier_;
  uint64_t last_fetch_line_ = ~uint64_t{0};
  uint64_t warmed_ = 0;

  // Streaming functional engine (lazily started by advance_to).
  std::unique_ptr<mem::MainMemory> engine_mem_;
  std::unique_ptr<isa::FunctionalEngine> engine_;
  void ensure_engine();
};

/// One streaming engine pass capturing the serialized warm state at
/// each target instruction count (`targets` must be non-decreasing —
/// interval plans are). Element i is the blob for warming [0, targets[i]).
[[nodiscard]] std::vector<std::vector<uint8_t>> capture_warm_states(
    const core::CoreConfig& config, const isa::Program& program,
    const std::vector<uint64_t>& targets);

/// The multi-config variant behind config-grid sharding (docs/sharding.md):
/// ONE streaming engine pass fans every committed record out to one
/// FunctionalWarmer per config, so warming a whole grid costs O(prefix)
/// architectural execution instead of O(prefix × configs) — the committed
/// stream is config-independent; only the trained components differ.
/// Result[c][i] is the blob for config c warmed over [0, targets[i]), and
/// each blob is bit-identical to the one a solo capture_warm_states pass
/// under that config produces (same records, same training calls).
///
/// `jobs` caps the pipelined fan-out (docs/sampling.md "Pipelined
/// warming"): the engine decodes the stream in block-sized batches and
/// each batch trains the N configs' warmers in parallel, one task per
/// config, snapshot blobs serialized inside those tasks. Every warmer
/// still sees the identical record stream in order on a single thread,
/// so the blobs are bit-identical at every setting (ctest-locked).
/// jobs < 0 reads CFIR_WARM_JOBS (sim::env_warm_jobs), 0 means auto
/// (CFIR_THREADS / hardware concurrency) and 1 forces the sequential
/// reference path.
[[nodiscard]] std::vector<std::vector<std::vector<uint8_t>>>
capture_warm_states_grid(const std::vector<core::CoreConfig>& configs,
                         const isa::Program& program,
                         const std::vector<uint64_t>& targets, int jobs = -1);

/// Trace-fed variant: streams the committed records out of `reader`
/// instead of re-executing the program, reading only the blocks covering
/// [0, targets.back()) on a CFIRTRC2 file. Blobs are bit-identical to
/// the engine-pass variant because the recorded stream is the same event
/// stream. Throws if the trace ends before the last target. With
/// `jobs` > 1 (resolution as above) this is the fully pipelined path: a
/// BlockBatchReader (trace/batch_reader.hpp) wave-decodes upcoming
/// CFIRTRC2 blocks concurrently with the per-config fan-out, so column
/// decode + LZ never sits on the warmers' critical path (CFIRTRC1
/// sources fall back to sequential decode, keeping the parallel
/// fan-out). Overlap is observable via the warming.decode_wait_us /
/// warming.feed_us / warming.batches counters.
[[nodiscard]] std::vector<std::vector<std::vector<uint8_t>>>
capture_warm_states_grid(const std::vector<core::CoreConfig>& configs,
                         const isa::Program& program, TraceReader& reader,
                         const std::vector<uint64_t>& targets, int jobs = -1);

}  // namespace cfir::trace
