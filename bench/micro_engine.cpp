// Functional-engine throughput: the switch-dispatch reference interpreter
// versus the superblock-caching engine (isa/engine.hpp), run over workload
// kernels to architectural completion in the two configurations the
// pipeline uses:
//
//   bare    no sink attached — pure architectural fast-forward, the
//           checkpoint / planning path
//   stream  per-block sink attached — every branch/mem/step event is
//           delivered, the warming / trace-record / BBV path (the switch
//           engine pays three per-instruction std::function observers
//           here; the cached engine batches events per block)
//
// Prints a table (million insts/sec per engine and mode, plus speedups)
// and, under CFIR_JSON=1, one machine-readable line per (workload, engine,
// mode) cell with `insts_per_sec` — the figure tests/test_engine_bench.cpp
// guards.
//
// No Google Benchmark dependency: runs are long enough (hundreds of
// thousands of instructions, best-of-N) that plain wall-clock timing is
// stable, and the bench-telemetry CI smoke wants a bare CFIR_JSON stream.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "isa/engine.hpp"
#include "mem/main_memory.hpp"
#include "obs/metrics.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace cfir;

struct Cell {
  uint64_t insts = 0;
  double best_us = 0.0;
  [[nodiscard]] double insts_per_sec() const {
    return best_us > 0.0 ? static_cast<double>(insts) * 1e6 / best_us : 0.0;
  }
};

/// One full run to HALT on a fresh memory image per repetition; keeps the
/// best wall time. Engine state (including the cached engine's block
/// cache) is rebuilt every repetition so each sample pays decode cost —
/// the steady-state advantage shows anyway because decode is O(static
/// footprint) while execution is O(dynamic length).
Cell run_engine(const isa::Program& program, isa::EngineKind kind,
                bool stream, int repeats) {
  Cell cell;
  cell.best_us = 1e18;
  uint64_t event_count = 0;
  for (int r = 0; r < repeats; ++r) {
    mem::MainMemory memory;
    isa::load_data_image(program, memory);
    isa::FunctionalEngine engine(program, memory, kind);
    if (stream) {
      engine.set_sink([&event_count](uint64_t, const isa::StepEvent*,
                                     size_t n) { event_count += n; });
    }
    const obs::Stopwatch clock;
    engine.run(UINT64_MAX);
    const double us = static_cast<double>(clock.elapsed_us());
    cell.insts = engine.executed();
    cell.best_us = std::min(cell.best_us, us);
  }
  if (stream && event_count == 0) std::fprintf(stderr, "no events?\n");
  return cell;
}

void emit_json(const std::string& workload, const char* engine,
               const char* mode, const Cell& cell) {
  if (!bench::json_requested()) return;
  std::printf("{\"bench\":\"micro_engine\",\"workload\":\"%s\","
              "\"engine\":\"%s\",\"mode\":\"%s\",\"insts\":%llu,"
              "\"wall_us\":%.1f,\"insts_per_sec\":%.1f}\n",
              workload.c_str(), engine, mode,
              static_cast<unsigned long long>(cell.insts), cell.best_us,
              cell.insts_per_sec());
}

}  // namespace

int main() {
  const std::vector<std::string> kernels = {"bzip2", "gcc", "parser",
                                            "twolf"};
  const uint32_t scale = 8;
  const int repeats = 5;

  std::printf("engine throughput, Mi/s (scale %u, best of %d runs)\n", scale,
              repeats);
  std::printf("%-8s %9s | %8s %8s %7s | %8s %8s %7s\n", "workload", "insts",
              "sw/bare", "ca/bare", "speedup", "sw/strm", "ca/strm",
              "speedup");

  for (const std::string& name : kernels) {
    const isa::Program program = workloads::build(name, scale);
    const Cell sw_bare =
        run_engine(program, isa::EngineKind::kSwitch, false, repeats);
    const Cell ca_bare =
        run_engine(program, isa::EngineKind::kCached, false, repeats);
    const Cell sw_strm =
        run_engine(program, isa::EngineKind::kSwitch, true, repeats);
    const Cell ca_strm =
        run_engine(program, isa::EngineKind::kCached, true, repeats);
    std::printf("%-8s %9llu | %8.1f %8.1f %6.2fx | %8.1f %8.1f %6.2fx\n",
                name.c_str(),
                static_cast<unsigned long long>(ca_bare.insts),
                sw_bare.insts_per_sec() / 1e6, ca_bare.insts_per_sec() / 1e6,
                sw_bare.best_us / ca_bare.best_us,
                sw_strm.insts_per_sec() / 1e6, ca_strm.insts_per_sec() / 1e6,
                sw_strm.best_us / ca_strm.best_us);
    emit_json(name, "switch", "bare", sw_bare);
    emit_json(name, "cached", "bare", ca_bare);
    emit_json(name, "switch", "stream", sw_strm);
    emit_json(name, "cached", "stream", ca_strm);
  }
  return 0;
}
