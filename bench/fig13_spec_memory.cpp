// Figure 13: performance of the control-independence mechanism when the
// replica values live in the small speculative data memory (ci-h-N for N in
// 128/256/512/768 slots) instead of the register file. Paper: 256 registers
// plus 768 slots ~= an unbounded monolithic register file.
#include "common.hpp"

int main() {
  using namespace cfir;
  using namespace cfir::bench;
  run_register_sweep(
      "Figure 13: IPC with the speculative data memory (1 wide port)",
      [](uint32_t regs) -> std::vector<NamedConfig> {
        std::vector<NamedConfig> configs = {
            {"scal", sim::presets::scal(1, regs)},
            {"wb", sim::presets::wb(1, regs)},
            {"ci", sim::presets::ci(1, regs)},
        };
        for (const uint32_t slots : {128u, 256u, 512u, 768u}) {
          configs.push_back({"ci-h-" + std::to_string(slots),
                             sim::presets::ci_specmem(1, regs, slots)});
        }
        return configs;
      });
  return 0;
}
