// Stride predictor, paper Figure 3: a 4-way x 256-set table indexed by load
// PC holding {last address, stride, 2-bit confidence, S flag}. The S flag
// marks loads selected for speculative vectorization by the
// control-independence selection logic (or unconditionally under the vect
// policy); `origin_branch_pc` remembers which hard branch selected the load
// so reuse can be credited to its episode (Figure 5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/warmable.hpp"

namespace cfir::ci {

class StridePredictor : public util::Warmable {
 public:
  StridePredictor(uint32_t sets = 256, uint32_t ways = 4);

  struct Info {
    bool known = false;       ///< entry present
    bool confident = false;   ///< confidence counter > 1 (paper)
    int64_t stride = 0;
    uint64_t last_addr = 0;
    bool selected = false;    ///< S flag
    uint64_t origin_branch_pc = 0;
  };

  /// Trains with a committed load (in program order).
  void train(uint64_t pc, uint64_t addr);

  [[nodiscard]] Info lookup(uint64_t pc) const;

  /// Sets the S flag (selection for speculative vectorization). Returns
  /// false when the load has no predictor entry.
  bool select(uint64_t pc, uint64_t origin_branch_pc);
  void clear_selection(uint64_t pc);

  /// Hardware budget, section 3.1: 4 * 256 * 24 bytes = 24576.
  [[nodiscard]] uint64_t storage_bytes() const;

  // Functional warming reuses train() in commit order — the detailed core
  // only trains at commit, so the table contents (tags, addresses, strides,
  // confidence, LRU) are a pure function of the committed load stream. The
  // S flags are additionally commit-derivable under the vect policy (every
  // confident strided load selects at commit); under the ci policy they are
  // driven by speculative episode state and stay cold after warming.
  [[nodiscard]] uint64_t debug_digest() const override;
  void serialize(util::ByteWriter& out) const override;
  void deserialize(util::ByteReader& in) override;

 private:
  struct Entry {
    uint64_t tag = 0;
    bool valid = false;
    uint64_t last_addr = 0;
    int64_t stride = 0;
    uint8_t confidence = 0;  ///< 2-bit saturating
    bool s_flag = false;
    uint64_t origin_branch_pc = 0;
    uint64_t lru = 0;
  };
  [[nodiscard]] const Entry* find(uint64_t pc) const;
  Entry* find_mut(uint64_t pc);
  Entry& find_or_alloc(uint64_t pc);

  uint32_t sets_;
  uint32_t ways_;
  uint64_t stamp_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace cfir::ci
