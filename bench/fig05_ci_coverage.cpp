// Figure 5: percentage of mispredicted (hard) branches for which the
// mechanism finds no control-independent instruction, selects at least one,
// or selects and successfully reuses precomputed instances. The paper
// reports ~70% selected, ~49% reused for SpecInt2000.
#include "common.hpp"

int main() {
  using namespace cfir;
  using namespace cfir::bench;
  obs::init_from_env();  // CFIR_TRACE=<file> flight-records this figure
  const uint32_t scale = sim::env_scale();
  const uint64_t max_insts = default_max_insts();

  std::vector<sim::RunSpec> specs;
  for (const std::string& wl : workloads::names()) {
    sim::RunSpec s;
    s.workload = wl;
    s.config_name = "ci2p";
    s.config = sim::presets::ci(2, 512);
    s.max_insts = max_insts;
    s.scale = scale;
    s.intervals = sim::env_intervals();
    s.sample_mode = sim::env_sample_mode();
    s.warmup = sim::env_warmup();
    s.warm_mode = sim::env_warm_mode();
    s.detail_len = sim::env_detail_len();
    specs.push_back(std::move(s));
  }
  const auto out = sim::run_all(specs, sim::env_threads());

  stats::Table table({"bench", "episodes", ">=1 reuse %", "no reuse %",
                      "not found %"});
  uint64_t tot = 0, sel = 0, reu = 0;
  for (const auto& o : out) {
    const auto& s = o.stats;
    tot += s.ep_total;
    sel += s.ep_ci_selected;
    reu += s.ep_ci_reused;
    // ep_ci_reused <= ep_ci_selected is a counter invariant enforced by
    // ci::CiMechanism episode accounting (late reuse is credited to its
    // selecting episode, capped), so the difference cannot wrap.
    const double n = static_cast<double>(s.ep_total);
    const double reused = n > 0 ? 100.0 * static_cast<double>(s.ep_ci_reused) / n : 0;
    const double selected_only =
        n > 0 ? 100.0 * static_cast<double>(s.ep_ci_selected - s.ep_ci_reused) / n
              : 0;
    table.add_row(o.spec.workload,
                  {static_cast<double>(s.ep_total), reused, selected_only,
                   100.0 - reused - selected_only},
                  1);
  }
  const double n = static_cast<double>(tot);
  const double reused = n > 0 ? 100.0 * static_cast<double>(reu) / n : 0;
  const double sel_only =
      n > 0 ? 100.0 * static_cast<double>(sel - reu) / n : 0;
  table.add_row("INT",
                {n, reused, sel_only, 100.0 - reused - sel_only}, 1);

  std::printf("Figure 5: CI coverage of hard mispredicted branches (ci2p, "
              "512 regs)\n");
  std::printf("paper reference (INT): ~49%% reuse, ~21%% selected-no-reuse, "
              "~30%% not found\n\n%s\n",
              table.to_text().c_str());
  dump_json(out);
  dump_telemetry_json(out);
  return 0;
}
