// Shard runner and result blobs — the "execute" and "merge" layers of the
// plan / execute / merge decomposition of sampled simulation
// (docs/sharding.md; trace/manifest.hpp is the plan layer).
//
// A ShardSelection names the subset of a plan's intervals one worker runs:
// shard i of N takes every interval whose plan index ≡ i (mod N), so
// consecutive (expensive) intervals spread across shards. run_shard
// executes that subset for a whole grid of ConfigBindings — the plan's
// intervals and checkpoints are config-independent, so one shard simulates
// every bound config per interval, streaming each functional-warming gap
// ONCE and fanning the committed records out to every config's Warmable
// components (warming cost O(gap), not O(gap × configs)). The result is a
// ShardResult: per-interval stats with one column per config, plus
// everything the merge layer needs to validate and fold them. Results
// serialize as CFIRSHD2 blobs, so N workers on N machines each run one
// shard of the whole grid and ship one small file back;
// merge_shard_grid folds any complete set of them into per-config
// SampledRuns, each **bit-identical** to that config's single-config
// trace::sampled_run (which is itself run_shard of the whole plan + merge
// — there is exactly one orchestration code path).
//
// File format, version 3 (little-endian, shared CRC-32 footer required —
// trace/blob.hpp):
//   magic "CFIRSHD2" | u32 version | u32 reserved
//   | u64 plan_hash | u32 shard_index | u32 shard_count
//   | u32 plan_intervals | u64 total_insts | u8 ran_to_halt
//   | u64 warmed_insts            (shared streaming cost, counted once)
//   | u64 warm_wall_us            (v3: host wall of the warm capture pass)
//   | u32 n_configs
//   | n_configs x (u32 name_len | name bytes | u64 config_hash
//                  | u64 detailed_insts)
//   | u32 n_intervals
//   | n x (u32 plan_index | u64 start | u64 length | u64 warmup
//          | u64 weight_bits(double) | n_configs x SimStats
//            (stats::serialize)
//          | n_configs x u64 wall_us   (v3: per-column detail wall))
//   | "CRC1" | u32 crc32
// The v3 wall fields are host telemetry riding next to the simulated
// stats — merge surfaces them (`merge --per-phase`) but they never enter
// SimStats, so merged results stay bit-identical to pre-telemetry runs.
// Version-2 files (no wall fields — they load as zeros) and version-1
// files ("CFIRSHD1", one implicit config column whose hash was the
// manifest's combined config hash) still load; save() always writes
// version 3 under the "CFIRSHD2" magic.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "isa/program.hpp"
#include "stats/stats.hpp"
#include "trace/sampling.hpp"

namespace cfir::trace {

inline constexpr char kShardMagic[8] = {'C', 'F', 'I', 'R',
                                        'S', 'H', 'D', '1'};
inline constexpr char kShardMagicV2[8] = {'C', 'F', 'I', 'R',
                                          'S', 'H', 'D', '2'};
inline constexpr uint32_t kShardVersion = 3;
/// Oldest "CFIRSHD2"-magic version load() still accepts (v2 blobs predate
/// the wall-time telemetry fields, which deserialize as zeros).
inline constexpr uint32_t kShardVersionNoWall = 2;

/// Shard `index` of `count`: the intervals whose plan index ≡ index
/// (mod count). The default selection {0, 1} is the whole plan.
struct ShardSelection {
  uint32_t index = 0;
  uint32_t count = 1;

  [[nodiscard]] bool covers(size_t plan_index) const {
    return plan_index % count == index;
  }
};

/// Parses "i/N" (e.g. "0/4"); throws std::runtime_error on malformed specs
/// or i >= N, so a typo'd --shard flag fails loudly.
[[nodiscard]] ShardSelection parse_shard(std::string_view spec);

struct ShardResult {
  /// Stamped from the manifest (0 in-process): the plan-structure hash for
  /// v2 manifests, the combined config hash for legacy v1 ones. Merge
  /// rejects mixtures either way.
  uint64_t plan_hash = 0;
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
  uint32_t plan_intervals = 0;  ///< intervals in the whole plan (coverage)
  uint64_t total_insts = 0;     ///< instructions the plan covers
  bool ran_to_halt = false;
  /// This shard's functionally warmed instructions. Counted ONCE per
  /// interval regardless of how many configs share the stream — the
  /// amortization the grid path exists for (locked in tests/test_shard.cpp).
  uint64_t warmed_insts = 0;
  /// Host wall-clock of the shared warm-capture pass (telemetry; 0 when
  /// warm state came precomputed or from a pre-v3 blob).
  uint64_t warm_wall_us = 0;

  /// One config column of the grid this shard executed.
  struct ConfigColumn {
    std::string name;
    uint64_t config_hash = 0;
    uint64_t detailed_insts = 0;  ///< this column's detailed-simulation cost
  };
  std::vector<ConfigColumn> configs;

  struct Interval {
    uint32_t plan_index = 0;  ///< position in the plan (coverage + ordering)
    uint64_t start_inst = 0;
    uint64_t length = 0;
    uint64_t warmup = 0;
    double weight = 1.0;
    /// Measured slice only (warm-up subtracted), one entry per config
    /// column, in `configs` order.
    std::vector<stats::SimStats> stats;
    /// Host wall-clock of each column's detail simulation of this
    /// interval (telemetry), in `configs` order. Empty (= all zero) on
    /// results loaded from pre-v3 blobs; serialize treats empty as zeros.
    std::vector<uint64_t> wall_us;
  };
  std::vector<Interval> intervals;

  /// Payload bytes (no CRC footer); deserialize ∘ serialize is the
  /// identity (fuzz-locked in tests/test_shard.cpp).
  [[nodiscard]] std::vector<uint8_t> serialize() const;
  [[nodiscard]] static ShardResult deserialize(
      const std::vector<uint8_t>& payload);

  void save(const std::string& path) const;
  [[nodiscard]] static ShardResult load(const std::string& path);
};

/// Execute layer, grid form: detail-simulates `shard`'s subset of `plan`'s
/// intervals under EVERY binding in `configs`, in parallel over
/// (interval × config) pairs (`threads` <= 0 picks CFIR_THREADS / hardware
/// concurrency), warming per the plan's WarmMode. Functional warm state
/// comes, per config, from the binding's per-interval blobs
/// (bind_configs / CFIRMAN2 warm sidecars), else from warm state attached
/// to the plan's checkpoints (CFIRCKP2 — single-config plans only), else
/// from ONE shared streaming pass fanning the committed gap records out to
/// all remaining configs' warmers. `plan_hash` is stamped into the result
/// for merge-time validation; pass the manifest's hash when executing a
/// manifest-derived plan. When `warm_trace` names a recorded trace of
/// `program`, that shared capture pass streams the stored records instead
/// of re-executing — on a CFIRTRC2 trace the shard then decodes only the
/// blocks covering its own intervals + warming gaps (O(intervals), not
/// O(prefix); observable via the `trace.blocks_read` counter), with blobs
/// bit-identical to the engine pass. `warm_jobs` caps the pipelined
/// warm-capture path (trace/warming.hpp capture_warm_states_grid):
/// -1 reads CFIR_WARM_JOBS, 0 = auto, 1 = the sequential reference path
/// — blobs, stats and merged grids are bit-identical at every setting.
[[nodiscard]] ShardResult run_shard(const std::vector<ConfigBinding>& configs,
                                    const isa::Program& program,
                                    const IntervalPlan& plan,
                                    ShardSelection shard = {},
                                    int threads = 0,
                                    uint64_t plan_hash = 0,
                                    const std::string& warm_trace = {},
                                    int warm_jobs = -1);

/// Single-config convenience: one binding named by the config's label,
/// with `config_hash` (when non-zero) stamped as both the plan hash and
/// the column hash — the legacy v1-manifest contract.
[[nodiscard]] ShardResult run_shard(const core::CoreConfig& config,
                                    const isa::Program& program,
                                    const IntervalPlan& plan,
                                    ShardSelection shard = {},
                                    int threads = 0,
                                    uint64_t config_hash = 0);

/// One config column of a merged grid: the per-interval + aggregate run
/// this config would have produced single-config (bit-identical to it).
struct MergedGrid {
  struct ConfigRun {
    std::string name;
    uint64_t config_hash = 0;
    SampledRun run;
  };
  std::vector<ConfigRun> configs;
};

/// Merge layer: folds a complete set of shard results back into one
/// SampledRun per config column. Validates that every result carries the
/// same plan hash and the same config column set (ConfigMismatchError
/// otherwise) and that the results cover every plan interval exactly once
/// (CorruptFileError otherwise). Each column's aggregate is bit-identical
/// to the single-config, single-process sampled_run of the same plan,
/// regardless of shard count or merge order (stats::merge_shards).
[[nodiscard]] MergedGrid merge_shard_grid(
    const std::vector<ShardResult>& shards);

/// Single-config convenience over merge_shard_grid: requires exactly one
/// config column and returns its run.
[[nodiscard]] SampledRun merge_shard_results(
    const std::vector<ShardResult>& shards);

}  // namespace cfir::trace
