#include "trace/blob.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "obs/log.hpp"
#include "trace/errors.hpp"
#include "util/crc32.hpp"

namespace cfir::trace {

namespace {

/// CFIR_STRICT_BLOBS=1 turns legacy footer-less blobs from a warning into
/// a hard CorruptFileError — for fleets where every artifact is known to
/// be post-CRC and a missing footer can only mean truncation.
bool strict_blobs() {
  const char* v = std::getenv("CFIR_STRICT_BLOBS");
  return v != nullptr && *v != '\0' && *v != '0';
}

/// A pre-CRC CFIRTRC1/CFIRCKP blob was accepted without integrity
/// checking: warn once per process through the rate-limited obs::log
/// channel (the first file names the problem; a directory of old blobs
/// should not flood stderr, and CFIR_JSON stdout stays clean either way),
/// or reject under CFIR_STRICT_BLOBS=1.
void note_legacy_blob(const char* what, const std::string& path) {
  if (strict_blobs()) {
    throw CorruptFileError(
        std::string(what) + ": " + path +
        " has no CRC footer (legacy pre-CRC blob) and CFIR_STRICT_BLOBS=1 "
        "rejects footer-less files — re-record the artifact to add the "
        "footer");
  }
  obs::log(obs::LogLevel::kWarn, "legacy-blob",
           std::string(what) + " " + path +
               " has no CRC footer (legacy pre-CRC blob); loading without "
               "integrity checking. Re-record it to add the footer, or set "
               "CFIR_STRICT_BLOBS=1 to reject such files.");
}

/// Opens `path` positioned at the end and returns its size; rejects
/// anything that is not a readable regular file (tellg returns -1 for
/// directories and such) before any buffer is sized from it.
std::ifstream open_sized(const std::string& path, const char* what,
                         std::streamoff& size) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  size = in ? static_cast<std::streamoff>(in.tellg()) : std::streamoff{-1};
  if (!in || size < 0) {
    throw CorruptFileError(std::string(what) + ": cannot open " + path);
  }
  in.seekg(0);
  return in;
}

std::vector<uint8_t> read_whole_file(const std::string& path,
                                     const char* what) {
  std::streamoff size = 0;
  std::ifstream in = open_sized(path, what, size);
  // Read in chunks instead of sizing the buffer from the reported size: a
  // directory opens fine on some platforms and reports a bogus huge size
  // (this libstdc++ says LLONG_MAX), which must fail on the first read,
  // not in the allocator.
  std::vector<uint8_t> bytes;
  std::vector<uint8_t> buf(64 * 1024);
  for (;;) {
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    const std::streamsize got = in.gcount();
    bytes.insert(bytes.end(), buf.data(), buf.data() + got);
    if (in.eof()) break;
    if (!in) {
      throw CorruptFileError(std::string(what) + ": cannot read " + path);
    }
  }
  return bytes;
}

/// CRC of the stream's next `n` bytes, computed in fixed-size chunks so
/// callers that only need the checksum never buffer the whole file.
uint32_t crc_of_stream(std::istream& in, uint64_t n, const std::string& path,
                       const char* what) {
  std::vector<uint8_t> buf(64 * 1024);
  uint32_t crc = 0;
  while (n > 0) {
    const size_t chunk =
        static_cast<size_t>(std::min<uint64_t>(n, buf.size()));
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(chunk));
    if (!in) {
      throw CorruptFileError(std::string(what) + ": read failed for " +
                             path);
    }
    crc = util::crc32(buf.data(), chunk, crc);
    n -= chunk;
  }
  return crc;
}

void append_footer_bytes(std::ofstream& out, uint32_t crc) {
  out.write(kCrcFooterMagic, sizeof(kCrcFooterMagic));
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
}

}  // namespace

void write_blob_file(const std::string& path,
                     const std::vector<uint8_t>& payload) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("blob: cannot open " + path);
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  append_footer_bytes(out, util::crc32(payload.data(), payload.size()));
  out.close();
  if (!out) throw std::runtime_error("blob: write failed for " + path);
}

std::vector<uint8_t> read_blob_file(const std::string& path, const char* what,
                                    bool require_footer) {
  std::vector<uint8_t> bytes = read_whole_file(path, what);
  const bool has_footer =
      bytes.size() >= kCrcFooterBytes &&
      std::memcmp(bytes.data() + bytes.size() - kCrcFooterBytes,
                  kCrcFooterMagic, sizeof(kCrcFooterMagic)) == 0;
  if (!has_footer) {
    if (require_footer) {
      throw CorruptFileError(std::string(what) +
                             ": missing CRC footer (truncated file?) in " +
                             path);
    }
    note_legacy_blob(what, path);
    return bytes;  // legacy pre-footer file
  }
  const size_t payload_size = bytes.size() - kCrcFooterBytes;
  uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + payload_size + sizeof(kCrcFooterMagic),
              sizeof(stored));
  if (stored != util::crc32(bytes.data(), payload_size)) {
    throw CorruptFileError(std::string(what) +
                           ": CRC mismatch (corrupt or truncated file) in " +
                           path);
  }
  bytes.resize(payload_size);
  return bytes;
}

void append_crc_footer(const std::string& path) {
  std::streamoff size = 0;
  std::ifstream in = open_sized(path, "blob", size);
  const uint32_t crc =
      crc_of_stream(in, static_cast<uint64_t>(size), path, "blob");
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) throw std::runtime_error("blob: cannot open " + path);
  append_footer_bytes(out, crc);
  out.close();
  if (!out) throw std::runtime_error("blob: write failed for " + path);
}

void verify_crc_footer(const std::string& path, const char* what) {
  std::streamoff size = 0;
  std::ifstream in = open_sized(path, what, size);
  if (static_cast<uint64_t>(size) < kCrcFooterBytes) {
    note_legacy_blob(what, path);
    return;
  }
  const uint64_t payload_size =
      static_cast<uint64_t>(size) - kCrcFooterBytes;

  char footer[kCrcFooterBytes];
  in.seekg(static_cast<std::streamoff>(payload_size));
  in.read(footer, sizeof(footer));
  if (!in) {
    throw CorruptFileError(std::string(what) + ": read failed for " + path);
  }
  if (std::memcmp(footer, kCrcFooterMagic, sizeof(kCrcFooterMagic)) != 0) {
    note_legacy_blob(what, path);
    return;  // legacy pre-footer file
  }
  uint32_t stored = 0;
  std::memcpy(&stored, footer + sizeof(kCrcFooterMagic), sizeof(stored));

  in.seekg(0);
  if (stored != crc_of_stream(in, payload_size, path, what)) {
    throw CorruptFileError(std::string(what) +
                           ": CRC mismatch (corrupt or truncated file) in " +
                           path);
  }
}

void put_string(util::ByteWriter& out, const std::string& s) {
  out.u32(static_cast<uint32_t>(s.size()));
  out.bytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

std::string get_string(util::ByteReader& in, const char* what) {
  const uint32_t len = in.u32();
  if (len > 4096) {
    throw CorruptFileError(std::string("corrupt ") + what + " length " +
                           std::to_string(len));
  }
  std::string s(len, '\0');
  in.bytes(reinterpret_cast<uint8_t*>(s.data()), len);
  return s;
}

}  // namespace cfir::trace
