// Replica engine, paper sections 2.3.3 and 2.4.1: creates the speculative
// instances ("replicas") of vectorized instructions, issues them with the
// cycle's leftover resources (lower priority than the main thread), and
// retires them in writeback. Replicas live outside the window: branch
// squashes never touch them.
//
// Replica index k of a load entry reads anchor + stride*(k+1); replica k of
// an arithmetic entry consumes ring value (k + offset) of each vectorized
// producer (offset captured at entry creation) or a latched scalar operand.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <queue>
#include <unordered_map>
#include <vector>

#include "ci/spec_memory.hpp"
#include "ci/srsmt.hpp"
#include "core/pipeline.hpp"

namespace cfir::ci {

class ReplicaEngine {
 public:
  ReplicaEngine(core::Core& core, Srsmt& srsmt, SpecDataMemory* specmem);

  /// Creates replicas of `slot` up to the ring window
  /// [commit_count, commit_count + Nregs), as registers/slots allow.
  void materialize(uint32_t slot);

  /// Per-cycle: process due completions, retry starved materializations,
  /// then issue ready replicas with the leftover resources.
  void tick(uint64_t cycle, core::CycleResources& res);

  /// Frees every resource still owned by the entry and invalidates it.
  void release_entry(uint32_t slot, const char* reason);

  /// A dynamic instance with index `abs` committed. `reused` tells whether
  /// it consumed the replica value (ownership transfer) or executed
  /// normally (the replica is dead; its register is reclaimed).
  void retire_index(uint32_t slot, uint64_t abs, bool reused);

  /// Reuse support ----------------------------------------------------------
  [[nodiscard]] bool replica_available(const SrsmtEntry& e, uint64_t abs) const;
  [[nodiscard]] bool replica_done(const SrsmtEntry& e, uint64_t abs) const;
  void register_copy_waiter(uint32_t rob_slot, uint64_t seq, uint32_t slot,
                            uint32_t uid, uint64_t abs);
  [[nodiscard]] bool try_issue_copy(uint32_t slot, uint32_t uid, uint64_t abs,
                                    uint64_t cycle, uint32_t& latency,
                                    uint64_t& value);

  /// Liveness guard: frees materialized-but-unclaimed replicas (indices at
  /// or beyond decode_count) so rename can make progress.
  void reclaim_unclaimed();

 private:
  struct Ref {
    uint32_t slot;
    uint32_t uid;
    uint64_t abs;
  };
  struct Completion {
    uint64_t when;
    uint64_t order;
    Ref ref;
    bool operator>(const Completion& o) const {
      return when != o.when ? when > o.when : order > o.order;
    }
  };

  [[nodiscard]] bool ref_live(const Ref& r) const;
  /// Operand value for an arith replica; requires readiness checked before.
  [[nodiscard]] uint64_t operand_value(const SrsmtEntry& e,
                                       const SrsmtOperand& op,
                                       uint64_t abs) const;
  [[nodiscard]] bool operand_ready(const SrsmtEntry& e, const SrsmtOperand& op,
                                   uint64_t abs) const;
  /// Latches operand values and queues the replica (both operands ready).
  void arm_replica(uint32_t slot, SrsmtEntry& e, uint64_t abs);
  void complete(const Ref& ref);
  void notify_consumers(uint32_t producer_slot, uint32_t producer_uid,
                        uint64_t produced_abs);
  void free_replica_storage(Replica& r);
  [[nodiscard]] uint32_t alu_latency(isa::Opcode op) const;

  core::Core& core_;
  Srsmt& srsmt_;
  SpecDataMemory* specmem_;  ///< null in monolithic-register-file mode

  std::deque<Ref> ready_;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions_;
  uint64_t completion_order_ = 0;
  std::vector<uint32_t> materialize_retry_;
  // Reused tick() scratch: ping-pongs buffers with materialize_retry_ /
  // holds resource-deferred replicas, so the per-cycle hot path stops
  // allocating once warm.
  std::vector<uint32_t> retry_scratch_;
  std::vector<Ref> deferred_scratch_;

  struct CopyWaiter {
    uint32_t rob_slot;
    uint64_t seq;
  };
  /// (slot, abs) -> waiting validation; validated lazily through the core.
  std::unordered_map<uint64_t, CopyWaiter> copy_waiters_;
  [[nodiscard]] static uint64_t waiter_key(uint32_t slot, uint64_t abs) {
    return (static_cast<uint64_t>(slot) << 40) ^ abs;
  }
};

}  // namespace cfir::ci
