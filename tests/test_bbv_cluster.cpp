// Phase detection for cluster-mode sampling (src/trace/bbv, cluster):
//  - BBVs are deterministic across capture sources: a trace recorded from
//    the reference interpreter, a trace recorded from the detailed core,
//    and a direct interpreter pass all yield identical vectors
//  - vectors partition the instruction stream (entries sum to interval
//    instruction counts)
//  - k-means separates well-separated synthetic clusters, deterministically
//  - cluster_bbvs picks few phases for a homogeneous run, weights sum to
//    the interval count, and representatives lie in their own cluster
//  - plan_cluster_intervals produces a well-formed weighted plan with
//    warm-up checkpoints
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "trace/bbv.hpp"
#include "trace/cluster.hpp"
#include "trace/sampling.hpp"
#include "trace/trace.hpp"
#include "workloads/workloads.hpp"

namespace cfir::trace {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(std::string(::testing::TempDir()) + "cfir_" + tag + "_" +
              std::to_string(reinterpret_cast<uintptr_t>(this))) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void expect_bbv_equal(const BbvSet& a, const BbvSet& b) {
  EXPECT_EQ(a.total_insts, b.total_insts);
  EXPECT_EQ(a.leaders, b.leaders);
  ASSERT_EQ(a.vectors.size(), b.vectors.size());
  for (size_t i = 0; i < a.vectors.size(); ++i) {
    EXPECT_EQ(a.vectors[i], b.vectors[i]) << "interval " << i;
  }
}

TEST(Bbv, DeterministicAcrossCaptureSources) {
  const isa::Program program = workloads::build("bzip2", 1);
  constexpr uint64_t kIntervalLen = 5000;

  // Source 1: trace recorded from the reference interpreter.
  TempFile interp_file("bbv_interp");
  TraceMeta meta;
  meta.workload = "bzip2";
  const isa::InterpResult ref =
      record_interpreter(program, interp_file.path(), meta);
  TraceReader interp_reader(interp_file.path());
  const BbvSet from_interp = bbv_from_trace(interp_reader, kIntervalLen);

  // Source 2: trace recorded from the detailed core.
  TempFile core_file("bbv_core");
  {
    TraceWriter writer(core_file.path(), meta);
    sim::Simulator sim(sim::presets::ci(2, 512), program);
    sim.attach_trace(writer);
    const stats::SimStats st = sim.run(UINT64_MAX);
    EXPECT_EQ(st.committed, ref.executed);
    std::array<uint64_t, isa::kNumLogicalRegs> regs{};
    for (int r = 0; r < isa::kNumLogicalRegs; ++r) {
      regs[static_cast<size_t>(r)] = sim.arch_reg(r);
    }
    writer.finish(regs, sim.memory_digest());
  }
  TraceReader core_reader(core_file.path());
  const BbvSet from_core = bbv_from_trace(core_reader, kIntervalLen);

  // Source 3: direct interpreter pass, no file.
  const BbvSet from_program = bbv_from_program(program, kIntervalLen);

  EXPECT_EQ(from_interp.total_insts, ref.executed);
  expect_bbv_equal(from_interp, from_core);
  expect_bbv_equal(from_interp, from_program);
}

TEST(Bbv, VectorsPartitionTheStream) {
  const isa::Program program = workloads::build("gcc", 1);
  constexpr uint64_t kIntervalLen = 3000;
  const BbvSet bbvs = bbv_from_program(program, kIntervalLen);

  ASSERT_GT(bbvs.num_intervals(), 1u);
  EXPECT_GT(bbvs.leaders.size(), 1u);
  uint64_t total = 0;
  for (size_t i = 0; i < bbvs.num_intervals(); ++i) {
    ASSERT_EQ(bbvs.vectors[i].size(), bbvs.leaders.size());
    uint64_t insts = 0;
    for (const uint32_t c : bbvs.vectors[i]) insts += c;
    // Every interval is exactly full except possibly the last.
    if (i + 1 < bbvs.num_intervals()) {
      EXPECT_EQ(insts, kIntervalLen) << "interval " << i;
    } else {
      EXPECT_GT(insts, 0u);
      EXPECT_LE(insts, kIntervalLen);
    }
    total += insts;
  }
  EXPECT_EQ(total, bbvs.total_insts);
}

TEST(Bbv, MaxInstsCapsTheWalk) {
  const isa::Program program = workloads::build("bzip2", 1);
  const BbvSet capped = bbv_from_program(program, 1000, 2500);
  EXPECT_EQ(capped.total_insts, 2500u);
  EXPECT_EQ(capped.num_intervals(), 3u);  // 1000 + 1000 + 500
}

TEST(Kmeans, SeparatesDistantGroupsDeterministically) {
  // Two tight groups far apart; any sane clustering splits them 4/4.
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 4; ++i) {
    points.push_back({0.0 + 0.01 * i, 0.0});
    points.push_back({10.0 + 0.01 * i, 10.0});
  }
  const std::vector<uint32_t> a = kmeans(points, 2, /*seed=*/1);
  ASSERT_EQ(a.size(), points.size());
  for (size_t i = 0; i < points.size(); i += 2) {
    EXPECT_EQ(a[i], a[0]);
    EXPECT_EQ(a[i + 1], a[1]);
    EXPECT_NE(a[i], a[i + 1]);
  }
  // Bitwise deterministic on repeat.
  EXPECT_EQ(kmeans(points, 2, /*seed=*/1), a);
}

TEST(Cluster, HomogeneousRunCollapsesToFewPhases) {
  // bzip2 iterates one hammock kernel; its intervals are near-identical,
  // so BIC must not shatter them into one cluster per interval.
  const isa::Program program = workloads::build("bzip2", 1);
  const BbvSet bbvs = bbv_from_program(program, 5000);
  const Clustering clusters = cluster_bbvs(bbvs);

  ASSERT_GT(clusters.k, 0u);
  EXPECT_LE(clusters.k, bbvs.num_intervals() / 2);
  uint64_t members = 0;
  for (uint32_t c = 0; c < clusters.k; ++c) {
    members += clusters.sizes[c];
    ASSERT_LT(clusters.representative[c], bbvs.num_intervals());
    EXPECT_EQ(clusters.assignment[clusters.representative[c]], c)
        << "representative of cluster " << c << " not a member";
  }
  EXPECT_EQ(members, bbvs.num_intervals());
  EXPECT_EQ(clusters.bic_by_k.size(),
            std::min<size_t>(16, bbvs.num_intervals()));
}

TEST(Cluster, PlanClusterIntervalsIsWellFormed) {
  const isa::Program program = workloads::build("parser", 1);
  ClusterPlanOptions opts;
  opts.n_intervals = 16;
  opts.warmup = 4000;
  const IntervalPlan plan = plan_cluster_intervals(program, opts);

  EXPECT_EQ(plan.mode, SampleMode::kCluster);
  EXPECT_GT(plan.total_insts, 0u);
  EXPECT_GT(plan.interval_len, 0u);
  const size_t k = plan.boundaries.size();
  ASSERT_GT(k, 0u);
  ASSERT_EQ(plan.lengths.size(), k);
  ASSERT_EQ(plan.weights.size(), k);
  ASSERT_EQ(plan.checkpoints.size(), k);

  double weight_sum = 0.0;
  for (size_t i = 0; i < k; ++i) {
    if (i > 0) EXPECT_GT(plan.boundaries[i], plan.boundaries[i - 1]);
    EXPECT_EQ(plan.boundaries[i] % plan.interval_len, 0u);
    EXPECT_LE(plan.lengths[i], plan.interval_len);
    EXPECT_GE(plan.weights[i], 1.0);
    weight_sum += plan.weights[i];
    // Warm-up checkpoints sit `warmup` instructions early (clamped at 0).
    const uint64_t expect_start = plan.boundaries[i] >= opts.warmup
                                      ? plan.boundaries[i] - opts.warmup
                                      : 0;
    EXPECT_EQ(plan.checkpoints[i].executed, expect_start);
  }
  EXPECT_EQ(weight_sum, static_cast<double>(plan.cluster_of.size()));
}

}  // namespace
}  // namespace cfir::trace
