#include "core/lsq.hpp"

namespace cfir::core {

bool LoadStoreQueue::push(const LsqEntry& e) {
  if (full()) return false;
  entries_.push_back(e);
  return true;
}

void LoadStoreQueue::pop_front() {
  if (!entries_.empty()) entries_.pop_front();
}

void LoadStoreQueue::squash_younger(uint64_t seq) {
  while (!entries_.empty() && entries_.back().seq > seq) entries_.pop_back();
}

LsqEntry* LoadStoreQueue::find(uint64_t seq) {
  for (auto& e : entries_) {
    if (e.seq == seq) return &e;
  }
  return nullptr;
}

bool LoadStoreQueue::older_store_addrs_known(uint64_t seq) const {
  for (const auto& e : entries_) {
    if (e.seq >= seq) break;
    if (e.is_store && !e.addr_known) return false;
  }
  return true;
}

LoadStoreQueue::ForwardResult LoadStoreQueue::try_forward(
    uint64_t seq, uint64_t addr, int size, uint64_t& value_out) const {
  // Scan youngest-to-oldest among older stores; the first overlap decides.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    const LsqEntry& e = *it;
    if (e.seq >= seq || !e.is_store) continue;
    if (!e.addr_known) return ForwardResult::kConflict;
    const uint64_t a0 = addr, a1 = addr + static_cast<uint64_t>(size);
    const uint64_t b0 = e.addr, b1 = e.addr + static_cast<uint64_t>(e.size);
    const bool overlap = a0 < b1 && b0 < a1;
    if (!overlap) continue;
    const bool contained = b0 <= a0 && a1 <= b1;
    if (!contained || !e.value_known) return ForwardResult::kConflict;
    // Extract the requested bytes out of the store's value.
    const uint64_t shift = 8 * (a0 - b0);
    uint64_t v = e.value >> shift;
    if (size < 8) v &= (uint64_t{1} << (8 * size)) - 1;
    value_out = v;
    return ForwardResult::kForwarded;
  }
  return ForwardResult::kNone;
}

}  // namespace cfir::core
