#include "ci/spec_memory.hpp"

#include <gtest/gtest.h>

namespace cfir::ci {
namespace {

TEST(SpecMemory, AllocFreeRoundTrip) {
  SpecDataMemory m(4, 2, 2, 2);
  int a = m.alloc(), b = m.alloc(), c = m.alloc(), d = m.alloc();
  EXPECT_GE(a, 0);
  EXPECT_GE(d, 0);
  EXPECT_EQ(m.alloc(), -1);  // full
  EXPECT_EQ(m.in_use(), 4u);
  m.free_slot(b);
  EXPECT_EQ(m.free_count(), 1u);
  const int e = m.alloc();
  EXPECT_EQ(e, b);
  (void)a; (void)c;
}

TEST(SpecMemory, ValuesStick) {
  SpecDataMemory m(8, 2, 2, 2);
  const int s = m.alloc();
  m.write(s, 0xFEEDull);
  EXPECT_EQ(m.read(s), 0xFEEDull);
}

TEST(SpecMemory, WritePortsLimitPerCycle) {
  SpecDataMemory m(8, 2, 2, 2);
  EXPECT_EQ(m.book_write(10), 10u);
  EXPECT_EQ(m.book_write(10), 10u);
  EXPECT_EQ(m.book_write(10), 11u);  // third write slips a cycle
  EXPECT_EQ(m.book_write(10), 11u);
  EXPECT_EQ(m.book_write(10), 12u);
}

TEST(SpecMemory, ReadPortsLimitPerCycle) {
  SpecDataMemory m(8, 2, 2, 2);
  EXPECT_TRUE(m.try_book_read(5));
  EXPECT_TRUE(m.try_book_read(5));
  EXPECT_FALSE(m.try_book_read(5));  // both read ports busy
  EXPECT_TRUE(m.try_book_read(6));
}

TEST(SpecMemory, LatencyIsConfigured) {
  SpecDataMemory m(8, 5, 2, 2);
  EXPECT_EQ(m.latency(), 5u);
}

}  // namespace
}  // namespace cfir::ci
