#include "obs/log.hpp"

#include <cstdio>
#include <map>
#include <mutex>

namespace cfir::obs {

namespace {

struct KeyCounts {
  uint64_t seen = 0;
  uint64_t emitted = 0;
};

struct LogState {
  std::mutex mu;
  std::map<std::string, KeyCounts> keys;

  static LogState& get() {
    static LogState state;
    return state;
  }
};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warning";
    case LogLevel::kError: return "error";
  }
  return "info";
}

}  // namespace

bool log(LogLevel level, const std::string& key, const std::string& message,
         uint64_t limit) {
  LogState& state = LogState::get();
  std::lock_guard<std::mutex> lk(state.mu);
  KeyCounts& counts = state.keys[key];
  ++counts.seen;
  if (counts.seen > limit) {
    // First suppressed call announces the suppression; later ones are
    // silent (counted only).
    if (counts.seen == limit + 1) {
      std::fprintf(stderr, "cfir: note: further '%s' messages suppressed\n",
                   key.c_str());
      std::fflush(stderr);
    }
    return false;
  }
  std::fprintf(stderr, "cfir: %s: %s\n", level_name(level), message.c_str());
  ++counts.emitted;
  std::fflush(stderr);
  return true;
}

uint64_t log_emitted(const std::string& key) {
  LogState& state = LogState::get();
  std::lock_guard<std::mutex> lk(state.mu);
  const auto it = state.keys.find(key);
  return it == state.keys.end() ? 0 : it->second.emitted;
}

uint64_t log_seen(const std::string& key) {
  LogState& state = LogState::get();
  std::lock_guard<std::mutex> lk(state.mu);
  const auto it = state.keys.find(key);
  return it == state.keys.end() ? 0 : it->second.seen;
}

void log_reset_for_tests() {
  LogState& state = LogState::get();
  std::lock_guard<std::mutex> lk(state.mu);
  state.keys.clear();
}

}  // namespace cfir::obs
