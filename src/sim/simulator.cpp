#include "sim/simulator.hpp"

#include <sstream>

namespace cfir::sim {

Simulator::Simulator(const core::CoreConfig& config, isa::Program program)
    : program_(std::move(program)) {
  isa::load_data_image(program_, memory_);
  switch (config.policy) {
    case core::Policy::kNone:
      break;
    case core::Policy::kCi:
    case core::Policy::kVect: {
      auto m = std::make_unique<ci::CiMechanism>(config);
      ci_ = m.get();
      mech_ = std::move(m);
      break;
    }
    case core::Policy::kCiWindow: {
      auto m = std::make_unique<ci::SquashReuseMechanism>(config);
      sr_ = m.get();
      mech_ = std::move(m);
      break;
    }
  }
  core_ = std::make_unique<core::Core>(config, program_, memory_, mech_.get());
}

stats::SimStats Simulator::run(uint64_t max_insts) {
  core_->run(max_insts);
  if (mech_ != nullptr) mech_->finalize();
  return core_->stats();
}

DiffResult differential_run(const core::CoreConfig& config,
                            const isa::Program& program, uint64_t max_insts) {
  DiffResult r;
  // Reference.
  const isa::InterpResult ref = isa::run_program(program, max_insts);
  // Timing core.
  Simulator sim(config, program);
  const stats::SimStats st = sim.run(max_insts);
  r.executed = st.committed;
  std::ostringstream why;
  if (st.committed != ref.executed) {
    why << "committed " << st.committed << " != interpreter " << ref.executed
        << "; ";
  }
  for (int i = 0; i < isa::kNumLogicalRegs; ++i) {
    if (sim.arch_reg(i) != ref.regs[static_cast<size_t>(i)]) {
      why << "r" << i << " = " << sim.arch_reg(i) << " != "
          << ref.regs[static_cast<size_t>(i)] << "; ";
    }
  }
  if (sim.memory_digest() != ref.mem_digest) why << "memory digest differs; ";
  r.mismatch = why.str();
  r.match = r.mismatch.empty();
  return r;
}

}  // namespace cfir::sim
