// Compression/string kernels: bzip2 (RLE + histogram, the paper's Figure 1
// shape), gzip (LZ window matching) and perlbmk (byte hashing).
#include <random>

#include "isa/assembler.hpp"
#include "workloads/workloads.hpp"

namespace cfir::workloads {

using isa::Assembler;
using isa::Program;

namespace {
/// Fills [addr, addr+n) with random bytes from `gen`.
void init_random_bytes(Assembler& as, uint64_t addr, size_t n,
                       std::mt19937_64& gen, int lo = 0, int hi = 255) {
  std::uniform_int_distribution<int> dist(lo, hi);
  std::vector<uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<uint8_t>(dist(gen));
  as.init_bytes(addr, bytes);
}

void init_random_words(Assembler& as, uint64_t addr, size_t n,
                       std::mt19937_64& gen, uint64_t modulo) {
  for (size_t i = 0; i < n; ++i) {
    as.init_word(addr + 8 * i, gen() % modulo);
  }
}
}  // namespace

// ---------------------------------------------------------------------------
// bzip2 — the paper's running example, scaled up: walk a byte array with a
// strided load; a hard hammock counts zero/non-zero bytes; the instructions
// after the re-convergent point (sum, histogram update, index bump) are
// control independent and depend on the strided load.
// ---------------------------------------------------------------------------
Program build_bzip2(uint32_t scale) {
  Assembler as;
  std::mt19937_64 gen(0xB21B2ULL);
  const size_t n = 2048;
  const uint64_t data = as.reserve("data", n);
  const uint64_t hist = as.reserve("hist", 256 * 8);
  // ~45% zero bytes so the hammock branch is genuinely hard to predict.
  std::bernoulli_distribution zero(0.45);
  std::uniform_int_distribution<int> byte(1, 255);
  std::vector<uint8_t> bytes(n);
  for (auto& b : bytes) {
    b = zero(gen) ? 0 : static_cast<uint8_t>(byte(gen));
  }
  as.init_bytes(data, bytes);

  const int rIdx = 1, rZero = 2, rNonzero = 3, rSum = 4, rVal = 5, rEnd = 6;
  const int rBase = 7, rHist = 8, rTmp = 9, rRun = 10, rPrev = 11, rOuter = 12;
  as.movi(rBase, static_cast<int64_t>(data));
  as.movi(rHist, static_cast<int64_t>(hist));
  as.movi(rOuter, static_cast<int64_t>(4 * scale));
  as.label("outer");
  as.movi(rIdx, 0);
  as.movi(rZero, 0);
  as.movi(rNonzero, 0);
  as.movi(rSum, 0);
  as.movi(rRun, 0);
  as.movi(rPrev, 0);
  as.movi(rEnd, static_cast<int64_t>(n));
  as.label("loop");
  as.add(rTmp, rBase, rIdx);
  as.ld(rVal, rTmp, 0, 1);            // strided unit load (selected base)
  as.movi(rTmp, 0);
  as.bne(rVal, rTmp, "else");         // hard hammock (Figure 1's I7)
  as.addi(rZero, rZero, 1);           // then: count zeros
  as.jmp("join");
  as.label("else");
  as.addi(rNonzero, rNonzero, 1);     // else: count non-zeros
  as.label("join");                   // re-convergent point (I11)
  as.add(rSum, rSum, rVal);           // CI: depends only on the strided load
  as.shli(rTmp, rVal, 3);             // CI: histogram slot = val * 8
  as.add(rTmp, rHist, rTmp);
  as.ld(rRun, rTmp, 0, 8);
  as.addi(rRun, rRun, 1);
  as.st(rRun, rTmp, 0, 8);
  as.addi(rIdx, rIdx, 1);             // CI but not strided-fed via rIdx
  as.blt(rIdx, rEnd, "loop");
  as.addi(rOuter, rOuter, -1);
  as.movi(rTmp, 0);
  as.bne(rOuter, rTmp, "outer");
  as.halt();
  return as.assemble();
}

// ---------------------------------------------------------------------------
// gzip — LZ-style window matching: for each position, compare the lookahead
// against a candidate match; the inner comparison loop exits on the first
// mismatching byte (data-dependent trip count = hard branches), then a
// hammock keeps the best length.
// ---------------------------------------------------------------------------
Program build_gzip(uint32_t scale) {
  Assembler as;
  std::mt19937_64 gen(0x6712EULL);
  const size_t n = 1536;
  const uint64_t text = as.reserve("text", n + 64);
  // Small alphabet so matches of varying lengths actually occur.
  init_random_bytes(as, text, n + 64, gen, 0, 3);

  const int rPos = 1, rCand = 2, rLen = 3, rBest = 4, rA = 5, rB = 6;
  const int rBase = 7, rT1 = 8, rT2 = 9, rEnd = 10, rMax = 11, rTotal = 12;
  const int rOuter = 13;
  as.movi(rBase, static_cast<int64_t>(text));
  as.movi(rOuter, static_cast<int64_t>(2 * scale));
  as.label("outer");
  as.movi(rPos, 64);
  as.movi(rEnd, static_cast<int64_t>(n));
  as.movi(rTotal, 0);
  as.label("pos_loop");
  // Candidate = pos - 17 (fixed back-reference keeps addresses strided).
  as.addi(rCand, rPos, -17);
  as.movi(rLen, 0);
  as.movi(rMax, 16);
  as.movi(rBest, 0);
  as.label("match_loop");
  as.add(rT1, rBase, rPos);
  as.add(rT1, rT1, rLen);
  as.ld(rA, rT1, 0, 1);
  as.add(rT2, rBase, rCand);
  as.add(rT2, rT2, rLen);
  as.ld(rB, rT2, 0, 1);
  as.bne(rA, rB, "match_done");       // data-dependent exit: hard
  as.addi(rLen, rLen, 1);
  as.blt(rLen, rMax, "match_loop");
  as.label("match_done");             // re-convergent point of the exit
  as.blt(rLen, rBest, "no_improve");  // hammock on best length
  as.mov(rBest, rLen);
  as.jmp("improve_done");
  as.label("no_improve");
  as.addi(rTotal, rTotal, 1);
  as.label("improve_done");
  as.add(rTotal, rTotal, rBest);      // CI accumulation
  as.addi(rPos, rPos, 1);             // strided outer walk
  as.blt(rPos, rEnd, "pos_loop");
  as.addi(rOuter, rOuter, -1);
  as.movi(rT1, 0);
  as.bne(rOuter, rT1, "outer");
  as.halt();
  return as.assemble();
}

// ---------------------------------------------------------------------------
// perlbmk — byte hashing with character-class hammocks: classify each input
// byte (alpha / digit / other — data dependent), then mix it into a running
// hash and store into a table. The mixing is control independent.
// ---------------------------------------------------------------------------
Program build_perlbmk(uint32_t scale) {
  Assembler as;
  std::mt19937_64 gen(0x9E2713ULL);
  const size_t n = 1536;
  const uint64_t text = as.reserve("text", n);
  const uint64_t table = as.reserve("table", 512 * 8);
  init_random_bytes(as, text, n, gen, 0, 127);
  init_random_words(as, table, 512, gen, 1 << 20);

  const int rIdx = 1, rCh = 2, rHash = 3, rCls = 4, rT1 = 5, rT2 = 6;
  const int rBase = 7, rTab = 8, rEnd = 9, rA = 10, rOuter = 11, rLo = 12;
  as.movi(rBase, static_cast<int64_t>(text));
  as.movi(rTab, static_cast<int64_t>(table));
  as.movi(rOuter, static_cast<int64_t>(3 * scale));
  as.label("outer");
  as.movi(rIdx, 0);
  as.movi(rHash, 5381);
  as.movi(rEnd, static_cast<int64_t>(n));
  as.label("loop");
  as.add(rT1, rBase, rIdx);
  as.ld(rCh, rT1, 0, 1);              // strided byte load
  as.movi(rLo, 65);
  as.blt(rCh, rLo, "not_alpha");      // hard: random bytes straddle 'A'
  as.movi(rCls, 2);
  as.jmp("classified");
  as.label("not_alpha");
  as.movi(rLo, 48);
  as.blt(rCh, rLo, "other");          // nested hammock
  as.movi(rCls, 1);
  as.jmp("classified");
  as.label("other");
  as.movi(rCls, 0);
  as.label("classified");             // re-convergent point
  as.muli(rT2, rHash, 33);            // CI hash mix (djb2)
  as.add(rHash, rT2, rCh);            // CI: depends on the strided load
  as.andi(rT2, rHash, 511);
  as.shli(rT2, rT2, 3);
  as.add(rT2, rTab, rT2);
  as.ld(rA, rT2, 0, 8);
  as.add(rA, rA, rCls);
  as.st(rA, rT2, 0, 8);
  as.addi(rIdx, rIdx, 1);
  as.blt(rIdx, rEnd, "loop");
  as.addi(rOuter, rOuter, -1);
  as.movi(rT1, 0);
  as.bne(rOuter, rT1, "outer");
  as.halt();
  return as.assemble();
}

}  // namespace cfir::workloads
