#include "trace/shard.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "trace/blob.hpp"
#include "trace/errors.hpp"
#include "trace/warming.hpp"
#include "util/warmable.hpp"

namespace cfir::trace {

ShardSelection parse_shard(std::string_view spec) {
  const size_t slash = spec.find('/');
  if (slash == std::string_view::npos || slash == 0 ||
      slash + 1 >= spec.size()) {
    throw std::runtime_error("parse_shard: expected 'i/N', got '" +
                             std::string(spec) + "'");
  }
  ShardSelection sel;
  size_t pos = 0;
  try {
    sel.index = static_cast<uint32_t>(
        std::stoul(std::string(spec.substr(0, slash)), &pos));
    if (pos != slash) throw std::invalid_argument("trailing");
    sel.count = static_cast<uint32_t>(
        std::stoul(std::string(spec.substr(slash + 1)), &pos));
    if (pos != spec.size() - slash - 1) throw std::invalid_argument("trail");
  } catch (const std::logic_error&) {
    throw std::runtime_error("parse_shard: expected 'i/N', got '" +
                             std::string(spec) + "'");
  }
  if (sel.count == 0 || sel.index >= sel.count) {
    throw std::runtime_error("parse_shard: shard index " +
                             std::to_string(sel.index) +
                             " out of range for count " +
                             std::to_string(sel.count));
  }
  return sel;
}

std::vector<uint8_t> ShardResult::serialize() const {
  util::ByteWriter out;
  for (const char c : kShardMagicV2) out.u8(static_cast<uint8_t>(c));
  out.u32(kShardVersion);
  out.u32(0);  // reserved
  out.u64(plan_hash);
  out.u32(shard_index);
  out.u32(shard_count);
  out.u32(plan_intervals);
  out.u64(total_insts);
  out.boolean(ran_to_halt);
  out.u64(warmed_insts);
  out.u64(warm_wall_us);
  out.u32(static_cast<uint32_t>(configs.size()));
  for (const ConfigColumn& cc : configs) {
    put_string(out, cc.name);
    out.u64(cc.config_hash);
    out.u64(cc.detailed_insts);
  }
  out.u32(static_cast<uint32_t>(intervals.size()));
  for (const Interval& iv : intervals) {
    out.u32(iv.plan_index);
    out.u64(iv.start_inst);
    out.u64(iv.length);
    out.u64(iv.warmup);
    out.u64(std::bit_cast<uint64_t>(iv.weight));
    if (iv.stats.size() != configs.size()) {
      throw std::runtime_error(
          "ShardResult::serialize: interval stats/config column mismatch");
    }
    if (!iv.wall_us.empty() && iv.wall_us.size() != configs.size()) {
      throw std::runtime_error(
          "ShardResult::serialize: interval wall/config column mismatch");
    }
    for (const stats::SimStats& s : iv.stats) stats::serialize(s, out);
    for (size_t c = 0; c < configs.size(); ++c) {
      out.u64(iv.wall_us.empty() ? 0 : iv.wall_us[c]);
    }
  }
  return out.take();
}

ShardResult ShardResult::deserialize(const std::vector<uint8_t>& payload) {
  const bool v1 =
      payload.size() >= sizeof(kShardMagic) &&
      std::memcmp(payload.data(), kShardMagic, sizeof(kShardMagic)) == 0;
  const bool v2 =
      payload.size() >= sizeof(kShardMagicV2) &&
      std::memcmp(payload.data(), kShardMagicV2, sizeof(kShardMagicV2)) == 0;
  if (!v1 && !v2) {
    throw BadMagicError("ShardResult: bad magic (not a CFIRSHD file)");
  }
  try {
    util::ByteReader in(payload.data() + sizeof(kShardMagic),
                        payload.size() - sizeof(kShardMagic));
    const uint32_t version = in.u32();
    const bool versioned_ok =
        v1 ? version == 1u
           : (version >= kShardVersionNoWall && version <= kShardVersion);
    if (!versioned_ok) {
      throw VersionError("ShardResult: unsupported version " +
                         std::to_string(version));
    }
    const bool has_wall = !v1 && version >= 3u;
    (void)in.u32();  // reserved

    ShardResult r;
    r.plan_hash = in.u64();
    r.shard_index = in.u32();
    r.shard_count = in.u32();
    r.plan_intervals = in.u32();
    r.total_insts = in.u64();
    r.ran_to_halt = in.boolean();
    if (v1) {
      // v1: one implicit config column; its hash was the combined
      // manifest config hash and detailed_insts preceded warmed_insts.
      const uint64_t detailed = in.u64();
      r.warmed_insts = in.u64();
      r.configs.push_back({std::string(), r.plan_hash, detailed});
    } else {
      r.warmed_insts = in.u64();
      if (has_wall) r.warm_wall_us = in.u64();
      const uint32_t nc = in.u32();
      if (nc == 0 || nc > 4096) {
        throw CorruptFileError("ShardResult: corrupt config column count " +
                               std::to_string(nc));
      }
      r.configs.resize(nc);
      for (ConfigColumn& cc : r.configs) {
        cc.name = get_string(in, "ShardResult config name");
        cc.config_hash = in.u64();
        cc.detailed_insts = in.u64();
      }
    }
    const uint32_t n = in.u32();
    r.intervals.resize(n);
    for (Interval& iv : r.intervals) {
      iv.plan_index = in.u32();
      iv.start_inst = in.u64();
      iv.length = in.u64();
      iv.warmup = in.u64();
      iv.weight = std::bit_cast<double>(in.u64());
      iv.stats.reserve(r.configs.size());
      for (size_t c = 0; c < r.configs.size(); ++c) {
        iv.stats.push_back(stats::deserialize_stats(in));
      }
      iv.wall_us.assign(r.configs.size(), 0);
      if (has_wall) {
        for (uint64_t& w : iv.wall_us) w = in.u64();
      }
    }
    if (!in.done()) {
      throw CorruptFileError("ShardResult: trailing bytes after intervals");
    }
    return r;
  } catch (const VersionError&) {
    throw;
  } catch (const CorruptFileError&) {
    throw;
  } catch (const std::exception&) {
    throw CorruptFileError("ShardResult: truncated payload");
  }
}

void ShardResult::save(const std::string& path) const {
  write_blob_file(path, serialize());
}

ShardResult ShardResult::load(const std::string& path) {
  return deserialize(
      read_blob_file(path, "ShardResult", /*require_footer=*/true));
}

namespace {

/// Telemetry sidecar of one run_shard call: progress heartbeats and the
/// shared metric instruments, all optional-cost (heartbeats are one
/// relaxed load when CFIR_PROGRESS is off; metrics are relaxed adds).
struct ShardTelemetry {
  obs::Stopwatch clock;
  std::atomic<uint64_t> units_done{0};
  std::atomic<uint64_t> detailed_insts{0};
  uint64_t units_total = 0;
  uint64_t warmed_insts = 0;
  ShardSelection shard;
  uint32_t plan_intervals = 0;
  uint32_t nc = 1;

  [[nodiscard]] obs::Heartbeat heartbeat(const char* phase) const {
    obs::Heartbeat hb;
    hb.phase = phase;
    hb.shard_index = shard.index;
    hb.shard_count = shard.count;
    hb.done = units_done.load(std::memory_order_relaxed);
    hb.total = units_total;
    hb.intervals_done = nc == 0 ? 0 : hb.done / nc;
    hb.plan_intervals = plan_intervals;
    hb.configs = nc;
    hb.warmed_insts = warmed_insts;
    hb.detailed_insts = detailed_insts.load(std::memory_order_relaxed);
    const uint64_t elapsed_ms = clock.elapsed_us() / 1000;
    hb.eta_ms = hb.done == 0
                    ? -1
                    : static_cast<int64_t>(elapsed_ms * (hb.total - hb.done) /
                                           hb.done);
    return hb;
  }
};

}  // namespace

ShardResult run_shard(const std::vector<ConfigBinding>& configs,
                      const isa::Program& program, const IntervalPlan& plan,
                      ShardSelection shard, int threads, uint64_t plan_hash,
                      const std::string& warm_trace, int warm_jobs) {
  const size_t k = plan.boundaries.size();
  if (plan.lengths.size() != k || plan.weights.size() != k ||
      plan.checkpoints.size() != k) {
    throw std::runtime_error("run_shard: malformed plan");
  }
  if (configs.empty()) {
    throw std::runtime_error("run_shard: no config bindings");
  }
  for (const ConfigBinding& b : configs) {
    if (!b.warm.empty() && b.warm.size() != k) {
      throw std::runtime_error(
          "run_shard: binding '" + b.name +
          "' carries warm state for a different interval count");
    }
  }
  if (shard.count == 0 || shard.index >= shard.count) {
    throw std::runtime_error("run_shard: shard " +
                             std::to_string(shard.index) + "/" +
                             std::to_string(shard.count) + " out of range");
  }
  const size_t nc = configs.size();
  obs::Span shard_span("run_shard", shard.index);

  ShardResult result;
  result.plan_hash = plan_hash;
  result.shard_index = shard.index;
  result.shard_count = shard.count;
  result.plan_intervals = static_cast<uint32_t>(k);
  result.total_insts = plan.total_insts;
  result.ran_to_halt = plan.ran_to_halt;
  result.configs.reserve(nc);
  for (const ConfigBinding& b : configs) {
    result.configs.push_back(
        {b.name, b.config_hash != 0 ? b.config_hash : b.config.digest(), 0});
  }

  // This shard's subset, in plan order.
  std::vector<size_t> mine;
  for (size_t i = 0; i < k; ++i) {
    if (shard.covers(i)) mine.push_back(i);
  }
  result.intervals.resize(mine.size());
  for (size_t j = 0; j < mine.size(); ++j) {
    const size_t i = mine[j];
    if (plan.checkpoints[i].executed > plan.boundaries[i]) {
      throw std::runtime_error(
          "run_shard: checkpoint past its interval boundary");
    }
    ShardResult::Interval& iv = result.intervals[j];
    iv.plan_index = static_cast<uint32_t>(i);
    iv.start_inst = plan.boundaries[i];
    iv.length = plan.lengths[i];
    iv.weight = plan.weights[i];
    iv.warmup = plan.boundaries[i] - plan.checkpoints[i].executed;
    iv.stats.resize(nc);
    iv.wall_us.assign(nc, 0);
  }

  ShardTelemetry telemetry;
  telemetry.units_total = mine.size() * nc;
  telemetry.shard = shard;
  telemetry.plan_intervals = static_cast<uint32_t>(k);
  telemetry.nc = static_cast<uint32_t>(nc);
  obs::Progress& progress = obs::Progress::global();

  // Functional warm state, per config: prefer the binding's per-interval
  // blobs (bind_configs / CFIRMAN2 sidecars), then warm state attached to
  // the plan's checkpoints (CFIRCKP2 / v1 manifest round trip — geometry
  // checked on restore), and stream the committed prefixes of THIS shard's
  // intervals for whatever is left — ONE pass fanning the records out to
  // every remaining config's warmer, because the committed stream is
  // config-independent. A subset capture matches the full one bit for bit
  // (warm state at instruction N does not depend on which other snapshots
  // the pass takes). `warmed_insts` records the coverage once, however
  // many configs shared the stream.
  const bool functional = warm_mode_has_functional_prefix(plan.warm_mode);
  std::vector<int> capture_slot(nc, -1);  // index into `captured`
  std::vector<std::vector<std::vector<uint8_t>>> captured;  // [slot][j]
  bool checkpoints_warm = true;
  for (const size_t i : mine) {
    checkpoints_warm = checkpoints_warm && plan.checkpoints[i].has_warm();
  }
  if (functional) {
    std::vector<core::CoreConfig> need;
    // Configs with coinciding warm-relevant geometry (warm_digest) train
    // byte-identical warm state from the same committed stream, so they
    // share one capture slot — the pass then warms each distinct geometry
    // once, mirroring the bind_configs dedup.
    std::unordered_map<uint64_t, int> slot_by_digest;
    for (size_t c = 0; c < nc; ++c) {
      if (configs[c].warm.empty() && !checkpoints_warm) {
        const uint64_t wd = configs[c].config.warm_digest();
        const auto [it, fresh] =
            slot_by_digest.emplace(wd, static_cast<int>(need.size()));
        if (fresh) need.push_back(configs[c].config);
        capture_slot[c] = it->second;
      }
    }
    if (!need.empty()) {
      if (progress.enabled()) {
        progress.emit(telemetry.heartbeat("warm"), /*force=*/true);
      }
      std::vector<uint64_t> targets;
      targets.reserve(mine.size());
      for (const size_t i : mine) {
        targets.push_back(plan.checkpoints[i].executed);
      }
      const obs::Stopwatch warm_clock;
      if (!warm_trace.empty()) {
        // Stream the gaps from the recorded trace: a CFIRTRC2 reader
        // seeks per the block index, so this shard decodes only blocks
        // covering [0, its last interval boundary) — cheaper the fewer
        // intervals the shard owns — and the blobs still match the
        // engine pass bit for bit (same record stream).
        TraceReader reader(warm_trace);
        captured =
            capture_warm_states_grid(need, program, reader, targets, warm_jobs);
      } else {
        captured = capture_warm_states_grid(need, program, targets, warm_jobs);
      }
      result.warm_wall_us = warm_clock.elapsed_us();
      obs::Registry::instance()
          .histogram("shard.warm_capture_us")
          .observe(result.warm_wall_us);
    }
    for (const size_t i : mine) {
      result.warmed_insts += plan.checkpoints[i].executed;
    }
  }
  telemetry.warmed_insts = result.warmed_insts;
  if (progress.enabled()) {
    progress.emit(telemetry.heartbeat("detail"), /*force=*/true);
  }

  // Detailed-simulate the (interval × config) grid in parallel. An
  // interval whose measured window reaches the end of a halting run
  // executes unbounded so the core retires HALT and reports `halted` like
  // a monolithic run — even when the window is empty (a program that
  // halts at instruction 0).
  sim::parallel_for(
      mine.size() * nc,
      [&](size_t p) {
        const size_t j = p / nc;
        const size_t c = p % nc;
        const size_t i = mine[j];
        ShardResult::Interval& interval = result.intervals[j];
        const bool run_to_halt =
            plan.ran_to_halt &&
            interval.start_inst + interval.length == plan.total_insts;
        if (interval.length == 0 && !run_to_halt) return;
        const obs::Stopwatch unit_clock;
        const core::CoreConfig& config = configs[c].config;
        std::unique_ptr<sim::Simulator> sim;
        {
          obs::Span restore_span("checkpoint.restore",
                                 static_cast<uint64_t>(i));
          sim = std::make_unique<sim::Simulator>(config, program,
                                                 plan.checkpoints[i]);
        }
        if (functional) {
          const std::vector<uint8_t>& blob =
              !configs[c].warm.empty()
                  ? configs[c].warm[i]
                  : (checkpoints_warm ? plan.checkpoints[i].warm
                                      : captured[capture_slot[c]][j]);
          if (blob.empty()) {
            throw std::runtime_error(
                "run_shard: binding '" + configs[c].name +
                "' has no warm state for plan interval " +
                std::to_string(i) +
                " — were the bindings loaded for a different shard "
                "selection?");
          }
          obs::Span warm_span("warming", static_cast<uint64_t>(i));
          FunctionalWarmer warmer(config, program);
          warmer.deserialize_state(blob);
          warmer.apply_to(*sim);
        }
        stats::SimStats warm_stats;
        if (interval.warmup > 0) {
          obs::Span warm_span("warming", static_cast<uint64_t>(i));
          warm_stats = sim->run(interval.warmup);
        }
        stats::SimStats& s = interval.stats[c];
        {
          obs::Span detail_span("detail", static_cast<uint64_t>(i));
          s = sim->run(run_to_halt ? UINT64_MAX
                                   : interval.warmup + interval.length);
        }
        s.subtract(warm_stats);
        // Episode counters are only hierarchical (total >= selected >=
        // reused, a ci::CiMechanism invariant) within one contiguous run.
        // The warm-up boundary can split an episode — selected during the
        // warm-up slice, reused in the measured window — so re-clamp the
        // measured slice: credit that belongs to warm-up state is
        // discarded with the rest of the warm-up.
        s.ep_ci_selected = std::min(s.ep_ci_selected, s.ep_total);
        s.ep_ci_reused = std::min(s.ep_ci_reused, s.ep_ci_selected);

        // Telemetry for this (interval, config) unit. wall_us is written
        // by exactly one worker (this unit's), so no lock is needed.
        const uint64_t unit_us = unit_clock.elapsed_us();
        interval.wall_us[c] = unit_us;
        obs::Registry& reg = obs::Registry::instance();
        reg.histogram("shard.unit_us").observe(unit_us);
        reg.counter("shard.detail_units").increment();
        reg.counter("shard.detail_insts").add(s.committed + interval.warmup);
        if (progress.enabled()) {
          telemetry.detailed_insts.fetch_add(s.committed + interval.warmup,
                                             std::memory_order_relaxed);
          telemetry.units_done.fetch_add(1, std::memory_order_relaxed);
          progress.emit(telemetry.heartbeat("detail"));
        }
      },
      threads);

  for (const ShardResult::Interval& interval : result.intervals) {
    for (size_t c = 0; c < nc; ++c) {
      result.configs[c].detailed_insts +=
          interval.stats[c].committed + interval.warmup;
    }
  }
  if (progress.enabled()) {
    telemetry.units_done.store(telemetry.units_total,
                               std::memory_order_relaxed);
    progress.emit(telemetry.heartbeat("done"), /*force=*/true);
  }
  return result;
}

ShardResult run_shard(const core::CoreConfig& config,
                      const isa::Program& program, const IntervalPlan& plan,
                      ShardSelection shard, int threads,
                      uint64_t config_hash) {
  ConfigBinding binding;
  binding.name = config.label();
  binding.config = config;
  binding.config_hash = config_hash;  // 0 -> digest, else the legacy hash
  return run_shard(std::vector<ConfigBinding>{std::move(binding)}, program,
                   plan, shard, threads, config_hash);
}

MergedGrid merge_shard_grid(const std::vector<ShardResult>& shards) {
  if (shards.empty()) {
    throw std::runtime_error("merge_shard_grid: no shard results");
  }
  const ShardResult& first = shards.front();
  if (first.configs.empty()) {
    throw CorruptFileError("merge_shard_grid: shard carries no config columns");
  }
  for (const ShardResult& s : shards) {
    if (s.plan_hash != first.plan_hash) {
      throw ConfigMismatchError(
          "merge_shard_grid: shard " + std::to_string(s.shard_index) + "/" +
          std::to_string(s.shard_count) +
          " was produced under a different plan (plan hash " +
          hex64(s.plan_hash) + " vs " + hex64(first.plan_hash) +
          ") — all shards of one merge must come from the same manifest");
    }
    bool same_grid = s.configs.size() == first.configs.size();
    for (size_t c = 0; same_grid && c < s.configs.size(); ++c) {
      same_grid = s.configs[c].name == first.configs[c].name &&
                  s.configs[c].config_hash == first.configs[c].config_hash;
    }
    if (!same_grid) {
      throw ConfigMismatchError(
          "merge_shard_grid: shard " + std::to_string(s.shard_index) + "/" +
          std::to_string(s.shard_count) +
          " carries a different config grid than the other shards — all "
          "shards of one merge must come from the same manifest");
    }
    if (s.plan_intervals != first.plan_intervals ||
        s.total_insts != first.total_insts ||
        s.ran_to_halt != first.ran_to_halt) {
      throw CorruptFileError(
          "merge_shard_grid: shard " + std::to_string(s.shard_index) + "/" +
          std::to_string(s.shard_count) +
          " disagrees with the other shards about the plan shape");
    }
  }

  // Coverage: every plan interval exactly once, in any shard order.
  std::vector<const ShardResult::Interval*> by_index(first.plan_intervals,
                                                     nullptr);
  for (const ShardResult& s : shards) {
    for (const ShardResult::Interval& iv : s.intervals) {
      if (iv.plan_index >= first.plan_intervals) {
        throw CorruptFileError(
            "merge_shard_grid: interval index " +
            std::to_string(iv.plan_index) + " out of range (plan has " +
            std::to_string(first.plan_intervals) + ")");
      }
      if (iv.stats.size() != first.configs.size()) {
        throw CorruptFileError(
            "merge_shard_grid: interval " + std::to_string(iv.plan_index) +
            " carries " + std::to_string(iv.stats.size()) +
            " stat columns for " + std::to_string(first.configs.size()) +
            " configs");
      }
      if (by_index[iv.plan_index] != nullptr) {
        throw CorruptFileError(
            "merge_shard_grid: interval " + std::to_string(iv.plan_index) +
            " appears in more than one shard result — the same shard was "
            "merged twice?");
      }
      by_index[iv.plan_index] = &iv;
    }
  }
  for (uint32_t i = 0; i < first.plan_intervals; ++i) {
    if (by_index[i] == nullptr) {
      throw CorruptFileError(
          "merge_shard_grid: interval " + std::to_string(i) +
          " is covered by no shard result — merge needs every shard of the "
          "plan (0/N through N-1/N) exactly once");
    }
  }

  MergedGrid grid;
  grid.configs.resize(first.configs.size());
  for (size_t c = 0; c < first.configs.size(); ++c) {
    MergedGrid::ConfigRun& column = grid.configs[c];
    column.name = first.configs[c].name;
    column.config_hash = first.configs[c].config_hash;
    SampledRun& run = column.run;
    run.total_insts = first.total_insts;
    run.intervals.reserve(first.plan_intervals);
    std::vector<stats::WeightedStats> parts;
    parts.reserve(first.plan_intervals);
    for (uint32_t i = 0; i < first.plan_intervals; ++i) {
      const ShardResult::Interval& iv = *by_index[i];
      const uint64_t wall_us = iv.wall_us.empty() ? 0 : iv.wall_us[c];
      run.intervals.push_back({iv.start_inst, iv.length, iv.warmup,
                               iv.weight, iv.stats[c], wall_us});
      run.wall_us += wall_us;
      parts.push_back({iv.stats[c], iv.weight});
    }
    for (const ShardResult& s : shards) {
      run.detailed_insts += s.configs[c].detailed_insts;
      run.warmed_insts += s.warmed_insts;
      run.warm_wall_us += s.warm_wall_us;
    }
    run.aggregate = stats::merge_shards(parts);
    // In cluster mode the window containing HALT need not be a
    // representative; the plan still knows the run halted.
    run.aggregate.halted = run.aggregate.halted || first.ran_to_halt;
  }
  return grid;
}

SampledRun merge_shard_results(const std::vector<ShardResult>& shards) {
  MergedGrid grid = merge_shard_grid(shards);
  if (grid.configs.size() != 1) {
    throw std::runtime_error(
        "merge_shard_results: expected a single config column, got " +
        std::to_string(grid.configs.size()) +
        " — use merge_shard_grid for multi-config manifests");
  }
  return std::move(grid.configs.front().run);
}

}  // namespace cfir::trace
