#include "mem/hierarchy.hpp"

namespace cfir::mem {

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config)
    : config_(config),
      l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2),
      l3_(config.l3) {}

void CacheHierarchy::reset() {
  l1i_.reset();
  l1d_.reset();
  l2_.reset();
  l3_.reset();
}

uint32_t CacheHierarchy::lower_fill_latency(uint64_t addr, bool is_write,
                                            uint64_t now) {
  // L2 lookup happens after the L1 miss is detected.
  const auto r2 = l2_.access(addr, is_write, now, /*placeholder*/ 0);
  if (r2.hit) return r2.latency;
  const auto r3 = l3_.access(addr, is_write, now + r2.latency, 0);
  uint32_t below = r3.hit ? r3.latency
                          : r3.latency + config_.memory_latency;
  return l2_.config().hit_latency + below;
}

uint32_t CacheHierarchy::access_inst(uint64_t addr, uint64_t now) {
  // Probe L1I first; only on a real miss do we consult the lower levels.
  if (l1i_.probe(addr)) {
    return l1i_.access(addr, false, now, 0).latency;
  }
  const uint32_t fill = lower_fill_latency(addr, false, now);
  return l1i_.access(addr, false, now, fill).latency;
}

uint32_t CacheHierarchy::access_data(uint64_t addr, bool is_write,
                                     uint64_t now) {
  if (l1d_.probe(addr)) {
    return l1d_.access(addr, is_write, now, 0).latency;
  }
  const uint32_t fill = lower_fill_latency(addr, is_write, now);
  return l1d_.access(addr, is_write, now, fill).latency;
}

}  // namespace cfir::mem
