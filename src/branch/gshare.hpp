// Gshare conditional branch predictor (64K-entry 2-bit counter table per
// Table 1 of the paper) with speculative global-history management: fetch
// shifts the prediction into the history; misprediction recovery restores
// the pre-branch snapshot and shifts in the actual outcome.
#pragma once

#include <cstdint>
#include <vector>

#include "util/warmable.hpp"

namespace cfir::branch {

class Gshare : public util::Warmable {
 public:
  explicit Gshare(uint32_t entries = 64 * 1024, uint32_t history_bits = 16);

  /// Predicts `pc`'s direction using current speculative history.
  [[nodiscard]] bool predict(uint64_t pc) const;

  /// Returns the history snapshot to store with the in-flight branch, then
  /// speculatively shifts `predicted` into the history.
  uint64_t speculate(bool predicted);

  /// Trains the counter table with the resolved outcome. Uses the history
  /// the branch was predicted with (`snapshot`).
  void train(uint64_t pc, uint64_t snapshot, bool taken);

  /// Misprediction repair: restores `snapshot` and shifts in `taken`.
  void recover(uint64_t snapshot, bool taken);

  /// Functional warming: one committed conditional branch, in commit order.
  /// Trains the counter indexed by the current (commit-order) history and
  /// shifts the actual outcome in. Equivalent to what a detailed run leaves
  /// behind: commit-time train() uses the fetch-time history snapshot, which
  /// on the committed path equals the commit-order history (mispredictions
  /// repair the speculative history before the correct path refetches).
  void warm_commit(uint64_t pc, bool taken);

  /// Digest over the full predictor state (counter table + history).
  [[nodiscard]] uint64_t debug_digest() const override;
  void serialize(util::ByteWriter& out) const override;
  void deserialize(util::ByteReader& in) override;

  /// Raw history restore (used when an indirect jump mispredicts: the jump
  /// itself never entered the history, but squashed wrong-path conditional
  /// branches after it did).
  void set_history(uint64_t h) { history_ = h & history_mask_; }

  [[nodiscard]] uint64_t history() const { return history_; }
  [[nodiscard]] uint32_t entries() const {
    return static_cast<uint32_t>(table_.size());
  }

 private:
  [[nodiscard]] uint32_t index(uint64_t pc, uint64_t history) const;

  std::vector<uint8_t> table_;  ///< 2-bit saturating counters
  uint32_t mask_;
  uint64_t history_mask_;
  uint64_t history_ = 0;
};

}  // namespace cfir::branch
