#include "ci/reconvergence.hpp"

#include <gtest/gtest.h>

#include "isa/assembler.hpp"

namespace cfir::ci {
namespace {

TEST(ReconvergencePoint, BackwardBranchIsLoopClose) {
  isa::Assembler as;
  as.label("loop");
  as.addi(1, 1, 1);
  as.bne(1, 2, "loop");  // backward
  as.halt();
  const isa::Program p = as.assemble();
  const uint64_t branch_pc = p.pc_of(1);
  EXPECT_EQ(estimate_reconvergence_point(p, branch_pc, p.at(branch_pc)),
            branch_pc + isa::kInstBytes);
}

TEST(ReconvergencePoint, IfThenShape) {
  // Figure 2b: forward branch whose target is NOT preceded by a jmp.
  isa::Assembler as;
  as.beq(1, 2, "skip");   // if
  as.addi(3, 3, 1);       // then body
  as.addi(3, 3, 2);
  as.label("skip");       // re-convergent point == target
  as.halt();
  const isa::Program p = as.assemble();
  const uint64_t branch_pc = p.pc_of(0);
  EXPECT_EQ(estimate_reconvergence_point(p, branch_pc, p.at(branch_pc)),
            p.label("skip").value());
}

TEST(ReconvergencePoint, IfThenElseShape) {
  // Figure 2c: the instruction above the target is an unconditional
  // forward jump — re-converge where it lands.
  isa::Assembler as;
  as.beq(1, 2, "else_");
  as.addi(3, 3, 1);       // then
  as.jmp("join");
  as.label("else_");
  as.addi(3, 3, 2);       // else
  as.label("join");
  as.halt();
  const isa::Program p = as.assemble();
  const uint64_t branch_pc = p.pc_of(0);
  EXPECT_EQ(estimate_reconvergence_point(p, branch_pc, p.at(branch_pc)),
            p.label("join").value());
}

TEST(ReconvergencePoint, BackwardJmpAboveTargetIsNotElseShape) {
  // A backward jmp right above the target must not be mistaken for the
  // if-then-else closing jump.
  isa::Assembler as2;
  as2.beq(1, 2, "t");
  as2.label("top2");
  as2.addi(1, 1, 1);
  as2.jmp("top2");        // backward: not an else-join marker
  as2.label("t");
  as2.halt();
  const isa::Program p2 = as2.assemble();
  const uint64_t branch_pc = p2.pc_of(0);
  EXPECT_EQ(estimate_reconvergence_point(p2, branch_pc, p2.at(branch_pc)),
            p2.label("t").value());
}

TEST(Nrbq, MasksAccumulateUntilOwnRp) {
  Nrbq q(4);
  q.push(10, 0x100, 0x200);
  q.on_dest_write(3);
  q.push(20, 0x140, 0x240);
  q.on_dest_write(5);
  // Both branches are still short of their re-convergent points: the write
  // belongs to both regions.
  EXPECT_EQ(q.find(10)->mask, (uint64_t{1} << 3) | (uint64_t{1} << 5));
  EXPECT_EQ(q.find(20)->mask, uint64_t{1} << 5);
  // Branch 10 reaches its RP: its region is closed.
  q.observe_pc(0x200);
  q.on_dest_write(7);
  EXPECT_EQ(q.find(10)->mask, (uint64_t{1} << 3) | (uint64_t{1} << 5));
  EXPECT_EQ(q.find(20)->mask, (uint64_t{1} << 5) | (uint64_t{1} << 7));
  EXPECT_TRUE(q.find(10)->reached);
  EXPECT_FALSE(q.find(20)->reached);
}

TEST(Nrbq, MaskOfBranch) {
  Nrbq q(4);
  q.push(10, 0x100, 0x200);
  q.on_dest_write(1);
  q.push(20, 0x140, 0x240);
  q.on_dest_write(2);
  EXPECT_EQ(q.mask_of(20), uint64_t{1} << 2);
  EXPECT_EQ(q.mask_of(10), (uint64_t{1} << 1) | (uint64_t{1} << 2));
  EXPECT_EQ(q.mask_of(999), 0u);  // unknown branch
}

TEST(Nrbq, Figure1MaskSelectsI11) {
  // The paper's example: hammock branch I7 re-converges at I11. Writes on
  // the wrong path before the join (R3) taint; I11's own write of R4 after
  // the join must NOT taint, or I11 could never be selected.
  Nrbq q(4);
  q.push(7, 0x101C, /*rp=*/0x102C);
  q.on_dest_write(3);   // wrong-path INC R3
  q.observe_pc(0x102C); // fetch crosses the re-convergent point
  q.on_dest_write(4);   // I11 writes R4
  q.on_dest_write(1);   // I12 writes R1
  EXPECT_EQ(q.mask_of(7), uint64_t{1} << 3);
  // R4 and R0 are clean: I11 (ADD R4,R4,R0) passes the CRP filter.
  EXPECT_EQ(q.mask_of(7) & ((uint64_t{1} << 4) | (uint64_t{1} << 0)), 0u);
}

TEST(Nrbq, CommitAndSquashMaintainOrder) {
  Nrbq q(4);
  q.push(10, 0x100, 0x200);
  q.push(20, 0x140, 0x240);
  q.push(30, 0x180, 0x280);
  q.on_branch_squash(30);  // youngest squashed
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.find(30), nullptr);
  q.on_branch_commit(10);  // oldest retires
  EXPECT_EQ(q.size(), 1u);
  EXPECT_NE(q.find(20), nullptr);
}

TEST(Nrbq, OverflowEvictsOldest) {
  Nrbq q(2);
  q.push(10, 0x100, 0x200);
  q.push(20, 0x140, 0x240);
  q.push(30, 0x180, 0x280);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.find(10), nullptr);
  EXPECT_NE(q.find(30), nullptr);
}

TEST(Nrbq, StorageBudgetMatchesPaper) {
  Nrbq q(16);
  EXPECT_EQ(q.storage_bytes(), 128u);  // section 3.1
  EXPECT_EQ(Crp::storage_bytes(), 16u);
}

}  // namespace
}  // namespace cfir::ci
