#include "stats/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace cfir::stats {

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : "";
      if (i) out << "  ";
      if (i == 0) {
        out << c << std::string(widths[i] - std::min(widths[i], c.size()), ' ');
      } else {
        out << std::string(widths[i] - std::min(widths[i], c.size()), ' ') << c;
      }
    }
    out << '\n';
  };
  emit(headers_);
  size_t total = headers_.size() ? (headers_.size() - 1) * 2 : 0;
  for (size_t w : widths) total += w;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace cfir::stats
