#include "obs/progress.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>

namespace cfir::obs {

namespace {

int64_t now_ms() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

/// Minimum ms between non-forced heartbeats.
constexpr int64_t kMinIntervalMs = 100;

struct ProgressState {
  std::mutex mu;
  std::string sidecar_path;
  bool mirror_stderr = false;
  int64_t last_emit_ms = -1;

  static ProgressState& get() {
    static ProgressState state;
    return state;
  }
};

/// Extracts `"key":<unsigned integer>` from a flat JSON line. Returns
/// false when the key is absent or not a number.
bool find_u64(const std::string& line, const char* key, uint64_t* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  size_t p = at + needle.size();
  bool neg = false;
  if (p < line.size() && line[p] == '-') {
    neg = true;
    ++p;
  }
  if (p >= line.size() || line[p] < '0' || line[p] > '9') return false;
  uint64_t v = 0;
  while (p < line.size() && line[p] >= '0' && line[p] <= '9') {
    v = v * 10 + static_cast<uint64_t>(line[p] - '0');
    ++p;
  }
  *out = neg ? static_cast<uint64_t>(-static_cast<int64_t>(v)) : v;
  return true;
}

bool find_i64(const std::string& line, const char* key, int64_t* out) {
  uint64_t raw = 0;
  if (!find_u64(line, key, &raw)) return false;
  *out = static_cast<int64_t>(raw);
  return true;
}

bool find_string(const std::string& line, const char* key,
                 std::string* out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const size_t start = at + needle.size();
  const size_t end = line.find('"', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start);
  return true;
}

}  // namespace

std::string Heartbeat::to_json() const {
  std::string out = "{\"cfirprog\":1";
  out += ",\"t_ms\":" + std::to_string(t_ms);
  out += ",\"phase\":\"" + phase + "\"";
  out += ",\"shard\":\"" + std::to_string(shard_index) + "/" +
         std::to_string(shard_count) + "\"";
  out += ",\"done\":" + std::to_string(done);
  out += ",\"total\":" + std::to_string(total);
  out += ",\"intervals_done\":" + std::to_string(intervals_done);
  out += ",\"plan_intervals\":" + std::to_string(plan_intervals);
  out += ",\"configs\":" + std::to_string(configs);
  out += ",\"warmed_insts\":" + std::to_string(warmed_insts);
  out += ",\"detailed_insts\":" + std::to_string(detailed_insts);
  out += ",\"eta_ms\":" + std::to_string(eta_ms);
  out += "}";
  return out;
}

bool Heartbeat::parse(const std::string& line, Heartbeat* out) {
  uint64_t tag = 0;
  if (!find_u64(line, "cfirprog", &tag) || tag != 1) return false;
  Heartbeat hb;
  if (!find_string(line, "phase", &hb.phase)) return false;
  std::string shard;
  if (find_string(line, "shard", &shard)) {
    const size_t slash = shard.find('/');
    if (slash == std::string::npos) return false;
    hb.shard_index =
        static_cast<uint32_t>(std::strtoul(shard.c_str(), nullptr, 10));
    hb.shard_count = static_cast<uint32_t>(
        std::strtoul(shard.c_str() + slash + 1, nullptr, 10));
    if (hb.shard_count == 0) return false;
  }
  (void)find_i64(line, "t_ms", &hb.t_ms);
  (void)find_u64(line, "done", &hb.done);
  (void)find_u64(line, "total", &hb.total);
  (void)find_u64(line, "intervals_done", &hb.intervals_done);
  (void)find_u64(line, "plan_intervals", &hb.plan_intervals);
  uint64_t configs = 0;
  if (find_u64(line, "configs", &configs)) {
    hb.configs = static_cast<uint32_t>(configs);
  }
  (void)find_u64(line, "warmed_insts", &hb.warmed_insts);
  (void)find_u64(line, "detailed_insts", &hb.detailed_insts);
  (void)find_i64(line, "eta_ms", &hb.eta_ms);
  *out = std::move(hb);
  return true;
}

Progress& Progress::global() {
  static Progress* progress = new Progress();  // leaked: outlive atexit
  return *progress;
}

void Progress::configure(const std::string& sidecar_path,
                         bool mirror_stderr) {
  ProgressState& state = ProgressState::get();
  std::lock_guard<std::mutex> lk(state.mu);
  state.sidecar_path = sidecar_path;
  state.mirror_stderr = mirror_stderr;
  state.last_emit_ms = -1;
  if (!sidecar_path.empty()) {
    std::ofstream truncate(sidecar_path, std::ios::trunc);
  }
  (void)now_ms();  // pin the epoch
  enabled_.store(!sidecar_path.empty() || mirror_stderr,
                 std::memory_order_release);
}

void Progress::disable() {
  enabled_.store(false, std::memory_order_release);
}

void Progress::emit(Heartbeat hb, bool force) {
  if (!enabled()) return;
  ProgressState& state = ProgressState::get();
  std::lock_guard<std::mutex> lk(state.mu);
  const int64_t now = now_ms();
  if (!force && state.last_emit_ms >= 0 &&
      now - state.last_emit_ms < kMinIntervalMs) {
    return;
  }
  state.last_emit_ms = now;
  hb.t_ms = now;
  const std::string line = hb.to_json();
  if (!state.sidecar_path.empty()) {
    std::ofstream out(state.sidecar_path, std::ios::app);
    if (out) out << line << "\n";
  }
  if (state.mirror_stderr) {
    std::fprintf(stderr, "%s\n", line.c_str());
    std::fflush(stderr);
  }
}

bool progress_requested() {
  const char* v = std::getenv("CFIR_PROGRESS");
  return v != nullptr && *v != '\0' && !(v[0] == '0' && v[1] == '\0');
}

bool progress_stderr_requested() {
  const char* v = std::getenv("CFIR_PROGRESS");
  return v != nullptr && std::string(v) == "stderr";
}

}  // namespace cfir::obs
