#include "ci/replica_engine.hpp"

#include <cassert>

namespace cfir::ci {

using core::CycleResources;
using isa::Opcode;

ReplicaEngine::ReplicaEngine(core::Core& core, Srsmt& srsmt,
                             SpecDataMemory* specmem)
    : core_(core), srsmt_(srsmt), specmem_(specmem) {}

bool ReplicaEngine::ref_live(const Ref& r) const {
  const SrsmtEntry& e = srsmt_.entry(r.slot);
  return e.valid && e.uid == r.uid && e.holds(r.abs);
}

uint32_t ReplicaEngine::alu_latency(Opcode op) const {
  const core::CoreConfig& cfg = core_.config();
  switch (isa::fu_class(op)) {
    case isa::FuClass::kIntMul: return cfg.mul_latency;
    case isa::FuClass::kIntDiv:
      return op == Opcode::kDiv || op == Opcode::kRem ? cfg.div_latency
                                                      : cfg.mul_latency;
    default: return cfg.int_alu_latency;
  }
}

bool ReplicaEngine::operand_ready(const SrsmtEntry& e, const SrsmtOperand& op,
                                  uint64_t abs) const {
  if (!op.present) return true;
  if (op.is_self) {
    // Replica 0 reads the creator's committed result; replica k reads the
    // own ring value k-1.
    if (abs == 0) return e.anchored;
    return e.holds(abs - 1) && e.at(abs - 1).state == Replica::State::kDone;
  }
  if (!op.is_vector) return true;
  if (op.producer_slot == kInvalidSrsmtSlot) return false;
  const SrsmtEntry& p = srsmt_.entry(op.producer_slot);
  if (!p.valid || p.uid != op.producer_uid) return false;
  const uint64_t pabs = abs + op.index_offset;
  return p.holds(pabs) && p.at(pabs).state == Replica::State::kDone;
}

uint64_t ReplicaEngine::operand_value(const SrsmtEntry& e,
                                      const SrsmtOperand& op,
                                      uint64_t abs) const {
  if (!op.present) return 0;
  if (op.is_self) {
    return abs == 0 ? e.anchor_value : e.at(abs - 1).value;
  }
  if (!op.is_vector) return op.scalar_value;
  const SrsmtEntry& p = srsmt_.entry(op.producer_slot);
  return p.at(abs + op.index_offset).value;
}

void ReplicaEngine::arm_replica(uint32_t slot, SrsmtEntry& e, uint64_t abs) {
  Replica& r = e.at(abs);
  r.captured_a = operand_value(e, e.op1, abs);
  r.captured_b = operand_value(e, e.op2, abs);
  r.state = Replica::State::kReady;
  ready_.push_back({slot, e.uid, abs});
}

void ReplicaEngine::free_replica_storage(Replica& r) {
  if (r.phys_reg >= 0) {
    core_.regfile().free_reg(r.phys_reg);
    r.phys_reg = -1;
  }
  if (r.spec_slot >= 0 && specmem_ != nullptr) {
    specmem_->free_slot(r.spec_slot);
    r.spec_slot = -1;
  }
  r.state = Replica::State::kEmpty;
  r.consumed = false;
  r.waiting_ops = 0;
}

void ReplicaEngine::materialize(uint32_t slot) {
  SrsmtEntry& e = srsmt_.entry(slot);
  if (!e.valid || e.poisoned) return;
  if (e.is_load && !e.anchored) return;
  auto& stats = core_.stats();
  const uint64_t window_end = e.commit_count + e.nregs();
  e.mat_pending = false;
  for (uint64_t abs = e.materialized; abs < window_end; ++abs) {
    Replica& r = e.at(abs);
    if (r.state == Replica::State::kIssued) {
      // A dead (skipped) replica still in flight occupies the ring
      // position; retry once it completes.
      e.mat_pending = true;
      materialize_retry_.push_back(slot);
      return;
    }
    if (r.state != Replica::State::kEmpty && !r.consumed) {
      free_replica_storage(r);
    }
    // Allocate storage.
    int phys = -1;
    int sslot = -1;
    if (specmem_ != nullptr) {
      sslot = specmem_->alloc();
      if (sslot < 0) {
        ++stats.specmem_alloc_denied;
        e.mat_pending = true;
        materialize_retry_.push_back(slot);
        return;
      }
    } else {
      phys = core_.regfile().alloc_replica(core_.config().replica_reg_reserve);
      if (phys < 0) {
        ++stats.replica_alloc_denied;
        e.mat_pending = true;
        materialize_retry_.push_back(slot);
        return;
      }
    }
    r = Replica{};
    r.abs_index = abs;
    r.phys_reg = phys;
    r.spec_slot = sslot;
    ++stats.replicas_created;
    if (e.is_load) {
      r.addr = e.addr_of(abs);
      r.state = Replica::State::kReady;
      ready_.push_back({slot, e.uid, abs});
    } else {
      uint8_t waiting = 0;
      if (!operand_ready(e, e.op1, abs)) ++waiting;
      if (!operand_ready(e, e.op2, abs)) ++waiting;
      r.waiting_ops = waiting;
      r.abs_index = abs;
      if (waiting == 0) {
        arm_replica(slot, e, abs);
      } else {
        r.state = Replica::State::kWaiting;
      }
    }
    e.materialized = abs + 1;
  }
}

void ReplicaEngine::notify_consumers(uint32_t producer_slot,
                                     uint32_t producer_uid,
                                     uint64_t produced_abs) {
  SrsmtEntry& p = srsmt_.entry(producer_slot);
  for (const uint32_t cslot : p.consumer_slots) {
    SrsmtEntry& c = srsmt_.entry(cslot);
    if (!c.valid) continue;
    for (const SrsmtOperand* op : {&c.op1, &c.op2}) {
      if (!op->present) continue;
      uint64_t cabs;
      if (op->is_self) {
        // Self recurrence: our own completion of k arms k+1.
        if (cslot != producer_slot || c.uid != producer_uid) continue;
        cabs = produced_abs + 1;
      } else if (op->is_vector && op->producer_slot == producer_slot &&
                 op->producer_uid == producer_uid) {
        if (produced_abs < op->index_offset) continue;
        cabs = produced_abs - op->index_offset;
      } else {
        continue;
      }
      if (!c.holds(cabs)) continue;
      Replica& r = c.at(cabs);
      if (r.state != Replica::State::kWaiting || r.waiting_ops == 0) continue;
      if (--r.waiting_ops == 0) {
        // Both operands may have been satisfied by the same completion;
        // recheck to be safe against offset aliasing.
        if (operand_ready(c, c.op1, cabs) && operand_ready(c, c.op2, cabs)) {
          arm_replica(cslot, c, cabs);
        } else {
          r.waiting_ops = 1;
        }
      }
    }
  }
}

void ReplicaEngine::complete(const Ref& ref) {
  if (!ref_live(ref)) return;  // entry was released while in flight
  SrsmtEntry& e = srsmt_.entry(ref.slot);
  Replica& r = e.at(ref.abs);
  if (r.state != Replica::State::kIssued) return;
  r.state = Replica::State::kDone;
  if (e.issue_count > 0) --e.issue_count;
  if (specmem_ != nullptr) {
    specmem_->write(r.spec_slot, r.value);
    ++core_.stats().specmem_writes;
  } else if (r.phys_reg >= 0) {
    core_.regfile().write(r.phys_reg, r.value);
    core_.replica_written(r.phys_reg);
  }
  // Wake a validation blocked on this value (spec-memory copy µop).
  const auto it = copy_waiters_.find(waiter_key(ref.slot, ref.abs));
  if (it != copy_waiters_.end()) {
    core_.wake_copy(it->second.rob_slot, it->second.seq);
    copy_waiters_.erase(it);
  }
  notify_consumers(ref.slot, ref.uid, ref.abs);
  if (e.mat_pending) materialize(ref.slot);
}

void ReplicaEngine::tick(uint64_t cycle, CycleResources& res) {
  // 1. Completions due this cycle.
  while (!completions_.empty() && completions_.top().when <= cycle) {
    const Completion c = completions_.top();
    completions_.pop();
    complete(c.ref);
  }
  // 2. Retry materializations that starved for registers/slots.
  if (!materialize_retry_.empty() && (cycle & 15) == 0) {
    retry_scratch_.clear();
    retry_scratch_.swap(materialize_retry_);
    for (const uint32_t slot : retry_scratch_) {
      SrsmtEntry& e = srsmt_.entry(slot);
      if (e.valid && e.mat_pending) materialize(slot);
    }
  }
  // 3. Issue ready replicas with the leftover resources (lowest priority,
  //    paper section 2.4.1).
  auto& stats = core_.stats();
  size_t scanned = 0;
  const size_t scan_limit = ready_.size();
  deferred_scratch_.clear();
  std::vector<Ref>& deferred = deferred_scratch_;
  while (res.issue_slots > 0 && !ready_.empty() && scanned < scan_limit) {
    ++scanned;
    Ref ref = ready_.front();
    ready_.pop_front();
    if (!ref_live(ref)) continue;
    SrsmtEntry& e = srsmt_.entry(ref.slot);
    Replica& r = e.at(ref.abs);
    if (r.state != Replica::State::kReady) continue;
    if (e.is_load) {
      uint32_t lat = 0;
      if (!core_.try_replica_load_access(r.addr, lat)) {
        deferred.push_back(ref);
        continue;
      }
      r.value = core_.memory().read(r.addr, isa::mem_bytes(e.inst.op));
      r.state = Replica::State::kIssued;
      ++e.issue_count;
      --res.issue_slots;
      ++stats.replicas_executed;
      uint64_t done = cycle + core_.config().agu_latency + lat;
      if (specmem_ != nullptr) done = specmem_->book_write(done);
      completions_.push({done, ++completion_order_, ref});
    } else {
      const isa::FuClass fc = isa::fu_class(e.inst.op);
      uint32_t* pool = (fc == isa::FuClass::kIntMul ||
                        fc == isa::FuClass::kIntDiv)
                           ? &res.muldiv
                           : &res.simple_int;
      if (*pool == 0) {
        deferred.push_back(ref);
        continue;
      }
      r.value = isa::eval_alu(e.inst.op, r.captured_a, r.captured_b,
                              e.inst.imm);
      r.state = Replica::State::kIssued;
      ++e.issue_count;
      --*pool;
      --res.issue_slots;
      ++stats.replicas_executed;
      uint64_t done = cycle + alu_latency(e.inst.op);
      if (specmem_ != nullptr) done = specmem_->book_write(done);
      completions_.push({done, ++completion_order_, ref});
    }
  }
  // Preserve age order: deferred replicas go back to the front.
  for (auto it = deferred.rbegin(); it != deferred.rend(); ++it) {
    ready_.push_front(*it);
  }
}

void ReplicaEngine::release_entry(uint32_t slot, const char* reason) {
  SrsmtEntry& e = srsmt_.entry(slot);
  if (!e.valid) return;
  for (Replica& r : e.ring) {
    if (r.state == Replica::State::kEmpty) continue;
    if (r.consumed) continue;  // the register belongs to rename now
    if (r.abs_index >= e.commit_count && r.abs_index < e.decode_count) {
      // An in-flight validation references this replica's register as its
      // rename destination. Ownership transfers to that instruction: it is
      // freed by its squash (the mechanism's on_squash sees the dead entry)
      // or by the next same-register writer's commit.
      r.consumed = true;
      continue;
    }
    // In-flight replicas are dropped at completion via the uid check; their
    // storage is freed here, which is safe because nothing is written to a
    // released replica's register (complete() checks ref_live first).
    free_replica_storage(r);
  }
  e.valid = false;
  auto& stats = core_.stats();
  const std::string_view why(reason);
  if (why == "daec") ++stats.srsmt_dealloc_daec;
  else if (why == "coherence") ++stats.srsmt_dealloc_coherence;
  else ++stats.srsmt_dealloc_replace;
}

void ReplicaEngine::retire_index(uint32_t slot, uint64_t abs, bool reused) {
  SrsmtEntry& e = srsmt_.entry(slot);
  if (!e.valid) return;
  assert(e.commit_count == abs);
  e.commit_count = abs + 1;
  if (e.holds(abs)) {
    Replica& r = e.at(abs);
    if (reused) {
      // Ownership transfer: the validation's rename mapping now owns the
      // register (monolithic) / the value moved through the copy µop
      // (spec memory), so the slot can be recycled.
      r.consumed = true;
      if (r.spec_slot >= 0 && specmem_ != nullptr) {
        specmem_->free_slot(r.spec_slot);
        r.spec_slot = -1;
      }
    } else if (r.state != Replica::State::kIssued) {
      // Skipped index: the instance executed normally; the replica value is
      // dead. (In-flight ones are reclaimed when materialize() wraps.)
      // Self-recurrent chains keep completed ring values: the next replica
      // may still need them as its recurrence input.
      const bool self_chain = e.op1.is_self || e.op2.is_self;
      if (!(self_chain && r.state == Replica::State::kDone)) {
        free_replica_storage(r);
      }
    }
  }
  materialize(slot);
}

bool ReplicaEngine::replica_available(const SrsmtEntry& e, uint64_t abs) const {
  if (!e.holds(abs)) return false;
  const Replica& r = e.at(abs);
  return r.state == Replica::State::kReady ||
         r.state == Replica::State::kIssued ||
         r.state == Replica::State::kDone;
}

bool ReplicaEngine::replica_done(const SrsmtEntry& e, uint64_t abs) const {
  return e.holds(abs) && e.at(abs).state == Replica::State::kDone;
}

void ReplicaEngine::register_copy_waiter(uint32_t rob_slot, uint64_t seq,
                                         uint32_t slot, uint32_t /*uid*/,
                                         uint64_t abs) {
  copy_waiters_[waiter_key(slot, abs)] = {rob_slot, seq};
}

bool ReplicaEngine::try_issue_copy(uint32_t slot, uint32_t uid, uint64_t abs,
                                   uint64_t cycle, uint32_t& latency,
                                   uint64_t& value) {
  const Ref ref{slot, uid, abs};
  if (!ref_live(ref)) return false;
  const SrsmtEntry& e = srsmt_.entry(slot);
  const Replica& r = e.at(abs);
  if (r.state != Replica::State::kDone) return false;
  if (specmem_ == nullptr || !specmem_->try_book_read(cycle)) return false;
  latency = specmem_->latency();
  value = r.value;
  ++core_.stats().specmem_copies;
  return true;
}

void ReplicaEngine::reclaim_unclaimed() {
  for (uint32_t slot = 0; slot < srsmt_.num_slots(); ++slot) {
    SrsmtEntry& e = srsmt_.entry(slot);
    if (!e.valid) continue;
    for (uint64_t abs = e.decode_count; abs < e.materialized; ++abs) {
      if (!e.holds(abs)) continue;
      Replica& r = e.at(abs);
      if (r.consumed || r.state == Replica::State::kIssued) continue;
      free_replica_storage(r);
    }
    // Stop the entry from immediately re-materializing into starvation.
    e.mat_pending = false;
    e.materialized = std::max(e.materialized, e.decode_count);
  }
}

}  // namespace cfir::ci
