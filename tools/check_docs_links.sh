#!/usr/bin/env bash
# Fails (exit 1) if any relative markdown link in README.md or docs/*.md
# points at a file that does not exist. External (scheme://), mailto: and
# pure-anchor (#...) links are skipped; a #fragment on a relative link is
# stripped before the existence check. Run from anywhere; paths resolve
# against the repo root (the directory above this script).
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
status=0

for doc in "$root/README.md" "$root"/docs/*.md; do
  [ -f "$doc" ] || continue
  dir="$(dirname "$doc")"
  # Extract the (...) of every markdown link [text](target).
  while IFS= read -r target; do
    case "$target" in
      ''|\#*|*://*|mailto:*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK: $doc -> $target" >&2
      status=1
    fi
  done < <(grep -o '\](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//')
done

if [ "$status" -eq 0 ]; then
  echo "docs links OK"
fi
exit "$status"
